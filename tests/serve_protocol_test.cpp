// Wire-protocol conformance for `hsim serve`, entirely through the
// in-process batch dispatch path (Session::handle_line) — the same code the
// TCP server runs, so everything pinned here holds on the socket too.
//
//   * golden request/response pairs for every verb;
//   * a malformed-input corpus (bad JSON, unknown verbs, oversized and
//     truncated lines, wrong types, unknown params) that must come back as
//     structured errors with the request id echoed whenever recoverable —
//     and must leave the session alive and correct afterwards;
//   * the old CLI failure mode (bad kernel/device names killing the
//     process mid-dispatch) pinned as: a bad name is a reply, never a
//     termination.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/json.hpp"
#include "serve/protocol.hpp"
#include "serve/session.hpp"

namespace hsim::serve {
namespace {

/// Fresh engine + session per call unless a test needs shared state.
std::string one_shot(const std::string& line) {
  ServeEngine engine;
  Session session(engine);
  return session.handle_line(line);
}

json::Value parsed_reply(const std::string& reply) {
  auto value = json::parse(reply);
  EXPECT_TRUE(value.has_value()) << reply;
  return value.has_value() ? value.value() : json::Value();
}

/// Reply must be {"id":<id>,"ok":true,"result":{...}}; returns the result.
json::Value expect_ok(const std::string& reply, std::uint64_t id) {
  const json::Value root = parsed_reply(reply);
  const json::Value* id_field = root.find("id");
  EXPECT_TRUE(id_field != nullptr && id_field->is_unsigned() &&
              id_field->as_u64() == id)
      << reply;
  const json::Value* ok = root.find("ok");
  EXPECT_TRUE(ok != nullptr && ok->is_bool() && ok->as_bool()) << reply;
  const json::Value* result = root.find("result");
  EXPECT_NE(result, nullptr) << reply;
  return result != nullptr ? *result : json::Value();
}

void expect_error(const std::string& reply, const std::string& code,
                  bool id_recovered, std::uint64_t id = 0) {
  const json::Value root = parsed_reply(reply);
  const json::Value* id_field = root.find("id");
  ASSERT_NE(id_field, nullptr) << reply;
  if (id_recovered) {
    ASSERT_TRUE(id_field->is_unsigned()) << reply;
    EXPECT_EQ(id_field->as_u64(), id) << reply;
  } else {
    EXPECT_TRUE(id_field->is_null()) << reply;
  }
  const json::Value* ok = root.find("ok");
  ASSERT_TRUE(ok != nullptr && ok->is_bool()) << reply;
  EXPECT_FALSE(ok->as_bool()) << reply;
  const json::Value* error = root.find("error");
  ASSERT_NE(error, nullptr) << reply;
  const json::Value* code_field = error->find("code");
  ASSERT_TRUE(code_field != nullptr && code_field->is_string()) << reply;
  EXPECT_EQ(code_field->as_string(), code) << reply;
  const json::Value* message = error->find("message");
  EXPECT_TRUE(message != nullptr && message->is_string() &&
              !message->as_string().empty())
      << reply;
}

// ---------------------------------------------------------------- golden --

TEST(ServeProtocol, GoldenPing) {
  EXPECT_EQ(one_shot(R"({"id":7,"verb":"ping"})"),
            "{\"id\":7,\"ok\":true,\"result\":{"
            "\"code_version\":\"hoppersim-1.0.0+serve1\","
            "\"protocol\":\"hsim-serve-v1\"}}");
}

TEST(ServeProtocol, GoldenClose) {
  ServeEngine engine;
  Session session(engine);
  EXPECT_EQ(session.handle_line(R"({"id":1,"verb":"close"})"),
            "{\"id\":1,\"ok\":true,\"result\":{\"closing\":true}}");
  EXPECT_TRUE(session.closed());
  EXPECT_FALSE(engine.shutdown_requested());
}

TEST(ServeProtocol, GoldenShutdown) {
  ServeEngine engine;
  Session session(engine);
  EXPECT_EQ(session.handle_line(R"({"id":2,"verb":"shutdown"})"),
            "{\"id\":2,\"ok\":true,\"result\":{\"shutting_down\":true}}");
  EXPECT_TRUE(session.closed());
  EXPECT_TRUE(engine.shutdown_requested());
}

TEST(ServeProtocol, GoldenMalformedJson) {
  EXPECT_EQ(one_shot("{not json"),
            "{\"id\":null,\"ok\":false,\"error\":{\"code\":"
            "\"invalid_argument\",\"message\":\"malformed JSON: expected "
            "object key at byte 1\"}}");
}

TEST(ServeProtocol, GoldenUnknownVerb) {
  EXPECT_EQ(one_shot(R"({"id":3,"verb":"frobnicate"})"),
            "{\"id\":3,\"ok\":false,\"error\":{\"code\":\"invalid_argument\","
            "\"message\":\"unknown verb: \\\"frobnicate\\\" (accepted: "
            "simulate, profile, sweep, trace, fuzz, stats, ping, close, "
            "shutdown)\"}}");
}

// Each executable verb answers ok with its characteristic result fields
// and echoes the id; run twice on one engine, the second reply must be the
// exact bytes of the first (cache hit path == cold path).
struct VerbGolden {
  const char* name;
  std::string request;
  std::vector<std::string> result_fields;
};

class ServeVerbGolden : public ::testing::TestWithParam<VerbGolden> {};

TEST_P(ServeVerbGolden, OkRepliesWithExpectedFieldsAndCachedRepeat) {
  const VerbGolden& golden = GetParam();
  ServeEngine engine;
  Session session(engine);
  const std::string cold = session.handle_line(golden.request);
  const json::Value result = expect_ok(cold, 11);
  for (const auto& field : golden.result_fields) {
    EXPECT_NE(result.find(field), nullptr)
        << golden.name << " reply lacks \"" << field << "\": " << cold;
  }
  const std::string warm = session.handle_line(golden.request);
  EXPECT_EQ(warm, cold) << golden.name;
  EXPECT_GE(engine.cache().stats().hits, 1u) << golden.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllVerbs, ServeVerbGolden,
    ::testing::Values(
        VerbGolden{"simulate_sm",
                   R"({"id":11,"verb":"simulate","params":)"
                   R"({"device":"h800","kernel":"ffma_dep","iters":64}})",
                   {"cycles", "instructions", "ipc", "stall_cycles",
                    "warps_retired", "device", "kernel", "mode"}},
        VerbGolden{"simulate_chip",
                   R"({"id":11,"verb":"simulate","params":{"device":"h800",)"
                   R"("kernel":"ffma_dep","iters":32,"mode":"chip"}})",
                   {"cycles", "seconds", "sms", "waves", "per_sm_cycles_max",
                    "ipc"}},
        VerbGolden{"profile",
                   R"({"id":11,"verb":"profile","params":)"
                   R"({"device":"h800","kernel":"mem_l2","iters":64}})",
                   {"key", "sections", "cycles", "sms", "full_chip"}},
        VerbGolden{"trace",
                   R"({"id":11,"verb":"trace","params":{"device":"h800",)"
                   R"("kernel":"smem_conflict","iters":128,"top":3}})",
                   {"stalls", "stall_cycles", "attributed_stall_cycles",
                    "issues", "retires"}},
        VerbGolden{"sweep",
                   R"({"id":11,"verb":"sweep","params":{"device":"h800",)"
                   R"("kernel":"ffma_tput","iters":32,)"
                   R"("warps_list":[1,2],"blocks_list":[1]}})",
                   {"points", "points_total", "kernel"}},
        VerbGolden{"fuzz",
                   R"({"id":11,"verb":"fuzz","params":)"
                   R"({"device":"h800","seed":1,"count":5}})",
                   {"cases", "failed", "passed", "first_failure"}}),
    [](const auto& param_info) { return param_info.param.name; });

// ------------------------------------------------------ malformed corpus --

TEST(ServeProtocol, MalformedCorpusAllStructuredErrorsSessionSurvives) {
  ServeEngine engine;
  Session session(engine);

  struct Bad {
    std::string line;
    std::string code;
    bool id_recovered;
    std::uint64_t id;
  };
  const std::vector<Bad> corpus = {
      // Broken JSON in assorted ways; no id recoverable.
      {"{", "invalid_argument", false, 0},
      {"]", "invalid_argument", false, 0},
      {"nul", "invalid_argument", false, 0},
      {R"({"id":1,"verb":"ping"} trailing)", "invalid_argument", false, 0},
      {R"({"id":1,"id":2,"verb":"ping"})", "invalid_argument", false, 0},
      {"\"just a string\"", "invalid_argument", false, 0},
      {R"({"id":1,"verb":"ping",})", "invalid_argument", false, 0},
      // Truncated mid-structure (a cut-off line from a dying client).
      {R"({"id":9,"verb":"simulate","params":{"device":"h8)",
       "invalid_argument", false, 0},
      // Valid JSON, invalid requests; id is recoverable and must echo.
      {R"({"id":4,"verb":"ping","extra":1})", "invalid_argument", true, 4},
      {R"({"id":5})", "invalid_argument", true, 5},
      {R"({"id":6,"verb":42})", "invalid_argument", true, 6},
      {R"({"id":-1,"verb":"ping"})", "invalid_argument", false, 0},
      {R"({"id":7,"verb":"ping","params":[]})", "invalid_argument", true, 7},
      // Verb-level validation with id echo.
      {R"({"id":8,"verb":"simulate"})", "invalid_argument", true, 8},
      {R"({"id":9,"verb":"simulate","params":)"
       R"({"device":"h800","kernel":"ffma_dep","itres":64}})",
       "invalid_argument", true, 9},
      {R"({"id":10,"verb":"simulate","params":)"
       R"({"device":"h800","kernel":"ffma_dep","iters":"64"}})",
       "invalid_argument", true, 10},
      {R"({"id":12,"verb":"simulate","params":)"
       R"({"device":"h800","kernel":"ffma_dep","iters":9999999999}})",
       "invalid_argument", true, 12},
      {R"({"id":13,"verb":"close","params":{"x":1}})", "invalid_argument",
       true, 13},
  };
  for (const auto& bad : corpus) {
    const std::string reply = session.handle_line(bad.line);
    expect_error(reply, bad.code, bad.id_recovered, bad.id);
    EXPECT_FALSE(session.closed()) << bad.line;
  }

  // Oversized request: > kMaxRequestBytes in one line.
  std::string huge = R"({"id":1,"verb":"ping","params":{"x":")";
  huge.append(kMaxRequestBytes, 'x');
  huge += "\"}}";
  expect_error(session.handle_line(huge), "resource_exhausted", false, 0);

  // After the whole corpus the session still answers correctly.
  expect_ok(session.handle_line(R"({"id":99,"verb":"ping"})"), 99);
  const auto counters = engine.counters();
  EXPECT_EQ(counters.requests, corpus.size() + 2);
  EXPECT_EQ(counters.errors, corpus.size() + 1);
  EXPECT_EQ(counters.ok, 1u);
}

// ------------------------------------- bad names are replies, not deaths --

TEST(ServeProtocol, BadKernelAndDeviceNamesNeverTerminateTheSession) {
  ServeEngine engine;
  Session session(engine);

  const std::string bad_kernel = session.handle_line(
      R"({"id":1,"verb":"simulate","params":)"
      R"({"device":"h800","kernel":"definitely_not_a_kernel"}})");
  expect_error(bad_kernel, "invalid_argument", true, 1);
  // The diagnostic names the accepted kernels so a remote caller can fix
  // the request without reading the source.
  EXPECT_NE(bad_kernel.find("accepted"), std::string::npos);
  EXPECT_NE(bad_kernel.find("ffma_dep"), std::string::npos);

  const std::string bad_device = session.handle_line(
      R"({"id":2,"verb":"simulate","params":)"
      R"({"device":"gtx260","kernel":"ffma_dep"}})");
  expect_error(bad_device, "invalid_argument", true, 2);
  EXPECT_NE(bad_device.find("accepted"), std::string::npos);

  // Same for every verb that takes names.
  for (const char* verb : {"profile", "trace", "sweep"}) {
    const std::string reply = session.handle_line(
        std::string(R"({"id":3,"verb":")") + verb +
        R"(","params":{"device":"h800","kernel":"nope"}})");
    expect_error(reply, "invalid_argument", true, 3);
  }
  expect_error(session.handle_line(
                   R"({"id":4,"verb":"fuzz","params":{"device":"nope"}})"),
               "invalid_argument", true, 4);

  EXPECT_FALSE(session.closed());
  expect_ok(session.handle_line(R"({"id":5,"verb":"ping"})"), 5);
}

// -------------------------------------------------------- stats contract --

TEST(ServeProtocol, StatsReportsCacheAndRequestCounters) {
  ServeEngine engine;
  Session session(engine);
  const std::string query =
      R"({"id":1,"verb":"simulate","params":)"
      R"({"device":"h800","kernel":"ffma_dep","iters":32}})";
  (void)session.handle_line(query);  // miss + insert
  (void)session.handle_line(query);  // hit
  const json::Value result =
      expect_ok(session.handle_line(R"({"id":2,"verb":"stats"})"), 2);
  const json::Value* cache = result.find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_EQ(cache->find("lookups")->as_u64(), 2u);
  EXPECT_EQ(cache->find("hits")->as_u64(), 1u);
  EXPECT_EQ(cache->find("misses")->as_u64(), 1u);
  EXPECT_EQ(cache->find("entries")->as_u64(), 1u);
  const json::Value* requests = result.find("requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_EQ(requests->find("total")->as_u64(), 3u);
  // stats itself is not yet counted as ok when it renders its own payload.
  EXPECT_EQ(requests->find("ok")->as_u64(), 2u);
  EXPECT_EQ(requests->find("errors")->as_u64(), 0u);
}

// ------------------------------------------------- execution-hint policy --

TEST(ServeProtocol, ThreadsHintDoesNotChangeIdentityOrBytes) {
  // Determinism contract: worker-thread count is an execution hint, so the
  // same chip query at threads 1 and 4 shares one cache entry and one set
  // of reply bytes.
  ServeEngine engine;
  Session session(engine);
  const std::string base =
      R"({"id":1,"verb":"simulate","params":{"device":"h800",)"
      R"("kernel":"ffma_dep","iters":32,"mode":"chip","threads":1}})";
  const std::string hinted =
      R"({"id":1,"verb":"simulate","params":{"device":"h800",)"
      R"("kernel":"ffma_dep","iters":32,"mode":"chip","threads":4}})";
  const std::string a = session.handle_line(base);
  const std::string b = session.handle_line(hinted);
  EXPECT_EQ(a, b);
  EXPECT_EQ(engine.cache().stats().entries, 1u);
  EXPECT_EQ(engine.cache().stats().hits, 1u);
}

TEST(ServeProtocol, DefaultsNormalizeIntoTheSameCacheSlot) {
  // Spelling the defaults explicitly is the same query.
  ServeEngine engine;
  Session session(engine);
  const std::string implicit =
      R"({"id":1,"verb":"simulate","params":)"
      R"({"device":"h800","kernel":"ffma_dep"}})";
  const std::string explicit_defaults =
      R"({"id":1,"verb":"simulate","params":)"
      R"({"device":"h800","kernel":"ffma_dep","iters":256,"mode":"sm"}})";
  const std::string a = session.handle_line(implicit);
  const std::string b = session.handle_line(explicit_defaults);
  EXPECT_EQ(a, b);
  EXPECT_EQ(engine.cache().stats().entries, 1u);
}

TEST(ServeProtocol, CapacityZeroDisablesCachingButStaysCorrect) {
  ServeOptions options;
  options.cache_capacity = 0;
  ServeEngine engine(options);
  Session session(engine);
  const std::string query =
      R"({"id":1,"verb":"simulate","params":)"
      R"({"device":"h800","kernel":"ffma_dep","iters":32}})";
  const std::string a = session.handle_line(query);
  const std::string b = session.handle_line(query);
  EXPECT_EQ(a, b);  // recomputation is bit-identical anyway
  EXPECT_EQ(engine.cache().stats().hits, 0u);
  EXPECT_EQ(engine.cache().stats().misses, 2u);
}

}  // namespace
}  // namespace hsim::serve
