// Functional mma/wgmma numerics: exactness against an FP64 reference for
// exactly-representable inputs, accumulator-precision effects, sparse
// equivalence, integer and binary paths.
#include "tensorcore/mma_func.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hsim::tc {
namespace {

using num::DType;

MatF random_matrix(int r, int c, DType storage, Xoshiro256ss& rng) {
  MatF m(r, c);
  fill_random(m, storage, rng);
  return m;
}

TEST(MmaFp, ExactOnSmallIntegers) {
  Xoshiro256ss rng(1);
  MatF a(16, 16), b(16, 8), c(16, 8);
  for (auto& v : a.data()) v = static_cast<float>(rng.range(-4, 4));
  for (auto& v : b.data()) v = static_cast<float>(rng.range(-4, 4));
  for (auto& v : c.data()) v = static_cast<float>(rng.range(-16, 16));
  const MatF d = mma_fp(a, b, c, DType::kFp16, DType::kFp32);
  const auto ref = matmul_f64(a, b, c);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      EXPECT_EQ(static_cast<double>(d.at(i, j)), ref.at(i, j)) << i << "," << j;
    }
  }
}

TEST(MmaFp, Fp32AccumulationErrorBounded) {
  Xoshiro256ss rng(2);
  const auto a = random_matrix(16, 16, DType::kFp16, rng);
  const auto b = random_matrix(16, 8, DType::kFp16, rng);
  const MatF c(16, 8);
  const MatF d = mma_fp(a, b, c, DType::kFp16, DType::kFp32);
  const auto ref = matmul_f64(a, b, c);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      // k=16 FP32 accumulation: relative error well below 2^-18.
      EXPECT_NEAR(static_cast<double>(d.at(i, j)), ref.at(i, j),
                  std::abs(ref.at(i, j)) * 1e-5 + 1e-6);
    }
  }
}

TEST(MmaFp, Fp16AccumulationIsLossier) {
  Xoshiro256ss rng(3);
  const auto a = random_matrix(16, 64, DType::kFp16, rng);
  const auto b = random_matrix(64, 8, DType::kFp16, rng);
  const MatF c(16, 8);
  const MatF d16 = mma_fp(a, b, c, DType::kFp16, DType::kFp16);
  const MatF d32 = mma_fp(a, b, c, DType::kFp16, DType::kFp32);
  double err16 = 0, err32 = 0;
  const auto ref = matmul_f64(a, b, c);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      err16 += std::abs(static_cast<double>(d16.at(i, j)) - ref.at(i, j));
      err32 += std::abs(static_cast<double>(d32.at(i, j)) - ref.at(i, j));
    }
  }
  EXPECT_GT(err16, err32 * 4.0);  // FP16 accumulate is markedly worse
  // Every FP16-accumulated value is itself representable in FP16.
  for (const float v : d16.data()) {
    EXPECT_EQ(v, num::round_through(v, num::kFp16Spec));
  }
}

TEST(MmaFp, InputsRoundedThroughStorage) {
  // A value that FP16 cannot hold must behave as its rounded version.
  MatF a(16, 16), b(16, 8), c(16, 8);
  a.at(0, 0) = 1.0009765f;  // rounds to 1.0 + 2^-10 exactly? -> rounding
  b.at(0, 0) = 1.0f;
  const MatF d = mma_fp(a, b, c, DType::kFp16, DType::kFp32);
  EXPECT_EQ(d.at(0, 0), num::round_through(1.0009765f, num::kFp16Spec));
}

TEST(MmaFp, Tf32KeepsMorePrecisionThanFp16) {
  Xoshiro256ss rng(4);
  MatF a(16, 8), b(8, 8), c(16, 8);
  for (auto& v : a.data()) v = static_cast<float>(rng.uniform(0.9, 1.1));
  for (auto& v : b.data()) v = static_cast<float>(rng.uniform(0.9, 1.1));
  MatF a16 = a, b16 = b;
  for (auto& v : a16.data()) v = round_to_storage(v, DType::kFp16);
  for (auto& v : b16.data()) v = round_to_storage(v, DType::kFp16);
  const auto ref = matmul_f64(a, b, c);  // unrounded reference
  const MatF d_tf32 = mma_fp(a, b, c, DType::kTf32, DType::kFp32);
  const MatF d_fp16 = mma_fp(a, b, c, DType::kFp16, DType::kFp32);
  double err_tf32 = 0, err_fp16 = 0;
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      err_tf32 += std::abs(static_cast<double>(d_tf32.at(i, j)) - ref.at(i, j));
      err_fp16 += std::abs(static_cast<double>(d_fp16.at(i, j)) - ref.at(i, j));
    }
  }
  // Same mantissa width (10 bits) but the inputs here are near 1.0 where
  // both formats behave alike; use fp8 for a sharper contrast instead.
  const MatF d_fp8 = mma_fp(a, b, c, DType::kFp8E4M3, DType::kFp32);
  double err_fp8 = 0;
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      err_fp8 += std::abs(static_cast<double>(d_fp8.at(i, j)) - ref.at(i, j));
    }
  }
  EXPECT_GT(err_fp8, err_tf32 * 10.0);
}

TEST(MmaSparse, MatchesDenseOfDecompressed) {
  Xoshiro256ss rng(5);
  const auto dense = prune_2_4(random_matrix(16, 32, DType::kFp16, rng));
  const auto b = random_matrix(32, 8, DType::kFp16, rng);
  const MatF c(16, 8);
  const Sparse24 compressed = compress_2_4(dense);
  const MatF via_sparse =
      mma_sparse_fp(compressed, b, c, DType::kFp16, DType::kFp32);
  const MatF via_dense = mma_fp(dense, b, c, DType::kFp16, DType::kFp32);
  EXPECT_EQ(via_sparse.data(), via_dense.data());
}

TEST(MmaInt, ExactInt8) {
  Xoshiro256ss rng(6);
  MatI8 a(16, 32), b(32, 8);
  fill_random(a, rng);
  fill_random(b, rng);
  MatI32 c(16, 8);
  for (auto& v : c.data()) v = static_cast<std::int32_t>(rng.range(-100, 100));
  const MatI32 d = mma_int(a, b, c);
  for (int i = 0; i < 16; ++i) {
    for (int j = 0; j < 8; ++j) {
      std::int64_t expected = c.at(i, j);
      for (int k = 0; k < 32; ++k) {
        expected += static_cast<int>(a.at(i, k)) * static_cast<int>(b.at(k, j));
      }
      EXPECT_EQ(d.at(i, j), static_cast<std::int32_t>(expected));
    }
  }
}

TEST(MmaBinary, AndPopcSemantics) {
  MatB a(2, 2), b(2, 2);
  a.at(0, 0) = 0xF0F0F0F0u;
  a.at(0, 1) = 0xFFFFFFFFu;
  b.at(0, 0) = 0xFF00FF00u;
  b.at(1, 0) = 0x0000FFFFu;
  MatI32 c(2, 2);
  c.at(0, 0) = 1;
  const MatI32 d = mma_binary(a, b, c);
  // popc(F0F0F0F0 & FF00FF00) = popc(F000F000) = 8; popc(FFFFFFFF &
  // 0000FFFF) = 16; + carry-in 1.
  EXPECT_EQ(d.at(0, 0), 1 + 8 + 16);
}

TEST(MmaFp, AccumulatorCarryIn) {
  MatF a(16, 8), b(8, 8), c(16, 8);
  for (auto& v : c.data()) v = 3.0f;
  const MatF d = mma_fp(a, b, c, DType::kFp16, DType::kFp32);
  for (const float v : d.data()) EXPECT_EQ(v, 3.0f);  // A,B zero: D = C
}

}  // namespace
}  // namespace hsim::tc
