#include "conformance/golden.hpp"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/json_writer.hpp"

namespace hsim::conformance {
namespace {

void skip_ws(std::string_view text, std::size_t& pos) {
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
          text[pos] == '\r')) {
    ++pos;
  }
}

/// Parse a JSON string literal starting at `pos` (on the opening quote).
bool parse_string(std::string_view text, std::size_t& pos, std::string& out) {
  if (pos >= text.size() || text[pos] != '"') return false;
  ++pos;
  out.clear();
  while (pos < text.size()) {
    const char c = text[pos++];
    if (c == '"') return true;
    if (c != '\\') {
      out += c;
      continue;
    }
    if (pos >= text.size()) return false;
    const char esc = text[pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        if (pos + 4 > text.size()) return false;
        unsigned code = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = text[pos++];
          code <<= 4;
          if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        // Snapshots only ever escape control characters, which are ASCII.
        out += static_cast<char>(code & 0x7F);
        break;
      }
      default:
        return false;
    }
  }
  return false;
}

}  // namespace

std::string shape_to_json(const ShapeMap& shape) {
  std::ostringstream os;
  os << "{\n";
  bool first = true;
  for (const auto& [key, value] : shape) {
    if (!first) os << ",\n";
    first = false;
    os << "  \"";
    write_json_escaped(os, key);
    os << "\": \"";
    write_json_escaped(os, value);
    os << '"';
  }
  os << "\n}\n";
  return os.str();
}

Expected<ShapeMap> shape_from_json(std::string_view text) {
  ShapeMap shape;
  std::size_t pos = 0;
  skip_ws(text, pos);
  if (pos >= text.size() || text[pos] != '{') {
    return invalid_argument("golden snapshot: expected '{'");
  }
  ++pos;
  skip_ws(text, pos);
  if (pos < text.size() && text[pos] == '}') return shape;  // empty object
  for (;;) {
    skip_ws(text, pos);
    std::string key;
    if (!parse_string(text, pos, key)) {
      return invalid_argument("golden snapshot: expected a key string");
    }
    skip_ws(text, pos);
    if (pos >= text.size() || text[pos] != ':') {
      return invalid_argument("golden snapshot: expected ':' after key " + key);
    }
    ++pos;
    skip_ws(text, pos);
    std::string value;
    if (!parse_string(text, pos, value)) {
      return invalid_argument("golden snapshot: expected a string value for " +
                              key);
    }
    shape[key] = value;
    skip_ws(text, pos);
    if (pos < text.size() && text[pos] == ',') {
      ++pos;
      continue;
    }
    if (pos < text.size() && text[pos] == '}') return shape;
    return invalid_argument("golden snapshot: expected ',' or '}'");
  }
}

Expected<ShapeMap> load_shape(const std::string& path) {
  std::ifstream in(path);
  if (!in) return invalid_argument("cannot open golden snapshot: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return shape_from_json(buffer.str());
}

void save_shape(const std::string& path, const ShapeMap& shape) {
  std::ofstream out(path);
  HSIM_ASSERT(static_cast<bool>(out));
  out << shape_to_json(shape);
  HSIM_ASSERT(static_cast<bool>(out));
}

std::vector<std::string> diff_shapes(const ShapeMap& expected,
                                     const ShapeMap& actual) {
  std::vector<std::string> diffs;
  for (const auto& [key, value] : expected) {
    const auto it = actual.find(key);
    if (it == actual.end()) {
      diffs.push_back("missing key: " + key + " (expected \"" + value + "\")");
    } else if (it->second != value) {
      diffs.push_back(key + ": \"" + it->second + "\" != golden \"" + value +
                      "\"");
    }
  }
  for (const auto& [key, value] : actual) {
    if (!expected.contains(key)) {
      diffs.push_back("unexpected key: " + key + " = \"" + value + "\"");
    }
  }
  return diffs;
}

bool update_golden_requested() {
  const char* env = std::getenv("HSIM_UPDATE_GOLDEN");
  return env != nullptr && std::string_view(env) != "0" &&
         std::string_view(env) != "";
}

}  // namespace hsim::conformance
