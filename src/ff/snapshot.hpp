// Versioned, content-addressed snapshot container for simulator state.
//
// The payload is an opaque StateWriter byte stream (SmCore + MemorySystem,
// see their save_state methods); this layer adds what the raw stream cannot
// carry safely across processes: a magic/version header, the identity of
// the simulation the state belongs to, and an FNV-1a digest of the payload.
// Restoring into a mismatched device/program/shape — or from a truncated or
// bit-flipped file — is rejected with a typed Error, never undefined
// behaviour: every sweep point of a parameter study can restore one shared
// post-warmup snapshot and trust what it got.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/state_io.hpp"
#include "common/status.hpp"
#include "isa/program.hpp"

namespace hsim::ff {

/// "HSIMSNAP", little-endian.
inline constexpr std::uint64_t kSnapshotMagic = 0x50414e534d495348ull;
/// Bump only when a component's *wire* format changes, not its in-memory
/// layout: mem::Cache's packed tag-path rework deliberately kept the
/// original per-line stream (tag, sector_valid, u64 lru_stamp, valid — see
/// Cache::save_state), so version-1 snapshots interchange across it.
inline constexpr std::uint32_t kSnapshotVersion = 1;

/// Identity of the simulation a snapshot belongs to.  All fields are
/// compared on open; the program is content-addressed (its disassembly plus
/// iteration count), so editing a kernel invalidates stale snapshots.
struct SnapshotKey {
  std::string device;
  std::uint64_t program_hash = 0;
  int blocks = 0;
  int threads_per_block = 0;
  /// Issue count at the snapshot boundary (the post-warmup point).
  std::uint64_t boundary = 0;

  [[nodiscard]] static std::uint64_t hash_program(const isa::Program& program);
};

/// Wrap a payload in the versioned container.
[[nodiscard]] std::vector<std::uint8_t> seal_snapshot(
    const SnapshotKey& key, std::span<const std::uint8_t> payload);

/// Validate a container and return the payload.  Errors name the first
/// check that failed: bad magic, unsupported version, identity mismatch
/// (which field), truncation, or digest mismatch.
[[nodiscard]] Expected<std::vector<std::uint8_t>> open_snapshot(
    std::span<const std::uint8_t> bytes, const SnapshotKey& expect);

/// File convenience wrappers (binary IO, whole-file reads).
[[nodiscard]] Expected<bool> write_snapshot_file(
    const std::string& path, const SnapshotKey& key,
    std::span<const std::uint8_t> payload);
[[nodiscard]] Expected<std::vector<std::uint8_t>> read_snapshot_file(
    const std::string& path, const SnapshotKey& expect);

}  // namespace hsim::ff
