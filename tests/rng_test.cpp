#include "common/rng.hpp"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace hsim {
namespace {

TEST(Xoshiro, DeterministicFromSeed) {
  Xoshiro256ss a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Xoshiro, DifferentSeedsDiverge) {
  Xoshiro256ss a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Xoshiro, BelowStaysInRange) {
  Xoshiro256ss rng(7);
  for (const std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(Xoshiro, BelowOneAlwaysZero) {
  Xoshiro256ss rng(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(rng.below(1), 0u);
}

TEST(Xoshiro, RangeInclusive) {
  Xoshiro256ss rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Xoshiro, UniformInUnitInterval) {
  Xoshiro256ss rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Xoshiro, NormalMeanAndVariance) {
  Xoshiro256ss rng(13);
  double sum = 0, sq = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double x = rng.normal();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sq / kN, 1.0, 0.05);
}

TEST(Xoshiro, ForkProducesIndependentStream) {
  Xoshiro256ss a(5);
  Xoshiro256ss b = a.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LE(same, 1);
}

TEST(RandomPermutation, IsAPermutation) {
  Xoshiro256ss rng(3);
  const auto perm = random_permutation(257, rng);
  std::set<std::uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 257u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 256u);
}

TEST(RandomCycle, SingleCycleVisitsAll) {
  Xoshiro256ss rng(4);
  for (const std::uint32_t n : {2u, 3u, 17u, 256u, 1000u}) {
    const auto next = random_cycle(n, rng);
    // Follow the cycle: must return to 0 after exactly n hops, touching
    // every element once.
    std::vector<bool> seen(n, false);
    std::uint32_t at = 0;
    for (std::uint32_t i = 0; i < n; ++i) {
      EXPECT_FALSE(seen[at]) << "n=" << n;
      seen[at] = true;
      at = next[at];
    }
    EXPECT_EQ(at, 0u) << "n=" << n;
  }
}

TEST(RandomCycle, NoFixedPointsBeyondTrivial) {
  Xoshiro256ss rng(6);
  const auto next = random_cycle(64, rng);
  for (std::uint32_t i = 0; i < 64; ++i) EXPECT_NE(next[i], i);
}

TEST(SplitMix, Deterministic) {
  std::uint64_t s1 = 99, s2 = 99;
  EXPECT_EQ(splitmix64(s1), splitmix64(s2));
  EXPECT_EQ(s1, s2);
  EXPECT_NE(splitmix64(s1), splitmix64(s2) + 1);
}

}  // namespace
}  // namespace hsim
