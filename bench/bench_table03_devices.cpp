// Table III: properties of the Ampere, Ada Lovelace and Hopper devices.
#include <iostream>

#include "bench/bench_util.hpp"
#include "common/units.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  Table table("Table III: device properties");
  table.set_header({"Property", "A100 PCIe", "RTX4090", "H800 PCIe"},
                   {Align::kLeft, Align::kRight, Align::kRight, Align::kRight});
  const auto devices = arch::all_devices();
  const auto row = [&](std::string label, auto&& fn) {
    std::vector<std::string> cells{std::move(label)};
    for (const auto* device : devices) cells.push_back(fn(*device));
    table.add_row(std::move(cells));
  };

  row("Comp. Capability", [](const arch::DeviceSpec& d) {
    return d.cc_string() + " (" + std::string(to_string(d.generation)) + ")";
  });
  row("SMs * cores/SM", [](const arch::DeviceSpec& d) {
    return std::to_string(d.sm_count) + " * " + std::to_string(d.cores_per_sm);
  });
  row("Max Clock rate", [](const arch::DeviceSpec& d) {
    return fmt_fixed(d.boost_clock_mhz, 0) + " MHz";
  });
  row("Mem. Size", [](const arch::DeviceSpec& d) {
    using hsim::operator""_GiB;
    return fmt_fixed(static_cast<double>(d.memory.dram_bytes) /
                         static_cast<double>(1_GiB), 0) + "GB";
  });
  row("Mem. Type", [](const arch::DeviceSpec& d) { return d.memory.dram_type; });
  row("Mem. Clock rate", [](const arch::DeviceSpec& d) {
    return fmt_fixed(d.memory.dram_clock_mhz, 0) + " MHz";
  });
  row("Mem. Bus", [](const arch::DeviceSpec& d) {
    return std::to_string(d.memory.dram_bus_bits) + "-bit";
  });
  row("Mem. Bandwidth", [](const arch::DeviceSpec& d) {
    return fmt_fixed(d.memory.dram_peak_gbps, 0) + " GB/s";
  });
  row("Tensor Cores", [](const arch::DeviceSpec& d) {
    return std::to_string(d.tc.cores_total) + " (gen " +
           std::to_string(d.tc.generation) + ")";
  });
  row("DPX hardware", [](const arch::DeviceSpec& d) {
    return d.dpx.hardware ? "Yes" : "No";
  });
  row("Distributed shared memory", [](const arch::DeviceSpec& d) {
    return d.dsm.available ? "Yes" : "No";
  });
  row("TMA", [](const arch::DeviceSpec& d) { return d.has_tma ? "Yes" : "No"; });

  bench::emit(table, opt);
  return 0;
}
