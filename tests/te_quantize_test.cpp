// FP8 scaling quantisation (the TE conversion pipeline).
#include "te/quantize.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hsim::te {
namespace {

using num::DType;

TEST(Quantize, ScaleMapsAmaxToMaxFinite) {
  const std::vector<float> data{0.5f, -896.0f, 3.0f};
  const float scale = compute_scale(data, DType::kFp8E4M3);
  EXPECT_FLOAT_EQ(scale, 896.0f / 448.0f);
  const auto q = quantize(data, DType::kFp8E4M3, scale);
  const auto back = dequantize(q);
  EXPECT_FLOAT_EQ(back[1], -896.0f);  // amax is exactly representable
}

TEST(Quantize, ZeroTensorScaleOne) {
  const std::vector<float> zeros(8, 0.0f);
  EXPECT_EQ(compute_scale(zeros, DType::kFp8E4M3), 1.0f);
  const auto q = quantize(zeros, DType::kFp8E4M3);
  for (const float v : dequantize(q)) EXPECT_EQ(v, 0.0f);
}

TEST(Quantize, RoundTripErrorBounded) {
  Xoshiro256ss rng(3);
  std::vector<float> data(1024);
  for (auto& v : data) v = static_cast<float>(rng.uniform(-10.0, 10.0));
  const auto q = quantize(data, DType::kFp8E4M3);
  const auto back = dequantize(q);
  // E4M3 has a 3-bit mantissa: relative error <= 2^-4 for normal values.
  const double err = max_rel_error(data, back);
  EXPECT_LT(err, 1.0 / 16.0 + 1e-6);
  EXPECT_GT(err, 1e-4);  // it is genuinely lossy
}

TEST(Quantize, E5m2TradesPrecisionForRange) {
  Xoshiro256ss rng(4);
  std::vector<float> data(512);
  for (auto& v : data) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const auto e4m3 = dequantize(quantize(data, DType::kFp8E4M3));
  const auto e5m2 = dequantize(quantize(data, DType::kFp8E5M2));
  EXPECT_LT(max_rel_error(data, e4m3), max_rel_error(data, e5m2));
}

TEST(Quantize, SaturatesInsteadOfOverflowing) {
  // With a stale (delayed-scaling) scale, new larger values must clamp.
  const std::vector<float> data{1000.0f};
  const auto q = quantize(data, DType::kFp8E4M3, /*scale=*/1.0f);
  const auto back = dequantize(q);
  EXPECT_EQ(back[0], 448.0f);
}

TEST(Quantize, ValuesStoredAsRealFp8Bits) {
  const std::vector<float> data{448.0f};
  const auto q = quantize(data, DType::kFp8E4M3, 1.0f);
  EXPECT_EQ(q.values[0], 0x7E);  // E4M3 max finite bit pattern
}

TEST(Quantize, NegativeValuesKeepSign) {
  const std::vector<float> data{-2.0f, 2.0f};
  const auto back = dequantize(quantize(data, DType::kFp8E4M3, 1.0f));
  EXPECT_EQ(back[0], -2.0f);
  EXPECT_EQ(back[1], 2.0f);
}

TEST(MaxRelError, IgnoresExactZeros) {
  const std::vector<float> a{0.0f, 1.0f};
  const std::vector<float> b{5.0f, 1.1f};
  EXPECT_NEAR(max_rel_error(a, b), 0.1, 1e-6);
}

}  // namespace
}  // namespace hsim::te
