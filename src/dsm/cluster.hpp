// Thread-block clusters and distributed shared memory (Hopper, sm_90).
//
// A cluster co-schedules CS thread blocks on CS distinct SMs inside one GPC
// and lets any thread address another block's shared memory through the
// SM-to-SM network.  `map_shared_rank` mirrors CUDA's
// cluster.map_shared_rank(ptr, rank) (PTX `mapa`): it rewrites a shared
// address into the target block's shared-memory window.
#pragma once

#include <cstdint>

#include "arch/device.hpp"
#include "common/status.hpp"

namespace hsim::dsm {

/// Distributed shared-memory address: rank-qualified shared offset.
struct DsmAddress {
  int rank = 0;                // target block rank within the cluster
  std::uint32_t offset = 0;    // byte offset inside that block's smem

  friend bool operator==(const DsmAddress&, const DsmAddress&) = default;
};

class Cluster {
 public:
  /// Fails on devices without DSM or for illegal cluster sizes.
  static Expected<Cluster> create(const arch::DeviceSpec& device, int size);

  [[nodiscard]] int size() const noexcept { return size_; }

  /// cluster.map_shared_rank: qualify a local shared-memory offset with a
  /// target rank.  `rank` must be within the cluster.
  [[nodiscard]] Expected<DsmAddress> map_shared_rank(std::uint32_t offset,
                                                     int rank) const {
    if (rank < 0 || rank >= size_) {
      return invalid_argument("rank outside cluster");
    }
    return DsmAddress{rank, offset};
  }

  /// Fabric contention factor for this cluster size: the effective fraction
  /// of per-SM port bandwidth once CS blocks share GPC switch links.
  [[nodiscard]] double contention_factor() const noexcept { return contention_; }

 private:
  Cluster(int size, double contention) : size_(size), contention_(contention) {}
  int size_ = 1;
  double contention_ = 1.0;
};

}  // namespace hsim::dsm
