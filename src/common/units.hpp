// Unit helpers.  All sizes are bytes, frequencies Hz, times seconds unless a
// name says otherwise ("_cycles", "_ghz", ...).  Conversions live here so a
// stray *1e9 never hides in a model.
#pragma once

#include <cstdint>

namespace hsim {

constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v << 10; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v << 20; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v << 30; }

constexpr double kKilo = 1e3;
constexpr double kMega = 1e6;
constexpr double kGiga = 1e9;
constexpr double kTera = 1e12;

/// Cycles at `clock_hz` to seconds.
constexpr double cycles_to_seconds(double cycles, double clock_hz) {
  return cycles / clock_hz;
}

/// bytes/clock at `clock_hz` to GB/s (decimal GB as in vendor datasheets).
constexpr double bytes_per_clk_to_gbps(double bytes_per_clk, double clock_hz) {
  return bytes_per_clk * clock_hz / kGiga;
}

/// ops/clock at `clock_hz` to TOPS (or TFLOPS).
constexpr double ops_per_clk_to_tops(double ops_per_clk, double clock_hz) {
  return ops_per_clk * clock_hz / kTera;
}

}  // namespace hsim
