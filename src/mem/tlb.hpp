// GPU TLB model: fully associative over large pages, LRU replacement.
//
// The paper's global-latency benchmark initialises memory before timing for
// two reasons, one of which is TLB warm-up; this model lets the benchmark
// demonstrate the cold-miss penalty it is avoiding.
#pragma once

#include <cstdint>
#include <vector>

#include "common/state_io.hpp"
#include "common/status.hpp"

namespace hsim::mem {

class Tlb {
 public:
  Tlb(int entries, std::uint64_t page_bytes)
      : entries_(entries), page_bytes_(page_bytes) {
    HSIM_ASSERT(entries > 0 && page_bytes > 0);
    slots_.reserve(static_cast<std::size_t>(entries));
  }

  /// Translate; returns true on a hit.  Misses install the page (LRU).
  bool access(std::uint64_t addr) {
    const std::uint64_t page = addr / page_bytes_;
    for (auto& slot : slots_) {
      if (slot.page == page) {
        slot.stamp = next_stamp_++;
        ++hits_;
        return true;
      }
    }
    ++misses_;
    if (slots_.size() < static_cast<std::size_t>(entries_)) {
      slots_.push_back({page, next_stamp_++});
    } else {
      auto* victim = &slots_[0];
      for (auto& slot : slots_) {
        if (slot.stamp < victim->stamp) victim = &slot;
      }
      *victim = {page, next_stamp_++};
    }
    return false;
  }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void flush() { slots_.clear(); }

  void save_state(common::StateWriter& w) const {
    w.marker(0x544c4221u);  // "TLB!"
    w.u64(slots_.size());
    for (const auto& slot : slots_) {
      w.u64(slot.page);
      w.u64(slot.stamp);
    }
    w.u64(next_stamp_);
    w.u64(hits_);
    w.u64(misses_);
  }
  void load_state(common::StateReader& r) {
    r.expect_marker(0x544c4221u);
    const std::uint64_t n = r.u64();
    if (!r.expect(n <= static_cast<std::uint64_t>(entries_))) return;
    slots_.resize(static_cast<std::size_t>(n));
    for (auto& slot : slots_) {
      slot.page = r.u64();
      slot.stamp = r.u64();
    }
    next_stamp_ = r.u64();
    hits_ = r.u64();
    misses_ = r.u64();
  }

 private:
  struct Slot {
    std::uint64_t page;
    std::uint64_t stamp;
  };
  int entries_;
  std::uint64_t page_bytes_;
  std::vector<Slot> slots_;
  std::uint64_t next_stamp_ = 1;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace hsim::mem
