// Integration suite: every headline claim from the paper's evaluation,
// checked end-to-end through the full stack (bench harnesses included).
// One TEST per claim, named after where the paper states it.
#include <gtest/gtest.h>

#include "async/tiled_gemm.hpp"
#include "core/dpxbench.hpp"
#include "core/membench.hpp"
#include "core/pchase.hpp"
#include "core/tcbench.hpp"
#include "dsm/histogram.hpp"
#include "dsm/rbc.hpp"
#include "te/linear.hpp"
#include "te/llm.hpp"

namespace hsim {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;
using isa::OperandSource;
using isa::TcInstr;
using isa::TcPath;
using num::DType;

// §IV-B: "the average latency of the L2 cache is 6.5 times that of the L1
// cache, and the average latency of the global memory is 1.9 times that of
// the L2 cache."
TEST(PaperFindings, MemoryLatencyRatios) {
  double l2_over_l1 = 0, dram_over_l2 = 0;
  for (const auto* device : arch::all_devices()) {
    const double l1 =
        core::pchase(*device, mem::MemLevel::kL1).value().avg_latency_cycles;
    const double l2 =
        core::pchase(*device, mem::MemLevel::kL2).value().avg_latency_cycles;
    const double dram =
        core::pchase(*device, mem::MemLevel::kDram).value().avg_latency_cycles;
    l2_over_l1 += l2 / l1;
    dram_over_l2 += dram / l2;
  }
  EXPECT_NEAR(l2_over_l1 / 3.0, 6.5, 0.3);
  EXPECT_NEAR(dram_over_l2 / 3.0, 1.9, 0.15);
}

// §IV-B: "for the throughput of L2 Cache, H800 is 2.6 times and 2.2 times
// that of RTX4090 and A100 respectively."
TEST(PaperFindings, H800L2ThroughputLead) {
  const double h =
      core::measure_l2_throughput(h800_pcie(), core::AccessKind::kFp32)
          .value().bytes_per_clk;
  const double g =
      core::measure_l2_throughput(rtx4090(), core::AccessKind::kFp32)
          .value().bytes_per_clk;
  const double a =
      core::measure_l2_throughput(a100_pcie(), core::AccessKind::kFp32)
          .value().bytes_per_clk;
  EXPECT_NEAR(h / g, 2.6, 0.3);
  EXPECT_NEAR(h / a, 2.2, 0.3);
}

// §IV-B: "our results reach 92%, 90%, and 91% of the theoretical
// performance on RTX4090, A100, and H800."
TEST(PaperFindings, GlobalMemoryEfficiency) {
  const double fractions[] = {
      core::measure_global_throughput(rtx4090()).value().gbps / 1008.0,
      core::measure_global_throughput(a100_pcie()).value().gbps / 1555.0,
      core::measure_global_throughput(h800_pcie()).value().gbps / 2039.0,
  };
  EXPECT_NEAR(fractions[0], 0.92, 0.01);
  EXPECT_NEAR(fractions[1], 0.90, 0.01);
  EXPECT_NEAR(fractions[2], 0.91, 0.01);
}

// §IV-C: "on Hopper Tensor Cores, mma instructions can only attain an
// average of 62.9% of the theoretical peak performance."
TEST(PaperFindings, HopperMmaBelowPeak) {
  double fraction_sum = 0;
  int count = 0;
  const struct { DType ab; DType cd; int k; } shapes[] = {
      {DType::kFp16, DType::kFp16, 8},  {DType::kFp16, DType::kFp16, 16},
      {DType::kTf32, DType::kFp32, 4},  {DType::kTf32, DType::kFp32, 8},
      {DType::kInt8, DType::kInt32, 16}, {DType::kInt8, DType::kInt32, 32},
  };
  for (const auto& s : shapes) {
    const TcInstr instr{.path = TcPath::kMma, .shape = {16, 8, s.k},
                        .ab = s.ab, .cd = s.cd};
    const auto r = core::bench_tc(instr, h800_pcie()).value();
    fraction_sum += r.tflops_rand / h800_pcie().tc_peak_tflops(s.ab);
    ++count;
  }
  // The paper quotes 62.9% on average; the cell-level average of its own
  // Table VII is ~0.57 (small shapes pull it down).  Assert the structural
  // story: well below peak, and the large shapes sit near 0.65.
  EXPECT_GT(fraction_sum / count, 0.50);
  EXPECT_LT(fraction_sum / count, 0.67);
  const TcInstr large{.path = TcPath::kMma, .shape = {16, 8, 16},
                      .ab = DType::kFp16, .cd = DType::kFp16};
  EXPECT_NEAR(core::bench_tc(large, h800_pcie()).value().tflops_rand /
                  h800_pcie().tc_peak_tflops(DType::kFp16),
              0.65, 0.02);
}

// §IV-C: "the complete potential of Hopper TCs can only be realized
// through wgmma instructions."
TEST(PaperFindings, WgmmaUnlocksHopperPeak) {
  const TcInstr mma{.path = TcPath::kMma, .shape = {16, 8, 16},
                    .ab = DType::kFp16, .cd = DType::kFp16};
  const TcInstr wgmma{.path = TcPath::kWgmma, .shape = {64, 256, 16},
                      .ab = DType::kFp16, .cd = DType::kFp16,
                      .a_src = OperandSource::kSharedMemory};
  const auto mma_result = core::bench_tc(mma, h800_pcie()).value();
  const auto wgmma_result = core::bench_tc(wgmma, h800_pcie()).value();
  EXPECT_GT(wgmma_result.tflops_zero, 1.4 * mma_result.tflops_zero);
  EXPECT_GT(wgmma_result.tflops_zero / h800_pcie().tc_peak_tflops(DType::kFp16),
            0.95);
}

// §IV-C: "On the RTX4090, sparse mma instructions can achieve up to double
// the throughput... for the A100, only the sparse mma instructions with
// larger shapes can realize the theoretical speedups... on the H800, sparse
// mma can only achieve an average speedup of 1.42x."
TEST(PaperFindings, SparseSpeedupsPerDevice) {
  const auto speedup = [&](const arch::DeviceSpec& device, int k_dense) {
    const TcInstr dense{.path = TcPath::kMma, .shape = {16, 8, k_dense},
                        .ab = DType::kFp16, .cd = DType::kFp16};
    const TcInstr sparse{.path = TcPath::kMma, .shape = {16, 8, 2 * k_dense},
                         .ab = DType::kFp16, .cd = DType::kFp16,
                         .sparse = true};
    return core::bench_tc(sparse, device).value().tflops_rand /
           core::bench_tc(dense, device).value().tflops_rand;
  };
  EXPECT_NEAR(speedup(rtx4090(), 8), 2.0, 0.1);
  EXPECT_NEAR(speedup(rtx4090(), 16), 2.0, 0.1);
  EXPECT_LT(speedup(a100_pcie(), 8), 1.6);        // small shape misses 2x
  EXPECT_NEAR(speedup(a100_pcie(), 16), 2.0, 0.1);  // large shape reaches it
  const double h800_avg =
      (speedup(h800_pcie(), 8) + speedup(h800_pcie(), 16)) / 2.0;
  EXPECT_NEAR(h800_avg, 1.42, 0.12);
}

// Table X guidance: "it is advisable to opt for larger values of N (>= 64)
// whenever possible."
TEST(PaperFindings, WgmmaNeedsN64) {
  const auto tput = [&](int n) {
    const TcInstr instr{.path = TcPath::kWgmma, .shape = {64, n, 16},
                        .ab = DType::kFp16, .cd = DType::kFp32,
                        .a_src = OperandSource::kSharedMemory};
    return core::bench_tc(instr, h800_pcie()).value().tflops_zero;
  };
  EXPECT_GT(tput(64), 0.95 * tput(256));
  EXPECT_LT(tput(32), 0.75 * tput(64));
  EXPECT_LT(tput(8), 0.30 * tput(64));
}

// Table VIII: the power-limit mechanism. "power consumption nearing the
// 350W power limit of the H800-PCIe, subsequently causing a reduction in
// frequency."
TEST(PaperFindings, RandWgmmaHitsPowerWall) {
  const TcInstr instr{.path = TcPath::kWgmma, .shape = {64, 256, 16},
                      .ab = DType::kFp16, .cd = DType::kFp32,
                      .a_src = OperandSource::kRegister};
  const auto r = core::bench_tc(instr, h800_pcie()).value();
  EXPECT_TRUE(r.throttled);
  EXPECT_NEAR(r.tflops_rand / r.tflops_zero, 0.913, 0.03);  // 665.4 / 728.5
}

// Table XI: "the average energy efficiency of H800 is 1.60x and 1.69x that
// of A100 and RTX4090 respectively" (dense).
TEST(PaperFindings, EnergyEfficiencyLeads) {
  double h_sum = 0, a_sum = 0, g_sum = 0;
  const struct { DType ab; DType cd; int k; } rows[] = {
      {DType::kFp16, DType::kFp16, 16}, {DType::kFp16, DType::kFp32, 16},
      {DType::kTf32, DType::kFp32, 8},  {DType::kInt8, DType::kInt32, 32},
  };
  for (const auto& row : rows) {
    const TcInstr instr{.path = TcPath::kMma, .shape = {16, 8, row.k},
                        .ab = row.ab, .cd = row.cd};
    const auto eff = [&](const arch::DeviceSpec& device) {
      const auto r = core::bench_tc(instr, device).value();
      return r.tflops_rand / r.power_rand_w;
    };
    h_sum += eff(h800_pcie()) / eff(a100_pcie());
    a_sum += 1.0;
    g_sum += eff(h800_pcie()) / eff(rtx4090());
  }
  EXPECT_NEAR(h_sum / 4.0, 1.60, 0.2);
  EXPECT_NEAR(g_sum / 4.0, 1.69, 0.25);
}

// Fig 4: "When N=16384, H800 and 4090 utilizing FP8 achieve almost twice
// the throughput of FP16" (we reproduce the crossover and a >=1.5x gain).
TEST(PaperFindings, Fp8LinearGains) {
  for (const auto* device : {&rtx4090(), &h800_pcie()}) {
    const te::CostModel model(*device);
    const auto fp16 = te::linear_square(model, 16384, DType::kFp16).value();
    const auto fp8 = te::linear_square(model, 16384, DType::kFp8E4M3).value();
    EXPECT_GT(fp8.gflops / fp16.gflops, 1.5) << device->name;
    // And at 1024 the ordering inverts (conversion overhead).
    const auto fp16_small = te::linear_square(model, 1024, DType::kFp16).value();
    const auto fp8_small =
        te::linear_square(model, 1024, DType::kFp8E4M3).value();
    EXPECT_LT(fp8_small.gflops, fp16_small.gflops) << device->name;
  }
}

// §IV-E DPX: "when the number of blocks just exceeds an integral multiple
// of the number of SMs, the throughput plummets... the DPX acceleration
// unit is located at the SM level."
TEST(PaperFindings, DpxWaveQuantisation) {
  const int sms = h800_pcie().sm_count;
  const auto points =
      core::dpx_block_sweep(h800_pcie(), dpx::Func::kViMax3S32, sms + 1).value();
  EXPECT_LT(points.back().gcalls_per_sec,
            0.6 * points[static_cast<std::size_t>(sms - 1)].gcalls_per_sec);
}

// Tables XIII/XIV: "at a block size of 8x8, AsyncPipe shows an average
// performance improvement... as block size increases, the benefits
// diminish."
TEST(PaperFindings, AsyncCopyBenefitShrinks) {
  const auto gain = [&](const arch::DeviceSpec& device, int bd) {
    const async::GemmWorkload w{.block_dim = bd};
    const double a =
        async::run_gemm(device, w, async::CopyVariant::kAsyncPipe, 8)
            .value().gflops;
    const double s =
        async::run_gemm(device, w, async::CopyVariant::kSyncShare, 8)
            .value().gflops;
    return a / s;
  };
  for (const auto* device : {&h800_pcie(), &a100_pcie()}) {
    const double small = gain(*device, 8);
    const double large = gain(*device, 32);
    EXPECT_GT(small, 1.15) << device->name;
    EXPECT_GT(small, large) << device->name;
    EXPECT_LT(large, 1.25) << device->name;
  }
}

// §IV-E DSM: "SM-to-SM network latency is 180 cycles, a 32% reduction
// compared to L2 cache."
TEST(PaperFindings, DsmLatencyBeatsL2) {
  const double dsm_latency = dsm::measure_dsm_latency(h800_pcie()).value();
  const double l2 =
      core::pchase(h800_pcie(), mem::MemLevel::kL2).value().avg_latency_cycles;
  EXPECT_NEAR(dsm_latency, 180.0, 2.0);
  EXPECT_NEAR(1.0 - dsm_latency / l2, 0.32, 0.03);
}

// Fig 8: "A peak throughput of nearly 3.27 TB/s is observed with a cluster
// size of 2, reducing to 2.65 TB/s with a cluster size of 4."
TEST(PaperFindings, DsmRingThroughput) {
  const auto cs2 = dsm::run_rbc(h800_pcie(), {.cluster_size = 2,
                                              .block_threads = 1024, .ilp = 4})
                       .value();
  const auto cs4 = dsm::run_rbc(h800_pcie(), {.cluster_size = 4,
                                              .block_threads = 1024, .ilp = 4})
                       .value();
  EXPECT_NEAR(cs2.total_tbps, 3.27, 0.25);
  EXPECT_NEAR(cs4.total_tbps, 2.65, 0.25);
}

// Fig 9: "a notable performance drop occurs from 1024 to 2048 Nbins when
// CS=1... employing the cluster mechanism... mitigat[es] this issue."
TEST(PaperFindings, DsmHistogramOccupancyRelief) {
  const auto run = [&](int cs, int nbins) {
    const dsm::HistogramConfig cfg{.cluster_size = cs, .block_threads = 128,
                                   .nbins = nbins, .elements = 1 << 18};
    return dsm::run_histogram(h800_pcie(), cfg).value().elements_per_second;
  };
  EXPECT_LT(run(1, 2048), 0.85 * run(1, 1024));
  EXPECT_GT(run(2, 2048), 1.2 * run(1, 2048));
}

// Table XII context: FP8's compute advantage is invisible in short-sequence
// decode; memory capacity decides which cells exist at all.
TEST(PaperFindings, LlmDecodePrecisionStory) {
  const te::CostModel hopper(h800_pcie());
  const auto fp32 =
      te::run_generation(hopper, te::llama_3b(), DType::kFp32, {}).value();
  const auto fp8 =
      te::run_generation(hopper, te::llama_3b(), DType::kFp8E4M3, {}).value();
  EXPECT_GT(fp32.tokens_per_second, fp8.tokens_per_second);
  const te::CostModel ada(rtx4090());
  EXPECT_TRUE(
      te::run_generation(ada, te::llama2_7b(), DType::kFp32, {}).value().oom);
}

}  // namespace
}  // namespace hsim
