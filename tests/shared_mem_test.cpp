#include "mem/shared_mem.hpp"

#include <array>
#include <numeric>

#include <gtest/gtest.h>

namespace hsim::mem {
namespace {

std::array<std::uint32_t, 32> lane_addrs(std::uint32_t (*fn)(int)) {
  std::array<std::uint32_t, 32> addrs{};
  for (int i = 0; i < 32; ++i) addrs[static_cast<std::size_t>(i)] = fn(i);
  return addrs;
}

TEST(SharedMemory, LinearAccessIsConflictFree) {
  SharedMemory smem(16384);
  const auto addrs = lane_addrs([](int lane) {
    return static_cast<std::uint32_t>(lane * 4);
  });
  EXPECT_EQ(smem.conflict_degree(addrs), 1);
}

TEST(SharedMemory, BroadcastIsConflictFree) {
  SharedMemory smem(16384);
  const auto addrs = lane_addrs([](int) { return 64u; });
  EXPECT_EQ(smem.conflict_degree(addrs), 1);
}

TEST(SharedMemory, Stride2GivesTwoWayConflict) {
  SharedMemory smem(16384);
  const auto addrs = lane_addrs([](int lane) {
    return static_cast<std::uint32_t>(lane * 8);  // stride 2 words
  });
  EXPECT_EQ(smem.conflict_degree(addrs), 2);
}

TEST(SharedMemory, Stride32IsWorstCase) {
  SharedMemory smem(16384);
  const auto addrs = lane_addrs([](int lane) {
    return static_cast<std::uint32_t>(lane * 128);  // all lanes -> bank 0
  });
  EXPECT_EQ(smem.conflict_degree(addrs), 32);
}

TEST(SharedMemory, PowerOfTwoStrideSweep) {
  SharedMemory smem(1 << 20);
  // Classic result: stride s (in words) over 32 banks gives gcd-based
  // conflict degree = s / gcd(s,32) ... specifically degree = min(32, s)
  // for power-of-two strides.
  for (const int stride_words : {1, 2, 4, 8, 16, 32}) {
    std::array<std::uint32_t, 32> addrs{};
    for (int lane = 0; lane < 32; ++lane) {
      addrs[static_cast<std::size_t>(lane)] =
          static_cast<std::uint32_t>(lane * stride_words * 4);
    }
    EXPECT_EQ(smem.conflict_degree(addrs), stride_words) << stride_words;
  }
}

TEST(SharedMemory, OddStrideConflictFree) {
  SharedMemory smem(1 << 20);
  std::array<std::uint32_t, 32> addrs{};
  for (int lane = 0; lane < 32; ++lane) {
    addrs[static_cast<std::size_t>(lane)] =
        static_cast<std::uint32_t>(lane * 33 * 4);  // odd stride: coprime
  }
  EXPECT_EQ(smem.conflict_degree(addrs), 1);
}

TEST(SharedMemory, LoadStoreRoundTrip) {
  SharedMemory smem(4096);
  smem.store_u32(100, 0xDEADBEEF);
  EXPECT_EQ(smem.load_u32(100), 0xDEADBEEFu);
  EXPECT_EQ(smem.load_u32(104), 0u);
}

TEST(SharedMemory, AtomicAddReturnsOld) {
  SharedMemory smem(4096);
  EXPECT_EQ(smem.atomic_add_u32(0, 5), 0u);
  EXPECT_EQ(smem.atomic_add_u32(0, 7), 5u);
  EXPECT_EQ(smem.load_u32(0), 12u);
}

TEST(SharedMemory, FillResets) {
  SharedMemory smem(64);
  smem.store_u32(0, 1234);
  smem.fill(0);
  EXPECT_EQ(smem.load_u32(0), 0u);
}

TEST(SharedMemory, EmptyAddressListDegreeOne) {
  SharedMemory smem(64);
  EXPECT_EQ(smem.conflict_degree({}), 1);
}

}  // namespace
}  // namespace hsim::mem
