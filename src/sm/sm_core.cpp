#include "sm/sm_core.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>

#include "isa/ptx.hpp"
#include "numerics/types.hpp"
#include "tensorcore/timing.hpp"

namespace hsim::sm {
namespace {

constexpr int kLanes = 32;
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

float as_f32(std::uint64_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}
std::uint64_t from_f32(float value) {
  return std::bit_cast<std::uint32_t>(value);
}
double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t from_f64(double value) { return std::bit_cast<std::uint64_t>(value); }

std::int32_t as_s32(std::uint64_t bits) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(bits));
}

using trace::StallReason;

}  // namespace

struct SmCore::Warp {
  int id = 0;
  int block = 0;
  int scheduler = 0;
  std::size_t pc = 0;
  std::uint32_t iteration = 0;
  bool done = false;
  bool at_barrier = false;
  double blocked_until = 0;       // async-wait / barrier release
  // What a wait until blocked_until means for stall attribution.
  trace::StallReason block_reason = trace::StallReason::kBarrier;
  double last_issue_cycle = -1;
  std::vector<double> reg_ready;  // per register
  // Why a RAW wait on each register would stall (producer classification).
  std::vector<trace::StallReason> reg_reason;
  std::vector<std::uint64_t> lanes;  // regs * kLanes
  // Async-copy group bookkeeping.  Slots live in a deque so their addresses
  // are stable fixup targets for deferred (full-chip) completions: `known`
  // is the max completion folded in so far, `outstanding` counts tickets
  // still waiting on an epoch-barrier resolution.
  struct AsyncSlot {
    double known = 0;
    int outstanding = 0;
  };
  std::deque<AsyncSlot> async_slots;
  AsyncSlot* async_open = nullptr;       // accumulating uncommitted copies
  std::vector<AsyncSlot*> async_groups;  // committed groups, FIFO

  [[nodiscard]] std::uint64_t& lane(int r, int l) {
    return lanes[static_cast<std::size_t>(r) * kLanes + static_cast<std::size_t>(l)];
  }
  [[nodiscard]] std::uint64_t lane(int r, int l) const {
    return lanes[static_cast<std::size_t>(r) * kLanes + static_cast<std::size_t>(l)];
  }
};

struct SmCore::Units {
  std::array<sim::PipelinedUnit, 4> fma;
  std::array<sim::PipelinedUnit, 4> alu;
  sim::PipelinedUnit fp64;
  std::array<sim::PipelinedUnit, 4> dpx;
  sim::PipelinedUnit tensor;
  sim::PipelinedUnit lsu;
  sim::PipelinedUnit dsm;
  double fma_ii = 1, fma_lat = 4;
  double alu_ii = 2, alu_lat = 4;
  double fp64_ii = 1, fp64_lat = 8;
  double dpx_ii = 2, dpx_lat = 6;
  double tensor_ii = 4, tensor_lat = 16;
  double lsu_ii = 1;
  double dsm_lat = 180;
  double dsm_bytes_per_clk = 16;
};

// A warp parked on cp.async.wait whose groups still had unresolved tickets;
// resolve_async_waits() turns it into a real blocked_until once the epoch
// barrier has landed every completion.
struct SmCore::AsyncWait {
  int warp = 0;
  double floor = 0;  // wait time implied by the already-resolved groups
  std::vector<Warp::AsyncSlot*> groups;
};

SmCore::SmCore(const arch::DeviceSpec& device, mem::MemPath* mem, int sm_id)
    : device_(device), mem_(mem), sm_id_(sm_id), units_(std::make_unique<Units>()) {
  auto& u = *units_;
  // Per-partition FP32 lanes set the FMA initiation interval for a warp.
  const double fma_lanes = static_cast<double>(device.cores_per_sm) / 4.0;
  u.fma_ii = 32.0 / fma_lanes;
  u.alu_ii = 2.0;  // 16 INT32 lanes per partition on all three parts
  u.fma_lat = 4.0;
  u.alu_lat = device.dpx.emu_latency_per_op;  // INT32 dependent-use latency
  // The FP64 pipe is shared SM-wide; its width comes from the same
  // calibration constant that bottlenecks the FP64 memory benchmark.
  u.fp64_ii = 256.0 / device.memory.fp64_add_bytes_per_clk_sm;
  u.fp64_lat = device.generation == arch::Generation::kAmpere ? 8.0 : 16.0;
  u.dpx_ii = 128.0 / device.dpx.hw_ops_per_clk_sm;  // per-scheduler interval
  u.dpx_lat = device.dpx.hw_latency;
  u.dsm_lat = device.dsm.latency_cycles;
  u.dsm_bytes_per_clk = device.dsm.port_bytes_per_clk;
  for (int s = 0; s < 4; ++s) {
    u.fma[static_cast<std::size_t>(s)] = sim::PipelinedUnit(u.fma_ii, u.fma_lat);
    u.alu[static_cast<std::size_t>(s)] = sim::PipelinedUnit(u.alu_ii, u.alu_lat);
    u.dpx[static_cast<std::size_t>(s)] = sim::PipelinedUnit(u.dpx_ii, u.dpx_lat);
  }
  u.fp64 = sim::PipelinedUnit(u.fp64_ii, u.fp64_lat);
  // The SM-wide tensor pipe issues at the calibrated mma cadence; HMMA in
  // the micro-ISA stands for the m16n8k16 FP16->FP32 instruction.
  const auto mma = tc::tc_timing(
      isa::TcInstr{.path = isa::TcPath::kMma,
                   .shape = {16, 8, 16},
                   .ab = num::DType::kFp16,
                   .cd = num::DType::kFp32},
      device);
  if (mma) {
    u.tensor_ii = mma.value().cadence;
    u.tensor_lat = mma.value().latency;
  }
  u.tensor = sim::PipelinedUnit(u.tensor_ii, u.tensor_lat);
  u.lsu = sim::PipelinedUnit(u.lsu_ii, 1.0);
  u.dsm = sim::PipelinedUnit(1.0, u.dsm_lat);
}

SmCore::~SmCore() = default;

mem::SharedMemory& SmCore::shared() {
  if (!shared_) {
    shared_ = std::make_unique<mem::SharedMemory>(device_.memory.smem_max_per_sm,
                                                  device_.memory.smem_banks);
    shared_->set_trace(trace_);
  }
  return *shared_;
}

void SmCore::set_trace(trace::TraceSink* sink) {
  trace_ = sink;
  if (shared_) shared_->set_trace(sink);
}

std::uint64_t SmCore::reg(int warp, int reg_index, int lane) const {
  const auto& w = warps_.at(static_cast<std::size_t>(warp));
  return w.lane(reg_index, lane);
}

std::vector<sim::UnitSample> SmCore::unit_usage() const {
  const auto& u = *units_;
  // Quadrant-partitioned units report busy cycles averaged over the four
  // per-scheduler slices so occupancy = busy / total stays in [0, 1];
  // ops are summed.
  const auto sum4 = [](const std::array<sim::PipelinedUnit, 4>& parts) {
    sim::UnitSample out;
    for (const auto& part : parts) {
      out.busy_cycles += part.busy_cycles();
      out.ops += part.ops();
    }
    out.busy_cycles /= 4.0;
    return out;
  };
  auto fma = sum4(u.fma);
  fma.name = "SM.FMA";
  auto alu = sum4(u.alu);
  alu.name = "SM.ALU";
  auto dpx = sum4(u.dpx);
  dpx.name = "SM.DPX";
  return {std::move(fma), std::move(alu),
          {"SM.FP64", u.fp64.busy_cycles(), u.fp64.ops()},
          std::move(dpx),
          {"SM.TC", u.tensor.busy_cycles(), u.tensor.ops()},
          {"SM.LSU", u.lsu.busy_cycles(), u.lsu.ops()},
          {"SM.DSM", u.dsm.busy_cycles(), u.dsm.ops()}};
}

RunResult SmCore::run(const isa::Program& program, const BlockShape& shape) {
  HSIM_ASSERT(shape.blocks >= 1 && shape.threads_per_block >= 1);
  begin(program, shape.blocks, shape.threads_per_block);
  for (int b = 0; b < shape.blocks; ++b) launch_block(b, b, 0.0);
  advance(kInf);
  return finalize();
}

void SmCore::begin(const isa::Program& program, int block_slots,
                   int threads_per_block) {
  HSIM_ASSERT(!program.empty());
  HSIM_ASSERT(block_slots >= 1 && threads_per_block >= 1);
  program_ = &program;

  // Size the register file to what the program touches.
  int max_reg = 0;
  for (const auto& inst : program.body()) {
    max_reg = std::max({max_reg, inst.rd, inst.ra, inst.rb, inst.rc});
  }
  num_regs_ = max_reg + 1;

  const int warps_per_block = (threads_per_block + 31) / 32;
  const int total_warps = block_slots * warps_per_block;
  warps_.assign(static_cast<std::size_t>(total_warps), Warp{});
  for (int i = 0; i < total_warps; ++i) {
    auto& w = warps_[static_cast<std::size_t>(i)];
    w.id = i;
    w.block = i / warps_per_block;
    w.scheduler = i % 4;
    w.done = true;  // slots are empty until a block is launched into them
  }
  barrier_target_ = warps_per_block;
  result_ = {};
  last_completion_ = 0.0;
  now_ = 0.0;
  live_ = 0;
  rotate_ = {0, 0, 0, 0};
  block_live_.assign(static_cast<std::size_t>(block_slots), 0);
  block_retire_.assign(static_cast<std::size_t>(block_slots), -1.0);
  async_waits_.clear();
  access_pending_ = false;
}

void SmCore::launch_block(int slot, int block_global_id, double at) {
  const int warps_per_block = barrier_target_;
  HSIM_ASSERT_MSG(slot >= 0 && slot < block_slots(), "slot=%d of %d", slot,
                  block_slots());
  HSIM_ASSERT_MSG(block_live_[static_cast<std::size_t>(slot)] == 0,
                  "slot %d still has %d live warps", slot,
                  block_live_[static_cast<std::size_t>(slot)]);
  now_ = std::max(now_, at);
  block_live_[static_cast<std::size_t>(slot)] = warps_per_block;
  block_retire_[static_cast<std::size_t>(slot)] = -1.0;
  for (int j = 0; j < warps_per_block; ++j) {
    auto& w = warps_[static_cast<std::size_t>(slot * warps_per_block + j)];
    w.pc = 0;
    w.iteration = 0;
    w.done = false;
    w.at_barrier = false;
    w.blocked_until = 0;
    w.block_reason = StallReason::kBarrier;
    w.last_issue_cycle = -1;
    w.reg_ready.assign(static_cast<std::size_t>(num_regs_), 0.0);
    w.reg_reason.assign(static_cast<std::size_t>(num_regs_),
                        StallReason::kScoreboardRaw);
    w.lanes.assign(static_cast<std::size_t>(num_regs_) * kLanes, 0);
    // R0 is preloaded with the *grid* thread id (lane-varying), the way
    // CUDA kernels derive addresses from blockIdx/threadIdx.  For a
    // single-SM run() block_global_id equals the slot, so this reduces to
    // the SM-local warp index.
    for (int l = 0; l < kLanes; ++l) {
      w.lane(0, l) =
          (static_cast<std::uint64_t>(block_global_id) *
               static_cast<std::uint64_t>(warps_per_block) +
           static_cast<std::uint64_t>(j)) *
              kLanes +
          static_cast<std::uint64_t>(l);
    }
    w.async_slots.clear();
    w.async_groups.clear();
    w.async_open = &w.async_slots.emplace_back();
    ++live_;
  }
  if (trace_ != nullptr) {
    for (int j = 0; j < warps_per_block; ++j) {
      const auto& w = warps_[static_cast<std::size_t>(slot * warps_per_block + j)];
      trace_->on_event({trace::EventKind::kFetch, StallReason::kNone, now_, 0.0,
                        sm_id_, w.id, 0, "warp"});
    }
  }
}

bool SmCore::advance(double until) {
  HSIM_ASSERT(program_ != nullptr);
  const isa::Program& program = *program_;
  const int warps_per_block = barrier_target_;
  const int total_warps = static_cast<int>(warps_.size());

  while (live_ > 0 && now_ + kEps < until) {
    HSIM_ASSERT(now_ < 5e9);  // deadlock guard

    // Barrier release: when every live warp of a block is parked at the
    // barrier, release them all on the next cycle.
    for (int b = 0; b * warps_per_block < total_warps; ++b) {
      int waiting = 0, alive = 0;
      for (int i = 0; i < warps_per_block; ++i) {
        const auto& w = warps_[static_cast<std::size_t>(b * warps_per_block + i)];
        if (!w.done) ++alive;
        if (w.at_barrier) ++waiting;
      }
      if (alive > 0 && waiting == alive) {
        for (int i = 0; i < warps_per_block; ++i) {
          auto& w = warps_[static_cast<std::size_t>(b * warps_per_block + i)];
          if (w.at_barrier) {
            w.at_barrier = false;
            w.blocked_until = now_ + 1;
            w.block_reason = StallReason::kBarrier;
          }
        }
      }
    }

    for (int s = 0; s < 4; ++s) {
      bool issued = false;
      // Loose round-robin over this scheduler's warps.
      int count = 0;
      for (int i = 0; i < total_warps; ++i) {
        if (warps_[static_cast<std::size_t>(i)].scheduler == s) ++count;
      }
      if (count == 0) continue;
      int seen = 0;
      // Stall attribution for this scheduler slot: the reason the *first*
      // live candidate (the round-robin head) could not issue.  If every
      // warp of the scheduler has retired the slot is drain, not a stall.
      StallReason slot_reason = StallReason::kIdle;
      std::string_view slot_where = "drain";
      int slot_warp = -1;
      for (int step = 0; step < total_warps && !issued; ++step) {
        const int idx = (rotate_[static_cast<std::size_t>(s)] + step) % total_warps;
        auto& w = warps_[static_cast<std::size_t>(idx)];
        if (w.scheduler != s || w.done) continue;
        ++seen;
        StallReason why = StallReason::kNone;
        std::string_view where;
        if (try_issue(w, now_, program, why, where)) {
          issued = true;
          rotate_[static_cast<std::size_t>(s)] = (idx + 1) % total_warps;
          if (w.done) {
            --live_;
            auto& remaining = block_live_[static_cast<std::size_t>(w.block)];
            if (--remaining == 0) {
              block_retire_[static_cast<std::size_t>(w.block)] = now_;
            }
          }
        } else if (slot_warp < 0 && why != StallReason::kNone) {
          slot_warp = w.id;
          slot_reason = why;
          slot_where = where;
        }
        if (seen >= count) break;
      }
      if (!issued) {
        ++result_.stall_cycles;
        if (trace_ != nullptr) {
          trace_->on_event({trace::EventKind::kStall, slot_reason, now_, 1.0,
                            sm_id_, slot_warp, -1, slot_where});
        }
      }
    }
    now_ += 1.0;
  }
  return live_ > 0;
}

void SmCore::resolve_async_waits() {
  for (const auto& wait : async_waits_) {
    double until = wait.floor;
    for (const auto* group : wait.groups) {
      HSIM_ASSERT_MSG(group->outstanding == 0,
                      "async group with %d unresolved tickets at barrier",
                      group->outstanding);
      until = std::max(until, group->known);
    }
    auto& w = warps_[static_cast<std::size_t>(wait.warp)];
    w.blocked_until = until;  // block_reason stays kTmaWait
  }
  async_waits_.clear();
}

RunResult SmCore::finalize() {
  // Completion: the last value becomes visible when its register is ready,
  // and a warp that retired while parked on an async wait keeps the kernel
  // alive until the wait resolves.
  double finish = now_;
  for (const auto& w : warps_) {
    for (const double t : w.reg_ready) finish = std::max(finish, t);
    finish = std::max(finish, w.blocked_until);
  }
  // Outstanding store traffic drains before the kernel retires.
  finish = std::max(finish, units_->dsm.next_free());
  finish = std::max(finish, units_->lsu.next_free());
  // An instruction with no destination register (a store, a rd-less
  // atomic) still occupies its unit until completion; the kernel is not
  // over while any issued instruction is in flight.
  finish = std::max(finish, last_completion_);
  HSIM_ASSERT_MSG(std::isfinite(finish),
                  "deferred access unresolved at finalize (finish=%g)", finish);
  result_.cycles = finish;
  return result_;
}

bool SmCore::try_issue(Warp& warp, double now, const isa::Program& program,
                       trace::StallReason& why, std::string_view& where) {
  if (warp.done) {
    why = StallReason::kNone;
    return false;
  }
  const auto& inst = program.body()[warp.pc];
  where = isa::mnemonic(inst.op);
  if (warp.at_barrier) {
    why = StallReason::kBarrier;
    return false;
  }
  if (warp.blocked_until > now + kEps) {
    why = warp.block_reason;
    return false;
  }
  if (warp.last_issue_cycle >= now - kEps) {
    why = StallReason::kNone;  // dual issue, not modelled — not a stall
    return false;
  }

  // Source operands must be ready; a wait inherits the classification of
  // the pending producer (scoreboard, memory level, bank conflict, ...).
  for (const int src : {inst.ra, inst.rb, inst.rc}) {
    if (src != isa::kRegNone &&
        warp.reg_ready[static_cast<std::size_t>(src)] > now + kEps) {
      why = warp.reg_reason[static_cast<std::size_t>(src)];
      return false;
    }
  }
  // In-order issue: the destination's previous write must have retired
  // enough to rename; we conservatively require WAW ordering.
  if (inst.rd != isa::kRegNone &&
      warp.reg_ready[static_cast<std::size_t>(inst.rd)] > now + kEps &&
      inst.op != isa::Opcode::kClock) {
    why = StallReason::kScoreboardWaw;
    return false;
  }

  // Unit availability.
  why = StallReason::kStructural;
  auto& u = *units_;
  const auto sched = static_cast<std::size_t>(warp.scheduler);
  switch (isa::unit_of(inst.op)) {
    case isa::UnitClass::kFma:
      if (u.fma[sched].next_free() > now + kEps) {
        where = "SM.FMA";
        return false;
      }
      break;
    case isa::UnitClass::kAlu:
      if (u.alu[sched].next_free() > now + kEps) {
        where = "SM.ALU";
        return false;
      }
      break;
    case isa::UnitClass::kFp64:
      if (u.fp64.next_free() > now + kEps) {
        where = "SM.FP64";
        return false;
      }
      break;
    case isa::UnitClass::kDpx:
      if (device_.dpx.hardware) {
        if (u.dpx[sched].next_free() > now + kEps) {
          where = "SM.DPX";
          return false;
        }
      } else {
        if (u.alu[sched].next_free() > now + kEps) {
          where = "SM.ALU";
          return false;
        }
      }
      break;
    case isa::UnitClass::kTensor:
      if (u.tensor.next_free() > now + kEps) {
        where = "SM.TC";
        return false;
      }
      break;
    case isa::UnitClass::kLsu:
      if (u.lsu.next_free() > now + kEps) {
        where = "SM.LSU";
        return false;
      }
      break;
    case isa::UnitClass::kDsm:
      // Remote traffic stalls at the SM's injection port, not the LSU; a
      // busy port means the SM-to-SM fabric is backed up.
      if (u.dsm.next_free() > now + kEps) {
        why = StallReason::kDsmHop;
        where = "SM.DSM";
        return false;
      }
      break;
    case isa::UnitClass::kControl:
      break;
  }
  why = StallReason::kNone;

  value_reason_ = StallReason::kScoreboardRaw;
  access_pending_ = false;
  access_floor_ = now;
  const double completion = execute(warp, inst, now);
  if (inst.rd != isa::kRegNone) {
    warp.reg_ready[static_cast<std::size_t>(inst.rd)] = completion;
    warp.reg_reason[static_cast<std::size_t>(inst.rd)] = value_reason_;
  }
  if (access_pending_) {
    // Deferred full-chip access: the provisional completion is +inf; the
    // epoch-barrier resolution patches the scoreboard slot (and the kernel
    // drain tracker) with the arbitrated time.
    mem::DeferredFixup fixup;
    if (inst.rd != isa::kRegNone) {
      fixup.time_slot = &warp.reg_ready[static_cast<std::size_t>(inst.rd)];
      fixup.reason_slot = &warp.reg_reason[static_cast<std::size_t>(inst.rd)];
    }
    fixup.floor = access_floor_;
    fixup.drain_slot = &last_completion_;
    mem_->attach_fixup(fixup);
    access_pending_ = false;
  }
  warp.last_issue_cycle = now;
  if (std::isfinite(completion)) {
    last_completion_ = std::max(last_completion_, completion);
  } else {
    last_completion_ = std::max(last_completion_, access_floor_);
  }
  ++result_.instructions_issued;
  if (trace_ != nullptr) {
    // A deferred access has no completion yet; report the L2-hit latency as
    // a provisional lower bound on the issue span.
    const double span = std::isfinite(completion)
                            ? completion - now
                            : device_.memory.l2_hit_latency;
    trace_->on_event({trace::EventKind::kIssue, StallReason::kNone, now, span,
                      sm_id_, warp.id, static_cast<std::int32_t>(warp.pc),
                      isa::mnemonic(inst.op)});
  }

  // Advance control flow.
  if (inst.op == isa::Opcode::kExit) {
    warp.done = true;
    ++result_.warps_retired;
    if (trace_ != nullptr) {
      trace_->on_event({trace::EventKind::kRetire, StallReason::kNone, now,
                        0.0, sm_id_, warp.id,
                        static_cast<std::int32_t>(warp.pc), "exit"});
    }
    return true;
  }
  if (inst.op == isa::Opcode::kBarSync) {
    warp.at_barrier = true;
  }
  ++warp.pc;
  if (warp.pc >= program.size()) {
    warp.pc = 0;
    ++warp.iteration;
    if (warp.iteration >= program.iterations()) {
      warp.done = true;
      ++result_.warps_retired;
      if (trace_ != nullptr) {
        trace_->on_event({trace::EventKind::kRetire, StallReason::kNone, now,
                          0.0, sm_id_, warp.id,
                          static_cast<std::int32_t>(program.size() - 1),
                          "retire"});
      }
    }
  }
  return true;
}

double SmCore::execute(Warp& warp, const isa::Instruction& inst, double now) {
  using isa::Opcode;
  auto& u = *units_;
  const auto sched = static_cast<std::size_t>(warp.scheduler);

  const auto src = [&](int r, int l) -> std::uint64_t {
    return r == isa::kRegNone ? 0 : warp.lane(r, l);
  };
  const auto for_lanes = [&](auto&& fn) {
    if (inst.rd == isa::kRegNone) return;
    for (int l = 0; l < kLanes; ++l) {
      warp.lane(inst.rd, l) = fn(src(inst.ra, l), src(inst.rb, l), src(inst.rc, l));
    }
  };

  switch (inst.op) {
    case Opcode::kNop:
      return now;
    case Opcode::kMov:
      for_lanes([&](std::uint64_t, std::uint64_t, std::uint64_t) {
        return static_cast<std::uint64_t>(inst.imm);
      });
      return u.alu[sched].issue(now);
    case Opcode::kIAdd3:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return a + b + c;
      });
      return u.alu[sched].issue(now);
    case Opcode::kIMad:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return a * b + c;
      });
      return u.alu[sched].issue(now);
    case Opcode::kIMnMx:
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        const auto x = as_s32(a), y = as_s32(b);
        return static_cast<std::uint64_t>(
            static_cast<std::uint32_t>((inst.imm & 1) ? std::max(x, y) : std::min(x, y)));
      });
      return u.alu[sched].issue(now);
    case Opcode::kVIMnMx: {
      // Hopper fused DPX op: rd = minmax(ra + rb, rc), optional relu.
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        const std::int64_t sum =
            static_cast<std::int64_t>(as_s32(a)) + static_cast<std::int64_t>(as_s32(b));
        const auto clamped = static_cast<std::int32_t>(
            std::clamp<std::int64_t>(sum, std::numeric_limits<std::int32_t>::min(),
                                     std::numeric_limits<std::int32_t>::max()));
        std::int32_t r = (inst.imm & 1) ? std::max(clamped, as_s32(c))
                                        : std::min(clamped, as_s32(c));
        if (inst.imm & 2) r = std::max(r, 0);
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
      });
      return device_.dpx.hardware ? u.dpx[sched].issue(now) : u.alu[sched].issue(now);
    }
    case Opcode::kLop3:
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        switch (inst.imm) {
          case 1: return a | b;
          case 2: return a ^ b;
          default: return a & b;
        }
      });
      return u.alu[sched].issue(now);
    case Opcode::kShf:
      for_lanes([&](std::uint64_t a, std::uint64_t, std::uint64_t) {
        return a << (inst.imm & 63);
      });
      return u.alu[sched].issue(now);
    case Opcode::kPopc:
      for_lanes([](std::uint64_t a, std::uint64_t, std::uint64_t) {
        return static_cast<std::uint64_t>(std::popcount(a));
      });
      return u.alu[sched].issue(now);
    case Opcode::kFAdd:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return from_f32(as_f32(a) + as_f32(b));
      });
      return u.fma[sched].issue(now);
    case Opcode::kFMul:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return from_f32(as_f32(a) * as_f32(b));
      });
      return u.fma[sched].issue(now);
    case Opcode::kFFma:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return from_f32(as_f32(a) * as_f32(b) + as_f32(c));
      });
      return u.fma[sched].issue(now);
    case Opcode::kHAdd2:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        using num::fp16;
        std::uint64_t out = 0;
        for (int half = 0; half < 2; ++half) {
          const auto av = fp16::from_bits(static_cast<std::uint16_t>(a >> (16 * half)));
          const auto bv = fp16::from_bits(static_cast<std::uint16_t>(b >> (16 * half)));
          const auto sum = fp16(av.to_float() + bv.to_float());
          out |= static_cast<std::uint64_t>(sum.bits()) << (16 * half);
        }
        return out;
      });
      return u.fma[sched].issue(now);
    case Opcode::kDAdd:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return from_f64(as_f64(a) + as_f64(b));
      });
      return u.fp64.issue(now);
    case Opcode::kDMul:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return from_f64(as_f64(a) * as_f64(b));
      });
      return u.fp64.issue(now);
    case Opcode::kHMma:
      // Fragment math stands in as a per-lane FP32 FMA; the timing is the
      // calibrated tensor-core cadence/latency.
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return from_f32(as_f32(a) * as_f32(b) + as_f32(c));
      });
      return u.tensor.issue(now);
    case Opcode::kClock:
      for_lanes([&](std::uint64_t, std::uint64_t, std::uint64_t) {
        return static_cast<std::uint64_t>(now);
      });
      return now;  // clock() reads the counter combinationally
    case Opcode::kBarSync:
      return now;
    case Opcode::kExit:
      return now;
    case Opcode::kCpAsyncCommit:
      warp.async_groups.push_back(warp.async_open);
      warp.async_open = &warp.async_slots.emplace_back();
      return now;
    case Opcode::kCpAsyncWait: {
      // cp.async.wait_group N: wait until at most N groups are in flight.
      const auto keep = static_cast<std::size_t>(std::max<std::int64_t>(inst.imm, 0));
      double wait_until = now;
      std::vector<Warp::AsyncSlot*> unresolved;
      while (warp.async_groups.size() > keep) {
        Warp::AsyncSlot* group = warp.async_groups.front();
        warp.async_groups.erase(warp.async_groups.begin());
        if (group->outstanding > 0) {
          unresolved.push_back(group);  // value lands at the next barrier
        } else {
          wait_until = std::max(wait_until, group->known);
        }
      }
      if (unresolved.empty()) {
        warp.blocked_until = wait_until;
      } else {
        warp.blocked_until = kInf;
        async_waits_.push_back(AsyncWait{warp.id, wait_until, std::move(unresolved)});
      }
      warp.block_reason = StallReason::kTmaWait;
      return wait_until;
    }
    default:
      return memory_op(warp, inst, now);
  }
}

// Fold an async copy's completion into the warp's open group.  `ready` is
// the finite part (local completion plus the shared-memory write hop); when
// `pending`, the deferred tickets' completions are folded in at the next
// epoch barrier via the registered fixup.
void SmCore::fold_async(Warp& warp, double ready, bool pending) {
  auto* slot = warp.async_open;
  slot->known = std::max(slot->known, ready);
  if (pending) {
    mem::DeferredFixup fixup;
    fixup.time_slot = &slot->known;
    fixup.offset = device_.memory.smem_latency;
    fixup.outstanding = &slot->outstanding;
    // Like deferred stores, in-flight async traffic must drain before the
    // kernel retires even when no wait ever observes the group.
    fixup.drain_slot = &last_completion_;
    slot->outstanding += mem_->attach_fixup(fixup);
  }
}

double SmCore::memory_op(Warp& warp, const isa::Instruction& inst, double now) {
  using isa::Opcode;
  auto& u = *units_;
  ++result_.mem_transactions;

  // Gather per-lane byte addresses from ra (+imm offset).
  std::array<std::uint64_t, kLanes> addrs{};
  for (int l = 0; l < kLanes; ++l) {
    addrs[static_cast<std::size_t>(l)] =
        (inst.ra == isa::kRegNone ? 0 : warp.lane(inst.ra, l)) +
        static_cast<std::uint64_t>(inst.imm);
  }

  const auto load_word = [&](std::uint64_t addr) -> std::uint64_t {
    const std::uint64_t index = addr / 8;
    if (index < global_.size()) return global_[index];
    return 0;
  };

  switch (inst.op) {
    case Opcode::kTmaLoad: {
      // Bulk tensor copy: the TMA engine, not the threads, generates the
      // addresses — only the block's elected warp issues it, and it costs a
      // single LSU slot regardless of box size (imm = box bytes).
      const int warps_per_block = std::max(barrier_target_, 1);
      if (warp.id % warps_per_block != 0) return now + 1;  // non-elected: nop
      u.lsu.issue(now);
      const auto bytes = static_cast<std::uint32_t>(std::max<std::int64_t>(inst.imm, 32));
      double completion;
      bool pending = false;
      if (mem_ == nullptr) {
        completion = now + device_.memory.dram_latency;
      } else {
        const std::uint64_t base = inst.ra == isa::kRegNone ? 0 : warp.lane(inst.ra, 0);
        completion = now;
        // The engine streams the box in 128-byte lines straight to smem.
        for (std::uint32_t off = 0; off < bytes; off += 128) {
          const double t =
              mem_->warp_transaction(sm_id_, base + off,
                                     std::min<std::uint32_t>(128, bytes - off),
                                     16, mem::MemSpace::kGlobalCg, now);
          if (mem_->last_pending()) {
            pending = true;
          } else {
            completion = std::max(completion, t);
          }
        }
      }
      fold_async(warp, completion + device_.memory.smem_latency, pending);
      return now + 1;
    }
    case Opcode::kLdgCa:
    case Opcode::kLdgCg:
    case Opcode::kStg:
    case Opcode::kCpAsync: {
      const auto space = inst.op == Opcode::kLdgCa || inst.op == Opcode::kCpAsync
                             ? mem::MemSpace::kGlobalCa
                             : mem::MemSpace::kGlobalCg;
      // Functional load.
      if (inst.rd != isa::kRegNone &&
          (inst.op == Opcode::kLdgCa || inst.op == Opcode::kLdgCg)) {
        for (int l = 0; l < kLanes; ++l) {
          warp.lane(inst.rd, l) = load_word(addrs[static_cast<std::size_t>(l)]);
        }
      }
      u.lsu.issue(now);  // LSU dispatch slot
      double completion = now;
      value_reason_ = StallReason::kMemL1;
      if (mem_ == nullptr) {
        completion = now + device_.memory.l1_hit_latency;
      } else {
        // Coalesce lanes into 128-byte-line transactions.
        std::array<std::uint64_t, kLanes> lines{};
        int num_lines = 0;
        for (int l = 0; l < kLanes; ++l) {
          const std::uint64_t line = addrs[static_cast<std::size_t>(l)] / 128;
          bool seen = false;
          for (int j = 0; j < num_lines; ++j) {
            if (lines[static_cast<std::size_t>(j)] == line) {
              seen = true;
              break;
            }
          }
          if (!seen) lines[static_cast<std::size_t>(num_lines++)] = line;
        }
        if (num_lines == 1 && inst.access_bytes <= 8) {
          // Dependent/narrow access: pure latency path.
          completion = mem_->load(sm_id_, addrs[0], space, now).ready_time;
          value_reason_ = mem::stall_reason_of(mem_->last_access());
          access_pending_ = mem_->last_pending();
        } else {
          // A multi-line warp transaction classifies by the deepest level
          // any of its lines had to reach.
          auto deepest = mem::MemLevel::kL1;
          double finite = completion;
          for (int j = 0; j < num_lines; ++j) {
            const std::uint64_t base = lines[static_cast<std::size_t>(j)] * 128;
            const double t =
                mem_->warp_transaction(sm_id_, base, 128,
                                       static_cast<int>(inst.access_bytes), space, now);
            if (mem_->last_pending()) {
              access_pending_ = true;
            } else {
              finite = std::max(finite, t);
            }
            deepest = std::max(deepest, mem_->last_access().deepest);
          }
          access_floor_ = finite;
          completion = access_pending_ ? kInf : finite;
          value_reason_ = mem::stall_reason_of(mem::AccessClass{deepest, false});
        }
      }
      if (inst.op == Opcode::kCpAsync) {
        // Asynchronous: the warp is not blocked; completion lands in the
        // open async group (plus the shared-memory write hop).
        const double finite = access_pending_ ? access_floor_ : completion;
        fold_async(warp, finite + device_.memory.smem_latency, access_pending_);
        access_pending_ = false;
        return now + 1;
      }
      return completion;
    }
    case Opcode::kLds:
    case Opcode::kSts:
    case Opcode::kAtomSharedAdd: {
      auto& smem = shared();
      std::array<std::uint32_t, kLanes> byte_addrs{};
      for (int l = 0; l < kLanes; ++l) {
        byte_addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(
            addrs[static_cast<std::size_t>(l)] % smem.size());
      }
      const int degree = smem.conflict_degree(byte_addrs, now, sm_id_, warp.id);
      value_reason_ = degree > 1 ? StallReason::kSmemBankConflict
                                 : StallReason::kMemShared;
      const double ii = static_cast<double>(degree);
      const double latency =
          device_.memory.smem_latency + static_cast<double>(degree - 1);
      const double completion = u.lsu.issue(now, ii, latency);
      const auto src_val = [&](int r, int l) -> std::uint64_t {
        return r == isa::kRegNone ? 0 : warp.lane(r, l);
      };
      if (inst.op == Opcode::kLds && inst.rd != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          warp.lane(inst.rd, l) = smem.load_u32(byte_addrs[static_cast<std::size_t>(l)]);
        }
      } else if (inst.op == Opcode::kSts && inst.ra != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          smem.store_u32(byte_addrs[static_cast<std::size_t>(l)],
                         static_cast<std::uint32_t>(src_val(inst.rb, l)));
        }
      } else if (inst.op == Opcode::kAtomSharedAdd) {
        for (int l = 0; l < kLanes; ++l) {
          const auto old = smem.atomic_add_u32(
              byte_addrs[static_cast<std::size_t>(l)],
              static_cast<std::uint32_t>(src_val(inst.rb, l)));
          if (inst.rd != isa::kRegNone) warp.lane(inst.rd, l) = old;
        }
      }
      return completion;
    }
    case Opcode::kMapa:
      // Address mapping is a cheap ALU-class operation.
      if (inst.rd != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          warp.lane(inst.rd, l) = addrs[static_cast<std::size_t>(l)];
        }
      }
      return u.alu[static_cast<std::size_t>(warp.scheduler)].issue(now);
    case Opcode::kLdsRemote:
    case Opcode::kStsRemote:
    case Opcode::kAtomRemoteAdd: {
      if (!device_.dsm.available) {
        // Without DSM these fall back to going through L2.
        value_reason_ = StallReason::kMemL2;
        return u.lsu.issue(now, 1.0, device_.memory.l2_hit_latency);
      }
      value_reason_ = StallReason::kDsmHop;
      const double bytes = 32.0 * static_cast<double>(inst.access_bytes);
      const double ii = bytes / units_->dsm_bytes_per_clk;
      return u.dsm.issue(now, ii, ii + units_->dsm_lat);
    }
    default:
      return now;
  }
}

}  // namespace hsim::sm
