// Histogram over distributed shared memory (the paper's DSM application).
//
// The CUDA-samples histogram keeps per-warp sub-histograms in shared
// memory; the paper's redesign instead *partitions the bins across the
// blocks of a cluster*, so each block only holds Nbins/CS bins and updates
// remote bins through the SM-to-SM network.
//
// This module runs the application functionally (real data, real bins —
// results are validated against a scalar reference) and prices it with a
// structural cost model: occupancy from the shared-memory footprint,
// element-load bandwidth, local atomic conflicts, and remote-port traffic
// with cluster contention.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/device.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace hsim::dsm {

struct HistogramConfig {
  int cluster_size = 1;        // 1 = the classic non-DSM kernel
  int block_threads = 256;
  int nbins = 1024;
  std::int64_t elements = 1 << 22;
  std::uint64_t seed = 42;
};

struct HistogramResult {
  std::vector<std::uint32_t> bins;   // functional output
  double elements_per_second = 0;
  double seconds = 0;
  int active_blocks_per_sm = 0;
  double remote_fraction = 0;        // of atomic updates that crossed SMs
};

/// Run the histogram: functional counting plus the timing model.
Expected<HistogramResult> run_histogram(const arch::DeviceSpec& device,
                                        const HistogramConfig& config);

/// Scalar reference (for validation).
std::vector<std::uint32_t> reference_histogram(const HistogramConfig& config);

}  // namespace hsim::dsm
