// Operator-level cost model for the Transformer Engine benchmarks.
//
// Two primitives price everything:
//   * gemm_seconds — a tile/wave model of a GEMM kernel: 128x128 output
//     tiles walk the K loop at the tensor-core rate, tiles round-robin over
//     SMs in waves, plus a per-kernel launch overhead and a memory-bound
//     floor.  Size-dependent efficiency (the shape of Fig 4) comes from
//     wave quantisation + overhead amortisation, not from an efficiency
//     table.
//   * elementwise_seconds — bytes moved at achieved DRAM bandwidth plus the
//     same launch overhead (casts, norms, activations, reductions).
// FP32 GEMMs price at the TF32 tensor-core rate (what PyTorch/TE actually
// use on Ampere+); FP16/BF16 at the FP16 rate; FP8 at the FP8 rate where
// the device has FP8 units.
#pragma once

#include "arch/device.hpp"
#include "common/status.hpp"
#include "numerics/dtype.hpp"

namespace hsim::te {

/// Fixed cost of getting one kernel onto the device (driver + dispatch).
constexpr double kKernelLaunchSeconds = 4.5e-6;

class CostModel {
 public:
  explicit CostModel(const arch::DeviceSpec& device) : device_(device) {}

  [[nodiscard]] const arch::DeviceSpec& device() const { return device_; }

  /// Dense GEMM D(m x n) = A(m x k) B(k x n) in `dtype` compute precision.
  /// Errors if the device has no unit for the type (FP8 before Ada).
  [[nodiscard]] Expected<double> gemm_seconds(std::int64_t m, std::int64_t n,
                                              std::int64_t k,
                                              num::DType dtype) const;

  /// Achievable GEMM rate for the type, FLOPS (device-wide).
  [[nodiscard]] Expected<double> gemm_peak_flops(num::DType dtype) const;

  /// Memory-bound elementwise/reduction op moving `bytes` in total.
  [[nodiscard]] double elementwise_seconds(double bytes) const;

  /// Achieved DRAM bandwidth in bytes/second.
  [[nodiscard]] double mem_bandwidth() const {
    return device_.memory.dram_peak_gbps * 1e9 * device_.memory.dram_efficiency;
  }

 private:
  const arch::DeviceSpec& device_;
};

}  // namespace hsim::te
