// Golden-shape regression tests for the paper's headline results.
//
// Each test distils a table or figure into its *ordinal* shape — which
// level is fastest, which dtype wins the throughput ladder, whether the
// sawtooth dips past a full wave — and compares against a JSON snapshot
// under tests/golden/.  Exact numbers are free to move as the model is
// tuned; a flipped ordering fails until a human re-blesses the snapshot:
//
//   HSIM_UPDATE_GOLDEN=1 ./build/tests/golden_shape_test
#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <utility>
#include <vector>

#include "arch/device.hpp"
#include "conformance/golden.hpp"
#include "core/dpxbench.hpp"
#include "core/membench.hpp"
#include "core/pchase.hpp"
#include "core/tcbench.hpp"
#include "dpx/functions.hpp"
#include "isa/ptx.hpp"
#include "mem/memory_system.hpp"
#include "numerics/dtype.hpp"

namespace hsim::conformance {
namespace {

constexpr const char* kDevices[] = {"a100", "4090", "h800"};

const arch::DeviceSpec& device(const char* short_name) {
  return *arch::find_device(short_name).value();
}

const char* bool_str(bool v) { return v ? "true" : "false"; }

/// Label order induced by the measured values: ascending joins with '<'
/// (latency ladders), descending with '>' (throughput ladders).  Ties
/// break on the label so the string is deterministic either way.
std::string order_of(std::vector<std::pair<std::string, double>> entries,
                     bool ascending) {
  std::sort(entries.begin(), entries.end(),
            [ascending](const auto& a, const auto& b) {
              if (a.second != b.second) {
                return ascending ? a.second < b.second : a.second > b.second;
              }
              return a.first < b.first;
            });
  std::string out;
  for (const auto& [label, value] : entries) {
    if (!out.empty()) out += ascending ? '<' : '>';
    out += label;
  }
  return out;
}

void check_or_update(const std::string& file, const ShapeMap& actual) {
  const std::string path = std::string(HSIM_GOLDEN_DIR) + "/" + file;
  if (update_golden_requested()) {
    save_shape(path, actual);
    GTEST_SKIP() << "golden updated: " << path;
  }
  const auto expected = load_shape(path);
  ASSERT_TRUE(expected.has_value())
      << expected.error().to_string()
      << " (regenerate with HSIM_UPDATE_GOLDEN=1)";
  for (const auto& diff : diff_shapes(expected.value(), actual)) {
    ADD_FAILURE() << file << ": " << diff;
  }
}

// Table IV: pointer-chase latency must order shared < L1 < L2 < DRAM on
// every device (the snapshot records whatever the model currently says;
// review the JSON against the paper when re-blessing).
TEST(GoldenShape, Table4LatencyOrder) {
  ShapeMap shape;
  constexpr std::pair<const char*, mem::MemLevel> kLevels[] = {
      {"shared", mem::MemLevel::kShared},
      {"l1", mem::MemLevel::kL1},
      {"l2", mem::MemLevel::kL2},
      {"dram", mem::MemLevel::kDram},
  };
  for (const char* name : kDevices) {
    std::vector<std::pair<std::string, double>> latency;
    for (const auto& [label, level] : kLevels) {
      const auto result = core::pchase(device(name), level);
      ASSERT_TRUE(result.has_value()) << name << "/" << label << ": "
                                      << result.error().to_string();
      latency.emplace_back(label, result.value().avg_latency_cycles);
    }
    shape["table4." + std::string(name) + ".latency_order"] =
        order_of(latency, /*ascending=*/true);
  }
  check_or_update("table04_latency.json", shape);
}

// Table V: L1 streaming shape — FP64 never beats FP32 (trimmed-FP64 parts
// bottleneck on the compute pipe), float4 never loses to scalar FP32, and
// whether shared beats L1 on bytes/clk.
TEST(GoldenShape, Table5ThroughputShape) {
  ShapeMap shape;
  for (const char* name : kDevices) {
    const auto& dev = device(name);
    const auto fp32 = core::measure_l1_throughput(dev, core::AccessKind::kFp32);
    const auto fp64 = core::measure_l1_throughput(dev, core::AccessKind::kFp64);
    const auto v4 = core::measure_l1_throughput(dev, core::AccessKind::kFp32V4);
    const auto shared = core::measure_shared_throughput(dev);
    ASSERT_TRUE(fp32.has_value() && fp64.has_value() && v4.has_value() &&
                shared.has_value())
        << name;
    const std::string prefix = "table5." + std::string(name) + ".";
    shape[prefix + "l1_fp64_le_fp32"] = bool_str(
        fp64.value().bytes_per_clk <= fp32.value().bytes_per_clk);
    shape[prefix + "l1_v4_ge_fp32"] = bool_str(
        v4.value().bytes_per_clk >= fp32.value().bytes_per_clk);
    shape[prefix + "shared_ge_l1_fp32"] = bool_str(
        shared.value().bytes_per_clk >= fp32.value().bytes_per_clk);
  }
  check_or_update("table05_throughput.json", shape);
}

// Table VII: mma dtype ladders.  INT8 should lead throughput, TF32 trail;
// random operands must never out-run zero operands (DVFS throttle only
// ever costs).
TEST(GoldenShape, Table7TensorCoreShape) {
  struct DtypeCase {
    const char* label;
    num::DType ab;
    int k;
  };
  constexpr DtypeCase kCases[] = {
      {"fp16", num::DType::kFp16, 16},
      {"tf32", num::DType::kTf32, 8},
      {"int8", num::DType::kInt8, 32},
  };
  ShapeMap shape;
  for (const char* name : kDevices) {
    std::vector<std::pair<std::string, double>> latency;
    std::vector<std::pair<std::string, double>> throughput;
    bool rand_le_zero = true;
    for (const auto& c : kCases) {
      isa::TcInstr instr;
      instr.path = isa::TcPath::kMma;
      instr.shape = {16, 8, c.k};
      instr.ab = c.ab;
      instr.cd = c.ab == num::DType::kInt8 ? num::DType::kInt32
                                           : num::DType::kFp32;
      const auto result = core::bench_tc(instr, device(name));
      ASSERT_TRUE(result.has_value()) << name << "/" << c.label << ": "
                                      << result.error().to_string();
      latency.emplace_back(c.label, result.value().latency_cycles);
      throughput.emplace_back(c.label, result.value().tflops_zero);
      rand_le_zero &= result.value().tflops_rand <=
                      result.value().tflops_zero + 1e-9;
    }
    const std::string prefix = "table7." + std::string(name) + ".";
    shape[prefix + "latency_order"] = order_of(latency, /*ascending=*/true);
    shape[prefix + "throughput_order"] =
        order_of(throughput, /*ascending=*/false);
    shape[prefix + "rand_le_zero"] = bool_str(rand_le_zero);
  }
  check_or_update("table07_tensor.json", shape);
}

// Fig. 7: the DPX shape.  The fused 16x2+relu function is one hardware
// instruction on Hopper but an emulated multi-op chain elsewhere, so H800
// must win it outright; the block sweep on H800 must show the sawtooth
// (throughput dips when a grid spills one block past a full wave and
// recovers by two full waves).
TEST(GoldenShape, Fig7DpxShape) {
  ShapeMap shape;
  std::vector<std::pair<std::string, double>> fused;
  for (const char* name : kDevices) {
    const auto& dev = device(name);
    const auto simple = core::dpx_latency(dev, dpx::Func::kViAddMaxS32);
    const auto relu = core::dpx_latency(dev, dpx::Func::kViAddMaxS16x2Relu);
    ASSERT_TRUE(simple.has_value() && relu.has_value()) << name;
    // The emulation chain for the fused form is several dependent
    // instructions; "comparable" means native-speed (within 1.5x of the
    // plain add-max).
    shape["fig7." + std::string(name) + ".s16x2_relu_latency"] =
        relu.value().cycles_per_call >
                1.5 * simple.value().cycles_per_call
            ? "emulated_slower"
            : "comparable";
    fused.emplace_back(name, relu.value().cycles_per_call);
  }
  shape["fig7.s16x2_relu_latency_winner"] =
      std::min_element(fused.begin(), fused.end(),
                       [](const auto& a, const auto& b) {
                         return a.second < b.second;
                       })
          ->first;

  const auto& h800 = device("h800");
  const int waves = h800.sm_count;
  const auto point = [&](int blocks) {
    const auto result =
        core::dpx_block_point(h800, dpx::Func::kViAddMaxS16x2Relu, blocks);
    EXPECT_TRUE(result.has_value()) << blocks;
    return result.has_value() ? result.value().gcalls_per_sec : 0.0;
  };
  const double full_wave = point(waves);
  const double spill = point(waves + 1);
  const double two_waves = point(2 * waves);
  shape["fig7.h800.sawtooth_dip_after_full_wave"] = bool_str(spill < full_wave);
  shape["fig7.h800.sawtooth_recovers_by_two_waves"] =
      bool_str(two_waves > spill);
  check_or_update("fig07_dpx.json", shape);
}

// Fig 7's wave-quantisation sawtooth again, but under the full-chip engine
// (every SM simulated, shared L2 fabric): the dip past a full wave must
// *emerge* from the dispatcher leaving one SM running a second block while
// the rest idle — no ceil() imposes it — and at exactly one homogeneous
// wave the full chip must agree with the analytic model.
TEST(GoldenShape, Fig7DpxFullChipShape) {
  ShapeMap shape;
  const auto& h800 = device("h800");
  const int waves = h800.sm_count;
  const auto point = [&](int blocks, sm::LaunchMode mode) {
    const auto result = core::dpx_block_point(
        h800, dpx::Func::kViAddMaxS16x2Relu, blocks, mode);
    EXPECT_TRUE(result.has_value()) << blocks;
    return result.has_value() ? result.value().gcalls_per_sec : 0.0;
  };
  const double full_wave = point(waves, sm::LaunchMode::kFullChip);
  const double spill = point(waves + 1, sm::LaunchMode::kFullChip);
  const double two_waves = point(2 * waves, sm::LaunchMode::kFullChip);
  const double analytic = point(waves, sm::LaunchMode::kRepresentative);
  shape["fig7.h800.fullchip_sawtooth_dip_after_full_wave"] =
      bool_str(spill < full_wave);
  shape["fig7.h800.fullchip_sawtooth_recovers_by_two_waves"] =
      bool_str(two_waves > spill);
  shape["fig7.h800.fullchip_matches_analytic_at_full_wave"] =
      bool_str(std::abs(full_wave - analytic) <= 0.02 * analytic);
  check_or_update("fig07_dpx_fullchip.json", shape);
}

}  // namespace
}  // namespace hsim::conformance
