// Ablation: the Zero-vs-Rand wgmma gap as a function of the board power
// limit.  Sweeping the cap shows the paper's 728.5 -> 665.4 TFLOPS drop is
// a DVFS effect: raise the limit and the gap closes; lower it and even
// zero-filled operands throttle.
#include <iostream>

#include "bench/bench_util.hpp"
#include "tensorcore/power.hpp"
#include "tensorcore/timing.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  const isa::TcInstr instr{.path = isa::TcPath::kWgmma, .shape = {64, 256, 16},
                           .ab = num::DType::kFp16, .cd = num::DType::kFp32,
                           .a_src = isa::OperandSource::kSharedMemory};
  const auto timing = tc::tc_timing(instr, arch::h800_pcie()).value();
  const double unthrottled = timing.throughput_tflops(arch::h800_pcie());

  Table table("Ablation: wgmma fp16/fp32 throughput vs board power limit");
  table.set_header({"limit (W)", "Zero TFLOPS", "Rand TFLOPS", "gap",
                    "Rand clock (MHz)"});
  for (const double limit : {200.0, 250.0, 300.0, 350.0, 400.0, 450.0, 500.0}) {
    arch::DeviceSpec device = arch::h800_pcie();  // copy, then ablate
    device.power.board_limit_w = limit;
    const auto zero = tc::apply_power(instr, device, unthrottled, false);
    const auto rand = tc::apply_power(instr, device, unthrottled, true);
    table.add_row({fmt_fixed(limit, 0),
                   fmt_fixed(zero.throughput_tflops, 1),
                   fmt_fixed(rand.throughput_tflops, 1),
                   fmt_fixed(100.0 * (1.0 - rand.throughput_tflops /
                                                zero.throughput_tflops), 1) + "%",
                   fmt_fixed(rand.clock_mhz, 0)});
  }
  bench::emit(table, opt);
  std::cout << "At the H800's actual 350 W cap the model reproduces the "
               "paper's ~9% Zero-vs-Rand gap; at 450 W (an SXM-class "
               "budget) the gap vanishes.\n";
  return 0;
}
