// 2:4 structured sparsity: pruning, compression, metadata round-trips.
#include "tensorcore/sparse.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hsim::tc {
namespace {

TEST(Sparse, DetectsProperty) {
  MatF ok(2, 8);
  ok.at(0, 0) = 1;
  ok.at(0, 3) = 2;
  ok.at(1, 4) = 3;
  EXPECT_TRUE(is_2_4_sparse(ok));
  MatF bad(1, 4);
  bad.at(0, 0) = 1;
  bad.at(0, 1) = 1;
  bad.at(0, 2) = 1;
  EXPECT_FALSE(is_2_4_sparse(bad));
}

TEST(Sparse, NonMultipleOf4ColsFailsProperty) {
  const MatF m(2, 6);
  EXPECT_FALSE(is_2_4_sparse(m));
}

TEST(Sparse, PruneKeepsTopTwoMagnitudes) {
  MatF m(1, 4);
  m.at(0, 0) = 0.1f;
  m.at(0, 1) = -5.0f;
  m.at(0, 2) = 2.0f;
  m.at(0, 3) = 0.5f;
  const MatF pruned = prune_2_4(m);
  EXPECT_EQ(pruned.at(0, 0), 0.0f);
  EXPECT_EQ(pruned.at(0, 1), -5.0f);
  EXPECT_EQ(pruned.at(0, 2), 2.0f);
  EXPECT_EQ(pruned.at(0, 3), 0.0f);
  EXPECT_TRUE(is_2_4_sparse(pruned));
}

TEST(Sparse, PruneIdempotent) {
  Xoshiro256ss rng(5);
  MatF m(16, 32);
  fill_random(m, num::DType::kFp16, rng);
  const MatF once = prune_2_4(m);
  const MatF twice = prune_2_4(once);
  EXPECT_EQ(once.data(), twice.data());
}

TEST(Sparse, CompressDecompressRoundTrip) {
  Xoshiro256ss rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    MatF dense(16, 16);
    fill_random(dense, num::DType::kFp16, rng);
    const MatF pruned = prune_2_4(dense);
    const Sparse24 compressed = compress_2_4(pruned);
    EXPECT_EQ(compressed.values.cols(), 8);
    EXPECT_EQ(compressed.dense_k, 16);
    const MatF restored = decompress(compressed);
    EXPECT_EQ(restored.data(), pruned.data()) << "trial " << trial;
  }
}

TEST(Sparse, CompressionHalvesStorage) {
  MatF m(8, 32);
  m.at(0, 0) = 1;  // mostly zero, trivially 2:4
  const Sparse24 s = compress_2_4(m);
  EXPECT_EQ(s.values.rows(), 8);
  EXPECT_EQ(s.values.cols(), 16);
  EXPECT_EQ(s.meta.size(), 8u * 8u);  // rows x k/4 groups
}

TEST(Sparse, MetadataIndicesDistinct) {
  Xoshiro256ss rng(7);
  MatF dense(16, 64);
  fill_random(dense, num::DType::kFp16, rng);
  const Sparse24 s = compress_2_4(prune_2_4(dense));
  for (int r = 0; r < s.rows(); ++r) {
    for (int g = 0; g < s.dense_k / 4; ++g) {
      const auto meta = s.meta_at(r, g);
      EXPECT_NE(meta & 3, (meta >> 2) & 3) << r << "," << g;
    }
  }
}

TEST(Sparse, AllZeroGroupCompresses) {
  const MatF zeros(4, 8);
  const Sparse24 s = compress_2_4(zeros);
  const MatF back = decompress(s);
  EXPECT_EQ(back.data(), zeros.data());
}

TEST(Sparse, SingleNonzeroPerGroup) {
  MatF m(1, 8);
  m.at(0, 2) = 7.0f;
  m.at(0, 5) = -3.0f;
  const MatF back = decompress(compress_2_4(m));
  EXPECT_EQ(back.data(), m.data());
}

}  // namespace
}  // namespace hsim::tc
