#include "sim/pipeline.hpp"

#include <gtest/gtest.h>

namespace hsim::sim {
namespace {

TEST(PipelinedUnit, BackToBackRespectsInitiationInterval) {
  PipelinedUnit unit(2.0, 10.0);
  EXPECT_EQ(unit.issue(0.0), 10.0);   // starts at 0
  EXPECT_EQ(unit.issue(0.0), 12.0);   // starts at 2
  EXPECT_EQ(unit.issue(0.0), 14.0);   // starts at 4
}

TEST(PipelinedUnit, LateArrivalStartsWhenReady) {
  PipelinedUnit unit(2.0, 10.0);
  EXPECT_EQ(unit.issue(100.0), 110.0);
  EXPECT_EQ(unit.next_free(), 102.0);
}

TEST(PipelinedUnit, PerOpOverrides) {
  PipelinedUnit unit(1.0, 1.0);
  EXPECT_EQ(unit.issue(0.0, 5.0, 20.0), 20.0);
  // Next op waits for the 5-cycle interval, not the default 1.
  EXPECT_EQ(unit.issue(0.0, 1.0, 1.0), 6.0);
}

TEST(PipelinedUnit, ThroughputConvergesToInterval) {
  PipelinedUnit unit(3.0, 50.0);
  double last = 0;
  constexpr int kOps = 1000;
  for (int i = 0; i < kOps; ++i) last = unit.issue(0.0);
  // last = (kOps-1)*ii + latency.
  EXPECT_EQ(last, (kOps - 1) * 3.0 + 50.0);
}

TEST(PipelinedUnit, ResetClearsCursor) {
  PipelinedUnit unit(2.0, 4.0);
  unit.issue(0.0);
  unit.reset();
  EXPECT_EQ(unit.next_free(), 0.0);
  EXPECT_EQ(unit.issue(0.0), 4.0);
}

TEST(Port, SerialisesAtBandwidth) {
  Port port(16.0);  // bytes per cycle
  EXPECT_EQ(port.transfer(0.0, 32.0), 2.0);
  EXPECT_EQ(port.transfer(0.0, 32.0), 4.0);  // queued behind the first
  EXPECT_EQ(port.transfer(10.0, 16.0), 11.0);
}

TEST(Port, SteadyStateBandwidth) {
  Port port(8.0);
  double done = 0;
  for (int i = 0; i < 100; ++i) done = port.transfer(0.0, 4.0);
  EXPECT_DOUBLE_EQ(400.0 / done, 8.0);
}

TEST(Port, ResetClears) {
  Port port(4.0);
  port.transfer(0.0, 100.0);
  port.reset();
  EXPECT_EQ(port.next_free(), 0.0);
}

}  // namespace
}  // namespace hsim::sim
