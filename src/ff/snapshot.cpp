#include "ff/snapshot.hpp"

#include <fstream>
#include <sstream>

namespace hsim::ff {

std::uint64_t SnapshotKey::hash_program(const isa::Program& program) {
  const std::string text = program.to_string();
  std::uint64_t h = common::fnv1a(
      {reinterpret_cast<const std::uint8_t*>(text.data()), text.size()});
  // to_string may or may not render the iteration count; fold it in
  // explicitly so re-iterated programs never share a hash.
  const std::uint32_t iters = program.iterations();
  h = common::fnv1a(
      {reinterpret_cast<const std::uint8_t*>(&iters), sizeof(iters)}, h);
  return h;
}

std::vector<std::uint8_t> seal_snapshot(const SnapshotKey& key,
                                        std::span<const std::uint8_t> payload) {
  common::StateWriter w;
  w.u64(kSnapshotMagic);
  w.u32(kSnapshotVersion);
  w.str(key.device);
  w.u64(key.program_hash);
  w.u32(static_cast<std::uint32_t>(key.blocks));
  w.u32(static_cast<std::uint32_t>(key.threads_per_block));
  w.u64(key.boundary);
  w.u64(common::fnv1a(payload));
  w.blob(payload);
  return std::move(w).take();
}

Expected<std::vector<std::uint8_t>> open_snapshot(
    std::span<const std::uint8_t> bytes, const SnapshotKey& expect) {
  common::StateReader r(bytes);
  if (r.u64() != kSnapshotMagic || !r.ok()) {
    return invalid_argument("not a snapshot file (bad magic)");
  }
  const std::uint32_t version = r.u32();
  if (version != kSnapshotVersion) {
    std::ostringstream os;
    os << "snapshot version " << version << " unsupported (this build reads "
       << kSnapshotVersion << ")";
    return unsupported(os.str());
  }
  const std::string device = r.str();
  const std::uint64_t program_hash = r.u64();
  const auto blocks = static_cast<int>(r.u32());
  const auto threads = static_cast<int>(r.u32());
  const std::uint64_t boundary = r.u64();
  const std::uint64_t digest = r.u64();
  if (!r.ok()) {
    return invalid_argument("snapshot header truncated or corrupt");
  }
  const auto mismatch = [](std::string_view what, const auto& got,
                           const auto& want) {
    std::ostringstream os;
    os << "snapshot " << what << " mismatch: file has " << got
       << ", expected " << want;
    return invalid_argument(os.str());
  };
  if (device != expect.device) {
    return mismatch("device", device, expect.device);
  }
  if (program_hash != expect.program_hash) {
    return mismatch("program hash", program_hash, expect.program_hash);
  }
  if (blocks != expect.blocks || threads != expect.threads_per_block) {
    std::ostringstream os;
    os << "snapshot shape mismatch: file has " << blocks << "x" << threads
       << ", expected " << expect.blocks << "x" << expect.threads_per_block;
    return invalid_argument(os.str());
  }
  if (boundary != expect.boundary) {
    return mismatch("boundary", boundary, expect.boundary);
  }
  std::vector<std::uint8_t> payload = r.blob();
  if (!r.ok()) {
    return invalid_argument("snapshot payload truncated");
  }
  if (common::fnv1a(payload) != digest) {
    return invalid_argument("snapshot payload digest mismatch (corrupted)");
  }
  return payload;
}

Expected<bool> write_snapshot_file(const std::string& path,
                                   const SnapshotKey& key,
                                   std::span<const std::uint8_t> payload) {
  const auto bytes = seal_snapshot(key, payload);
  std::ofstream os(path, std::ios::binary | std::ios::trunc);
  if (!os) {
    return invalid_argument("cannot open " + path + " for writing");
  }
  os.write(reinterpret_cast<const char*>(bytes.data()),
           static_cast<std::streamsize>(bytes.size()));
  if (!os) {
    return invalid_argument("short write to " + path);
  }
  return true;
}

Expected<std::vector<std::uint8_t>> read_snapshot_file(
    const std::string& path, const SnapshotKey& expect) {
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    return invalid_argument("cannot open " + path);
  }
  std::vector<std::uint8_t> bytes(
      (std::istreambuf_iterator<char>(is)), std::istreambuf_iterator<char>());
  return open_snapshot(bytes, expect);
}

}  // namespace hsim::ff
