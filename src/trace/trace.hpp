// hsim::trace — warp-level event tracing with stall-reason attribution.
//
// The simulator's aggregate counters (sim::CycleReport) say *how busy* each
// unit was; this layer says *why* a cycle was spent: every per-warp,
// per-instruction lifecycle event (fetch, issue, stall, execute, retire)
// flows through a TraceSink, and every stall carries a typed reason from
// the taxonomy below (scoreboard RAW/WAW, structural unit-busy,
// memory-pending split by level, shared-memory bank conflict, barrier, DSM
// hop, TMA/async wait).
//
// Zero overhead when disabled: emitters hold a raw `TraceSink*` that
// defaults to nullptr, every emission site is guarded by that pointer, and
// nothing on the disabled path allocates (asserted by pipeline_test).
// Events reference names via std::string_view; emitters must pass pointers
// to storage that outlives the sink (mnemonic tables, string literals).
#pragma once

#include <cstdint>
#include <string_view>

namespace hsim::trace {

/// Lifecycle stage an event describes.
enum class EventKind : std::uint8_t {
  kFetch,    // warp activated (per warp, at kernel start)
  kIssue,    // instruction issued; duration = issue-to-completion
  kStall,    // a scheduler slot went unissued; duration = 1 cycle
  kExecute,  // work performed inside a unit (memory level, port, pipe)
  kRetire,   // warp finished its program
};

/// Why a warp (or scheduler slot) could not make progress.  The order is
/// part of the public schema: sinks may index arrays by it.
enum class StallReason : std::uint8_t {
  kNone = 0,          // not a stall (issue/execute/fetch/retire events)
  kScoreboardRaw,     // source register pending (ALU/FMA/FP64/DPX producer)
  kScoreboardWaw,     // in-order WAW: destination's previous write pending
  kStructural,        // functional unit issue slot busy
  kMemL1,             // pending load serviced by L1
  kMemL2,             // pending load serviced by L2
  kMemDram,           // pending load serviced by DRAM
  kMemTlb,            // pending load paid a TLB miss walk
  kMemShared,         // pending conflict-free shared-memory access
  kSmemBankConflict,  // shared-memory access serialised by bank conflicts
  kBarrier,           // parked at bar.sync / waiting for release
  kDsmHop,            // SM-to-SM network: remote access or injection port
  kTmaWait,           // cp.async / TMA wait-group not yet satisfied
  kIdle,              // scheduler had no live warp left (kernel drain)
};
inline constexpr int kStallReasonCount = static_cast<int>(StallReason::kIdle) + 1;

constexpr std::string_view to_string(StallReason reason) noexcept {
  switch (reason) {
    case StallReason::kNone: return "none";
    case StallReason::kScoreboardRaw: return "scoreboard_raw";
    case StallReason::kScoreboardWaw: return "scoreboard_waw";
    case StallReason::kStructural: return "unit_busy";
    case StallReason::kMemL1: return "mem_l1";
    case StallReason::kMemL2: return "mem_l2";
    case StallReason::kMemDram: return "mem_dram";
    case StallReason::kMemTlb: return "mem_tlb";
    case StallReason::kMemShared: return "mem_shared";
    case StallReason::kSmemBankConflict: return "smem_bank_conflict";
    case StallReason::kBarrier: return "barrier";
    case StallReason::kDsmHop: return "dsm_hop";
    case StallReason::kTmaWait: return "tma_async_wait";
    case StallReason::kIdle: return "idle_drain";
  }
  return "?";
}

constexpr std::string_view to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kFetch: return "fetch";
    case EventKind::kIssue: return "issue";
    case EventKind::kStall: return "stall";
    case EventKind::kExecute: return "execute";
    case EventKind::kRetire: return "retire";
  }
  return "?";
}

/// One lifecycle event.  Plain aggregate, trivially copyable: sinks may
/// ring-buffer events by value.  `what` is the instruction mnemonic (issue),
/// the unit or memory level (execute/stall), or the kernel label; it must
/// point at storage that outlives the sink.
struct Event {
  EventKind kind = EventKind::kIssue;
  StallReason reason = StallReason::kNone;
  double cycle = 0;       // simulation time the event starts
  double duration = 0;    // cycles covered (1 for stalls, 0 for markers)
  std::int32_t sm = 0;    // emitting SM (or cluster rank for DSM)
  std::int32_t warp = -1; // warp slot; -1 = not warp-specific (memory side)
  std::int32_t pc = -1;   // program counter of the instruction, if any
  std::string_view what;  // mnemonic / unit name (static storage)
};

/// Receives every event from the models it is attached to.  Implementations
/// must tolerate out-of-order warp interleavings but may assume `cycle` is
/// non-decreasing per emitter (simulation time is monotone).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const Event& event) = 0;
};

}  // namespace hsim::trace
