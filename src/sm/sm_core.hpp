// Cycle-level timing model of one streaming multiprocessor.
//
// Models what the paper's instruction microbenchmarks exercise:
//   * 4 warp schedulers, each issuing at most one instruction per cycle
//     from its resident warps (loose round-robin);
//   * in-order issue per warp with a register scoreboard (RAW/WAW stalls);
//   * pipelined functional units — FMA, INT ALU, FP64, DPX, LSU — whose
//     per-warp initiation intervals derive from the device's lane counts;
//   * a shared LSU path into the MemorySystem (coalesced warp
//     transactions), shared-memory bank-conflict serialisation, cp.async
//     groups, and block-level barriers.
// Values are computed functionally at issue time and become architecturally
// visible at the instruction's completion time, so dependent chains measure
// true pipeline latencies — the same way the paper's kernels do with
// clock().
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "arch/device.hpp"
#include "isa/program.hpp"
#include "mem/memory_system.hpp"
#include "mem/shared_mem.hpp"
#include "sim/accounting.hpp"
#include "sim/pipeline.hpp"
#include "trace/trace.hpp"

namespace hsim::sm {

/// How many warps / blocks an SM runs and how they are grouped.
struct BlockShape {
  int threads_per_block = 32;
  int blocks = 1;  // resident blocks on this SM

  [[nodiscard]] int warps_per_block() const {
    return (threads_per_block + 31) / 32;
  }
  [[nodiscard]] int total_warps() const { return warps_per_block() * blocks; }
};

struct RunResult {
  double cycles = 0;
  std::uint64_t instructions_issued = 0;
  std::uint64_t stall_cycles = 0;       // scheduler slots with no issuable warp
  std::uint64_t mem_transactions = 0;
  std::uint64_t warps_retired = 0;      // must equal total_warps on a clean run
  double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions_issued) / cycles : 0.0;
  }
};

class SmCore {
 public:
  /// `mem` may be null for pure-ALU kernels.  `sm_id` selects which L1 the
  /// core uses inside the MemorySystem.
  SmCore(const arch::DeviceSpec& device, mem::MemorySystem* mem, int sm_id = 0);
  ~SmCore();
  SmCore(const SmCore&) = delete;
  SmCore& operator=(const SmCore&) = delete;

  /// Bind backing storage for global loads/stores (addresses are offsets
  /// into this buffer).  Optional; unbound loads return zero.
  void bind_global(std::span<std::uint64_t> words) { global_ = words; }

  /// Shared memory for this SM (created on demand, sized to the device cap).
  [[nodiscard]] mem::SharedMemory& shared();

  /// Execute `program` over `shape` resident warps; returns timing.
  RunResult run(const isa::Program& program, const BlockShape& shape);

  /// Read back a register lane after run() (functional checks, clock()).
  [[nodiscard]] std::uint64_t reg(int warp, int reg_index, int lane = 0) const;

  /// Per-unit busy-cycle counters accumulated since construction (FMA/ALU/
  /// DPX summed over the four scheduler partitions).  Pair with the run's
  /// cycle count in a sim::CycleSample for occupancy reporting.
  [[nodiscard]] std::vector<sim::UnitSample> unit_usage() const;

  /// Attach (or detach, with nullptr) a per-warp lifecycle event sink.
  /// Every issue becomes a kIssue event, every scheduler slot that goes
  /// unissued a kStall event with a typed reason; the core's SharedMemory
  /// (if created) inherits the sink for bank-conflict events.  With no sink
  /// attached the pipeline performs no tracing work beyond one branch per
  /// event site and allocates nothing extra on the hot path.
  void set_trace(trace::TraceSink* sink);
  [[nodiscard]] trace::TraceSink* trace() const noexcept { return trace_; }

 private:
  struct Warp;
  struct Units;

  bool try_issue(Warp& warp, double now, const isa::Program& program,
                 trace::StallReason& why, std::string_view& where);
  double execute(Warp& warp, const isa::Instruction& inst, double now);
  double memory_op(Warp& warp, const isa::Instruction& inst, double now);

  const arch::DeviceSpec& device_;
  mem::MemorySystem* mem_;
  int sm_id_;
  std::span<std::uint64_t> global_;
  std::unique_ptr<mem::SharedMemory> shared_;
  std::vector<Warp> warps_;
  std::unique_ptr<Units> units_;
  RunResult result_;
  double last_completion_ = 0;  // latest completion time of any issued inst
  int barrier_target_ = 0;  // warps per block, set by run()
  trace::TraceSink* trace_ = nullptr;
  // Why a wait on the value most recently produced by execute() would
  // stall: scoreboard for ALU pipes, a memory level for loads, bank
  // conflict for serialised shared accesses, DSM hop for remote traffic.
  trace::StallReason value_reason_ = trace::StallReason::kScoreboardRaw;
};

}  // namespace hsim::sm
