#include "dsm/histogram.hpp"

#include <algorithm>

#include "dsm/cluster.hpp"
#include "mem/shared_mem.hpp"
#include "sm/launcher.hpp"

namespace hsim::dsm {
namespace {

/// Deterministic element stream shared by run and reference.
std::uint32_t element_at(std::uint64_t seed, std::int64_t i, int nbins) {
  std::uint64_t state = seed + static_cast<std::uint64_t>(i);
  return static_cast<std::uint32_t>(splitmix64(state) %
                                    static_cast<std::uint64_t>(nbins));
}

}  // namespace

std::vector<std::uint32_t> reference_histogram(const HistogramConfig& config) {
  std::vector<std::uint32_t> bins(static_cast<std::size_t>(config.nbins), 0);
  for (std::int64_t i = 0; i < config.elements; ++i) {
    ++bins[element_at(config.seed, i, config.nbins)];
  }
  return bins;
}

Expected<HistogramResult> run_histogram(const arch::DeviceSpec& device,
                                        const HistogramConfig& config) {
  if (config.nbins < 2 || config.nbins % std::max(config.cluster_size, 1) != 0) {
    return invalid_argument("nbins must divide evenly across the cluster");
  }
  double contention = 1.0;
  if (config.cluster_size > 1) {
    auto cluster = Cluster::create(device, config.cluster_size);
    if (!cluster) return cluster.error();
    contention = cluster.value().contention_factor();
  }

  const int warps_per_block = (config.block_threads + 31) / 32;
  const int bins_per_block = config.nbins / config.cluster_size;

  // Functional pass: per-block bin shards in real SharedMemory instances,
  // remote updates resolved through map_shared_rank-style addressing.
  HistogramResult out;
  {
    std::vector<mem::SharedMemory> shards;
    shards.reserve(static_cast<std::size_t>(config.cluster_size));
    for (int r = 0; r < config.cluster_size; ++r) {
      shards.emplace_back(static_cast<std::uint64_t>(bins_per_block) * 4);
    }
    std::int64_t remote = 0;
    for (std::int64_t i = 0; i < config.elements; ++i) {
      const std::uint32_t bin = element_at(config.seed, i, config.nbins);
      // The element lands in whichever block this "thread" belongs to;
      // threads are spread round-robin across cluster ranks.
      const int my_rank = static_cast<int>(i % config.cluster_size);
      const int target_rank = static_cast<int>(bin) / bins_per_block;
      const auto offset = static_cast<std::uint32_t>(
          (static_cast<int>(bin) % bins_per_block) * 4);
      shards[static_cast<std::size_t>(target_rank)].atomic_add_u32(offset, 1);
      if (target_rank != my_rank) ++remote;
    }
    out.remote_fraction = config.elements > 0
                              ? static_cast<double>(remote) /
                                    static_cast<double>(config.elements)
                              : 0.0;
    out.bins.assign(static_cast<std::size_t>(config.nbins), 0);
    for (int b = 0; b < config.nbins; ++b) {
      out.bins[static_cast<std::size_t>(b)] =
          shards[static_cast<std::size_t>(b / bins_per_block)].load_u32(
              static_cast<std::uint32_t>((b % bins_per_block) * 4));
    }
  }

  // Timing model.
  // Shared-memory footprint: per-warp sub-histograms of the local shard
  // (as in the CUDA sample) -> this is what throttles occupancy at large
  // Nbins and what clustering relieves.
  sm::LaunchConfig launch_cfg;
  launch_cfg.threads_per_block = config.block_threads;
  launch_cfg.smem_per_block = static_cast<std::uint64_t>(warps_per_block) *
                              static_cast<std::uint64_t>(bins_per_block) * 4;
  launch_cfg.regs_per_thread = 32;
  auto occ = sm::compute_occupancy(device, launch_cfg);
  if (!occ) return occ.error();
  out.active_blocks_per_sm = occ.value().blocks_per_sm;

  const double resident_threads =
      static_cast<double>(out.active_blocks_per_sm) *
      static_cast<double>(config.block_threads);

  // Per-element latency seen by one thread: element load + the atomic.
  const double local_atomic_lat = device.memory.smem_latency;
  const double remote_atomic_lat =
      device.dsm.available ? device.dsm.latency_cycles : device.memory.l2_hit_latency;
  const double avg_atomic_lat = out.remote_fraction * remote_atomic_lat +
                                (1.0 - out.remote_fraction) * local_atomic_lat;
  // ~8 cycles of address arithmetic per element in the real kernel.
  const double per_element_latency =
      device.memory.dram_latency + avg_atomic_lat + 8.0;
  const double rate_parallelism = resident_threads / per_element_latency;

  // Element-load bandwidth: 4-byte keys streamed from DRAM, shared by SMs.
  const double dram_bytes_per_clk =
      device.memory.dram_peak_gbps * 1e9 * device.memory.dram_efficiency /
      device.clock_hz();
  const double rate_load = dram_bytes_per_clk / 4.0 /
                           static_cast<double>(device.sm_count);

  // Local atomic throughput: one warp access per cycle, serialised by the
  // expected bank/bin collision degree for uniform keys.
  const double collision_degree =
      1.0 + 31.0 / std::max(1.0, static_cast<double>(bins_per_block));
  const double rate_local_atomic = 32.0 / collision_degree;

  // Remote traffic: each crossing update moves an 8-byte (address+value)
  // packet through the contended injection port.
  double rate_remote = 1e30;
  if (out.remote_fraction > 0) {
    const double port = device.dsm.port_bytes_per_clk * contention;
    rate_remote = port / 8.0 / out.remote_fraction;
  }

  const double rate_per_sm =
      std::min({rate_parallelism, rate_load, rate_local_atomic, rate_remote});
  out.elements_per_second = rate_per_sm * static_cast<double>(device.sm_count) *
                            device.clock_hz();
  out.seconds = static_cast<double>(config.elements) / out.elements_per_second;
  return out;
}

}  // namespace hsim::dsm
