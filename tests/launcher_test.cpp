// Occupancy calculation and wave quantisation.
#include "sm/launcher.hpp"

#include <gtest/gtest.h>

namespace hsim::sm {
namespace {

using arch::h800_pcie;
using arch::rtx4090;

isa::Program tiny_kernel() {
  isa::Program p;
  p.fadd(1, 1, 2);
  p.set_iterations(64);
  return p;
}

TEST(Occupancy, WarpLimited) {
  const auto occ = compute_occupancy(
      h800_pcie(), {.threads_per_block = 1024, .total_blocks = 1});
  ASSERT_TRUE(occ.has_value());
  EXPECT_EQ(occ.value().blocks_per_sm, 2);  // 64 warps / 32 warps per block
  EXPECT_EQ(occ.value().limited_by, OccupancyLimit::kWarps);
}

TEST(Occupancy, BlockLimited) {
  const auto occ = compute_occupancy(
      h800_pcie(), {.threads_per_block = 32, .total_blocks = 1,
                    .regs_per_thread = 16});
  ASSERT_TRUE(occ.has_value());
  EXPECT_EQ(occ.value().blocks_per_sm, 32);
  EXPECT_EQ(occ.value().limited_by, OccupancyLimit::kBlocks);
}

TEST(Occupancy, SharedMemoryLimited) {
  const auto occ = compute_occupancy(
      h800_pcie(), {.threads_per_block = 128, .total_blocks = 1,
                    .smem_per_block = 64 * 1024});
  ASSERT_TRUE(occ.has_value());
  EXPECT_EQ(occ.value().blocks_per_sm, 3);  // 228 KiB / 64 KiB
  EXPECT_EQ(occ.value().limited_by, OccupancyLimit::kSharedMem);
}

TEST(Occupancy, RegisterLimited) {
  const auto occ = compute_occupancy(
      h800_pcie(), {.threads_per_block = 256, .total_blocks = 1,
                    .regs_per_thread = 128});
  ASSERT_TRUE(occ.has_value());
  EXPECT_EQ(occ.value().blocks_per_sm, 2);  // 65536 / (128*256)
  EXPECT_EQ(occ.value().limited_by, OccupancyLimit::kRegisters);
}

TEST(Occupancy, AdaHasFewerWarps) {
  const auto occ = compute_occupancy(
      rtx4090(), {.threads_per_block = 1024, .total_blocks = 1,
                  .regs_per_thread = 16});
  ASSERT_TRUE(occ.has_value());
  EXPECT_EQ(occ.value().blocks_per_sm, 1);  // 48 warps max on Ada
}

TEST(Occupancy, RejectsImpossibleBlocks) {
  EXPECT_FALSE(compute_occupancy(h800_pcie(),
                                 {.threads_per_block = 2048, .total_blocks = 1})
                   .has_value());
  EXPECT_FALSE(
      compute_occupancy(h800_pcie(), {.threads_per_block = 128,
                                      .total_blocks = 1,
                                      .smem_per_block = 300ull << 10})
          .has_value());
}

TEST(Launch, OneBlockOneWave) {
  const auto result = launch(h800_pcie(), tiny_kernel(),
                             {.threads_per_block = 128, .total_blocks = 1});
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(result.value().waves, 1);
  EXPECT_GT(result.value().cycles, 0.0);
}

TEST(Launch, WaveQuantisationStep) {
  const auto& device = h800_pcie();
  const LaunchConfig base{.threads_per_block = 1024, .total_blocks = 0,
                          .regs_per_thread = 16};
  // 1024 threads -> 2 resident blocks/SM -> 228-block waves.
  auto cfg_full = base;
  cfg_full.total_blocks = 2 * device.sm_count;
  auto cfg_one_more = base;
  cfg_one_more.total_blocks = 2 * device.sm_count + 1;

  const auto full = launch(device, tiny_kernel(), cfg_full);
  const auto spill = launch(device, tiny_kernel(), cfg_one_more);
  ASSERT_TRUE(full.has_value() && spill.has_value());
  EXPECT_EQ(full.value().waves, 1);
  EXPECT_EQ(spill.value().waves, 2);
  // One extra block costs a (mostly idle) second wave.
  EXPECT_GT(spill.value().cycles, full.value().cycles * 1.3);
}

TEST(Launch, ThroughputScalesUpToFullWave) {
  const auto& device = h800_pcie();
  const auto one = launch(device, tiny_kernel(),
                          {.threads_per_block = 256, .total_blocks = 1});
  const auto half = launch(device, tiny_kernel(),
                           {.threads_per_block = 256,
                            .total_blocks = device.sm_count / 2});
  ASSERT_TRUE(one.has_value() && half.has_value());
  // Same wall time: blocks run on distinct SMs.
  EXPECT_NEAR(one.value().cycles, half.value().cycles,
              one.value().cycles * 0.01);
}

TEST(Launch, SecondsUseDeviceClock) {
  const auto result = launch(h800_pcie(), tiny_kernel(),
                             {.threads_per_block = 64, .total_blocks = 1});
  ASSERT_TRUE(result.has_value());
  EXPECT_NEAR(result.value().seconds,
              result.value().cycles / h800_pcie().clock_hz(), 1e-12);
}

TEST(Launch, RejectsZeroBlocks) {
  EXPECT_FALSE(launch(h800_pcie(), tiny_kernel(),
                      {.threads_per_block = 64, .total_blocks = 0})
                   .has_value());
}

TEST(SmLimits, PerGeneration) {
  EXPECT_EQ(sm_limits(h800_pcie()).max_warps_per_sm, 64);
  EXPECT_EQ(sm_limits(rtx4090()).max_warps_per_sm, 48);
  EXPECT_EQ(sm_limits(rtx4090()).max_blocks_per_sm, 24);
}

TEST(OccupancyLimit, Names) {
  EXPECT_EQ(to_string(OccupancyLimit::kWarps), "warps");
  EXPECT_EQ(to_string(OccupancyLimit::kSharedMem), "shared-memory");
}

}  // namespace
}  // namespace hsim::sm
