// google-benchmark microbenchmarks of the simulator itself: the hot paths
// a user pays for when sweeping configurations (cache tag lookups, SM
// cycle stepping, functional mma, FP8 encode).
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "mem/cache.hpp"
#include "numerics/formats.hpp"
#include "sim/sweep.hpp"
#include "sm/sm_core.hpp"
#include "tensorcore/mma_func.hpp"

namespace {

using namespace hsim;

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache({.size_bytes = 256ull << 10, .line_bytes = 128,
                    .sector_bytes = 32, .ways = 4});
  Xoshiro256ss rng(1);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.below(1ull << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_Fp8Encode(benchmark::State& state) {
  Xoshiro256ss rng(2);
  std::vector<float> values(4096);
  for (auto& v : values) v = static_cast<float>(rng.uniform(-500.0, 500.0));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::encode(values[i++ & 4095], num::kE4m3Spec,
                                         num::Overflow::kSaturate));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fp8Encode);

void BM_FunctionalMma(benchmark::State& state) {
  Xoshiro256ss rng(3);
  tc::MatF a(16, 16), b(16, 8), c(16, 8);
  tc::fill_random(a, num::DType::kFp16, rng);
  tc::fill_random(b, num::DType::kFp16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tc::mma_fp(a, b, c, num::DType::kFp16, num::DType::kFp32));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 8 * 16);
}
BENCHMARK(BM_FunctionalMma);

// The parallel sweep engine over a batch of SmCore simulations — the shape
// every paper-table bench now has.  Run with --benchmark_filter=Sweep to
// compare thread counts: results are bit-identical across them, and on a
// 4+-core host the 4-thread row should be >= 2x faster than the 1-thread
// row (wall clock; the sweep is embarrassingly parallel).
void BM_SweepEngineSmCore(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPoints = 32;
  isa::Program program;
  for (int i = 0; i < 8; ++i) {
    program.add({.op = isa::Opcode::kFAdd, .rd = 10 + i, .ra = 1, .rb = 2});
  }
  program.set_iterations(64);
  double checksum = 0;
  for (auto _ : state) {
    sim::SweepOptions options;
    options.threads = threads;
    options.seed = 42;
    const auto cycles = sim::sweep(
        kPoints,
        [&](sim::SweepContext&) {
          sm::SmCore core(arch::h800_pcie(), nullptr);
          return core.run(program, {.threads_per_block = 256, .blocks = 1})
              .cycles;
        },
        options);
    checksum = cycles.front();
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kPoints);
}
BENCHMARK(BM_SweepEngineSmCore)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SmCoreCycles(benchmark::State& state) {
  isa::Program program;
  for (int i = 0; i < 8; ++i) {
    program.add({.op = isa::Opcode::kFAdd, .rd = 10 + i, .ra = 1, .rb = 2});
  }
  program.set_iterations(64);
  for (auto _ : state) {
    sm::SmCore core(arch::h800_pcie(), nullptr);
    const auto run = core.run(program, {.threads_per_block = 256, .blocks = 1});
    benchmark::DoNotOptimize(run.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 8 * 64 * 8);  // instr issued
}
BENCHMARK(BM_SmCoreCycles);

}  // namespace

BENCHMARK_MAIN();
