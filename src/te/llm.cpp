#include "te/llm.hpp"

#include <algorithm>
#include <cmath>

namespace hsim::te {
namespace {

// Framework-side constants of a HuggingFace-style generate() loop with TE
// modules swapped in (calibrated once, shared by every model/device):
constexpr double kFrameworkPerStep = 8.0e-3;     // python + scheduler
constexpr double kPerLayerLaunch = 0.12e-3;      // kernel-launch batch per layer
constexpr double kTeCastPerLinear = 25.0e-6;     // te.Linear non-FP32 bookkeeping
constexpr double kFp8QuantPerLinear = 43.0e-6;   // amax + quantise kernels
constexpr int kLinearsPerLayer = 7;              // q,k,v,o + gate,up,down
constexpr double kActivationReserve = 2.5e9;     // activations + runtime pools
constexpr double kOomHeadroom = 0.5e9;
constexpr double kPrefillEfficiency = 0.55;      // achieved fraction of peak

}  // namespace

double LlamaConfig::parameters() const {
  const double h = static_cast<double>(hidden);
  const double per_layer = 4.0 * h * h + 3.0 * h * static_cast<double>(ffn_hidden);
  return static_cast<double>(layers) * per_layer +
         2.0 * static_cast<double>(vocab) * h;  // embeddings + lm head
}

LlamaConfig llama_3b() {
  return {.name = "llama-3B", .layers = 26, .hidden = 3200, .heads = 32,
          .ffn_hidden = 8640, .vocab = 32000};
}
LlamaConfig llama2_7b() {
  return {.name = "llama-2-7B", .layers = 32, .hidden = 4096, .heads = 32,
          .ffn_hidden = 11008, .vocab = 32000};
}
LlamaConfig llama2_13b() {
  return {.name = "llama-2-13B", .layers = 40, .hidden = 5120, .heads = 40,
          .ffn_hidden = 13824, .vocab = 32000};
}

std::vector<Request> synthesize_sharegpt(int count, int max_input, int max_output,
                                         Xoshiro256ss& rng) {
  // ShareGPT turn lengths are heavy-tailed; a lognormal with median ~e^4.6
  // tokens reproduces the clipped distribution the paper feeds the models.
  std::vector<Request> out;
  out.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    const auto sample = [&rng](int cap) {
      const double ln = std::exp(4.6 + 0.9 * rng.normal());
      return std::clamp(static_cast<int>(ln), 4, cap);
    };
    out.push_back({sample(max_input), sample(max_output)});
  }
  return out;
}

Expected<GenerationResult> run_generation(const CostModel& model,
                                          const LlamaConfig& llm,
                                          num::DType dtype,
                                          const GenerationSetup& setup) {
  using num::DType;
  if (dtype != DType::kFp32 && dtype != DType::kBf16 && !num::is_fp8(dtype)) {
    return invalid_argument("LLM generation supports FP32, BF16 or FP8");
  }
  const auto& device = model.device();
  if (num::is_fp8(dtype) && !device.tc.has_fp8) {
    return unsupported(device.name + " has no FP8 support");
  }

  GenerationResult out;
  const double params = llm.parameters();

  // --- Memory accounting (reproduces the OOM cells) ---
  double weight_bytes;
  double decode_weight_traffic;  // bytes the decode step streams per token
  double dtype_extra_per_layer;
  switch (dtype) {
    case DType::kFp32:
      weight_bytes = params * 4.0;
      decode_weight_traffic = params * 4.0;
      dtype_extra_per_layer = 0.0;
      break;
    case DType::kBf16:
      weight_bytes = params * 2.0;
      decode_weight_traffic = params * 2.0;
      dtype_extra_per_layer = kLinearsPerLayer * kTeCastPerLinear;
      break;
    default:  // FP8: te.Linear keeps FP16 master weights + FP8 buffers
              // (plus scale/amax metadata and allocator slack) and
              // re-quantises per call, so capacity AND traffic both grow.
      weight_bytes = params * 3.35;
      decode_weight_traffic = params * 3.0;
      dtype_extra_per_layer = kLinearsPerLayer * kFp8QuantPerLinear;
      break;
  }
  out.weight_bytes = weight_bytes;

  const int max_ctx = setup.max_input + setup.max_output;
  out.kv_cache_bytes = 2.0 * llm.layers * static_cast<double>(llm.hidden) *
                       max_ctx * setup.batch * 2.0;  // FP16 KV
  out.total_device_bytes = weight_bytes + out.kv_cache_bytes + kActivationReserve;
  if (out.total_device_bytes >
      static_cast<double>(device.memory.dram_bytes) - kOomHeadroom) {
    out.oom = true;
    out.note = "OOM";
    return out;
  }

  // --- Workload ---
  Xoshiro256ss rng(setup.seed);
  const auto requests =
      synthesize_sharegpt(setup.batch, setup.max_input, setup.max_output, rng);
  double total_tokens = 0;
  double in_sum = 0;
  int out_max = 1;
  for (const auto& request : requests) {
    total_tokens += request.input_len + request.output_len;
    in_sum += request.input_len;
    out_max = std::max(out_max, request.output_len);
  }
  const double in_avg = in_sum / setup.batch;

  // --- Prefill: compute-bound pass over all input tokens ---
  auto peak = model.gemm_peak_flops(dtype == DType::kFp32 ? DType::kFp32 : dtype);
  if (!peak) return peak.error();
  const double prefill_flops = 2.0 * params * in_avg * setup.batch;
  const double prefill = prefill_flops / (peak.value() * kPrefillEfficiency) +
                         kFrameworkPerStep +
                         llm.layers * kPerLayerLaunch;

  // --- Decode: memory- and overhead-bound steps ---
  const double kv_traffic_avg =
      2.0 * llm.layers * static_cast<double>(llm.hidden) *
      (in_avg + setup.max_output / 2.0) * setup.batch * 2.0;
  const double step = kFrameworkPerStep + llm.layers * kPerLayerLaunch +
                      (decode_weight_traffic + kv_traffic_avg) / model.mem_bandwidth() +
                      llm.layers * dtype_extra_per_layer;

  out.seconds = prefill + out_max * step;
  out.tokens_per_second = total_tokens / out.seconds;
  return out;
}

}  // namespace hsim::te
