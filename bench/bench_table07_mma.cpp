// Table VII: dense and sparse mma latency / throughput on A100, RTX4090
// and H800 tensor cores.
//
// The 8 shapes x 3 devices x {dense, sparse} grid runs as independent
// points on the parallel sweep engine; the findings table reuses the dense
// results, so every instruction is timed exactly once.
#include <iostream>
#include <optional>
#include <tuple>

#include "bench/bench_ff.hpp"
#include "bench/bench_util.hpp"
#include "core/tcbench.hpp"
#include "prof/pmu.hpp"
#include "trace/sinks.hpp"

namespace {

/// Tensor-core measurement plus the PMU block its issues were counted into.
struct ProfiledTc {
  hsim::core::TcBenchResult result;
  hsim::prof::PmuCounters pmu;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);

  const arch::DeviceSpec* devices[] = {&arch::a100_pcie(), &arch::rtx4090(),
                                       &arch::h800_pcie()};

  struct Row {
    DType ab;
    DType cd;
    int k_dense;   // table shape (compressed shape for sparse rows)
  };
  const Row rows[] = {
      {DType::kFp16, DType::kFp16, 8},  {DType::kFp16, DType::kFp16, 16},
      {DType::kFp16, DType::kFp32, 8},  {DType::kFp16, DType::kFp32, 16},
      {DType::kTf32, DType::kFp32, 4},  {DType::kTf32, DType::kFp32, 8},
      {DType::kInt8, DType::kInt32, 16}, {DType::kInt8, DType::kInt32, 32},
  };
  constexpr std::size_t kRows = 8;
  constexpr std::size_t kDevices = 3;

  // Point layout: (row, device, dense|sparse) flattened row-major.
  sim::CycleReport report;
  const auto results = sim::sweep(
      kRows * kDevices * 2,
      [&](sim::SweepContext& ctx) -> std::optional<ProfiledTc> {
        const std::size_t r = ctx.index() / (kDevices * 2);
        const std::size_t d = (ctx.index() / 2) % kDevices;
        const bool sparse = (ctx.index() % 2) != 0;
        const auto& row = rows[r];
        // Sparse rows list the compressed shape; the instruction modifier
        // doubles k.
        const isa::TcInstr instr{
            .path = isa::TcPath::kMma,
            .shape = {16, 8, sparse ? 2 * row.k_dense : row.k_dense},
            .ab = row.ab,
            .cd = row.cd,
            .sparse = sparse};
        // Trace the dependent-latency chain: the stall breakdown (scoreboard
        // vs cadence cycles) merges into the cycle report deterministically.
        trace::AggregatingSink agg;
        ProfiledTc tc;
        core::TcBenchConfig config;
        config.sink = &agg;
        config.pmu = &tc.pmu;  // count the throughput pass's tensor issues
        auto result = core::bench_tc(instr, *devices[d], config);
        if (!result) return std::nullopt;
        ctx.record(result.value().usage);
        if (!agg.empty()) {
          // Normalise against the traced latency chain's own span (every
          // cycle there is either a stall or an in-flight issue), not the
          // throughput loop behind usage.total_cycles.
          ctx.record(agg.to_cycle_sample(result.value().usage.label + ".trace",
                                         agg.stall_cycles() +
                                             agg.issue_cycles()));
        }
        tc.result = std::move(result).value();
        return tc;
      },
      bench::sweep_options(opt), &report);
  const auto cell = [&](std::size_t r, std::size_t d, bool sparse) {
    return results[r * kDevices * 2 + d * 2 + (sparse ? 1 : 0)];
  };

  Table table(
      "Table VII: mma LAT (cycles) / throughput (TFLOPS|TOPS), dense and "
      "2:4-sparse");
  table.set_header({"A/B", "C/D", "Shape", "A100 D", "A100 S", "4090 D",
                    "4090 S", "H800 D", "H800 S"});
  for (std::size_t r = 0; r < kRows; ++r) {
    const auto& row = rows[r];
    std::vector<std::string> cells{
        std::string(num::to_string(row.ab)), std::string(num::to_string(row.cd)),
        "m16n8k" + std::to_string(row.k_dense)};
    for (std::size_t d = 0; d < kDevices; ++d) {
      const auto& dense = cell(r, d, false);
      const auto& sparse = cell(r, d, true);
      cells.push_back(dense ? fmt_lat_tput(dense->result.latency_cycles,
                                           dense->result.tflops_rand)
                            : "x");
      cells.push_back(sparse ? fmt_lat_tput(sparse->result.latency_cycles,
                                            sparse->result.tflops_rand)
                             : "x");
    }
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);

  // The paper's headline findings around this table, from the dense results
  // already swept above (rows 1, 5, 7 are the larger shapes).
  Table findings("mma findings: fraction of peak (dense, larger shape)");
  findings.set_header({"Device", "FP16 frac", "TF32 frac", "INT8 frac"});
  for (std::size_t d = 0; d < kDevices; ++d) {
    std::vector<std::string> cells{devices[d]->name};
    for (const auto& [row_index, ab] :
         {std::tuple<std::size_t, DType>{1, DType::kFp16},
          std::tuple<std::size_t, DType>{5, DType::kTf32},
          std::tuple<std::size_t, DType>{7, DType::kInt8}}) {
      const auto& r = cell(row_index, d, false);
      if (!r) {
        cells.push_back("x");
        continue;
      }
      cells.push_back(fmt_fixed(
          r->result.tflops_rand / devices[d]->tc_peak_tflops(ab), 3));
    }
    findings.add_row(std::move(cells));
  }
  bench::emit(findings, opt);

  // Profiler view of the dense throughput passes (larger shapes): the
  // tensor pipe should be near-saturated, and the counted FLOPs per issued
  // mma must equal 2*M*N*K for the shape.
  Table counters("Profiler counters: dense mma throughput pass (H800)");
  counters.set_header(
      {"Shape", "Tensor pipe active", "FLOPs/inst", "mma issued"});
  constexpr std::size_t kH800Col = 2;  // column index in `devices`
  for (const std::size_t r : {std::size_t{1}, std::size_t{5}, std::size_t{7}}) {
    const auto& result = cell(r, kH800Col, false);
    if (!result) continue;
    const auto& pmu = result->pmu;
    const double issued = pmu.get(prof::Counter::kIssuedTensor);
    const double total = result->result.usage.total_cycles;
    counters.add_row(
        {"m16n8k" + std::to_string(rows[r].k_dense),
         total > 0.0
             ? fmt_fixed(
                   100.0 * pmu.get(prof::Counter::kTensorActiveCycles) / total,
                   1) + "%"
             : "-",
         issued > 0.0
             ? fmt_fixed(pmu.get(prof::Counter::kFlops) / issued, 0)
             : "-",
         fmt_fixed(issued, 0)});
  }
  bench::emit(counters, opt);
  const bench::FastForwardSpec ff_specs[] = {{"mma", 2048, 0, 0}};
  bench::emit_fast_forward_section(devices, ff_specs, opt);

  bench::write_report(report, opt, argv[0]);
  return 0;
}
