#include "common/thread_pool.hpp"

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace hsim {
namespace {

// Runs `fn` on a separate thread and waits up to `deadline` for it to
// finish.  On timeout the thread is detached (so a regression fails the
// test instead of hanging the binary); callers must keep any state the
// callable touches alive via shared ownership.
bool completes_within(std::chrono::seconds deadline, std::function<void()> fn) {
  auto done = std::make_shared<std::atomic<bool>>(false);
  std::thread runner([done, fn = std::move(fn)] {
    fn();
    done->store(true);
  });
  const auto start = std::chrono::steady_clock::now();
  while (!done->load() && std::chrono::steady_clock::now() - start < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (!done->load()) {
    runner.detach();
    return false;
  }
  runner.join();
  return true;
}

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitExceptionInFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

// Regression: parallel_for called from inside a pool task used to deadlock
// (the worker blocked on the future while holding the only worker slot).
// Workers now detect the nested call and help drain the queue instead.
TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  auto pool = std::make_shared<ThreadPool>(2);
  auto hits = std::make_shared<std::vector<std::atomic<int>>>(64);
  const bool finished = completes_within(std::chrono::seconds(30), [pool, hits] {
    pool->parallel_for(0, 8, [&](std::size_t i) {
      pool->parallel_for(0, 8, [&](std::size_t j) { ++(*hits)[i * 8 + j]; });
    });
  });
  ASSERT_TRUE(finished) << "nested parallel_for deadlocked";
  for (const auto& hit : *hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForFromSubmittedTaskSingleWorker) {
  // One worker is the worst case: the worker itself must execute every
  // chunk of the inner loop while it waits.
  auto pool = std::make_shared<ThreadPool>(1);
  auto total = std::make_shared<std::atomic<int>>(0);
  const bool finished = completes_within(std::chrono::seconds(30), [pool, total] {
    auto future = pool->submit([&] {
      pool->parallel_for(0, 100, [&](std::size_t i) {
        total->fetch_add(static_cast<int>(i));
      });
    });
    future.get();
  });
  ASSERT_TRUE(finished) << "parallel_for from a worker task deadlocked";
  EXPECT_EQ(total->load(), 4950);
}

TEST(ThreadPool, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(0, 4,
                                 [&](std::size_t i) {
                                   pool.parallel_for(0, 4, [&](std::size_t j) {
                                     if (i == 1 && j == 2) {
                                       throw std::runtime_error("inner");
                                     }
                                   });
                                 }),
               std::runtime_error);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

}  // namespace
}  // namespace hsim
