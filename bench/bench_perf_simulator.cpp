// Simulator performance benchmarks: how fast the simulator itself runs.
//
// Default mode measures end-to-end sim rate (simulated cycles per wall
// second) on the pinned configurations — the single-SM fig07 DPX
// throughput kernel, the single-SM dependent-LDG latency chain, the
// full-chip fig07 DPX grid, the sampled fast-forward case, and the
// fabric-scaling family (full-chip fig07 DPX at --threads 1/4/8 with the
// sharded barrier resolver, plus the serial-resolver reference at 8
// threads) — and writes bench_perf_cycles.json with one entry per case.
// This is the number a user pays for when sweeping paper tables, and the
// number the hot-path optimisations are graded on.
//
//   --smoke            trim the measurement budget and, when a baseline is
//                      given, exit non-zero if any case's cycles/sec falls
//                      more than 30% below it (the CI regression gate);
//   --baseline=PATH    checked-in baseline JSON to compare against (also
//                      honoured via HSIM_PERF_BASELINE);
//   --report=PATH      where to write the JSON (default
//                      bench_perf_cycles.json), --no-report to skip;
//   --micro            run the google-benchmark micro suite (cache tag
//                      lookups, FP8 encode, functional MMA, sweep engine)
//                      instead; remaining flags pass through to it.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "dpx/functions.hpp"
#include "ff/fast_forward.hpp"
#include "gpu/gpu_engine.hpp"
#include "mem/cache.hpp"
#include "mem/memory_system.hpp"
#include "numerics/formats.hpp"
#include "sim/sweep.hpp"
#include "sm/sm_core.hpp"
#include "tensorcore/mma_func.hpp"
#include "trace/kernels.hpp"

namespace {

using namespace hsim;

// --- google-benchmark micro suite (reached via --micro) ---------------------

void BM_CacheAccess(benchmark::State& state) {
  mem::Cache cache({.size_bytes = 256ull << 10, .line_bytes = 128,
                    .sector_bytes = 32, .ways = 4});
  Xoshiro256ss rng(1);
  std::vector<std::uint64_t> addrs(4096);
  for (auto& a : addrs) a = rng.below(1ull << 20);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.access(addrs[i++ & 4095]));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void BM_Fp8Encode(benchmark::State& state) {
  Xoshiro256ss rng(2);
  std::vector<float> values(4096);
  for (auto& v : values) v = static_cast<float>(rng.uniform(-500.0, 500.0));
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(num::encode(values[i++ & 4095], num::kE4m3Spec,
                                         num::Overflow::kSaturate));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Fp8Encode);

void BM_FunctionalMma(benchmark::State& state) {
  Xoshiro256ss rng(3);
  tc::MatF a(16, 16), b(16, 8), c(16, 8);
  tc::fill_random(a, num::DType::kFp16, rng);
  tc::fill_random(b, num::DType::kFp16, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tc::mma_fp(a, b, c, num::DType::kFp16, num::DType::kFp32));
  }
  state.SetItemsProcessed(state.iterations() * 2 * 16 * 8 * 16);
}
BENCHMARK(BM_FunctionalMma);

// The parallel sweep engine over a batch of SmCore simulations — the shape
// every paper-table bench now has.  Run with --benchmark_filter=Sweep to
// compare thread counts: results are bit-identical across them, and on a
// 4+-core host the 4-thread row should be >= 2x faster than the 1-thread
// row (wall clock; the sweep is embarrassingly parallel).
void BM_SweepEngineSmCore(benchmark::State& state) {
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kPoints = 32;
  isa::Program program;
  for (int i = 0; i < 8; ++i) {
    program.add({.op = isa::Opcode::kFAdd, .rd = 10 + i, .ra = 1, .rb = 2});
  }
  program.set_iterations(64);
  double checksum = 0;
  for (auto _ : state) {
    sim::SweepOptions options;
    options.threads = threads;
    options.seed = 42;
    const auto cycles = sim::sweep(
        kPoints,
        [&](sim::SweepContext&) {
          sm::SmCore core(arch::h800_pcie(), nullptr);
          return core.run(program, {.threads_per_block = 256, .blocks = 1})
              .cycles;
        },
        options);
    checksum = cycles.front();
    benchmark::DoNotOptimize(checksum);
  }
  state.SetItemsProcessed(state.iterations() * kPoints);
}
BENCHMARK(BM_SweepEngineSmCore)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

void BM_SmCoreCycles(benchmark::State& state) {
  isa::Program program;
  for (int i = 0; i < 8; ++i) {
    program.add({.op = isa::Opcode::kFAdd, .rd = 10 + i, .ra = 1, .rb = 2});
  }
  program.set_iterations(64);
  for (auto _ : state) {
    sm::SmCore core(arch::h800_pcie(), nullptr);
    const auto run = core.run(program, {.threads_per_block = 256, .blocks = 1});
    benchmark::DoNotOptimize(run.cycles);
  }
  state.SetItemsProcessed(state.iterations() * 8 * 64 * 8);  // instr issued
}
BENCHMARK(BM_SmCoreCycles);

// --- sim-rate suite (default mode) ------------------------------------------

using Clock = std::chrono::steady_clock;

double secs_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

struct RateCase {
  std::string name;
  double cycles = 0;        // simulated cycles accumulated over all reps
  int reps = 0;
  double wall_seconds = 0;
  [[nodiscard]] double cycles_per_sec() const {
    return wall_seconds > 0 ? cycles / wall_seconds : 0.0;
  }
};

isa::Program fig07_dpx_program(const arch::DeviceSpec& device) {
  isa::Program p;
  for (int c = 0; c < 8; ++c) {
    dpx::append(p, dpx::Func::kViMax3S32, 20 + c, 1, 2, 3,
                device.dpx.hardware, 40 + 8 * c);
  }
  p.set_iterations(64);
  return p;
}

// Single-SM fig07 DPX throughput kernel: 8 independent VIMNMX chains,
// 1024 threads/block — the per-SM config behind the paper's Fig. 7 point.
RateCase run_single_sm_dpx(const arch::DeviceSpec& device, double budget) {
  RateCase r{.name = "single_sm_dpx_fig07"};
  const isa::Program p = fig07_dpx_program(device);
  const auto t0 = Clock::now();
  do {
    sm::SmCore core(device, nullptr);
    r.cycles += core.run(p, {.threads_per_block = 1024, .blocks = 1}).cycles;
    ++r.reps;
    r.wall_seconds = secs_since(t0);
  } while (r.wall_seconds < budget);
  return r;
}

// Single-SM latency kernel: one warp chasing a dependent LDG chain through
// the full MemorySystem (L1/L2/DRAM + TLB) — exercises the idle-skip path.
RateCase run_single_sm_ldg(const arch::DeviceSpec& device, double budget) {
  RateCase r{.name = "single_sm_ldg_latency"};
  isa::Program p;
  p.add({.op = isa::Opcode::kLdgCg, .rd = 1, .ra = 1, .access_bytes = 4});
  p.set_iterations(2048);
  const auto t0 = Clock::now();
  do {
    mem::MemorySystem mem(device, 1);
    sm::SmCore core(device, &mem);
    r.cycles += core.run(p, {.threads_per_block = 32, .blocks = 1}).cycles;
    ++r.reps;
    r.wall_seconds = secs_since(t0);
  } while (r.wall_seconds < budget);
  return r;
}

// Full-chip fig07 DPX grid under the epoch-barrier engine with a chosen
// host thread count and barrier resolver (sharded default vs the serial
// reference twin).  threads=1 measures the per-core engine rate.
RateCase run_full_chip_dpx_case(const arch::DeviceSpec& device,
                                std::string name, int threads,
                                bool serial_fabric, double budget) {
  RateCase r{.name = std::move(name)};
  const isa::Program p = fig07_dpx_program(device);
  gpu::ChipOptions chip_options;
  chip_options.threads = threads;
  chip_options.serial_fabric = serial_fabric;
  do {
    gpu::GpuEngine engine(device, chip_options);
    const auto t0 = Clock::now();
    auto chip = engine.run(p, {.threads_per_block = 1024,
                               .total_blocks = 2 * device.sm_count + 8,
                               .smem_per_block = 0,
                               .regs_per_thread = 32});
    r.wall_seconds += secs_since(t0);
    ++r.reps;
    if (chip) r.cycles += chip.value().cycles;
  } while (r.wall_seconds < budget);
  return r;
}

// Full-chip fig07 DPX grid: every SM live under the epoch-barrier engine
// (serial, so the number is the per-core engine rate, not host parallelism).
RateCase run_full_chip_dpx(const arch::DeviceSpec& device, double budget) {
  return run_full_chip_dpx_case(device, "full_chip_fig07_dpx", 1,
                                /*serial_fabric=*/false, budget);
}

// Sampled smem bank-conflict kernel via the fast-forward engine: functional
// warp mode between detailed windows.  Counts *estimated* cycles per wall
// second — the rate a user sweeping with `hsim sample` actually gets, and
// the case that regresses if the functional interpreter or the warmup
// replay slows down.
RateCase run_sampled_smem(const arch::DeviceSpec& device, double budget) {
  RateCase r{.name = "sampled_smem_conflict"};
  const auto kernel = trace::make_trace_kernel("smem_conflict", 8192);
  if (!kernel) return r;
  const ff::FastForwardEngine engine(device);
  ff::SampleOptions options;
  options.interval = 1024;
  options.detail = 2;
  options.warmup = 2;
  const sm::BlockShape shape{.threads_per_block = 256, .blocks = 4};
  const auto t0 = Clock::now();
  do {
    const auto sampled =
        engine.sample(kernel->program, shape, kernel->needs_mem, options);
    r.cycles += sampled.cycles_est;
    ++r.reps;
    r.wall_seconds = secs_since(t0);
  } while (r.wall_seconds < budget);
  return r;
}

void write_rates_json(const std::vector<RateCase>& cases,
                      const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "warning: could not write sim-rate report to %s\n",
                 path.c_str());
    return;
  }
  out << "{\n  \"cases\": [\n";
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const auto& c = cases[i];
    char line[256];
    std::snprintf(line, sizeof line,
                  "    {\"name\": \"%s\", \"cycles\": %.0f, \"reps\": %d, "
                  "\"wall_seconds\": %.6f, \"cycles_per_sec\": %.1f}%s\n",
                  c.name.c_str(), c.cycles, c.reps, c.wall_seconds,
                  c.cycles_per_sec(), i + 1 < cases.size() ? "," : "");
    out << line;
  }
  out << "  ]\n}\n";
  std::printf("[sim-rate report: %s — %zu cases]\n", path.c_str(),
              cases.size());
}

/// Minimal reader for the schema write_rates_json emits (and the checked-in
/// baseline uses): for each case name, the "cycles_per_sec" value that
/// follows it.  Returns a negative value when the name is absent.
double baseline_rate(const std::string& json, const std::string& name) {
  const auto at = json.find("\"" + name + "\"");
  if (at == std::string::npos) return -1.0;
  const auto key = json.find("\"cycles_per_sec\"", at);
  if (key == std::string::npos) return -1.0;
  const auto colon = json.find(':', key);
  if (colon == std::string::npos) return -1.0;
  return std::strtod(json.c_str() + colon + 1, nullptr);
}

int run_sim_rate_suite(bool smoke, const std::string& baseline_path,
                       const bench::Options& opt) {
  const auto& device = arch::h800_pcie();
  // Smoke trims the rep budget for the repeatable cases; cycles/sec is a
  // rate, so the shorter sample compares against the same baseline.
  const double budget = smoke ? 0.25 : 2.0;

  std::vector<RateCase> cases;
  cases.push_back(run_single_sm_dpx(device, budget));
  cases.push_back(run_single_sm_ldg(device, budget));
  cases.push_back(run_full_chip_dpx(device, budget));
  cases.push_back(run_sampled_smem(device, budget));
  // Fabric scaling: the sharded barrier resolver at 1/4/8 host threads,
  // plus the serial-resolver reference twin at 8 threads — the pair the
  // "sharded is >= the serial resolver at scale" claim is graded on.
  // (Scaling cases get a trimmed budget: four full-chip configs at the
  // full budget would double the suite's wall time.)
  const double scaling_budget = smoke ? budget : budget / 2;
  for (const int threads : {1, 4, 8}) {
    cases.push_back(run_full_chip_dpx_case(
        device, "fullchip_fabric_scaling_t" + std::to_string(threads),
        threads, /*serial_fabric=*/false, scaling_budget));
  }
  cases.push_back(run_full_chip_dpx_case(device, "fullchip_fabric_serial_t8",
                                         8, /*serial_fabric=*/true,
                                         scaling_budget));

  std::printf("%-24s %14s %6s %10s %14s\n", "case", "cycles", "reps",
              "wall (s)", "cycles/sec");
  for (const auto& c : cases) {
    std::printf("%-24s %14.0f %6d %10.3f %14.1f\n", c.name.c_str(), c.cycles,
                c.reps, c.wall_seconds, c.cycles_per_sec());
  }

  if (opt.report) {
    // Fixed name (not argv0-derived): the ROADMAP sim-rate trajectory and
    // the checked-in baseline both refer to bench_perf_cycles.json.
    write_rates_json(cases, opt.report_path.empty() ? "bench_perf_cycles.json"
                                                    : opt.report_path);
  }

  if (!smoke) return 0;
  if (baseline_path.empty()) {
    std::printf("[smoke: no --baseline given, regression gate skipped]\n");
    return 0;
  }
  std::ifstream in(baseline_path);
  if (!in) {
    std::fprintf(stderr, "error: cannot read baseline %s\n",
                 baseline_path.c_str());
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string json = buf.str();

  // The gate: fail when measured cycles/sec drops more than 30% below the
  // checked-in baseline.  Baselines are deliberately conservative (about
  // half the rate measured on the calibration host) so slower CI machines
  // don't flake while a real hot-path regression still trips it.
  constexpr double kMaxRegression = 0.30;
  int failures = 0;
  for (const auto& c : cases) {
    const double base = baseline_rate(json, c.name);
    if (base <= 0) {
      std::fprintf(stderr, "error: baseline %s has no entry for %s\n",
                   baseline_path.c_str(), c.name.c_str());
      ++failures;
      continue;
    }
    const double floor = base * (1.0 - kMaxRegression);
    const bool ok = c.cycles_per_sec() >= floor;
    std::printf("[smoke] %-24s %14.1f vs baseline %14.1f (floor %14.1f) %s\n",
                c.name.c_str(), c.cycles_per_sec(), base, floor,
                ok ? "ok" : "REGRESSED");
    if (!ok) ++failures;
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bool micro = false;
  bool smoke = false;
  std::string baseline_path;
  if (const char* env = std::getenv("HSIM_PERF_BASELINE")) baseline_path = env;
  std::vector<char*> passthrough{argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--micro") == 0) {
      micro = true;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--baseline=", 11) == 0) {
      baseline_path = argv[i] + 11;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (micro) {
    int count = static_cast<int>(passthrough.size());
    benchmark::Initialize(&count, passthrough.data());
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
  }
  const bench::Options opt = bench::parse_options(
      static_cast<int>(passthrough.size()), passthrough.data());
  return run_sim_rate_suite(smoke, baseline_path, opt);
}
