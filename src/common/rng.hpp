// Deterministic pseudo-random number generation.
//
// Every stochastic choice in the simulator (workload synthesis, random
// matrix initialisation, address permutations) flows through Xoshiro256ss so
// runs are reproducible from a single seed.  std::mt19937 is avoided: its
// state is large and its distributions are not portable across standard
// library implementations.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.hpp"

namespace hsim {

/// SplitMix64: seeds Xoshiro from a single 64-bit value.
constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 (Blackman & Vigna).  Fast, high quality, tiny state.
class Xoshiro256ss {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256ss(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Lemire's multiply-shift, no modulo bias
  /// for the bound sizes used here.
  std::uint64_t below(std::uint64_t bound) noexcept {
    HSIM_ASSERT(bound > 0);
    const auto wide =
        static_cast<unsigned __int128>((*this)()) * static_cast<unsigned __int128>(bound);
    return static_cast<std::uint64_t>(wide >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept {
    HSIM_ASSERT(lo <= hi);
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Standard normal via Marsaglia polar method.
  double normal() noexcept {
    for (;;) {
      const double u = uniform(-1.0, 1.0);
      const double v = uniform(-1.0, 1.0);
      const double s = u * u + v * v;
      if (s > 0.0 && s < 1.0) {
        return u * std::sqrt(-2.0 * std::log(s) / s);
      }
    }
  }

  /// Fork an independent stream (for per-thread generators).
  Xoshiro256ss fork() noexcept { return Xoshiro256ss{(*this)()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

/// Fisher-Yates permutation of [0, n).  Used to build pointer-chase rings
/// that defeat any (simulated or host) prefetcher.
std::vector<std::uint32_t> random_permutation(std::uint32_t n, Xoshiro256ss& rng);

/// A single random cycle visiting all of [0, n) (a "sattolo" cycle): the
/// canonical p-chase pattern — following next[i] repeatedly touches every
/// slot exactly once before returning to the start.
std::vector<std::uint32_t> random_cycle(std::uint32_t n, Xoshiro256ss& rng);

}  // namespace hsim
