// Typed value wrappers over the small floating-point formats.
//
// Each type stores the native bit pattern and converts to/from FP32 with the
// format's exact rounding rules, so a `Matrix<fp16>` in the tensor-core
// model has bit-identical storage behaviour to device memory.
#pragma once

#include <compare>
#include <cstdint>

#include "numerics/formats.hpp"

namespace hsim::num {

/// A value of a small floating-point format `Spec`, stored in `Storage`.
template <const FormatSpec& Spec, typename Storage>
class Small {
 public:
  using storage_type = Storage;
  static constexpr const FormatSpec& spec() { return Spec; }

  constexpr Small() = default;
  /// Converting constructor rounds to nearest-even.
  explicit Small(float value, Overflow policy = Overflow::kPropagate)
      : bits_(static_cast<Storage>(encode(value, Spec, policy))) {}

  static Small from_bits(Storage bits) {
    Small out;
    out.bits_ = bits;
    return out;
  }

  [[nodiscard]] Storage bits() const { return bits_; }
  [[nodiscard]] float to_float() const { return decode(bits_, Spec); }
  explicit operator float() const { return to_float(); }

  [[nodiscard]] bool is_nan() const { return is_nan_bits(bits_, Spec); }
  [[nodiscard]] bool is_inf() const { return is_inf_bits(bits_, Spec); }

  /// Bitwise equality (NaN == NaN under this operator; it compares storage).
  friend bool operator==(Small a, Small b) { return a.bits_ == b.bits_; }

 private:
  Storage bits_ = 0;
};

using fp16 = Small<kFp16Spec, std::uint16_t>;
using bf16 = Small<kBf16Spec, std::uint16_t>;
using tf32 = Small<kTf32Spec, std::uint32_t>;  // 19 significant bits
using fp8_e4m3 = Small<kE4m3Spec, std::uint8_t>;
using fp8_e5m2 = Small<kE5m2Spec, std::uint8_t>;

/// Saturating conversion to int8 (IMMA accumulator path uses int32; this is
/// for quantised storage).
constexpr std::int8_t saturate_to_s8(std::int32_t v) {
  if (v > 127) return 127;
  if (v < -128) return -128;
  return static_cast<std::int8_t>(v);
}

/// Saturating conversion to signed 4-bit (stored sign-extended in int8).
constexpr std::int8_t saturate_to_s4(std::int32_t v) {
  if (v > 7) return 7;
  if (v < -8) return -8;
  return static_cast<std::int8_t>(v);
}

}  // namespace hsim::num
