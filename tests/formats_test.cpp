// Software floating-point formats: rounding, subnormals, specials and
// exhaustive round-trips for every 8- and 16-bit format.
#include "numerics/formats.hpp"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "numerics/types.hpp"

namespace hsim::num {
namespace {

// ---------- Exhaustive round-trips: decode(encode(x)) is the identity on
// every representable value of every format. ----------

class FormatRoundTrip : public ::testing::TestWithParam<const FormatSpec*> {};

TEST_P(FormatRoundTrip, EveryBitPatternSurvivesDecodeEncode) {
  const auto& spec = *GetParam();
  const int bits = spec.total_bits();
  ASSERT_LE(bits, 19);  // exhaustive only for small formats
  const std::uint32_t count = 1u << bits;
  for (std::uint32_t pattern = 0; pattern < count; ++pattern) {
    const float value = decode(pattern, spec);
    if (std::isnan(value)) {
      EXPECT_TRUE(is_nan_bits(encode(value, spec), spec));
      continue;
    }
    const std::uint32_t back = encode(value, spec);
    EXPECT_EQ(back, pattern) << "pattern " << pattern << " value " << value;
  }
}

INSTANTIATE_TEST_SUITE_P(AllSmallFormats, FormatRoundTrip,
                         ::testing::Values(&kFp16Spec, &kBf16Spec, &kTf32Spec,
                                           &kE4m3Spec, &kE5m2Spec),
                         [](const auto& info) {
                           return std::string(info.param->name);
                         });

// ---------- Format constants ----------

TEST(FormatSpec, MaxFiniteValues) {
  EXPECT_EQ(kFp16Spec.max_finite(), 65504.0);
  EXPECT_EQ(kE4m3Spec.max_finite(), 448.0);   // OCP E4M3
  EXPECT_EQ(kE5m2Spec.max_finite(), 57344.0);
  EXPECT_FLOAT_EQ(static_cast<float>(kBf16Spec.max_finite()), 3.3895314e38f);
}

TEST(FormatSpec, MinSubnormals) {
  EXPECT_EQ(kFp16Spec.min_subnormal(), std::ldexp(1.0, -24));
  EXPECT_EQ(kE4m3Spec.min_subnormal(), std::ldexp(1.0, -9));   // 2^-9
  EXPECT_EQ(kE5m2Spec.min_subnormal(), std::ldexp(1.0, -16));
}

// ---------- Rounding behaviour ----------

TEST(Fp16, RoundToNearestEvenAtHalfway) {
  // 1 + 2^-11 is exactly halfway between 1.0 and 1 + 2^-10: ties-to-even
  // rounds down to 1.0 (even mantissa).
  const float halfway = 1.0f + std::ldexp(1.0f, -11);
  EXPECT_EQ(round_through(halfway, kFp16Spec), 1.0f);
  // Just above halfway rounds up.
  const float above = 1.0f + std::ldexp(1.0f, -11) + std::ldexp(1.0f, -20);
  EXPECT_EQ(round_through(above, kFp16Spec), 1.0f + std::ldexp(1.0f, -10));
  // Halfway between odd and even mantissa rounds *up* to the even one.
  const float odd_halfway = 1.0f + 3.0f * std::ldexp(1.0f, -11);
  EXPECT_EQ(round_through(odd_halfway, kFp16Spec),
            1.0f + std::ldexp(1.0f, -9));
}

TEST(Fp16, SubnormalsRepresentExactly) {
  for (int i = 1; i < 16; ++i) {
    const float sub = static_cast<float>(i) * std::ldexp(1.0f, -24);
    EXPECT_EQ(round_through(sub, kFp16Spec), sub);
  }
}

TEST(Fp16, GradualUnderflowRounds) {
  // Half of the smallest subnormal rounds to zero (ties-to-even).
  EXPECT_EQ(round_through(std::ldexp(1.0f, -25), kFp16Spec), 0.0f);
  // 0.75 * min_subnormal rounds up to min_subnormal.
  EXPECT_EQ(round_through(0.75f * std::ldexp(1.0f, -24), kFp16Spec),
            std::ldexp(1.0f, -24));
}

TEST(Fp16, OverflowToInfinityByDefault) {
  const std::uint32_t bits = encode(70000.0f, kFp16Spec);
  EXPECT_TRUE(is_inf_bits(bits, kFp16Spec));
  EXPECT_TRUE(std::isinf(decode(bits, kFp16Spec)));
}

TEST(Fp16, SatfiniteClampsToMax) {
  const std::uint32_t bits = encode(70000.0f, kFp16Spec, Overflow::kSaturate);
  EXPECT_EQ(decode(bits, kFp16Spec), 65504.0f);
  const std::uint32_t neg = encode(-70000.0f, kFp16Spec, Overflow::kSaturate);
  EXPECT_EQ(decode(neg, kFp16Spec), -65504.0f);
}

TEST(Fp16, ValuesJustBelowOverflowThresholdRoundToMax) {
  // 65519.999 rounds to 65504 (below the 65520 halfway point)...
  EXPECT_EQ(round_through(65519.0f, kFp16Spec), 65504.0f);
  // ...and 65520 (exactly halfway, even would be 65536=overflow) overflows.
  EXPECT_TRUE(std::isinf(round_through(65520.0f, kFp16Spec)));
}

// ---------- E4M3 specifics (OCP FP8) ----------

TEST(E4m3, HasNoInfinity) {
  const std::uint32_t bits = encode(1e6f, kE4m3Spec);
  EXPECT_TRUE(is_nan_bits(bits, kE4m3Spec));
  EXPECT_FALSE(is_inf_bits(bits, kE4m3Spec));
}

TEST(E4m3, InfinityInputBecomesNanOrSaturates) {
  const float inf = std::numeric_limits<float>::infinity();
  EXPECT_TRUE(is_nan_bits(encode(inf, kE4m3Spec), kE4m3Spec));
  EXPECT_EQ(decode(encode(inf, kE4m3Spec, Overflow::kSaturate), kE4m3Spec),
            448.0f);
}

TEST(E4m3, TopExponentHoldsFiniteValues) {
  // 256..448 use the all-ones exponent field.
  EXPECT_EQ(round_through(256.0f, kE4m3Spec), 256.0f);
  EXPECT_EQ(round_through(448.0f, kE4m3Spec), 448.0f);
  // 449 rounds down to 448 (nearest); 480 is the NaN boundary halfway.
  EXPECT_EQ(round_through(449.0f, kE4m3Spec), 448.0f);
  EXPECT_TRUE(std::isnan(round_through(500.0f, kE4m3Spec)));
}

TEST(E4m3, SingleNanEncoding) {
  int nan_count = 0;
  for (std::uint32_t pattern = 0; pattern < 256; ++pattern) {
    if (is_nan_bits(pattern, kE4m3Spec)) ++nan_count;
  }
  EXPECT_EQ(nan_count, 2);  // +NaN and -NaN only (S.1111.111)
}

TEST(E5m2, HasInfinityAndMultipleNans) {
  EXPECT_TRUE(is_inf_bits(encode(1e9f, kE5m2Spec), kE5m2Spec));
  int nan_count = 0;
  for (std::uint32_t pattern = 0; pattern < 256; ++pattern) {
    if (is_nan_bits(pattern, kE5m2Spec)) ++nan_count;
  }
  EXPECT_EQ(nan_count, 6);  // 3 mantissa patterns x 2 signs
}

// ---------- TF32 ----------

TEST(Tf32, KeepsTenMantissaBits) {
  // 1 + 2^-10 survives; 1 + 2^-11 rounds away.
  EXPECT_EQ(round_through(1.0f + std::ldexp(1.0f, -10), kTf32Spec),
            1.0f + std::ldexp(1.0f, -10));
  EXPECT_EQ(round_through(1.0f + std::ldexp(1.0f, -12), kTf32Spec), 1.0f);
}

TEST(Tf32, FullFp32ExponentRange) {
  EXPECT_EQ(round_through(std::ldexp(1.0f, 127), kTf32Spec),
            std::ldexp(1.0f, 127));
  EXPECT_EQ(round_through(std::ldexp(1.0f, -126), kTf32Spec),
            std::ldexp(1.0f, -126));
}

TEST(Bf16, TruncatesLikeFp32HighHalf) {
  // BF16 round-to-nearest of 1.00390625 (1 + 2^-8) ties to even -> 1.0.
  EXPECT_EQ(round_through(1.0f + std::ldexp(1.0f, -8), kBf16Spec), 1.0f);
  EXPECT_EQ(round_through(3.0f, kBf16Spec), 3.0f);
}

// ---------- Signs, zeros, NaN payloads ----------

TEST(AllFormats, SignedZeroPreserved) {
  for (const auto* spec : {&kFp16Spec, &kBf16Spec, &kTf32Spec, &kE4m3Spec,
                           &kE5m2Spec}) {
    EXPECT_EQ(encode(0.0f, *spec), 0u) << spec->name;
    const std::uint32_t neg = encode(-0.0f, *spec);
    EXPECT_NE(neg, 0u) << spec->name;
    EXPECT_EQ(decode(neg, *spec), 0.0f) << spec->name;
    EXPECT_TRUE(std::signbit(decode(neg, *spec))) << spec->name;
  }
}

TEST(AllFormats, NanInProducesNanOut) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  for (const auto* spec : {&kFp16Spec, &kBf16Spec, &kTf32Spec, &kE4m3Spec,
                           &kE5m2Spec}) {
    EXPECT_TRUE(is_nan_bits(encode(nan, *spec), *spec)) << spec->name;
  }
}

// ---------- Typed wrappers ----------

TEST(TypedWrappers, ConstructConvertCompare) {
  const fp16 a(1.5f);
  EXPECT_EQ(a.to_float(), 1.5f);
  EXPECT_EQ(fp16(1.5f), a);
  EXPECT_FALSE(a.is_nan());
  EXPECT_FALSE(a.is_inf());
  const fp8_e4m3 b(448.0f);
  EXPECT_EQ(b.to_float(), 448.0f);
  EXPECT_TRUE(fp8_e4m3(1e9f).is_nan());
  EXPECT_TRUE(fp16(1e9f).is_inf());
}

TEST(TypedWrappers, FromBitsRoundTrips) {
  const auto v = fp16::from_bits(0x3C00);  // 1.0
  EXPECT_EQ(v.to_float(), 1.0f);
  EXPECT_EQ(v.bits(), 0x3C00);
}

TEST(IntSaturation, S8AndS4) {
  EXPECT_EQ(saturate_to_s8(200), 127);
  EXPECT_EQ(saturate_to_s8(-200), -128);
  EXPECT_EQ(saturate_to_s8(5), 5);
  EXPECT_EQ(saturate_to_s4(9), 7);
  EXPECT_EQ(saturate_to_s4(-9), -8);
  EXPECT_EQ(saturate_to_s4(-8), -8);
}

// ---------- Property: encode is monotone on finite positive values ----------

TEST(AllFormats, EncodeIsMonotone) {
  for (const auto* spec : {&kFp16Spec, &kE4m3Spec, &kE5m2Spec}) {
    float prev_value = 0.0f;
    std::uint32_t prev_bits = encode(0.0f, *spec);
    for (int step = 1; step < 2000; ++step) {
      const float value = static_cast<float>(step) * 0.037f;
      if (value > static_cast<float>(spec->max_finite())) break;
      const std::uint32_t bits = encode(value, *spec);
      EXPECT_GE(bits, prev_bits)
          << spec->name << " at " << value << " after " << prev_value;
      prev_bits = bits;
      prev_value = value;
    }
  }
}

}  // namespace
}  // namespace hsim::num
