// Functional execution of mma/wgmma: exact numeric semantics.
//
// All floating-point paths compute each product exactly and accumulate
// left-to-right in the accumulator precision (see numerics/dot.hpp for the
// provenance of that model); integer paths accumulate exactly in int32;
// binary paths are AND+POPC.  wgmma shares these semantics — the difference
// is purely in shape and timing.
#pragma once

#include "common/status.hpp"
#include "numerics/dtype.hpp"
#include "tensorcore/fragment.hpp"
#include "tensorcore/sparse.hpp"

namespace hsim::tc {

/// D = A(mxk) x B(kxn) + C(mxn) with floating-point tensor-core semantics.
/// A and B must already be rounded through `ab` storage (fill_random does
/// this); the routine re-rounds defensively.  `cd` selects the accumulator
/// precision (FP16 or FP32).
MatF mma_fp(const MatF& a, const MatF& b, const MatF& c, num::DType ab,
            num::DType cd);

/// Sparse variant: A is 2:4 compressed; only stored positions contribute —
/// numerically identical to mma_fp on decompress(a).
MatF mma_sparse_fp(const Sparse24& a, const MatF& b, const MatF& c,
                   num::DType ab, num::DType cd);

/// Integer path (IMMA): int8/int4 inputs, exact int32 accumulation.
MatI32 mma_int(const MatI8& a, const MatI8& b, const MatI32& c);

/// Binary path (BMMA .AND.POPC): k is in bits, operands packed 32/word.
MatI32 mma_binary(const MatB& a, const MatB& b, const MatI32& c);

/// FP64 reference multiply (used by tests as the "infinitely precise"
/// baseline when characterising rounding behaviour).
Mat<double> matmul_f64(const MatF& a, const MatF& b, const MatF& c);

}  // namespace hsim::tc
