#include "isa/program.hpp"

#include <cstdlib>
#include <sstream>

namespace hsim::isa {
namespace {

// Opcodes whose `ra` is an address register and whose `imm` is a byte
// offset folded into the address.  These print with the assembler's memory
// operand syntax ([R1+8].16) so that disassembled text re-assembles to an
// identical Instruction.
constexpr bool memory_operand_style(Opcode op) noexcept {
  switch (op) {
    case Opcode::kLdgCa:
    case Opcode::kLdgCg:
    case Opcode::kStg:
    case Opcode::kLds:
    case Opcode::kSts:
    case Opcode::kLdsRemote:
    case Opcode::kStsRemote:
    case Opcode::kAtomSharedAdd:
    case Opcode::kAtomRemoteAdd:
    case Opcode::kCpAsync:
      return true;
    // TMA.LOAD addresses through ra but its imm is the box size, not an
    // offset, so the imm prints as a plain trailing operand instead.
    case Opcode::kTmaLoad:
    default:
      return false;
  }
}

}  // namespace

std::string Instruction::to_string() const {
  std::ostringstream os;
  os << mnemonic(op);
  bool first = true;
  const auto sep = [&]() -> std::ostringstream& {
    os << (first ? " " : ", ");
    first = false;
    return os;
  };
  const auto emit_reg = [&](int r) {
    if (r != kRegNone) sep() << "R" << r;
  };
  const bool mem = memory_operand_style(op) || op == Opcode::kTmaLoad;
  if (!mem) {
    emit_reg(rd);
    emit_reg(ra);
    emit_reg(rb);
    emit_reg(rc);
    if (imm != 0) sep() << imm;
    return os.str();
  }

  // Memory form: rd (loads/atomics), the bracketed address, then any value
  // registers.  An absent address register prints as an absolute offset.
  emit_reg(rd);
  sep() << '[';
  if (ra != kRegNone) {
    os << 'R' << ra;
    if (memory_operand_style(op) && imm > 0) os << '+' << imm;
    if (memory_operand_style(op) && imm < 0) os << imm;
  } else {
    os << (memory_operand_style(op) ? imm : 0);
  }
  os << ']';
  if (access_bytes != 4) os << '.' << access_bytes;
  emit_reg(rb);
  emit_reg(rc);
  if (op == Opcode::kTmaLoad && imm != 0) sep() << imm;
  return os.str();
}

std::string Program::to_string() const {
  std::ostringstream os;
  os << "; " << body_.size() << " instructions x " << iterations_ << " iterations\n";
  os << ".iterations " << iterations_ << '\n';
  for (const auto& inst : body_) os << inst.to_string() << '\n';
  return os.str();
}

}  // namespace hsim::isa
