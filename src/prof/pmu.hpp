// Typed hardware performance-counter (PMU) registry.
//
// One `PmuCounters` block is the unit of collection: the SM core, the memory
// hierarchy, shared memory, and the full-chip slice fabric all take an
// optional `PmuCounters*` and increment into it behind a single branch per
// event site — the same zero-overhead-when-disabled contract as
// trace::TraceSink (no sink attached: no work beyond the branch, no
// allocation ever; the steady state is pinned by tests/profile_test.cpp).
//
// Determinism: every increment is an exact integer-valued double (or a fixed
// multiple of a device constant), so regrouping the additions is bit-exact.
// During a full-chip epoch per-SM blocks are private to their SM and the
// slice fabric's blocks are private to their L2 slice (one block per slice,
// so the sharded barrier resolver counts without synchronisation); the
// engine merges SM blocks in SM-index order and fabric blocks in
// slice-index order at the end — the merged block is bit-identical at any
// `--threads`, the same way trace buffers are.
#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "common/state_io.hpp"

namespace hsim::prof {

/// Counter identifiers.  The enumerator order is the public schema of the
/// JSON export — append, never reorder.  The per-class issue counters are
/// laid out in isa::UnitClass order so `kIssuedAlu + unit_class` indexes the
/// right slot without a switch on the hot path.
enum class Counter : std::uint16_t {
  // Issue / retire ledger.
  kInstIssued = 0,   // every instruction that won an issue slot
  kInstRetired,      // completion known (deferred accesses retire at the
                     // epoch barrier), so issued >= retired at all times
  kIssuedAlu,        // per-UnitClass breakdown of kInstIssued
  kIssuedFma,
  kIssuedFp64,
  kIssuedDpx,
  kIssuedTensor,
  kIssuedLsu,
  kIssuedDsm,
  kIssuedControl,
  kWarpsLaunched,
  kWarpsRetired,
  kFlops,            // functional FLOP count (roofline numerator)
  // Warp-state occupancy sampling (see PmuCounters::occ_hist).
  kSampledCycles,
  // Memory-hierarchy sector ledger.  Accesses are counted where the request
  // enters a level, hits/misses where the tag lookup classifies it, so
  // accesses == hits + misses is a real conservation check.
  kL1SectorAccesses,
  kL1SectorHits,
  kL1SectorMisses,
  kL2SectorAccesses,
  kL2SectorHits,
  kL2SectorMisses,
  kDramSectors,      // sectors that fell through L2 to DRAM
  kTlbAccesses,
  kTlbMisses,
  // Shared memory.
  kSmemAccesses,        // warp-level shared accesses through the bank model
  kSmemConflictPhases,  // extra serialised phases (degree - 1 per access)
  // Tensor core / asynchronous copies.
  kTensorActiveCycles,  // pipe-busy cycles charged at the mma cadence
  kTmaBytes,            // bulk-copy bytes moved by the TMA engine
  kCpAsyncBytes,        // cp.async bytes in flight through the LSU
  kCount
};

inline constexpr std::size_t kNumCounters =
    static_cast<std::size_t>(Counter::kCount);

/// Occupancy histogram range: Hopper's 64 warps per SM (sm::SmLimits).
inline constexpr int kMaxWarpsPerSm = 64;

[[nodiscard]] std::string_view counter_name(Counter c) noexcept;
[[nodiscard]] std::string_view counter_description(Counter c) noexcept;

struct PmuCounters {
  std::array<double, kNumCounters> values{};
  // occ_hist[w] = cycles sampled with exactly w live warps on the SM; the
  // issue loop samples every advanced cycle (idle skips credit their whole
  // span), so sum(occ_hist) == kSampledCycles by conservation.
  std::array<double, kMaxWarpsPerSm + 1> occ_hist{};

  [[nodiscard]] double get(Counter c) const noexcept {
    return values[static_cast<std::size_t>(c)];
  }
  void add(Counter c, double v) noexcept {
    values[static_cast<std::size_t>(c)] += v;
  }
  void inc(Counter c) noexcept { values[static_cast<std::size_t>(c)] += 1.0; }
  /// Per-class issue slot for a pre-resolved isa::UnitClass index.
  void inc_issued_class(std::uint8_t unit_class) noexcept {
    values[static_cast<std::size_t>(Counter::kIssuedAlu) + unit_class] += 1.0;
  }
  void sample_occupancy(int live_warps, double cycles) noexcept {
    const int w = live_warps < 0 ? 0
                  : live_warps > kMaxWarpsPerSm ? kMaxWarpsPerSm
                                                : live_warps;
    occ_hist[static_cast<std::size_t>(w)] += cycles;
    values[static_cast<std::size_t>(Counter::kSampledCycles)] += cycles;
  }

  void reset() noexcept {
    values.fill(0.0);
    occ_hist.fill(0.0);
  }
  /// Element-wise accumulate; callers merge per-SM blocks in SM-index order
  /// (and per-slice fabric blocks in slice-index order) so the result is
  /// bit-identical regardless of host thread count.
  void merge(const PmuCounters& other) noexcept;

  /// Warp-cycles integral: sum over w of w * occ_hist[w].
  [[nodiscard]] double warp_cycles() const noexcept;
  /// Cycles the occupancy sampler covered (== get(kSampledCycles)).
  [[nodiscard]] double sampled_cycles() const noexcept {
    return get(Counter::kSampledCycles);
  }

  /// Internal conservation invariants (issued >= retired, level accesses ==
  /// hits + misses, occupancy samples sum to sampled cycles).  Returns true
  /// when all hold; otherwise false with a description in `why` (if given).
  [[nodiscard]] bool conserved(std::string* why = nullptr) const;

  /// Round-trip-exact JSON object (counter name -> value, plus the
  /// occupancy histogram as an array).  Used by the bit-identity tests.
  void write_json(std::ostream& os) const;
  [[nodiscard]] std::string to_json() const;

  /// Binary snapshot (schema is the append-only Counter order; a snapshot
  /// from a build with a different kNumCounters fails the size check).
  void save_state(common::StateWriter& w) const {
    w.marker(0x504d5521u);  // "PMU!"
    w.f64_vec({values.data(), values.size()});
    w.f64_vec({occ_hist.data(), occ_hist.size()});
  }
  void load_state(common::StateReader& r) {
    r.expect_marker(0x504d5521u);
    const auto v = r.f64_vec();
    const auto h = r.f64_vec();
    if (!r.expect(v.size() == values.size() && h.size() == occ_hist.size())) {
      return;
    }
    std::copy(v.begin(), v.end(), values.begin());
    std::copy(h.begin(), h.end(), occ_hist.begin());
  }
};

}  // namespace hsim::prof
