#include "sim/accounting.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "common/json_writer.hpp"

namespace hsim::sim {
namespace {

// A unit name exercising every escape class: quote, backslash, newline, tab
// and a raw control byte.
// Note the split literal: \x escapes are greedy, so "\x01end" would parse
// as \x1e followed by "nd".
const std::string kHostileName = "evil\"unit\\path\nline\ttab\x01" "end";

CycleReport report_with_hostile_unit() {
  CycleReport report;
  CycleSample sample;
  sample.label = "hostile";
  sample.total_cycles = 100.0;
  sample.units.push_back({kHostileName, 40.0, 7});
  report.add(sample);
  return report;
}

TEST(JsonEscape, EscapesStructuralAndControlCharacters) {
  EXPECT_EQ(json_escaped("plain.name"), "plain.name");
  EXPECT_EQ(json_escaped("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escaped("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escaped("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escaped(std::string_view("a\x01z", 3)), "a\\u0001z");
}

TEST(CycleReport, WriteJsonEscapesUnitNames) {
  std::ostringstream os;
  report_with_hostile_unit().write_json(os);
  const std::string out = os.str();
  // The escaped name appears; the raw quote-breaking sequence does not.
  EXPECT_NE(out.find("evil\\\"unit\\\\path\\nline\\ttab\\u0001end"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("evil\"unit"), std::string::npos) << out;
  // No raw newline may survive inside the (single-line) document body.
  EXPECT_EQ(out.find('\n'), out.size() - 1) << out;
}

TEST(CycleReport, WriteChromeTraceEscapesUnitNames) {
  std::ostringstream os;
  report_with_hostile_unit().write_chrome_trace(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("evil\\\"unit\\\\path\\nline\\ttab\\u0001end"),
            std::string::npos)
      << out;
  EXPECT_EQ(out.find("evil\"unit"), std::string::npos) << out;
  EXPECT_EQ(out.find('\n'), out.size() - 1) << out;
}

}  // namespace
}  // namespace hsim::sim
