#include "numerics/formats.hpp"

#include <cmath>

#include "common/status.hpp"

namespace hsim::num {
namespace {

constexpr std::uint32_t kF32SignMask = 0x8000'0000u;
constexpr std::uint32_t kF32ManMask = 0x007F'FFFFu;

std::uint32_t nan_bits(std::uint32_t sign, const FormatSpec& spec) {
  const auto exp_field = static_cast<std::uint32_t>(spec.max_exp_field());
  std::uint32_t man_field;
  if (spec.has_inf) {
    // Canonical quiet NaN: MSB of mantissa set.
    man_field = 1u << (spec.man_bits - 1);
  } else {
    // E4M3: the single NaN encoding is S.1111.111.
    man_field = (1u << spec.man_bits) - 1;
  }
  return (sign << (spec.exp_bits + spec.man_bits)) |
         (exp_field << spec.man_bits) | man_field;
}

std::uint32_t inf_bits(std::uint32_t sign, const FormatSpec& spec) {
  HSIM_ASSERT(spec.has_inf);
  const auto exp_field = static_cast<std::uint32_t>(spec.max_exp_field());
  return (sign << (spec.exp_bits + spec.man_bits)) | (exp_field << spec.man_bits);
}

std::uint32_t max_finite_bits(std::uint32_t sign, const FormatSpec& spec) {
  std::uint32_t exp_field;
  std::uint32_t man_field;
  if (spec.has_inf) {
    exp_field = static_cast<std::uint32_t>(spec.max_exp_field() - 1);
    man_field = (1u << spec.man_bits) - 1;
  } else {
    exp_field = static_cast<std::uint32_t>(spec.max_exp_field());
    man_field = (1u << spec.man_bits) - 2;  // all-ones is NaN
  }
  return (sign << (spec.exp_bits + spec.man_bits)) |
         (exp_field << spec.man_bits) | man_field;
}

std::uint32_t overflow_bits(std::uint32_t sign, const FormatSpec& spec,
                            Overflow policy) {
  if (policy == Overflow::kSaturate) return max_finite_bits(sign, spec);
  return spec.has_inf ? inf_bits(sign, spec) : nan_bits(sign, spec);
}

}  // namespace

std::uint32_t encode(float value, const FormatSpec& spec, Overflow policy) noexcept {
  const auto fbits = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = fbits >> 31;
  const std::uint32_t sign_field = sign << (spec.exp_bits + spec.man_bits);
  const int raw_exp = static_cast<int>((fbits >> 23) & 0xFFu);
  const std::uint32_t raw_man = fbits & kF32ManMask;

  if (raw_exp == 0xFF) {
    if (raw_man != 0) return nan_bits(sign, spec);  // NaN in -> NaN out
    // Infinity: satfinite clamps it, otherwise it propagates (or becomes NaN
    // for E4M3, which cannot represent it).
    return overflow_bits(sign, spec, policy);
  }
  if (raw_exp == 0 && raw_man == 0) return sign_field;  // signed zero

  // Normalise to significand in [2^23, 2^24) and unbiased exponent.
  int exp;
  std::uint64_t sig;
  if (raw_exp == 0) {
    // FP32 subnormal.
    exp = -126;
    sig = raw_man;
    while (sig < (1ull << 23)) {
      sig <<= 1;
      --exp;
    }
  } else {
    exp = raw_exp - 127;
    sig = (1ull << 23) | raw_man;
  }

  // Right-shift so the implicit bit lands at position spec.man_bits; values
  // below the normal range get an extra shift (gradual underflow).
  int te = exp;
  int shift = 23 - spec.man_bits;
  if (te < spec.min_normal_exp()) {
    shift += spec.min_normal_exp() - te;
    te = spec.min_normal_exp();
  }

  std::uint64_t rounded;
  if (shift >= 64) {
    rounded = 0;
  } else {
    const std::uint64_t ulp = 1ull << shift;
    const std::uint64_t half = ulp >> 1;
    const std::uint64_t rem = sig & (ulp - 1);
    rounded = sig >> shift;
    if (rem > half || (rem == half && (rounded & 1ull))) ++rounded;
  }

  const auto implicit = 1u << spec.man_bits;
  std::uint32_t exp_field;
  std::uint32_t man_field;
  if (rounded < implicit) {
    // Zero or subnormal result.  (Only reachable via the underflow path.)
    exp_field = 0;
    man_field = static_cast<std::uint32_t>(rounded);
  } else {
    if (rounded >= (static_cast<std::uint64_t>(implicit) << 1)) {
      // Rounding carried into the exponent.
      rounded >>= 1;
      ++te;
    }
    if (te > spec.max_finite_exp()) return overflow_bits(sign, spec, policy);
    exp_field = static_cast<std::uint32_t>(te + spec.bias);
    man_field = static_cast<std::uint32_t>(rounded) - implicit;
    if (!spec.has_inf &&
        exp_field == static_cast<std::uint32_t>(spec.max_exp_field()) &&
        man_field == (1u << spec.man_bits) - 1) {
      // E4M3: the would-be encoding collides with NaN -> overflow.
      return overflow_bits(sign, spec, policy);
    }
  }
  return sign_field | (exp_field << spec.man_bits) | man_field;
}

float decode(std::uint32_t bits, const FormatSpec& spec) noexcept {
  const std::uint32_t man_mask = (1u << spec.man_bits) - 1;
  const std::uint32_t sign = (bits >> (spec.exp_bits + spec.man_bits)) & 1u;
  const std::uint32_t exp_field =
      (bits >> spec.man_bits) & static_cast<std::uint32_t>(spec.max_exp_field());
  const std::uint32_t man_field = bits & man_mask;

  float magnitude;
  if (exp_field == 0) {
    magnitude = std::ldexp(static_cast<float>(man_field),
                           spec.min_normal_exp() - spec.man_bits);
  } else if (spec.has_inf &&
             exp_field == static_cast<std::uint32_t>(spec.max_exp_field())) {
    if (man_field != 0) return std::numeric_limits<float>::quiet_NaN();
    magnitude = std::numeric_limits<float>::infinity();
  } else if (!spec.has_inf &&
             exp_field == static_cast<std::uint32_t>(spec.max_exp_field()) &&
             man_field == man_mask) {
    return std::numeric_limits<float>::quiet_NaN();
  } else {
    const float frac =
        1.0f + static_cast<float>(man_field) / static_cast<float>(1u << spec.man_bits);
    magnitude = std::ldexp(frac, static_cast<int>(exp_field) - spec.bias);
  }
  return sign ? -magnitude : magnitude;
}

bool is_nan_bits(std::uint32_t bits, const FormatSpec& spec) noexcept {
  const std::uint32_t man_mask = (1u << spec.man_bits) - 1;
  const std::uint32_t exp_field =
      (bits >> spec.man_bits) & static_cast<std::uint32_t>(spec.max_exp_field());
  const std::uint32_t man_field = bits & man_mask;
  if (exp_field != static_cast<std::uint32_t>(spec.max_exp_field())) return false;
  return spec.has_inf ? man_field != 0 : man_field == man_mask;
}

bool is_inf_bits(std::uint32_t bits, const FormatSpec& spec) noexcept {
  if (!spec.has_inf) return false;
  const std::uint32_t man_mask = (1u << spec.man_bits) - 1;
  const std::uint32_t exp_field =
      (bits >> spec.man_bits) & static_cast<std::uint32_t>(spec.max_exp_field());
  return exp_field == static_cast<std::uint32_t>(spec.max_exp_field()) &&
         (bits & man_mask) == 0;
}

}  // namespace hsim::num
