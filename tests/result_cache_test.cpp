// ResultCache + cache_key: the content-addressing contract the serve layer
// leans on.  Key stability across runs (a pure function of the identity),
// invalidation on every identity axis, strict LRU eviction order, the
// capacity-0 degenerate case, and the counter conservation law
// hits + misses == lookups.
#include "serve/result_cache.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace hsim::serve {
namespace {

QueryIdentity base_identity() {
  QueryIdentity id;
  id.verb = "simulate";
  id.device = "H800 PCIe";
  id.program_hash = 0x1234abcd5678ef00ull;
  id.config = R"({"blocks":1,"iters":64})";
  id.code_version = "hoppersim-1.0.0+serve1";
  return id;
}

TEST(CacheKey, StableAcrossCalls) {
  // Pure function of the identity: hashing twice (and from a copied
  // identity) gives the same 64-bit address — the property that makes keys
  // meaningful across sessions and across server restarts.
  const QueryIdentity a = base_identity();
  const QueryIdentity b = base_identity();
  EXPECT_EQ(cache_key(a), cache_key(a));
  EXPECT_EQ(cache_key(a), cache_key(b));
}

TEST(CacheKey, EveryIdentityAxisInvalidates) {
  const std::uint64_t base = cache_key(base_identity());

  QueryIdentity verb = base_identity();
  verb.verb = "profile";
  EXPECT_NE(cache_key(verb), base);

  QueryIdentity device = base_identity();
  device.device = "A100 SXM";
  EXPECT_NE(cache_key(device), base);

  QueryIdentity program = base_identity();
  program.program_hash ^= 1;
  EXPECT_NE(cache_key(program), base);

  QueryIdentity config = base_identity();
  config.config = R"({"blocks":1,"iters":65})";
  EXPECT_NE(cache_key(config), base);

  QueryIdentity code = base_identity();
  code.code_version = "hoppersim-1.0.0+serve2";
  EXPECT_NE(cache_key(code), base);
}

TEST(CacheKey, FieldBoundariesAreSeparated) {
  // ("ab", "c") vs ("a", "bc"): without separators these would FNV to the
  // same stream.
  QueryIdentity a = base_identity();
  a.verb = "ab";
  a.device = "c";
  QueryIdentity b = base_identity();
  b.verb = "a";
  b.device = "bc";
  EXPECT_NE(cache_key(a), cache_key(b));
}

TEST(ResultCache, HitReturnsInsertedPayload) {
  ResultCache cache(4);
  EXPECT_EQ(cache.lookup(1), std::nullopt);
  cache.insert(1, "payload-one");
  const auto hit = cache.lookup(1);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-one");
}

TEST(ResultCache, LruEvictionOrder) {
  ResultCache cache(3);
  cache.insert(1, "a");
  cache.insert(2, "b");
  cache.insert(3, "c");
  // Touch 1 so 2 becomes least-recently-used.
  ASSERT_TRUE(cache.lookup(1).has_value());
  cache.insert(4, "d");  // evicts 2
  EXPECT_EQ(cache.lookup(2), std::nullopt);
  EXPECT_TRUE(cache.lookup(1).has_value());
  EXPECT_TRUE(cache.lookup(3).has_value());
  EXPECT_TRUE(cache.lookup(4).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);

  // MRU order after the lookups above: 4, 3, 1.
  const std::vector<std::uint64_t> expected{4, 3, 1};
  EXPECT_EQ(cache.keys_mru_first(), expected);
}

TEST(ResultCache, ReinsertRefreshesWithoutEviction) {
  ResultCache cache(2);
  cache.insert(1, "old");
  cache.insert(2, "b");
  cache.insert(1, "new");  // refresh, not a second entry
  EXPECT_EQ(cache.stats().entries, 2u);
  EXPECT_EQ(cache.stats().evictions, 0u);
  EXPECT_EQ(*cache.lookup(1), "new");
  // 1 is now MRU, so inserting a third key evicts 2.
  cache.insert(3, "c");
  EXPECT_EQ(cache.lookup(2), std::nullopt);
}

TEST(ResultCache, CapacityZeroStoresNothingButCountsEverything) {
  ResultCache cache(0);
  cache.insert(1, "a");
  EXPECT_EQ(cache.lookup(1), std::nullopt);
  EXPECT_EQ(cache.lookup(1), std::nullopt);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.insertions, 0u);
  EXPECT_EQ(stats.lookups, 2u);
  EXPECT_EQ(stats.hits, 0u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

TEST(ResultCache, CounterConservation) {
  ResultCache cache(2);
  cache.insert(1, "a");
  cache.insert(2, "b");
  cache.insert(3, "c");  // evicts 1
  (void)cache.lookup(1);  // miss
  (void)cache.lookup(2);  // hit
  (void)cache.lookup(3);  // hit
  (void)cache.lookup(9);  // miss
  const auto stats = cache.stats();
  EXPECT_EQ(stats.lookups, 4u);
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.insertions, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(ResultCache, ClearDropsEntriesKeepsCounters) {
  ResultCache cache(2);
  cache.insert(1, "a");
  (void)cache.lookup(1);
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.lookup(1), std::nullopt);
  // History survives a clear: conservation still holds over the full run.
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

}  // namespace
}  // namespace hsim::serve
