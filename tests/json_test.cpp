// Strict JSON parser + canonical dump (src/common/json): the read side of
// the serve wire protocol.  Pins the strictness choices (one top-level
// value, duplicate-key rejection, bounded depth, control-character
// rejection), integer exactness for 64-bit seeds, and the canonicalization
// property parse(dump(v)) == v with dump(parse(t)) stable.
#include "common/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace hsim::json {
namespace {

Value must_parse(const std::string& text) {
  auto value = parse(text);
  EXPECT_TRUE(value.has_value()) << text;
  return value.has_value() ? std::move(value).value() : Value();
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(must_parse("null").is_null());
  EXPECT_EQ(must_parse("true").as_bool(), true);
  EXPECT_EQ(must_parse("false").as_bool(), false);
  EXPECT_EQ(must_parse("42").as_u64(), 42u);
  EXPECT_EQ(must_parse("-7").as_i64(), -7);
  EXPECT_DOUBLE_EQ(must_parse("2.5").as_double(), 2.5);
  EXPECT_DOUBLE_EQ(must_parse("1e3").as_double(), 1000.0);
  EXPECT_EQ(must_parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, U64SeedsSurviveExactly) {
  // 2^64 - 1 would be mangled by a double round-trip.
  const Value v = must_parse("18446744073709551615");
  ASSERT_TRUE(v.is_unsigned());
  EXPECT_EQ(v.as_u64(), 18446744073709551615ull);
  EXPECT_EQ(v.dump(), "18446744073709551615");
  // Past u64: still a valid number, no longer integer-exact.
  const Value big = must_parse("18446744073709551616");
  EXPECT_TRUE(big.is_number());
  EXPECT_FALSE(big.is_integer());
}

TEST(JsonParse, IntegerVsDoubleClassification) {
  EXPECT_TRUE(must_parse("10").is_unsigned());
  EXPECT_TRUE(must_parse("-10").is_integer());
  EXPECT_FALSE(must_parse("-10").is_unsigned());
  EXPECT_FALSE(must_parse("10.0").is_integer());
  EXPECT_FALSE(must_parse("1e2").is_integer());
}

TEST(JsonParse, StringsWithEscapes) {
  EXPECT_EQ(must_parse(R"("a\"b\\c\nd")").as_string(), "a\"b\\c\nd");
  EXPECT_EQ(must_parse(R"("\u0041")").as_string(), "A");
  EXPECT_EQ(must_parse(R"("\u00e9")").as_string(), "\xc3\xa9");
  // Surrogate pair: U+1F600.
  EXPECT_EQ(must_parse(R"("\ud83d\ude00")").as_string(),
            "\xf0\x9f\x98\x80");
}

TEST(JsonParse, NestedStructures) {
  const Value v = must_parse(R"({"a":[1,{"b":null}],"c":{}})");
  ASSERT_TRUE(v.is_object());
  const Value* a = v.find("a");
  ASSERT_TRUE(a != nullptr && a->is_array());
  EXPECT_EQ(a->as_array().size(), 2u);
  EXPECT_TRUE(a->as_array()[1].find("b")->is_null());
}

TEST(JsonParse, RejectsMalformed) {
  const char* const bad[] = {
      "",
      "   ",
      "{",
      "[1,",
      "nul",
      "tru",
      "{\"a\":}",
      "{\"a\":1,}",
      "[1,]",
      "{'a':1}",
      "{\"a\" 1}",
      "\"unterminated",
      "01",
      "+1",
      "1.",
      ".5",
      "- 1",
      "\x01",
      "{\"a\":1} {\"b\":2}",  // two top-level values
      "1 2",
      "{\"a\":1,\"a\":2}",  // duplicate key
      "\"bad \\q escape\"",
      "\"\\ud83d\"",        // lone high surrogate
      "\"\\ude00\"",        // lone low surrogate
      "[\"ctrl \x01 char\"]",
  };
  for (const char* text : bad) {
    EXPECT_FALSE(parse(text).has_value()) << text;
  }
}

TEST(JsonParse, ErrorsCarryBytePosition) {
  const auto result = parse("{\"a\": nope}");
  ASSERT_FALSE(result.has_value());
  EXPECT_NE(result.error().message.find("at byte"), std::string::npos)
      << result.error().message;
}

TEST(JsonParse, DepthIsBounded) {
  std::string deep;
  for (std::size_t i = 0; i < kMaxDepth + 1; ++i) deep += '[';
  for (std::size_t i = 0; i < kMaxDepth + 1; ++i) deep += ']';
  EXPECT_FALSE(parse(deep).has_value());
  std::string fits;
  for (std::size_t i = 0; i < kMaxDepth; ++i) fits += '[';
  for (std::size_t i = 0; i < kMaxDepth; ++i) fits += ']';
  EXPECT_TRUE(parse(fits).has_value());
}

TEST(JsonDump, CanonicalBytes) {
  // Keys come back sorted regardless of input order; integers stay
  // integers; whitespace is normalized away.
  const Value v = must_parse(R"({ "z" : 1 , "a" : [ true , "x" ] })");
  EXPECT_EQ(v.dump(), R"({"a":[true,"x"],"z":1})");
  // dump(parse(dump)) is a fixed point.
  EXPECT_EQ(must_parse(v.dump()).dump(), v.dump());
}

TEST(JsonDump, EscapesControlCharactersAndQuotes) {
  const Value v = Value::string("a\"b\\c\n\x02");
  const std::string dumped = v.dump();
  EXPECT_EQ(must_parse(dumped).as_string(), "a\"b\\c\n\x02");
}

TEST(JsonDump, NumbersRoundTrip) {
  for (const char* text : {"0", "-1", "123456789012345678", "0.5",
                           "3.141592653589793", "1e-09"}) {
    const Value v = must_parse(text);
    const Value again = must_parse(v.dump());
    if (v.is_integer()) {
      EXPECT_EQ(again.as_i64(), v.as_i64()) << text;
    } else {
      EXPECT_DOUBLE_EQ(again.as_double(), v.as_double()) << text;
    }
    // Stability: a second dump emits the same bytes.
    EXPECT_EQ(again.dump(), v.dump()) << text;
  }
}

TEST(JsonValue, BuildersMatchParsedForm) {
  Object obj;
  obj.emplace("n", Value::integer(-3));
  obj.emplace("u", Value::unsigned_integer(7));
  obj.emplace("s", Value::string("txt"));
  Array arr;
  arr.push_back(Value::boolean(true));
  arr.push_back(Value::null());
  obj.emplace("a", Value::array(std::move(arr)));
  const Value built = Value::object(std::move(obj));
  EXPECT_EQ(built.dump(), R"({"a":[true,null],"n":-3,"s":"txt","u":7})");
  EXPECT_EQ(must_parse(built.dump()).dump(), built.dump());
}

}  // namespace
}  // namespace hsim::json
