#include "prof/pmu.hpp"

#include <cmath>
#include <ostream>
#include <sstream>

#include "common/json_writer.hpp"

namespace hsim::prof {
namespace {

struct CounterInfo {
  std::string_view name;
  std::string_view description;
};

// Indexed by Counter; order must match the enum (schema order).
constexpr std::array<CounterInfo, kNumCounters> kCounterInfo{{
    {"inst_issued", "instructions that won an issue slot"},
    {"inst_retired", "instructions whose completion is known"},
    {"inst_issued_alu", "INT32-pipe instructions issued"},
    {"inst_issued_fma", "FP32/FMA-pipe instructions issued"},
    {"inst_issued_fp64", "FP64-pipe instructions issued"},
    {"inst_issued_dpx", "DPX instructions issued"},
    {"inst_issued_tensor", "tensor-core (HMMA) instructions issued"},
    {"inst_issued_lsu", "load/store instructions issued"},
    {"inst_issued_dsm", "SM-to-SM (distributed smem) instructions issued"},
    {"inst_issued_control", "control instructions issued (bar, exit, ...)"},
    {"warps_launched", "warps made resident by block launches"},
    {"warps_retired", "warps that ran to completion"},
    {"flops", "functional floating-point operations"},
    {"sampled_cycles", "cycles covered by the warp-occupancy sampler"},
    {"l1_sector_accesses", "sector requests entering L1 tag lookup"},
    {"l1_sector_hits", "L1 sector hits"},
    {"l1_sector_misses", "L1 sector misses (sector or line)"},
    {"l2_sector_accesses", "sector requests entering L2 tag lookup"},
    {"l2_sector_hits", "L2 sector hits"},
    {"l2_sector_misses", "L2 sector misses"},
    {"dram_sectors", "sectors served by DRAM"},
    {"tlb_accesses", "address translations attempted"},
    {"tlb_misses", "address translations that missed the TLB"},
    {"smem_accesses", "warp-level shared-memory accesses"},
    {"smem_conflict_phases", "extra serialised phases from bank conflicts"},
    {"tensor_active_cycles", "tensor-core pipe busy cycles"},
    {"tma_bytes", "bytes moved by TMA bulk copies"},
    {"cp_async_bytes", "bytes moved by cp.async copies"},
}};

}  // namespace

std::string_view counter_name(Counter c) noexcept {
  return kCounterInfo[static_cast<std::size_t>(c)].name;
}

std::string_view counter_description(Counter c) noexcept {
  return kCounterInfo[static_cast<std::size_t>(c)].description;
}

void PmuCounters::merge(const PmuCounters& other) noexcept {
  for (std::size_t i = 0; i < values.size(); ++i) values[i] += other.values[i];
  for (std::size_t i = 0; i < occ_hist.size(); ++i) {
    occ_hist[i] += other.occ_hist[i];
  }
}

double PmuCounters::warp_cycles() const noexcept {
  double total = 0.0;
  for (std::size_t w = 0; w < occ_hist.size(); ++w) {
    total += static_cast<double>(w) * occ_hist[w];
  }
  return total;
}

bool PmuCounters::conserved(std::string* why) const {
  const auto fail = [&](const std::string& message) {
    if (why != nullptr) *why = message;
    return false;
  };
  const auto describe = [](std::string_view what, double lhs, double rhs) {
    std::ostringstream os;
    os << what << ": " << lhs << " vs " << rhs;
    return os.str();
  };

  const double issued = get(Counter::kInstIssued);
  const double retired = get(Counter::kInstRetired);
  if (retired > issued) {
    return fail(describe("inst_retired exceeds inst_issued", retired, issued));
  }
  double per_class = 0.0;
  for (auto c = static_cast<std::size_t>(Counter::kIssuedAlu);
       c <= static_cast<std::size_t>(Counter::kIssuedControl); ++c) {
    per_class += values[c];
  }
  if (per_class != issued) {
    return fail(
        describe("per-class issue counters do not sum to inst_issued",
                 per_class, issued));
  }
  if (get(Counter::kWarpsRetired) > get(Counter::kWarpsLaunched)) {
    return fail(describe("warps_retired exceeds warps_launched",
                         get(Counter::kWarpsRetired),
                         get(Counter::kWarpsLaunched)));
  }
  const auto level = [&](Counter acc, Counter hit, Counter miss,
                         std::string_view what) {
    return get(acc) == get(hit) + get(miss)
               ? std::string{}
               : describe(what, get(acc), get(hit) + get(miss));
  };
  if (auto m = level(Counter::kL1SectorAccesses, Counter::kL1SectorHits,
                     Counter::kL1SectorMisses, "L1 accesses != hits + misses");
      !m.empty()) {
    return fail(m);
  }
  if (auto m = level(Counter::kL2SectorAccesses, Counter::kL2SectorHits,
                     Counter::kL2SectorMisses, "L2 accesses != hits + misses");
      !m.empty()) {
    return fail(m);
  }
  if (get(Counter::kTlbMisses) > get(Counter::kTlbAccesses)) {
    return fail(describe("tlb_misses exceeds tlb_accesses",
                         get(Counter::kTlbMisses),
                         get(Counter::kTlbAccesses)));
  }
  double hist = 0.0;
  for (const double h : occ_hist) hist += h;
  if (hist != sampled_cycles()) {
    return fail(describe("occupancy samples do not sum to sampled cycles",
                         hist, sampled_cycles()));
  }
  if (why != nullptr) why->clear();
  return true;
}

void PmuCounters::write_json(std::ostream& os) const {
  os << "{\"counters\":{";
  for (std::size_t i = 0; i < kNumCounters; ++i) {
    if (i != 0) os << ",";
    write_json_string(os, kCounterInfo[i].name);
    os << ":";
    write_json_number_exact(os, values[i]);
  }
  os << "},\"occupancy_hist\":[";
  for (std::size_t w = 0; w < occ_hist.size(); ++w) {
    if (w != 0) os << ",";
    write_json_number_exact(os, occ_hist[w]);
  }
  os << "]}";
}

std::string PmuCounters::to_json() const {
  std::ostringstream os;
  write_json(os);
  return os.str();
}

}  // namespace hsim::prof
