#include "mem/memory_system.hpp"

#include <algorithm>

namespace hsim::mem {
namespace {

// DRAM sector command overhead calibrated so streaming efficiency lands at
// the device's measured fraction of pin bandwidth: solving
//   eff = sector / (sector + overhead * pin_Bclk)  for overhead.
double overhead_for_efficiency(double efficiency, double pin_bytes_per_clk,
                               int sector_bytes) {
  HSIM_ASSERT(efficiency > 0.0 && efficiency <= 1.0);
  const double per_sector_ideal = static_cast<double>(sector_bytes) / pin_bytes_per_clk;
  return per_sector_ideal * (1.0 / efficiency - 1.0);
}

}  // namespace

MemorySystem::MemorySystem(const arch::DeviceSpec& device, int active_sms)
    : device_(device) {
  HSIM_ASSERT(active_sms >= 1 && active_sms <= device.sm_count);
  const auto& m = device.memory;

  for (int i = 0; i < active_sms; ++i) {
    CacheConfig l1cfg;
    l1cfg.size_bytes = m.l1_bytes_per_sm;
    l1cfg.line_bytes = m.l1_line_bytes;
    l1cfg.sector_bytes = m.sector_bytes;
    l1cfg.ways = m.l1_ways;
    l1_.push_back(std::make_unique<Cache>(l1cfg));
    l1_port_.emplace_back();
  }

  CacheConfig l2cfg;
  l2cfg.size_bytes = m.l2_bytes;
  l2cfg.line_bytes = m.l1_line_bytes;
  l2cfg.sector_bytes = m.sector_bytes;
  l2cfg.ways = m.l2_ways;
  l2_ = std::make_unique<Cache>(l2cfg);

  DramConfig dcfg;
  dcfg.peak_gbps = m.dram_peak_gbps;
  dcfg.core_clock_hz = device.clock_hz();
  dcfg.latency_cycles = m.dram_latency;
  dcfg.sector_bytes = m.sector_bytes;
  const double pin = m.dram_peak_gbps * 1e9 / device.clock_hz();
  dcfg.sector_overhead_cycles =
      overhead_for_efficiency(m.dram_efficiency, pin, m.sector_bytes);
  dram_ = std::make_unique<Dram>(dcfg);

  tlb_ = std::make_unique<Tlb>(/*entries=*/128, /*page_bytes=*/2ull << 20);
}

double MemorySystem::l1_width(int access_bytes) const {
  const auto& m = device_.memory;
  if (access_bytes >= 16) return m.l1_bytes_per_clk_vec;
  if (access_bytes >= 8) return m.l1_bytes_per_clk_wide;
  return m.l1_bytes_per_clk_scalar;
}

double MemorySystem::l2_width(int access_bytes) const {
  const auto& m = device_.memory;
  if (access_bytes >= 16) return m.l2_bytes_per_clk_vec;
  if (access_bytes >= 8) return m.l2_bytes_per_clk_wide;
  return m.l2_bytes_per_clk_scalar;
}

LoadResult MemorySystem::load(int sm, std::uint64_t addr, MemSpace space, double now) {
  const auto& m = device_.memory;
  LoadResult out;
  if (space == MemSpace::kShared) {
    out.ready_time = now + m.smem_latency;
    out.served_by = MemLevel::kShared;
  } else {
    out.tlb_miss = !tlb_->access(addr);
    if (pmu_ != nullptr) {
      pmu_->inc(prof::Counter::kTlbAccesses);
      if (out.tlb_miss) pmu_->inc(prof::Counter::kTlbMisses);
    }
    const double tlb_extra = out.tlb_miss ? m.tlb_miss_penalty : 0.0;
    bool l1_hit = false;
    if (space == MemSpace::kGlobalCa) {
      l1_hit = l1(sm).access(addr) == CacheOutcome::kHit;
      if (pmu_ != nullptr) {
        pmu_->inc(prof::Counter::kL1SectorAccesses);
        pmu_->inc(l1_hit ? prof::Counter::kL1SectorHits
                         : prof::Counter::kL1SectorMisses);
      }
    }
    if (l1_hit) {
      out.ready_time = now + m.l1_hit_latency + tlb_extra;
      out.served_by = MemLevel::kL1;
    } else {
      const bool l2_hit = l2_->access(addr) == CacheOutcome::kHit;
      if (pmu_ != nullptr) {
        pmu_->inc(prof::Counter::kL2SectorAccesses);
        pmu_->inc(l2_hit ? prof::Counter::kL2SectorHits
                         : prof::Counter::kL2SectorMisses);
        if (!l2_hit) pmu_->inc(prof::Counter::kDramSectors);
      }
      if (l2_hit) {
        out.ready_time = now + m.l2_hit_latency + tlb_extra;
        out.served_by = MemLevel::kL2;
      } else {
        out.ready_time = now + m.dram_latency + tlb_extra;
        out.served_by = MemLevel::kDram;
      }
    }
  }
  last_ = AccessClass{out.served_by, out.tlb_miss};
  if (trace_ != nullptr) {
    trace_->on_event({trace::EventKind::kExecute, stall_reason_of(last_), now,
                      out.ready_time - now, sm, -1, -1,
                      to_string(out.served_by)});
  }
  return out;
}

double MemorySystem::warp_transaction(int sm, std::uint64_t addr, std::uint32_t bytes,
                                      int access_bytes, MemSpace space, double now) {
  const auto& m = device_.memory;
  if (space == MemSpace::kShared) {
    // Conflict-free path; conflicted patterns go through SharedMemory's
    // analyser in the SM model.
    const double duration = static_cast<double>(bytes) / m.smem_bytes_per_clk;
    auto& port = l1_port_[static_cast<std::size_t>(sm)];  // unified L1/smem
    const double done = port.issue(now, duration, duration + m.smem_latency);
    if (pmu_ != nullptr) pmu_->inc(prof::Counter::kSmemAccesses);
    last_ = AccessClass{MemLevel::kShared, false};
    if (trace_ != nullptr) {
      trace_->on_event({trace::EventKind::kExecute, stall_reason_of(last_), now,
                        done - now, sm, -1, -1, to_string(MemLevel::kShared)});
    }
    return done;
  }

  // Classify the transaction's sectors through the cache hierarchy.  The
  // loop start is aligned down so an access that straddles a sector
  // boundary (e.g. addr=120, bytes=16, sector=32) still touches its
  // trailing sector.
  const auto sector = static_cast<std::uint32_t>(m.sector_bytes);
  bool any_l2 = false;
  bool any_dram = false;
  for (std::uint64_t a = addr / sector * sector; a < addr + bytes; a += sector) {
    bool l1_hit = false;
    if (space == MemSpace::kGlobalCa) {
      l1_hit = l1(sm).access(a) == CacheOutcome::kHit;
      if (pmu_ != nullptr) {
        pmu_->inc(prof::Counter::kL1SectorAccesses);
        pmu_->inc(l1_hit ? prof::Counter::kL1SectorHits
                         : prof::Counter::kL1SectorMisses);
      }
    }
    if (!l1_hit) {
      const bool l2_hit = l2_->access(a) == CacheOutcome::kHit;
      if (pmu_ != nullptr) {
        pmu_->inc(prof::Counter::kL2SectorAccesses);
        pmu_->inc(l2_hit ? prof::Counter::kL2SectorHits
                         : prof::Counter::kL2SectorMisses);
        if (!l2_hit) pmu_->inc(prof::Counter::kDramSectors);
      }
      if (l2_hit) {
        any_l2 = true;
      } else {
        any_dram = true;
      }
    }
  }

  // L1 port is always traversed (it is the SM's load/store path).
  const double l1_duration = static_cast<double>(bytes) / l1_width(access_bytes);
  auto& port = l1_port_[static_cast<std::size_t>(sm)];
  double done = port.issue(now, l1_duration, l1_duration + m.l1_hit_latency);

  if (any_l2 || any_dram) {
    const double l2_duration = static_cast<double>(bytes) / l2_width(access_bytes);
    const double l2_done =
        l2_port_.issue(now, l2_duration, l2_duration + m.l2_hit_latency);
    done = std::max(done - m.l1_hit_latency, l2_done);
  }
  if (any_dram) {
    done = std::max(done, dram_->request(now, bytes));
  }
  const MemLevel deepest =
      any_dram ? MemLevel::kDram : (any_l2 ? MemLevel::kL2 : MemLevel::kL1);
  last_ = AccessClass{deepest, false};
  if (trace_ != nullptr) {
    trace_->on_event({trace::EventKind::kExecute, stall_reason_of(last_), now,
                      done - now, sm, -1, -1, to_string(deepest)});
  }
  return done;
}

void MemorySystem::warm(std::uint64_t base, std::uint64_t size, MemSpace space, int sm) {
  const auto sector = static_cast<std::uint64_t>(device_.memory.sector_bytes);
  for (std::uint64_t a = base / sector * sector; a < base + size; a += sector) {
    if (space == MemSpace::kGlobalCa) l1(sm).access(a);
    if (space != MemSpace::kShared) {
      l2_->access(a);
      tlb_->access(a);
    }
  }
}

std::vector<sim::UnitSample> MemorySystem::unit_usage() const {
  // L1.port busy cycles are averaged over the active per-SM ports so that
  // occupancy = busy / total stays in [0, 1]; ops are summed across them.
  sim::UnitSample l1{"L1.port", 0.0, 0};
  for (const auto& port : l1_port_) {
    l1.busy_cycles += port.busy_cycles();
    l1.ops += port.ops();
  }
  l1.busy_cycles /= static_cast<double>(l1_port_.size());
  return {std::move(l1),
          {"L2.port", l2_port_.busy_cycles(), l2_port_.ops()},
          {"DRAM.channel", dram_->channel_busy_cycles(), dram_->channel_sectors()}};
}

void MemorySystem::reset_timing() {
  for (auto& port : l1_port_) port.reset();
  l2_port_.reset();
  dram_->reset();
}

}  // namespace hsim::mem
