// Table VIII: dense wgmma on H800 tensor cores — SS vs RS operand sourcing,
// zero-filled vs random operands (the DVFS throttle under random data).
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/tcbench.hpp"
#include "prof/pmu.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);
  const auto& h800 = arch::h800_pcie();

  struct Row {
    DType ab;
    DType cd;
    int k;
  };
  const Row rows[] = {
      {DType::kFp16, DType::kFp16, 16}, {DType::kFp16, DType::kFp32, 16},
      {DType::kTf32, DType::kFp32, 8},  {DType::kFp8E4M3, DType::kFp16, 32},
      {DType::kFp8E4M3, DType::kFp32, 32}, {DType::kInt8, DType::kInt32, 32},
  };

  Table table("Table VIII: dense wgmma m64n256kX on H800 (LAT/TFLOPS)");
  table.set_header({"A/B", "C/D", "Instruction", "SS,Zero", "RS,Zero",
                    "SS,Rand", "RS,Rand", "TC act", "FLOPs/inst"});
  for (const auto& row : rows) {
    isa::TcInstr ss{.path = isa::TcPath::kWgmma, .shape = {64, 256, row.k},
                    .ab = row.ab, .cd = row.cd,
                    .a_src = isa::OperandSource::kSharedMemory};
    isa::TcInstr rs = ss;
    rs.a_src = isa::OperandSource::kRegister;
    // Profiler columns: the throughput pass's tensor-pipe occupancy and the
    // per-instruction FLOP count (2*M*N*K) from the PMU block.
    prof::PmuCounters pmu;
    core::TcBenchConfig ss_config;
    ss_config.pmu = &pmu;
    const auto ss_result = core::bench_tc(ss, h800, ss_config);
    const auto rs_result = core::bench_tc(rs, h800);
    if (!ss_result || !rs_result) {
      table.add_row({std::string(num::to_string(row.ab)),
                     std::string(num::to_string(row.cd)),
                     "m64n256k" + std::to_string(row.k), "x", "x", "x", "x",
                     "x", "x"});
      continue;
    }
    const double issued = pmu.get(prof::Counter::kIssuedTensor);
    const double total = ss_result.value().usage.total_cycles;
    table.add_row({std::string(num::to_string(row.ab)),
                   std::string(num::to_string(row.cd)),
                   "m64n256k" + std::to_string(row.k),
                   fmt_lat_tput(ss_result.value().latency_cycles,
                                ss_result.value().tflops_zero),
                   fmt_lat_tput(rs_result.value().latency_cycles,
                                rs_result.value().tflops_zero),
                   fmt_fixed(ss_result.value().tflops_rand, 1),
                   fmt_fixed(rs_result.value().tflops_rand, 1),
                   total > 0.0
                       ? fmt_fixed(100.0 *
                                       pmu.get(prof::Counter::kTensorActiveCycles) /
                                       total,
                                   1) + "%"
                       : "-",
                   issued > 0.0
                       ? fmt_fixed(pmu.get(prof::Counter::kFlops) / issued, 0)
                       : "-"});
  }
  bench::emit(table, opt);

  std::cout << "wgmma on non-Hopper devices: ";
  isa::TcInstr probe{.path = isa::TcPath::kWgmma, .shape = {64, 256, 16},
                     .ab = DType::kFp16, .cd = DType::kFp32};
  const auto on_a100 = core::bench_tc(probe, arch::a100_pcie());
  std::cout << (on_a100 ? "unexpectedly succeeded!"
                        : on_a100.error().to_string())
            << "\n";
  return 0;
}
