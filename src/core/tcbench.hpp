// Tensor-core latency/throughput harness (Tables VI-XI).
//
// Mirrors the paper's method: issue the instruction 1024 times inside a
// kernel; completion latency comes from a fully dependent chain (each mma
// accumulates into the operand of the next), throughput from back-to-back
// independent issue on every SM.  Both run against the structural timing
// model's pipeline; the power model then prices the run with zero-filled
// and random operands (Zero vs Rand columns) including any DVFS throttle.
#pragma once

#include <string>

#include "arch/device.hpp"
#include "common/status.hpp"
#include "isa/ptx.hpp"
#include "prof/pmu.hpp"
#include "sim/accounting.hpp"
#include "tensorcore/power.hpp"
#include "tensorcore/timing.hpp"
#include "trace/trace.hpp"

namespace hsim::core {

struct TcBenchResult {
  std::string sass;                // the lowered instruction (Table VI)
  bool on_tensor_cores = true;
  double latency_cycles = 0;       // dependent-issue completion latency
  double tflops_zero = 0;          // zero-initialised operands
  double tflops_rand = 0;          // random operands (may be throttled)
  double power_zero_w = 0;
  double power_rand_w = 0;
  double clock_rand_mhz = 0;       // effective clock under random data
  bool throttled = false;
  sim::CycleSample usage;          // tensor-core pipe accounting
};

struct TcBenchConfig {
  int iterations = 1024;
  // Optional event sink: the dependent-latency chain emits kIssue events
  // plus kStall events splitting waits into scoreboard (operand pending)
  // vs structural (pipe cadence) cycles.
  trace::TraceSink* sink = nullptr;
  // Optional performance-counter block: the throughput pass counts each
  // issue (tensor class), its pipe-occupancy cycles and its MACs-as-flops.
  prof::PmuCounters* pmu = nullptr;
};

Expected<TcBenchResult> bench_tc(const isa::TcInstr& instr,
                                 const arch::DeviceSpec& device,
                                 TcBenchConfig config = {});

}  // namespace hsim::core
