#include "gpu/gpu_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <utility>

#include "common/thread_pool.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/tlb.hpp"
#include "sim/pipeline.hpp"

namespace hsim::gpu {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Same calibration as MemorySystem: solve for the per-sector command
// overhead that lands streaming efficiency at the device's measured
// fraction of pin bandwidth.  Scale-invariant, so it holds per slice.
double overhead_for_efficiency(double efficiency, double pin_bytes_per_clk,
                               int sector_bytes) {
  HSIM_ASSERT(efficiency > 0.0 && efficiency <= 1.0);
  const double per_sector_ideal =
      static_cast<double>(sector_bytes) / pin_bytes_per_clk;
  return per_sector_ideal * (1.0 / efficiency - 1.0);
}

/// Collects events during the parallel phase; merged (stable-sorted by
/// cycle) into the user's sink once the run completes.
class BufferSink final : public trace::TraceSink {
 public:
  void on_event(const trace::Event& event) override { events_.push_back(event); }
  [[nodiscard]] std::vector<trace::Event>& events() noexcept { return events_; }

 private:
  std::vector<trace::Event> events_;
};

/// One deferred request against the shared L2/DRAM fabric, recorded during
/// the parallel phase and resolved serially at the epoch barrier in
/// (issue_time, sm, seq) order.
struct Ticket {
  enum class Kind : std::uint8_t { kLatency, kThroughput };
  // A throughput ticket covers at most one 128-byte line (possibly
  // unaligned by up to a sector), so its L1-missing sectors fit inline —
  // keeping the per-epoch ticket buffers free of per-ticket heap blocks.
  static constexpr std::size_t kMaxMissSectors = 8;
  Kind kind = Kind::kLatency;
  double issue_time = 0;
  std::uint64_t seq = 0;  // per-SM issue order (ties within one cycle)
  int sm = 0;
  std::uint64_t addr = 0;
  std::uint32_t bytes = 0;
  int access_bytes = 4;
  double l1_done = 0;    // throughput path: local L1-port completion
  double tlb_extra = 0;  // latency path: TLB walk penalty already known
  bool tlb_miss = false;
  std::uint32_t miss_count = 0;  // sectors that missed the L1
  std::array<std::uint64_t, kMaxMissSectors> miss_sectors{};
  mem::DeferredFixup fixup;
  bool has_fixup = false;
};

/// Per-SM memory path: the SM-private half of the hierarchy (L1 cache, L1
/// port, TLB) is resolved in place during the parallel phase; anything that
/// needs the shared L2/DRAM becomes a Ticket.  Mirrors MemorySystem's
/// formulas exactly so a single-SM full-chip run matches the analytic
/// model's representative SM.
class SmPath final : public mem::MemPath {
 public:
  SmPath(const arch::DeviceSpec& device, int sm_id, trace::TraceSink* sink,
         prof::PmuCounters* pmu)
      : device_(device),
        sm_id_(sm_id),
        trace_(sink),
        pmu_(pmu),
        l1_(mem::CacheConfig{.size_bytes = device.memory.l1_bytes_per_sm,
                             .line_bytes = device.memory.l1_line_bytes,
                             .sector_bytes = device.memory.sector_bytes,
                             .ways = device.memory.l1_ways}),
        tlb_(/*entries=*/128, /*page_bytes=*/2ull << 20) {}

  mem::LoadResult load(int sm, std::uint64_t addr, mem::MemSpace space,
                       double now) override {
    (void)sm;
    const auto& m = device_.memory;
    mem::LoadResult out;
    pending_ = false;
    if (space == mem::MemSpace::kShared) {
      out.ready_time = now + m.smem_latency;
      out.served_by = mem::MemLevel::kShared;
    } else {
      out.tlb_miss = !tlb_.access(addr);
      if (pmu_ != nullptr) {
        pmu_->inc(prof::Counter::kTlbAccesses);
        if (out.tlb_miss) pmu_->inc(prof::Counter::kTlbMisses);
      }
      const double tlb_extra = out.tlb_miss ? m.tlb_miss_penalty : 0.0;
      bool l1_hit = false;
      if (space == mem::MemSpace::kGlobalCa) {
        l1_hit = l1_.access(addr) == mem::CacheOutcome::kHit;
        if (pmu_ != nullptr) {
          pmu_->inc(prof::Counter::kL1SectorAccesses);
          pmu_->inc(l1_hit ? prof::Counter::kL1SectorHits
                           : prof::Counter::kL1SectorMisses);
        }
      }
      if (l1_hit) {
        out.ready_time = now + m.l1_hit_latency + tlb_extra;
        out.served_by = mem::MemLevel::kL1;
      } else {
        // L2 vs DRAM is decided at the barrier against the shared slices.
        pending_ = true;
        out.ready_time = kInf;
        out.served_by = mem::MemLevel::kL2;  // provisional
        Ticket ticket;
        ticket.kind = Ticket::Kind::kLatency;
        ticket.issue_time = now;
        ticket.seq = seq_++;
        ticket.sm = sm_id_;
        ticket.addr = addr;
        ticket.tlb_extra = tlb_extra;
        ticket.tlb_miss = out.tlb_miss;
        tickets_.push_back(std::move(ticket));
      }
    }
    last_ = mem::AccessClass{out.served_by, out.tlb_miss};
    if (trace_ != nullptr && !pending_) {
      trace_->on_event({trace::EventKind::kExecute, stall_reason_of(last_), now,
                        out.ready_time - now, sm_id_, -1, -1,
                        to_string(out.served_by)});
    }
    return out;
  }

  double warp_transaction(int sm, std::uint64_t addr, std::uint32_t bytes,
                          int access_bytes, mem::MemSpace space,
                          double now) override {
    (void)sm;
    const auto& m = device_.memory;
    pending_ = false;
    if (space == mem::MemSpace::kShared) {
      const double duration =
          static_cast<double>(bytes) / m.smem_bytes_per_clk;
      const double done =
          l1_port_.issue(now, duration, duration + m.smem_latency);
      if (pmu_ != nullptr) pmu_->inc(prof::Counter::kSmemAccesses);
      last_ = mem::AccessClass{mem::MemLevel::kShared, false};
      if (trace_ != nullptr) {
        trace_->on_event({trace::EventKind::kExecute, stall_reason_of(last_),
                          now, done - now, sm_id_, -1, -1,
                          to_string(mem::MemLevel::kShared)});
      }
      return done;
    }

    const auto sector = static_cast<std::uint32_t>(m.sector_bytes);
    std::array<std::uint64_t, Ticket::kMaxMissSectors> missing{};
    std::uint32_t miss_count = 0;
    for (std::uint64_t a = addr / sector * sector; a < addr + bytes;
         a += sector) {
      bool l1_hit = false;
      if (space == mem::MemSpace::kGlobalCa) {
        l1_hit = l1_.access(a) == mem::CacheOutcome::kHit;
        if (pmu_ != nullptr) {
          pmu_->inc(prof::Counter::kL1SectorAccesses);
          pmu_->inc(l1_hit ? prof::Counter::kL1SectorHits
                           : prof::Counter::kL1SectorMisses);
        }
      }
      if (!l1_hit) {
        HSIM_ASSERT_MSG(miss_count < Ticket::kMaxMissSectors,
                        "warp transaction spans >%zu sectors (bytes=%u)",
                        Ticket::kMaxMissSectors, bytes);
        missing[miss_count++] = a;
      }
    }

    const double l1_duration =
        static_cast<double>(bytes) / l1_width(access_bytes);
    const double done =
        l1_port_.issue(now, l1_duration, l1_duration + m.l1_hit_latency);
    if (miss_count == 0) {
      last_ = mem::AccessClass{mem::MemLevel::kL1, false};
      if (trace_ != nullptr) {
        trace_->on_event({trace::EventKind::kExecute, stall_reason_of(last_),
                          now, done - now, sm_id_, -1, -1,
                          to_string(mem::MemLevel::kL1)});
      }
      return done;
    }

    pending_ = true;
    last_ = mem::AccessClass{mem::MemLevel::kL2, false};  // provisional
    Ticket& ticket = tickets_.emplace_back();
    ticket.kind = Ticket::Kind::kThroughput;
    ticket.issue_time = now;
    ticket.seq = seq_++;
    ticket.sm = sm_id_;
    ticket.addr = addr;
    ticket.bytes = bytes;
    ticket.access_bytes = access_bytes;
    ticket.l1_done = done;
    ticket.miss_count = miss_count;
    ticket.miss_sectors = missing;
    return kInf;
  }

  [[nodiscard]] const mem::AccessClass& last_access() const noexcept override {
    return last_;
  }
  [[nodiscard]] bool last_pending() const noexcept override { return pending_; }

  int attach_fixup(const mem::DeferredFixup& fixup) override {
    int covered = 0;
    for (std::size_t i = first_unattached_; i < tickets_.size(); ++i) {
      tickets_[i].fixup = fixup;
      tickets_[i].has_fixup = true;
      ++covered;
    }
    first_unattached_ = tickets_.size();
    return covered;
  }

  /// The epoch's tickets (engine side, at the barrier).  The engine reads
  /// them in place and calls clear_tickets() once resolved, so the buffer's
  /// capacity is reused epoch over epoch.
  [[nodiscard]] std::span<const Ticket> epoch_tickets() const {
    HSIM_ASSERT_MSG(first_unattached_ == tickets_.size(),
                    "sm %d: %zu tickets left unattached at the barrier",
                    sm_id_, tickets_.size() - first_unattached_);
    return tickets_;
  }

  void clear_tickets() {
    tickets_.clear();
    first_unattached_ = 0;
  }

  void warm(std::uint64_t base, std::uint64_t size, mem::MemSpace space) {
    const auto sector = static_cast<std::uint64_t>(device_.memory.sector_bytes);
    for (std::uint64_t a = base / sector * sector; a < base + size;
         a += sector) {
      if (space == mem::MemSpace::kGlobalCa) l1_.access(a);
      if (space != mem::MemSpace::kShared) tlb_.access(a);
    }
  }

  [[nodiscard]] const sim::PipelinedUnit& l1_port() const noexcept {
    return l1_port_;
  }

 private:
  [[nodiscard]] double l1_width(int access_bytes) const {
    const auto& m = device_.memory;
    if (access_bytes >= 16) return m.l1_bytes_per_clk_vec;
    if (access_bytes >= 8) return m.l1_bytes_per_clk_wide;
    return m.l1_bytes_per_clk_scalar;
  }

  const arch::DeviceSpec& device_;
  int sm_id_;
  trace::TraceSink* trace_;
  prof::PmuCounters* pmu_;
  mem::Cache l1_;
  sim::PipelinedUnit l1_port_;  // unified L1/smem port, as in MemorySystem
  mem::Tlb tlb_;
  mem::AccessClass last_;
  bool pending_ = false;
  std::uint64_t seq_ = 0;
  std::vector<Ticket> tickets_;
  std::size_t first_unattached_ = 0;
};

/// Address-interleaved L2 + DRAM slices.  Each slice owns an equal share of
/// L2 capacity, L2 port width and DRAM pin bandwidth; a line maps to slice
/// (line_addr % n).  Only the engine's serial barrier phase touches this,
/// so no locking is needed and resolution order fully determines state.
class SliceFabric {
 public:
  SliceFabric(const arch::DeviceSpec& device, int slices)
      : device_(device), slices_count_(slices) {
    const auto& m = device.memory;
    slices_.reserve(static_cast<std::size_t>(slices));
    const double slice_gbps = m.dram_peak_gbps / slices;
    mem::DramConfig dcfg;
    dcfg.peak_gbps = slice_gbps;
    dcfg.core_clock_hz = device.clock_hz();
    dcfg.latency_cycles = m.dram_latency;
    dcfg.sector_bytes = m.sector_bytes;
    const double slice_pin = slice_gbps * 1e9 / device.clock_hz();
    dcfg.sector_overhead_cycles =
        overhead_for_efficiency(m.dram_efficiency, slice_pin, m.sector_bytes);
    for (int i = 0; i < slices; ++i) {
      slices_.push_back(std::make_unique<Slice>(
          mem::CacheConfig{.size_bytes = m.l2_bytes / slices,
                           .line_bytes = m.l1_line_bytes,
                           .sector_bytes = m.sector_bytes,
                           .ways = m.l2_ways},
          dcfg));
    }
  }

  struct Resolution {
    double completion = 0;
    mem::MemLevel deepest = mem::MemLevel::kL2;
  };

  /// Enable fabric-level counting: one private PmuCounters block per slice,
  /// incremented by resolve() for tickets of that slice only — so sharded
  /// (concurrent) and serial resolution count into the same blocks without
  /// locks.  merge_pmu_into() folds them in slice-index order; every
  /// increment is +1.0 on an exact integer, so the merged totals are
  /// bit-identical to the single-block serial accumulation.
  void enable_pmu() { pmu_blocks_.assign(slices_.size(), prof::PmuCounters{}); }
  void merge_pmu_into(prof::PmuCounters& target) const {
    for (const prof::PmuCounters& block : pmu_blocks_) target.merge(block);
  }

  /// Which slice an address interleaves to — the shard key for the
  /// barrier's parallel resolution.
  [[nodiscard]] int slice_index(std::uint64_t addr) const {
    const auto line =
        addr / static_cast<std::uint64_t>(device_.memory.l1_line_bytes);
    return static_cast<int>(line %
                            static_cast<std::uint64_t>(slices_.size()));
  }

  /// Resolve one ticket against its slice (`slice` = slice_index(addr),
  /// precomputed by the shard partition).  Touches only that slice's state
  /// and counter block, so distinct slices may resolve concurrently.
  /// Mirrors MemorySystem's load / warp_transaction tail with the slice's
  /// share of width and bandwidth.
  Resolution resolve(const Ticket& ticket, int slice) {
    const auto& m = device_.memory;
    Slice& s = *slices_[static_cast<std::size_t>(slice)];
    prof::PmuCounters* pmu =
        pmu_blocks_.empty() ? nullptr
                            : &pmu_blocks_[static_cast<std::size_t>(slice)];
    if (ticket.kind == Ticket::Kind::kLatency) {
      const bool hit =
          s.l2.access(slice_local(ticket.addr)) == mem::CacheOutcome::kHit;
      if (pmu != nullptr) {
        pmu->inc(prof::Counter::kL2SectorAccesses);
        pmu->inc(hit ? prof::Counter::kL2SectorHits
                      : prof::Counter::kL2SectorMisses);
        if (!hit) pmu->inc(prof::Counter::kDramSectors);
      }
      const double latency = hit ? m.l2_hit_latency : m.dram_latency;
      return {ticket.issue_time + latency + ticket.tlb_extra,
              hit ? mem::MemLevel::kL2 : mem::MemLevel::kDram};
    }
    bool any_dram = false;
    for (std::uint32_t i = 0; i < ticket.miss_count; ++i) {
      const bool hit = s.l2.access(slice_local(ticket.miss_sectors[i])) ==
                       mem::CacheOutcome::kHit;
      if (pmu != nullptr) {
        pmu->inc(prof::Counter::kL2SectorAccesses);
        pmu->inc(hit ? prof::Counter::kL2SectorHits
                      : prof::Counter::kL2SectorMisses);
        if (!hit) pmu->inc(prof::Counter::kDramSectors);
      }
      if (!hit) any_dram = true;
    }
    const double l2_duration = static_cast<double>(ticket.bytes) /
                               (l2_width(ticket.access_bytes) / slices_count_);
    const double l2_done = s.port.issue(ticket.issue_time, l2_duration,
                                        l2_duration + m.l2_hit_latency);
    double done = std::max(ticket.l1_done - m.l1_hit_latency, l2_done);
    if (any_dram) {
      done = std::max(done, s.dram.request(ticket.issue_time, ticket.bytes));
    }
    return {done, any_dram ? mem::MemLevel::kDram : mem::MemLevel::kL2};
  }

  void warm(std::uint64_t base, std::uint64_t size) {
    const auto sector = static_cast<std::uint64_t>(device_.memory.sector_bytes);
    for (std::uint64_t a = base / sector * sector; a < base + size;
         a += sector) {
      slice_of(a).l2.access(slice_local(a));
    }
  }

  /// "L2.port" / "DRAM.channel" samples: busy averaged over slices so
  /// occupancy stays in [0, 1], ops summed (MemorySystem's convention for
  /// multi-instance units).
  [[nodiscard]] std::vector<sim::UnitSample> unit_usage() const {
    sim::UnitSample l2{"L2.port", 0.0, 0};
    sim::UnitSample dram{"DRAM.channel", 0.0, 0};
    for (const auto& s : slices_) {
      l2.busy_cycles += s->port.busy_cycles();
      l2.ops += s->port.ops();
      dram.busy_cycles += s->dram.channel_busy_cycles();
      dram.ops += s->dram.channel_sectors();
    }
    const auto n = static_cast<double>(slices_.size());
    l2.busy_cycles /= n;
    dram.busy_cycles /= n;
    return {std::move(l2), std::move(dram)};
  }

 private:
  struct Slice {
    Slice(const mem::CacheConfig& l2cfg, const mem::DramConfig& dcfg)
        : l2(l2cfg), dram(dcfg) {}
    mem::Cache l2;
    sim::PipelinedUnit port;
    mem::Dram dram;
  };

  [[nodiscard]] Slice& slice_of(std::uint64_t addr) {
    const auto line =
        addr / static_cast<std::uint64_t>(device_.memory.l1_line_bytes);
    return *slices_[static_cast<std::size_t>(
        line % static_cast<std::uint64_t>(slices_.size()))];
  }

  /// Address as seen by a slice's cache: the interleave picks the slice
  /// from the low line bits, so those bits must be compacted out before
  /// set indexing — otherwise every slice aliases into 1/n of its sets
  /// and the effective L2 capacity collapses by the slice count.
  [[nodiscard]] std::uint64_t slice_local(std::uint64_t addr) const {
    const auto line_bytes =
        static_cast<std::uint64_t>(device_.memory.l1_line_bytes);
    const std::uint64_t line = addr / line_bytes;
    return (line / static_cast<std::uint64_t>(slices_count_)) * line_bytes +
           addr % line_bytes;
  }
  [[nodiscard]] double l2_width(int access_bytes) const {
    const auto& m = device_.memory;
    if (access_bytes >= 16) return m.l2_bytes_per_clk_vec;
    if (access_bytes >= 8) return m.l2_bytes_per_clk_wide;
    return m.l2_bytes_per_clk_scalar;
  }

  const arch::DeviceSpec& device_;
  int slices_count_;
  std::vector<prof::PmuCounters> pmu_blocks_;  // per slice; empty = disabled
  std::vector<std::unique_ptr<Slice>> slices_;
};

/// Fold one resolved completion back into the issuing core's scoreboard —
/// the DeferredFixup contract from memory_system.hpp.
void apply_fixup(const Ticket& ticket, const SliceFabric::Resolution& res) {
  if (!ticket.has_fixup) return;
  const mem::DeferredFixup& f = ticket.fixup;
  if (f.time_slot != nullptr) {
    const double value = res.completion + f.offset;
    *f.time_slot = std::isfinite(*f.time_slot)
                       ? std::max({*f.time_slot, value, f.floor})
                       : std::max(value, f.floor);
  }
  if (f.reason_slot != nullptr) {
    const auto resolved =
        stall_reason_of(mem::AccessClass{res.deepest, ticket.tlb_miss});
    if (static_cast<int>(resolved) > static_cast<int>(*f.reason_slot)) {
      *f.reason_slot = resolved;
    }
  }
  if (f.drain_slot != nullptr) {
    *f.drain_slot = std::max(*f.drain_slot, res.completion);
  }
  if (f.outstanding != nullptr) --*f.outstanding;
}

}  // namespace

GpuEngine::GpuEngine(const arch::DeviceSpec& device, ChipOptions options)
    : device_(device), options_(std::move(options)) {}

Expected<ChipResult> GpuEngine::run(const isa::Program& program,
                                    const sm::LaunchConfig& config,
                                    std::span<std::uint64_t> global,
                                    std::span<const WarmRange> warm) const {
  auto occ = sm::compute_occupancy(device_, config);
  if (!occ) return occ.error();
  if (config.total_blocks < 1) {
    return invalid_argument("total_blocks must be >= 1");
  }
  if (options_.epoch < 1.0) return invalid_argument("epoch must be >= 1 cycle");
  if (options_.l2_slices < 1) return invalid_argument("l2_slices must be >= 1");

  const int sms = device_.sm_count;
  int slots = occ.value().blocks_per_sm;
  if (options_.max_blocks_per_sm > 0) {
    slots = std::min(slots, options_.max_blocks_per_sm);
  }
  const int total = config.total_blocks;
  // Correctness bound, not a tunable: a deferred access must never be able
  // to complete before the barrier that resolves it (see header).
  const double epoch = std::min(options_.epoch, device_.memory.l2_hit_latency);

  // Per-SM state.  Trace buffers exist only when a sink is attached; PMU
  // blocks likewise — each SM counts into a private block during the
  // parallel phase, the fabric counts into its own block during the serial
  // barrier phase, and everything is merged in SM-index order at the end.
  const bool tracing = options_.trace != nullptr;
  const bool counting = options_.pmu != nullptr;
  std::vector<BufferSink> buffers(tracing ? static_cast<std::size_t>(sms) : 0);
  std::vector<prof::PmuCounters> pmu_blocks(
      counting ? static_cast<std::size_t>(sms) : 0);
  std::vector<std::unique_ptr<SmPath>> paths;
  std::vector<std::unique_ptr<sm::SmCore>> cores;
  paths.reserve(static_cast<std::size_t>(sms));
  cores.reserve(static_cast<std::size_t>(sms));
  SliceFabric fabric(device_, options_.l2_slices);
  if (counting) fabric.enable_pmu();
  for (int i = 0; i < sms; ++i) {
    trace::TraceSink* sink = tracing ? &buffers[static_cast<std::size_t>(i)]
                                     : nullptr;
    prof::PmuCounters* block =
        counting ? &pmu_blocks[static_cast<std::size_t>(i)] : nullptr;
    paths.push_back(std::make_unique<SmPath>(device_, i, sink, block));
    cores.push_back(
        std::make_unique<sm::SmCore>(device_, paths.back().get(), i));
    cores.back()->bind_global(global);
    if (sink != nullptr) cores.back()->set_trace(sink);
    if (block != nullptr) cores.back()->set_pmu(block);
    cores.back()->begin(program, slots, config.threads_per_block);
  }
  for (const WarmRange& range : warm) {
    for (auto& path : paths) path->warm(range.base, range.size, range.space);
    if (range.space != mem::MemSpace::kShared) {
      fabric.warm(range.base, range.size);
    }
  }

  // Which block occupies each (sm, slot); -1 = empty / already observed.
  std::vector<std::vector<int>> slot_block(
      static_cast<std::size_t>(sms),
      std::vector<int>(static_cast<std::size_t>(slots), -1));

  // Initial fill, breadth-first: block b lands on SM (b % sms), matching
  // the round-robin distribution the representative model assumes — a
  // homogeneous grid therefore reproduces its wave shape emergently.
  int next_block = 0;
  for (int s = 0; s < slots && next_block < total; ++s) {
    for (int smid = 0; smid < sms && next_block < total; ++smid) {
      slot_block[static_cast<std::size_t>(smid)][static_cast<std::size_t>(s)] =
          next_block;
      cores[static_cast<std::size_t>(smid)]->launch_block(s, next_block++, 0.0);
    }
  }

  ThreadPool* pool = nullptr;
  std::unique_ptr<ThreadPool> own_pool;
  if (options_.threads == 0) {
    pool = &global_pool();
  } else if (options_.threads > 1) {
    own_pool = std::make_unique<ThreadPool>(
        static_cast<std::size_t>(options_.threads));
    pool = own_pool.get();
  }

  struct Freed {
    double retire = 0;
    int sm = 0;
    int slot = 0;
  };
  // Barrier scratch, hoisted so the steady state reuses capacity instead of
  // reallocating per epoch.
  std::vector<const Ticket*> ticket_order;
  std::vector<std::uint32_t> bucket_pos;
  const int buckets = static_cast<int>(std::ceil(epoch)) + 1;
  std::vector<Freed> freed;
  // Shard scratch: per-slice views of the ordered ticket stream (indices
  // into ticket_order) and each ticket's resolution, written by its slice's
  // task and consumed by the ordered fixup/trace pass.
  const auto slices = static_cast<std::size_t>(options_.l2_slices);
  std::vector<std::vector<std::uint32_t>> slice_tickets(
      options_.serial_fabric ? 0 : slices);
  std::vector<SliceFabric::Resolution> resolutions;
  // Below this many tickets an epoch's resolution is cheaper than the
  // parallel_for dispatch itself; the shard partition is identical either
  // way, so the cutover cannot change results.
  constexpr std::size_t kParallelFabricMinTickets = 96;
  double now = 0;
  int epochs = 0;
  for (;;) {
    bool any_work = next_block < total;
    for (std::size_t i = 0; !any_work && i < cores.size(); ++i) {
      any_work = cores[i]->live_warps() > 0;
    }
    if (!any_work) break;
    now += epoch;
    ++epochs;
    HSIM_ASSERT_MSG(now < 5e9, "full-chip run exceeded 5e9 cycles (epoch %d)",
                    epochs);

    // Parallel phase: each SM advances through [now-epoch, now) touching
    // only its own state.  Any schedule yields identical per-SM results.
    if (pool == nullptr) {
      for (auto& core : cores) core->advance(now);
    } else {
      pool->parallel_for(0, cores.size(),
                         [&](std::size_t i) { cores[i]->advance(now); });
    }

    // Barrier: resolve this epoch's shared-fabric traffic serially in
    // (issue_time, sm, seq) order — the arbitration order hardware would
    // see, independent of host threading.
    //
    // Fast path: issue times within an epoch window land on the window
    // base + a whole number of cycles whenever block launch times do
    // (always true for integral epochs, the common case), so a counting
    // sort over per-cycle buckets replaces the comparison sort.  Visiting
    // paths in SM order with per-path seq order makes the within-bucket
    // order exactly the (sm, seq) tie-break.  Any ticket off the integer
    // grid falls back to the comparison sort — provably the same order.
    ticket_order.clear();
    const double window_base = now - epoch;
    bool bucketable = !options_.sorted_tickets;
    std::size_t total_tickets = 0;
    bucket_pos.assign(static_cast<std::size_t>(buckets), 0);
    for (auto& path : paths) {
      for (const Ticket& ticket : path->epoch_tickets()) {
        ++total_tickets;
        if (!bucketable) continue;
        const double off = ticket.issue_time - window_base;
        const int k = static_cast<int>(off);
        if (k < 0 || k >= buckets || static_cast<double>(k) != off) {
          bucketable = false;
        } else {
          ++bucket_pos[static_cast<std::size_t>(k)];
        }
      }
    }
    if (total_tickets > 0) {
      ticket_order.resize(total_tickets);
      if (bucketable) {
        std::uint32_t running = 0;
        for (auto& count : bucket_pos) {
          const std::uint32_t start = running;
          running += count;
          count = start;  // now the bucket's next write position
        }
        for (auto& path : paths) {
          for (const Ticket& ticket : path->epoch_tickets()) {
            const auto k = static_cast<std::size_t>(
                static_cast<int>(ticket.issue_time - window_base));
            ticket_order[bucket_pos[k]++] = &ticket;
          }
        }
      } else {
        std::size_t i = 0;
        for (auto& path : paths) {
          for (const Ticket& ticket : path->epoch_tickets()) {
            ticket_order[i++] = &ticket;
          }
        }
        std::sort(ticket_order.begin(), ticket_order.end(),
                  [](const Ticket* a, const Ticket* b) {
                    if (a->issue_time != b->issue_time) {
                      return a->issue_time < b->issue_time;
                    }
                    if (a->sm != b->sm) return a->sm < b->sm;
                    return a->seq < b->seq;
                  });
      }
    }
    if (options_.serial_fabric) {
      // Reference twin: resolve + fixup + trace one ticket at a time in
      // global order on the barrier thread, exactly as PR 4 shipped it.
      for (const Ticket* ticket : ticket_order) {
        const SliceFabric::Resolution res =
            fabric.resolve(*ticket, fabric.slice_index(ticket->addr));
        apply_fixup(*ticket, res);
        if (tracing) {
          buffers[static_cast<std::size_t>(ticket->sm)].on_event(
              {trace::EventKind::kExecute,
               stall_reason_of(mem::AccessClass{res.deepest, ticket->tlb_miss}),
               ticket->issue_time, res.completion - ticket->issue_time,
               ticket->sm, -1, -1, to_string(res.deepest)});
        }
      }
    } else if (!ticket_order.empty()) {
      // Sharded resolution.  A ticket's slice is a pure function of its
      // address, each slice's state (L2 tags, port, DRAM channel, PMU
      // block) is touched only by that slice's tickets, and the per-slice
      // streams below preserve the global (issue_time, sm, seq) order —
      // so resolving the slices concurrently computes exactly the
      // completions the serial reference would, regardless of schedule.
      for (auto& list : slice_tickets) list.clear();
      for (std::size_t i = 0; i < ticket_order.size(); ++i) {
        slice_tickets[static_cast<std::size_t>(
                          fabric.slice_index(ticket_order[i]->addr))]
            .push_back(static_cast<std::uint32_t>(i));
      }
      resolutions.resize(ticket_order.size());
      const auto resolve_slice = [&](std::size_t s) {
        for (const std::uint32_t i : slice_tickets[s]) {
          resolutions[i] =
              fabric.resolve(*ticket_order[i], static_cast<int>(s));
        }
      };
      if (pool != nullptr && ticket_order.size() >= kParallelFabricMinTickets) {
        pool->parallel_for(0, slices, resolve_slice);
      } else {
        for (std::size_t s = 0; s < slices; ++s) resolve_slice(s);
      }
      // Scoreboard fixups and trace events are side effects on SM-shared
      // state, so they are applied after the barrier in the same global
      // ticket order the serial reference uses — bit-identical buffers.
      for (std::size_t i = 0; i < ticket_order.size(); ++i) {
        const Ticket* ticket = ticket_order[i];
        const SliceFabric::Resolution& res = resolutions[i];
        apply_fixup(*ticket, res);
        if (tracing) {
          buffers[static_cast<std::size_t>(ticket->sm)].on_event(
              {trace::EventKind::kExecute,
               stall_reason_of(mem::AccessClass{res.deepest, ticket->tlb_miss}),
               ticket->issue_time, res.completion - ticket->issue_time,
               ticket->sm, -1, -1, to_string(res.deepest)});
        }
      }
    }
    for (auto& path : paths) path->clear_tickets();
    for (auto& core : cores) core->resolve_async_waits();

    // Retired blocks: report to the observer, then hand the freed slots to
    // the dispatcher in the order the blocks actually drained.
    freed.clear();
    for (int smid = 0; smid < sms; ++smid) {
      auto& core = *cores[static_cast<std::size_t>(smid)];
      for (int s = 0; s < slots; ++s) {
        int& occupant =
            slot_block[static_cast<std::size_t>(smid)][static_cast<std::size_t>(s)];
        if (occupant < 0) continue;
        const double retired = core.block_retire_time(s);
        if (retired < 0) continue;
        if (options_.block_observer) {
          options_.block_observer(smid, s, occupant, core);
        }
        occupant = -1;
        freed.push_back(Freed{retired, smid, s});
      }
    }
    if (next_block < total && !freed.empty()) {
      std::sort(freed.begin(), freed.end(),
                [](const Freed& a, const Freed& b) {
                  if (a.retire != b.retire) return a.retire < b.retire;
                  if (a.sm != b.sm) return a.sm < b.sm;
                  return a.slot < b.slot;
                });
      for (const Freed& f : freed) {
        if (next_block >= total) break;
        slot_block[static_cast<std::size_t>(f.sm)]
                  [static_cast<std::size_t>(f.slot)] = next_block;
        cores[static_cast<std::size_t>(f.sm)]->launch_block(f.slot,
                                                            next_block++, now);
      }
    }
  }

  ChipResult out;
  out.sms = sms;
  out.block_slots = slots;
  out.waves = static_cast<double>(total) /
              (static_cast<double>(slots) * static_cast<double>(sms));
  out.epochs = epochs;
  out.per_sm.reserve(static_cast<std::size_t>(sms));
  for (auto& core : cores) {
    const sm::RunResult r = core->finalize();
    out.cycles = std::max(out.cycles, r.cycles);
    out.instructions_issued += r.instructions_issued;
    out.stall_cycles += r.stall_cycles;
    out.mem_transactions += r.mem_transactions;
    out.warps_retired += r.warps_retired;
    out.per_sm.push_back(r);
  }
  out.seconds = out.cycles / device_.clock_hz();
  if (counting) {
    // SM blocks in index order, then the fabric's per-slice blocks in
    // slice-index order: a fixed merge order so the accumulated doubles
    // are bit-identical at any thread count (and, the counts being exact
    // integers, bit-identical to the serial resolver's accumulation).
    for (const prof::PmuCounters& block : pmu_blocks) {
      options_.pmu->merge(block);
    }
    fabric.merge_pmu_into(*options_.pmu);
  }

  // Unit occupancy: SM pipes and L1 ports averaged over the SMs that carry
  // them (instances), fabric units averaged over slices; ops summed.
  {
    std::vector<sim::UnitSample> acc;
    std::map<std::string, std::size_t> index;
    auto fold = [&](const sim::UnitSample& s, double weight) {
      auto [it, inserted] = index.try_emplace(s.name, acc.size());
      if (inserted) acc.push_back(sim::UnitSample{s.name, 0.0, 0});
      acc[it->second].busy_cycles += s.busy_cycles * weight;
      acc[it->second].ops += s.ops;
    };
    for (const auto& core : cores) {
      for (const auto& s : core->unit_usage()) {
        fold(s, 1.0 / static_cast<double>(sms));
      }
    }
    for (const auto& path : paths) {
      fold(sim::UnitSample{"L1.port", path->l1_port().busy_cycles(),
                           path->l1_port().ops()},
           1.0 / static_cast<double>(sms));
    }
    for (const auto& s : fabric.unit_usage()) fold(s, 1.0);  // pre-averaged
    out.unit_usage = std::move(acc);
  }

  if (tracing) {
    std::size_t count = 0;
    for (auto& b : buffers) count += b.events().size();
    std::vector<trace::Event> merged;
    merged.reserve(count);
    for (auto& b : buffers) {
      merged.insert(merged.end(), b.events().begin(), b.events().end());
    }
    std::stable_sort(merged.begin(), merged.end(),
                     [](const trace::Event& a, const trace::Event& b) {
                       return a.cycle < b.cycle;
                     });
    for (const trace::Event& e : merged) options_.trace->on_event(e);
  }
  return out;
}

Expected<sm::LaunchResult> launch(const arch::DeviceSpec& device,
                                  const isa::Program& program,
                                  const sm::LaunchConfig& config,
                                  sm::LaunchMode mode,
                                  const ChipOptions& options) {
  if (mode == sm::LaunchMode::kRepresentative) {
    return sm::launch(device, program, config);
  }
  auto occ = sm::compute_occupancy(device, config);
  if (!occ) return occ.error();
  GpuEngine engine(device, options);
  auto chip = engine.run(program, config);
  if (!chip) return chip.error();
  const ChipResult& c = chip.value();
  sm::LaunchResult out;
  out.cycles = c.cycles;
  out.seconds = c.seconds;
  out.waves = static_cast<int>(std::ceil(c.waves));
  out.occupancy = occ.value();
  // Representative = the SM that paced the chip.
  for (const sm::RunResult& r : c.per_sm) {
    if (r.cycles >= out.representative.cycles) out.representative = r;
  }
  return out;
}

}  // namespace hsim::gpu
