// Tensor Memory Accelerator (TMA) — Hopper's bulk asynchronous copy engine
// (the paper §III-D: "the Hopper architecture enhances this with a more
// advanced Tensor Memory Accelerator for sophisticated asynchronous
// copying").
//
// A TMA descriptor names an up-to-5D tensor in global memory and a box
// (tile) shape; a single instruction then moves a whole box to shared
// memory, with the engine handling address generation and edge clamping —
// versus cp.async, where every thread issues its own element copy.  The
// model captures both halves:
//   * functional: tile -> list of contiguous row segments, with
//     out-of-bounds clamping at tensor edges;
//   * timing: one issue slot per box (not per element), data moved at the
//     memory system's bandwidth.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "arch/device.hpp"
#include "common/status.hpp"

namespace hsim::async {

inline constexpr int kTmaMaxRank = 5;
inline constexpr std::uint32_t kTmaMaxBoxDim = 256;
inline constexpr std::uint64_t kTmaMaxBoxBytes = 1u << 17;  // 128 KiB

/// A bulk-copy descriptor (cuTensorMapEncodeTiled analogue).
struct TmaDescriptor {
  std::uint64_t base_addr = 0;
  int rank = 2;
  int element_bytes = 2;
  std::array<std::uint64_t, kTmaMaxRank> tensor_dims{};  // elements per dim
  std::array<std::uint32_t, kTmaMaxRank> box_dims{};     // tile elements
};

/// Validate a descriptor against the device (Hopper only) and the CUDA
/// constraints (rank, box dims, box footprint vs shared memory).
Expected<TmaDescriptor> make_descriptor(const arch::DeviceSpec& device,
                                        TmaDescriptor desc);

/// One contiguous piece of a tile in global memory.
struct Segment {
  std::uint64_t addr = 0;
  std::uint64_t bytes = 0;

  friend bool operator==(const Segment&, const Segment&) = default;
};

struct TileCopy {
  std::vector<Segment> segments;  // innermost-dim rows, edge-clamped
  std::uint64_t bytes = 0;        // total payload actually copied
  std::uint64_t box_bytes = 0;    // full box footprint in shared memory
};

/// Address generation for the box whose origin (in elements) is `origin`.
/// Rows that extend past a tensor edge are clamped (the OOB remainder is
/// zero-filled in shared memory, costing no global traffic), exactly TMA's
/// boundary behaviour.
Expected<TileCopy> tile_copy(const TmaDescriptor& desc,
                             std::array<std::int64_t, kTmaMaxRank> origin);

/// Footprint of a full box in bytes (shared-memory reservation).
std::uint64_t box_bytes(const TmaDescriptor& desc);

}  // namespace hsim::async
