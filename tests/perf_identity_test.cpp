// Bit-identity pins for the hot-path engine optimisations.
//
// The fast paths introduced by the pre-decode / zero-alloc / bucket-
// resolution rework all keep a reference twin in-tree:
//   * SmCore::set_cycle_skip(false) forces the original cycle-by-cycle
//     stepping instead of event-driven idle skipping;
//   * gpu::ChipOptions::sorted_tickets forces the original comparison sort
//     for epoch-barrier ticket resolution instead of the counting sort;
//   * gpu::ChipOptions::serial_fabric forces the original one-ticket-at-a-
//     time barrier resolver instead of the sharded per-slice resolver.
// These tests pin the optimised defaults byte-for-byte against those
// reference paths on the paper's kernel shapes (Tables 4/5/7, Fig. 7), a
// 200-case fuzz campaign, and a full-chip grid — plus the zero-allocation
// steady-state contract of the issue loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <vector>

#include "conformance/fuzzer.hpp"
#include "dpx/functions.hpp"
#include "gpu/gpu_engine.hpp"
#include "mem/memory_system.hpp"
#include "sm/sm_core.hpp"
#include "trace/trace.hpp"

// Global allocation counter (same pattern as pipeline_test): the issue
// loop's steady state must allocate nothing, so allocation counts across an
// advance() window must be exactly zero once the launch is warm.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hsim {
namespace {

constexpr int kLanes = 32;
constexpr double kInf = std::numeric_limits<double>::infinity();

class CollectingSink final : public trace::TraceSink {
 public:
  void on_event(const trace::Event& event) override {
    events_.push_back(event);
  }
  [[nodiscard]] const std::vector<trace::Event>& events() const {
    return events_;
  }

 private:
  std::vector<trace::Event> events_;
};

int highest_reg(const isa::Program& program) {
  int max_reg = 0;
  for (const auto& inst : program.body()) {
    max_reg = std::max({max_reg, inst.rd, inst.ra, inst.rb, inst.rc});
  }
  return max_reg;
}

struct Observation {
  sm::RunResult result;
  std::vector<std::uint64_t> regs;  // warp-major, all regs, all lanes
};

void expect_identical(const Observation& a, const Observation& b,
                      const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.result.cycles, b.result.cycles);
  EXPECT_EQ(a.result.instructions_issued, b.result.instructions_issued);
  EXPECT_EQ(a.result.stall_cycles, b.result.stall_cycles);
  EXPECT_EQ(a.result.mem_transactions, b.result.mem_transactions);
  EXPECT_EQ(a.result.warps_retired, b.result.warps_retired);
  EXPECT_EQ(a.regs, b.regs);
}

/// Run `program` on a fresh SmCore (fresh MemorySystem when `with_mem`) and
/// snapshot the RunResult plus every architectural register lane.
Observation observe(const arch::DeviceSpec& device, const isa::Program& program,
                    const sm::BlockShape& shape, bool with_mem, bool skip,
                    trace::TraceSink* sink = nullptr) {
  std::unique_ptr<mem::MemorySystem> mem;
  if (with_mem) mem = std::make_unique<mem::MemorySystem>(device, 1);
  sm::SmCore core(device, mem.get());
  core.set_cycle_skip(skip);
  core.set_trace(sink);
  Observation obs;
  obs.result = core.run(program, shape);
  const int regs = highest_reg(program) + 1;
  for (int w = 0; w < shape.total_warps(); ++w) {
    for (int r = 0; r < regs; ++r) {
      for (int l = 0; l < kLanes; ++l) {
        obs.regs.push_back(core.reg(w, r, l));
      }
    }
  }
  return obs;
}

// --- paper-shaped kernels ---------------------------------------------------

// Table 4 shape: one warp chasing a dependent global-load chain.
isa::Program table4_latency_kernel() {
  isa::Program p;
  p.add({.op = isa::Opcode::kLdgCg, .rd = 1, .ra = 1, .access_bytes = 4});
  p.set_iterations(512);
  return p;
}

// Table 5 shape: streaming loads + stores from many warps.
isa::Program table5_throughput_kernel() {
  isa::Program p;
  p.add({.op = isa::Opcode::kLdgCa, .rd = 2, .ra = 0, .access_bytes = 16});
  p.add({.op = isa::Opcode::kIAdd3, .rd = 3, .ra = 2, .rb = 2});
  p.add({.op = isa::Opcode::kStg, .ra = 0, .rb = 3, .access_bytes = 16});
  p.set_iterations(32);
  return p;
}

// Table 7 shape: back-to-back tensor-core MMA issue.
isa::Program table7_mma_kernel() {
  isa::Program p;
  for (int i = 0; i < 4; ++i) {
    p.add({.op = isa::Opcode::kHMma, .rd = 8 + i, .ra = 1, .rb = 2, .rc = 8 + i});
  }
  p.set_iterations(64);
  return p;
}

// Fig. 7 shape: eight independent hardware-DPX chains per warp.
isa::Program fig7_dpx_kernel(const arch::DeviceSpec& device) {
  isa::Program p;
  for (int c = 0; c < 8; ++c) {
    dpx::append(p, dpx::Func::kViMax3S32, 20 + c, 1, 2, 3,
                device.dpx.hardware, 40 + 8 * c);
  }
  p.set_iterations(64);
  return p;
}

// Barrier-heavy shape: compute phases separated by BAR.SYNC, plus shared
// traffic, so barrier parking/release and the dirty-block path are hit.
isa::Program barrier_kernel() {
  isa::Program p;
  p.add({.op = isa::Opcode::kIAdd3, .rd = 4, .ra = 0, .rb = 0});
  p.add({.op = isa::Opcode::kSts, .ra = 0, .rb = 4, .access_bytes = 4});
  p.add({.op = isa::Opcode::kBarSync});
  p.add({.op = isa::Opcode::kLds, .rd = 5, .ra = 0, .access_bytes = 4});
  p.add({.op = isa::Opcode::kFFma, .rd = 6, .ra = 5, .rb = 5, .rc = 6});
  p.set_iterations(16);
  return p;
}

// cp.async triple: the AsyncSlot arena and group FIFO under commit/wait.
// Addresses are fixed (no R0 dependence) so a relaunched block touches the
// same, already-warm memory structures as the first.
isa::Program async_kernel() {
  isa::Program p;
  p.add({.op = isa::Opcode::kCpAsync, .rd = 2, .access_bytes = 16});
  p.add({.op = isa::Opcode::kCpAsyncCommit});
  p.add({.op = isa::Opcode::kCpAsyncWait, .imm = 0});
  p.add({.op = isa::Opcode::kLds, .rd = 3, .imm = 128, .access_bytes = 4});
  p.set_iterations(8);
  return p;
}

struct NamedKernel {
  const char* name;
  isa::Program program;
  sm::BlockShape shape;
  bool with_mem;
};

std::vector<NamedKernel> paper_kernels(const arch::DeviceSpec& device) {
  std::vector<NamedKernel> kernels;
  kernels.push_back({"table4_latency", table4_latency_kernel(),
                     {.threads_per_block = 32, .blocks = 1}, true});
  kernels.push_back({"table5_throughput", table5_throughput_kernel(),
                     {.threads_per_block = 256, .blocks = 2}, true});
  kernels.push_back({"table7_mma", table7_mma_kernel(),
                     {.threads_per_block = 128, .blocks = 1}, false});
  kernels.push_back({"fig7_dpx", fig7_dpx_kernel(device),
                     {.threads_per_block = 1024, .blocks = 1}, false});
  kernels.push_back({"barrier", barrier_kernel(),
                     {.threads_per_block = 128, .blocks = 2}, true});
  kernels.push_back({"cp_async", async_kernel(),
                     {.threads_per_block = 64, .blocks = 1}, true});
  return kernels;
}

// --- tests ------------------------------------------------------------------

// Event-driven idle skipping must be invisible in every architectural
// output: cycles, counters, and all register lanes, on every paper shape.
TEST(PerfIdentity, CycleSkipMatchesCycleByCycleOnPaperKernels) {
  const auto& device = arch::h800_pcie();
  for (auto& k : paper_kernels(device)) {
    const auto fast = observe(device, k.program, k.shape, k.with_mem, true);
    const auto slow = observe(device, k.program, k.shape, k.with_mem, false);
    expect_identical(fast, slow, k.name);
  }
}

// Attaching a trace sink steps cycle-by-cycle and stages events, but must
// not change the simulation itself; issue events must match the counter.
TEST(PerfIdentity, TracingDoesNotPerturbResults) {
  const auto& device = arch::h800_pcie();
  for (auto& k : paper_kernels(device)) {
    CollectingSink sink;
    const auto plain = observe(device, k.program, k.shape, k.with_mem, true);
    const auto traced =
        observe(device, k.program, k.shape, k.with_mem, true, &sink);
    expect_identical(plain, traced, k.name);
    std::uint64_t issues = 0;
    for (const auto& e : sink.events()) {
      if (e.kind == trace::EventKind::kIssue) ++issues;
    }
    EXPECT_EQ(issues, traced.result.instructions_issued) << k.name;
  }
}

// 200 generated programs (ALU/FP/DPX/tensor/loads/shared/barriers/async),
// each pinned skip-vs-noskip byte-for-byte.
TEST(PerfIdentity, FuzzCampaign200SkipIdentity) {
  const auto& device = arch::h800_pcie();
  conformance::ProgramFuzzer fuzzer;
  const auto global = conformance::make_global_image(0x5eed);
  for (std::uint64_t i = 0; i < 200; ++i) {
    const auto fuzz = fuzzer.generate(0x5eed, i);
    Observation obs[2];
    for (int skip = 0; skip < 2; ++skip) {
      mem::MemorySystem mem(device, 1);
      sm::SmCore core(device, &mem);
      core.set_cycle_skip(skip == 1);
      auto image = global;
      core.bind_global(image);
      obs[skip].result = core.run(fuzz.program, fuzz.shape);
      const int regs = highest_reg(fuzz.program) + 1;
      for (int w = 0; w < fuzz.shape.total_warps(); ++w) {
        for (int r = 0; r < regs; ++r) {
          for (int l = 0; l < kLanes; ++l) {
            obs[skip].regs.push_back(core.reg(w, r, l));
          }
        }
      }
    }
    expect_identical(obs[1], obs[0],
                     ("fuzz case " + std::to_string(i)).c_str());
    if (::testing::Test::HasFailure()) break;
  }
}

void expect_chip_identical(const gpu::ChipResult& a, const gpu::ChipResult& b,
                           const char* label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.block_slots, b.block_slots);
  EXPECT_EQ(a.instructions_issued, b.instructions_issued);
  EXPECT_EQ(a.stall_cycles, b.stall_cycles);
  EXPECT_EQ(a.mem_transactions, b.mem_transactions);
  EXPECT_EQ(a.warps_retired, b.warps_retired);
  ASSERT_EQ(a.per_sm.size(), b.per_sm.size());
  for (std::size_t i = 0; i < a.per_sm.size(); ++i) {
    EXPECT_EQ(a.per_sm[i].cycles, b.per_sm[i].cycles) << "sm " << i;
    EXPECT_EQ(a.per_sm[i].instructions_issued, b.per_sm[i].instructions_issued)
        << "sm " << i;
    EXPECT_EQ(a.per_sm[i].stall_cycles, b.per_sm[i].stall_cycles) << "sm " << i;
  }
}

// The counting-sort ticket resolution must order every epoch's tickets
// exactly as the reference (issue_time, sm, seq) comparison sort — pinned
// on a grid with global + shared traffic and slot recycling, across thread
// counts.
TEST(PerfIdentity, FullChipBucketResolutionMatchesSortedReference) {
  const auto& device = arch::h800_pcie();
  isa::Program p;
  p.add({.op = isa::Opcode::kLdgCg, .rd = 2, .ra = 0, .access_bytes = 8});
  p.add({.op = isa::Opcode::kIAdd3, .rd = 3, .ra = 2, .rb = 2});
  p.add({.op = isa::Opcode::kVIMnMx, .rd = 4, .ra = 3, .rb = 2, .rc = 0,
         .imm = 1});
  p.add({.op = isa::Opcode::kStg, .ra = 0, .rb = 4, .access_bytes = 8});
  p.set_iterations(4);
  const sm::LaunchConfig config{.threads_per_block = 64,
                                .total_blocks = device.sm_count + 3,
                                .smem_per_block = 0,
                                .regs_per_thread = 16};

  gpu::ChipOptions bucketed;
  bucketed.threads = 1;
  gpu::ChipOptions sorted;
  sorted.threads = 1;
  sorted.sorted_tickets = true;
  gpu::ChipOptions sorted_mt;
  sorted_mt.threads = 3;
  sorted_mt.sorted_tickets = true;

  const auto a = gpu::GpuEngine(device, bucketed).run(p, config);
  const auto b = gpu::GpuEngine(device, sorted).run(p, config);
  const auto c = gpu::GpuEngine(device, sorted_mt).run(p, config);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  expect_chip_identical(a.value(), b.value(), "bucket vs sorted");
  expect_chip_identical(a.value(), c.value(), "bucket vs sorted, 3 threads");
}

// The sharded slice-fabric resolver must be bit-identical to the serial
// reference twin (ChipOptions::serial_fabric — every ticket resolved on the
// barrier thread in global order): the slices' state is slice-private, each
// slice sees the global order's restriction to its tickets, and fixups are
// applied post-barrier in global order.  Pinned here on the same recycling
// grid, serial vs sharded at 1 and 3 threads; the exhaustive campaign
// (paper kernels + 200-case fuzz corpus, trace/PMU on and off) lives in
// tests/fabric_test.cpp.
TEST(PerfIdentity, FullChipShardedFabricMatchesSerialReference) {
  const auto& device = arch::h800_pcie();
  isa::Program p;
  p.add({.op = isa::Opcode::kLdgCg, .rd = 2, .ra = 0, .access_bytes = 8});
  p.add({.op = isa::Opcode::kIAdd3, .rd = 3, .ra = 2, .rb = 2});
  p.add({.op = isa::Opcode::kStg, .ra = 0, .rb = 3, .access_bytes = 8});
  p.set_iterations(4);
  const sm::LaunchConfig config{.threads_per_block = 64,
                                .total_blocks = device.sm_count + 3,
                                .smem_per_block = 0,
                                .regs_per_thread = 16};

  gpu::ChipOptions serial;
  serial.threads = 1;
  serial.serial_fabric = true;
  gpu::ChipOptions sharded;
  sharded.threads = 1;
  gpu::ChipOptions sharded_mt;
  sharded_mt.threads = 3;

  const auto a = gpu::GpuEngine(device, serial).run(p, config);
  const auto b = gpu::GpuEngine(device, sharded).run(p, config);
  const auto c = gpu::GpuEngine(device, sharded_mt).run(p, config);
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  ASSERT_TRUE(c.has_value());
  expect_chip_identical(a.value(), b.value(), "serial vs sharded");
  expect_chip_identical(a.value(), c.value(), "serial vs sharded, 3 threads");
}

// Steady-state zero-allocation contract: once a block is launched, the
// issue loop (scheduler scan, idle skip, scoreboard, pipelined units) runs
// to completion without a single heap allocation.
TEST(PerfIdentity, IssueLoopSteadyStateAllocatesNothing) {
  const auto& device = arch::h800_pcie();
  const auto program = fig7_dpx_kernel(device);
  sm::SmCore core(device, nullptr);
  core.begin(program, 1, 1024);
  core.launch_block(0, 0, 0.0);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  core.advance(kInf);
  const auto result = core.finalize();
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(result.warps_retired, 32u);
}

// AsyncSlot recycling: relaunching a drained block slot reuses the per-warp
// async-group arena, so the second block's cp.async traffic allocates
// nothing (the first launch may size deques, caches, and TLB structures).
TEST(PerfIdentity, AsyncSlotsRecycleAcrossBlockRelaunch) {
  const auto& device = arch::h800_pcie();
  const auto program = async_kernel();
  mem::MemorySystem mem(device, 1);
  sm::SmCore core(device, &mem);
  core.begin(program, 1, 64);
  core.launch_block(0, 0, 0.0);
  core.advance(kInf);
  ASSERT_EQ(core.live_warps(), 0);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  core.launch_block(0, 1, core.now());
  core.advance(kInf);
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(core.live_warps(), 0);
  EXPECT_EQ(after - before, 0u);
  EXPECT_EQ(core.finalize().warps_retired, 4u);
}

}  // namespace
}  // namespace hsim
