// Decode-only LLM generation model (Table XII).
//
// Models Llama-family inference the way the paper ran it: HuggingFace-style
// generate() with nn.Linear/RMSNorm swapped for te.Linear/te.RMSNorm,
// batch 8, input and output capped at 128 tokens, requests synthesised from
// a ShareGPT-like length distribution.
//
// The decode step is memory- and overhead-bound at this scale, which is why
// FP8's compute advantage disappears (and can invert): te.Linear keeps FP16
// master weights and casts per call, so FP8 *increases* weight traffic and
// adds quantisation kernels; BF16 halves weight traffic relative to FP32
// but pays cast overheads.  Memory capacity accounting reproduces the
// table's OOM cells.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "te/ops.hpp"

namespace hsim::te {

struct LlamaConfig {
  std::string name;
  int layers = 32;
  std::int64_t hidden = 4096;
  int heads = 32;
  std::int64_t ffn_hidden = 11008;
  std::int64_t vocab = 32000;

  [[nodiscard]] double parameters() const;  // approximate count
};

LlamaConfig llama_3b();
LlamaConfig llama2_7b();
LlamaConfig llama2_13b();

/// One synthetic client request (token counts only).
struct Request {
  int input_len = 0;
  int output_len = 0;
};

/// ShareGPT-like request synthesis: conversation lengths are heavy-tailed;
/// the paper clips both sides to 128 tokens.
std::vector<Request> synthesize_sharegpt(int count, int max_input, int max_output,
                                         Xoshiro256ss& rng);

struct GenerationSetup {
  int batch = 8;
  int max_input = 128;
  int max_output = 128;
  std::uint64_t seed = 7;
};

struct GenerationResult {
  double tokens_per_second = 0;   // (input + output) tokens / time
  double seconds = 0;
  double weight_bytes = 0;
  double kv_cache_bytes = 0;
  double total_device_bytes = 0;  // weights + kv + activations + runtime
  bool oom = false;
  std::string note;               // "OOM" / "unsupported" for table cells
};

/// Run the generation benchmark for one model / dtype / device.
/// `dtype` is the te.Linear compute type: FP32, BF16 or FP8 (E4M3).
Expected<GenerationResult> run_generation(const CostModel& model,
                                          const LlamaConfig& llm,
                                          num::DType dtype,
                                          const GenerationSetup& setup);

}  // namespace hsim::te
