// Banked shared-memory model.
//
// Shared memory is split into 32 banks of 4-byte words; a warp access that
// maps two different words to the same bank serialises into that many
// phases.  The model provides both conflict analysis (timing) and a real
// byte-addressable backing store (the DSM histogram application stores its
// bins here).
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "common/state_io.hpp"
#include "common/status.hpp"
#include "prof/pmu.hpp"
#include "trace/trace.hpp"

namespace hsim::mem {

class SharedMemory {
 public:
  SharedMemory(std::uint64_t size_bytes, int banks = 32, int bank_word_bytes = 4);

  /// Number of serialised phases for a warp's worth of word addresses:
  /// the max, over banks, of distinct words touched in that bank.
  /// Broadcasts (same word) do not conflict.  Returns >= 1.
  [[nodiscard]] int conflict_degree(std::span<const std::uint32_t> byte_addrs) const;

  /// As above, but when a trace sink is attached and the access conflicts,
  /// emits a kStall/kSmemBankConflict event whose duration is the extra
  /// serialised phases (degree - 1) charged to `warp` on `sm` at `now`.
  int conflict_degree(std::span<const std::uint32_t> byte_addrs, double now,
                      int sm, int warp);

  /// Attach (or detach, with nullptr) the bank-conflict event sink.
  void set_trace(trace::TraceSink* sink) noexcept { trace_ = sink; }

  /// Attach (or detach, with nullptr) a performance-counter block: the
  /// timed conflict_degree overload counts each warp access and its extra
  /// serialised phases.  Zero overhead beyond one branch when detached.
  void set_pmu(prof::PmuCounters* pmu) noexcept { pmu_ = pmu; }

  /// Functional 32-bit load/store (histogram bins, reduction scratch).
  [[nodiscard]] std::uint32_t load_u32(std::uint32_t byte_addr) const;
  void store_u32(std::uint32_t byte_addr, std::uint32_t value);
  /// Atomic add returning the old value (models atomicAdd on shared).
  std::uint32_t atomic_add_u32(std::uint32_t byte_addr, std::uint32_t value);

  [[nodiscard]] std::uint64_t size() const noexcept { return data_.size(); }
  /// Whole backing store, for snapshot/diff tooling (conformance driver).
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_.data(), data_.size()};
  }
  [[nodiscard]] int banks() const noexcept { return banks_; }
  void fill(std::uint8_t byte) { std::fill(data_.begin(), data_.end(), byte); }

  /// Overwrite the backing store (fast-forward handoff, snapshot restore).
  /// The image must match the configured size.
  void import_bytes(std::span<const std::uint8_t> image) {
    HSIM_ASSERT(image.size() == data_.size());
    std::copy(image.begin(), image.end(), data_.begin());
  }

  void save_state(common::StateWriter& w) const {
    w.marker(0x534d454du);  // "SMEM"
    w.blob(bytes());
  }
  void load_state(common::StateReader& r) {
    r.expect_marker(0x534d454du);
    const auto image = r.blob();
    if (!r.expect(image.size() == data_.size())) return;
    std::copy(image.begin(), image.end(), data_.begin());
  }

 private:
  [[nodiscard]] int bank_of(std::uint32_t byte_addr) const noexcept {
    return static_cast<int>((byte_addr / static_cast<std::uint32_t>(word_bytes_)) %
                            static_cast<std::uint32_t>(banks_));
  }

  std::vector<std::uint8_t> data_;
  int banks_;
  int word_bytes_;
  trace::TraceSink* trace_ = nullptr;
  prof::PmuCounters* pmu_ = nullptr;
};

}  // namespace hsim::mem
