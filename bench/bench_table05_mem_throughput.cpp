// Table V: throughput at different memory levels (FP32 / FP64 / FP32.v4)
// plus the L2-vs-global ratio the paper highlights.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/membench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  const arch::DeviceSpec* devices[] = {&arch::rtx4090(), &arch::a100_pcie(),
                                       &arch::h800_pcie()};
  const core::AccessKind kinds[] = {core::AccessKind::kFp32,
                                    core::AccessKind::kFp64,
                                    core::AccessKind::kFp32V4};

  Table l1("Table V (a): L1 cache throughput (byte/clk/SM)");
  l1.set_header({"Device", "FP32", "FP64", "FP32.v4"});
  for (const auto* device : devices) {
    std::vector<std::string> cells{device->name};
    for (const auto kind : kinds) {
      const auto r = core::measure_l1_throughput(*device, kind);
      cells.push_back(r ? fmt_fixed(r.value().bytes_per_clk, 1) : "err");
    }
    l1.add_row(std::move(cells));
  }
  bench::emit(l1, opt);

  Table l2("Table V (b): L2 cache throughput (byte/clk, device-wide)");
  l2.set_header({"Device", "FP32", "FP64", "FP32.v4"});
  for (const auto* device : devices) {
    std::vector<std::string> cells{device->name};
    for (const auto kind : kinds) {
      const auto r = core::measure_l2_throughput(*device, kind);
      cells.push_back(r ? fmt_fixed(r.value().bytes_per_clk, 1) : "err");
    }
    l2.add_row(std::move(cells));
  }
  bench::emit(l2, opt);

  Table rest("Table V (c): shared memory, global memory and L2-vs-global");
  rest.set_header({"Device", "Shared (byte/clk/SM)", "Global (GB/s)",
                   "Global/peak", "L2 vs Global"});
  for (const auto* device : devices) {
    const auto shared = core::measure_shared_throughput(*device);
    const auto global = core::measure_global_throughput(*device);
    const auto l2a = core::measure_l2_throughput(*device, core::AccessKind::kFp32);
    const auto l2b =
        core::measure_l2_throughput(*device, core::AccessKind::kFp32V4);
    if (!shared || !global || !l2a || !l2b) continue;
    // The paper quotes the best L2 figure against global bandwidth at the
    // official boost clock.
    const double l2_best =
        std::max(l2a.value().bytes_per_clk, l2b.value().bytes_per_clk);
    const double global_bpc =
        global.value().gbps * 1e9 / device->official_clock_hz();
    const double ratio = l2_best / global_bpc;
    rest.add_row({device->name, fmt_fixed(shared.value().bytes_per_clk, 1),
                  fmt_fixed(global.value().gbps, 1),
                  fmt_fixed(global.value().gbps / device->memory.dram_peak_gbps, 3),
                  fmt_fixed(ratio, 2) + "x"});
  }
  bench::emit(rest, opt);
  return 0;
}
