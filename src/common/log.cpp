#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace hsim {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() noexcept {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void init_log_level_from_env() noexcept {
  const char* env = std::getenv("HSIM_LOG");
  if (env == nullptr) return;
  if (std::strcmp(env, "debug") == 0) set_log_level(LogLevel::kDebug);
  else if (std::strcmp(env, "info") == 0) set_log_level(LogLevel::kInfo);
  else if (std::strcmp(env, "warn") == 0) set_log_level(LogLevel::kWarn);
  else if (std::strcmp(env, "error") == 0) set_log_level(LogLevel::kError);
  else {
    // A typo'd HSIM_LOG silently keeping the default is confusing; warn
    // once (the level stays unchanged, and warnings are on by default).
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      HSIM_WARN("ignoring unknown HSIM_LOG value \"" << env
                << "\"; accepted: debug, info, warn, error");
    }
  }
}

namespace detail {

void log_line(LogLevel level, std::string_view message) {
  std::fprintf(stderr, "[hsim %s] %.*s\n", level_name(level),
               static_cast<int>(message.size()), message.data());
}

}  // namespace detail
}  // namespace hsim
