// Hierarchical GEMM driver: numeric agreement with the FP64 reference,
// tiling correctness, sparsity, projections.
#include "tensorcore/gemm.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hsim::tc {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using isa::TcInstr;
using isa::TcPath;
using num::DType;

TcInstr mma16(DType cd = DType::kFp32) {
  return {.path = TcPath::kMma, .shape = {16, 8, 16}, .ab = DType::kFp16,
          .cd = cd};
}

TEST(Gemm, SmallIntegerProblemIsExact) {
  Xoshiro256ss rng(1);
  MatF a(32, 32), b(32, 16), c(32, 16);
  for (auto& v : a.data()) v = static_cast<float>(rng.range(-3, 3));
  for (auto& v : b.data()) v = static_cast<float>(rng.range(-3, 3));
  const auto result = gemm(a, b, c, mma16(), h800_pcie()).value();
  EXPECT_EQ(result.max_abs_error, 0.0);
  EXPECT_EQ(result.instructions, 2u * 2 * 2);  // (32/16)(16/8)(32/16)
}

TEST(Gemm, TilingMatchesSingleInstructionSemantics) {
  // A one-tile problem must equal mma_fp directly.
  Xoshiro256ss rng(2);
  MatF a(16, 16), b(16, 8), c(16, 8);
  fill_random(a, DType::kFp16, rng);
  fill_random(b, DType::kFp16, rng);
  const auto tiled = gemm(a, b, c, mma16(), h800_pcie()).value();
  const auto direct = mma_fp(a, b, c, DType::kFp16, DType::kFp32);
  EXPECT_EQ(tiled.d.data(), direct.data());
}

TEST(Gemm, KTilingAccumulatesThroughD) {
  // Multi-k-step runs chain the accumulator; error still tiny for fp32 acc.
  Xoshiro256ss rng(3);
  MatF a(16, 128), b(128, 8), c(16, 8);
  fill_random(a, DType::kFp16, rng);
  fill_random(b, DType::kFp16, rng);
  const auto result = gemm(a, b, c, mma16(), h800_pcie()).value();
  EXPECT_LT(result.max_abs_error, 1e-3);
  EXPECT_EQ(result.instructions, 8u);  // 128/16 k-steps, one output tile
}

TEST(Gemm, Fp16AccumulationVisiblyWorse) {
  Xoshiro256ss rng(4);
  MatF a(32, 256), b(256, 16), c(32, 16);
  fill_random(a, DType::kFp16, rng);
  fill_random(b, DType::kFp16, rng);
  const auto acc32 = gemm(a, b, c, mma16(DType::kFp32), h800_pcie()).value();
  const auto acc16 = gemm(a, b, c, mma16(DType::kFp16), h800_pcie()).value();
  EXPECT_GT(acc16.max_abs_error, 3.0 * acc32.max_abs_error);
}

TEST(Gemm, SparseMatchesPrunedDense) {
  Xoshiro256ss rng(5);
  MatF a(32, 64), b(64, 16), c(32, 16);
  fill_random(a, DType::kFp16, rng);
  fill_random(b, DType::kFp16, rng);
  const auto sparse = gemm(a, b, c, mma16(), h800_pcie(), {.sparse = true}).value();
  // Reference: dense GEMM on the pruned A.
  const auto dense_pruned = gemm(prune_2_4(a), b, c, mma16(), h800_pcie()).value();
  EXPECT_EQ(sparse.d.data(), dense_pruned.d.data());
  // Sparse halves the instruction count's k-steps (k32 modifier).
  EXPECT_EQ(sparse.instructions, dense_pruned.instructions / 2);
}

TEST(Gemm, WgmmaNumbersMatchMmaExactly) {
  // Same arithmetic, different tiling order: identical k-major accumulation
  // order per element, so results agree bit-for-bit.
  Xoshiro256ss rng(6);
  MatF a(64, 64), b(64, 64), c(64, 64);
  fill_random(a, DType::kFp16, rng);
  fill_random(b, DType::kFp16, rng);
  const TcInstr wgmma{.path = TcPath::kWgmma, .shape = {64, 64, 16},
                      .ab = DType::kFp16, .cd = DType::kFp32,
                      .a_src = isa::OperandSource::kSharedMemory};
  const auto via_wgmma = gemm(a, b, c, wgmma, h800_pcie()).value();
  const auto via_mma = gemm(a, b, c, mma16(), h800_pcie()).value();
  EXPECT_EQ(via_wgmma.d.data(), via_mma.d.data());
}

TEST(Gemm, WgmmaProjectionWinsOnceSmsAreFull) {
  // At 64x64 the wgmma tiling puts one tile on one SM and loses; once the
  // output grid covers the device, the warp-group path's higher per-SM rate
  // takes over — the paper's mma-vs-wgmma story expressed through a kernel.
  Xoshiro256ss rng(9);
  MatF a(512, 64), b(64, 512), c(512, 512);
  fill_random(a, DType::kFp16, rng);
  fill_random(b, DType::kFp16, rng);
  const TcInstr wgmma{.path = TcPath::kWgmma, .shape = {64, 64, 16},
                      .ab = DType::kFp16, .cd = DType::kFp32,
                      .a_src = isa::OperandSource::kSharedMemory};
  const auto big_wgmma =
      gemm(a, b, c, wgmma, h800_pcie(), {.compute_error = false}).value();
  const auto big_mma =
      gemm(a, b, c, mma16(), h800_pcie(), {.compute_error = false}).value();
  EXPECT_GT(big_wgmma.projected_tflops, 1.5 * big_mma.projected_tflops);

  MatF a2(64, 64), b2(64, 64), c2(64, 64);
  const auto small_wgmma =
      gemm(a2, b2, c2, wgmma, h800_pcie(), {.compute_error = false}).value();
  const auto small_mma =
      gemm(a2, b2, c2, mma16(), h800_pcie(), {.compute_error = false}).value();
  EXPECT_LT(small_wgmma.projected_tflops, small_mma.projected_tflops);
}

TEST(Gemm, ProjectionScalesWithProblem) {
  Xoshiro256ss rng(7);
  MatF a(64, 64), b(64, 64), c(64, 64);
  const auto small = gemm(a, b, c, mma16(), h800_pcie()).value();
  MatF a2(256, 256), b2(256, 256), c2(256, 256);
  const auto large = gemm(a2, b2, c2, mma16(), h800_pcie()).value();
  EXPECT_GT(large.projected_tflops, small.projected_tflops);
  EXPECT_GT(large.projected_cycles, small.projected_cycles);
}

TEST(Gemm, Validation) {
  MatF a(20, 16), b(16, 8), c(20, 8);
  EXPECT_FALSE(gemm(a, b, c, mma16(), h800_pcie()).has_value());  // m % 16
  MatF a2(16, 16), b2(16, 8), c2(16, 16);
  EXPECT_FALSE(gemm(a2, b2, c2, mma16(), h800_pcie()).has_value());  // c shape
  // wgmma on Ampere fails cleanly.
  const TcInstr wgmma{.path = TcPath::kWgmma, .shape = {64, 64, 16},
                      .ab = DType::kFp16, .cd = DType::kFp32};
  MatF a3(64, 16), b3(16, 64), c3(64, 64);
  EXPECT_FALSE(gemm(a3, b3, c3, wgmma, a100_pcie()).has_value());
}

TEST(Gemm, Fp8ErrorMuchLargerThanFp16) {
  Xoshiro256ss rng(8);
  MatF a(64, 64), b(64, 64), c(64, 64);
  fill_random(a, DType::kFp16, rng);
  fill_random(b, DType::kFp16, rng);
  const TcInstr fp8{.path = TcPath::kWgmma, .shape = {64, 64, 32},
                    .ab = DType::kFp8E4M3, .cd = DType::kFp32,
                    .a_src = isa::OperandSource::kSharedMemory};
  const TcInstr fp16{.path = TcPath::kWgmma, .shape = {64, 64, 16},
                     .ab = DType::kFp16, .cd = DType::kFp32,
                     .a_src = isa::OperandSource::kSharedMemory};
  const auto e8 = gemm(a, b, c, fp8, h800_pcie()).value();
  const auto e16 = gemm(a, b, c, fp16, h800_pcie()).value();
  EXPECT_GT(e8.max_abs_error, 10.0 * e16.max_abs_error);
}

}  // namespace
}  // namespace hsim::tc
