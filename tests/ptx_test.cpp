// PTX tensor-core descriptors and the Table VI SASS lowering.
#include "isa/ptx.hpp"

#include <gtest/gtest.h>

namespace hsim::isa {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;
using num::DType;

TcInstr mma(DType ab, DType cd, int k, bool sparse = false) {
  return {.path = TcPath::kMma, .shape = {16, 8, k}, .ab = ab, .cd = cd,
          .sparse = sparse};
}
TcInstr wgmma(DType ab, DType cd, int n, int k, bool sparse = false) {
  return {.path = TcPath::kWgmma, .shape = {64, n, k}, .ab = ab, .cd = cd,
          .sparse = sparse};
}

// ---------- Table VI mapping ----------

TEST(Sass, HopperMmaFamilies) {
  const auto& dev = h800_pcie();
  EXPECT_EQ(compile_to_sass(mma(DType::kFp16, DType::kFp16, 16), dev).value(),
            "HMMA.16816.F16");
  EXPECT_EQ(compile_to_sass(mma(DType::kFp16, DType::kFp32, 16), dev).value(),
            "HMMA.16816.F32");
  EXPECT_EQ(compile_to_sass(mma(DType::kTf32, DType::kFp32, 8), dev).value(),
            "HMMA.1688.F32.TF32");
  EXPECT_EQ(compile_to_sass(mma(DType::kInt8, DType::kInt32, 32), dev).value(),
            "IMMA.16832.S8.S8");
  EXPECT_EQ(
      compile_to_sass(mma(DType::kBinary, DType::kInt32, 256), dev).value(),
      "BMMA.168256.AND.POPC");
}

TEST(Sass, HopperWgmmaFamilies) {
  const auto& dev = h800_pcie();
  EXPECT_EQ(compile_to_sass(wgmma(DType::kFp16, DType::kFp16, 256, 16), dev)
                .value(),
            "HGMMA.64x256x16.F16");
  EXPECT_EQ(compile_to_sass(wgmma(DType::kFp16, DType::kFp32, 256, 16), dev)
                .value(),
            "HGMMA.64x256x16.F32");
  EXPECT_EQ(compile_to_sass(wgmma(DType::kTf32, DType::kFp32, 256, 8), dev)
                .value(),
            "HGMMA.64x256x8.F32.TF32");
  EXPECT_EQ(
      compile_to_sass(wgmma(DType::kFp8E5M2, DType::kFp16, 256, 32), dev)
          .value(),
      "QGMMA.64x256x32.F16.E5M2.E5M2");
  EXPECT_EQ(
      compile_to_sass(wgmma(DType::kFp8E4M3, DType::kFp32, 256, 32), dev)
          .value(),
      "QGMMA.64x256x32.F32.E4M3.E4M3");
  EXPECT_EQ(
      compile_to_sass(wgmma(DType::kInt8, DType::kInt32, 256, 32), dev).value(),
      "IGMMA.64x256x32.S8.S8");
  EXPECT_EQ(
      compile_to_sass(wgmma(DType::kBinary, DType::kInt32, 256, 256), dev)
          .value(),
      "BGMMA.64x256x256.AND.POPC");
}

TEST(Sass, Int4FallsBackToImadOnHopperOnly) {
  EXPECT_EQ(compile_to_sass(mma(DType::kInt4, DType::kInt32, 32), h800_pcie())
                .value(),
            "IMAD.MOV.U32");
  EXPECT_EQ(compile_to_sass(mma(DType::kInt4, DType::kInt32, 32), a100_pcie())
                .value(),
            "IMMA.16832.S4.S4");
  EXPECT_EQ(compile_to_sass(mma(DType::kInt4, DType::kInt32, 32), rtx4090())
                .value(),
            "IMMA.16832.S4.S4");
  EXPECT_FALSE(runs_on_tensor_cores(mma(DType::kInt4, DType::kInt32, 32),
                                    h800_pcie()));
  EXPECT_TRUE(runs_on_tensor_cores(mma(DType::kInt4, DType::kInt32, 32),
                                   a100_pcie()));
}

TEST(Sass, Fp8HasNoMmaAnywhere) {
  for (const auto* device : arch::all_devices()) {
    EXPECT_FALSE(
        compile_to_sass(mma(DType::kFp8E4M3, DType::kFp32, 32), *device)
            .has_value())
        << device->name;
  }
}

TEST(Sass, WgmmaRequiresHopper) {
  EXPECT_FALSE(compile_to_sass(wgmma(DType::kFp16, DType::kFp32, 256, 16),
                               a100_pcie())
                   .has_value());
  EXPECT_FALSE(compile_to_sass(wgmma(DType::kFp16, DType::kFp32, 256, 16),
                               rtx4090())
                   .has_value());
}

TEST(Sass, SparseSuffix) {
  EXPECT_EQ(compile_to_sass(mma(DType::kFp16, DType::kFp16, 32, true),
                            h800_pcie())
                .value(),
            "HMMA.16832.F16.SP");
  EXPECT_EQ(compile_to_sass(wgmma(DType::kFp16, DType::kFp16, 256, 32, true),
                            h800_pcie())
                .value(),
            "HGMMA.SP.64x256x32.F16");
}

// ---------- Validation ----------

TEST(Validate, MmaShapes) {
  EXPECT_TRUE(validate(mma(DType::kFp16, DType::kFp16, 8)).has_value());
  EXPECT_TRUE(validate(mma(DType::kFp16, DType::kFp16, 16)).has_value());
  EXPECT_FALSE(validate(mma(DType::kFp16, DType::kFp16, 32)).has_value());
  EXPECT_TRUE(validate(mma(DType::kTf32, DType::kFp32, 4)).has_value());
  EXPECT_FALSE(validate(mma(DType::kTf32, DType::kFp32, 16)).has_value());
  EXPECT_TRUE(validate(mma(DType::kInt8, DType::kInt32, 16)).has_value());
  // Bad m/n.
  TcInstr bad = mma(DType::kFp16, DType::kFp16, 16);
  bad.shape.m = 8;
  EXPECT_FALSE(validate(bad).has_value());
}

TEST(Validate, AccumulatorTypes) {
  EXPECT_FALSE(validate(mma(DType::kFp16, DType::kInt32, 16)).has_value());
  EXPECT_FALSE(validate(mma(DType::kInt8, DType::kFp32, 16)).has_value());
  EXPECT_FALSE(validate(mma(DType::kTf32, DType::kFp16, 8)).has_value());
  EXPECT_TRUE(
      validate(wgmma(DType::kFp8E4M3, DType::kFp16, 64, 32)).has_value());
}

TEST(Validate, WgmmaNRange) {
  EXPECT_TRUE(validate(wgmma(DType::kFp16, DType::kFp32, 8, 16)).has_value());
  EXPECT_TRUE(validate(wgmma(DType::kFp16, DType::kFp32, 256, 16)).has_value());
  EXPECT_FALSE(validate(wgmma(DType::kFp16, DType::kFp32, 12, 16)).has_value());
  EXPECT_FALSE(validate(wgmma(DType::kFp16, DType::kFp32, 264, 16)).has_value());
  EXPECT_FALSE(validate(wgmma(DType::kFp16, DType::kFp32, 256, 8)).has_value());
}

TEST(Validate, WgmmaInt4Unsupported) {
  EXPECT_FALSE(
      validate(wgmma(DType::kInt4, DType::kInt32, 256, 64)).has_value());
}

TEST(Validate, SparseDoublesK) {
  EXPECT_TRUE(validate(mma(DType::kFp16, DType::kFp16, 32, true)).has_value());
  EXPECT_FALSE(validate(mma(DType::kFp16, DType::kFp16, 8, true)).has_value());
  EXPECT_TRUE(
      validate(wgmma(DType::kInt8, DType::kInt32, 128, 64, true)).has_value());
  EXPECT_FALSE(
      validate(wgmma(DType::kInt8, DType::kInt32, 128, 32, true)).has_value());
}

// ---------- Descriptor arithmetic ----------

TEST(TcInstr, OpsCountsDenseEquivalentWork) {
  EXPECT_EQ(mma(DType::kFp16, DType::kFp16, 16).ops(), 2.0 * 16 * 8 * 16);
  EXPECT_EQ(wgmma(DType::kFp16, DType::kFp32, 256, 16).ops(),
            2.0 * 64 * 256 * 16);
}

TEST(TcInstr, OperandBytes) {
  const auto dense = wgmma(DType::kFp16, DType::kFp32, 256, 16);
  EXPECT_EQ(dense.a_bytes(), 64 * 16 * 2.0);
  EXPECT_EQ(dense.b_bytes(), 256 * 16 * 2.0);
  const auto sparse = wgmma(DType::kFp16, DType::kFp32, 256, 32, true);
  EXPECT_EQ(sparse.a_bytes(), 64 * 16 * 2.0);  // stored compressed: k/2
  EXPECT_EQ(sparse.b_bytes(), 256 * 32 * 2.0);
}

TEST(TcInstr, PtxNames) {
  EXPECT_EQ(mma(DType::kFp16, DType::kFp32, 16).ptx_name(),
            "mma.sync.aligned.m16n8k16.row.col.f32.f16.f16.f32");
  EXPECT_EQ(mma(DType::kInt8, DType::kInt32, 32, true).ptx_name(),
            "mma.sp.sync.aligned.m16n8k32.row.col.s32.s8.s8.s32");
  EXPECT_EQ(wgmma(DType::kFp8E4M3, DType::kFp16, 128, 32).ptx_name(),
            "wgmma.mma_async.sync.aligned.m64n128k32.f16.e4m3.e4m3");
}

}  // namespace
}  // namespace hsim::isa
