// LLM capacity planner: given a fleet of GPUs, decide which Llama model /
// precision combinations fit in memory and what generation throughput to
// expect — the deployment question behind the paper's Table XII.
//
//   $ ./examples/llm_capacity_planner
#include <iostream>

#include "arch/device.hpp"
#include "common/table.hpp"
#include "te/llm.hpp"

int main() {
  using namespace hsim;
  using num::DType;

  const te::GenerationSetup setup{.batch = 8, .max_input = 128,
                                  .max_output = 128};
  const te::LlamaConfig models[] = {te::llama_3b(), te::llama2_7b(),
                                    te::llama2_13b()};

  Table plan("Deployment plan: batch 8, 128-in / 128-out requests");
  plan.set_header({"Device", "Model", "dtype", "weights(GB)", "fits",
                   "tokens/s", "verdict"},
                  {Align::kLeft, Align::kLeft, Align::kLeft, Align::kRight,
                   Align::kLeft, Align::kRight, Align::kLeft});

  for (const auto* device : arch::all_devices()) {
    const te::CostModel cost(*device);
    struct Best {
      double tokens = 0;
      std::string what;
    } best;
    for (const auto& model : models) {
      for (const auto dtype : {DType::kFp32, DType::kBf16, DType::kFp8E4M3}) {
        const auto result = te::run_generation(cost, model, dtype, setup);
        if (!result) {
          plan.add_row({device->name, model.name,
                        std::string(num::to_string(dtype)), "-", "no unit", "-",
                        ""});
          continue;
        }
        const auto& r = result.value();
        std::string verdict;
        if (!r.oom && r.tokens_per_second > best.tokens) {
          best = {r.tokens_per_second,
                  model.name + " @ " + std::string(num::to_string(dtype))};
        }
        plan.add_row({device->name, model.name,
                      std::string(num::to_string(dtype)),
                      fmt_fixed(r.weight_bytes / 1e9, 1),
                      r.oom ? "OOM" : "yes",
                      r.oom ? "-" : fmt_fixed(r.tokens_per_second, 0),
                      verdict});
      }
    }
    std::cout << device->name << ": best throughput = " << best.what << " ("
              << fmt_fixed(best.tokens, 0) << " tokens/s)\n";
  }
  std::cout << '\n';
  plan.render(std::cout);

  std::cout << "\nPlanner takeaways (mirroring the paper): short-sequence "
               "decode is memory- and overhead-bound, so FP8 buys nothing "
               "here — and TE's FP16-master-weight scheme makes FP8 cost "
               "*more* memory, which is what OOMs 7B FP8 on the 24 GB "
               "RTX4090.\n";
  return 0;
}
