// Device descriptors for the three GPUs the paper benchmarks.
//
// A DeviceSpec has two kinds of fields:
//   * datasheet facts from Table III (SM count, clocks, memory size/bus,
//     peak rates) — public, checkable numbers;
//   * microarchitectural calibration constants (pipeline depths, port
//     widths, per-op energies) chosen so that the *measured* output of the
//     structural models lands near the paper's tables.  Every calibration
//     constant is consumed by a model, never echoed directly into a result;
//     see EXPERIMENTS.md §Calibration for how each was derived.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/status.hpp"
#include "numerics/dtype.hpp"

namespace hsim::arch {

enum class Generation : std::uint8_t { kAmpere, kAda, kHopper };

constexpr std::string_view to_string(Generation g) noexcept {
  switch (g) {
    case Generation::kAmpere: return "Ampere";
    case Generation::kAda: return "Ada Lovelace";
    case Generation::kHopper: return "Hopper";
  }
  return "?";
}

/// Memory hierarchy calibration.  Latencies are load-to-use in core clock
/// cycles (end-to-end for the level that services the request); port widths
/// are bytes per core clock.
struct MemorySpec {
  // Structure (Table III + whitepapers).
  std::uint64_t dram_bytes = 0;
  std::string dram_type;          // "HBM2e" / "GDDR6X"
  double dram_clock_mhz = 0;
  int dram_bus_bits = 0;
  double dram_peak_gbps = 0;      // datasheet pin bandwidth
  std::uint64_t l2_bytes = 0;
  std::uint64_t l1_bytes_per_sm = 0;   // unified L1/shared carve-out
  std::uint64_t smem_max_per_block = 0;
  std::uint64_t smem_max_per_sm = 0;
  int l1_line_bytes = 128;
  int sector_bytes = 32;
  int l1_ways = 4;
  int l2_ways = 16;
  int smem_banks = 32;

  // Load-to-use latencies (cycles at core clock).
  double l1_hit_latency = 40;
  double smem_latency = 29;
  double l2_hit_latency = 260;
  double dram_latency = 480;
  double tlb_miss_penalty = 400;

  // Port widths (bytes per core clock).  "scalar" = 32-bit accesses,
  // "wide" = 64-bit, "vec" = 128-bit (float4).  Ada's L1 services 32-bit
  // loads at half rate, which the paper's Table V shows.
  double l1_bytes_per_clk_scalar = 128;
  double l1_bytes_per_clk_wide = 128;
  double l1_bytes_per_clk_vec = 128;
  double smem_bytes_per_clk = 128;
  double l2_bytes_per_clk_scalar = 2000;  // device-wide
  double l2_bytes_per_clk_wide = 2000;
  double l2_bytes_per_clk_vec = 2000;
  double dram_efficiency = 0.91;          // achieved fraction of pin bandwidth

  // FP64 ALU width (operand bytes consumed per clock per SM): on GeForce
  // and H800 parts the FP64 pipe, not the cache, bottlenecks the FP64
  // memory benchmark — exactly the effect the paper reports in Table V.
  double fp64_add_bytes_per_clk_sm = 16;
};

/// Tensor-core calibration.  Peak rates are dense TFLOPS (TOPS for integer)
/// at *official* boost clock, as in the paper's table captions; structural
/// constants shape how much of the peak each instruction class extracts.
struct TensorCoreSpec {
  int generation = 3;         // marketing generation
  int cores_total = 0;        // Table III
  bool has_fp8 = false;       // FP8 units present (Ada, Hopper)
  bool has_fp8_mma = false;   // PTX mma with FP8 exists (nowhere)
  bool has_wgmma = false;     // Hopper only
  bool mma_int4_on_tc = true; // false on Hopper: INT4 mma lowers to IMAD
  bool has_sparse = true;     // mma.sp supported (Ampere+)

  double peak_fp16_tflops = 0;   // dense; structured-sparse peak = 2x
  double peak_tf32_tflops = 0;
  double peak_fp8_tflops = 0;    // 0 when !has_fp8
  double peak_int8_tops = 0;
  double peak_fp64_tflops = 0;

  // FP32-accumulating mma runs at this fraction of the FP16-accumulate
  // width (0.5 on Ada GeForce parts, 1.0 on data-centre parts).
  double mma_acc32_width_factor = 1.0;

  // Per-instruction issue costs for the synchronous mma path (cycles).
  // Hopper executes mma through a compatibility path on wgmma-era hardware
  // with a per-instruction dispatch overhead — this single constant
  // reproduces the paper's "62.9% of peak" observation across all dtypes.
  double mma_dispatch_overhead = 0.0;
  double mma_sparse_dispatch_overhead = 0.0;
  // Minimum issue cadence for sparse mma (cycles): Ampere's sparse pipe
  // cannot issue faster than this, which is why only large sparse shapes
  // reach the claimed 2x on A100 (Table VII).
  double mma_sparse_min_cadence = 0.0;

  // mma completion latency = base + passes * per_pass, where passes =
  // k / k_base(dtype).  Integer and FP16-accumulate instructions use the
  // acc16 constants; FP32-accumulate and TF32 use the acc32 constants.
  double mma_lat_base_acc16 = 10.0;
  double mma_lat_pp_acc16 = 7.0;
  double mma_lat_base_acc32 = 10.0;
  double mma_lat_pp_acc32 = 8.0;

  // wgmma structural constants (Hopper only).
  double wgmma_efficiency = 0.97;       // compute-path efficiency
  double wgmma_rs_latency_floor = 13.0;
  double wgmma_ss_latency_floor = 18.0;
  double wgmma_ss_fill_latency = 8.0;   // exposed smem A-fill below hide point
  double wgmma_sparse_rs_floor = 16.0;
  double wgmma_sparse_ss_extra = 16.0;  // sparse SS reads 2x smem: never hidden
  double wgmma_hide_threshold_n = 64;   // N at which smem latency hides fully
};

/// DPX (dynamic-programming instruction) calibration.
struct DpxSpec {
  bool hardware = false;  // Hopper has VIMNMX units; others emulate
  // Hardware path: per-scheduler pipelined units.
  double hw_latency = 4.5;            // cycles, three-input fused min/max
  double hw_ops_per_clk_sm = 64.0;    // DPX lane-ops per clock per SM
  // Emulated path: DPX calls expand to INT32 ALU sequences (counts are
  // derived from each function's structure in src/dpx).
  double emu_alu_ops_per_clk_sm = 64.0;
  double emu_latency_per_op = 4.5;    // dependent-chain latency per ALU op
};

/// SM-to-SM network (distributed shared memory), Hopper only.
struct DsmSpec {
  bool available = false;
  double latency_cycles = 180.0;       // one-way SM-to-SM load-to-use
  double port_bytes_per_clk = 16.0;    // per-SM injection port width
  // Fabric contention: per-doubling-of-cluster-size throughput multiplier
  // beyond CS=2 (more blocks share switch links).
  double contention_base = 0.83;
  int max_cluster_size = 16;
};

/// Dynamic energy per tensor-core operation (picojoules per FLOP/OP) at
/// full random-data toggling, by input/accumulator class.
struct TcEnergy {
  double fp16_fp16 = 0;
  double fp16_fp32 = 0;
  double tf32_fp32 = 0;
  double fp8 = 0;
  double int8 = 0;

  [[nodiscard]] double lookup(num::DType input, num::DType acc) const;
};

/// Board power model: P = idle + rate * pj * toggle.  When P would exceed
/// the board limit the clock (and hence rate) throttles until P == limit —
/// this is what produces the Zero-vs-Rand gaps in Tables VIII-X.
struct PowerSpec {
  double board_limit_w = 350;
  double idle_w = 60;
  TcEnergy mma_pj;     // synchronous mma path
  TcEnergy wgmma_pj;   // warp-group path keeps the whole array busy
  double mma_sparse_energy_factor = 0.6;   // skipped lanes don't toggle
  double wgmma_sparse_energy_factor = 0.5;
  double zero_toggle_factor = 0.18;  // all-zero operands barely toggle
};

/// A complete device: identity, datasheet facts and calibration.
struct DeviceSpec {
  std::string name;            // "H800 PCIe"
  Generation generation = Generation::kHopper;
  int compute_capability_major = 9;
  int compute_capability_minor = 0;

  int sm_count = 0;
  int cores_per_sm = 0;
  double boost_clock_mhz = 0;     // official boost
  double observed_clock_mhz = 0;  // what the silicon sustains under TC load
                                  // (the paper's RTX 4090 ran above boost)

  MemorySpec memory;
  TensorCoreSpec tc;
  DpxSpec dpx;
  DsmSpec dsm;
  PowerSpec power;

  bool has_async_copy = true;  // cp.async (Ampere+)
  bool has_tma = false;        // Hopper tensor memory accelerator

  [[nodiscard]] double clock_hz() const { return observed_clock_mhz * 1e6; }
  [[nodiscard]] double official_clock_hz() const { return boost_clock_mhz * 1e6; }
  [[nodiscard]] std::string cc_string() const {
    return std::to_string(compute_capability_major) + "." +
           std::to_string(compute_capability_minor);
  }

  /// Dense tensor-core peak for an input type, TFLOPS/TOPS (0 if absent).
  [[nodiscard]] double tc_peak_tflops(num::DType input) const;
  /// Peak dense TC throughput in ops per core clock per SM, at the official
  /// boost clock the peak is quoted for.
  [[nodiscard]] double tc_ops_per_clk_sm(num::DType input) const;
};

/// Factory functions for the three devices under study (Table III).
const DeviceSpec& a100_pcie();
const DeviceSpec& rtx4090();
const DeviceSpec& h800_pcie();

/// All three, in the paper's comparison order (A100, RTX4090, H800).
std::array<const DeviceSpec*, 3> all_devices();

/// Look up a device by (case-insensitive) short name: "a100", "4090", "h800".
Expected<const DeviceSpec*> find_device(std::string_view short_name);

}  // namespace hsim::arch
