#include "conformance/fuzzer.hpp"

#include <algorithm>
#include <array>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "sim/sweep.hpp"

namespace hsim::conformance {
namespace {

using isa::Instruction;
using isa::kRegNone;
using isa::Opcode;

// Fixed-convention registers (see fuzzer.hpp).
constexpr int kRegTid = 0;
constexpr int kRegSlot = 1;        // 4 * tid: private shared slot
constexpr int kRegGlobalMask = 2;
constexpr int kRegRoBase = 3;
constexpr int kRegRoMask = 4;
constexpr int kRegGlobalAddr = 5;  // hygiene scratch: masked global address
constexpr int kRegRoAddr = 6;      // hygiene scratch: masked window address

enum class Category {
  kAlu,
  kFp,
  kDpx,
  kTensor,
  kLdg,
  kSmem,
  kRoSmem,
  kBarrier,
  kTimingOnly,
};

}  // namespace

std::vector<std::uint64_t> make_global_image(std::uint64_t base_seed) {
  // Decorrelate from the per-case streams, which derive from the same base.
  Xoshiro256ss rng(base_seed ^ 0xA5A5F00DBEEF1234ULL);
  std::vector<std::uint64_t> words(kGlobalWords);
  for (auto& w : words) w = rng();
  return words;
}

ProgramFuzzer::ProgramFuzzer(FuzzOptions options) : options_(options) {
  HSIM_ASSERT(options_.min_body_ops >= 1 &&
              options_.max_body_ops >= options_.min_body_ops);
  HSIM_ASSERT(options_.value_regs >= 2 &&
              kFirstValueReg + options_.value_regs <= isa::kMaxRegs);
  HSIM_ASSERT(options_.max_iterations >= 1);
  HSIM_ASSERT(options_.max_blocks >= 1 && options_.max_warps_per_block >= 1);
}

FuzzCase ProgramFuzzer::generate(std::uint64_t base_seed,
                                 std::uint64_t index) const {
  Xoshiro256ss rng(
      sim::derive_point_seed(base_seed, static_cast<std::size_t>(index)));
  FuzzCase out;
  out.base_seed = base_seed;
  out.index = index;
  if (options_.max_grid_blocks > 0) {
    // Grid mode: small CTAs, many of them (see FuzzOptions::max_grid_blocks
    // for the private-slot addressing bound this enforces).
    const auto wpb_cap = static_cast<std::uint64_t>(
        std::min(options_.max_warps_per_block, 2));
    out.shape.threads_per_block = 32 * (1 + static_cast<int>(rng.below(wpb_cap)));
    const auto blocks_cap = std::min<std::uint64_t>(
        static_cast<std::uint64_t>(options_.max_grid_blocks),
        static_cast<std::uint64_t>(kRoSharedBase) / 4 /
            static_cast<std::uint64_t>(out.shape.threads_per_block));
    out.shape.blocks = 1 + static_cast<int>(rng.below(blocks_cap));
  } else {
    out.shape.threads_per_block =
        32 * (1 + static_cast<int>(rng.below(
                      static_cast<std::uint64_t>(options_.max_warps_per_block))));
    out.shape.blocks =
        1 + static_cast<int>(rng.below(static_cast<std::uint64_t>(options_.max_blocks)));
  }
  out.program.set_iterations(
      1 + static_cast<std::uint32_t>(rng.below(options_.max_iterations)));

  // The read-only shared window carries either loads or commutative
  // atomics per case, never both: mixing them would let one warp observe
  // another's partial sums, and the observed value would then depend on
  // the interleaving — exactly the nondeterminism race-free generation
  // must exclude.
  const bool window_atomics = rng.below(2) == 0;

  isa::Program& p = out.program;
  const auto random_value = [&]() -> std::int64_t {
    return static_cast<std::int64_t>(rng() & 0xFFFFFFFFULL);
  };

  // Prologue: address conventions and the value pool.
  p.add({.op = Opcode::kShf, .rd = kRegSlot, .ra = kRegTid, .imm = 2});
  p.mov(kRegGlobalMask, static_cast<std::int64_t>(kGlobalWords) * 8 - 1);
  p.mov(kRegRoBase, kRoSharedBase);
  p.mov(kRegRoMask, kRoSharedMask);
  for (int i = 0; i < options_.value_regs; ++i) {
    p.mov(kFirstValueReg + i, random_value());
  }

  const auto value_reg = [&]() -> int {
    return kFirstValueReg +
           static_cast<int>(rng.below(static_cast<std::uint64_t>(options_.value_regs)));
  };
  // Mask a value register into a valid global byte address in R5.
  const auto emit_global_addr = [&]() {
    p.add({.op = Opcode::kLop3, .rd = kRegGlobalAddr, .ra = value_reg(),
           .rb = kRegGlobalMask, .imm = 0});
  };
  // Mask a value register into a valid read-only-window address in R6.
  const auto emit_window_addr = [&]() {
    p.add({.op = Opcode::kLop3, .rd = kRegRoAddr, .ra = value_reg(),
           .rb = kRegRoMask, .imm = 0});
    p.add({.op = Opcode::kIAdd3, .rd = kRegRoAddr, .ra = kRegRoAddr,
           .rb = kRegRoBase});
  };
  const auto random_width = [&]() -> std::uint32_t {
    constexpr std::array<std::uint32_t, 3> kWidths{4, 8, 16};
    return kWidths[rng.below(kWidths.size())];
  };

  const std::array<std::pair<Category, int>, 9> mix{{
      {Category::kAlu, options_.w_alu},
      {Category::kFp, options_.w_fp},
      {Category::kDpx, options_.w_dpx},
      {Category::kTensor, options_.w_tensor},
      {Category::kLdg, options_.w_ldg},
      {Category::kSmem, options_.w_smem},
      {Category::kRoSmem, options_.w_ro_smem},
      {Category::kBarrier, options_.w_barrier},
      {Category::kTimingOnly, options_.w_timing_only},
  }};
  int total_weight = 0;
  for (const auto& [cat, w] : mix) total_weight += w;
  HSIM_ASSERT(total_weight > 0);
  const auto pick_category = [&]() -> Category {
    auto roll = static_cast<int>(rng.below(static_cast<std::uint64_t>(total_weight)));
    for (const auto& [cat, w] : mix) {
      roll -= w;
      if (roll < 0) return cat;
    }
    return Category::kAlu;  // unreachable
  };

  const int ops = static_cast<int>(
      rng.range(options_.min_body_ops, options_.max_body_ops));
  for (int i = 0; i < ops; ++i) {
    switch (pick_category()) {
      case Category::kAlu: {
        switch (rng.below(7)) {
          case 0:
            p.add({.op = Opcode::kIAdd3, .rd = value_reg(), .ra = value_reg(),
                   .rb = value_reg(),
                   .rc = rng.below(2) ? value_reg() : kRegNone});
            break;
          case 1:
            p.add({.op = Opcode::kIMad, .rd = value_reg(), .ra = value_reg(),
                   .rb = value_reg(), .rc = value_reg()});
            break;
          case 2:
            p.add({.op = Opcode::kIMnMx, .rd = value_reg(), .ra = value_reg(),
                   .rb = value_reg(),
                   .imm = static_cast<std::int64_t>(rng.below(2))});
            break;
          case 3:
            p.add({.op = Opcode::kLop3, .rd = value_reg(), .ra = value_reg(),
                   .rb = value_reg(),
                   .imm = static_cast<std::int64_t>(rng.below(3))});
            break;
          case 4:
            p.add({.op = Opcode::kShf, .rd = value_reg(), .ra = value_reg(),
                   .imm = static_cast<std::int64_t>(rng.below(32))});
            break;
          case 5:
            p.add({.op = Opcode::kPopc, .rd = value_reg(), .ra = value_reg()});
            break;
          default:
            p.mov(value_reg(), random_value());
            break;
        }
        break;
      }
      case Category::kFp: {
        switch (rng.below(6)) {
          case 0:
            p.fadd(value_reg(), value_reg(), value_reg());
            break;
          case 1:
            p.add({.op = Opcode::kFMul, .rd = value_reg(), .ra = value_reg(),
                   .rb = value_reg()});
            break;
          case 2:
            p.add({.op = Opcode::kFFma, .rd = value_reg(), .ra = value_reg(),
                   .rb = value_reg(), .rc = value_reg()});
            break;
          case 3:
            p.dadd(value_reg(), value_reg(), value_reg());
            break;
          case 4:
            p.add({.op = Opcode::kDMul, .rd = value_reg(), .ra = value_reg(),
                   .rb = value_reg()});
            break;
          default:
            p.add({.op = Opcode::kHAdd2, .rd = value_reg(), .ra = value_reg(),
                   .rb = value_reg()});
            break;
        }
        break;
      }
      case Category::kDpx:
        p.add({.op = Opcode::kVIMnMx, .rd = value_reg(), .ra = value_reg(),
               .rb = value_reg(), .rc = value_reg(),
               .imm = static_cast<std::int64_t>(rng.below(4))});
        break;
      case Category::kTensor:
        p.hmma(value_reg(), value_reg(), value_reg(), value_reg());
        break;
      case Category::kLdg: {
        emit_global_addr();
        const auto op = rng.below(2) ? Opcode::kLdgCa : Opcode::kLdgCg;
        p.add({.op = op, .rd = value_reg(), .ra = kRegGlobalAddr,
               .access_bytes = random_width()});
        break;
      }
      case Category::kSmem: {
        // Thread-private slot at [R1] — no other thread ever touches it.
        switch (rng.below(3)) {
          case 0:
            p.add({.op = Opcode::kSts, .ra = kRegSlot, .rb = value_reg()});
            break;
          case 1:
            p.lds(value_reg(), kRegSlot);
            break;
          default:
            p.add({.op = Opcode::kAtomSharedAdd,
                   .rd = rng.below(2) ? value_reg() : kRegNone,
                   .ra = kRegSlot, .rb = value_reg()});
            break;
        }
        break;
      }
      case Category::kRoSmem: {
        emit_window_addr();
        if (window_atomics) {
          // Commutative, destination-less adds: the final image is
          // order-independent even across blocks sharing the SM's smem.
          p.add({.op = Opcode::kAtomSharedAdd, .ra = kRegRoAddr,
                 .rb = value_reg()});
        } else {
          p.lds(value_reg(), kRegRoAddr);
        }
        break;
      }
      case Category::kBarrier:
        p.bar_sync();
        break;
      case Category::kTimingOnly: {
        switch (rng.below(4)) {
          case 0:
            emit_global_addr();
            p.add({.op = Opcode::kStg, .ra = kRegGlobalAddr, .rb = value_reg(),
                   .access_bytes = random_width()});
            break;
          case 1: {
            emit_window_addr();
            const auto which = rng.below(3);
            if (which == 0) {
              p.add({.op = Opcode::kLdsRemote, .rd = value_reg(),
                     .ra = kRegRoAddr});
            } else if (which == 1) {
              p.add({.op = Opcode::kStsRemote, .ra = kRegRoAddr,
                     .rb = value_reg()});
            } else {
              p.add({.op = Opcode::kAtomRemoteAdd, .ra = kRegRoAddr,
                     .rb = value_reg()});
            }
            break;
          }
          case 2:
            emit_global_addr();
            p.add({.op = Opcode::kCpAsync, .ra = kRegGlobalAddr,
                   .access_bytes = random_width()});
            p.add({.op = Opcode::kCpAsyncCommit});
            p.add({.op = Opcode::kCpAsyncWait});
            break;
          default:
            emit_global_addr();
            p.add({.op = Opcode::kTmaLoad, .ra = kRegGlobalAddr,
                   .imm = 1024 << rng.below(3)});
            break;
        }
        break;
      }
    }
  }

  // A quarter of cases retire through an explicit EXIT on iteration one;
  // the rest run the body to iteration exhaustion.
  if (rng.below(4) == 0) p.add({.op = Opcode::kExit});
  return out;
}

}  // namespace hsim::conformance
