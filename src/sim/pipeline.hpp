// Generic timing primitives shared by all structural models.
//
// Almost every unit in a GPU (cache port, tensor core, DPX unit, DSM link)
// is well described as a pipelined resource: a new operation may begin every
// `initiation_interval` cycles and completes `latency` cycles after it
// starts.  Times are doubles (cycles) so calibrated sub-cycle cadences (e.g.
// a 1.65-cycle mma issue interval) model exactly.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/state_io.hpp"
#include "common/status.hpp"

namespace hsim::sim {

/// A pipelined execution resource.
class PipelinedUnit {
 public:
  PipelinedUnit() = default;
  PipelinedUnit(double initiation_interval, double latency)
      : ii_(initiation_interval), latency_(latency) {
    HSIM_ASSERT(initiation_interval >= 0.0 && latency >= 0.0);
  }

  /// Issue an operation that is ready at `ready_time`.  Returns the
  /// completion time; the unit advances its next-free cursor.
  double issue(double ready_time) noexcept {
    return issue(ready_time, ii_, latency_);
  }

  /// Issue with per-operation cost overrides (e.g. a wider transaction).
  double issue(double ready_time, double ii, double latency) noexcept {
    const double start = std::max(ready_time, next_free_);
    next_free_ = start + ii;
    busy_cycles_ += ii;
    ++ops_;
    return start + latency;
  }

  [[nodiscard]] double next_free() const noexcept { return next_free_; }
  [[nodiscard]] double initiation_interval() const noexcept { return ii_; }
  [[nodiscard]] double latency() const noexcept { return latency_; }
  /// Cycle accounting: total cycles the issue slot was occupied, and how
  /// many operations were issued, since construction / reset().
  [[nodiscard]] double busy_cycles() const noexcept { return busy_cycles_; }
  [[nodiscard]] std::uint64_t ops() const noexcept { return ops_; }

  void reset() noexcept {
    next_free_ = 0.0;
    busy_cycles_ = 0.0;
    ops_ = 0;
  }

  /// Snapshot the dynamic state (ii/latency are construction config and
  /// must match on restore — the snapshot container checks identity).
  void save_state(common::StateWriter& w) const {
    w.f64(next_free_);
    w.f64(busy_cycles_);
    w.u64(ops_);
  }
  void load_state(common::StateReader& r) {
    next_free_ = r.f64();
    busy_cycles_ = r.f64();
    ops_ = r.u64();
  }

 private:
  double ii_ = 1.0;
  double latency_ = 1.0;
  double next_free_ = 0.0;
  double busy_cycles_ = 0.0;
  std::uint64_t ops_ = 0;
};

/// A bandwidth-limited port: transfers are serialised at `bytes_per_cycle`.
class Port {
 public:
  Port() = default;
  explicit Port(double bytes_per_cycle) : bytes_per_cycle_(bytes_per_cycle) {
    HSIM_ASSERT(bytes_per_cycle > 0.0);
  }

  /// Reserve the port for `bytes` starting no earlier than `ready_time`;
  /// returns the time the transfer finishes.
  double transfer(double ready_time, double bytes) noexcept {
    const double start = std::max(ready_time, next_free_);
    const double duration = bytes / bytes_per_cycle_;
    next_free_ = start + duration;
    busy_cycles_ += duration;
    ++ops_;
    return next_free_;
  }

  [[nodiscard]] double next_free() const noexcept { return next_free_; }
  [[nodiscard]] double bytes_per_cycle() const noexcept { return bytes_per_cycle_; }
  /// Cycle accounting mirroring PipelinedUnit.
  [[nodiscard]] double busy_cycles() const noexcept { return busy_cycles_; }
  [[nodiscard]] std::uint64_t ops() const noexcept { return ops_; }
  void reset() noexcept {
    next_free_ = 0.0;
    busy_cycles_ = 0.0;
    ops_ = 0;
  }

  void save_state(common::StateWriter& w) const {
    w.f64(next_free_);
    w.f64(busy_cycles_);
    w.u64(ops_);
  }
  void load_state(common::StateReader& r) {
    next_free_ = r.f64();
    busy_cycles_ = r.f64();
    ops_ = r.u64();
  }

 private:
  double bytes_per_cycle_ = 1.0;
  double next_free_ = 0.0;
  double busy_cycles_ = 0.0;
  std::uint64_t ops_ = 0;
};

}  // namespace hsim::sim
