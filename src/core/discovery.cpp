#include "core/discovery.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"

namespace hsim::core {

std::vector<SweepPoint> latency_sweep(const arch::DeviceSpec& device,
                                      mem::MemSpace space, SweepConfig config) {
  HSIM_ASSERT(config.min_bytes >= config.stride * 2);
  HSIM_ASSERT(config.step_factor > 1.0);
  std::vector<SweepPoint> out;
  Xoshiro256ss rng(config.seed);

  for (double ws_f = static_cast<double>(config.min_bytes);
       ws_f <= static_cast<double>(config.max_bytes);
       ws_f *= config.step_factor) {
    const auto ws = static_cast<std::uint64_t>(ws_f);
    const auto n = static_cast<std::uint32_t>(ws / config.stride);
    if (n < 2) continue;

    mem::MemorySystem memsys(device, 1);
    memsys.warm(0, ws, space == mem::MemSpace::kGlobalCa
                           ? mem::MemSpace::kGlobalCa
                           : mem::MemSpace::kGlobalCg);

    const auto chain = random_cycle(n, rng);
    double now = 0;
    std::uint32_t index = 0;
    for (std::uint64_t i = 0; i < config.chase_iterations; ++i) {
      const std::uint64_t addr = static_cast<std::uint64_t>(index) * config.stride;
      now = memsys.load(0, addr, space, now).ready_time;
      index = chain[index];
    }
    out.push_back({ws, now / static_cast<double>(config.chase_iterations)});
  }
  return out;
}

Expected<DiscoveredLevel> find_capacity_step(const std::vector<SweepPoint>& sweep,
                                             double tolerance) {
  if (sweep.size() < 3) return invalid_argument("sweep too short");
  const double base = sweep.front().avg_latency;

  DiscoveredLevel out;
  out.hit_latency = base;
  bool stepped = false;
  for (const auto& point : sweep) {
    if (point.avg_latency <= base + tolerance) {
      if (!stepped) out.capacity_bytes = point.working_set;
    } else {
      stepped = true;
    }
  }
  if (!stepped) {
    return invalid_argument("no capacity step inside the sweep range");
  }
  out.miss_latency = sweep.back().avg_latency;
  return out;
}

Expected<DiscoveredLevel> discover_l1(const arch::DeviceSpec& device) {
  SweepConfig cfg;
  cfg.min_bytes = 8 << 10;
  cfg.max_bytes = 4 * device.memory.l1_bytes_per_sm;
  const auto sweep = latency_sweep(device, mem::MemSpace::kGlobalCa, cfg);
  return find_capacity_step(sweep);
}

Expected<DiscoveredLevel> discover_l2(const arch::DeviceSpec& device) {
  SweepConfig cfg;
  cfg.min_bytes = device.memory.l2_bytes / 8;
  cfg.max_bytes = 2 * device.memory.l2_bytes;
  cfg.stride = 512;  // keep element counts manageable at tens of MiB
  cfg.chase_iterations = 4096;
  const auto sweep = latency_sweep(device, mem::MemSpace::kGlobalCg, cfg);
  return find_capacity_step(sweep, /*tolerance=*/30.0);
}

}  // namespace hsim::core
