// Table IV: latency clocks of different memory scopes on RTX4090 / A100 /
// H800, measured with the p-chase microbenchmark.
//
// All twelve (level, device) cells are independent sweep points, fanned
// across the parallel sweep engine; the rendered tables are bit-identical
// at any --threads value because each point runs its own MemorySystem with
// a seed derived from the point index.
#include <iostream>
#include <optional>

#include "bench/bench_ff.hpp"
#include "bench/bench_util.hpp"
#include "core/pchase.hpp"
#include "prof/pmu.hpp"
#include "trace/sinks.hpp"

namespace {

/// Chase measurement plus the PMU block its loads were counted into.
struct ProfiledChase {
  hsim::core::PChaseResult result;
  hsim::prof::PmuCounters pmu;
};

std::string hit_rate(const hsim::prof::PmuCounters& pmu,
                     hsim::prof::Counter hits, hsim::prof::Counter accesses) {
  const double total = pmu.get(accesses);
  if (total <= 0.0) return "-";
  return hsim::fmt_fixed(100.0 * pmu.get(hits) / total, 1) + "%";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  const arch::DeviceSpec* devices[] = {&arch::rtx4090(), &arch::a100_pcie(),
                                       &arch::h800_pcie()};
  const struct {
    const char* label;
    mem::MemLevel level;
  } rows[] = {
      {"L1 Cache", mem::MemLevel::kL1},
      {"Shared", mem::MemLevel::kShared},
      {"L2 Cache", mem::MemLevel::kL2},
      {"Global", mem::MemLevel::kDram},
  };
  constexpr std::size_t kDevices = 3;
  constexpr std::size_t kRows = 4;

  sim::CycleReport report;
  const auto results = sim::sweep(
      kRows * kDevices,
      [&](sim::SweepContext& ctx) -> std::optional<ProfiledChase> {
        const auto& row = rows[ctx.index() / kDevices];
        const auto* device = devices[ctx.index() % kDevices];
        core::PChaseConfig config;
        config.seed = ctx.seed();
        // Trace the chase: the aggregated breakdown shows which level
        // serviced the dependent accesses, merged deterministically into the
        // cycle report alongside the port-occupancy sample.
        trace::AggregatingSink agg;
        config.sink = &agg;
        // Count the chase's sector traffic too: the companion table shows
        // the hit rates the profiler attributes to each level.
        ProfiledChase chase;
        config.pmu = &chase.pmu;
        auto result = core::pchase(*device, row.level, config);
        if (!result) return std::nullopt;
        ctx.record(result.value().usage);
        if (!agg.empty()) {
          ctx.record(agg.to_cycle_sample(result.value().usage.label + ".trace",
                                         result.value().usage.total_cycles));
        }
        chase.result = std::move(result).value();
        return chase;
      },
      bench::sweep_options(opt), &report);
  const auto cell = [&](std::size_t row, std::size_t dev) {
    return results[row * kDevices + dev];
  };

  Table table("Table IV: Latency clocks of different memory scopes");
  table.set_header({"Type", "RTX4090", "A100", "H800"});
  for (std::size_t r = 0; r < kRows; ++r) {
    std::vector<std::string> cells{rows[r].label};
    for (std::size_t d = 0; d < kDevices; ++d) {
      const auto& result = cell(r, d);
      cells.push_back(
          result ? fmt_fixed(result->result.avg_latency_cycles, 1) : "err");
    }
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);

  // Companion finding from the paper: cross-level latency ratios.
  Table ratios("Latency ratios (paper: L2/L1 ~ 6.5x, Global/L2 ~ 1.9x)");
  ratios.set_header({"Device", "L2/L1", "Global/L2"});
  for (std::size_t d = 0; d < kDevices; ++d) {
    const auto& l1 = cell(0, d);
    const auto& l2 = cell(2, d);
    const auto& dram = cell(3, d);
    if (!l1 || !l2 || !dram) continue;
    ratios.add_row(
        {devices[d]->name,
         fmt_fixed(l2->result.avg_latency_cycles / l1->result.avg_latency_cycles,
                   2),
         fmt_fixed(
             dram->result.avg_latency_cycles / l2->result.avg_latency_cycles,
             2)});
  }
  bench::emit(ratios, opt);

  // Profiler view of the same chases: where the dependent loads actually
  // hit.  An L1 chase should be ~100% L1-resident, the L2 chase should
  // miss L1 and hit L2, and the global chase should fall through to DRAM
  // (low L2 hit rate) — the counters make the row labels checkable.
  Table counters("Profiler counters: hit rates seen by each chase (H800)");
  counters.set_header({"Type", "L1 hit", "L2 hit", "TLB miss"});
  constexpr std::size_t kH800 = 2;  // column index in `devices`
  for (std::size_t r = 0; r < kRows; ++r) {
    const auto& result = cell(r, kH800);
    if (!result) continue;
    const auto& pmu = result->pmu;
    counters.add_row(
        {rows[r].label,
         hit_rate(pmu, prof::Counter::kL1SectorHits,
                  prof::Counter::kL1SectorAccesses),
         hit_rate(pmu, prof::Counter::kL2SectorHits,
                  prof::Counter::kL2SectorAccesses),
         hit_rate(pmu, prof::Counter::kTlbMisses,
                  prof::Counter::kTlbAccesses)});
  }
  bench::emit(counters, opt);
  const bench::FastForwardSpec ff_specs[] = {{"mem_global", 2048, 8, 4}};
  bench::emit_fast_forward_section(devices, ff_specs, opt);

  bench::write_report(report, opt, argv[0]);
  return 0;
}
