// Structural timing model for tensor-core instructions.
//
// Every number here is derived from device calibration constants plus the
// instruction's own geometry; none of the paper's table cells appear in
// this file.  The model components:
//   * compute time: ops / (per-SM tensor-core width), adjusted by the
//     accumulate-width factor (Ada halves FP32-accumulate) and a path
//     efficiency;
//   * dispatch overhead: Hopper's mma-compatibility path pays a fixed
//     per-instruction cost (the paper's "62.9% of peak" finding);
//   * sparse cadence floors: Ampere's sparse pipe has a minimum issue
//     interval, so only large sparse shapes reach the claimed 2x;
//   * shared-memory port competition: wgmma in "SS" mode must stream A (at
//     its *dense* size for sparse instructions — the pruning happens inside
//     the unit) and B through the 128 B/clk shared-memory port, which is
//     what makes small-N and sparse-SS wgmma fall off peak;
//   * latency: completion latency grows with the number of k-passes (mma)
//     or with N (wgmma), with per-mode floors.
#pragma once

#include "arch/device.hpp"
#include "common/status.hpp"
#include "isa/ptx.hpp"

namespace hsim::tc {

struct TcTiming {
  double latency = 0;   // completion latency, cycles
  double cadence = 0;   // steady-state issue interval, cycles (back-to-back)
  double ops = 0;       // multiply+add ops credited per instruction
  bool on_tensor_cores = true;

  /// Analytic steady-state device throughput in TFLOPS/TOPS at `clock_hz`
  /// with every SM issuing (the benches *measure* this by simulating the
  /// issue pipeline; the analytic value is the asymptote).
  [[nodiscard]] double throughput_tflops(const arch::DeviceSpec& device) const {
    return ops / cadence * static_cast<double>(device.sm_count) *
           device.clock_hz() / 1e12;
  }
};

/// Timing for one tensor-core instruction on `device`.  Fails where the
/// instruction cannot execute there (FP8 mma, wgmma before Hopper, ...).
Expected<TcTiming> tc_timing(const isa::TcInstr& instr,
                             const arch::DeviceSpec& device);

/// The k granularity of one tensor-core pass for an input type (sets mma
/// completion latency: latency = base + (k_stored / k_base) * per_pass).
int k_base(num::DType ab);

}  // namespace hsim::tc
