#include "tensorcore/sparse.hpp"

#include <algorithm>
#include <array>
#include <cmath>

namespace hsim::tc {

bool is_2_4_sparse(const MatF& m) {
  if (m.cols() % 4 != 0) return false;
  for (int r = 0; r < m.rows(); ++r) {
    for (int g = 0; g < m.cols() / 4; ++g) {
      int nonzeros = 0;
      for (int i = 0; i < 4; ++i) {
        if (m.at(r, g * 4 + i) != 0.0f) ++nonzeros;
      }
      if (nonzeros > 2) return false;
    }
  }
  return true;
}

MatF prune_2_4(const MatF& m) {
  HSIM_ASSERT(m.cols() % 4 == 0);
  MatF out(m.rows(), m.cols());
  for (int r = 0; r < m.rows(); ++r) {
    for (int g = 0; g < m.cols() / 4; ++g) {
      std::array<int, 4> order{0, 1, 2, 3};
      std::sort(order.begin(), order.end(), [&](int a, int b) {
        return std::fabs(m.at(r, g * 4 + a)) > std::fabs(m.at(r, g * 4 + b));
      });
      // Keep the top two magnitudes, zero the rest.
      for (int rank = 0; rank < 4; ++rank) {
        const int col = g * 4 + order[static_cast<std::size_t>(rank)];
        out.at(r, col) = rank < 2 ? m.at(r, col) : 0.0f;
      }
    }
  }
  return out;
}

Sparse24 compress_2_4(const MatF& m) {
  HSIM_ASSERT(m.cols() % 4 == 0);
  HSIM_ASSERT(is_2_4_sparse(m));
  Sparse24 out;
  out.dense_k = m.cols();
  out.values = MatF(m.rows(), m.cols() / 2);
  out.meta.assign(static_cast<std::size_t>(m.rows()) *
                      static_cast<std::size_t>(m.cols() / 4),
                  0);
  for (int r = 0; r < m.rows(); ++r) {
    for (int g = 0; g < m.cols() / 4; ++g) {
      // Pick the positions of (up to) two nonzeros; pad deterministically
      // with unused positions so metadata is always two distinct indices.
      std::array<int, 2> kept{};
      int found = 0;
      for (int i = 0; i < 4 && found < 2; ++i) {
        if (m.at(r, g * 4 + i) != 0.0f) kept[static_cast<std::size_t>(found++)] = i;
      }
      for (int i = 0; i < 4 && found < 2; ++i) {
        if (m.at(r, g * 4 + i) == 0.0f &&
            (found == 0 || kept[0] != i)) {
          kept[static_cast<std::size_t>(found++)] = i;
        }
      }
      out.values.at(r, g * 2 + 0) = m.at(r, g * 4 + kept[0]);
      out.values.at(r, g * 2 + 1) = m.at(r, g * 4 + kept[1]);
      out.meta[static_cast<std::size_t>(r) *
                   static_cast<std::size_t>(m.cols() / 4) +
               static_cast<std::size_t>(g)] =
          static_cast<std::uint8_t>(kept[0] | (kept[1] << 2));
    }
  }
  return out;
}

MatF decompress(const Sparse24& s) {
  MatF out(s.values.rows(), s.dense_k);
  for (int r = 0; r < out.rows(); ++r) {
    for (int g = 0; g < s.dense_k / 4; ++g) {
      const std::uint8_t meta = s.meta_at(r, g);
      const int p0 = meta & 3;
      const int p1 = (meta >> 2) & 3;
      out.at(r, g * 4 + p0) = s.values.at(r, g * 2 + 0);
      out.at(r, g * 4 + p1) = s.values.at(r, g * 2 + 1);
    }
  }
  return out;
}

}  // namespace hsim::tc
