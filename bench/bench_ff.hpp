// Shared --fast-forward section for the paper-table benches.
//
// When a bench is invoked with --fast-forward it appends a validation
// table for its representative kernels: the sampled estimate (functional
// fast-forward + detailed windows) against the exact cycle-accurate run,
// with the cycle error and the fraction of instructions that were
// simulated in detail.  One sweep point per (device, kernel) pair, so the
// section is bit-identical at any --threads like everything else.
#pragma once

#include <cmath>
#include <span>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "bench_util.hpp"
#include "ff/fast_forward.hpp"
#include "trace/kernels.hpp"

namespace hsim::bench {

struct FastForwardSpec {
  std::string kernel;        // trace-kernel name
  std::uint32_t iters = 2048;
  int warps = 8;             // per block; 0 = kernel default
  int blocks = 4;            // 0 = kernel default
};

/// Append the sampled-vs-exact table for `specs` x `devices` to stdout.
/// No-op unless opt.fast_forward.
inline void emit_fast_forward_section(
    std::span<const arch::DeviceSpec* const> devices,
    std::span<const FastForwardSpec> specs, const Options& opt) {
  if (!opt.fast_forward) return;

  struct Point {
    double est = 0;
    double exact = 0;
    double detailed_pct = 0;
  };
  std::vector<Point> points = sim::sweep(
      devices.size() * specs.size(),
      [&](sim::SweepContext& ctx) {
        const auto& device = *devices[ctx.index() / specs.size()];
        const auto& spec = specs[ctx.index() % specs.size()];
        auto kernel = trace::make_trace_kernel(spec.kernel, spec.iters);
        Point point;
        if (!kernel) return point;
        sm::BlockShape shape;
        shape.threads_per_block =
            spec.warps > 0 ? spec.warps * 32 : kernel->threads_per_block;
        shape.blocks = spec.blocks > 0 ? spec.blocks : kernel->blocks;
        const ff::FastForwardEngine engine(device);
        ff::SampleOptions options;
        options.interval = 128;
        options.detail = 2;
        options.warmup = 2;
        const auto sampled =
            engine.sample(kernel->program, shape, kernel->needs_mem, options);
        const auto exact =
            engine.exact(kernel->program, shape, kernel->needs_mem);
        point.est = sampled.cycles_est;
        point.exact = exact.result.cycles;
        point.detailed_pct =
            sampled.instructions > 0
                ? 100.0 * static_cast<double>(sampled.detailed_instructions) /
                      static_cast<double>(sampled.instructions)
                : 0.0;
        return point;
      },
      sweep_options(opt));

  Table table("Fast-forward validation (sampled vs exact cycles)");
  table.set_header(
      {"Device", "Kernel", "Sampled est", "Exact", "Error %", "Detailed %"});
  for (std::size_t d = 0; d < devices.size(); ++d) {
    for (std::size_t k = 0; k < specs.size(); ++k) {
      const auto& point = points[d * specs.size() + k];
      const double err = point.exact > 0
                             ? 100.0 * std::abs(point.est - point.exact) /
                                   point.exact
                             : 0.0;
      table.add_row({devices[d]->name, specs[k].kernel,
                     fmt_fixed(point.est, 0), fmt_fixed(point.exact, 0),
                     fmt_fixed(err, 2), fmt_fixed(point.detailed_pct, 1)});
    }
  }
  emit(table, opt);
}

}  // namespace hsim::bench
