#include "conformance/ref_interp.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <limits>

#include "common/status.hpp"
#include "numerics/types.hpp"

namespace hsim::conformance {
namespace {

float as_f32(std::uint64_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}
std::uint64_t from_f32(float value) {
  return std::bit_cast<std::uint32_t>(value);
}
double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t from_f64(double value) { return std::bit_cast<std::uint64_t>(value); }
std::int32_t as_s32(std::uint64_t bits) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(bits));
}

struct WarpState {
  std::size_t pc = 0;
  std::uint32_t iteration = 0;
  bool done = false;
  bool at_barrier = false;
};

std::uint32_t load_shared_u32(const std::vector<std::uint8_t>& shared,
                              std::uint32_t byte_addr) {
  HSIM_ASSERT(byte_addr + 4 <= shared.size());
  std::uint32_t value;
  std::memcpy(&value, shared.data() + byte_addr, sizeof(value));
  return value;
}

void store_shared_u32(std::vector<std::uint8_t>& shared, std::uint32_t byte_addr,
                      std::uint32_t value) {
  HSIM_ASSERT(byte_addr + 4 <= shared.size());
  std::memcpy(shared.data() + byte_addr, &value, sizeof(value));
}

}  // namespace

RefResult RefInterp::run(const isa::Program& program,
                         const sm::BlockShape& shape) const {
  HSIM_ASSERT(!program.empty());
  HSIM_ASSERT(shape.blocks >= 1 && shape.threads_per_block >= 1);

  int max_reg = 0;
  for (const auto& inst : program.body()) {
    max_reg = std::max({max_reg, inst.rd, inst.ra, inst.rb, inst.rc});
  }
  const int num_regs = max_reg + 1;
  const int warps_per_block = shape.warps_per_block();
  const int total_warps = shape.total_warps();

  RefResult out;
  out.num_regs = num_regs;
  out.regs.assign(static_cast<std::size_t>(total_warps),
                  std::vector<std::uint64_t>(
                      static_cast<std::size_t>(num_regs) * kLanes, 0));
  out.shared.assign(device_.memory.smem_max_per_sm, 0);
  out.issued_per_warp.assign(static_cast<std::size_t>(total_warps), 0);

  // R0 carries the global thread id, lane-varying, like the pipeline.
  for (int w = 0; w < total_warps; ++w) {
    for (int l = 0; l < kLanes; ++l) {
      out.regs[static_cast<std::size_t>(w)][static_cast<std::size_t>(l)] =
          static_cast<std::uint64_t>(w) * kLanes + static_cast<std::uint64_t>(l);
    }
  }

  std::vector<WarpState> warps(static_cast<std::size_t>(total_warps));

  const auto step = [&](int warp_id) {
    auto& w = warps[static_cast<std::size_t>(warp_id)];
    auto& regs = out.regs[static_cast<std::size_t>(warp_id)];
    const auto& inst = program.body()[w.pc];

    const auto lane = [&](int r, int l) -> std::uint64_t {
      return r == isa::kRegNone
                 ? 0
                 : regs[static_cast<std::size_t>(r) * kLanes +
                        static_cast<std::size_t>(l)];
    };
    const auto set_lane = [&](int r, int l, std::uint64_t v) {
      regs[static_cast<std::size_t>(r) * kLanes + static_cast<std::size_t>(l)] = v;
    };
    const auto for_lanes = [&](auto&& fn) {
      if (inst.rd == isa::kRegNone) return;
      for (int l = 0; l < kLanes; ++l) {
        set_lane(inst.rd, l,
                 fn(lane(inst.ra, l), lane(inst.rb, l), lane(inst.rc, l)));
      }
    };
    const auto addr_of = [&](int l) -> std::uint64_t {
      return lane(inst.ra, l) + static_cast<std::uint64_t>(inst.imm);
    };
    const auto load_global_word = [&](std::uint64_t addr) -> std::uint64_t {
      const std::uint64_t index = addr / 8;
      return index < global_.size() ? global_[index] : 0;
    };

    using isa::Opcode;
    switch (inst.op) {
      case Opcode::kNop:
      case Opcode::kExit:
      case Opcode::kBarSync:
      // Timing-only operations: no architectural effect in the pipeline's
      // contract, so none here either.
      case Opcode::kStg:
      case Opcode::kCpAsync:
      case Opcode::kCpAsyncCommit:
      case Opcode::kCpAsyncWait:
      case Opcode::kTmaLoad:
      case Opcode::kLdsRemote:
      case Opcode::kStsRemote:
      case Opcode::kAtomRemoteAdd:
        break;
      case Opcode::kMov:
        for_lanes([&](std::uint64_t, std::uint64_t, std::uint64_t) {
          return static_cast<std::uint64_t>(inst.imm);
        });
        break;
      case Opcode::kIAdd3:
        for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
          return a + b + c;
        });
        break;
      case Opcode::kIMad:
        for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
          return a * b + c;
        });
        break;
      case Opcode::kIMnMx:
        for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t) {
          const auto x = as_s32(a), y = as_s32(b);
          return static_cast<std::uint64_t>(static_cast<std::uint32_t>(
              (inst.imm & 1) ? std::max(x, y) : std::min(x, y)));
        });
        break;
      case Opcode::kVIMnMx:
        for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
          const std::int64_t sum = static_cast<std::int64_t>(as_s32(a)) +
                                   static_cast<std::int64_t>(as_s32(b));
          const auto clamped = static_cast<std::int32_t>(std::clamp<std::int64_t>(
              sum, std::numeric_limits<std::int32_t>::min(),
              std::numeric_limits<std::int32_t>::max()));
          std::int32_t r = (inst.imm & 1) ? std::max(clamped, as_s32(c))
                                          : std::min(clamped, as_s32(c));
          if (inst.imm & 2) r = std::max(r, 0);
          return static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
        });
        break;
      case Opcode::kLop3:
        for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t) {
          switch (inst.imm) {
            case 1: return a | b;
            case 2: return a ^ b;
            default: return a & b;
          }
        });
        break;
      case Opcode::kShf:
        for_lanes([&](std::uint64_t a, std::uint64_t, std::uint64_t) {
          return a << (inst.imm & 63);
        });
        break;
      case Opcode::kPopc:
        for_lanes([](std::uint64_t a, std::uint64_t, std::uint64_t) {
          return static_cast<std::uint64_t>(std::popcount(a));
        });
        break;
      case Opcode::kFAdd:
        for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
          return from_f32(as_f32(a) + as_f32(b));
        });
        break;
      case Opcode::kFMul:
        for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
          return from_f32(as_f32(a) * as_f32(b));
        });
        break;
      case Opcode::kFFma:
      case Opcode::kHMma:  // fragment math stands in as per-lane FP32 FMA
        for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
          return from_f32(as_f32(a) * as_f32(b) + as_f32(c));
        });
        break;
      case Opcode::kHAdd2:
        for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
          using num::fp16;
          std::uint64_t packed = 0;
          for (int half = 0; half < 2; ++half) {
            const auto av =
                fp16::from_bits(static_cast<std::uint16_t>(a >> (16 * half)));
            const auto bv =
                fp16::from_bits(static_cast<std::uint16_t>(b >> (16 * half)));
            const auto sum = fp16(av.to_float() + bv.to_float());
            packed |= static_cast<std::uint64_t>(sum.bits()) << (16 * half);
          }
          return packed;
        });
        break;
      case Opcode::kDAdd:
        for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
          return from_f64(as_f64(a) + as_f64(b));
        });
        break;
      case Opcode::kDMul:
        for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
          return from_f64(as_f64(a) * as_f64(b));
        });
        break;
      case Opcode::kClock:
        // A timing-free interpreter has no cycle counter; the differ must
        // not compare registers once one of these executes.
        out.clock_tainted = true;
        for_lanes([](std::uint64_t, std::uint64_t, std::uint64_t) {
          return std::uint64_t{0};
        });
        break;
      case Opcode::kMapa:
        if (inst.rd != isa::kRegNone) {
          for (int l = 0; l < kLanes; ++l) set_lane(inst.rd, l, addr_of(l));
        }
        break;
      case Opcode::kLdgCa:
      case Opcode::kLdgCg:
        if (inst.rd != isa::kRegNone) {
          for (int l = 0; l < kLanes; ++l) {
            set_lane(inst.rd, l, load_global_word(addr_of(l)));
          }
        }
        break;
      case Opcode::kLds:
        out.used_shared = true;
        if (inst.rd != isa::kRegNone) {
          for (int l = 0; l < kLanes; ++l) {
            const auto byte_addr =
                static_cast<std::uint32_t>(addr_of(l) % out.shared.size());
            set_lane(inst.rd, l, load_shared_u32(out.shared, byte_addr));
          }
        }
        break;
      case Opcode::kSts:
        out.used_shared = true;
        if (inst.ra != isa::kRegNone) {
          for (int l = 0; l < kLanes; ++l) {
            const auto byte_addr =
                static_cast<std::uint32_t>(addr_of(l) % out.shared.size());
            store_shared_u32(out.shared, byte_addr,
                             static_cast<std::uint32_t>(lane(inst.rb, l)));
          }
        }
        break;
      case Opcode::kAtomSharedAdd:
        out.used_shared = true;
        for (int l = 0; l < kLanes; ++l) {
          const auto byte_addr =
              static_cast<std::uint32_t>(addr_of(l) % out.shared.size());
          const std::uint32_t old = load_shared_u32(out.shared, byte_addr);
          store_shared_u32(out.shared, byte_addr,
                           old + static_cast<std::uint32_t>(lane(inst.rb, l)));
          if (inst.rd != isa::kRegNone) set_lane(inst.rd, l, old);
        }
        break;
    }

    ++out.issued_per_warp[static_cast<std::size_t>(warp_id)];
    ++out.instructions;

    if (inst.op == Opcode::kExit) {
      w.done = true;
      out.retire_order.push_back(warp_id);
      return;
    }
    if (inst.op == Opcode::kBarSync) w.at_barrier = true;
    ++w.pc;
    if (w.pc >= program.size()) {
      w.pc = 0;
      ++w.iteration;
      if (w.iteration >= program.iterations()) {
        w.done = true;
        out.retire_order.push_back(warp_id);
      }
    }
  };

  for (;;) {
    // Barrier release: once every live warp of a block is parked, unpark.
    for (int b = 0; b * warps_per_block < total_warps; ++b) {
      int alive = 0, waiting = 0;
      for (int i = 0; i < warps_per_block; ++i) {
        const auto& w = warps[static_cast<std::size_t>(b * warps_per_block + i)];
        if (!w.done) ++alive;
        if (w.at_barrier) ++waiting;
      }
      if (alive > 0 && waiting == alive) {
        for (int i = 0; i < warps_per_block; ++i) {
          warps[static_cast<std::size_t>(b * warps_per_block + i)].at_barrier =
              false;
        }
      }
    }
    bool progress = false;
    int live = 0;
    for (int i = 0; i < total_warps; ++i) {
      auto& w = warps[static_cast<std::size_t>(i)];
      if (w.done) continue;
      ++live;
      if (w.at_barrier) continue;
      step(i);
      progress = true;
    }
    if (live == 0) break;
    // Uniform control flow (every warp runs the same straight-line body)
    // cannot deadlock at a barrier; anything else is an interpreter bug.
    HSIM_ASSERT(progress || live == 0);
  }
  return out;
}

}  // namespace hsim::conformance
