#include "common/rng.hpp"

#include <numeric>

namespace hsim {

std::vector<std::uint32_t> random_permutation(std::uint32_t n, Xoshiro256ss& rng) {
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t i = n; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(rng.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

std::vector<std::uint32_t> random_cycle(std::uint32_t n, Xoshiro256ss& rng) {
  HSIM_ASSERT(n >= 1);
  // Sattolo's algorithm produces a permutation that is a single n-cycle.
  std::vector<std::uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  for (std::uint32_t i = n; i > 1; --i) {
    const auto j = static_cast<std::uint32_t>(rng.below(i - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace hsim
