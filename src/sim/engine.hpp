// Discrete-event simulation engine.
//
// Used where cycle-by-cycle stepping would be wasteful: the DSM fabric and
// the asynchronous-copy pipeline schedule completion events at arbitrary
// future times.  Deterministic: ties are broken by insertion order.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/status.hpp"

namespace hsim::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `fn` at absolute time `when` (cycles).  Must not be earlier
  /// than the current time.
  void schedule(double when, Callback fn) {
    HSIM_ASSERT_MSG(when >= now_, "schedule into the past: when=%.17g now=%.17g",
                    when, now_);
    heap_.push(Event{when, sequence_++, std::move(fn)});
  }

  /// Schedule `fn` `delay` cycles from now.
  void schedule_after(double delay, Callback fn) {
    schedule(now_ + delay, std::move(fn));
  }

  [[nodiscard]] double now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Run events until the queue drains.  Returns the final time.
  double run() {
    while (!heap_.empty()) step();
    return now_;
  }

  /// Run events with time <= `until` (later events stay queued).
  double run_until(double until) {
    while (!heap_.empty() && heap_.top().when <= until) step();
    now_ = std::max(now_, until);
    return now_;
  }

  void reset() {
    heap_ = {};
    now_ = 0.0;
    sequence_ = 0;
  }

 private:
  struct Event {
    double when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  void step() {
    // Copy out before popping: the callback may schedule new events.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ev.fn();
  }

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  double now_ = 0.0;
  std::uint64_t sequence_ = 0;
};

}  // namespace hsim::sim
