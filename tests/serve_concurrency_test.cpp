// `hsim serve` under concurrency: N sessions on one shared engine issuing
// interleaved identical queries must all get byte-identical replies, at
// engine thread counts 1, 4 and 8; the cache-hit path must produce the
// exact bytes of the cold path; and the load-shedding / deadline layers
// must reply with structured errors instead of wedging.  Runs under the
// tsan-concurrency preset (label `concurrency`).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/json.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "serve/session.hpp"

namespace hsim::serve {
namespace {

const char* const kQueries[] = {
    R"({"id":1,"verb":"simulate","params":)"
    R"({"device":"h800","kernel":"ffma_dep","iters":64}})",
    R"({"id":2,"verb":"simulate","params":)"
    R"({"device":"h800","kernel":"mem_l2","iters":64}})",
    R"({"id":3,"verb":"trace","params":)"
    R"({"device":"h800","kernel":"smem_conflict","iters":64,"top":5}})",
    R"({"id":4,"verb":"profile","params":)"
    R"({"device":"a100","kernel":"ffma_tput","iters":64}})",
    R"({"id":5,"verb":"sweep","params":{"device":"h800",)"
    R"("kernel":"ffma_dep","iters":32,"warps_list":[1,2],"blocks_list":[1]}})",
};
constexpr std::size_t kQueryCount = std::size(kQueries);

class ServeConcurrency : public ::testing::TestWithParam<int> {};

TEST_P(ServeConcurrency, InterleavedSessionsGetByteIdenticalReplies) {
  const int engine_threads = GetParam();

  // Reference bytes from a fresh single-session engine.
  std::vector<std::string> expected(kQueryCount);
  {
    ServeOptions options;
    options.threads = engine_threads;
    ServeEngine engine(options);
    Session session(engine);
    for (std::size_t q = 0; q < kQueryCount; ++q) {
      expected[q] = session.handle_line(kQueries[q]);
    }
  }

  ServeOptions options;
  options.threads = engine_threads;
  ServeEngine engine(options);

  constexpr int kSessions = 8;
  constexpr int kRounds = 3;
  std::vector<std::vector<std::string>> replies(kSessions);
  std::vector<std::thread> clients;
  clients.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    clients.emplace_back([s, &engine, &replies] {
      Session session(engine, /*session_id=*/s + 1);
      // Each session starts at a different query so hot/cold interleave.
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t q = 0; q < kQueryCount; ++q) {
          const std::size_t pick =
              (q + static_cast<std::size_t>(s)) % kQueryCount;
          replies[static_cast<std::size_t>(s)].push_back(
              session.handle_line(kQueries[pick]));
        }
      }
    });
  }
  for (auto& t : clients) t.join();

  for (int s = 0; s < kSessions; ++s) {
    std::size_t i = 0;
    for (int round = 0; round < kRounds; ++round) {
      for (std::size_t q = 0; q < kQueryCount; ++q, ++i) {
        const std::size_t pick =
            (q + static_cast<std::size_t>(s)) % kQueryCount;
        EXPECT_EQ(replies[static_cast<std::size_t>(s)][i], expected[pick])
            << "session " << s << " round " << round << " query " << pick
            << " threads " << engine_threads;
      }
    }
  }

  // Every query computed at most once; everything else was a hit, and the
  // conservation law held under contention.
  const auto stats = engine.cache().stats();
  EXPECT_EQ(stats.lookups,
            static_cast<std::uint64_t>(kSessions) * kRounds * kQueryCount);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_EQ(stats.entries, kQueryCount);
  // Under a race two sessions may both miss and compute the same query, but
  // never more than one miss per (session, query) pair.
  EXPECT_GE(stats.misses, kQueryCount);
  EXPECT_LE(stats.misses,
            static_cast<std::uint64_t>(kSessions) * kQueryCount);
}

INSTANTIATE_TEST_SUITE_P(Threads, ServeConcurrency, ::testing::Values(1, 4, 8),
                         [](const auto& param_info) {
                           return "threads" + std::to_string(param_info.param);
                         });

TEST(ServeConcurrencyPolicy, CacheHitBytesEqualColdBytesAcrossEngines) {
  // Cold reply from engine A; cold-then-hit replies from engine B.  All
  // three must be the same bytes: the cache stores the serialized payload
  // and the reply envelope is built by the same code either way.
  const std::string query =
      R"({"id":9,"verb":"simulate","params":)"
      R"({"device":"h800","kernel":"mem_l1","iters":128}})";
  ServeEngine engine_a;
  Session session_a(engine_a);
  const std::string cold_a = session_a.handle_line(query);

  ServeEngine engine_b;
  Session session_b(engine_b);
  const std::string cold_b = session_b.handle_line(query);
  const std::string hit_b = session_b.handle_line(query);
  EXPECT_EQ(cold_a, cold_b);
  EXPECT_EQ(cold_b, hit_b);
  EXPECT_EQ(engine_b.cache().stats().hits, 1u);
}

TEST(ServeConcurrencyPolicy, SharedCacheAcrossSessionsHitsAfterOneMiss) {
  ServeEngine engine;
  Session first(engine, 1);
  Session second(engine, 2);
  const std::string query =
      R"({"id":1,"verb":"simulate","params":)"
      R"({"device":"h800","kernel":"ffma_dep","iters":64}})";
  const std::string a = first.handle_line(query);
  const std::string b = second.handle_line(query);
  EXPECT_EQ(a, b);
  EXPECT_EQ(engine.cache().stats().misses, 1u);
  EXPECT_EQ(engine.cache().stats().hits, 1u);
}

TEST(ServeConcurrencyPolicy, OverloadShedsWithResourceExhausted) {
  ServeOptions options;
  options.max_inflight = 0;  // everything beyond the cache is "too busy"
  ServeEngine engine(options);
  Session session(engine);
  const std::string reply = session.handle_line(
      R"({"id":1,"verb":"simulate","params":)"
      R"({"device":"h800","kernel":"ffma_dep","iters":32}})");
  const auto root = json::parse(reply);
  ASSERT_TRUE(root.has_value()) << reply;
  EXPECT_EQ(root.value().find("error")->find("code")->as_string(),
            "resource_exhausted");
  EXPECT_FALSE(session.closed());
  EXPECT_EQ(engine.counters().rejected, 1u);
  // Control verbs bypass the execution queue and still answer.
  EXPECT_NE(session.handle_line(R"({"id":2,"verb":"stats"})")
                .find("\"ok\":true"),
            std::string::npos);
}

TEST(ServeConcurrencyPolicy, DeadlineExceededIsAnErrorThenARetryHits) {
  ServeOptions options;
  options.threads = 2;
  ServeEngine engine(options);
  Session session(engine);
  // An absurdly small deadline on a nontrivial query: the reply must be
  // deadline_exceeded (never a hang), while the computation finishes in the
  // background and populates the cache.
  const std::string tight = R"({"id":1,"verb":"simulate","params":)"
                            R"({"device":"h800","kernel":"mem_global",)"
                            R"("iters":2048,"timeout_ms":0.0001}})";
  const std::string reply = session.handle_line(tight);
  const auto root = json::parse(reply);
  ASSERT_TRUE(root.has_value()) << reply;
  ASSERT_NE(root.value().find("error"), nullptr) << reply;
  EXPECT_EQ(root.value().find("error")->find("code")->as_string(),
            "deadline_exceeded");
  EXPECT_EQ(engine.counters().timeouts, 1u);

  // Same query without the hint: once the background job lands, this is a
  // cache hit with the canonical bytes.  Poll-free: a generous-deadline
  // variant of the same identity blocks until the job's insert or computes
  // it again — either way the reply is the canonical bytes.
  const std::string relaxed = R"({"id":2,"verb":"simulate","params":)"
                              R"({"device":"h800","kernel":"mem_global",)"
                              R"("iters":2048}})";
  const std::string ok_reply = session.handle_line(relaxed);
  EXPECT_NE(ok_reply.find("\"ok\":true"), std::string::npos) << ok_reply;

  ServeEngine cold_engine;
  Session cold_session(cold_engine);
  const std::string cold = cold_session.handle_line(relaxed);
  EXPECT_EQ(ok_reply, cold);
}

TEST(ServeConcurrencyPolicy, ConcurrentStatsNeverViolateConservation) {
  ServeEngine engine;
  std::atomic<bool> stop{false};
  std::thread reader([&engine, &stop] {
    while (!stop.load()) {
      const auto stats = engine.cache().stats();
      ASSERT_EQ(stats.hits + stats.misses, stats.lookups);
    }
  });
  std::vector<std::thread> writers;
  for (int s = 0; s < 4; ++s) {
    writers.emplace_back([&engine, s] {
      Session session(engine, s);
      for (int i = 0; i < 8; ++i) {
        (void)session.handle_line(
            R"({"id":1,"verb":"simulate","params":)"
            R"({"device":"h800","kernel":"ffma_dep","iters":)" +
            std::to_string(32 + (i % 4)) + "}}");
      }
    });
  }
  for (auto& t : writers) t.join();
  stop.store(true);
  reader.join();
  const auto stats = engine.cache().stats();
  EXPECT_EQ(stats.lookups, 32u);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

}  // namespace
}  // namespace hsim::serve
