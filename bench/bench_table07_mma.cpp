// Table VII: dense and sparse mma latency / throughput on A100, RTX4090
// and H800 tensor cores.
#include <tuple>
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/tcbench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);

  const arch::DeviceSpec* devices[] = {&arch::a100_pcie(), &arch::rtx4090(),
                                       &arch::h800_pcie()};

  struct Row {
    DType ab;
    DType cd;
    int k_dense;   // table shape (compressed shape for sparse rows)
  };
  const Row rows[] = {
      {DType::kFp16, DType::kFp16, 8},  {DType::kFp16, DType::kFp16, 16},
      {DType::kFp16, DType::kFp32, 8},  {DType::kFp16, DType::kFp32, 16},
      {DType::kTf32, DType::kFp32, 4},  {DType::kTf32, DType::kFp32, 8},
      {DType::kInt8, DType::kInt32, 16}, {DType::kInt8, DType::kInt32, 32},
  };

  Table table(
      "Table VII: mma LAT (cycles) / throughput (TFLOPS|TOPS), dense and "
      "2:4-sparse");
  table.set_header({"A/B", "C/D", "Shape", "A100 D", "A100 S", "4090 D",
                    "4090 S", "H800 D", "H800 S"});

  for (const auto& row : rows) {
    std::vector<std::string> cells{
        std::string(num::to_string(row.ab)), std::string(num::to_string(row.cd)),
        "m16n8k" + std::to_string(row.k_dense)};
    for (const auto* device : devices) {
      const isa::TcInstr dense{.path = isa::TcPath::kMma,
                               .shape = {16, 8, row.k_dense},
                               .ab = row.ab,
                               .cd = row.cd,
                               .sparse = false};
      // Sparse rows list the compressed shape; the instruction modifier
      // doubles k.
      const isa::TcInstr sparse{.path = isa::TcPath::kMma,
                                .shape = {16, 8, 2 * row.k_dense},
                                .ab = row.ab,
                                .cd = row.cd,
                                .sparse = true};
      const auto d = core::bench_tc(dense, *device);
      const auto s = core::bench_tc(sparse, *device);
      cells.push_back(d ? fmt_lat_tput(d.value().latency_cycles,
                                       d.value().tflops_rand)
                        : "x");
      cells.push_back(s ? fmt_lat_tput(s.value().latency_cycles,
                                       s.value().tflops_rand)
                        : "x");
    }
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);

  // The paper's headline findings around this table.
  Table findings("mma findings: fraction of peak (dense, larger shape)");
  findings.set_header({"Device", "FP16 frac", "TF32 frac", "INT8 frac"});
  for (const auto* device : devices) {
    std::vector<std::string> cells{device->name};
    for (const auto& [ab, cd, k] :
         {std::tuple{DType::kFp16, DType::kFp16, 16},
          std::tuple{DType::kTf32, DType::kFp32, 8},
          std::tuple{DType::kInt8, DType::kInt32, 32}}) {
      const isa::TcInstr instr{.path = isa::TcPath::kMma, .shape = {16, 8, k},
                               .ab = ab, .cd = cd};
      const auto r = core::bench_tc(instr, *device);
      if (!r) {
        cells.push_back("x");
        continue;
      }
      cells.push_back(
          fmt_fixed(r.value().tflops_rand / device->tc_peak_tflops(ab), 3));
    }
    findings.add_row(std::move(cells));
  }
  bench::emit(findings, opt);
  return 0;
}
