// Extension: roofline positions of the paper's workloads on each device.
// Ridge points come from the measured (not datasheet) bandwidths and
// tensor-core rates, so this is the analysis a reader would build from the
// paper's Tables V and VII-X.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/membench.hpp"
#include "core/tcbench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);

  Table table("Rooflines from measured numbers");
  table.set_header({"Device", "mem GB/s", "FP16 TFLOPS", "FP8 TFLOPS",
                    "ridge FP16 (flop/B)", "ridge FP8"});
  for (const auto* device : arch::all_devices()) {
    const auto mem_result = core::measure_global_throughput(*device);
    if (!mem_result) continue;
    const double gbps = mem_result.value().gbps;

    const auto tc_rate = [&](DType ab) -> double {
      if (device->tc.has_wgmma) {
        const isa::TcInstr instr{
            .path = isa::TcPath::kWgmma,
            .shape = {64, 256, num::is_fp8(ab) ? 32 : 16},
            .ab = ab, .cd = DType::kFp32,
            .a_src = isa::OperandSource::kSharedMemory};
        const auto r = core::bench_tc(instr, *device);
        return r ? r.value().tflops_rand : 0.0;
      }
      const isa::TcInstr instr{.path = isa::TcPath::kMma,
                               .shape = {16, 8, 16},
                               .ab = ab, .cd = DType::kFp32};
      const auto r = core::bench_tc(instr, *device);
      return r ? r.value().tflops_rand : 0.0;
    };
    const double fp16 = tc_rate(DType::kFp16);
    const double fp8 = device->tc.has_wgmma ? tc_rate(DType::kFp8E4M3) : 0.0;
    table.add_row({device->name, fmt_fixed(gbps, 0), fmt_fixed(fp16, 0),
                   fp8 > 0 ? fmt_fixed(fp8, 0) : "-",
                   fmt_fixed(fp16 * 1e12 / (gbps * 1e9), 0),
                   fp8 > 0 ? fmt_fixed(fp8 * 1e12 / (gbps * 1e9), 0) : "-"});
  }
  bench::emit(table, opt);

  // Where the paper's workloads sit relative to those ridges.
  Table workloads("Arithmetic intensity of the paper's workloads (flop/byte)");
  workloads.set_header({"workload", "intensity", "bound on H800 (ridge ~358)"},
                       {Align::kLeft, Align::kRight, Align::kLeft});
  const auto add = [&](const std::string& name, double flops, double bytes) {
    const double intensity = flops / bytes;
    workloads.add_row({name, fmt_fixed(intensity, 1),
                       intensity > 358 ? "compute" : "memory"});
  };
  // te.Linear N=16384 fp16: 2N^3 flops, 3N^2*2 bytes.
  add("te.Linear N=16384 (fp16)", 2.0 * 16384 * 16384 * 16384,
      3.0 * 16384 * 16384 * 2);
  add("te.Linear N=1024 (fp16)", 2.0 * 1024 * 1024 * 1024,
      3.0 * 1024 * 1024 * 2);
  // LLM decode step, llama-7B bf16: 2*params flops, params*2 bytes.
  add("llama-7B decode step (bf16)", 2.0 * 6.7e9, 6.7e9 * 2);
  // DSM histogram: ~10 flops per 4-byte element.
  add("DSM histogram", 10.0, 4.0);
  bench::emit(workloads, opt);

  std::cout << "The decode step's intensity (~1 flop/B) sits three orders of "
               "magnitude below the FP8 ridge: exactly why Table XII shows "
               "no FP8 speedup for generation.\n";
  return 0;
}
