// Table VI: SASS instructions for different Hopper tensor-core PTX
// instructions — including the INT4 IMAD fallback and the missing FP8 mma.
#include <iostream>

#include "bench/bench_util.hpp"
#include "isa/ptx.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);
  const auto& h800 = arch::h800_pcie();

  Table table("Table VI: SASS for Hopper tensor-core PTX instructions");
  table.set_header({"A/B", "C/D", "mma", "wgmma"},
                   {Align::kLeft, Align::kLeft, Align::kLeft, Align::kLeft});

  struct Row {
    DType ab;
    DType cd;
    isa::TcShape mma_shape;
    isa::TcShape wgmma_shape;
  };
  const Row rows[] = {
      {DType::kFp16, DType::kFp16, {16, 8, 16}, {64, 256, 16}},
      {DType::kFp16, DType::kFp32, {16, 8, 16}, {64, 256, 16}},
      {DType::kTf32, DType::kFp32, {16, 8, 8}, {64, 256, 8}},
      {DType::kFp8E5M2, DType::kFp16, {16, 8, 32}, {64, 256, 32}},
      {DType::kFp8E4M3, DType::kFp16, {16, 8, 32}, {64, 256, 32}},
      {DType::kFp8E4M3, DType::kFp32, {16, 8, 32}, {64, 256, 32}},
      {DType::kFp8E5M2, DType::kFp32, {16, 8, 32}, {64, 256, 32}},
      {DType::kInt8, DType::kInt32, {16, 8, 32}, {64, 256, 32}},
      {DType::kInt4, DType::kInt32, {16, 8, 64}, {64, 256, 64}},
      {DType::kBinary, DType::kInt32, {16, 8, 256}, {64, 256, 256}},
  };

  for (const auto& row : rows) {
    isa::TcInstr mma{.path = isa::TcPath::kMma, .shape = row.mma_shape,
                     .ab = row.ab, .cd = row.cd};
    isa::TcInstr wgmma{.path = isa::TcPath::kWgmma, .shape = row.wgmma_shape,
                       .ab = row.ab, .cd = row.cd};
    const auto mma_sass = isa::compile_to_sass(mma, h800);
    const auto wgmma_sass = isa::compile_to_sass(wgmma, h800);
    table.add_row({std::string(num::to_string(row.ab)),
                   std::string(num::to_string(row.cd)),
                   mma_sass ? mma_sass.value() : "x",
                   wgmma_sass ? wgmma_sass.value() : "x"});
  }
  bench::emit(table, opt);

  std::cout << "Note: INT4 mma lowers to IMAD on CUDA cores (Hopper only); "
               "FP8 is reachable only through wgmma.\n";
  return 0;
}
