// Wire protocol for `hsim serve`: newline-delimited JSON requests/replies.
//
// Request grammar (one JSON object per line):
//   {"id": <u64>, "verb": "<verb>", "params": { ... }}
// "id" is a caller-chosen per-session request id, echoed verbatim in the
// reply; "params" is optional (defaults to {}).  Unknown top-level keys are
// rejected — lenient framing is how protocol drift sneaks in.
//
// Reply grammar (one JSON object per line, canonical key order):
//   {"id": <u64|null>, "ok": true,  "result": { ... }}
//   {"id": <u64|null>, "ok": false, "error": {"code": "...", "message": "..."}}
// "id" is null only when the request was too malformed to carry one.  The
// reply builders are the single source of reply bytes: the cold dispatch
// path and the result-cache hit path both call make_ok_reply with the same
// serialized payload, which is what makes cached replies bit-identical.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/json.hpp"
#include "common/status.hpp"

namespace hsim::serve {

/// Protocol identifier, reported by `ping` and `stats`.
inline constexpr std::string_view kProtocolVersion = "hsim-serve-v1";

/// Code version folded into every result-cache key: bump when simulator
/// semantics change so stale cached results can never be served across a
/// rebuild that changed what a query means.
inline constexpr std::string_view kCodeVersion = "hoppersim-1.0.0+serve1";

/// Hard cap on a single request line; longer lines are rejected with a
/// structured error before parsing (and the TCP reader resynchronises at
/// the next newline instead of buffering without bound).
inline constexpr std::size_t kMaxRequestBytes = 1 << 20;

struct Request {
  std::uint64_t id = 0;
  std::string verb;
  json::Object params;
};

/// Parse one request line.  Strict: JSON object, required unsigned "id",
/// required string "verb", optional object "params", nothing else.
[[nodiscard]] Expected<Request> parse_request(std::string_view line);

/// Best-effort id recovery from a line whose full parse failed (e.g. bad
/// params type): if the line parses as JSON and carries an unsigned "id",
/// return it so even error replies echo the request they answer.
[[nodiscard]] std::optional<std::uint64_t> recover_request_id(
    std::string_view line);

/// Reply builders (no trailing newline; the framing layer appends it).
[[nodiscard]] std::string make_ok_reply(std::uint64_t id,
                                        std::string_view result_payload);
[[nodiscard]] std::string make_error_reply(std::optional<std::uint64_t> id,
                                           const Error& error);

}  // namespace hsim::serve
