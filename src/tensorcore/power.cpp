#include "tensorcore/power.hpp"

#include <algorithm>

namespace hsim::tc {

PowerResult apply_power(const isa::TcInstr& instr,
                        const arch::DeviceSpec& device,
                        double unthrottled_tflops, bool random_data) {
  const auto& p = device.power;
  const bool wgmma = instr.path == isa::TcPath::kWgmma;
  double pj = (wgmma ? p.wgmma_pj : p.mma_pj).lookup(instr.ab, instr.cd);
  if (instr.sparse) {
    pj *= wgmma ? p.wgmma_sparse_energy_factor : p.mma_sparse_energy_factor;
  }
  const double toggle = random_data ? 1.0 : p.zero_toggle_factor;

  PowerResult out;
  out.clock_mhz = device.observed_clock_mhz;
  out.throughput_tflops = unthrottled_tflops;
  // rate (ops/s) * pj (1e-12 J/op) == TFLOPS-numbers * pj in watts.
  out.power_w = p.idle_w + unthrottled_tflops * pj * toggle;
  if (out.power_w > p.board_limit_w && pj > 0.0 && toggle > 0.0) {
    out.throttled = true;
    const double sustainable = (p.board_limit_w - p.idle_w) / (pj * toggle);
    const double scale = sustainable / unthrottled_tflops;
    out.throughput_tflops = sustainable;
    out.clock_mhz = device.observed_clock_mhz * scale;
    out.power_w = p.board_limit_w;
  }
  return out;
}

}  // namespace hsim::tc
