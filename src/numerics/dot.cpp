#include "numerics/dot.hpp"

#include <bit>

#include "common/status.hpp"

namespace hsim::num {

float dot_accumulate_fp32(std::span<const float> a, std::span<const float> b,
                          float c) noexcept {
  HSIM_ASSERT(a.size() == b.size());
  float acc = c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    // Product is exact for <=12-bit significands; the FP32 multiply below is
    // itself correctly rounded, so for FP16/TF32/FP8 inputs this is exact.
    acc += a[i] * b[i];  // each partial sum rounded to FP32 (RNE)
  }
  return acc;
}

fp16 dot_accumulate_fp16(std::span<const float> a, std::span<const float> b,
                         fp16 c) noexcept {
  HSIM_ASSERT(a.size() == b.size());
  float acc = c.to_float();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const float prod = a[i] * b[i];  // exact for FP16 inputs
    acc = round_through(acc + prod, kFp16Spec);
  }
  return fp16(acc);
}

std::int32_t dot_accumulate_s32(std::span<const std::int8_t> a,
                                std::span<const std::int8_t> b,
                                std::int32_t c) noexcept {
  HSIM_ASSERT(a.size() == b.size());
  std::int64_t acc = c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += static_cast<std::int32_t>(a[i]) * static_cast<std::int32_t>(b[i]);
  }
  // IMMA accumulators are 32-bit; wraparound matches hardware.
  return static_cast<std::int32_t>(acc);
}

std::int32_t dot_and_popc(std::span<const std::uint32_t> a,
                          std::span<const std::uint32_t> b,
                          std::int32_t c) noexcept {
  HSIM_ASSERT(a.size() == b.size());
  std::int32_t acc = c;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::popcount(a[i] & b[i]);
  }
  return acc;
}

}  // namespace hsim::num
