// Extension: cache-hierarchy discovery by working-set sweep — the
// Saavedra-Barrera / Mei & Chu method the paper's Table IV builds on,
// run blind against the simulated tag arrays.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/discovery.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  Table table("Discovered cache capacities (working-set latency sweep)");
  table.set_header({"Device", "Level", "configured KiB", "discovered KiB",
                    "hit lat", "miss plateau"});
  for (const auto* device : arch::all_devices()) {
    const auto l1 = core::discover_l1(*device);
    if (l1) {
      table.add_row({device->name, "L1",
                     fmt_fixed(static_cast<double>(device->memory.l1_bytes_per_sm) / 1024, 0),
                     fmt_fixed(static_cast<double>(l1.value().capacity_bytes) / 1024, 0),
                     fmt_fixed(l1.value().hit_latency, 1),
                     fmt_fixed(l1.value().miss_latency, 1)});
    }
    if (!opt.quick) {
      const auto l2 = core::discover_l2(*device);
      if (l2) {
        table.add_row({device->name, "L2",
                       fmt_fixed(static_cast<double>(device->memory.l2_bytes) / 1024, 0),
                       fmt_fixed(static_cast<double>(l2.value().capacity_bytes) / 1024, 0),
                       fmt_fixed(l2.value().hit_latency, 1),
                       fmt_fixed(l2.value().miss_latency, 1)});
      }
    }
  }
  bench::emit(table, opt);

  // The raw sweep for one device, for plotting the classic staircase.
  Table sweep("H800 ca-chase latency vs working set (the L1 staircase)");
  sweep.set_header({"working set KiB", "avg latency (cycles)"});
  core::SweepConfig cfg;
  cfg.min_bytes = 32 << 10;
  cfg.max_bytes = 1 << 20;
  cfg.step_factor = 1.4;
  for (const auto& point :
       core::latency_sweep(arch::h800_pcie(), mem::MemSpace::kGlobalCa, cfg)) {
    sweep.add_row({fmt_fixed(static_cast<double>(point.working_set) / 1024, 0),
                   fmt_fixed(point.avg_latency, 1)});
  }
  bench::emit(sweep, opt);
  return 0;
}
