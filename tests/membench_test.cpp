// Memory-throughput microbenchmarks: Table V's qualitative structure.
#include "core/membench.hpp"

#include <gtest/gtest.h>

namespace hsim::core {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;

TEST(MemBench, VectorisedL1BeatsScalarOnAda) {
  // Ada's L1 serves 32-bit loads at roughly half the float4 rate.
  const auto scalar = measure_l1_throughput(rtx4090(), AccessKind::kFp32).value();
  const auto vec = measure_l1_throughput(rtx4090(), AccessKind::kFp32V4).value();
  EXPECT_GT(vec.bytes_per_clk, 1.7 * scalar.bytes_per_clk);
}

TEST(MemBench, L1NearFullWidthOnH800) {
  const auto scalar = measure_l1_throughput(h800_pcie(), AccessKind::kFp32).value();
  const auto vec = measure_l1_throughput(h800_pcie(), AccessKind::kFp32V4).value();
  EXPECT_NEAR(scalar.bytes_per_clk, 126.0, 3.0);
  EXPECT_NEAR(vec.bytes_per_clk, 124.0, 3.0);
}

TEST(MemBench, Fp64BottleneckedByComputeOnTrimmedParts) {
  // The paper's finding: FP64 L1 "throughput" on RTX4090/H800 is really the
  // FP64 unit, not the cache.
  const auto ada = measure_l1_throughput(rtx4090(), AccessKind::kFp64).value();
  EXPECT_LT(ada.bytes_per_clk, 16.0);
  const auto h800 = measure_l1_throughput(h800_pcie(), AccessKind::kFp64).value();
  EXPECT_NEAR(h800.bytes_per_clk, 16.0, 1.0);
  // A100's wide FP64 pipe leaves the cache as the limit.
  const auto a100 = measure_l1_throughput(a100_pcie(), AccessKind::kFp64).value();
  EXPECT_GT(a100.bytes_per_clk, 100.0);
}

TEST(MemBench, SharedMemoryAtFullWidthEverywhere) {
  for (const auto* device : arch::all_devices()) {
    const auto r = measure_shared_throughput(*device).value();
    EXPECT_NEAR(r.bytes_per_clk, 128.0, 0.5) << device->name;
  }
}

TEST(MemBench, H800L2MoreThanDoublesOthers) {
  const auto h = measure_l2_throughput(h800_pcie(), AccessKind::kFp32).value();
  const auto a = measure_l2_throughput(a100_pcie(), AccessKind::kFp32).value();
  const auto g = measure_l2_throughput(rtx4090(), AccessKind::kFp32).value();
  EXPECT_GT(h.bytes_per_clk, 2.0 * a.bytes_per_clk);
  EXPECT_GT(h.bytes_per_clk, 2.3 * g.bytes_per_clk);
}

TEST(MemBench, H800L2Fp64ComputeBound) {
  const auto h = measure_l2_throughput(h800_pcie(), AccessKind::kFp64).value();
  // 114 SMs x ~16 B/clk of FP64 adds.
  EXPECT_NEAR(h.bytes_per_clk, 1850.0, 80.0);
}

TEST(MemBench, GlobalReaches90PercentOfPin) {
  for (const auto* device : arch::all_devices()) {
    const auto r = measure_global_throughput(*device).value();
    const double fraction = r.gbps / device->memory.dram_peak_gbps;
    EXPECT_GT(fraction, 0.88) << device->name;
    EXPECT_LT(fraction, 0.95) << device->name;
  }
}

TEST(MemBench, GlobalBandwidthOrdering) {
  const double h = measure_global_throughput(h800_pcie()).value().gbps;
  const double a = measure_global_throughput(a100_pcie()).value().gbps;
  const double g = measure_global_throughput(rtx4090()).value().gbps;
  EXPECT_GT(h, a);
  EXPECT_GT(a, g);
}

TEST(MemBench, L2FasterThanGlobalEverywhere) {
  for (const auto* device : arch::all_devices()) {
    const auto l2 = measure_l2_throughput(*device, AccessKind::kFp32V4).value();
    const auto global = measure_global_throughput(*device).value();
    EXPECT_GT(l2.gbps, 1.5 * global.gbps) << device->name;
  }
}

TEST(MemBench, AccessKindNames) {
  EXPECT_EQ(to_string(AccessKind::kFp32), "FP32");
  EXPECT_EQ(to_string(AccessKind::kFp64), "FP64");
  EXPECT_EQ(to_string(AccessKind::kFp32V4), "FP32.v4");
}

}  // namespace
}  // namespace hsim::core
