#include "common/log.hpp"

#include <gtest/gtest.h>

namespace hsim {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Log, MacrosRespectThreshold) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  // The stream expression must not be evaluated below the threshold.
  HSIM_DEBUG("side effect " << ++evaluations);
  HSIM_INFO("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  HSIM_ERROR("counted " << ++evaluations);
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(Log, EnvInitParsesKnownLevels) {
  const LogLevel original = log_level();
  ::setenv("HSIM_LOG", "debug", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  ::setenv("HSIM_LOG", "warn", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // Unknown values leave the level untouched.
  ::setenv("HSIM_LOG", "shouting", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  ::unsetenv("HSIM_LOG");
  set_log_level(original);
}

}  // namespace
}  // namespace hsim
