// `hsim serve` dispatch: one engine shared by every session, one session
// per client connection (or per --batch file, or per test).
//
// ServeEngine owns the verb handlers, the bounded request-execution pool
// and the content-addressed ResultCache.  Session adds the per-connection
// state (session id for diagnostics, the `close` verb) and the single
// line-in/line-out entry point — Session::handle_line is the ONLY dispatch
// path: the TCP server, the --batch mode and the in-process test suites all
// go through it, so protocol conformance tested without sockets is the same
// code that answers sockets.
//
// Error contract: handle_line never throws, never terminates the process,
// and always returns exactly one reply line.  Malformed JSON, unknown
// verbs, bad devices/kernels, oversized requests, timeouts and overload all
// come back as structured error replies with the request id echoed whenever
// one could be recovered.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "arch/device.hpp"
#include "common/status.hpp"
#include "common/thread_pool.hpp"
#include "serve/protocol.hpp"
#include "serve/result_cache.hpp"
#include "trace/kernels.hpp"

namespace hsim::serve {

/// Resolve a device short name; the error names the accepted devices so a
/// remote caller can fix the request without reading the source.
[[nodiscard]] Expected<const arch::DeviceSpec*> resolve_device(
    std::string_view name);

/// Resolve a trace-kernel name into a runnable kernel; same contract.
/// (This is the Expected<> replacement for the CLI's old die-with-usage
/// path: callers report the error, the process and session live on.)
[[nodiscard]] Expected<trace::TraceKernel> resolve_trace_kernel(
    std::string_view name, std::uint32_t iterations);

struct ServeOptions {
  /// Result-cache capacity in entries; 0 disables caching.
  std::size_t cache_capacity = 256;
  /// Worker threads for deadline-supervised execution (0 = hardware).
  int threads = 0;
  /// Bounded queue: requests executing or queued beyond this count are
  /// rejected with resource_exhausted instead of piling up.
  std::size_t max_inflight = 64;
  /// Default per-request deadline in milliseconds; 0 = run to completion.
  /// A request's "timeout_ms" param overrides it.  On expiry the reply is a
  /// deadline_exceeded error; the computation finishes in the background
  /// and lands in the cache, so a retry of the same query is a cheap hit.
  double default_timeout_ms = 0;
};

class ServeEngine {
 public:
  struct Counters {
    std::uint64_t requests = 0;
    std::uint64_t ok = 0;
    std::uint64_t errors = 0;
    std::uint64_t timeouts = 0;
    std::uint64_t rejected = 0;  // bounded-queue rejections
  };

  explicit ServeEngine(ServeOptions options = {});
  ~ServeEngine();

  ServeEngine(const ServeEngine&) = delete;
  ServeEngine& operator=(const ServeEngine&) = delete;

  /// Execute one parsed request and return the serialized result payload
  /// (cache-aware).  Verbs handled here: simulate, profile, sweep, trace,
  /// fuzz, stats, ping.  Session-scoped verbs (close) and server-scoped
  /// verbs (shutdown) are layered on top by Session.
  [[nodiscard]] Expected<std::string> execute(const Request& request);

  [[nodiscard]] ResultCache& cache() noexcept { return cache_; }
  [[nodiscard]] const ServeOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] Counters counters() const;

  /// Set by the `shutdown` verb; the TCP server polls it.
  void request_shutdown() noexcept { shutdown_.store(true); }
  [[nodiscard]] bool shutdown_requested() const noexcept {
    return shutdown_.load();
  }

  /// Count one reply of each outcome (Session calls these so the counters
  /// cover protocol-level errors too, not just executed verbs).
  void count_ok() noexcept { ok_.fetch_add(1); }
  void count_error() noexcept { errors_.fetch_add(1); }
  void count_request() noexcept { requests_.fetch_add(1); }

 private:
  struct Prepared;  // verb + identity + self-contained work closure

  [[nodiscard]] Expected<Prepared> prepare(const Request& request) const;
  [[nodiscard]] Expected<std::string> run_prepared(Prepared prepared);
  [[nodiscard]] std::string stats_payload() const;

  ServeOptions options_;
  ResultCache cache_;
  std::unique_ptr<ThreadPool> pool_;  // lazily created on first deadline use
  std::mutex pool_mutex_;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> ok_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> timeouts_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::int64_t> inflight_{0};
  std::atomic<bool> shutdown_{false};
};

class Session {
 public:
  explicit Session(ServeEngine& engine, int session_id = 0)
      : engine_(engine), id_(session_id) {}

  /// Handle one request line (no trailing newline) and return the reply
  /// line (no trailing newline).  Never throws.
  [[nodiscard]] std::string handle_line(std::string_view line);

  [[nodiscard]] bool closed() const noexcept { return closed_; }
  [[nodiscard]] int id() const noexcept { return id_; }

 private:
  ServeEngine& engine_;
  int id_;
  bool closed_ = false;
};

}  // namespace hsim::serve
