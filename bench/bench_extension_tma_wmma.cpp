// Extension: two Hopper features adjacent to the paper's evaluation.
//  (1) TMA vs cp.async vs synchronous copy in the tiled-GEMM pipeline —
//      quantifying what the paper only names ("a more advanced Tensor
//      Memory Accelerator for sophisticated asynchronous copying").
//  (2) The legacy wmma API vs mma vs wgmma on each architecture — Table I's
//      programmability story with numbers attached.
#include <iostream>

#include "async/tiled_gemm.hpp"
#include "bench/bench_util.hpp"
#include "core/tcbench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);

  // --- (1) Copy-engine shootout on H800 ---
  const auto& h800 = arch::h800_pcie();
  Table copies("Tiled GEMM on H800: SyncShare vs AsyncPipe vs TmaPipe (GFLOPS)");
  copies.set_header({"block", "Blocks/SM", "SyncShare", "AsyncPipe", "TmaPipe"});
  for (const int bd : {8, 16}) {
    for (const int bps : {1, 8}) {
      const async::GemmWorkload w{.block_dim = bd};
      std::vector<std::string> cells{std::to_string(bd) + "x" + std::to_string(bd),
                                     std::to_string(bps)};
      for (const auto variant :
           {async::CopyVariant::kSyncShare, async::CopyVariant::kAsyncPipe,
            async::CopyVariant::kTmaPipe}) {
        const auto r = async::run_gemm(h800, w, variant, bps);
        cells.push_back(r ? fmt_fixed(r.value().gflops, 1) : "n/a");
      }
      copies.add_row(std::move(cells));
    }
  }
  bench::emit(copies, opt);
  const auto tma_on_a100 =
      async::run_gemm(arch::a100_pcie(), {}, async::CopyVariant::kTmaPipe, 1);
  std::cout << "TMA on A100: "
            << (tma_on_a100 ? "unexpected success" : tma_on_a100.error().to_string())
            << "\n\n";

  // --- (2) wmma / mma / wgmma ladder ---
  Table ladder("FP16 tensor-core throughput by programming interface (TFLOPS)");
  ladder.set_header({"Device", "wmma m16n16k16", "mma m16n8k16",
                     "wgmma m64n256k16", "peak"});
  for (const auto* device : arch::all_devices()) {
    const isa::TcInstr wmma{.path = isa::TcPath::kWmma, .shape = {16, 16, 16},
                            .ab = DType::kFp16, .cd = DType::kFp16};
    const isa::TcInstr mma{.path = isa::TcPath::kMma, .shape = {16, 8, 16},
                           .ab = DType::kFp16, .cd = DType::kFp16};
    const isa::TcInstr wgmma{.path = isa::TcPath::kWgmma, .shape = {64, 256, 16},
                             .ab = DType::kFp16, .cd = DType::kFp16,
                             .a_src = isa::OperandSource::kSharedMemory};
    const auto w = core::bench_tc(wmma, *device);
    const auto m = core::bench_tc(mma, *device);
    const auto g = core::bench_tc(wgmma, *device);
    ladder.add_row({device->name,
                    w ? fmt_fixed(w.value().tflops_zero, 1) : "x",
                    m ? fmt_fixed(m.value().tflops_zero, 1) : "x",
                    g ? fmt_fixed(g.value().tflops_zero, 1) : "x",
                    fmt_fixed(device->tc_peak_tflops(DType::kFp16), 1)});
  }
  bench::emit(ladder, opt);
  std::cout << "Table I's progression, quantified: wmma < mma everywhere "
               "(fragment bookkeeping), and on Hopper only wgmma reaches "
               "peak.\n";
  return 0;
}
