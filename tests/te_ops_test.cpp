// TE cost model: GEMM wave/tile behaviour, linear-layer profiles, the
// transformer layer composition.
#include <gtest/gtest.h>

#include "te/linear.hpp"
#include "te/ops.hpp"
#include "te/transformer.hpp"

namespace hsim::te {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;
using num::DType;

TEST(CostModel, PeakRatesByDtype) {
  const CostModel model(h800_pcie());
  // FP32 GEMMs route through TF32 tensor cores on sm_80+.
  EXPECT_NEAR(model.gemm_peak_flops(DType::kFp32).value(), 378e12, 1e10);
  EXPECT_NEAR(model.gemm_peak_flops(DType::kFp16).value(), 756.5e12, 1e10);
  EXPECT_NEAR(model.gemm_peak_flops(DType::kFp8E4M3).value(), 1513e12, 1e10);
  EXPECT_FALSE(CostModel(a100_pcie()).gemm_peak_flops(DType::kFp8E4M3)
                   .has_value());
}

TEST(CostModel, GemmEfficiencyGrowsWithSize) {
  const CostModel model(h800_pcie());
  double prev_eff = 0;
  for (const std::int64_t n : {512, 1024, 4096, 16384}) {
    const double seconds = model.gemm_seconds(n, n, n, DType::kFp16).value();
    const double eff = 2.0 * static_cast<double>(n) * static_cast<double>(n) *
                       static_cast<double>(n) / seconds /
                       model.gemm_peak_flops(DType::kFp16).value();
    EXPECT_GT(eff, prev_eff) << n;
    prev_eff = eff;
  }
  EXPECT_GT(prev_eff, 0.85);  // near peak at 16k
}

TEST(CostModel, SkinnyGemmIsMemoryBound) {
  const CostModel model(h800_pcie());
  // m=8 decode-style GEMM: the weight matrix read dominates.
  const double seconds = model.gemm_seconds(8, 4096, 4096, DType::kFp16).value();
  const double weight_bytes = 4096.0 * 4096.0 * 2.0;
  EXPECT_GT(seconds, weight_bytes / model.mem_bandwidth());
  const double compute = 2.0 * 8 * 4096 * 4096 /
                         model.gemm_peak_flops(DType::kFp16).value();
  EXPECT_GT(seconds, 20.0 * compute);
}

TEST(CostModel, ElementwiseIncludesLaunchOverhead) {
  const CostModel model(h800_pcie());
  EXPECT_GE(model.elementwise_seconds(0.0), kKernelLaunchSeconds);
  EXPECT_NEAR(model.elementwise_seconds(1e9),
              1e9 / model.mem_bandwidth() + kKernelLaunchSeconds, 1e-9);
}

TEST(CostModel, RejectsBadDims) {
  const CostModel model(h800_pcie());
  EXPECT_FALSE(model.gemm_seconds(0, 8, 8, DType::kFp16).has_value());
  EXPECT_FALSE(model.gemm_seconds(8, -1, 8, DType::kFp16).has_value());
}

TEST(Linear, Fp8ProfileHasConversionSlices) {
  const CostModel model(h800_pcie());
  const auto profile = linear_square(model, 4096, DType::kFp8E4M3).value();
  EXPECT_GT(profile.fraction("gemm_fp8"), 0.2);
  EXPECT_GT(profile.fraction("cast_input"), 0.0);
  EXPECT_GT(profile.fraction("cast_weight"), 0.0);
  EXPECT_GT(profile.fraction("amax"), 0.0);
  EXPECT_GT(profile.fraction("rescale"), 0.0);
  EXPECT_NEAR(profile.fraction("gemm_fp8") + profile.fraction("cast_input") +
                  profile.fraction("cast_weight") + profile.fraction("amax") +
                  profile.fraction("rescale"),
              1.0, 1e-9);
}

TEST(Linear, ConversionShareShrinksWithN) {
  const CostModel model(h800_pcie());
  const auto small = linear_square(model, 1024, DType::kFp8E4M3).value();
  const auto large = linear_square(model, 16384, DType::kFp8E4M3).value();
  EXPECT_GT(small.fraction("cast_input") + small.fraction("cast_weight"),
            2.0 * (large.fraction("cast_input") + large.fraction("cast_weight")));
  EXPECT_LT(small.fraction("gemm_fp8"), large.fraction("gemm_fp8"));
}

TEST(Linear, Fp8CrossoverAboveMidSizes) {
  const CostModel model(h800_pcie());
  const auto fp16_small = linear_square(model, 1024, DType::kFp16).value();
  const auto fp8_small = linear_square(model, 1024, DType::kFp8E4M3).value();
  EXPECT_GT(fp16_small.gflops, fp8_small.gflops);  // overhead dominates
  const auto fp16_large = linear_square(model, 16384, DType::kFp16).value();
  const auto fp8_large = linear_square(model, 16384, DType::kFp8E4M3).value();
  EXPECT_GT(fp8_large.gflops, 1.4 * fp16_large.gflops);
}

TEST(Linear, A100HasNoFp8Row) {
  const CostModel model(a100_pcie());
  EXPECT_FALSE(linear_square(model, 4096, DType::kFp8E4M3).has_value());
  EXPECT_TRUE(linear_square(model, 4096, DType::kFp16).has_value());
}

TEST(TransformerLayer, PaperTableIIConfigs) {
  const auto cfg = paper_layer_config(4096).value();
  EXPECT_EQ(cfg.ffn_hidden_size, 11008);
  EXPECT_EQ(cfg.num_attention_heads, 32);
  EXPECT_EQ(cfg.batch, 4);
  EXPECT_EQ(cfg.seq_len, 512);
  EXPECT_EQ(paper_layer_config(8192).value().ffn_hidden_size, 22016);
  EXPECT_FALSE(paper_layer_config(3000).has_value());
}

TEST(TransformerLayer, Fp16RoughlyHalvesFp32) {
  const CostModel model(h800_pcie());
  const auto cfg = paper_layer_config(8192).value();
  const auto fp32 = transformer_layer_forward(model, cfg, DType::kFp32).value();
  const auto fp16 = transformer_layer_forward(model, cfg, DType::kFp16).value();
  const double speedup = fp32.seconds / fp16.seconds;
  EXPECT_GT(speedup, 1.6);
  EXPECT_LT(speedup, 2.4);
}

TEST(TransformerLayer, Fp8WinsOnlyAtLargeHidden) {
  const CostModel model(h800_pcie());
  const auto small = paper_layer_config(1024).value();
  const auto large = paper_layer_config(8192).value();
  const auto fp16_small =
      transformer_layer_forward(model, small, DType::kFp16).value();
  const auto fp8_small =
      transformer_layer_forward(model, small, DType::kFp8E4M3).value();
  EXPECT_LT(fp16_small.seconds, fp8_small.seconds);
  const auto fp16_large =
      transformer_layer_forward(model, large, DType::kFp16).value();
  const auto fp8_large =
      transformer_layer_forward(model, large, DType::kFp8E4M3).value();
  EXPECT_GT(fp16_large.seconds, fp8_large.seconds);
  // ...but never the full 2x: attention and norms stay FP16.
  EXPECT_LT(fp16_large.seconds / fp8_large.seconds, 1.9);
}

TEST(TransformerLayer, Fp8CastOverheadTracked) {
  const CostModel model(h800_pcie());
  const auto cfg = paper_layer_config(4096).value();
  const auto fp8 = transformer_layer_forward(model, cfg, DType::kFp8E4M3).value();
  EXPECT_GT(fp8.cast_seconds, 0.0);
  const auto fp16 = transformer_layer_forward(model, cfg, DType::kFp16).value();
  EXPECT_EQ(fp16.cast_seconds, 0.0);
}

TEST(TransformerLayer, ComponentsSumToTotal) {
  const CostModel model(h800_pcie());
  const auto cfg = paper_layer_config(2048).value();
  const auto p = transformer_layer_forward(model, cfg, DType::kFp16).value();
  EXPECT_GT(p.attention_seconds, 0.0);
  EXPECT_GT(p.mlp_seconds, 0.0);
  EXPECT_GT(p.norm_seconds, 0.0);
  EXPECT_LE(p.attention_seconds + p.mlp_seconds + p.norm_seconds,
            p.seconds + 1e-12);
}

TEST(TransformerLayer, H800FastestDevice) {
  const auto cfg = paper_layer_config(8192).value();
  const auto h =
      transformer_layer_forward(CostModel(h800_pcie()), cfg, DType::kFp16)
          .value();
  const auto a =
      transformer_layer_forward(CostModel(a100_pcie()), cfg, DType::kFp16)
          .value();
  const auto g =
      transformer_layer_forward(CostModel(rtx4090()), cfg, DType::kFp16)
          .value();
  EXPECT_LT(h.seconds, a.seconds);
  EXPECT_LT(h.seconds, g.seconds);
}

}  // namespace
}  // namespace hsim::te
