// FP8 scaling quantisation, as the Transformer Engine performs it.
//
// TE picks the tensor's max-abs value as the scaling reference, scales the
// tensor so it fits FP8's dynamic range, runs the GEMM in FP8, and rescales
// the output: inp_fp8 = inp / scale; out = gemm(inp_fp8, w_fp8) * scale.
// This module implements that numerically (real E4M3/E5M2 rounding) so the
// quantisation error the paper's Fig 3 overhead buys is measurable.
#pragma once

#include <span>
#include <vector>

#include "common/status.hpp"
#include "numerics/dtype.hpp"
#include "numerics/types.hpp"

namespace hsim::te {

struct QuantizedTensor {
  std::vector<std::uint8_t> values;  // FP8 bit patterns
  float scale = 1.0f;                // out = decode(values) * scale
  num::DType format = num::DType::kFp8E4M3;
};

/// amax-based scale: maps the tensor's largest magnitude onto the format's
/// largest finite value.  Returns 1.0 for an all-zero tensor.
float compute_scale(std::span<const float> data, num::DType format);

/// Quantise with a precomputed scale (TE's delayed-scaling keeps amax
/// history; passing yesterday's scale is how that works).
QuantizedTensor quantize(std::span<const float> data, num::DType format,
                         float scale);

/// Convenience: compute the scale from this tensor and quantise.
QuantizedTensor quantize(std::span<const float> data, num::DType format);

/// Dequantise back to FP32.
std::vector<float> dequantize(const QuantizedTensor& q);

/// Max relative error of a quantise/dequantise round trip (diagnostics).
double max_rel_error(std::span<const float> original,
                     std::span<const float> restored);

}  // namespace hsim::te
