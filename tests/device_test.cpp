// Device registry: Table III facts and derived rates.
#include "arch/device.hpp"

#include <gtest/gtest.h>

#include "common/units.hpp"

namespace hsim::arch {
namespace {

TEST(Registry, TableIIIFacts) {
  const auto& a100 = a100_pcie();
  EXPECT_EQ(a100.sm_count, 108);
  EXPECT_EQ(a100.cores_per_sm, 64);
  EXPECT_EQ(a100.boost_clock_mhz, 1410);
  EXPECT_EQ(a100.memory.dram_bytes, 40_GiB);
  EXPECT_EQ(a100.memory.dram_type, "HBM2e");
  EXPECT_EQ(a100.memory.dram_bus_bits, 5120);
  EXPECT_EQ(a100.tc.cores_total, 432);
  EXPECT_EQ(a100.tc.generation, 3);
  EXPECT_EQ(a100.cc_string(), "8.0");

  const auto& ada = rtx4090();
  EXPECT_EQ(ada.sm_count, 128);
  EXPECT_EQ(ada.cores_per_sm, 128);
  EXPECT_EQ(ada.memory.dram_bytes, 24_GiB);
  EXPECT_EQ(ada.memory.dram_type, "GDDR6X");
  EXPECT_EQ(ada.tc.cores_total, 512);
  EXPECT_EQ(ada.tc.generation, 4);
  EXPECT_EQ(ada.cc_string(), "8.9");

  const auto& h800 = h800_pcie();
  EXPECT_EQ(h800.sm_count, 114);
  EXPECT_EQ(h800.cores_per_sm, 128);
  EXPECT_EQ(h800.memory.dram_bytes, 80_GiB);
  EXPECT_EQ(h800.memory.dram_peak_gbps, 2039);
  EXPECT_EQ(h800.tc.cores_total, 456);
  EXPECT_EQ(h800.cc_string(), "9.0");
}

TEST(Registry, FeatureMatrix) {
  EXPECT_FALSE(a100_pcie().dpx.hardware);
  EXPECT_FALSE(rtx4090().dpx.hardware);
  EXPECT_TRUE(h800_pcie().dpx.hardware);

  EXPECT_FALSE(a100_pcie().dsm.available);
  EXPECT_FALSE(rtx4090().dsm.available);
  EXPECT_TRUE(h800_pcie().dsm.available);

  EXPECT_FALSE(a100_pcie().tc.has_fp8);
  EXPECT_TRUE(rtx4090().tc.has_fp8);
  EXPECT_TRUE(h800_pcie().tc.has_fp8);
  // FP8 never has an mma path, on any architecture (Table VI).
  for (const auto* device : all_devices()) {
    EXPECT_FALSE(device->tc.has_fp8_mma) << device->name;
  }

  EXPECT_FALSE(a100_pcie().tc.has_wgmma);
  EXPECT_FALSE(rtx4090().tc.has_wgmma);
  EXPECT_TRUE(h800_pcie().tc.has_wgmma);

  EXPECT_TRUE(a100_pcie().tc.mma_int4_on_tc);
  EXPECT_FALSE(h800_pcie().tc.mma_int4_on_tc);

  EXPECT_FALSE(a100_pcie().has_tma);
  EXPECT_TRUE(h800_pcie().has_tma);
}

TEST(Registry, PeakRates) {
  EXPECT_EQ(a100_pcie().tc_peak_tflops(num::DType::kFp16), 312.0);
  EXPECT_EQ(h800_pcie().tc_peak_tflops(num::DType::kFp8E4M3), 1513.0);
  EXPECT_EQ(a100_pcie().tc_peak_tflops(num::DType::kFp8E4M3), 0.0);
  EXPECT_EQ(rtx4090().tc_peak_tflops(num::DType::kInt8), 660.6);
  // Binary = 8x INT8.
  EXPECT_EQ(a100_pcie().tc_peak_tflops(num::DType::kBinary), 8 * 624.0);
  // INT4 on Hopper falls off the tensor cores entirely.
  EXPECT_EQ(h800_pcie().tc_peak_tflops(num::DType::kInt4), 0.0);
  EXPECT_EQ(a100_pcie().tc_peak_tflops(num::DType::kInt4), 2 * 624.0);
}

TEST(Registry, OpsPerClkDerivation) {
  // A100 FP16: 312 TFLOPS / (108 SMs x 1.41 GHz) = 2048 flops/clk/SM.
  EXPECT_NEAR(a100_pcie().tc_ops_per_clk_sm(num::DType::kFp16), 2048.0, 2.0);
  // RTX4090 at its official clock: 1024.
  EXPECT_NEAR(rtx4090().tc_ops_per_clk_sm(num::DType::kFp16), 1024.0, 2.0);
}

TEST(Registry, ObservedClockAboveBoostOnlyOnAda) {
  EXPECT_GT(rtx4090().observed_clock_mhz, rtx4090().boost_clock_mhz);
  EXPECT_EQ(a100_pcie().observed_clock_mhz, a100_pcie().boost_clock_mhz);
  EXPECT_EQ(h800_pcie().observed_clock_mhz, h800_pcie().boost_clock_mhz);
}

TEST(Registry, FindDevice) {
  EXPECT_EQ(find_device("a100").value(), &a100_pcie());
  EXPECT_EQ(find_device("RTX4090").value(), &rtx4090());
  EXPECT_EQ(find_device("hopper").value(), &h800_pcie());
  EXPECT_EQ(find_device("h100").value(), &h800_pcie());
  EXPECT_FALSE(find_device("mi300").has_value());
}

TEST(Registry, AllDevicesOrder) {
  const auto devices = all_devices();
  EXPECT_EQ(devices[0]->generation, Generation::kAmpere);
  EXPECT_EQ(devices[1]->generation, Generation::kAda);
  EXPECT_EQ(devices[2]->generation, Generation::kHopper);
}

TEST(TcEnergy, LookupBuckets) {
  const TcEnergy e{.fp16_fp16 = 1, .fp16_fp32 = 2, .tf32_fp32 = 3, .fp8 = 4,
                   .int8 = 5};
  EXPECT_EQ(e.lookup(num::DType::kFp16, num::DType::kFp16), 1);
  EXPECT_EQ(e.lookup(num::DType::kFp16, num::DType::kFp32), 2);
  EXPECT_EQ(e.lookup(num::DType::kBf16, num::DType::kFp32), 2);
  EXPECT_EQ(e.lookup(num::DType::kTf32, num::DType::kFp32), 3);
  EXPECT_EQ(e.lookup(num::DType::kFp8E5M2, num::DType::kFp16), 4);
  EXPECT_EQ(e.lookup(num::DType::kInt8, num::DType::kInt32), 5);
  EXPECT_EQ(e.lookup(num::DType::kBinary, num::DType::kInt32), 5);
}

TEST(Generation, Names) {
  EXPECT_EQ(to_string(Generation::kAmpere), "Ampere");
  EXPECT_EQ(to_string(Generation::kAda), "Ada Lovelace");
  EXPECT_EQ(to_string(Generation::kHopper), "Hopper");
}

}  // namespace
}  // namespace hsim::arch
