// Table X: wgmma.m64nNk16.f32.f16.f16 across N — the crossover at N = 64
// below which shared-memory streaming can no longer hide behind compute.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/tcbench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);
  const auto& h800 = arch::h800_pcie();

  Table table("Table X: wgmma m64nNk16 f32.f16.f16 on H800, N sweep");
  table.set_header({"N", "Dense SS,Zero", "Dense RS,Zero", "Dense SS,Rand",
                    "Dense RS,Rand", "Sparse SS,Zero", "Sparse RS,Zero",
                    "Sparse SS,Rand", "Sparse RS,Rand"});

  for (const int n : {256, 128, 64, 32, 16, 8}) {
    std::vector<std::string> cells{std::to_string(n)};
    for (const bool sparse : {false, true}) {
      for (const auto src : {isa::OperandSource::kSharedMemory,
                             isa::OperandSource::kRegister}) {
        const isa::TcInstr instr{.path = isa::TcPath::kWgmma,
                                 .shape = {64, n, sparse ? 32 : 16},
                                 .ab = DType::kFp16,
                                 .cd = DType::kFp32,
                                 .sparse = sparse,
                                 .a_src = src};
        const auto r = core::bench_tc(instr, h800);
        if (!r) {
          cells.push_back("x");
          cells.push_back("x");
          continue;
        }
        cells.push_back(
            fmt_lat_tput(r.value().latency_cycles, r.value().tflops_zero));
      }
      // Rand columns appended after the Zero pair for this sparsity.
      for (const auto src : {isa::OperandSource::kSharedMemory,
                             isa::OperandSource::kRegister}) {
        const isa::TcInstr instr{.path = isa::TcPath::kWgmma,
                                 .shape = {64, n, sparse ? 32 : 16},
                                 .ab = DType::kFp16,
                                 .cd = DType::kFp32,
                                 .sparse = sparse,
                                 .a_src = src};
        const auto r = core::bench_tc(instr, h800);
        cells.push_back(r ? fmt_fixed(r.value().tflops_rand, 1) : "x");
      }
    }
    // Reorder: we built SSzero,RSzero,SSrand,RSrand per sparsity; the header
    // expects exactly that order — nothing to shuffle.
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);
  std::cout << "Paper guidance reproduced: choose N >= 64 to stay at peak; "
               "below that the SS variant pays exposed smem latency.\n";
  return 0;
}
