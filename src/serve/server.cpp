#include "serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.hpp"
#include "serve/protocol.hpp"

namespace hsim::serve {

namespace {

Error errno_error(const std::string& what) {
  return Error{ErrorCode::kInternal, what + ": " + std::strerror(errno)};
}

/// RAII fd so every early return closes the socket.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  Fd(Fd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;
  ~Fd() { reset(); }

  [[nodiscard]] int get() const noexcept { return fd_; }
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }
  void reset() {
    if (fd_ >= 0) ::close(fd_);
    fd_ = -1;
  }

 private:
  int fd_ = -1;
};

bool send_all(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    const ssize_t n = ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    bytes.remove_prefix(static_cast<std::size_t>(n));
  }
  return true;
}

/// Byte stream -> lines, with oversized-line recovery: once a line exceeds
/// the protocol limit the overflow tail is discarded until the next '\n',
/// and the (truncated, marked) line is still delivered so the session can
/// answer with a structured error instead of silently desynchronizing.
class LineReader {
 public:
  /// Returns false on EOF/error with no pending line.
  bool next(int fd, std::string& line) {
    while (true) {
      const auto newline = buffer_.find('\n');
      if (newline != std::string::npos) {
        line.assign(buffer_, 0, newline);
        buffer_.erase(0, newline + 1);
        if (overflowed_) {
          // The stored prefix is already > kMaxRequestBytes; deliver it
          // as-is, parse_request rejects it by size.
          overflowed_ = false;
        }
        return true;
      }
      if (buffer_.size() > kMaxRequestBytes + 1) {
        // Keep just past the limit so parse_request sees "too big"; drop
        // the rest of the flood instead of buffering it.
        buffer_.resize(kMaxRequestBytes + 1);
        overflowed_ = true;
      }
      char chunk[4096];
      const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      if (n == 0) return false;  // EOF
      if (overflowed_) {
        // Scan the new chunk for the terminating newline only.
        const char* nl =
            static_cast<const char*>(std::memchr(chunk, '\n', static_cast<std::size_t>(n)));
        if (nl == nullptr) continue;
        buffer_.push_back('\n');
        buffer_.append(nl + 1, static_cast<std::size_t>(chunk + n - (nl + 1)));
      } else {
        buffer_.append(chunk, static_cast<std::size_t>(n));
      }
    }
  }

 private:
  std::string buffer_;
  bool overflowed_ = false;
};

void serve_connection(int fd, ServeEngine& engine, int session_id) {
  Session session(engine, session_id);
  LineReader reader;
  std::string line;
  while (!session.closed() && !engine.shutdown_requested()) {
    if (!reader.next(fd, line)) break;
    if (line.empty()) continue;  // blank keepalive lines are ignored
    std::string reply = session.handle_line(line);
    reply += '\n';
    if (!send_all(fd, reply)) break;
  }
}

Expected<Fd> listen_on(const std::string& host, std::uint16_t port,
                       std::uint16_t* bound_port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.ok()) return errno_error("socket");
  const int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return invalid_argument("bad listen address: " + host);
  }
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_error("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), 16) != 0) return errno_error("listen");

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return errno_error("getsockname");
  }
  *bound_port = ntohs(bound.sin_port);
  return fd;
}

Expected<Fd> connect_to(std::uint16_t port) {
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.ok()) return errno_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return errno_error("connect 127.0.0.1:" + std::to_string(port));
  }
  return fd;
}

struct ServerHandle {
  ServeEngine engine;
  std::uint16_t port = 0;
  std::thread accept_thread;

  explicit ServerHandle(ServeOptions options) : engine(std::move(options)) {}
};

/// The accept loop shared by run_server and run_smoke.  Polls with a short
/// interval so a `shutdown` verb observed on any connection stops accepting
/// promptly; joins every connection thread before returning.
void accept_loop(Fd listener, ServeEngine& engine) {
  std::vector<std::thread> connections;
  int next_session = 1;
  while (!engine.shutdown_requested()) {
    pollfd pfd{listener.get(), POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0) continue;
    const int client = ::accept(listener.get(), nullptr, nullptr);
    if (client < 0) continue;
    connections.emplace_back(
        [client, &engine, id = next_session] {
          serve_connection(client, engine, id);
          ::close(client);
        });
    ++next_session;
  }
  listener.reset();
  for (auto& t : connections) t.join();
}

/// Minimal blocking client for the smoke test: one request line out, one
/// reply line back.
Expected<std::string> round_trip(int fd, std::string request) {
  request += '\n';
  if (!send_all(fd, request)) return errno_error("send");
  std::string reply;
  char c = 0;
  while (true) {
    const ssize_t n = ::recv(fd, &c, 1, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    if (n == 0) return Error{ErrorCode::kInternal, "server closed mid-reply"};
    if (c == '\n') return reply;
    reply.push_back(c);
  }
}

Error smoke_failure(const std::string& step, const std::string& detail) {
  return Error{ErrorCode::kInternal, "smoke: " + step + ": " + detail};
}

}  // namespace

Expected<bool> run_server(const ServerOptions& options,
                          void (*announce)(std::uint16_t)) {
  ServeEngine engine(options.engine);
  std::uint16_t bound = 0;
  auto listener = listen_on(options.host, options.port, &bound);
  if (!listener) return listener.error();
  if (announce != nullptr) announce(bound);
  accept_loop(std::move(listener).value(), engine);
  return true;
}

Expected<bool> run_smoke(const ServeOptions& engine_options) {
  ServerHandle server(engine_options);
  std::uint16_t bound = 0;
  auto listener = listen_on("127.0.0.1", 0, &bound);
  if (!listener) return listener.error();
  server.accept_thread =
      std::thread([l = std::move(listener).value(), &server]() mutable {
        accept_loop(std::move(l), server.engine);
      });

  const auto finish = [&server](Expected<bool> result) -> Expected<bool> {
    server.engine.request_shutdown();
    server.accept_thread.join();
    return result;
  };

  auto client = connect_to(bound);
  if (!client) return finish(client.error());
  const int fd = client.value().get();

  const std::string simulate =
      R"({"id":1,"verb":"simulate","params":{"device":"h800","kernel":"ffma_dep","iters":64}})";
  auto cold = round_trip(fd, simulate);
  if (!cold) return finish(cold.error());
  if (cold.value().find("\"ok\":true") == std::string::npos) {
    return finish(smoke_failure("cold simulate", cold.value()));
  }

  // Identical query again (same id, same params): the reply must be the
  // exact bytes of the cold reply, this time served from the cache.
  auto warm = round_trip(fd, simulate);
  if (!warm) return finish(warm.error());
  if (warm.value() != cold.value()) {
    return finish(smoke_failure(
        "cached repeat differs", warm.value() + " vs " + cold.value()));
  }

  auto stats = round_trip(fd, R"({"id":2,"verb":"stats"})");
  if (!stats) return finish(stats.error());
  {
    auto parsed = json::parse(stats.value());
    if (!parsed) return finish(smoke_failure("stats parse", stats.value()));
    const json::Value* result = parsed.value().find("result");
    const json::Value* cache =
        result != nullptr ? result->find("cache") : nullptr;
    const json::Value* hits = cache != nullptr ? cache->find("hits") : nullptr;
    if (hits == nullptr || !hits->is_unsigned() || hits->as_u64() < 1) {
      return finish(smoke_failure("expected >=1 cache hit", stats.value()));
    }
  }

  // Malformed line: structured error, null id, connection stays usable.
  auto bad = round_trip(fd, "{this is not json");
  if (!bad) return finish(bad.error());
  if (bad.value().find("\"ok\":false") == std::string::npos ||
      bad.value().find("\"id\":null") == std::string::npos) {
    return finish(smoke_failure("malformed reply", bad.value()));
  }
  auto alive = round_trip(fd, R"({"id":3,"verb":"ping"})");
  if (!alive) return finish(alive.error());
  if (alive.value().find("\"ok\":true") == std::string::npos) {
    return finish(smoke_failure("ping after malformed", alive.value()));
  }

  auto down = round_trip(fd, R"({"id":4,"verb":"shutdown"})");
  if (!down) return finish(down.error());
  if (down.value().find("\"shutting_down\":true") == std::string::npos) {
    return finish(smoke_failure("shutdown reply", down.value()));
  }
  return finish(true);
}

}  // namespace hsim::serve
