#include "serve/session.hpp"

#include <algorithm>
#include <chrono>
#include <future>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <tuple>
#include <utility>
#include <vector>

#include "conformance/differ.hpp"
#include "ff/snapshot.hpp"
#include "gpu/gpu_engine.hpp"
#include "mem/memory_system.hpp"
#include "prof/metrics.hpp"
#include "prof/pmu.hpp"
#include "sim/sweep.hpp"
#include "sm/sm_core.hpp"
#include "trace/sinks.hpp"

namespace hsim::serve {

namespace {

// Request-side bounds: a server cannot let one query buy an unbounded
// amount of simulation.  Generous relative to every paper experiment.
constexpr std::uint64_t kMaxIters = 1u << 20;
constexpr int kMaxWarpsPerBlock = 32;
constexpr int kMaxBlocks = 4096;
constexpr int kMaxTop = 1000;
constexpr std::uint64_t kMaxFuzzCases = 100000;
constexpr std::size_t kMaxSweepList = 256;
constexpr std::size_t kMaxSweepDevices = 8;
constexpr std::size_t kMaxSweepPoints = 4096;
constexpr double kMaxTimeoutMs = 3600.0 * 1000.0;

/// Strict parameter extraction: every accessor type-checks and marks its
/// key consumed; finish() rejects whatever is left so misspelled knobs are
/// errors, not silently-applied defaults.
class ParamReader {
 public:
  explicit ParamReader(const json::Object& params) : params_(params) {}

  [[nodiscard]] Expected<std::string> string_or(std::string_view key,
                                                std::string fallback) {
    const json::Value* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_string()) return type_error(key, "a string");
    return v->as_string();
  }

  [[nodiscard]] Expected<std::string> required_string(std::string_view key) {
    const json::Value* v = take(key);
    if (v == nullptr) {
      return invalid_argument("missing required param \"" + std::string(key) +
                              "\"");
    }
    if (!v->is_string()) return type_error(key, "a string");
    return v->as_string();
  }

  [[nodiscard]] Expected<std::uint64_t> u64_or(std::string_view key,
                                               std::uint64_t fallback,
                                               std::uint64_t min,
                                               std::uint64_t max) {
    const json::Value* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_unsigned()) return type_error(key, "an unsigned integer");
    const std::uint64_t value = v->as_u64();
    if (value < min || value > max) return range_error(key, min, max);
    return value;
  }

  [[nodiscard]] Expected<int> int_or(std::string_view key, int fallback,
                                     int min, int max) {
    const json::Value* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_integer()) return type_error(key, "an integer");
    if (!v->is_unsigned() && v->as_i64() < static_cast<std::int64_t>(min)) {
      return range_error(key, static_cast<std::uint64_t>(min),
                         static_cast<std::uint64_t>(max));
    }
    const std::uint64_t magnitude =
        v->is_unsigned() ? v->as_u64()
                         : static_cast<std::uint64_t>(v->as_i64());
    if (magnitude < static_cast<std::uint64_t>(min) ||
        magnitude > static_cast<std::uint64_t>(max)) {
      return range_error(key, static_cast<std::uint64_t>(min),
                         static_cast<std::uint64_t>(max));
    }
    return static_cast<int>(magnitude);
  }

  [[nodiscard]] Expected<double> double_or(std::string_view key,
                                           double fallback, double min,
                                           double max) {
    const json::Value* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_number()) return type_error(key, "a number");
    const double value = v->as_double();
    if (!(value >= min) || !(value <= max)) {
      return invalid_argument("param \"" + std::string(key) +
                              "\" out of range");
    }
    return value;
  }

  [[nodiscard]] Expected<bool> bool_or(std::string_view key, bool fallback) {
    const json::Value* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_bool()) return type_error(key, "a boolean");
    return v->as_bool();
  }

  [[nodiscard]] Expected<std::vector<std::string>> string_list_or(
      std::string_view key, std::vector<std::string> fallback,
      std::size_t max_items) {
    const json::Value* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_array()) return type_error(key, "an array of strings");
    std::vector<std::string> out;
    for (const auto& item : v->as_array()) {
      if (!item.is_string()) return type_error(key, "an array of strings");
      out.push_back(item.as_string());
    }
    if (out.empty() || out.size() > max_items) {
      return invalid_argument("param \"" + std::string(key) + "\" must hold "
                              "1.." + std::to_string(max_items) + " items");
    }
    return out;
  }

  [[nodiscard]] Expected<std::vector<int>> int_list_or(std::string_view key,
                                                       std::vector<int> fallback,
                                                       int min, int max,
                                                       std::size_t max_items) {
    const json::Value* v = take(key);
    if (v == nullptr) return fallback;
    if (!v->is_array()) return type_error(key, "an array of integers");
    std::vector<int> out;
    for (const auto& item : v->as_array()) {
      if (!item.is_unsigned() ||
          item.as_u64() > static_cast<std::uint64_t>(max) ||
          item.as_u64() < static_cast<std::uint64_t>(min)) {
        return invalid_argument("param \"" + std::string(key) +
                                "\" items must be integers in " +
                                std::to_string(min) + ".." +
                                std::to_string(max));
      }
      out.push_back(static_cast<int>(item.as_u64()));
    }
    if (out.empty() || out.size() > max_items) {
      return invalid_argument("param \"" + std::string(key) + "\" must hold "
                              "1.." + std::to_string(max_items) + " items");
    }
    return out;
  }

  /// Error if any param was never consumed (strictness gate).
  [[nodiscard]] Expected<bool> finish() const {
    std::string unknown;
    for (const auto& [key, value] : params_) {
      if (consumed_.count(key) != 0) continue;
      if (!unknown.empty()) unknown += ", ";
      unknown += "\"" + key + "\"";
    }
    if (!unknown.empty()) {
      return invalid_argument("unknown param(s): " + unknown);
    }
    return true;
  }

 private:
  [[nodiscard]] const json::Value* take(std::string_view key) {
    consumed_.insert(std::string(key));
    const auto it = params_.find(key);
    return it == params_.end() ? nullptr : &it->second;
  }

  static Error type_error(std::string_view key, std::string_view want) {
    return invalid_argument("param \"" + std::string(key) + "\" must be " +
                            std::string(want));
  }
  static Error range_error(std::string_view key, std::uint64_t min,
                           std::uint64_t max) {
    return invalid_argument("param \"" + std::string(key) + "\" must be in " +
                            std::to_string(min) + ".." + std::to_string(max));
  }

  const json::Object& params_;
  std::set<std::string, std::less<>> consumed_;
};

/// The shape shared by every kernel-running verb.
struct KernelQuery {
  const arch::DeviceSpec* device = nullptr;
  trace::TraceKernel kernel;
  std::uint32_t iters = 0;
  int warps = 0;   // 0 = kernel default
  int blocks = 0;  // 0 = verb-specific default
  int threads_per_block = 0;  // resolved
  int total_blocks = 0;       // resolved
};

/// Resolve device + kernel + shape from common params.  `chip_blocks`
/// selects the blocks default: kernel default (single-SM verbs) or one
/// block per SM (full-chip verbs).
Expected<KernelQuery> read_kernel_query(ParamReader& params, bool chip_blocks,
                                        std::uint32_t default_iters) {
  KernelQuery query;
  auto device_name = params.required_string("device");
  if (!device_name) return device_name.error();
  auto device = resolve_device(device_name.value());
  if (!device) return device.error();
  query.device = device.value();

  auto kernel_name = params.required_string("kernel");
  if (!kernel_name) return kernel_name.error();
  auto iters = params.u64_or("iters", default_iters, 1, kMaxIters);
  if (!iters) return iters.error();
  query.iters = static_cast<std::uint32_t>(iters.value());
  auto kernel = resolve_trace_kernel(kernel_name.value(), query.iters);
  if (!kernel) return kernel.error();
  query.kernel = std::move(kernel).value();

  auto warps = params.int_or("warps", 0, 0, kMaxWarpsPerBlock);
  if (!warps) return warps.error();
  query.warps = warps.value();
  auto blocks = params.int_or("blocks", 0, 0, kMaxBlocks);
  if (!blocks) return blocks.error();
  query.blocks = blocks.value();

  query.threads_per_block = query.warps > 0 ? query.warps * 32
                                            : query.kernel.threads_per_block;
  query.total_blocks = query.blocks > 0
                           ? query.blocks
                           : (chip_blocks ? query.device->sm_count
                                          : query.kernel.blocks);
  return query;
}

json::Object echo_config(const KernelQuery& query, std::string_view mode) {
  json::Object out;
  out.emplace("device", json::Value::string(query.device->name));
  out.emplace("kernel", json::Value::string(query.kernel.name));
  out.emplace("iters", json::Value::unsigned_integer(query.iters));
  out.emplace("threads_per_block",
              json::Value::integer(query.threads_per_block));
  out.emplace("blocks", json::Value::integer(query.total_blocks));
  out.emplace("mode", json::Value::string(std::string(mode)));
  return out;
}

/// The canonical semantic-config serialization for the cache identity:
/// resolved values, so defaulted and explicit spellings of the same query
/// share a cache slot.
std::string kernel_identity_config(const KernelQuery& query,
                                   std::string_view mode) {
  return json::Value::object(echo_config(query, mode)).dump();
}

Expected<json::Value> run_simulate_sm(const KernelQuery& query) {
  std::unique_ptr<mem::MemorySystem> memsys;
  if (query.kernel.needs_mem) {
    memsys = std::make_unique<mem::MemorySystem>(*query.device, 1);
  }
  sm::SmCore core(*query.device, memsys.get());
  sm::BlockShape shape;
  shape.threads_per_block = query.threads_per_block;
  shape.blocks = query.total_blocks;
  const sm::RunResult result = core.run(query.kernel.program, shape);

  json::Object out = echo_config(query, "sm");
  out.emplace("cycles", json::Value::number(result.cycles));
  out.emplace("instructions",
              json::Value::unsigned_integer(result.instructions_issued));
  out.emplace("ipc", json::Value::number(result.ipc()));
  out.emplace("stall_cycles",
              json::Value::unsigned_integer(result.stall_cycles));
  out.emplace("mem_transactions",
              json::Value::unsigned_integer(result.mem_transactions));
  out.emplace("warps_retired",
              json::Value::unsigned_integer(result.warps_retired));
  return json::Value::object(std::move(out));
}

Expected<json::Value> run_simulate_chip(const KernelQuery& query,
                                        int exec_threads) {
  sm::LaunchConfig config;
  config.threads_per_block = query.threads_per_block;
  config.total_blocks = query.total_blocks;
  gpu::ChipOptions chip_options;
  chip_options.threads = exec_threads;
  const gpu::GpuEngine engine(*query.device, std::move(chip_options));
  const auto result = engine.run(query.kernel.program, config);
  if (!result) return result.error();
  const gpu::ChipResult& chip = result.value();

  double min_sm = chip.per_sm.empty() ? 0.0 : chip.per_sm.front().cycles;
  double max_sm = 0;
  double sum_sm = 0;
  for (const auto& sm : chip.per_sm) {
    min_sm = std::min(min_sm, sm.cycles);
    max_sm = std::max(max_sm, sm.cycles);
    sum_sm += sm.cycles;
  }
  const double mean_sm =
      chip.per_sm.empty() ? 0.0
                          : sum_sm / static_cast<double>(chip.per_sm.size());

  json::Object out = echo_config(query, "chip");
  out.emplace("cycles", json::Value::number(chip.cycles));
  out.emplace("seconds", json::Value::number(chip.seconds));
  out.emplace("instructions",
              json::Value::unsigned_integer(chip.instructions_issued));
  out.emplace("ipc", json::Value::number(chip.ipc()));
  out.emplace("sms", json::Value::integer(chip.sms));
  out.emplace("block_slots", json::Value::integer(chip.block_slots));
  out.emplace("waves", json::Value::number(chip.waves));
  out.emplace("epochs", json::Value::integer(chip.epochs));
  out.emplace("mem_transactions",
              json::Value::unsigned_integer(chip.mem_transactions));
  out.emplace("warps_retired",
              json::Value::unsigned_integer(chip.warps_retired));
  out.emplace("per_sm_cycles_min", json::Value::number(min_sm));
  out.emplace("per_sm_cycles_mean", json::Value::number(mean_sm));
  out.emplace("per_sm_cycles_max", json::Value::number(max_sm));
  return json::Value::object(std::move(out));
}

Expected<json::Value> run_profile(const KernelQuery& query, bool full_chip,
                                  int exec_threads) {
  prof::PmuCounters pmu;
  prof::ProfileInput input;
  if (full_chip) {
    sm::LaunchConfig config;
    config.threads_per_block = query.threads_per_block;
    config.total_blocks = query.total_blocks;
    gpu::ChipOptions chip_options;
    chip_options.threads = exec_threads;
    chip_options.pmu = &pmu;
    const gpu::GpuEngine engine(*query.device, std::move(chip_options));
    const auto result = engine.run(query.kernel.program, config);
    if (!result) return result.error();
    input.cycles = result.value().cycles;
    input.sms = result.value().sms;
    input.units = result.value().unit_usage;
  } else {
    sm::BlockShape shape;
    shape.threads_per_block = query.threads_per_block;
    shape.blocks = query.total_blocks;
    std::unique_ptr<mem::MemorySystem> memsys;
    if (query.kernel.needs_mem) {
      memsys = std::make_unique<mem::MemorySystem>(*query.device, 1);
      memsys->set_pmu(&pmu);
    }
    sm::SmCore core(*query.device, memsys.get());
    core.set_pmu(&pmu);
    const sm::RunResult result = core.run(query.kernel.program, shape);
    input.cycles = result.cycles;
    input.sms = 1;
    input.units = core.unit_usage();
    if (memsys) {
      for (auto& sample : memsys->unit_usage()) {
        input.units.push_back(std::move(sample));
      }
    }
  }
  input.pmu = pmu;

  std::string why;
  if (!input.pmu.conserved(&why)) {
    return Error{ErrorCode::kInternal,
                 "counter conservation violated: " + why};
  }

  prof::ProfileConfig profile_config;
  profile_config.device = query.device->name;
  profile_config.kernel = query.kernel.name;
  // Same free-form config string `hsim profile` uses, so the content key in
  // a serve reply equals the one-shot CLI's for the same query.
  profile_config.config = "iters=" + std::to_string(query.iters) +
                          " warps=" + std::to_string(query.warps) +
                          " blocks=" + std::to_string(query.blocks);
  profile_config.full_chip = full_chip;
  const prof::ProfileReport report =
      prof::build_profile(*query.device, input, std::move(profile_config));

  json::Object out = echo_config(query, full_chip ? "chip" : "sm");
  out.emplace("key", json::Value::string(report.key));
  out.emplace("cycles", json::Value::number(report.cycles));
  out.emplace("sms", json::Value::integer(report.sms));
  out.emplace("full_chip", json::Value::boolean(full_chip));
  json::Array sections;
  for (const auto& section : report.sections) {
    json::Object s;
    s.emplace("id", json::Value::string(section.id));
    s.emplace("title", json::Value::string(section.title));
    json::Array metrics;
    for (const auto& metric : section.metrics) {
      json::Object m;
      m.emplace("name", json::Value::string(metric.name));
      m.emplace("value", json::Value::number(metric.value));
      m.emplace("unit", json::Value::string(metric.unit));
      metrics.push_back(json::Value::object(std::move(m)));
    }
    s.emplace("metrics", json::Value::array(std::move(metrics)));
    sections.push_back(json::Value::object(std::move(s)));
  }
  out.emplace("sections", json::Value::array(std::move(sections)));
  return json::Value::object(std::move(out));
}

Expected<json::Value> run_trace(const KernelQuery& query, int top_n) {
  trace::AggregatingSink agg;
  std::unique_ptr<mem::MemorySystem> memsys;
  if (query.kernel.needs_mem) {
    memsys = std::make_unique<mem::MemorySystem>(*query.device, 1);
    memsys->set_trace(&agg);
  }
  sm::SmCore core(*query.device, memsys.get());
  core.set_trace(&agg);
  sm::BlockShape shape;
  shape.threads_per_block = query.threads_per_block;
  shape.blocks = query.total_blocks;
  const sm::RunResult result = core.run(query.kernel.program, shape);

  // Top-N stall buckets by cycles; ties keep the (reason, location) map
  // order, so the selection is deterministic.
  std::vector<std::pair<trace::AggregatingSink::StallKey,
                        trace::AggregatingSink::Bucket>>
      buckets(agg.stalls().begin(), agg.stalls().end());
  std::stable_sort(buckets.begin(), buckets.end(),
                   [](const auto& a, const auto& b) {
                     return a.second.cycles > b.second.cycles;
                   });
  if (buckets.size() > static_cast<std::size_t>(top_n)) {
    buckets.resize(static_cast<std::size_t>(top_n));
  }

  json::Object out = echo_config(query, "sm");
  out.emplace("cycles", json::Value::number(result.cycles));
  out.emplace("instructions",
              json::Value::unsigned_integer(result.instructions_issued));
  out.emplace("ipc", json::Value::number(result.ipc()));
  out.emplace("stall_cycles", json::Value::number(agg.stall_cycles()));
  out.emplace("attributed_stall_cycles",
              json::Value::number(agg.attributed_stall_cycles()));
  out.emplace("issues", json::Value::unsigned_integer(agg.issues()));
  out.emplace("retires", json::Value::unsigned_integer(agg.retires()));
  json::Array stalls;
  for (const auto& [key, bucket] : buckets) {
    json::Object s;
    s.emplace("reason",
              json::Value::string(std::string(trace::to_string(key.first))));
    s.emplace("location", json::Value::string(key.second));
    s.emplace("cycles", json::Value::number(bucket.cycles));
    s.emplace("events", json::Value::unsigned_integer(bucket.events));
    stalls.push_back(json::Value::object(std::move(s)));
  }
  out.emplace("stalls", json::Value::array(std::move(stalls)));
  return json::Value::object(std::move(out));
}

struct SweepSpec {
  std::vector<const arch::DeviceSpec*> devices;
  std::string kernel_name;
  std::uint32_t iters = 0;
  std::vector<int> warps_list;
  std::vector<int> blocks_list;
  int exec_threads = 0;
};

Expected<json::Value> run_sweep(const SweepSpec& spec) {
  struct Point {
    bool ok = false;
    std::string error;
    double cycles = 0;
    std::uint64_t instructions = 0;
    double ipc = 0;
    std::uint64_t stall_cycles = 0;
    std::uint64_t mem_transactions = 0;
  };

  const std::size_t n = spec.devices.size() * spec.warps_list.size() *
                        spec.blocks_list.size();
  sim::SweepOptions sweep_options;
  sweep_options.threads =
      spec.exec_threads > 0 ? static_cast<std::size_t>(spec.exec_threads) : 0;
  const auto decompose = [&](std::size_t i) {
    const std::size_t per_device =
        spec.warps_list.size() * spec.blocks_list.size();
    const std::size_t d = i / per_device;
    const std::size_t rest = i % per_device;
    return std::tuple<std::size_t, std::size_t, std::size_t>(
        d, rest / spec.blocks_list.size(), rest % spec.blocks_list.size());
  };

  const auto results = sim::sweep(
      n,
      [&](sim::SweepContext& ctx) -> Point {
        const auto [d, w, b] = decompose(ctx.index());
        Point point;
        // Each point owns its kernel instance: nothing is shared between
        // points, the sweep engine's determinism precondition.
        auto kernel = resolve_trace_kernel(spec.kernel_name, spec.iters);
        if (!kernel) {
          point.error = kernel.error().to_string();
          return point;
        }
        const arch::DeviceSpec& device = *spec.devices[d];
        std::unique_ptr<mem::MemorySystem> memsys;
        if (kernel.value().needs_mem) {
          memsys = std::make_unique<mem::MemorySystem>(device, 1);
        }
        sm::SmCore core(device, memsys.get());
        sm::BlockShape shape;
        const int warps = spec.warps_list[w];
        shape.threads_per_block =
            warps > 0 ? warps * 32 : kernel.value().threads_per_block;
        const int blocks = spec.blocks_list[b];
        shape.blocks = blocks > 0 ? blocks : kernel.value().blocks;
        const sm::RunResult r = core.run(kernel.value().program, shape);
        point.ok = true;
        point.cycles = r.cycles;
        point.instructions = r.instructions_issued;
        point.ipc = r.ipc();
        point.stall_cycles = r.stall_cycles;
        point.mem_transactions = r.mem_transactions;
        return point;
      },
      sweep_options);

  json::Object out;
  out.emplace("kernel", json::Value::string(spec.kernel_name));
  out.emplace("iters", json::Value::unsigned_integer(spec.iters));
  out.emplace("points_total",
              json::Value::unsigned_integer(static_cast<std::uint64_t>(n)));
  json::Array points;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto [d, w, b] = decompose(i);
    const Point& point = results[i];
    json::Object p;
    p.emplace("device", json::Value::string(spec.devices[d]->name));
    p.emplace("warps", json::Value::integer(spec.warps_list[w]));
    p.emplace("blocks", json::Value::integer(spec.blocks_list[b]));
    if (!point.ok) {
      p.emplace("error", json::Value::string(point.error));
    } else {
      p.emplace("cycles", json::Value::number(point.cycles));
      p.emplace("instructions",
                json::Value::unsigned_integer(point.instructions));
      p.emplace("ipc", json::Value::number(point.ipc));
      p.emplace("stall_cycles",
                json::Value::unsigned_integer(point.stall_cycles));
      p.emplace("mem_transactions",
                json::Value::unsigned_integer(point.mem_transactions));
    }
    points.push_back(json::Value::object(std::move(p)));
  }
  out.emplace("points", json::Value::array(std::move(points)));
  return json::Value::object(std::move(out));
}

Expected<json::Value> run_fuzz(const arch::DeviceSpec& device,
                               std::uint64_t seed, std::uint64_t count,
                               bool full_chip, int exec_threads) {
  conformance::CampaignOptions options;
  options.seed = seed;
  options.count = count;
  options.threads =
      exec_threads > 0 ? static_cast<std::size_t>(exec_threads) : 0;
  options.shrink = false;  // a server answers; triage happens in `hsim fuzz`
  if (full_chip) options.fuzz.max_grid_blocks = 2 * device.sm_count;

  const conformance::Differ differ(device);
  const auto result =
      full_chip ? differ.campaign_full_chip(options) : differ.campaign(options);

  json::Object out;
  out.emplace("device", json::Value::string(device.name));
  out.emplace("seed", json::Value::unsigned_integer(seed));
  out.emplace("full_chip", json::Value::boolean(full_chip));
  out.emplace("cases", json::Value::unsigned_integer(result.cases));
  out.emplace("failed", json::Value::unsigned_integer(result.failed));
  out.emplace("passed",
              json::Value::unsigned_integer(result.cases - result.failed));
  out.emplace("instructions",
              json::Value::unsigned_integer(result.instructions));
  out.emplace("pipeline_cycles", json::Value::number(result.pipeline_cycles));
  if (result.first_failure.has_value()) {
    json::Object failure;
    failure.emplace("case_index",
                    json::Value::unsigned_integer(
                        result.first_failure->original.index));
    failure.emplace("message",
                    json::Value::string(result.first_failure->message));
    out.emplace("first_failure", json::Value::object(std::move(failure)));
  } else {
    out.emplace("first_failure", json::Value::null());
  }
  return json::Value::object(std::move(out));
}

}  // namespace

Expected<const arch::DeviceSpec*> resolve_device(std::string_view name) {
  auto device = arch::find_device(name);
  if (device) return device;
  std::string accepted;
  for (const auto* spec : arch::all_devices()) {
    if (!accepted.empty()) accepted += ", ";
    accepted += spec->name;
  }
  return invalid_argument("unknown device: " + std::string(name) +
                          " (accepted: " + accepted + ")");
}

Expected<trace::TraceKernel> resolve_trace_kernel(std::string_view name,
                                                  std::uint32_t iterations) {
  auto kernel = trace::make_trace_kernel(name, iterations);
  if (kernel.has_value()) return std::move(kernel).value();
  std::string accepted;
  for (const auto known : trace::trace_kernel_names()) {
    if (!accepted.empty()) accepted += ", ";
    accepted += known;
  }
  return invalid_argument("unknown kernel: " + std::string(name) +
                          " (accepted: " + accepted + ")");
}

struct ServeEngine::Prepared {
  bool cacheable = false;
  QueryIdentity identity;
  double timeout_ms = 0;
  std::function<Expected<json::Value>()> work;
};

ServeEngine::ServeEngine(ServeOptions options) : options_(options),
      cache_(options.cache_capacity) {}

ServeEngine::~ServeEngine() = default;

Expected<ServeEngine::Prepared> ServeEngine::prepare(
    const Request& request) const {
  ParamReader params(request.params);
  Prepared prepared;
  auto timeout = params.double_or("timeout_ms", options_.default_timeout_ms,
                                  0.0, kMaxTimeoutMs);
  if (!timeout) return timeout.error();
  prepared.timeout_ms = timeout.value();
  // Execution hint, not identity: determinism guarantees the answer does
  // not depend on it (the concurrency suite pins that).
  auto exec_threads = params.int_or("threads", options_.threads, 0, 256);
  if (!exec_threads) return exec_threads.error();

  const auto seal_identity = [&](std::string device, std::uint64_t program_hash,
                                 std::string config) {
    prepared.cacheable = true;
    prepared.identity.verb = request.verb;
    prepared.identity.device = std::move(device);
    prepared.identity.program_hash = program_hash;
    prepared.identity.config = std::move(config);
    prepared.identity.code_version = std::string(kCodeVersion);
  };

  if (request.verb == "simulate") {
    auto mode = params.string_or("mode", "sm");
    if (!mode) return mode.error();
    if (mode.value() != "sm" && mode.value() != "chip") {
      return invalid_argument("param \"mode\" must be \"sm\" or \"chip\"");
    }
    const bool chip = mode.value() == "chip";
    auto query = read_kernel_query(params, chip, 256);
    if (!query) return query.error();
    if (auto done = params.finish(); !done) return done.error();
    seal_identity(query.value().device->name,
                  ff::SnapshotKey::hash_program(query.value().kernel.program),
                  kernel_identity_config(query.value(), mode.value()));
    const int threads = exec_threads.value();
    prepared.work = [query = std::move(query).value(), chip, threads] {
      return chip ? run_simulate_chip(query, threads)
                  : run_simulate_sm(query);
    };
    return prepared;
  }

  if (request.verb == "profile") {
    auto full_chip = params.bool_or("full_chip", false);
    if (!full_chip) return full_chip.error();
    auto query = read_kernel_query(params, full_chip.value(), 256);
    if (!query) return query.error();
    if (auto done = params.finish(); !done) return done.error();
    seal_identity(query.value().device->name,
                  ff::SnapshotKey::hash_program(query.value().kernel.program),
                  kernel_identity_config(query.value(),
                                         full_chip.value() ? "profile-chip"
                                                           : "profile-sm"));
    const int threads = exec_threads.value();
    const bool chip = full_chip.value();
    prepared.work = [query = std::move(query).value(), chip, threads] {
      return run_profile(query, chip, threads);
    };
    return prepared;
  }

  if (request.verb == "trace") {
    auto top = params.int_or("top", 10, 1, kMaxTop);
    if (!top) return top.error();
    auto query = read_kernel_query(params, /*chip_blocks=*/false, 256);
    if (!query) return query.error();
    if (auto done = params.finish(); !done) return done.error();
    seal_identity(query.value().device->name,
                  ff::SnapshotKey::hash_program(query.value().kernel.program),
                  kernel_identity_config(query.value(), "trace") +
                      " top=" + std::to_string(top.value()));
    const int top_n = top.value();
    prepared.work = [query = std::move(query).value(), top_n] {
      return run_trace(query, top_n);
    };
    return prepared;
  }

  if (request.verb == "sweep") {
    SweepSpec spec;
    spec.exec_threads = exec_threads.value();
    auto device_name = params.string_or("device", "");
    if (!device_name) return device_name.error();
    std::vector<std::string> default_devices;
    if (!device_name.value().empty()) {
      default_devices.push_back(device_name.value());
    }
    auto device_names = params.string_list_or("devices", default_devices,
                                              kMaxSweepDevices);
    if (!device_names) return device_names.error();
    if (device_names.value().empty()) {
      return invalid_argument("sweep needs \"device\" or \"devices\"");
    }
    std::string joined_devices;
    for (const auto& name : device_names.value()) {
      auto device = resolve_device(name);
      if (!device) return device.error();
      spec.devices.push_back(device.value());
      if (!joined_devices.empty()) joined_devices += ",";
      joined_devices += device.value()->name;
    }
    auto kernel_name = params.required_string("kernel");
    if (!kernel_name) return kernel_name.error();
    spec.kernel_name = kernel_name.value();
    auto iters = params.u64_or("iters", 256, 1, kMaxIters);
    if (!iters) return iters.error();
    spec.iters = static_cast<std::uint32_t>(iters.value());
    // Validate the kernel once up front so a typo is a synchronous error.
    if (auto kernel = resolve_trace_kernel(spec.kernel_name, spec.iters);
        !kernel) {
      return kernel.error();
    }
    auto warps_list = params.int_list_or("warps_list", {0}, 0,
                                         kMaxWarpsPerBlock, kMaxSweepList);
    if (!warps_list) return warps_list.error();
    spec.warps_list = std::move(warps_list).value();
    auto blocks_list = params.int_list_or("blocks_list", {0}, 0, kMaxBlocks,
                                          kMaxSweepList);
    if (!blocks_list) return blocks_list.error();
    spec.blocks_list = std::move(blocks_list).value();
    if (auto done = params.finish(); !done) return done.error();

    const std::size_t n = spec.devices.size() * spec.warps_list.size() *
                          spec.blocks_list.size();
    if (n > kMaxSweepPoints) {
      return invalid_argument("sweep of " + std::to_string(n) +
                              " points exceeds the " +
                              std::to_string(kMaxSweepPoints) + "-point cap");
    }

    json::Object config;
    config.emplace("kernel", json::Value::string(spec.kernel_name));
    config.emplace("iters", json::Value::unsigned_integer(spec.iters));
    json::Array warps_json;
    for (const int w : spec.warps_list) {
      warps_json.push_back(json::Value::integer(w));
    }
    config.emplace("warps_list", json::Value::array(std::move(warps_json)));
    json::Array blocks_json;
    for (const int b : spec.blocks_list) {
      blocks_json.push_back(json::Value::integer(b));
    }
    config.emplace("blocks_list", json::Value::array(std::move(blocks_json)));

    const std::uint64_t program_hash = ff::SnapshotKey::hash_program(
        resolve_trace_kernel(spec.kernel_name, spec.iters).value().program);
    seal_identity(joined_devices, program_hash,
                  json::Value::object(std::move(config)).dump());
    prepared.work = [spec = std::move(spec)] { return run_sweep(spec); };
    return prepared;
  }

  if (request.verb == "fuzz") {
    auto device_name = params.required_string("device");
    if (!device_name) return device_name.error();
    auto device = resolve_device(device_name.value());
    if (!device) return device.error();
    auto seed = params.u64_or("seed", 1, 0,
                              std::numeric_limits<std::uint64_t>::max());
    if (!seed) return seed.error();
    auto count = params.u64_or("count", 50, 1, kMaxFuzzCases);
    if (!count) return count.error();
    auto full_chip = params.bool_or("full_chip", false);
    if (!full_chip) return full_chip.error();
    if (auto done = params.finish(); !done) return done.error();

    seal_identity(device.value()->name, 0,
                  "seed=" + std::to_string(seed.value()) +
                      " count=" + std::to_string(count.value()) +
                      (full_chip.value() ? " full-chip" : " single-sm"));
    const arch::DeviceSpec* spec = device.value();
    const std::uint64_t seed_v = seed.value();
    const std::uint64_t count_v = count.value();
    const bool chip = full_chip.value();
    const int threads = exec_threads.value();
    prepared.work = [spec, seed_v, count_v, chip, threads] {
      return run_fuzz(*spec, seed_v, count_v, chip, threads);
    };
    return prepared;
  }

  if (request.verb == "stats" || request.verb == "ping") {
    if (auto done = params.finish(); !done) return done.error();
    // Handled synchronously in execute(); prepared.work stays empty.
    return prepared;
  }

  return invalid_argument(
      "unknown verb: \"" + request.verb +
      "\" (accepted: simulate, profile, sweep, trace, fuzz, stats, ping, "
      "close, shutdown)");
}

std::string ServeEngine::stats_payload() const {
  const ResultCache::Stats cache = cache_.stats();
  json::Object cache_json;
  cache_json.emplace("capacity", json::Value::unsigned_integer(cache.capacity));
  cache_json.emplace("entries", json::Value::unsigned_integer(cache.entries));
  cache_json.emplace("lookups", json::Value::unsigned_integer(cache.lookups));
  cache_json.emplace("hits", json::Value::unsigned_integer(cache.hits));
  cache_json.emplace("misses", json::Value::unsigned_integer(cache.misses));
  cache_json.emplace("insertions",
                     json::Value::unsigned_integer(cache.insertions));
  cache_json.emplace("evictions",
                     json::Value::unsigned_integer(cache.evictions));

  json::Object requests;
  requests.emplace("total", json::Value::unsigned_integer(requests_.load()));
  requests.emplace("ok", json::Value::unsigned_integer(ok_.load()));
  requests.emplace("errors", json::Value::unsigned_integer(errors_.load()));
  requests.emplace("timeouts", json::Value::unsigned_integer(timeouts_.load()));
  requests.emplace("rejected", json::Value::unsigned_integer(rejected_.load()));

  json::Object out;
  out.emplace("protocol", json::Value::string(std::string(kProtocolVersion)));
  out.emplace("code_version", json::Value::string(std::string(kCodeVersion)));
  out.emplace("cache", json::Value::object(std::move(cache_json)));
  out.emplace("requests", json::Value::object(std::move(requests)));
  return json::Value::object(std::move(out)).dump();
}

ServeEngine::Counters ServeEngine::counters() const {
  Counters out;
  out.requests = requests_.load();
  out.ok = ok_.load();
  out.errors = errors_.load();
  out.timeouts = timeouts_.load();
  out.rejected = rejected_.load();
  return out;
}

Expected<std::string> ServeEngine::execute(const Request& request) {
  auto prepared = prepare(request);
  if (!prepared) return prepared.error();
  if (request.verb == "stats") return stats_payload();
  if (request.verb == "ping") {
    json::Object out;
    out.emplace("protocol", json::Value::string(std::string(kProtocolVersion)));
    out.emplace("code_version",
                json::Value::string(std::string(kCodeVersion)));
    return json::Value::object(std::move(out)).dump();
  }
  return run_prepared(std::move(prepared).value());
}

Expected<std::string> ServeEngine::run_prepared(Prepared prepared) {
  std::uint64_t key = 0;
  if (prepared.cacheable) {
    key = cache_key(prepared.identity);
    if (auto hit = cache_.lookup(key)) return std::move(*hit);
  }

  // Bounded queue: beyond max_inflight concurrently executing requests the
  // server sheds load instead of queueing without bound.
  if (static_cast<std::size_t>(inflight_.fetch_add(1) + 1) >
      options_.max_inflight) {
    inflight_.fetch_sub(1);
    rejected_.fetch_add(1);
    return resource_exhausted(
        "server busy: " + std::to_string(options_.max_inflight) +
        " requests already in flight");
  }

  const auto finish = [this, key, cacheable = prepared.cacheable](
                          Expected<json::Value> r) -> Expected<std::string> {
    if (!r) return r.error();
    std::string payload = r.value().dump();
    if (cacheable) cache_.insert(key, payload);
    return payload;
  };

  if (prepared.timeout_ms <= 0) {
    auto result = finish(prepared.work());
    inflight_.fetch_sub(1);
    return result;
  }

  // Deadline-supervised: the work runs on the pool; on expiry the reply is
  // an error but the computation completes and populates the cache, so a
  // retry of the same query hits.
  struct JobState {
    std::mutex mutex;
    std::optional<Expected<std::string>> outcome;
  };
  auto state = std::make_shared<JobState>();
  auto task = [this, state, work = std::move(prepared.work), finish] {
    Expected<json::Value> r = [&]() -> Expected<json::Value> {
      try {
        return work();
      } catch (const std::exception& e) {
        return Error{ErrorCode::kInternal,
                     std::string("request handler threw: ") + e.what()};
      } catch (...) {
        return Error{ErrorCode::kInternal, "request handler threw"};
      }
    }();
    auto result = finish(std::move(r));
    {
      const std::lock_guard<std::mutex> lock(state->mutex);
      state->outcome.emplace(std::move(result));
    }
    inflight_.fetch_sub(1);
  };
  std::future<void> done;
  {
    const std::lock_guard<std::mutex> lock(pool_mutex_);
    if (pool_ == nullptr) {
      pool_ = std::make_unique<ThreadPool>(
          options_.threads > 0 ? static_cast<std::size_t>(options_.threads)
                               : 0);
    }
    done = pool_->submit(std::move(task));
  }
  const auto deadline =
      std::chrono::duration<double, std::milli>(prepared.timeout_ms);
  if (done.wait_for(deadline) == std::future_status::ready) {
    const std::lock_guard<std::mutex> lock(state->mutex);
    return *state->outcome;
  }
  timeouts_.fetch_add(1);
  return deadline_exceeded(
      "request exceeded its " +
      std::to_string(static_cast<long long>(prepared.timeout_ms)) +
      " ms deadline (still computing; a retry may hit the cache)");
}

std::string Session::handle_line(std::string_view line) {
  engine_.count_request();
  auto parsed = parse_request(line);
  if (!parsed) {
    engine_.count_error();
    return make_error_reply(recover_request_id(line), parsed.error());
  }
  const Request& request = parsed.value();

  if (request.verb == "close") {
    if (!request.params.empty()) {
      engine_.count_error();
      return make_error_reply(request.id,
                              invalid_argument("close takes no params"));
    }
    closed_ = true;
    engine_.count_ok();
    return make_ok_reply(request.id, "{\"closing\":true}");
  }
  if (request.verb == "shutdown") {
    if (!request.params.empty()) {
      engine_.count_error();
      return make_error_reply(request.id,
                              invalid_argument("shutdown takes no params"));
    }
    engine_.request_shutdown();
    closed_ = true;
    engine_.count_ok();
    return make_ok_reply(request.id, "{\"shutting_down\":true}");
  }

  auto result = engine_.execute(request);
  if (!result) {
    engine_.count_error();
    return make_error_reply(request.id, result.error());
  }
  engine_.count_ok();
  return make_ok_reply(request.id, result.value());
}

}  // namespace hsim::serve
