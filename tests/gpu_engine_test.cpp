// Full-chip engine: determinism at any thread count, dispatcher slot
// recycling, epoch invariance, emergent wave quantisation, and the
// grid-level differential fuzz campaign from the conformance subsystem.
#include "gpu/gpu_engine.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "conformance/differ.hpp"
#include "conformance/fuzzer.hpp"
#include "sm/launcher.hpp"

namespace hsim::gpu {
namespace {

using arch::h800_pcie;

isa::Program alu_kernel(std::uint32_t iterations = 64) {
  isa::Program p;
  p.fadd(1, 1, 2);
  p.add({.op = isa::Opcode::kIMad, .rd = 3, .ra = 3, .rb = 1, .rc = 2});
  p.set_iterations(iterations);
  return p;
}

// Dependent global loads with per-thread masked addresses: every warp keeps
// the L1/L2/DRAM ticket machinery busy so barrier resolution order matters.
isa::Program memory_kernel(std::uint32_t iterations = 8) {
  isa::Program p;
  p.add({.op = isa::Opcode::kShf, .rd = 1, .ra = 0, .imm = 3});  // 8 * tid
  p.mov(2, static_cast<std::int64_t>(
               conformance::kGlobalWords * 8 - 1));  // byte-address mask
  p.add({.op = isa::Opcode::kLop3, .rd = 1, .ra = 1, .rb = 2, .imm = 0});
  p.add({.op = isa::Opcode::kLdgCg, .rd = 3, .ra = 1, .access_bytes = 8});
  p.add({.op = isa::Opcode::kLop3, .rd = 1, .ra = 3, .rb = 2, .imm = 0});
  p.add({.op = isa::Opcode::kLdgCa, .rd = 4, .ra = 1, .access_bytes = 4});
  p.add({.op = isa::Opcode::kIAdd3, .rd = 5, .ra = 5, .rb = 4});
  p.set_iterations(iterations);
  return p;
}

void expect_identical(const ChipResult& a, const ChipResult& b) {
  EXPECT_EQ(a.cycles, b.cycles);
  EXPECT_EQ(a.epochs, b.epochs);
  EXPECT_EQ(a.instructions_issued, b.instructions_issued);
  EXPECT_EQ(a.stall_cycles, b.stall_cycles);
  EXPECT_EQ(a.mem_transactions, b.mem_transactions);
  EXPECT_EQ(a.warps_retired, b.warps_retired);
  ASSERT_EQ(a.per_sm.size(), b.per_sm.size());
  for (std::size_t i = 0; i < a.per_sm.size(); ++i) {
    EXPECT_EQ(a.per_sm[i].cycles, b.per_sm[i].cycles) << "sm " << i;
    EXPECT_EQ(a.per_sm[i].instructions_issued, b.per_sm[i].instructions_issued)
        << "sm " << i;
    EXPECT_EQ(a.per_sm[i].stall_cycles, b.per_sm[i].stall_cycles)
        << "sm " << i;
  }
}

TEST(GpuEngine, SingleBlockMatchesRepresentativeLaunch) {
  // One pure-ALU block: the full chip runs it on SM 0 with an idle fabric,
  // so its wall time must equal the representative model's bit-for-bit.
  const auto& device = h800_pcie();
  const sm::LaunchConfig config{.threads_per_block = 256, .total_blocks = 1};
  const auto rep = sm::launch(device, alu_kernel(), config);
  const auto chip = GpuEngine(device).run(alu_kernel(), config);
  ASSERT_TRUE(rep.has_value() && chip.has_value());
  EXPECT_EQ(chip.value().cycles, rep.value().cycles);
  EXPECT_EQ(chip.value().warps_retired, 8u);
  EXPECT_GT(chip.value().ipc(), 0.0);
}

TEST(GpuEngine, HomogeneousFullWaveMatchesAnalytic) {
  // A full wave of identical ALU blocks: every SM runs the same resident
  // set with no shared-memory-system coupling, so the emergent full-chip
  // time equals the analytic wave model exactly.
  const auto& device = h800_pcie();
  const sm::LaunchConfig config{.threads_per_block = 1024,
                                .total_blocks = 2 * device.sm_count,
                                .regs_per_thread = 16};
  const auto rep = sm::launch(device, alu_kernel(), config);
  const auto chip = GpuEngine(device).run(alu_kernel(), config);
  ASSERT_TRUE(rep.has_value() && chip.has_value());
  EXPECT_EQ(chip.value().block_slots, 2);
  EXPECT_DOUBLE_EQ(chip.value().waves, 1.0);
  EXPECT_EQ(chip.value().cycles, rep.value().cycles);
}

TEST(GpuEngine, WaveQuantisationEmerges) {
  // 2*sms blocks fill one wave; one more block forces a mostly-idle second
  // wave; 4*sms costs about twice one wave.  The full chip reproduces the
  // sawtooth without the analytic model's ceil().
  const auto& device = h800_pcie();
  sm::LaunchConfig config{.threads_per_block = 1024, .regs_per_thread = 16};
  const GpuEngine engine(device);
  config.total_blocks = 2 * device.sm_count;
  const auto full = engine.run(alu_kernel(), config);
  config.total_blocks = 2 * device.sm_count + 1;
  const auto spill = engine.run(alu_kernel(), config);
  config.total_blocks = 4 * device.sm_count;
  const auto two = engine.run(alu_kernel(), config);
  ASSERT_TRUE(full.has_value() && spill.has_value() && two.has_value());
  EXPECT_GT(spill.value().cycles, full.value().cycles * 1.3);
  EXPECT_NEAR(two.value().cycles, 2 * full.value().cycles,
              0.1 * full.value().cycles);
}

TEST(GpuEngine, BitIdenticalAcrossThreadCounts) {
  const auto& device = h800_pcie();
  auto global = conformance::make_global_image(7);
  const sm::LaunchConfig config{.threads_per_block = 128,
                                .total_blocks = 3 * device.sm_count + 5};
  std::vector<ChipResult> results;
  for (const int threads : {1, 4, 8, 1}) {  // trailing 1: rerun stability
    const auto r = GpuEngine(device, {.threads = threads})
                       .run(memory_kernel(), config, global);
    ASSERT_TRUE(r.has_value()) << "threads=" << threads;
    results.push_back(r.value());
  }
  for (std::size_t i = 1; i < results.size(); ++i) {
    SCOPED_TRACE(i);
    expect_identical(results[0], results[i]);
  }
  EXPECT_GT(results[0].mem_transactions, 0u);
}

TEST(GpuEngine, FuzzCorpusBitIdenticalAcrossThreads) {
  // Satellite pin: generated multi-CTA cases — the exact corpus the
  // campaign draws from — must observe identical registers and timing
  // whether the engine advances SMs serially or on 4/8 workers.
  const auto& device = h800_pcie();
  const conformance::Differ differ(device);
  conformance::FuzzOptions fuzz;
  fuzz.max_grid_blocks = 2 * device.sm_count;
  const conformance::ProgramFuzzer fuzzer(fuzz);
  const auto global = conformance::make_global_image(11);
  for (std::uint64_t index = 0; index < 6; ++index) {
    SCOPED_TRACE(index);
    const auto fuzz_case = fuzzer.generate(11, index);
    const auto serial = differ.run_full_chip(fuzz_case, global, 1);
    for (const int threads : {4, 8}) {
      const auto parallel = differ.run_full_chip(fuzz_case, global, threads);
      EXPECT_EQ(serial.chip.cycles, parallel.chip.cycles);
      EXPECT_EQ(serial.chip.instructions_issued,
                parallel.chip.instructions_issued);
      EXPECT_EQ(serial.chip.stall_cycles, parallel.chip.stall_cycles);
      EXPECT_EQ(serial.chip.epochs, parallel.chip.epochs);
      EXPECT_EQ(serial.blocks_observed, parallel.blocks_observed);
      EXPECT_EQ(serial.regs, parallel.regs);
    }
  }
}

TEST(GpuEngine, ObserverSeesEveryBlockExactlyOnce) {
  // More blocks than SMs with one slot each: the dispatcher must recycle
  // slots, and every grid block must retire through the observer once.
  const auto& device = h800_pcie();
  const int total = 2 * device.sm_count + 17;
  std::vector<int> seen(static_cast<std::size_t>(total), 0);
  ChipOptions options;
  options.max_blocks_per_sm = 1;
  options.block_observer = [&](int sm, int slot, int block,
                               const sm::SmCore&) {
    ASSERT_GE(block, 0);
    ASSERT_LT(block, total);
    EXPECT_EQ(slot, 0);
    EXPECT_LT(sm, device.sm_count);
    ++seen[static_cast<std::size_t>(block)];
  };
  const auto r = GpuEngine(device, std::move(options))
                     .run(alu_kernel(8), {.threads_per_block = 64,
                                          .total_blocks = total});
  ASSERT_TRUE(r.has_value());
  for (int b = 0; b < total; ++b) EXPECT_EQ(seen[static_cast<std::size_t>(b)], 1) << "block " << b;
  EXPECT_EQ(r.value().warps_retired, static_cast<std::uint64_t>(2 * total));
  EXPECT_GT(r.value().waves, 2.0);
}

TEST(GpuEngine, EpochSizeInvariantForResidentGrids) {
  // For a grid that fits in one wave there are no epoch-quantised block
  // launches, so timing must be independent of the barrier interval (the
  // engine clamps it to the L2 hit latency above that).
  const auto& device = h800_pcie();
  auto global = conformance::make_global_image(3);
  const sm::LaunchConfig config{.threads_per_block = 256,
                                .total_blocks = device.sm_count};
  const auto base = GpuEngine(device, {.epoch = 64.0})
                        .run(memory_kernel(), config, global);
  ASSERT_TRUE(base.has_value());
  for (const double epoch : {17.0, 130.0, 1e9}) {
    const auto r = GpuEngine(device, {.epoch = epoch})
                       .run(memory_kernel(), config, global);
    ASSERT_TRUE(r.has_value()) << "epoch=" << epoch;
    EXPECT_EQ(r.value().cycles, base.value().cycles) << "epoch=" << epoch;
    EXPECT_EQ(r.value().stall_cycles, base.value().stall_cycles)
        << "epoch=" << epoch;
  }
}

TEST(GpuEngine, SliceCountPreservesStreamingBandwidthShape) {
  // Consecutive lines interleave across slices, so a streaming kernel's
  // wall time should be nearly slice-count independent (per-slice ports
  // are narrower but see proportionally fewer transactions).
  const auto& device = h800_pcie();
  auto global = conformance::make_global_image(5);
  const sm::LaunchConfig config{.threads_per_block = 256,
                                .total_blocks = device.sm_count};
  const auto one = GpuEngine(device, {.l2_slices = 1})
                       .run(memory_kernel(), config, global);
  const auto eight = GpuEngine(device, {.l2_slices = 8})
                         .run(memory_kernel(), config, global);
  ASSERT_TRUE(one.has_value() && eight.has_value());
  EXPECT_NEAR(eight.value().cycles, one.value().cycles,
              0.25 * one.value().cycles);
}

TEST(GpuEngine, RejectsDegenerateLaunches) {
  const auto& device = h800_pcie();
  EXPECT_FALSE(GpuEngine(device)
                   .run(alu_kernel(), {.threads_per_block = 64,
                                       .total_blocks = 0})
                   .has_value());
  EXPECT_FALSE(GpuEngine(device)
                   .run(alu_kernel(), {.threads_per_block = 2048,
                                       .total_blocks = 1})
                   .has_value());
}

TEST(GpuLaunch, FullChipModeReportsWaves) {
  const auto& device = h800_pcie();
  const sm::LaunchConfig config{.threads_per_block = 1024,
                                .total_blocks = 2 * device.sm_count + 1,
                                .regs_per_thread = 16};
  const auto rep =
      launch(device, alu_kernel(), config, sm::LaunchMode::kRepresentative);
  const auto chip = launch(device, alu_kernel(), config,
                           sm::LaunchMode::kFullChip);
  ASSERT_TRUE(rep.has_value() && chip.has_value());
  EXPECT_EQ(rep.value().waves, 2);
  EXPECT_EQ(chip.value().waves, 2);
  EXPECT_GT(chip.value().cycles, 0.0);
  EXPECT_NEAR(chip.value().seconds,
              chip.value().cycles / device.clock_hz(), 1e-12);
}

TEST(GpuEngineCampaign, GridFuzzDifferentialClean) {
  // Acceptance pin: a 200-case multi-CTA campaign cross-checked against
  // the reference interpreter, with grids up to twice the chip's one-slot
  // capacity so dispatcher recycling is constantly exercised.
  const auto& device = h800_pcie();
  const conformance::Differ differ(device);
  conformance::CampaignOptions options;
  options.seed = 2026;
  options.count = 200;
  options.fuzz.max_grid_blocks = 2 * device.sm_count;
  const auto result = differ.campaign_full_chip(options);
  EXPECT_TRUE(result.ok())
      << "failed " << result.failed << "/" << result.cases << ": "
      << (result.first_failure ? result.first_failure->message : "");
  EXPECT_EQ(result.cases, 200u);
  EXPECT_GT(result.instructions, 0u);
}

}  // namespace
}  // namespace hsim::gpu
