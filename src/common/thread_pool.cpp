#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace hsim {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured in the task's future
  }
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t chunks = std::min(n, std::max<std::size_t>(1, size() * 4));
  std::atomic<std::size_t> next{begin};
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    futures.push_back(submit([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= end) return;
        fn(i);
      }
    }));
  }
  std::exception_ptr first_error;
  for (auto& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hsim
