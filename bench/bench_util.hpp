// Shared plumbing for the paper-table bench binaries.
//
// Every binary prints its table(s) to stdout in the paper's layout; pass
// --csv to emit machine-readable CSV instead (for re-plotting figures).
#pragma once

#include <cstring>
#include <iostream>
#include <string>

#include "arch/device.hpp"
#include "common/table.hpp"

namespace hsim::bench {

struct Options {
  bool csv = false;
  bool quick = false;  // trim sweeps for CI
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--csv") == 0) opt.csv = true;
    if (std::strcmp(argv[i], "--quick") == 0) opt.quick = true;
  }
  return opt;
}

inline void emit(const Table& table, const Options& opt) {
  if (opt.csv) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
  }
  std::cout << '\n';
}

}  // namespace hsim::bench
