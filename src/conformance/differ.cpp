#include "conformance/differ.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <sstream>

#include "isa/assembler.hpp"
#include "mem/memory_system.hpp"
#include "sim/sweep.hpp"
#include "trace/sinks.hpp"

namespace hsim::conformance {
namespace {

constexpr double kCycleEps = 1e-6;

int register_count(const isa::Program& program) {
  int max_reg = 0;
  for (const auto& inst : program.body()) {
    max_reg = std::max({max_reg, inst.rd, inst.ra, inst.rb, inst.rc});
  }
  return max_reg + 1;
}

/// Checks the per-event timing invariants the aggregate sink cannot see:
/// non-negative times, monotone simulation time, no event outliving the
/// kernel, and each warp retiring no earlier than its last issue.
class InvariantSink final : public trace::TraceSink {
 public:
  void on_event(const trace::Event& event) override {
    if (event.cycle < 0 || event.duration < 0) nonneg = false;
    if (event.cycle + kCycleEps < last_cycle_) monotone = false;
    last_cycle_ = std::max(last_cycle_, event.cycle);
    max_event_end = std::max(max_event_end, event.cycle + event.duration);
    if (event.warp >= 0) {
      if (event.kind == trace::EventKind::kIssue) {
        last_issue_[event.warp] = event.cycle;
      } else if (event.kind == trace::EventKind::kRetire) {
        const auto it = last_issue_.find(event.warp);
        if (it != last_issue_.end() && event.cycle + kCycleEps < it->second) {
          retire_after_issue = false;
        }
      }
    }
  }

  double max_event_end = 0;
  bool monotone = true;
  bool nonneg = true;
  bool retire_after_issue = true;

 private:
  double last_cycle_ = 0;
  std::map<std::int32_t, double> last_issue_;
};

/// Invariants checkable on the full-chip *merged* stream.  Per-warp checks
/// (retire-after-issue) are representative-mode-only: slot recycling reuses
/// warp ids within an SM and across SMs, so issue/retire pairs no longer
/// key by warp alone.
class MergedInvariantSink final : public trace::TraceSink {
 public:
  void on_event(const trace::Event& event) override {
    if (event.cycle < 0 || event.duration < 0) nonneg = false;
    if (event.cycle + kCycleEps < last_cycle_) monotone = false;
    last_cycle_ = std::max(last_cycle_, event.cycle);
    max_event_end = std::max(max_event_end, event.cycle + event.duration);
  }

  double max_event_end = 0;
  bool monotone = true;
  bool nonneg = true;

 private:
  double last_cycle_ = 0;
};

}  // namespace

std::string DiffReport::summary() const {
  std::string out;
  for (const auto& failure : failures) {
    if (!out.empty()) out += "; ";
    out += failure;
  }
  return out;
}

Differ::Differ(const arch::DeviceSpec& device) : device_(device) {}

PipelineObservation Differ::run_pipeline(
    const FuzzCase& fuzz_case, std::span<const std::uint64_t> global) const {
  // SmCore wants a mutable span (stores exist in the ISA even though the
  // model never commits them); keep a private copy so the campaign image
  // stays shared and read-only.
  std::vector<std::uint64_t> global_copy(global.begin(), global.end());

  mem::MemorySystem memory(device_, 1);
  sm::SmCore core(device_, &memory, 0);
  core.bind_global(global_copy);

  trace::AggregatingSink agg;
  InvariantSink inv;
  trace::TeeSink tee;
  tee.add(&agg);
  tee.add(&inv);
  core.set_trace(&tee);

  PipelineObservation obs;
  core.set_pmu(&obs.pmu);
  memory.set_pmu(&obs.pmu);
  obs.result = core.run(fuzz_case.program, fuzz_case.shape);

  const int num_regs = register_count(fuzz_case.program);
  const int total_warps = fuzz_case.shape.total_warps();
  obs.regs.assign(static_cast<std::size_t>(total_warps),
                  std::vector<std::uint64_t>(
                      static_cast<std::size_t>(num_regs) * kLanes, 0));
  for (int w = 0; w < total_warps; ++w) {
    for (int r = 0; r < num_regs; ++r) {
      for (int l = 0; l < kLanes; ++l) {
        obs.regs[static_cast<std::size_t>(w)]
                [static_cast<std::size_t>(r) * kLanes +
                 static_cast<std::size_t>(l)] = core.reg(w, r, l);
      }
    }
  }
  const auto shared = core.shared().bytes();
  obs.shared.assign(shared.begin(), shared.end());

  obs.agg_stall_cycles = agg.stall_cycles();
  for (const auto& [key, bucket] : agg.stalls()) {
    if (key.first == trace::StallReason::kSmemBankConflict &&
        key.second == "Smem.bank") {
      obs.bank_conflict_cycles += bucket.cycles;
    }
  }
  obs.agg_issues = agg.issues();
  obs.agg_retires = agg.retires();
  obs.max_event_end = inv.max_event_end;
  obs.monotone = inv.monotone;
  obs.nonneg = inv.nonneg;
  obs.retire_after_issue = inv.retire_after_issue;
  return obs;
}

DiffReport Differ::diff(const FuzzCase& fuzz_case,
                        std::span<const std::uint64_t> global) const {
  DiffReport report;
  const auto fail = [&](std::string message) {
    report.failures.push_back(std::move(message));
  };
  const auto run = [&](const FuzzCase& c) {
    return pipeline_ ? pipeline_(c, global) : run_pipeline(c, global);
  };

  RefInterp ref(device_);
  ref.bind_global(global);
  const RefResult expect = ref.run(fuzz_case.program, fuzz_case.shape);
  const PipelineObservation obs = run(fuzz_case);

  report.instructions = expect.instructions;
  report.cycles = obs.result.cycles;

  const auto total_warps =
      static_cast<std::uint64_t>(fuzz_case.shape.total_warps());
  std::ostringstream msg;
  const auto flush = [&]() {
    fail(msg.str());
    msg.str({});
  };

  // --- Retirement ledger -------------------------------------------------
  if (obs.result.instructions_issued != expect.instructions) {
    msg << "instructions_issued " << obs.result.instructions_issued
        << " != reference " << expect.instructions;
    flush();
  }
  if (obs.result.warps_retired != total_warps) {
    msg << "warps_retired " << obs.result.warps_retired << " != "
        << total_warps << " launched";
    flush();
  }
  if (expect.retire_order.size() != total_warps) {
    msg << "reference retired " << expect.retire_order.size() << " of "
        << total_warps << " warps";
    flush();
  }
  if (obs.agg_issues != obs.result.instructions_issued) {
    msg << "trace issues " << obs.agg_issues << " != counter "
        << obs.result.instructions_issued;
    flush();
  }
  if (obs.agg_retires != obs.result.warps_retired) {
    msg << "trace retires " << obs.agg_retires << " != counter "
        << obs.result.warps_retired;
    flush();
  }

  // --- Counter conservation ----------------------------------------------
  // Internal invariants of the PMU block, then cross-checks against the
  // core's own retirement ledger.  Gated on the block being populated so a
  // test-injected PipelineFn without counters stays usable.
  std::string why;
  if (!obs.pmu.conserved(&why)) {
    msg << "pmu conservation: " << why;
    flush();
  }
  if (obs.pmu.get(prof::Counter::kInstIssued) > 0) {
    if (obs.pmu.get(prof::Counter::kInstIssued) !=
        static_cast<double>(obs.result.instructions_issued)) {
      msg << "pmu inst_issued " << obs.pmu.get(prof::Counter::kInstIssued)
          << " != counter " << obs.result.instructions_issued;
      flush();
    }
    if (obs.pmu.get(prof::Counter::kInstRetired) !=
        obs.pmu.get(prof::Counter::kInstIssued)) {
      msg << "pmu inst_retired " << obs.pmu.get(prof::Counter::kInstRetired)
          << " != issued " << obs.pmu.get(prof::Counter::kInstIssued)
          << " at kernel end";
      flush();
    }
    if (obs.pmu.get(prof::Counter::kWarpsRetired) !=
        static_cast<double>(obs.result.warps_retired)) {
      msg << "pmu warps_retired " << obs.pmu.get(prof::Counter::kWarpsRetired)
          << " != counter " << obs.result.warps_retired;
      flush();
    }
  }

  // --- Timing sanity -----------------------------------------------------
  if (!(obs.result.cycles > 0)) {
    msg << "cycles " << obs.result.cycles << " not positive";
    flush();
  }
  const double scheduler_stalls =
      obs.agg_stall_cycles - obs.bank_conflict_cycles;
  if (std::abs(scheduler_stalls -
               static_cast<double>(obs.result.stall_cycles)) > kCycleEps) {
    msg << "trace stall cycles " << scheduler_stalls << " != counter "
        << obs.result.stall_cycles;
    flush();
  }
  if (static_cast<double>(obs.result.stall_cycles) >
      4.0 * obs.result.cycles + kCycleEps) {
    msg << "stall cycles " << obs.result.stall_cycles
        << " exceed 4 slots x " << obs.result.cycles << " cycles";
    flush();
  }
  if (obs.max_event_end > obs.result.cycles + kCycleEps) {
    msg << "event ends at " << obs.max_event_end << " after kernel end "
        << obs.result.cycles;
    flush();
  }
  if (!obs.nonneg) fail("negative event cycle or duration");
  if (!obs.monotone) fail("event stream time went backwards");
  if (!obs.retire_after_issue) fail("warp retired before its last issue");

  // --- Architectural state ----------------------------------------------
  if (expect.clock_tainted) {
    // CLOCK read the cycle counter; registers legitimately diverge.
  } else if (obs.regs.size() != expect.regs.size()) {
    msg << "pipeline exposed " << obs.regs.size() << " warps, reference "
        << expect.regs.size();
    flush();
  } else {
    bool reported = false;
    for (std::size_t w = 0; w < expect.regs.size() && !reported; ++w) {
      if (obs.regs[w].size() != expect.regs[w].size()) {
        msg << "warp " << w << " register file size " << obs.regs[w].size()
            << " != " << expect.regs[w].size();
        flush();
        break;
      }
      for (std::size_t i = 0; i < expect.regs[w].size(); ++i) {
        if (obs.regs[w][i] == expect.regs[w][i]) continue;
        msg << "warp " << w << " R" << i / kLanes << " lane " << i % kLanes
            << ": pipeline 0x" << std::hex << obs.regs[w][i]
            << " != reference 0x" << expect.regs[w][i] << std::dec;
        flush();
        reported = true;  // first divergence is enough to act on
        break;
      }
    }
  }
  if (obs.shared.size() != expect.shared.size()) {
    msg << "shared image size " << obs.shared.size() << " != "
        << expect.shared.size();
    flush();
  } else {
    for (std::size_t i = 0; i < expect.shared.size(); ++i) {
      if (obs.shared[i] == expect.shared[i]) continue;
      msg << "shared[" << i << "]: pipeline "
          << static_cast<int>(obs.shared[i]) << " != reference "
          << static_cast<int>(expect.shared[i]);
      flush();
      break;
    }
  }

  // --- Determinism -------------------------------------------------------
  const PipelineObservation again = run(fuzz_case);
  if (again.result.cycles != obs.result.cycles ||
      again.result.instructions_issued != obs.result.instructions_issued ||
      again.result.stall_cycles != obs.result.stall_cycles ||
      again.regs != obs.regs || again.shared != obs.shared) {
    fail("pipeline replay diverged from its first run");
  }
  return report;
}

FullChipObservation Differ::run_full_chip(const FuzzCase& fuzz_case,
                                          std::span<const std::uint64_t> global,
                                          int engine_threads) const {
  // Shared read-only across every SM (stores are timing-only), so one copy
  // serves the whole chip.
  std::vector<std::uint64_t> global_copy(global.begin(), global.end());

  trace::AggregatingSink agg;
  MergedInvariantSink inv;
  trace::TeeSink tee;
  tee.add(&agg);
  tee.add(&inv);

  const int num_regs = register_count(fuzz_case.program);
  const int wpb = fuzz_case.shape.warps_per_block();

  FullChipObservation obs;
  obs.regs.assign(static_cast<std::size_t>(fuzz_case.shape.total_warps()),
                  std::vector<std::uint64_t>(
                      static_cast<std::size_t>(num_regs) * kLanes, 0));

  gpu::ChipOptions chip_options;
  chip_options.threads = engine_threads;
  chip_options.max_blocks_per_sm = 1;  // maximise dispatcher slot recycling
  chip_options.trace = &tee;
  chip_options.pmu = &obs.pmu;
  chip_options.block_observer = [&](int /*sm*/, int slot, int block,
                                    const sm::SmCore& core) {
    ++obs.blocks_observed;
    for (int j = 0; j < wpb; ++j) {
      auto& dst = obs.regs[static_cast<std::size_t>(block * wpb + j)];
      for (int r = 0; r < num_regs; ++r) {
        for (int l = 0; l < kLanes; ++l) {
          dst[static_cast<std::size_t>(r) * kLanes +
              static_cast<std::size_t>(l)] = core.reg(slot * wpb + j, r, l);
        }
      }
    }
  };

  const gpu::GpuEngine engine(device_, std::move(chip_options));
  sm::LaunchConfig config;
  config.threads_per_block = fuzz_case.shape.threads_per_block;
  config.total_blocks = fuzz_case.shape.blocks;
  auto chip = engine.run(fuzz_case.program, config, global_copy);
  HSIM_ASSERT_MSG(static_cast<bool>(chip),
                  "full-chip launch rejected a fuzz-generated config");
  obs.chip = std::move(chip).value();

  obs.agg_stall_cycles = agg.stall_cycles();
  for (const auto& [key, bucket] : agg.stalls()) {
    if (key.first == trace::StallReason::kSmemBankConflict &&
        key.second == "Smem.bank") {
      obs.bank_conflict_cycles += bucket.cycles;
    }
  }
  obs.agg_issues = agg.issues();
  obs.agg_retires = agg.retires();
  obs.max_event_end = inv.max_event_end;
  obs.monotone = inv.monotone;
  obs.nonneg = inv.nonneg;
  return obs;
}

DiffReport Differ::diff_full_chip(const FuzzCase& fuzz_case,
                                  std::span<const std::uint64_t> global) const {
  DiffReport report;
  const auto fail = [&](std::string message) {
    report.failures.push_back(std::move(message));
  };

  RefInterp ref(device_);
  ref.bind_global(global);
  const RefResult expect = ref.run(fuzz_case.program, fuzz_case.shape);
  const FullChipObservation obs = run_full_chip(fuzz_case, global, 1);

  report.instructions = expect.instructions;
  report.cycles = obs.chip.cycles;

  const auto total_warps =
      static_cast<std::uint64_t>(fuzz_case.shape.total_warps());
  std::ostringstream msg;
  const auto flush = [&]() {
    fail(msg.str());
    msg.str({});
  };

  // --- Retirement ledger -------------------------------------------------
  if (obs.chip.instructions_issued != expect.instructions) {
    msg << "chip instructions_issued " << obs.chip.instructions_issued
        << " != reference " << expect.instructions;
    flush();
  }
  if (obs.chip.warps_retired != total_warps) {
    msg << "chip warps_retired " << obs.chip.warps_retired << " != "
        << total_warps << " launched";
    flush();
  }
  if (obs.blocks_observed !=
      static_cast<std::uint64_t>(fuzz_case.shape.blocks)) {
    msg << "observer saw " << obs.blocks_observed << " blocks, grid has "
        << fuzz_case.shape.blocks;
    flush();
  }
  if (obs.agg_issues != obs.chip.instructions_issued) {
    msg << "merged-trace issues " << obs.agg_issues << " != counter "
        << obs.chip.instructions_issued;
    flush();
  }
  if (obs.agg_retires != obs.chip.warps_retired) {
    msg << "merged-trace retires " << obs.agg_retires << " != counter "
        << obs.chip.warps_retired;
    flush();
  }

  // --- Counter conservation ----------------------------------------------
  std::string why;
  if (!obs.pmu.conserved(&why)) {
    msg << "chip pmu conservation: " << why;
    flush();
  }
  if (obs.pmu.get(prof::Counter::kInstIssued) !=
      static_cast<double>(obs.chip.instructions_issued)) {
    msg << "chip pmu inst_issued " << obs.pmu.get(prof::Counter::kInstIssued)
        << " != counter " << obs.chip.instructions_issued;
    flush();
  }
  if (obs.pmu.get(prof::Counter::kInstRetired) !=
      obs.pmu.get(prof::Counter::kInstIssued)) {
    msg << "chip pmu inst_retired " << obs.pmu.get(prof::Counter::kInstRetired)
        << " != issued " << obs.pmu.get(prof::Counter::kInstIssued)
        << " at grid end";
    flush();
  }
  if (obs.pmu.get(prof::Counter::kWarpsRetired) !=
      static_cast<double>(obs.chip.warps_retired)) {
    msg << "chip pmu warps_retired "
        << obs.pmu.get(prof::Counter::kWarpsRetired) << " != counter "
        << obs.chip.warps_retired;
    flush();
  }

  // --- Timing sanity -----------------------------------------------------
  if (!(obs.chip.cycles > 0)) {
    msg << "chip cycles " << obs.chip.cycles << " not positive";
    flush();
  }
  const double scheduler_stalls =
      obs.agg_stall_cycles - obs.bank_conflict_cycles;
  if (std::abs(scheduler_stalls -
               static_cast<double>(obs.chip.stall_cycles)) > kCycleEps) {
    msg << "merged-trace stall cycles " << scheduler_stalls << " != counter "
        << obs.chip.stall_cycles;
    flush();
  }
  double stall_budget = 0;  // 4 issue slots per SM, each SM's own length
  for (const auto& r : obs.chip.per_sm) stall_budget += 4.0 * r.cycles;
  if (static_cast<double>(obs.chip.stall_cycles) > stall_budget + kCycleEps) {
    msg << "chip stall cycles " << obs.chip.stall_cycles
        << " exceed 4 slots x per-SM cycles " << stall_budget;
    flush();
  }
  if (obs.max_event_end > obs.chip.cycles + kCycleEps) {
    msg << "event ends at " << obs.max_event_end << " after chip end "
        << obs.chip.cycles;
    flush();
  }
  if (!obs.nonneg) fail("negative event cycle or duration");
  if (!obs.monotone) fail("merged event stream not sorted by cycle");

  // --- Architectural state (registers only: shared memory is per-SM) ----
  if (expect.clock_tainted) {
    // CLOCK read the cycle counter; registers legitimately diverge.
  } else if (obs.regs.size() != expect.regs.size()) {
    msg << "chip exposed " << obs.regs.size() << " warps, reference "
        << expect.regs.size();
    flush();
  } else {
    for (std::size_t w = 0; w < expect.regs.size(); ++w) {
      if (obs.regs[w] == expect.regs[w]) continue;
      for (std::size_t i = 0; i < expect.regs[w].size(); ++i) {
        if (obs.regs[w][i] == expect.regs[w][i]) continue;
        msg << "grid warp " << w << " R" << i / kLanes << " lane "
            << i % kLanes << ": chip 0x" << std::hex << obs.regs[w][i]
            << " != reference 0x" << expect.regs[w][i] << std::dec;
        flush();
        break;
      }
      break;  // first divergent warp is enough to act on
    }
  }

  // --- Determinism -------------------------------------------------------
  // Serial replay must reproduce itself, and a multi-threaded engine run
  // must be bit-identical to the serial one (the epoch-barrier contract).
  const auto same = [&](const FullChipObservation& other) {
    return other.chip.cycles == obs.chip.cycles &&
           other.chip.instructions_issued == obs.chip.instructions_issued &&
           other.chip.stall_cycles == obs.chip.stall_cycles &&
           other.chip.epochs == obs.chip.epochs && other.regs == obs.regs &&
           other.pmu.values == obs.pmu.values &&
           other.pmu.occ_hist == obs.pmu.occ_hist;
  };
  if (!same(run_full_chip(fuzz_case, global, 1))) {
    fail("full-chip replay diverged from its first run");
  }
  if (!same(run_full_chip(fuzz_case, global, 4))) {
    fail("full-chip run at 4 threads diverged from the serial run");
  }
  return report;
}

FuzzCase Differ::shrink(const FuzzCase& fuzz_case,
                        std::span<const std::uint64_t> global) const {
  return shrink_impl(fuzz_case, [&](const FuzzCase& candidate) {
    return !diff(candidate, global).ok();
  });
}

FuzzCase Differ::shrink_full_chip(const FuzzCase& fuzz_case,
                                  std::span<const std::uint64_t> global) const {
  return shrink_impl(fuzz_case, [&](const FuzzCase& candidate) {
    return !diff_full_chip(candidate, global).ok();
  });
}

FuzzCase Differ::shrink_impl(
    const FuzzCase& fuzz_case,
    const std::function<bool(const FuzzCase&)>& fails) const {
  HSIM_ASSERT(fails(fuzz_case));
  FuzzCase best = fuzz_case;

  const auto try_adopt = [&](FuzzCase candidate) {
    if (fails(candidate)) {
      best = std::move(candidate);
      return true;
    }
    return false;
  };

  if (best.program.iterations() > 1) {
    FuzzCase candidate = best;
    candidate.program.set_iterations(1);
    try_adopt(std::move(candidate));
  }
  if (best.shape.blocks > 1) {
    FuzzCase candidate = best;
    candidate.shape.blocks = 1;
    try_adopt(std::move(candidate));
  }
  if (best.shape.threads_per_block > 32) {
    FuzzCase candidate = best;
    candidate.shape.threads_per_block = 32;
    try_adopt(std::move(candidate));
  }

  // Instruction removal to a fixpoint.  Greedy back-to-front: removing a
  // consumer before its producer keeps more candidates well-formed.
  bool changed = true;
  while (changed && best.program.size() > 1) {
    changed = false;
    for (std::size_t skip = best.program.size(); skip-- > 0;) {
      if (best.program.size() <= 1) break;
      FuzzCase candidate = best;
      isa::Program pruned;
      pruned.set_iterations(best.program.iterations());
      for (std::size_t i = 0; i < best.program.size(); ++i) {
        if (i != skip) pruned.add(best.program.body()[i]);
      }
      candidate.program = std::move(pruned);
      if (try_adopt(std::move(candidate))) changed = true;
    }
  }
  return best;
}

CampaignResult Differ::campaign(const CampaignOptions& options) const {
  return campaign_impl(
      options,
      [&](const FuzzCase& c, std::span<const std::uint64_t> g) {
        return diff(c, g);
      },
      [&](const FuzzCase& c, std::span<const std::uint64_t> g) {
        return shrink(c, g);
      });
}

CampaignResult Differ::campaign_full_chip(const CampaignOptions& options) const {
  return campaign_impl(
      options,
      [&](const FuzzCase& c, std::span<const std::uint64_t> g) {
        return diff_full_chip(c, g);
      },
      [&](const FuzzCase& c, std::span<const std::uint64_t> g) {
        return shrink_full_chip(c, g);
      });
}

CampaignResult Differ::campaign_impl(
    const CampaignOptions& options,
    const std::function<DiffReport(const FuzzCase&,
                                   std::span<const std::uint64_t>)>& oracle,
    const std::function<FuzzCase(const FuzzCase&,
                                 std::span<const std::uint64_t>)>& shrinker)
    const {
  const ProgramFuzzer fuzzer(options.fuzz);
  const auto global = make_global_image(options.seed);

  struct Outcome {
    bool failed = false;
    std::string message;
    std::uint64_t instructions = 0;
    double cycles = 0;
  };
  const auto outcomes = sim::sweep(
      static_cast<std::size_t>(options.count),
      [&](sim::SweepContext& ctx) {
        const FuzzCase fuzz_case = fuzzer.generate(options.seed, ctx.index());
        const DiffReport report = oracle(fuzz_case, global);
        return Outcome{!report.ok(), report.summary(), report.instructions,
                       report.cycles};
      },
      {.threads = options.threads, .seed = options.seed});

  CampaignResult result;
  result.cases = options.count;
  std::optional<std::size_t> first_bad;
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    result.instructions += outcomes[i].instructions;
    result.pipeline_cycles += outcomes[i].cycles;
    if (outcomes[i].failed) {
      ++result.failed;
      if (!first_bad) first_bad = i;
    }
  }
  if (first_bad) {
    CampaignFailure failure;
    failure.original = fuzzer.generate(options.seed, *first_bad);
    failure.message = outcomes[*first_bad].message;
    failure.shrunk = options.shrink ? shrinker(failure.original, global)
                                    : failure.original;
    result.first_failure = std::move(failure);
  }
  return result;
}

std::string to_repro(const FuzzCase& fuzz_case, std::string_view device_name,
                     std::string_view failure) {
  std::ostringstream os;
  os << "; hsim conformance reproducer (re-run: hsim fuzz <device> --replay=<file>)\n";
  os << "; device=" << device_name << " seed=" << fuzz_case.base_seed
     << " case=" << fuzz_case.index
     << " threads_per_block=" << fuzz_case.shape.threads_per_block
     << " blocks=" << fuzz_case.shape.blocks << '\n';
  if (!failure.empty()) {
    std::string one_line(failure);
    std::replace(one_line.begin(), one_line.end(), '\n', ' ');
    os << "; failure: " << one_line << '\n';
  }
  os << fuzz_case.program.to_string();
  return os.str();
}

Expected<Repro> load_repro(std::string_view text) {
  Repro repro;
  const auto parse_u64 = [](const std::string& s,
                            std::uint64_t& out) -> bool {
    const auto* begin = s.data();
    const auto* end = s.data() + s.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    return ec == std::errc{} && ptr == end;
  };
  // Header keys ride in comment lines as key=value tokens.
  std::istringstream lines{std::string(text)};
  for (std::string line; std::getline(lines, line);) {
    const auto first = line.find_first_not_of(" \t");
    if (first == std::string::npos || line[first] != ';') continue;
    std::istringstream tokens(line.substr(first + 1));
    for (std::string token; tokens >> token;) {
      const auto eq = token.find('=');
      if (eq == std::string::npos) continue;
      const auto key = token.substr(0, eq);
      const auto value = token.substr(eq + 1);
      std::uint64_t number = 0;
      if (key == "device") {
        repro.device = value;
        continue;
      }
      if (key != "seed" && key != "case" && key != "threads_per_block" &&
          key != "blocks") {
        continue;
      }
      if (!parse_u64(value, number)) {
        return invalid_argument("bad reproducer header value: " + token);
      }
      if (key == "seed") {
        repro.fuzz_case.base_seed = number;
      } else if (key == "case") {
        repro.fuzz_case.index = number;
      } else if (key == "threads_per_block") {
        repro.fuzz_case.shape.threads_per_block = static_cast<int>(number);
      } else {
        repro.fuzz_case.shape.blocks = static_cast<int>(number);
      }
    }
  }
  if (repro.fuzz_case.shape.threads_per_block < 32 ||
      repro.fuzz_case.shape.blocks < 1) {
    return invalid_argument("reproducer header has an invalid launch shape");
  }
  auto program = isa::assemble(text);
  if (!program.has_value()) return program.error();
  repro.fuzz_case.program = std::move(program).value();
  return repro;
}

}  // namespace hsim::conformance
