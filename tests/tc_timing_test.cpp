// Structural tensor-core timing: the paper's qualitative findings as
// invariants (no golden numbers from the tables, only relationships).
#include "tensorcore/timing.hpp"

#include <gtest/gtest.h>

namespace hsim::tc {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;
using isa::OperandSource;
using isa::TcInstr;
using isa::TcPath;
using num::DType;

TcInstr mma(DType ab, DType cd, int k, bool sparse = false) {
  return {.path = TcPath::kMma, .shape = {16, 8, k}, .ab = ab, .cd = cd,
          .sparse = sparse};
}
TcInstr wgmma_n(int n, bool sparse, OperandSource src) {
  return {.path = TcPath::kWgmma, .shape = {64, n, sparse ? 32 : 16},
          .ab = DType::kFp16, .cd = DType::kFp32, .sparse = sparse,
          .a_src = src};
}

TEST(MmaTiming, LatencyGrowsWithK) {
  for (const auto* device : arch::all_devices()) {
    const auto k8 = tc_timing(mma(DType::kFp16, DType::kFp16, 8), *device);
    const auto k16 = tc_timing(mma(DType::kFp16, DType::kFp16, 16), *device);
    ASSERT_TRUE(k8 && k16);
    EXPECT_GT(k16.value().latency, k8.value().latency) << device->name;
  }
}

TEST(MmaTiming, SparseLatencyEqualsDenseOfCompressedShape) {
  for (const auto* device : arch::all_devices()) {
    const auto dense = tc_timing(mma(DType::kFp16, DType::kFp16, 8), *device);
    const auto sparse =
        tc_timing(mma(DType::kFp16, DType::kFp16, 16, true), *device);
    ASSERT_TRUE(dense && sparse);
    EXPECT_DOUBLE_EQ(sparse.value().latency, dense.value().latency)
        << device->name;
  }
}

TEST(MmaTiming, SparseDoublesThroughputOnAda) {
  const auto dense = tc_timing(mma(DType::kFp16, DType::kFp16, 16), rtx4090());
  const auto sparse =
      tc_timing(mma(DType::kFp16, DType::kFp16, 32, true), rtx4090());
  ASSERT_TRUE(dense && sparse);
  const double speedup = sparse.value().throughput_tflops(rtx4090()) /
                         dense.value().throughput_tflops(rtx4090());
  EXPECT_NEAR(speedup, 2.0, 0.05);
}

TEST(MmaTiming, SmallSparseShapesMissTwoXOnAmpere) {
  const auto dense = tc_timing(mma(DType::kFp16, DType::kFp16, 8), a100_pcie());
  const auto sparse =
      tc_timing(mma(DType::kFp16, DType::kFp16, 16, true), a100_pcie());
  ASSERT_TRUE(dense && sparse);
  const double speedup = sparse.value().throughput_tflops(a100_pcie()) /
                         dense.value().throughput_tflops(a100_pcie());
  EXPECT_LT(speedup, 1.6);  // the paper measured ~1.32x
  EXPECT_GT(speedup, 1.1);
  // Large sparse shapes do reach ~2x.
  const auto dense16 =
      tc_timing(mma(DType::kFp16, DType::kFp16, 16), a100_pcie());
  const auto sparse32 =
      tc_timing(mma(DType::kFp16, DType::kFp16, 32, true), a100_pcie());
  const double speedup_large =
      sparse32.value().throughput_tflops(a100_pcie()) /
      dense16.value().throughput_tflops(a100_pcie());
  EXPECT_NEAR(speedup_large, 2.0, 0.1);
}

TEST(MmaTiming, HopperMmaWellBelowPeak) {
  // The headline: mma on Hopper averages ~63% of peak.
  double total_fraction = 0;
  int count = 0;
  for (const auto& [ab, cd, k] :
       {std::tuple{DType::kFp16, DType::kFp16, 16},
        std::tuple{DType::kTf32, DType::kFp32, 8},
        std::tuple{DType::kInt8, DType::kInt32, 32}}) {
    const auto t = tc_timing(mma(ab, cd, k), h800_pcie());
    ASSERT_TRUE(t.has_value());
    total_fraction += t.value().throughput_tflops(h800_pcie()) /
                      h800_pcie().tc_peak_tflops(ab);
    ++count;
  }
  const double avg = total_fraction / count;
  EXPECT_GT(avg, 0.55);
  EXPECT_LT(avg, 0.72);
}

TEST(MmaTiming, AmpereAndAdaNearPeak) {
  const auto a100 = tc_timing(mma(DType::kFp16, DType::kFp16, 16), a100_pcie());
  EXPECT_GT(a100.value().throughput_tflops(a100_pcie()) /
                a100_pcie().tc_peak_tflops(DType::kFp16),
            0.95);
  const auto ada = tc_timing(mma(DType::kFp16, DType::kFp16, 16), rtx4090());
  // The 4090 exceeds its official peak thanks to its real sustained clock.
  EXPECT_GT(ada.value().throughput_tflops(rtx4090()) /
                rtx4090().tc_peak_tflops(DType::kFp16),
            1.0);
}

TEST(MmaTiming, AdaFp32AccumHalfRate) {
  const auto acc16 = tc_timing(mma(DType::kFp16, DType::kFp16, 16), rtx4090());
  const auto acc32 = tc_timing(mma(DType::kFp16, DType::kFp32, 16), rtx4090());
  EXPECT_NEAR(acc16.value().throughput_tflops(rtx4090()) /
                  acc32.value().throughput_tflops(rtx4090()),
              2.0, 0.05);
  // Data-centre parts run FP32 accumulate at full rate.
  const auto h16 = tc_timing(mma(DType::kFp16, DType::kFp16, 16), h800_pcie());
  const auto h32 = tc_timing(mma(DType::kFp16, DType::kFp32, 16), h800_pcie());
  EXPECT_NEAR(h16.value().throughput_tflops(h800_pcie()) /
                  h32.value().throughput_tflops(h800_pcie()),
              1.0, 0.01);
}

TEST(MmaTiming, Int4OffTensorCoresOnHopper) {
  const auto hopper = tc_timing(mma(DType::kInt4, DType::kInt32, 32), h800_pcie());
  ASSERT_TRUE(hopper.has_value());
  EXPECT_FALSE(hopper.value().on_tensor_cores);
  const auto ampere = tc_timing(mma(DType::kInt4, DType::kInt32, 32), a100_pcie());
  ASSERT_TRUE(ampere.has_value());
  EXPECT_TRUE(ampere.value().on_tensor_cores);
  // And the CUDA-core fallback is dramatically slower.
  EXPECT_GT(ampere.value().throughput_tflops(a100_pcie()),
            20.0 * hopper.value().throughput_tflops(h800_pcie()));
}

// ---------- wgmma ----------

TEST(WgmmaTiming, LatencyScalesWithNAboveFloor) {
  for (const int n : {64, 128, 256}) {
    const auto t = tc_timing(wgmma_n(n, false, OperandSource::kRegister),
                             h800_pcie());
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(t.value().latency, n / 2.0);
  }
}

TEST(WgmmaTiming, SparseSsLatencyAlwaysPlus16) {
  for (const int n : {8, 32, 64, 256}) {
    const auto t = tc_timing(wgmma_n(n, true, OperandSource::kSharedMemory),
                             h800_pcie());
    ASSERT_TRUE(t.has_value());
    EXPECT_DOUBLE_EQ(t.value().latency, n / 2.0 + 16.0);
  }
}

TEST(WgmmaTiming, NearPeakAtLargeN) {
  const auto t =
      tc_timing(wgmma_n(256, false, OperandSource::kSharedMemory), h800_pcie());
  EXPECT_GT(t.value().throughput_tflops(h800_pcie()) /
                h800_pcie().tc_peak_tflops(DType::kFp16),
            0.95);
}

TEST(WgmmaTiming, ThroughputFallsBelowN64) {
  double prev = 1e18;
  for (const int n : {256, 64, 32, 16, 8}) {
    const auto t = tc_timing(wgmma_n(n, false, OperandSource::kSharedMemory),
                             h800_pcie());
    const double tput = t.value().throughput_tflops(h800_pcie());
    EXPECT_LE(tput, prev + 1.0) << n;
    prev = tput;
  }
  const auto n64 =
      tc_timing(wgmma_n(64, false, OperandSource::kSharedMemory), h800_pcie());
  const auto n32 =
      tc_timing(wgmma_n(32, false, OperandSource::kSharedMemory), h800_pcie());
  EXPECT_GT(n64.value().throughput_tflops(h800_pcie()),
            1.3 * n32.value().throughput_tflops(h800_pcie()));
}

TEST(WgmmaTiming, DenseSsEqualsRsAtLargeN) {
  const auto ss =
      tc_timing(wgmma_n(256, false, OperandSource::kSharedMemory), h800_pcie());
  const auto rs =
      tc_timing(wgmma_n(256, false, OperandSource::kRegister), h800_pcie());
  EXPECT_NEAR(ss.value().throughput_tflops(h800_pcie()),
              rs.value().throughput_tflops(h800_pcie()), 1.0);
  EXPECT_DOUBLE_EQ(ss.value().latency, rs.value().latency);
}

TEST(WgmmaTiming, SparseSsCannotReachSparseRs) {
  const auto ss =
      tc_timing(wgmma_n(256, true, OperandSource::kSharedMemory), h800_pcie());
  const auto rs =
      tc_timing(wgmma_n(256, true, OperandSource::kRegister), h800_pcie());
  EXPECT_LT(ss.value().throughput_tflops(h800_pcie()),
            0.92 * rs.value().throughput_tflops(h800_pcie()));
  EXPECT_GT(ss.value().latency, rs.value().latency);
}

TEST(WgmmaTiming, BelowN32RsBeatsSs) {
  for (const int n : {8, 16, 32}) {
    const auto ss = tc_timing(wgmma_n(n, false, OperandSource::kSharedMemory),
                              h800_pcie());
    const auto rs =
        tc_timing(wgmma_n(n, false, OperandSource::kRegister), h800_pcie());
    EXPECT_GT(rs.value().throughput_tflops(h800_pcie()),
              ss.value().throughput_tflops(h800_pcie()))
        << n;
    EXPECT_LT(rs.value().latency, ss.value().latency) << n;
  }
}

TEST(KBase, PerDtype) {
  EXPECT_EQ(k_base(DType::kFp16), 8);
  EXPECT_EQ(k_base(DType::kTf32), 4);
  EXPECT_EQ(k_base(DType::kInt8), 16);
  EXPECT_EQ(k_base(DType::kBinary), 256);
}

}  // namespace
}  // namespace hsim::tc
