// Serving latency, cold vs content-addressed cache hit, on the paper's
// Table IV pointer-chase kernels (mem_l1 / mem_l2 / mem_global) plus the
// issue-bound ffma pair — the query mix an `hsim serve` deployment answers
// all day.  Every request goes through Session::handle_line, the same
// dispatch path as the TCP server, so the numbers include JSON parsing,
// identity hashing and reply serialization, not just the simulation.
//
// The table reports per-query wall time cold (cache miss -> full pipeline
// simulation) and warm (hit -> stored bytes replayed), the speedup, and a
// byte-equality check between the two replies — the protocol's bit-identical
// cache guarantee, measured rather than asserted.
#include <chrono>
#include <iostream>
#include <string>

#include "bench/bench_util.hpp"
#include "serve/session.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  struct Query {
    const char* kernel;
    int iters;
  };
  const Query queries[] = {
      {"mem_l1", 512}, {"mem_l2", 512},   {"mem_global", 512},
      {"ffma_dep", 2048}, {"ffma_tput", 2048},
  };
  const int warm_reps = opt.quick ? 100 : 1000;

  serve::ServeOptions options;
  options.threads = static_cast<int>(opt.threads);
  serve::ServeEngine engine(options);
  serve::Session session(engine);
  const auto now = [] { return std::chrono::steady_clock::now(); };
  const auto us = [](auto a, auto b) {
    return std::chrono::duration<double, std::micro>(b - a).count();
  };

  Table table("hsim serve: cold vs cached query latency (h800)");
  table.set_header({"kernel", "iters", "cold (us)", "warm (us)", "speedup",
                    "bit-identical"});
  for (const auto& query : queries) {
    const std::string request =
        std::string(R"({"id":1,"verb":"simulate","params":{"device":"h800",)") +
        R"("kernel":")" + query.kernel +
        R"(","iters":)" + std::to_string(query.iters) + "}}";

    const auto cold_start = now();
    const std::string cold = session.handle_line(request);
    const double cold_us = us(cold_start, now());

    std::string warm;
    const auto warm_start = now();
    for (int i = 0; i < warm_reps; ++i) warm = session.handle_line(request);
    const double warm_us = us(warm_start, now()) / warm_reps;

    table.add_row({query.kernel, std::to_string(query.iters),
                   fmt_fixed(cold_us, 1), fmt_fixed(warm_us, 2),
                   fmt_fixed(cold_us / warm_us, 0) + "x",
                   warm == cold ? "yes" : "NO"});
  }
  bench::emit(table, opt);

  const auto stats = engine.cache().stats();
  std::cout << "cache: " << stats.hits << " hits / " << stats.lookups
            << " lookups, " << stats.entries << " entries; every warm reply "
            << "replayed the cold reply's exact bytes through the same "
            << "make_ok_reply path the TCP server uses.\n";
  return 0;
}
