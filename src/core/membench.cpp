#include "core/membench.hpp"

#include <algorithm>
#include <vector>

#include "sim/pipeline.hpp"

namespace hsim::core {
namespace {

/// A coalesced warp transaction moves 32 lanes x access width.
std::uint32_t warp_bytes(int access_bytes) {
  return 32u * static_cast<std::uint32_t>(access_bytes);
}

int access_bytes_of(AccessKind kind) {
  switch (kind) {
    case AccessKind::kFp32: return 4;
    case AccessKind::kFp64: return 8;
    case AccessKind::kFp32V4: return 16;
  }
  return 4;
}

/// FP64 consumer pipe for one SM: a warp's 32 doubles (256 operand bytes)
/// drain at the calibrated FP64 width.
sim::PipelinedUnit make_fp64_pipe(const arch::DeviceSpec& device) {
  const double ii = 256.0 / device.memory.fp64_add_bytes_per_clk_sm;
  return sim::PipelinedUnit(ii, ii + 8.0);
}

sim::CycleSample usage_of(const mem::MemorySystem& memsys, std::string label,
                          double total_cycles) {
  sim::CycleSample sample;
  sample.label = std::move(label);
  sample.total_cycles = total_cycles;
  sample.units = memsys.unit_usage();
  return sample;
}

}  // namespace

Expected<ThroughputResult> measure_l1_throughput(const arch::DeviceSpec& device,
                                                 AccessKind kind,
                                                 prof::PmuCounters* pmu) {
  mem::MemorySystem memsys(device, 1);
  const std::uint64_t ws = 32 * 1024;  // resident in every L1
  memsys.warm(0, ws, mem::MemSpace::kGlobalCa);
  memsys.set_pmu(pmu);

  const int access_bytes = access_bytes_of(kind);
  const std::uint32_t bytes = warp_bytes(access_bytes);
  const std::uint64_t transactions = 1300;  // 32 warps x ~40 rounds
  sim::PipelinedUnit fp64 = make_fp64_pipe(device);

  double last = 0;
  std::uint64_t addr = 0;
  for (std::uint64_t i = 0; i < transactions; ++i) {
    double done = memsys.warp_transaction(0, addr % ws, bytes, access_bytes,
                                          mem::MemSpace::kGlobalCa, 0.0);
    if (kind == AccessKind::kFp64) {
      done = fp64.issue(done);  // dependent add keeps the loads alive
    }
    last = std::max(last, done);
    addr += bytes;
  }
  ThroughputResult out;
  out.transactions = transactions;
  out.bytes_per_clk = static_cast<double>(transactions) * bytes / last;
  out.gbps = out.bytes_per_clk * device.clock_hz() / 1e9;
  out.usage = usage_of(memsys, "membench.l1", last);
  return out;
}

Expected<ThroughputResult> measure_shared_throughput(
    const arch::DeviceSpec& device, prof::PmuCounters* pmu) {
  mem::MemorySystem memsys(device, 1);
  memsys.set_pmu(pmu);
  const std::uint64_t transactions = 30000;
  double last = 0;
  for (std::uint64_t i = 0; i < transactions; ++i) {
    last = std::max(last, memsys.warp_transaction(0, (i * 128) % 16384, 128, 4,
                                                  mem::MemSpace::kShared, 0.0));
  }
  ThroughputResult out;
  out.transactions = transactions;
  out.bytes_per_clk = static_cast<double>(transactions) * 128.0 / last;
  out.gbps = out.bytes_per_clk * device.clock_hz() / 1e9;
  out.usage = usage_of(memsys, "membench.shared", last);
  return out;
}

Expected<ThroughputResult> measure_l2_throughput(const arch::DeviceSpec& device,
                                                 AccessKind kind,
                                                 prof::PmuCounters* pmu) {
  mem::MemorySystem memsys(device, device.sm_count);
  const std::uint64_t ws = device.memory.l2_bytes / 4;
  memsys.warm(0, ws, mem::MemSpace::kGlobalCg);
  memsys.set_pmu(pmu);

  const int access_bytes = access_bytes_of(kind);
  const std::uint32_t bytes = warp_bytes(access_bytes);
  const std::uint64_t transactions = 200000;
  std::vector<sim::PipelinedUnit> fp64;
  if (kind == AccessKind::kFp64) {
    fp64.assign(static_cast<std::size_t>(device.sm_count), make_fp64_pipe(device));
  }

  double last = 0;
  for (std::uint64_t i = 0; i < transactions; ++i) {
    const int sm = static_cast<int>(i % static_cast<std::uint64_t>(device.sm_count));
    const std::uint64_t addr = (i * bytes) % ws;
    double done = memsys.warp_transaction(sm, addr, bytes, access_bytes,
                                          mem::MemSpace::kGlobalCg, 0.0);
    if (kind == AccessKind::kFp64) {
      done = fp64[static_cast<std::size_t>(sm)].issue(done);
    }
    last = std::max(last, done);
  }
  ThroughputResult out;
  out.transactions = transactions;
  out.bytes_per_clk = static_cast<double>(transactions) * bytes / last;
  out.gbps = out.bytes_per_clk * device.clock_hz() / 1e9;
  out.usage = usage_of(memsys, "membench.l2", last);
  return out;
}

Expected<ThroughputResult> measure_global_throughput(
    const arch::DeviceSpec& device, prof::PmuCounters* pmu) {
  mem::MemorySystem memsys(device, device.sm_count);
  memsys.set_pmu(pmu);
  // Working set far beyond L2; float4 accesses, 5 reads + 1 write per
  // thread round as in the paper (writes share the channel).
  const std::uint64_t ws = 4 * device.memory.l2_bytes;
  const std::uint64_t transactions = 100000;
  double last = 0;
  for (std::uint64_t i = 0; i < transactions; ++i) {
    const int sm = static_cast<int>(i % static_cast<std::uint64_t>(device.sm_count));
    // 512-byte transaction: a float4 access by each of 32 lanes.
    const std::uint64_t addr = (i * 512) % ws;
    last = std::max(last, memsys.warp_transaction(sm, addr, 512, 16,
                                                  mem::MemSpace::kGlobalCg, 0.0));
  }
  ThroughputResult out;
  out.transactions = transactions;
  out.bytes_per_clk = static_cast<double>(transactions * 512) / last;
  out.gbps = out.bytes_per_clk * device.clock_hz() / 1e9;
  out.usage = usage_of(memsys, "membench.global", last);
  return out;
}

}  // namespace hsim::core
