// Fig 4: te.Linear throughput (GFLOPS) for square D = A x B across sizes,
// data types and devices — FP8 needs N ~ 8192+ to pull ahead and
// approaches 2x FP16 at N = 16384 on H800 and RTX4090.
#include <iostream>

#include "bench/bench_util.hpp"
#include "te/linear.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);

  Table table("Fig 4: te.Linear GFLOPS, D(NxN) = A(NxN) x B(NxN)");
  table.set_header({"Device", "dtype", "N=1024", "N=2048", "N=4096", "N=8192",
                    "N=16384"});
  for (const auto* device : arch::all_devices()) {
    const te::CostModel model(*device);
    for (const DType dtype : {DType::kFp32, DType::kFp16, DType::kFp8E4M3}) {
      std::vector<std::string> cells{device->name,
                                     std::string(num::to_string(dtype))};
      bool supported = true;
      for (const std::int64_t n : {1024, 2048, 4096, 8192, 16384}) {
        const auto profile = te::linear_square(model, n, dtype);
        if (!profile) {
          supported = false;
          cells.push_back("-");
          continue;
        }
        cells.push_back(fmt_fixed(profile.value().gflops, 0));
      }
      if (!supported && dtype == DType::kFp8E4M3 &&
          !device->tc.has_fp8) {
        // A100 has no FP8 path at all: keep the dashes (paper omits it).
      }
      table.add_row(std::move(cells));
    }
    table.add_rule();
  }
  bench::emit(table, opt);

  // Headline ratio: FP8 vs FP16 at the largest size.
  Table ratio("FP8/FP16 speedup at N=16384 (paper: ~2x on H800 and 4090)");
  ratio.set_header({"Device", "speedup"});
  for (const auto* device : arch::all_devices()) {
    const te::CostModel model(*device);
    const auto fp16 = te::linear_square(model, 16384, DType::kFp16);
    const auto fp8 = te::linear_square(model, 16384, DType::kFp8E4M3);
    if (!fp16 || !fp8) {
      ratio.add_row({device->name, "-"});
      continue;
    }
    ratio.add_row({device->name,
                   fmt_fixed(fp8.value().gflops / fp16.value().gflops, 2) + "x"});
  }
  bench::emit(ratio, opt);
  return 0;
}
