// Table XI: power draw and energy efficiency (TFLOPS/W) of the largest
// mma shapes, dense and sparse, on the three devices.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/tcbench.hpp"
#include "tensorcore/power.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);

  const arch::DeviceSpec* devices[] = {&arch::a100_pcie(), &arch::h800_pcie(),
                                       &arch::rtx4090()};
  struct Row {
    DType ab;
    DType cd;
    int k_dense;
  };
  const Row rows[] = {
      {DType::kFp16, DType::kFp16, 16},
      {DType::kFp16, DType::kFp32, 16},
      {DType::kTf32, DType::kFp32, 8},
      {DType::kInt8, DType::kInt32, 32},
  };

  Table table("Table XI: mma power (W) and efficiency (TFLOPS/W), max shapes");
  table.set_header({"A/B", "C/D", "T", "A100 P", "A100 E", "H800 P", "H800 E",
                    "4090 P", "4090 E"});

  for (const auto& row : rows) {
    for (const bool sparse : {false, true}) {
      std::vector<std::string> cells{std::string(num::to_string(row.ab)),
                                     std::string(num::to_string(row.cd)),
                                     sparse ? "S" : "D"};
      for (const auto* device : devices) {
        const isa::TcInstr instr{
            .path = isa::TcPath::kMma,
            .shape = {16, 8, sparse ? 2 * row.k_dense : row.k_dense},
            .ab = row.ab,
            .cd = row.cd,
            .sparse = sparse};
        const auto r = core::bench_tc(instr, *device);
        if (!r) {
          cells.push_back("x");
          cells.push_back("x");
          continue;
        }
        cells.push_back(fmt_fixed(r.value().power_rand_w, 1));
        cells.push_back(
            fmt_fixed(r.value().tflops_rand / r.value().power_rand_w, 2));
      }
      table.add_row(std::move(cells));
    }
  }
  bench::emit(table, opt);

  std::cout << "Paper finding: H800 leads energy efficiency (~1.6x dense, "
               "~1.3x sparse vs A100/RTX4090).\n";
  return 0;
}
