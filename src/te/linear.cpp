#include "te/linear.hpp"

namespace hsim::te {

double LinearProfile::fraction(std::string_view op_name) const {
  if (total_seconds <= 0) return 0;
  double sum = 0;
  for (const auto& slice : slices) {
    if (slice.name == op_name) sum += slice.seconds;
  }
  return sum / total_seconds;
}

Expected<LinearProfile> linear_forward(const CostModel& model, std::int64_t m,
                                       std::int64_t n, std::int64_t k,
                                       num::DType dtype) {
  LinearProfile out;
  const double md = static_cast<double>(m);
  const double nd = static_cast<double>(n);
  const double kd = static_cast<double>(k);

  const auto add = [&out](std::string name, double seconds) {
    out.slices.push_back({std::move(name), seconds});
    out.total_seconds += seconds;
  };

  if (num::is_fp8(dtype)) {
    // amax over the input (read FP16), then cast input and weight to FP8
    // (read FP16, write FP8), the FP8 GEMM, and the FP16 rescale epilogue.
    add("amax", model.elementwise_seconds(md * kd * 2.0));
    add("cast_input", model.elementwise_seconds(md * kd * (2.0 + 1.0)));
    add("cast_weight", model.elementwise_seconds(kd * nd * (2.0 + 1.0)));
    auto gemm = model.gemm_seconds(m, n, k, dtype);
    if (!gemm) return gemm.error();
    add("gemm_fp8", gemm.value());
    add("rescale", model.elementwise_seconds(md * nd * 2.0));
  } else {
    auto gemm = model.gemm_seconds(m, n, k, dtype);
    if (!gemm) return gemm.error();
    add(dtype == num::DType::kFp32 ? "gemm_fp32" : "gemm_fp16", gemm.value());
  }

  out.gflops = 2.0 * md * nd * kd / out.total_seconds / 1e9;
  return out;
}

Expected<LinearProfile> linear_square(const CostModel& model, std::int64_t n,
                                      num::DType dtype) {
  return linear_forward(model, n, n, n, dtype);
}

}  // namespace hsim::te
