// Set-associative, sectored cache tag model.
//
// Nvidia L1/L2 caches use 128-byte lines split into four 32-byte sectors:
// a miss allocates the line's tag but fetches only the touched sector.  The
// model tracks tags, per-sector valid bits and LRU state; it is functional
// over addresses only (no data array — the simulator's workloads carry
// their own data), which keeps a 50 MiB L2 model at a few MiB of host RAM.
#pragma once

#include <cstdint>
#include <vector>

#include "common/state_io.hpp"
#include "common/status.hpp"

namespace hsim::mem {

struct CacheConfig {
  std::uint64_t size_bytes = 128 * 1024;
  int line_bytes = 128;
  int sector_bytes = 32;
  int ways = 4;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t sector_misses = 0;  // tag present, sector not yet fetched
  std::uint64_t line_misses = 0;    // tag absent
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return hits + sector_misses + line_misses;
  }
  [[nodiscard]] double hit_rate() const noexcept {
    const auto n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

enum class CacheOutcome : std::uint8_t { kHit, kSectorMiss, kLineMiss };

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Look up `addr`; on a miss, allocate (if `allocate`) the line/sector.
  /// Returns what the lookup found *before* any allocation.
  CacheOutcome access(std::uint64_t addr, bool allocate = true);

  /// Non-mutating probe: would `addr` hit right now?
  [[nodiscard]] CacheOutcome probe(std::uint64_t addr) const;

  /// Invalidate everything (keeps statistics).
  void flush();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] int num_sets() const noexcept { return num_sets_; }

  /// Snapshot tag/LRU/stat state.  Restore requires an identically
  /// configured cache (geometry is checked, not re-created).
  void save_state(common::StateWriter& w) const {
    w.marker(0x43414348u);  // "CACH"
    w.u64(lines_.size());
    for (const auto& line : lines_) {
      w.u64(line.tag);
      w.u32(line.sector_valid);
      w.u64(line.lru_stamp);
      w.boolean(line.valid);
    }
    w.u64(next_stamp_);
    w.u64(stats_.hits);
    w.u64(stats_.sector_misses);
    w.u64(stats_.line_misses);
    w.u64(stats_.evictions);
  }
  void load_state(common::StateReader& r) {
    r.expect_marker(0x43414348u);
    if (!r.expect(r.u64() == lines_.size())) return;
    for (auto& line : lines_) {
      line.tag = r.u64();
      line.sector_valid = r.u32();
      line.lru_stamp = r.u64();
      line.valid = r.boolean();
    }
    next_stamp_ = r.u64();
    stats_.hits = r.u64();
    stats_.sector_misses = r.u64();
    stats_.line_misses = r.u64();
    stats_.evictions = r.u64();
  }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint32_t sector_valid = 0;  // bitmask, bit i = sector i present
    std::uint64_t lru_stamp = 0;
    bool valid = false;
  };

  [[nodiscard]] std::uint64_t line_addr(std::uint64_t addr) const noexcept {
    return addr / static_cast<std::uint64_t>(config_.line_bytes);
  }
  [[nodiscard]] int sector_index(std::uint64_t addr) const noexcept {
    return static_cast<int>((addr % static_cast<std::uint64_t>(config_.line_bytes)) /
                            static_cast<std::uint64_t>(config_.sector_bytes));
  }

  CacheConfig config_;
  int num_sets_ = 0;
  int sectors_per_line_ = 0;
  std::vector<Line> lines_;  // num_sets * ways, row-major by set
  std::uint64_t next_stamp_ = 1;
  CacheStats stats_;
};

}  // namespace hsim::mem
