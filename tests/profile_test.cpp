#include "prof/metrics.hpp"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <memory>
#include <new>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "arch/device.hpp"
#include "conformance/golden.hpp"
#include "gpu/gpu_engine.hpp"
#include "mem/memory_system.hpp"
#include "prof/pmu.hpp"
#include "sim/sweep.hpp"
#include "sm/sm_core.hpp"
#include "trace/kernels.hpp"

// Global allocation counter: the PMU inherits trace's zero-overhead
// contract — with no counter block attached the issue loop must not
// allocate, and even with one attached every increment is a plain array
// add, so allocation counts must not scale with the iteration count.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hsim::prof {
namespace {

constexpr const char* kKernels[] = {"mma",    "ffma_dep",      "mem_l2",
                                    "mem_global", "smem_conflict", "barrier",
                                    "dsm",    "tma"};

struct ProfiledRun {
  sm::RunResult result;
  PmuCounters pmu;
};

ProfiledRun run_profiled(const arch::DeviceSpec& device,
                         std::string_view kernel, std::uint32_t iterations,
                         bool attach = true) {
  auto spec = trace::make_trace_kernel(kernel, iterations);
  ProfiledRun out;
  EXPECT_TRUE(spec.has_value()) << kernel;
  if (!spec.has_value()) return out;
  std::unique_ptr<mem::MemorySystem> memsys;
  if (spec.value().needs_mem) {
    memsys = std::make_unique<mem::MemorySystem>(device, 1);
    if (attach) memsys->set_pmu(&out.pmu);
  }
  sm::SmCore core(device, memsys.get());
  if (attach) core.set_pmu(&out.pmu);
  out.result = core.run(spec.value().program,
                        {.threads_per_block = spec.value().threads_per_block,
                         .blocks = spec.value().blocks});
  return out;
}

TEST(PmuCounters, MergeAccumulatesValuesAndHistogram) {
  PmuCounters a, b;
  a.inc(Counter::kInstIssued);
  a.inc_issued_class(0);
  a.sample_occupancy(3, 10.0);
  b.add(Counter::kInstIssued, 2.0);
  b.add(Counter::kIssuedFma, 2.0);
  b.sample_occupancy(3, 5.0);
  b.sample_occupancy(70, 1.0);  // clamps into the top bucket
  b.sample_occupancy(-2, 1.0);  // clamps into bucket 0
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get(Counter::kInstIssued), 3.0);
  EXPECT_DOUBLE_EQ(a.occ_hist[3], 15.0);
  EXPECT_DOUBLE_EQ(a.occ_hist[kMaxWarpsPerSm], 1.0);
  EXPECT_DOUBLE_EQ(a.occ_hist[0], 1.0);
  EXPECT_DOUBLE_EQ(a.sampled_cycles(), 17.0);
  EXPECT_DOUBLE_EQ(a.warp_cycles(), 3.0 * 15.0 + 64.0);
  EXPECT_TRUE(a.conserved());
}

TEST(PmuCounters, ConservedCatchesEachImbalance) {
  PmuCounters pmu;
  EXPECT_TRUE(pmu.conserved());  // all-zero block is trivially conserved

  pmu.inc(Counter::kInstIssued);
  std::string why;
  EXPECT_FALSE(pmu.conserved(&why));  // per-class sum 0 != issued 1
  EXPECT_FALSE(why.empty());
  pmu.inc_issued_class(0);  // kIssuedAlu
  pmu.inc(Counter::kInstRetired);
  EXPECT_TRUE(pmu.conserved());

  pmu.inc(Counter::kInstRetired);  // retired 2 > issued 1
  EXPECT_FALSE(pmu.conserved());
  pmu.inc(Counter::kInstIssued);
  pmu.inc_issued_class(1);
  EXPECT_TRUE(pmu.conserved());

  pmu.add(Counter::kL1SectorAccesses, 2.0);
  pmu.inc(Counter::kL1SectorHits);
  EXPECT_FALSE(pmu.conserved(&why));  // accesses 2 != hits 1 + misses 0
  pmu.inc(Counter::kL1SectorMisses);
  EXPECT_TRUE(pmu.conserved());

  pmu.occ_hist[4] += 1.0;  // histogram no longer sums to sampled cycles
  EXPECT_FALSE(pmu.conserved());
}

TEST(PmuCounters, JsonRoundsNothing) {
  PmuCounters pmu;
  pmu.add(Counter::kFlops, 1e15 + 1.0);  // needs all 17 digits
  const std::string json = pmu.to_json();
  EXPECT_NE(json.find("\"flops\":1000000000000001"), std::string::npos) << json;
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"occupancy_hist\""), std::string::npos);
}

// Every bundled kernel must produce a conserved counter block whose ledger
// agrees with the core's own result counters.
TEST(PmuProfile, KernelsConserveAndMatchTheLedger) {
  const auto& device = arch::h800_pcie();
  for (const char* kernel : kKernels) {
    const auto run = run_profiled(device, kernel, 64);
    std::string why;
    EXPECT_TRUE(run.pmu.conserved(&why)) << kernel << ": " << why;
    EXPECT_EQ(run.pmu.get(Counter::kInstIssued),
              static_cast<double>(run.result.instructions_issued))
        << kernel;
    EXPECT_EQ(run.pmu.get(Counter::kInstRetired),
              run.pmu.get(Counter::kInstIssued))
        << kernel << ": not all instructions retired at kernel end";
    EXPECT_EQ(run.pmu.get(Counter::kWarpsRetired),
              static_cast<double>(run.result.warps_retired))
        << kernel;
    EXPECT_GT(run.pmu.sampled_cycles(), 0.0) << kernel;
  }
}

TEST(PmuProfile, CountersLandWhereTheKernelPointsThem) {
  const auto& device = arch::h800_pcie();
  const auto l2 = run_profiled(device, "mem_l2", 64);
  EXPECT_GT(l2.pmu.get(Counter::kL2SectorAccesses), 0.0);
  EXPECT_GT(l2.pmu.get(Counter::kTlbAccesses), 0.0);
  EXPECT_GT(l2.pmu.get(Counter::kIssuedLsu), 0.0);

  const auto mma = run_profiled(device, "mma", 64);
  EXPECT_GT(mma.pmu.get(Counter::kIssuedTensor), 0.0);
  EXPECT_GT(mma.pmu.get(Counter::kTensorActiveCycles), 0.0);
  EXPECT_GT(mma.pmu.get(Counter::kFlops), 0.0);

  const auto smem = run_profiled(device, "smem_conflict", 64);
  EXPECT_GT(smem.pmu.get(Counter::kSmemAccesses), 0.0);
  EXPECT_GT(smem.pmu.get(Counter::kSmemConflictPhases), 0.0);

  const auto tma = run_profiled(device, "tma", 64);
  EXPECT_GT(tma.pmu.get(Counter::kTmaBytes), 0.0);
}

// Attaching a counter block must not change timing, and the issue loop must
// not allocate per iteration whether or not a block is attached (the
// trace-sink zero-overhead contract, extended to the PMU).
TEST(PmuProfile, DisabledCollectionIsFreeAndTimingInvariant) {
  const auto& device = arch::h800_pcie();
  const auto with = run_profiled(device, "mma", 256, /*attach=*/true);
  const auto without = run_profiled(device, "mma", 256, /*attach=*/false);
  EXPECT_EQ(with.result.cycles, without.result.cycles);
  EXPECT_EQ(with.result.instructions_issued, without.result.instructions_issued);
  EXPECT_EQ(with.result.stall_cycles, without.result.stall_cycles);
  EXPECT_EQ(without.pmu.get(Counter::kInstIssued), 0.0);  // untouched

  const auto allocations_for = [&](std::uint32_t iterations,
                                   bool attach) -> std::uint64_t {
    auto spec = trace::make_trace_kernel("mma", iterations);
    EXPECT_TRUE(spec.has_value());
    if (!spec.has_value()) return 0;
    PmuCounters pmu;
    sm::SmCore core(device, nullptr);
    if (attach) core.set_pmu(&pmu);
    const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
    const auto result = core.run(
        spec.value().program,
        {.threads_per_block = spec.value().threads_per_block,
         .blocks = spec.value().blocks});
    const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
    EXPECT_GT(result.instructions_issued, 0u);
    return after - before;
  };
  for (const bool attach : {false, true}) {
    const std::uint64_t small = allocations_for(64, attach);
    const std::uint64_t large = allocations_for(4096, attach);
    EXPECT_EQ(small, large)
        << (attach ? "attached" : "detached")
        << " counting allocated " << (large - small) << " extra times";
  }
}

// Counter blocks collected through the sweep engine are bit-identical at 1
// and 8 host threads (mirrors trace_test's breakdown identity).
TEST(PmuSweep, SingleSmBitIdenticalAcrossThreadCounts) {
  constexpr std::size_t kPoints = 8;
  const auto run_at = [&](std::size_t threads) {
    return sim::sweep(
        kPoints,
        [&](sim::SweepContext& ctx) -> std::string {
          const auto run = run_profiled(arch::h800_pcie(),
                                        kKernels[ctx.index() % kPoints], 96);
          return run.pmu.to_json();
        },
        {.threads = threads});
  };
  const auto serial = run_at(1);
  const auto parallel = run_at(8);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], parallel[i]) << "point " << i;
  }
}

// Full-chip counters: per-SM blocks merged in SM-index order plus the
// fabric block must be bit-identical at any engine thread count, conserved,
// and in agreement with the chip's retirement ledger.
TEST(PmuFullChip, BitIdenticalAcrossEngineThreads) {
  const auto& device = arch::h800_pcie();
  for (const char* kernel : {"mem_l2", "mma"}) {
    auto spec = trace::make_trace_kernel(kernel, 48);
    ASSERT_TRUE(spec.has_value());
    sm::LaunchConfig config;
    config.threads_per_block = spec.value().threads_per_block;
    config.total_blocks = 2 * device.sm_count;  // force slot recycling

    std::vector<std::string> snapshots;
    for (const int threads : {1, 4, 8}) {
      PmuCounters pmu;
      gpu::ChipOptions options;
      options.threads = threads;
      options.max_blocks_per_sm = 1;
      options.pmu = &pmu;
      const gpu::GpuEngine engine(device, std::move(options));
      const auto chip = engine.run(spec.value().program, config);
      ASSERT_TRUE(chip.has_value()) << kernel;
      std::string why;
      EXPECT_TRUE(pmu.conserved(&why)) << kernel << ": " << why;
      EXPECT_EQ(pmu.get(Counter::kInstIssued),
                static_cast<double>(chip.value().instructions_issued))
          << kernel;
      EXPECT_EQ(pmu.get(Counter::kInstRetired),
                pmu.get(Counter::kInstIssued))
          << kernel;
      EXPECT_EQ(pmu.get(Counter::kWarpsRetired),
                static_cast<double>(chip.value().warps_retired))
          << kernel;
      snapshots.push_back(pmu.to_json());
    }
    EXPECT_EQ(snapshots[0], snapshots[1]) << kernel << ": 1 vs 4 threads";
    EXPECT_EQ(snapshots[0], snapshots[2]) << kernel << ": 1 vs 8 threads";
  }
}

// Running with no PMU attached must leave the chip result bit-identical to
// a counted run (counters observe, never perturb).
TEST(PmuFullChip, CountingDoesNotPerturbTheChip) {
  const auto& device = arch::h800_pcie();
  auto spec = trace::make_trace_kernel("ffma_dep", 32);
  ASSERT_TRUE(spec.has_value());
  sm::LaunchConfig config;
  config.threads_per_block = spec.value().threads_per_block;
  config.total_blocks = device.sm_count;

  const auto run_chip = [&](PmuCounters* pmu) {
    gpu::ChipOptions options;
    options.pmu = pmu;
    const gpu::GpuEngine engine(device, std::move(options));
    auto chip = engine.run(spec.value().program, config);
    EXPECT_TRUE(chip.has_value());
    return std::move(chip).value();
  };
  PmuCounters pmu;
  const auto counted = run_chip(&pmu);
  const auto plain = run_chip(nullptr);
  EXPECT_EQ(counted.cycles, plain.cycles);
  EXPECT_EQ(counted.instructions_issued, plain.instructions_issued);
  EXPECT_EQ(counted.stall_cycles, plain.stall_cycles);
  EXPECT_EQ(counted.epochs, plain.epochs);
}

TEST(ProfileReport, SectionsMetricsAndContentKey) {
  const auto& device = arch::h800_pcie();
  const auto run = run_profiled(device, "mem_l2", 128);

  ProfileInput input;
  input.pmu = run.pmu;
  input.cycles = run.result.cycles;
  input.sms = 1;

  ProfileConfig config;
  config.device = device.name;
  config.kernel = "mem_l2";
  config.config = "iters=128";
  const ProfileReport report = build_profile(device, input, config);

  for (const char* id : {"occupancy", "issue", "memory", "sol", "roofline"}) {
    EXPECT_NE(report.section(id), nullptr) << id;
  }
  EXPECT_EQ(report.metric("issue", "inst_issued"),
            run.pmu.get(Counter::kInstIssued));
  EXPECT_GT(report.metric("memory", "l2_hit_rate"), 0.0);
  EXPECT_GT(report.metric("occupancy", "achieved_occupancy"), 0.0);
  EXPECT_TRUE(std::isnan(report.metric("memory", "no_such_metric")));
  EXPECT_TRUE(std::isnan(report.metric("no_such_section", "l2_hit_rate")));

  // The issue mix is a partition of issued instructions.
  double mix = 0.0;
  for (const char* m : {"mix_alu", "mix_fma", "mix_fp64", "mix_dpx",
                        "mix_tensor", "mix_lsu", "mix_dsm", "mix_control"}) {
    mix += report.metric("issue", m);
  }
  EXPECT_NEAR(mix, 100.0, 1e-9);

  // Content key: pure function of the config, sensitive to every field.
  EXPECT_EQ(report.key, content_key(config));
  ProfileConfig chip_config = config;
  chip_config.full_chip = true;
  EXPECT_NE(content_key(chip_config), content_key(config));
  ProfileConfig other_kernel = config;
  other_kernel.kernel = "mma";
  EXPECT_NE(content_key(other_kernel), content_key(config));

  std::ostringstream text;
  render_text(report, text);
  EXPECT_NE(text.str().find("== hsim profile: mem_l2"), std::string::npos);
  EXPECT_NE(text.str().find("-- Memory Chart --"), std::string::npos);

  std::ostringstream json;
  write_profile_json(report, json);
  EXPECT_NE(json.str().find("\"schema\":\"hsim-profile-v1\""),
            std::string::npos);
  EXPECT_NE(json.str().find("\"sections\":["), std::string::npos);
  EXPECT_NE(json.str().find("\"key\":\"" + report.key + "\""),
            std::string::npos);
}

TEST(ProfileReport, RooflineSwitchesPeakWithTensorUse) {
  const auto& device = arch::h800_pcie();
  const auto mma = run_profiled(device, "mma", 64);
  ProfileInput input;
  input.pmu = mma.pmu;
  input.cycles = mma.result.cycles;
  const auto report =
      build_profile(device, input, {device.name, "mma", "", false});
  EXPECT_GT(report.metric("roofline", "flops"), 0.0);
  EXPECT_GT(report.metric("roofline", "peak_tensor_gflops"),
            report.metric("roofline", "peak_fp32_gflops"));

  const auto ffma = run_profiled(device, "ffma_dep", 64);
  ProfileInput scalar_input;
  scalar_input.pmu = ffma.pmu;
  scalar_input.cycles = ffma.result.cycles;
  const auto scalar =
      build_profile(device, scalar_input, {device.name, "ffma_dep", "", false});
  // No tensor issues: the compute roof falls back to the FP32 peak.
  EXPECT_EQ(scalar.metric("roofline", "flops"),
            ffma.pmu.get(Counter::kFlops));
}

// Golden profile shape: the *ordinal* facts of a report — section layout,
// the dominant issue class, memory- vs compute-bound placement — snapshot
// under tests/golden/.  Exact counter values stay free to move with the
// model; re-bless with HSIM_UPDATE_GOLDEN=1.
TEST(ProfileGolden, ReportShape) {
  const auto& device = arch::h800_pcie();
  conformance::ShapeMap shape;
  static constexpr std::array<std::pair<const char*, const char*>, 8>
      kMixMetrics{{{"mix_alu", "alu"},
                   {"mix_fma", "fma"},
                   {"mix_fp64", "fp64"},
                   {"mix_dpx", "dpx"},
                   {"mix_tensor", "tensor"},
                   {"mix_lsu", "lsu"},
                   {"mix_dsm", "dsm"},
                   {"mix_control", "control"}}};
  for (const char* kernel : {"mem_l2", "mma", "ffma_dep"}) {
    const auto run = run_profiled(device, kernel, 128);
    ProfileInput input;
    input.pmu = run.pmu;
    input.cycles = run.result.cycles;
    const auto report = build_profile(
        device, input, {"h800", kernel, "iters=128", false});
    const std::string prefix = std::string("profile.") + kernel + ".";

    std::string ids;
    for (const auto& section : report.sections) {
      if (!ids.empty()) ids += ',';
      ids += section.id;
    }
    shape[prefix + "sections"] = ids;

    double best = -1.0;
    std::string dominant = "none";
    for (const auto& [metric, label] : kMixMetrics) {
      const double value = report.metric("issue", metric);
      if (value > best) {
        best = value;
        dominant = label;
      }
    }
    shape[prefix + "dominant_mix"] = dominant;
    shape[prefix + "compute_bound"] =
        report.metric("roofline", "compute_bound") > 0.0 ? "true" : "false";
    shape[prefix + "touches_l2"] =
        report.metric("memory", "l2_sector_accesses") > 0.0 ? "true" : "false";
    shape[prefix + "retires_all"] =
        report.metric("issue", "inst_retired") ==
                report.metric("issue", "inst_issued")
            ? "true"
            : "false";
  }

  const std::string path =
      std::string(HSIM_GOLDEN_DIR) + "/profile_shape.json";
  if (conformance::update_golden_requested()) {
    conformance::save_shape(path, shape);
    GTEST_SKIP() << "golden updated: " << path;
  }
  const auto expected = conformance::load_shape(path);
  ASSERT_TRUE(expected.has_value())
      << expected.error().to_string()
      << " (regenerate with HSIM_UPDATE_GOLDEN=1)";
  for (const auto& diff : conformance::diff_shapes(expected.value(), shape)) {
    ADD_FAILURE() << "profile_shape.json: " << diff;
  }
}

}  // namespace
}  // namespace hsim::prof
