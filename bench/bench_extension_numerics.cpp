// Extension: numeric dissection of the tensor-core data types, in the
// style of Fasi et al. ("Numerical behavior of NVIDIA tensor cores"), which
// the paper builds on for its precision discussion.  Everything here is
// computed from the software float implementations — ranges, machine
// epsilons, subnormals, rounding mode and accumulator behaviour.
#include <cmath>
#include <iostream>

#include "bench/bench_util.hpp"
#include "numerics/dot.hpp"
#include "numerics/formats.hpp"
#include "numerics/types.hpp"

namespace {

/// Scientific formatting for values spanning 38 orders of magnitude.
std::string sci(double value) {
  const double mag = std::fabs(value);
  char buf[64];
  if (value != 0.0 && (mag < 1e-2 || mag >= 1e5)) {
    std::snprintf(buf, sizeof(buf), "%.3e", value);
  } else {
    std::snprintf(buf, sizeof(buf), "%.6g", value);
  }
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace hsim;
  using namespace hsim::num;
  const auto opt = bench::parse_options(argc, argv);

  Table table("Tensor-core storage formats: ranges and precision");
  table.set_header({"format", "bits", "max finite", "min normal",
                    "min subnormal", "epsilon", "has inf", "NaN codes"});
  for (const auto* spec : {&kFp16Spec, &kBf16Spec, &kTf32Spec, &kE4m3Spec,
                           &kE5m2Spec}) {
    const double min_normal = std::ldexp(1.0, spec->min_normal_exp());
    const double epsilon = std::ldexp(1.0, -spec->man_bits);
    int nan_codes = 0;
    if (spec->total_bits() <= 16) {
      for (std::uint32_t bits = 0; bits < (1u << spec->total_bits()); ++bits) {
        if (is_nan_bits(bits, *spec)) ++nan_codes;
      }
    } else {
      nan_codes = 2 * ((1 << spec->man_bits) - 1);  // IEEE-style wide format
    }
    table.add_row({std::string(spec->name), std::to_string(spec->total_bits()),
                   sci(spec->max_finite()), sci(min_normal),
                   sci(spec->min_subnormal()), sci(epsilon),
                   spec->has_inf ? "yes" : "no", std::to_string(nan_codes)});
  }
  bench::emit(table, opt);

  // Rounding-mode probes (the experiments Fasi et al. ran on silicon).
  Table rounding("Rounding behaviour probes (round-to-nearest-even)");
  rounding.set_header({"probe", "fp16", "bf16", "e4m3", "e5m2"},
                      {Align::kLeft, Align::kRight, Align::kRight,
                       Align::kRight, Align::kRight});
  const auto probe_row = [&](const std::string& label, float value) {
    rounding.add_row({label, sci(round_through(value, kFp16Spec)),
                      sci(round_through(value, kBf16Spec)),
                      sci(round_through(value, kE4m3Spec,
                                        Overflow::kSaturate)),
                      sci(round_through(value, kE5m2Spec,
                                        Overflow::kSaturate))});
  };
  probe_row("1 + eps/2 (tie, even)", 1.0f + std::ldexp(1.0f, -11));
  probe_row("1 + 3*eps/2 (tie, odd)", 1.0f + 3.0f * std::ldexp(1.0f, -11));
  probe_row("449 (above e4m3 max-1)", 449.0f);
  probe_row("1e6 (overflow, satfinite)", 1e6f);
  probe_row("2^-20 (deep underflow)", std::ldexp(1.0f, -20));
  bench::emit(rounding, opt);

  // Accumulator-order experiment: FP16 vs FP32 accumulation on a
  // cancellation-heavy dot product (the monotone-error story behind the
  // paper's accuracy caveats for HMMA.F16).
  Table acc("Accumulator behaviour: k-element ones-dot-product at 2048 + k");
  acc.set_header({"k", "FP32 accumulate", "FP16 accumulate"});
  for (const int k : {4, 16, 64, 256}) {
    std::vector<float> a(static_cast<std::size_t>(k), 1.0f);
    std::vector<float> b(static_cast<std::size_t>(k), 1.0f);
    const float f32 = dot_accumulate_fp32(a, b, 2048.0f);
    const fp16 f16 = dot_accumulate_fp16(a, b, fp16(2048.0f));
    acc.add_row({std::to_string(k), fmt_fixed(f32, 0),
                 fmt_fixed(f16.to_float(), 0)});
  }
  bench::emit(acc, opt);
  std::cout << "FP16 accumulation silently drops every +1 against a 2048 "
               "accumulator (ulp = 2): the blocked-summation hazard the "
               "FP32-accumulate instructions exist to avoid.\n";
  return 0;
}
