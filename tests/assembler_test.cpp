#include "isa/assembler.hpp"

#include <gtest/gtest.h>

namespace hsim::isa {
namespace {

TEST(Assembler, BasicKernel) {
  const auto program = assemble(R"(
    .iterations 100
    MOV   R1, 0
    LDG.CA R2, [R1]
    IADD3 R1, R1, R2
  )");
  ASSERT_TRUE(program.has_value());
  const auto& p = program.value();
  EXPECT_EQ(p.iterations(), 100u);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p.body()[0].op, Opcode::kMov);
  EXPECT_EQ(p.body()[0].imm, 0);
  EXPECT_EQ(p.body()[1].op, Opcode::kLdgCa);
  EXPECT_EQ(p.body()[1].rd, 2);
  EXPECT_EQ(p.body()[1].ra, 1);
  EXPECT_EQ(p.body()[2].op, Opcode::kIAdd3);
}

TEST(Assembler, CommentsAndBlankLines) {
  const auto program = assemble(
      "; a comment line\n"
      "MOV R1, 5   # trailing comment\n"
      "\n"
      "NOP\n");
  ASSERT_TRUE(program.has_value());
  EXPECT_EQ(program.value().size(), 2u);
  EXPECT_EQ(program.value().body()[0].imm, 5);
}

TEST(Assembler, MemoryWidthSuffix) {
  const auto program = assemble("LDG.CG R2, [R1].16\n");
  ASSERT_TRUE(program.has_value());
  EXPECT_EQ(program.value().body()[0].op, Opcode::kLdgCg);
  EXPECT_EQ(program.value().body()[0].access_bytes, 16u);
}

TEST(Assembler, StoreWithLeadingMemOperand) {
  const auto program = assemble("STS [R6], R3\n");
  ASSERT_TRUE(program.has_value());
  EXPECT_EQ(program.value().body()[0].ra, 6);
  EXPECT_EQ(program.value().body()[0].rb, 3);
}

TEST(Assembler, ThreeSourceOps) {
  const auto program = assemble("VIMNMX R1, R2, R3, R4, 1\n");
  ASSERT_TRUE(program.has_value());
  const auto& inst = program.value().body()[0];
  EXPECT_EQ(inst.op, Opcode::kVIMnMx);
  EXPECT_EQ(inst.rd, 1);
  EXPECT_EQ(inst.ra, 2);
  EXPECT_EQ(inst.rb, 3);
  EXPECT_EQ(inst.rc, 4);
  EXPECT_EQ(inst.imm, 1);
}

TEST(Assembler, LongestMnemonicWins) {
  const auto program = assemble("CP.ASYNC.COMMIT\nCP.ASYNC [R1]\n");
  ASSERT_TRUE(program.has_value());
  EXPECT_EQ(program.value().body()[0].op, Opcode::kCpAsyncCommit);
  EXPECT_EQ(program.value().body()[1].op, Opcode::kCpAsync);
}

TEST(Assembler, ErrorsCarryLineNumbers) {
  const auto bad_mnemonic = assemble("MOV R1, 0\nFROB R2\n");
  ASSERT_FALSE(bad_mnemonic.has_value());
  EXPECT_NE(bad_mnemonic.error().message.find("line 2"), std::string::npos);

  const auto bad_operand = assemble("MOV R999, 0\n");
  ASSERT_FALSE(bad_operand.has_value());

  const auto bad_directive = assemble(".wibble 3\n");
  ASSERT_FALSE(bad_directive.has_value());

  const auto bad_iterations = assemble(".iterations zero\nNOP\n");
  ASSERT_FALSE(bad_iterations.has_value());
}

TEST(Assembler, EmptyProgramRejected) {
  EXPECT_FALSE(assemble("").has_value());
  EXPECT_FALSE(assemble("; only comments\n").has_value());
}

TEST(Assembler, BadWidthRejected) {
  EXPECT_FALSE(assemble("LDS R1, [R2].7\n").has_value());
}

TEST(Assembler, RoundTripThroughToString) {
  const auto program = assemble("IADD3 R1, R2, R3\nFADD R4, R1, R1\n");
  ASSERT_TRUE(program.has_value());
  const auto text = program.value().to_string();
  EXPECT_NE(text.find("IADD3 R1, R2, R3"), std::string::npos);
  EXPECT_NE(text.find("FADD R4, R1, R1"), std::string::npos);
}

}  // namespace
}  // namespace hsim::isa
