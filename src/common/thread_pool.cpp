#include "common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <exception>

namespace hsim {
namespace {

// Set while a thread is inside a pool's worker_loop; lets parallel_for
// detect re-entrant use from a worker of the *same* pool, where blocking in
// future.get() would deadlock (every worker waiting on chunks only workers
// can run).
thread_local const ThreadPool* t_worker_of = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<void> ThreadPool::submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  auto future = packaged.get_future();
  {
    const std::lock_guard lock(mutex_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // exceptions are captured in the task's future
  }
}

bool ThreadPool::run_one_queued_task() {
  std::packaged_task<void()> task;
  {
    const std::lock_guard lock(mutex_);
    if (queue_.empty()) return false;
    task = std::move(queue_.front());
    queue_.pop_front();
  }
  task();
  return true;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const bool nested = t_worker_of == this;
  // The caller claims indices too, so one fewer chunk is queued; a nested
  // call on a saturated pool still makes progress even if no other worker
  // ever picks a chunk up.
  const std::size_t chunks =
      std::min(n, std::max<std::size_t>(1, size() * 4)) - 1;
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  const auto claim_loop = [next, end, &fn] {
    for (;;) {
      const std::size_t i = next->fetch_add(1, std::memory_order_relaxed);
      if (i >= end) return;
      fn(i);
    }
  };
  std::vector<std::future<void>> futures;
  futures.reserve(chunks);
  for (std::size_t c = 0; c < chunks; ++c) futures.push_back(submit(claim_loop));

  std::exception_ptr first_error;
  try {
    claim_loop();
  } catch (...) {
    first_error = std::current_exception();
  }
  for (auto& future : futures) {
    if (nested) {
      // Help-drain: while this chunk is not done, run whatever is queued
      // (our own chunks or unrelated tasks) instead of blocking a worker.
      while (future.wait_for(std::chrono::seconds(0)) !=
             std::future_status::ready) {
        if (!run_one_queued_task()) std::this_thread::yield();
      }
    }
    try {
      future.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hsim
