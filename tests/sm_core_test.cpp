// SM pipeline model: dependent-chain latencies, issue throughput,
// scoreboard behaviour, barriers, functional execution.
#include "sm/sm_core.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "isa/assembler.hpp"

namespace hsim::sm {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;

isa::Program chain_program(isa::Opcode op, std::uint32_t iterations) {
  isa::Program p;
  p.add({.op = op, .rd = 1, .ra = 1, .rb = 2});
  p.set_iterations(iterations);
  return p;
}

TEST(SmCore, DependentFaddChainMeasuresPipeLatency) {
  SmCore core(h800_pcie(), nullptr);
  const auto run = core.run(chain_program(isa::Opcode::kFAdd, 512),
                            {.threads_per_block = 32, .blocks = 1});
  // FMA latency is 4 cycles; a fully dependent chain issues one add per
  // latency.
  EXPECT_NEAR(run.cycles / 512.0, 4.0, 0.1);
}

TEST(SmCore, DependentIntChainUsesAluLatency) {
  SmCore core(h800_pcie(), nullptr);
  const auto run = core.run(chain_program(isa::Opcode::kIAdd3, 512),
                            {.threads_per_block = 32, .blocks = 1});
  // The ALU result is ready 4.5 cycles after issue; schedulers issue on
  // integer cycle boundaries, so a dependent chain quantises to 5.
  EXPECT_NEAR(run.cycles / 512.0,
              std::ceil(h800_pcie().dpx.emu_latency_per_op), 0.1);
}

TEST(SmCore, IndependentOpsPipelineAtInitiationInterval) {
  // 8 independent FADD chains from one warp: limited by the per-scheduler
  // FMA initiation interval (1 cycle on Hopper), not by latency.
  isa::Program p;
  for (int c = 0; c < 8; ++c) {
    p.add({.op = isa::Opcode::kFAdd, .rd = 10 + c, .ra = 1, .rb = 2});
  }
  p.set_iterations(256);
  SmCore core(h800_pcie(), nullptr);
  const auto run = core.run(p, {.threads_per_block = 32, .blocks = 1});
  const double per_op = run.cycles / (8.0 * 256.0);
  EXPECT_NEAR(per_op, 1.0, 0.05);
}

TEST(SmCore, AmpereFmaHalfRate) {
  // A100 has 16 FP32 lanes per partition: warp FMA initiation interval 2.
  isa::Program p;
  for (int c = 0; c < 8; ++c) {
    p.add({.op = isa::Opcode::kFAdd, .rd = 10 + c, .ra = 1, .rb = 2});
  }
  p.set_iterations(256);
  SmCore core(a100_pcie(), nullptr);
  const auto run = core.run(p, {.threads_per_block = 32, .blocks = 1});
  EXPECT_NEAR(run.cycles / (8.0 * 256.0), 2.0, 0.05);
}

TEST(SmCore, Fp64IsScarceOnGeForce) {
  isa::Program p;
  for (int c = 0; c < 4; ++c) {
    p.add({.op = isa::Opcode::kDAdd, .rd = 10 + c, .ra = 1, .rb = 2});
  }
  p.set_iterations(64);
  SmCore ada(rtx4090(), nullptr);
  const auto ada_run = ada.run(p, {.threads_per_block = 32, .blocks = 1});
  SmCore ampere(a100_pcie(), nullptr);
  const auto a100_run = ampere.run(p, {.threads_per_block = 32, .blocks = 1});
  // A100's FP64 pipe is ~18x wider than the 4090's.
  EXPECT_GT(ada_run.cycles / a100_run.cycles, 8.0);
}

TEST(SmCore, MultipleWarpsHideLatency) {
  const auto p = chain_program(isa::Opcode::kFAdd, 256);
  SmCore one(h800_pcie(), nullptr);
  const auto one_warp = one.run(p, {.threads_per_block = 32, .blocks = 1});
  SmCore eight(h800_pcie(), nullptr);
  const auto eight_warps = eight.run(p, {.threads_per_block = 256, .blocks = 1});
  // 8 warps of dependent chains interleave on 4 schedulers: total time
  // should grow far less than 8x (ideally ~2x).
  EXPECT_LT(eight_warps.cycles, one_warp.cycles * 2.5);
  EXPECT_EQ(eight_warps.instructions_issued, one_warp.instructions_issued * 8);
}

TEST(SmCore, FunctionalIntegerExecution) {
  const auto program = isa::assemble(R"(
    MOV R1, 7
    MOV R2, 5
    IADD3 R3, R1, R2
    IMAD R4, R3, R2, R1
    IMNMX R5, R4, R1, 1
    POPC R6, R5
  )");
  ASSERT_TRUE(program.has_value());
  SmCore core(h800_pcie(), nullptr);
  core.run(program.value(), {.threads_per_block = 32, .blocks = 1});
  EXPECT_EQ(core.reg(0, 3, 0), 12u);
  EXPECT_EQ(core.reg(0, 4, 0), 67u);
  EXPECT_EQ(core.reg(0, 5, 0), 67u);   // max(67, 7)
  EXPECT_EQ(core.reg(0, 6, 0), 3u);    // popcount(67) = 0b1000011
}

TEST(SmCore, ThreadIdPreloadedInR0) {
  isa::Program p;
  p.iadd3(1, 0, 0);  // R1 = 2 * tid
  SmCore core(h800_pcie(), nullptr);
  core.run(p, {.threads_per_block = 64, .blocks = 1});
  EXPECT_EQ(core.reg(0, 1, 0), 0u);
  EXPECT_EQ(core.reg(0, 1, 5), 10u);
  EXPECT_EQ(core.reg(1, 1, 0), 64u);  // warp 1 lane 0 -> tid 32 -> 2*32
}

TEST(SmCore, ClockReadsCycleCounter) {
  const auto program = isa::assemble(R"(
    CLOCK R1
    FADD R3, R4, R5
    FADD R3, R3, R5
    CLOCK R2
  )");
  ASSERT_TRUE(program.has_value());
  SmCore core(h800_pcie(), nullptr);
  core.run(program.value(), {.threads_per_block = 32, .blocks = 1});
  const auto start = core.reg(0, 1, 0);
  const auto end = core.reg(0, 2, 0);
  // The dependent FADD pair takes ~2x4 cycles between the clock reads.
  EXPECT_GE(end - start, 5u);
  EXPECT_LE(end - start, 12u);
}

TEST(SmCore, BarrierSynchronisesBlock) {
  // Warp 0 runs a long chain before the barrier; all warps' post-barrier
  // work must start after it finishes.
  const auto program = isa::assemble(R"(
    FADD R1, R1, R2
    FADD R1, R1, R2
    FADD R1, R1, R2
    FADD R1, R1, R2
    BAR.SYNC
    CLOCK R3
  )");
  ASSERT_TRUE(program.has_value());
  SmCore core(h800_pcie(), nullptr);
  core.run(program.value(), {.threads_per_block = 128, .blocks = 1});
  const auto t0 = core.reg(0, 3, 0);
  const auto t3 = core.reg(3, 3, 0);
  // All warps read the clock within a couple of cycles of each other.
  EXPECT_LE(t0 > t3 ? t0 - t3 : t3 - t0, 4u);
}

TEST(SmCore, SharedMemoryFunctional) {
  const auto program = isa::assemble(R"(
    MOV R1, 128
    MOV R2, 42
    STS [R1], R2
    LDS R3, [R1]
  )");
  ASSERT_TRUE(program.has_value());
  SmCore core(h800_pcie(), nullptr);
  core.run(program.value(), {.threads_per_block = 32, .blocks = 1});
  EXPECT_EQ(core.reg(0, 3, 0), 42u);
}

TEST(SmCore, GlobalLoadsReadBoundBuffer) {
  std::vector<std::uint64_t> global(64, 0);
  global[0] = 1234;
  global[2] = 5678;
  const auto program = isa::assemble(R"(
    MOV R1, 0
    LDG.CA R2, [R1]
    MOV R3, 16
    LDG.CA R4, [R3]
  )");
  ASSERT_TRUE(program.has_value());
  mem::MemorySystem mem(h800_pcie(), 1);
  SmCore core(h800_pcie(), &mem, 0);
  core.bind_global(global);
  core.run(program.value(), {.threads_per_block = 32, .blocks = 1});
  EXPECT_EQ(core.reg(0, 2, 0), 1234u);
  EXPECT_EQ(core.reg(0, 4, 0), 5678u);
}

TEST(SmCore, CpAsyncDoesNotBlockIssue) {
  // cp.async followed by independent math: the math should not wait for
  // the copy; a sync load would stall the dependent consumer.
  const auto async_prog = isa::assemble(R"(
    CP.ASYNC [R1]
    CP.ASYNC.COMMIT
    FADD R2, R3, R4
    FADD R2, R2, R4
    CP.ASYNC.WAIT 0
  )");
  ASSERT_TRUE(async_prog.has_value());
  mem::MemorySystem mem(h800_pcie(), 1);
  SmCore core(h800_pcie(), &mem, 0);
  auto p = async_prog.value();
  p.set_iterations(32);
  const auto run = core.run(p, {.threads_per_block = 32, .blocks = 1});
  // Each iteration still pays the wait, but issue continues meanwhile;
  // the whole loop must beat 32 serialised DRAM latencies by a wide margin
  // yet cannot beat one DRAM latency per iteration's wait.
  EXPECT_GT(run.cycles, h800_pcie().memory.dram_latency);
  EXPECT_LT(run.cycles, 32.0 * 2.0 * h800_pcie().memory.dram_latency);
}

TEST(SmCore, StallAccountingNonZeroForDependentChains) {
  SmCore core(h800_pcie(), nullptr);
  const auto run = core.run(chain_program(isa::Opcode::kFAdd, 128),
                            {.threads_per_block = 32, .blocks = 1});
  EXPECT_GT(run.stall_cycles, 0u);
  EXPECT_GT(run.ipc(), 0.0);
  EXPECT_LT(run.ipc(), 1.0);
}

}  // namespace
}  // namespace hsim::sm
