// Hierarchical GEMM on the functional tensor cores: compute a real matrix
// product through mma / wgmma tiles (bit-exact reduced-precision
// arithmetic), compare precisions and sparsity, and read off the
// performance projection — the workload the paper's introduction motivates.
//
//   $ ./examples/hierarchical_gemm [m n k]
#include <cstdlib>
#include <iostream>

#include "arch/device.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "tensorcore/gemm.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;

  const int m = argc > 1 ? std::atoi(argv[1]) : 256;
  const int n = argc > 2 ? std::atoi(argv[2]) : 256;
  const int k = argc > 3 ? std::atoi(argv[3]) : 256;
  const auto& device = arch::h800_pcie();

  Xoshiro256ss rng(7);
  tc::MatF a(m, k), b(k, n), c(m, n);
  tc::fill_random(a, DType::kFp16, rng);
  tc::fill_random(b, DType::kFp16, rng);

  std::cout << "D(" << m << "x" << n << ") = A(" << m << "x" << k << ") x B("
            << k << "x" << n << ") on " << device.name << "\n\n";

  Table table("Precision / path / sparsity comparison");
  table.set_header({"path", "A/B", "C/D", "sparse", "instructions",
                    "proj TFLOPS", "max |err| vs FP64"});

  struct Run {
    isa::TcInstr instr;
    bool sparse;
  };
  const Run runs[] = {
      {{.path = isa::TcPath::kMma, .shape = {16, 8, 16}, .ab = DType::kFp16,
        .cd = DType::kFp32}, false},
      {{.path = isa::TcPath::kMma, .shape = {16, 8, 16}, .ab = DType::kFp16,
        .cd = DType::kFp16}, false},
      {{.path = isa::TcPath::kMma, .shape = {16, 8, 16}, .ab = DType::kFp16,
        .cd = DType::kFp32}, true},
      {{.path = isa::TcPath::kWgmma, .shape = {64, 64, 16}, .ab = DType::kFp16,
        .cd = DType::kFp32, .a_src = isa::OperandSource::kSharedMemory}, false},
      {{.path = isa::TcPath::kWgmma, .shape = {64, 64, 32}, .ab = DType::kFp8E4M3,
        .cd = DType::kFp32, .a_src = isa::OperandSource::kSharedMemory}, false},
  };

  for (const auto& run : runs) {
    const auto result =
        tc::gemm(a, b, c, run.instr, device, {.sparse = run.sparse});
    if (!result) {
      std::cout << "skipped " << run.instr.ptx_name() << ": "
                << result.error().to_string() << "\n";
      continue;
    }
    const auto& r = result.value();
    table.add_row({run.instr.path == isa::TcPath::kWgmma ? "wgmma" : "mma",
                   std::string(num::to_string(run.instr.ab)),
                   std::string(num::to_string(run.instr.cd)),
                   run.sparse ? "2:4" : "-",
                   std::to_string(r.instructions),
                   fmt_fixed(r.projected_tflops, 1),
                   fmt_eng(r.max_abs_error)});
  }
  table.render(std::cout);

  std::cout << "\nReading the table: FP16-accumulate trades accuracy for "
               "nothing (same rate on H800); FP8 doubles the projected rate "
               "at ~10-100x the numeric error; 2:4 sparsity is exact for the "
               "pruned operand and cuts instructions in half.  The wgmma "
               "projection only beats mma once the 64xN output grid covers "
               "all 114 SMs — try 1024 1024 256 to see the paper's central "
               "finding take over.\n";
  return 0;
}
