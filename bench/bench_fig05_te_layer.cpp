// Fig 5: te.TransformerLayer single-layer encode latency for input
// (4, 512, hidden) across hidden sizes, devices and dtypes (Table II
// parameterisation).  FP16 ~ 2x FP32; FP8 beats FP16 only above hidden
// 4096 and never reaches 2x because attention/norms stay FP16.
#include <iostream>

#include "bench/bench_util.hpp"
#include "te/transformer.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);

  Table table("Fig 5: te.TransformerLayer latency (ms), input (4, 512, h)");
  table.set_header({"Device", "dtype", "h=1024", "h=2048", "h=4096", "h=5120",
                    "h=8192"});
  for (const auto* device : arch::all_devices()) {
    const te::CostModel model(*device);
    for (const DType dtype : {DType::kFp32, DType::kFp16, DType::kFp8E4M3}) {
      std::vector<std::string> cells{device->name,
                                     std::string(num::to_string(dtype))};
      for (const std::int64_t hidden : {1024, 2048, 4096, 5120, 8192}) {
        const auto cfg = te::paper_layer_config(hidden);
        if (!cfg) {
          cells.push_back("?");
          continue;
        }
        const auto profile =
            te::transformer_layer_forward(model, cfg.value(), dtype);
        cells.push_back(profile ? fmt_fixed(profile.value().seconds * 1e3, 3)
                                : "-");
      }
      table.add_row(std::move(cells));
    }
    table.add_rule();
  }
  bench::emit(table, opt);

  Table cross("FP8/FP16 layer speedup by hidden size on H800");
  cross.set_header({"hidden", "FP16 ms", "FP8 ms", "speedup"});
  const te::CostModel h800(arch::h800_pcie());
  for (const std::int64_t hidden : {1024, 2048, 4096, 5120, 8192}) {
    const auto cfg = te::paper_layer_config(hidden);
    if (!cfg) continue;
    const auto fp16 =
        te::transformer_layer_forward(h800, cfg.value(), DType::kFp16);
    const auto fp8 =
        te::transformer_layer_forward(h800, cfg.value(), DType::kFp8E4M3);
    if (!fp16 || !fp8) continue;
    cross.add_row({std::to_string(hidden),
                   fmt_fixed(fp16.value().seconds * 1e3, 3),
                   fmt_fixed(fp8.value().seconds * 1e3, 3),
                   fmt_fixed(fp16.value().seconds / fp8.value().seconds, 2) + "x"});
  }
  bench::emit(cross, opt);
  return 0;
}
