#include "dsm/cluster.hpp"

namespace hsim::dsm {

Expected<Cluster> Cluster::create(const arch::DeviceSpec& device, int size) {
  if (!device.dsm.available) {
    return unsupported("distributed shared memory requires Hopper; " +
                       device.name + " has no SM-to-SM network");
  }
  if (size < 1 || size > device.dsm.max_cluster_size) {
    return invalid_argument("cluster size must be in [1, " +
                            std::to_string(device.dsm.max_cluster_size) + "]");
  }
  if ((size & (size - 1)) != 0) {
    return invalid_argument("cluster size must be a power of two");
  }
  // Contention: CS <= 2 enjoys full port bandwidth; each further doubling
  // of the cluster multiplies achievable bandwidth by the contention base
  // (more blocks share the GPC switch links).
  double contention = 1.0;
  for (int cs = 4; cs <= size; cs *= 2) {
    contention *= device.dsm.contention_base;
  }
  return Cluster{size, contention};
}

}  // namespace hsim::dsm
