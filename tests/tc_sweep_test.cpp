// Parameterised property sweeps over the tensor-core model: every legal
// (device, path, dtype, shape, sparsity, source) combination must satisfy
// the structural invariants — no cell-by-cell goldens, just laws.
#include <tuple>

#include <gtest/gtest.h>

#include "core/tcbench.hpp"
#include "tensorcore/timing.hpp"

namespace hsim::tc {
namespace {

using arch::DeviceSpec;
using isa::OperandSource;
using isa::TcInstr;
using isa::TcPath;
using num::DType;

// ---------- mma sweep: device x dtype x shape x sparsity ----------

struct MmaCase {
  const DeviceSpec* device;
  DType ab;
  DType cd;
  int k;
  bool sparse;
};

std::vector<MmaCase> all_mma_cases() {
  std::vector<MmaCase> cases;
  const struct { DType ab; DType cd; int k_small; } combos[] = {
      {DType::kFp16, DType::kFp16, 8}, {DType::kFp16, DType::kFp32, 8},
      {DType::kBf16, DType::kFp32, 8}, {DType::kTf32, DType::kFp32, 4},
      {DType::kInt8, DType::kInt32, 16},
  };
  for (const auto* device : arch::all_devices()) {
    for (const auto& combo : combos) {
      for (const int mult : {1, 2}) {
        for (const bool sparse : {false, true}) {
          cases.push_back({device, combo.ab, combo.cd,
                           combo.k_small * mult * (sparse ? 2 : 1), sparse});
        }
      }
    }
  }
  return cases;
}

class MmaSweep : public ::testing::TestWithParam<MmaCase> {};

TEST_P(MmaSweep, StructuralInvariants) {
  const auto& c = GetParam();
  const TcInstr instr{.path = TcPath::kMma, .shape = {16, 8, c.k},
                      .ab = c.ab, .cd = c.cd, .sparse = c.sparse};
  const auto timing = tc_timing(instr, *c.device);
  ASSERT_TRUE(timing.has_value()) << timing.error().to_string();
  const auto& t = timing.value();

  EXPECT_GT(t.latency, 0.0);
  EXPECT_GT(t.cadence, 0.0);
  EXPECT_TRUE(t.on_tensor_cores);

  // Throughput never exceeds the (sparse-adjusted) architectural peak —
  // evaluated at the device's own sustained clock.
  const double peak_at_clock = c.device->tc_peak_tflops(c.ab) *
                               (c.sparse ? 2.0 : 1.0) *
                               c.device->clock_hz() /
                               c.device->official_clock_hz();
  EXPECT_LE(t.throughput_tflops(*c.device), peak_at_clock * 1.001);

  // The bench harness agrees with the analytic model asymptotically.
  const auto bench = core::bench_tc(instr, *c.device, {.iterations = 2048});
  ASSERT_TRUE(bench.has_value());
  EXPECT_NEAR(bench.value().latency_cycles, t.latency, 1e-6);
  EXPECT_LE(bench.value().tflops_zero, t.throughput_tflops(*c.device) + 0.5);
  EXPECT_GE(bench.value().tflops_zero, 0.98 * t.throughput_tflops(*c.device));
  // Random data never exceeds zero-data throughput (DVFS only hurts).
  EXPECT_LE(bench.value().tflops_rand, bench.value().tflops_zero + 1e-9);
  // Power stays within the board envelope.
  EXPECT_LE(bench.value().power_rand_w, c.device->power.board_limit_w + 1e-9);
  EXPECT_GE(bench.value().power_zero_w, c.device->power.idle_w);
}

TEST_P(MmaSweep, SparseNeverSlowerThanDense) {
  const auto& c = GetParam();
  if (!c.sparse) GTEST_SKIP() << "dense case";
  const TcInstr sparse{.path = TcPath::kMma, .shape = {16, 8, c.k},
                       .ab = c.ab, .cd = c.cd, .sparse = true};
  const TcInstr dense{.path = TcPath::kMma, .shape = {16, 8, c.k / 2},
                      .ab = c.ab, .cd = c.cd, .sparse = false};
  const auto s = tc_timing(sparse, *c.device);
  const auto d = tc_timing(dense, *c.device);
  ASSERT_TRUE(s && d);
  EXPECT_GE(s.value().throughput_tflops(*c.device),
            d.value().throughput_tflops(*c.device) * 0.999);
  EXPECT_LE(s.value().throughput_tflops(*c.device),
            d.value().throughput_tflops(*c.device) * 2.001);
}

std::string mma_case_name(const ::testing::TestParamInfo<MmaCase>& info) {
  const auto& c = info.param;
  std::string name;
  switch (c.device->generation) {
    case arch::Generation::kAmpere: name = "A100"; break;
    case arch::Generation::kAda: name = "RTX4090"; break;
    case arch::Generation::kHopper: name = "H800"; break;
  }
  name += "_" + std::string(num::to_string(c.ab)) + "_" +
          std::string(num::to_string(c.cd)) + "_k" + std::to_string(c.k) +
          (c.sparse ? "_sp" : "_d");
  for (auto& ch : name) {
    if (ch == '.') ch = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllDevicesAndTypes, MmaSweep,
                         ::testing::ValuesIn(all_mma_cases()), mma_case_name);

// ---------- wgmma sweep: N x sparsity x source ----------

struct WgmmaCase {
  int n;
  bool sparse;
  OperandSource src;
};

class WgmmaSweep : public ::testing::TestWithParam<WgmmaCase> {};

TEST_P(WgmmaSweep, StructuralInvariants) {
  const auto& c = GetParam();
  const auto& device = arch::h800_pcie();
  const TcInstr instr{.path = TcPath::kWgmma,
                      .shape = {64, c.n, c.sparse ? 32 : 16},
                      .ab = DType::kFp16, .cd = DType::kFp32,
                      .sparse = c.sparse, .a_src = c.src};
  const auto timing = tc_timing(instr, device);
  ASSERT_TRUE(timing.has_value());
  const auto& t = timing.value();

  const double peak = device.tc_peak_tflops(DType::kFp16) * (c.sparse ? 2 : 1);
  EXPECT_LE(t.throughput_tflops(device), peak);
  EXPECT_GE(t.latency, c.n / 2.0 - 1e-9);

  // SS is never faster than RS, and never lower latency.
  if (c.src == OperandSource::kSharedMemory) {
    TcInstr rs = instr;
    rs.a_src = OperandSource::kRegister;
    const auto rs_t = tc_timing(rs, device).value();
    EXPECT_LE(t.throughput_tflops(device),
              rs_t.throughput_tflops(device) + 1e-9);
    EXPECT_GE(t.latency, rs_t.latency);
  }
}

TEST_P(WgmmaSweep, ThroughputMonotoneInN) {
  const auto& c = GetParam();
  if (c.n <= 8) GTEST_SKIP();
  const auto& device = arch::h800_pcie();
  const auto at_n = [&](int n) {
    const TcInstr instr{.path = TcPath::kWgmma,
                        .shape = {64, n, c.sparse ? 32 : 16},
                        .ab = DType::kFp16, .cd = DType::kFp32,
                        .sparse = c.sparse, .a_src = c.src};
    return tc_timing(instr, device).value().throughput_tflops(device);
  };
  EXPECT_GE(at_n(c.n) + 1e-6, at_n(c.n / 2));
}

std::vector<WgmmaCase> all_wgmma_cases() {
  std::vector<WgmmaCase> cases;
  for (const int n : {8, 16, 32, 64, 128, 256}) {
    for (const bool sparse : {false, true}) {
      for (const auto src :
           {OperandSource::kSharedMemory, OperandSource::kRegister}) {
        cases.push_back({n, sparse, src});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    NSweep, WgmmaSweep, ::testing::ValuesIn(all_wgmma_cases()),
    [](const ::testing::TestParamInfo<WgmmaCase>& info) {
      return "n" + std::to_string(info.param.n) +
             (info.param.sparse ? "_sp" : "_d") +
             (info.param.src == OperandSource::kSharedMemory ? "_ss" : "_rs");
    });

}  // namespace
}  // namespace hsim::tc
