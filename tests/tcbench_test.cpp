// Tensor-core bench harness: measured latency equals the timing model's,
// throughput ramps correctly, Zero/Rand and SASS plumbing.
#include "core/tcbench.hpp"

#include <gtest/gtest.h>

namespace hsim::core {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using isa::OperandSource;
using isa::TcInstr;
using isa::TcPath;
using num::DType;

TEST(TcBench, LatencyMatchesModel) {
  const TcInstr instr{.path = TcPath::kMma, .shape = {16, 8, 16},
                      .ab = DType::kFp16, .cd = DType::kFp16};
  const auto bench = bench_tc(instr, a100_pcie()).value();
  const auto model = tc::tc_timing(instr, a100_pcie()).value();
  EXPECT_NEAR(bench.latency_cycles, model.latency, 1e-9);
}

TEST(TcBench, ThroughputApproachesAnalyticAsymptote) {
  const TcInstr instr{.path = TcPath::kMma, .shape = {16, 8, 16},
                      .ab = DType::kFp16, .cd = DType::kFp16};
  const auto bench = bench_tc(instr, a100_pcie()).value();
  const auto model = tc::tc_timing(instr, a100_pcie()).value();
  const double asymptote = model.throughput_tflops(a100_pcie());
  EXPECT_LT(bench.tflops_zero, asymptote);          // ramp loss
  EXPECT_GT(bench.tflops_zero, 0.97 * asymptote);   // ...but small
}

TEST(TcBench, MoreIterationsCloserToPeak) {
  const TcInstr instr{.path = TcPath::kMma, .shape = {16, 8, 16},
                      .ab = DType::kFp16, .cd = DType::kFp16};
  const auto few = bench_tc(instr, a100_pcie(), {.iterations = 64}).value();
  const auto many = bench_tc(instr, a100_pcie(), {.iterations = 4096}).value();
  EXPECT_GT(many.tflops_zero, few.tflops_zero);
}

TEST(TcBench, RandThrottlesWgmmaButNotZero) {
  const TcInstr instr{.path = TcPath::kWgmma, .shape = {64, 256, 16},
                      .ab = DType::kFp16, .cd = DType::kFp32,
                      .a_src = OperandSource::kSharedMemory};
  const auto bench = bench_tc(instr, h800_pcie()).value();
  EXPECT_TRUE(bench.throttled);
  EXPECT_LT(bench.tflops_rand, bench.tflops_zero);
  EXPECT_DOUBLE_EQ(bench.power_rand_w, h800_pcie().power.board_limit_w);
  EXPECT_LT(bench.power_zero_w, 200.0);
  EXPECT_LT(bench.clock_rand_mhz, h800_pcie().observed_clock_mhz);
}

TEST(TcBench, SassIncluded) {
  const TcInstr instr{.path = TcPath::kMma, .shape = {16, 8, 16},
                      .ab = DType::kFp16, .cd = DType::kFp32};
  EXPECT_EQ(bench_tc(instr, h800_pcie()).value().sass, "HMMA.16816.F32");
}

TEST(TcBench, ErrorsPropagate) {
  const TcInstr fp8_mma{.path = TcPath::kMma, .shape = {16, 8, 32},
                        .ab = DType::kFp8E4M3, .cd = DType::kFp32};
  EXPECT_FALSE(bench_tc(fp8_mma, h800_pcie()).has_value());
  const TcInstr wgmma_instr{.path = TcPath::kWgmma, .shape = {64, 256, 16},
                            .ab = DType::kFp16, .cd = DType::kFp32};
  EXPECT_FALSE(bench_tc(wgmma_instr, a100_pcie()).has_value());
}

TEST(TcBench, Int4FallbackFlagged) {
  const TcInstr instr{.path = TcPath::kMma, .shape = {16, 8, 64},
                      .ab = DType::kInt4, .cd = DType::kInt32};
  const auto bench = bench_tc(instr, h800_pcie()).value();
  EXPECT_FALSE(bench.on_tensor_cores);
  EXPECT_EQ(bench.sass, "IMAD.MOV.U32");
  EXPECT_LT(bench.tflops_zero, 100.0);  // CUDA-core rates, not TC rates
}

}  // namespace
}  // namespace hsim::core
