#include "core/tcbench.hpp"

#include "sim/pipeline.hpp"

namespace hsim::core {
namespace {

// Event names must be static storage (Event keeps a string_view).
constexpr std::string_view tc_event_name(isa::TcPath path) noexcept {
  switch (path) {
    case isa::TcPath::kMma: return "MMA";
    case isa::TcPath::kWgmma: return "WGMMA";
    case isa::TcPath::kWmma: return "WMMA";
  }
  return "TC";
}

}  // namespace

Expected<TcBenchResult> bench_tc(const isa::TcInstr& instr,
                                 const arch::DeviceSpec& device,
                                 TcBenchConfig config) {
  auto sass = isa::compile_to_sass(instr, device);
  if (!sass) return sass.error();
  auto timing = tc::tc_timing(instr, device);
  if (!timing) return timing.error();
  const auto& t = timing.value();

  TcBenchResult out;
  out.sass = sass.value();
  out.on_tensor_cores = t.on_tensor_cores;

  // Latency: dependent chain — instruction i+1 may only start once i's
  // result is architecturally visible (D feeds the next accumulate).
  {
    sim::PipelinedUnit pipe(t.cadence, t.latency);
    const std::string_view name = tc_event_name(instr.path);
    double ready = 0;
    double issue_to_complete_sum = 0;
    for (int i = 0; i < config.iterations; ++i) {
      const double free_at = pipe.next_free();
      const double start = std::max(ready, free_at);
      const double completion = pipe.issue(ready, t.cadence, t.latency);
      if (config.sink != nullptr) {
        if (ready > free_at) {
          config.sink->on_event({trace::EventKind::kStall,
                                 trace::StallReason::kScoreboardRaw, free_at,
                                 ready - free_at, 0, 0, i, name});
        } else if (free_at > ready) {
          config.sink->on_event({trace::EventKind::kStall,
                                 trace::StallReason::kStructural, ready,
                                 free_at - ready, 0, 0, i, name});
        }
        config.sink->on_event({trace::EventKind::kIssue,
                               trace::StallReason::kNone, start,
                               completion - start, 0, 0, i, name});
      }
      issue_to_complete_sum += completion - start;
      ready = completion;
    }
    out.latency_cycles = issue_to_complete_sum / config.iterations;
  }

  // Throughput: back-to-back independent issue; one SM is representative
  // and the device scales by SM count.
  double per_sm_ops_per_clk;
  {
    sim::PipelinedUnit pipe(t.cadence, t.latency);
    double last = 0;
    for (int i = 0; i < config.iterations; ++i) {
      last = pipe.issue(0.0, t.cadence, t.latency);
      if (config.pmu != nullptr) {
        config.pmu->inc(prof::Counter::kInstIssued);
        config.pmu->inc(prof::Counter::kInstRetired);
        config.pmu->inc(prof::Counter::kIssuedTensor);
        config.pmu->add(prof::Counter::kTensorActiveCycles, t.cadence);
        config.pmu->add(prof::Counter::kFlops, t.ops);
      }
    }
    per_sm_ops_per_clk = t.ops * config.iterations / last;
    out.usage = {"tc." + out.sass, last,
                 {{"TC.pipe", pipe.busy_cycles(), pipe.ops()}}};
  }
  const double unthrottled = per_sm_ops_per_clk *
                             static_cast<double>(device.sm_count) *
                             device.clock_hz() / 1e12;

  const auto zero = tc::apply_power(instr, device, unthrottled, /*random=*/false);
  const auto rand = tc::apply_power(instr, device, unthrottled, /*random=*/true);
  out.tflops_zero = zero.throughput_tflops;
  out.tflops_rand = rand.throughput_tflops;
  out.power_zero_w = zero.power_w;
  out.power_rand_w = rand.power_w;
  out.clock_rand_mhz = rand.clock_mhz;
  out.throttled = rand.throttled;
  return out;
}

}  // namespace hsim::core
