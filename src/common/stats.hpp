// Online statistics used by every measurement harness.
//
// The paper reports averages of repeated instruction timings; we additionally
// keep min/max/stddev/percentiles so the harness can flag unstable
// measurements (the simulator is deterministic, but workload-randomised
// benches are not).
#pragma once

#include <cstddef>
#include <vector>

namespace hsim {

/// Welford online mean/variance plus min/max.  O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return count_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(count_); }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch statistics that keeps samples for percentile queries.
///
/// Empty-set contract: every summary query (`mean`, `median`, `percentile`,
/// `min`, `max`) asserts that at least one sample was added — a summary of
/// nothing is a bug in the harness, not a value.  Check `count()` first if
/// emptiness is a legitimate state.
class SampleSet {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double median() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

}  // namespace hsim
