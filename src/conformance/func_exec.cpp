#include "conformance/func_exec.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/status.hpp"
#include "numerics/types.hpp"

namespace hsim::conformance {
namespace {

float as_f32(std::uint64_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}
std::uint64_t from_f32(float value) {
  return std::bit_cast<std::uint32_t>(value);
}
double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t from_f64(double value) { return std::bit_cast<std::uint64_t>(value); }
std::int32_t as_s32(std::uint64_t bits) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(bits));
}

// Hardware canonicalizes NaN arithmetic results to one quiet-NaN encoding;
// the pipeline mirrors that, so the reference must too (see ref_interp.cpp).
std::uint64_t canon_f32(float value) {
  return std::isnan(value) ? std::uint64_t{0x7fffffffu} : from_f32(value);
}
std::uint64_t canon_f64(double value) {
  return std::isnan(value) ? std::uint64_t{0x7fffffffffffffffull}
                           : from_f64(value);
}

std::uint32_t load_shared_u32(const std::vector<std::uint8_t>& shared,
                              std::uint32_t byte_addr) {
  HSIM_ASSERT(byte_addr + 4 <= shared.size());
  std::uint32_t value;
  std::memcpy(&value, shared.data() + byte_addr, sizeof(value));
  return value;
}

void store_shared_u32(std::vector<std::uint8_t>& shared, std::uint32_t byte_addr,
                      std::uint32_t value) {
  HSIM_ASSERT(byte_addr + 4 <= shared.size());
  std::memcpy(shared.data() + byte_addr, &value, sizeof(value));
}

void insert_sorted_unique(std::vector<std::uint64_t>& lines, std::uint64_t v) {
  const auto it = std::lower_bound(lines.begin(), lines.end(), v);
  if (it == lines.end() || *it != v) lines.insert(it, v);
}

}  // namespace

FuncExec::FuncExec(const arch::DeviceSpec& device, const isa::Program& program,
                   const sm::BlockShape& shape,
                   std::span<const std::uint64_t> global)
    : device_(device), program_(program), global_(global) {
  HSIM_ASSERT(!program.empty());
  HSIM_ASSERT(shape.blocks >= 1 && shape.threads_per_block >= 1);

  int max_reg = 0;
  for (const auto& inst : program.body()) {
    max_reg = std::max({max_reg, inst.rd, inst.ra, inst.rb, inst.rc});
  }
  num_regs_ = max_reg + 1;
  warps_per_block_ = shape.warps_per_block();
  const int total_warps = shape.total_warps();
  live_ = total_warps;

  regs_.assign(static_cast<std::size_t>(total_warps),
               std::vector<std::uint64_t>(
                   static_cast<std::size_t>(num_regs_) * kLanes, 0));
  shared_.assign(device.memory.smem_max_per_sm, 0);
  issued_per_warp_.assign(static_cast<std::size_t>(total_warps), 0);
  warps_.assign(static_cast<std::size_t>(total_warps), WarpState{});

  // R0 carries the global thread id, lane-varying, like the pipeline.
  for (int w = 0; w < total_warps; ++w) {
    for (int l = 0; l < kLanes; ++l) {
      regs_[static_cast<std::size_t>(w)][static_cast<std::size_t>(l)] =
          static_cast<std::uint64_t>(w) * kLanes + static_cast<std::uint64_t>(l);
    }
  }
}

void FuncExec::touch_line(std::uint64_t addr, bool l1) {
  const std::uint64_t base = addr & ~std::uint64_t{127};
  insert_sorted_unique(l1 ? ca_lines_ : cg_lines_, base);
}

void FuncExec::step(int warp_id) {
  auto& w = warps_[static_cast<std::size_t>(warp_id)];
  auto& regs = regs_[static_cast<std::size_t>(warp_id)];
  const auto& inst = program_.body()[w.pc];

  const auto lane = [&](int r, int l) -> std::uint64_t {
    return r == isa::kRegNone
               ? 0
               : regs[static_cast<std::size_t>(r) * kLanes +
                      static_cast<std::size_t>(l)];
  };
  const auto set_lane = [&](int r, int l, std::uint64_t v) {
    regs[static_cast<std::size_t>(r) * kLanes + static_cast<std::size_t>(l)] = v;
  };
  const auto for_lanes = [&](auto&& fn) {
    if (inst.rd == isa::kRegNone) return;
    for (int l = 0; l < kLanes; ++l) {
      set_lane(inst.rd, l,
               fn(lane(inst.ra, l), lane(inst.rb, l), lane(inst.rc, l)));
    }
  };
  const auto addr_of = [&](int l) -> std::uint64_t {
    return lane(inst.ra, l) + static_cast<std::uint64_t>(inst.imm);
  };
  const auto load_global_word = [&](std::uint64_t addr) -> std::uint64_t {
    const std::uint64_t index = addr / 8;
    return index < global_.size() ? global_[index] : 0;
  };

  using isa::Opcode;
  switch (inst.op) {
    case Opcode::kNop:
    case Opcode::kExit:
    case Opcode::kBarSync:
    // Timing-only operations: no architectural effect in the pipeline's
    // contract, so none here either.
    case Opcode::kStg:
    case Opcode::kCpAsync:
    case Opcode::kCpAsyncCommit:
    case Opcode::kCpAsyncWait:
    case Opcode::kTmaLoad:
    case Opcode::kLdsRemote:
    case Opcode::kStsRemote:
    case Opcode::kAtomRemoteAdd:
      break;
    case Opcode::kMov:
      for_lanes([&](std::uint64_t, std::uint64_t, std::uint64_t) {
        return static_cast<std::uint64_t>(inst.imm);
      });
      break;
    case Opcode::kIAdd3:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return a + b + c;
      });
      break;
    case Opcode::kIMad:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return a * b + c;
      });
      break;
    case Opcode::kIMnMx:
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        const auto x = as_s32(a), y = as_s32(b);
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(
            (inst.imm & 1) ? std::max(x, y) : std::min(x, y)));
      });
      break;
    case Opcode::kVIMnMx:
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        const std::int64_t sum = static_cast<std::int64_t>(as_s32(a)) +
                                 static_cast<std::int64_t>(as_s32(b));
        const auto clamped = static_cast<std::int32_t>(std::clamp<std::int64_t>(
            sum, std::numeric_limits<std::int32_t>::min(),
            std::numeric_limits<std::int32_t>::max()));
        std::int32_t r = (inst.imm & 1) ? std::max(clamped, as_s32(c))
                                        : std::min(clamped, as_s32(c));
        if (inst.imm & 2) r = std::max(r, 0);
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
      });
      break;
    case Opcode::kLop3:
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        switch (inst.imm) {
          case 1: return a | b;
          case 2: return a ^ b;
          default: return a & b;
        }
      });
      break;
    case Opcode::kShf:
      for_lanes([&](std::uint64_t a, std::uint64_t, std::uint64_t) {
        return a << (inst.imm & 63);
      });
      break;
    case Opcode::kPopc:
      for_lanes([](std::uint64_t a, std::uint64_t, std::uint64_t) {
        return static_cast<std::uint64_t>(std::popcount(a));
      });
      break;
    case Opcode::kFAdd:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return canon_f32(as_f32(a) + as_f32(b));
      });
      break;
    case Opcode::kFMul:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return canon_f32(as_f32(a) * as_f32(b));
      });
      break;
    case Opcode::kFFma:
    case Opcode::kHMma:  // fragment math stands in as per-lane FP32 FMA
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return canon_f32(as_f32(a) * as_f32(b) + as_f32(c));
      });
      break;
    case Opcode::kHAdd2:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        using num::fp16;
        std::uint64_t packed = 0;
        for (int half = 0; half < 2; ++half) {
          const auto av =
              fp16::from_bits(static_cast<std::uint16_t>(a >> (16 * half)));
          const auto bv =
              fp16::from_bits(static_cast<std::uint16_t>(b >> (16 * half)));
          const float sum = av.to_float() + bv.to_float();
          const std::uint16_t bits =
              std::isnan(sum) ? std::uint16_t{0x7fff} : fp16(sum).bits();
          packed |= static_cast<std::uint64_t>(bits) << (16 * half);
        }
        return packed;
      });
      break;
    case Opcode::kDAdd:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return canon_f64(as_f64(a) + as_f64(b));
      });
      break;
    case Opcode::kDMul:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return canon_f64(as_f64(a) * as_f64(b));
      });
      break;
    case Opcode::kClock:
      // A timing-free interpreter has no cycle counter; the differ must
      // not compare registers once one of these executes.
      clock_tainted_ = true;
      for_lanes([](std::uint64_t, std::uint64_t, std::uint64_t) {
        return std::uint64_t{0};
      });
      break;
    case Opcode::kMapa:
      if (inst.rd != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) set_lane(inst.rd, l, addr_of(l));
      }
      break;
    case Opcode::kLdgCa:
    case Opcode::kLdgCg:
      if (inst.rd != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          const std::uint64_t addr = addr_of(l);
          touch_line(addr, inst.op == Opcode::kLdgCa);
          set_lane(inst.rd, l, load_global_word(addr));
        }
      }
      break;
    case Opcode::kLds:
      used_shared_ = true;
      if (inst.rd != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          const auto byte_addr =
              static_cast<std::uint32_t>(addr_of(l) % shared_.size());
          set_lane(inst.rd, l, load_shared_u32(shared_, byte_addr));
        }
      }
      break;
    case Opcode::kSts:
      used_shared_ = true;
      if (inst.ra != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          const auto byte_addr =
              static_cast<std::uint32_t>(addr_of(l) % shared_.size());
          store_shared_u32(shared_, byte_addr,
                           static_cast<std::uint32_t>(lane(inst.rb, l)));
        }
      }
      break;
    case Opcode::kAtomSharedAdd:
      used_shared_ = true;
      for (int l = 0; l < kLanes; ++l) {
        const auto byte_addr =
            static_cast<std::uint32_t>(addr_of(l) % shared_.size());
        const std::uint32_t old = load_shared_u32(shared_, byte_addr);
        store_shared_u32(shared_, byte_addr,
                         old + static_cast<std::uint32_t>(lane(inst.rb, l)));
        if (inst.rd != isa::kRegNone) set_lane(inst.rd, l, old);
      }
      break;
  }

  ++issued_per_warp_[static_cast<std::size_t>(warp_id)];
  ++instructions_;

  if (inst.op == Opcode::kExit) {
    w.done = true;
    --live_;
    retire_order_.push_back(warp_id);
    return;
  }
  if (inst.op == Opcode::kBarSync) w.at_barrier = true;
  ++w.pc;
  if (w.pc >= program_.size()) {
    w.pc = 0;
    ++w.iteration;
    if (w.iteration >= program_.iterations()) {
      w.done = true;
      --live_;
      retire_order_.push_back(warp_id);
    }
  }
}

void FuncExec::release_barriers() {
  const int total = total_warps();
  for (int b = 0; b * warps_per_block_ < total; ++b) {
    int alive = 0, waiting = 0;
    for (int i = 0; i < warps_per_block_; ++i) {
      const auto& w = warps_[static_cast<std::size_t>(b * warps_per_block_ + i)];
      if (!w.done) ++alive;
      if (w.at_barrier) ++waiting;
    }
    if (alive > 0 && waiting == alive) {
      for (int i = 0; i < warps_per_block_; ++i) {
        warps_[static_cast<std::size_t>(b * warps_per_block_ + i)].at_barrier =
            false;
      }
    }
  }
}

bool FuncExec::step_round() {
  if (live_ == 0) return false;
  release_barriers();
  bool progress = false;
  const int total = total_warps();
  for (int i = 0; i < total; ++i) {
    const auto& w = warps_[static_cast<std::size_t>(i)];
    if (w.done || w.at_barrier) continue;
    step(i);
    progress = true;
  }
  // Uniform control flow (every warp runs the same straight-line body)
  // cannot deadlock at a barrier; anything else is an interpreter bug.
  HSIM_ASSERT(progress || live_ == 0);
  return live_ > 0;
}

void FuncExec::run_to_completion() {
  while (step_round()) {
  }
}

void FuncExec::run_to_iteration(std::uint32_t iteration) {
  const auto behind = [&] {
    for (const auto& w : warps_) {
      if (!w.done && w.iteration < iteration) return true;
    }
    return false;
  };
  while (behind() && step_round()) {
  }
  // One more release so warps parked on an end-of-iteration barrier hand
  // over as releasable state rather than a stuck-looking one.
  release_barriers();
}

void FuncExec::run_to_instructions(std::uint64_t count) {
  while (instructions_ < count && step_round()) {
  }
}

sm::ArchState FuncExec::export_arch() const {
  sm::ArchState arch;
  arch.num_regs = num_regs_;
  arch.warps.reserve(warps_.size());
  for (const auto& w : warps_) {
    arch.warps.push_back(
        {static_cast<std::uint64_t>(w.pc), w.iteration, w.done, w.at_barrier});
  }
  arch.lanes.reserve(warps_.size() *
                     static_cast<std::size_t>(num_regs_) * kLanes);
  for (const auto& regs : regs_) {
    arch.lanes.insert(arch.lanes.end(), regs.begin(), regs.end());
  }
  if (used_shared_) arch.shared = shared_;
  return arch;
}

void FuncExec::import_arch(const sm::ArchState& arch) {
  HSIM_ASSERT(arch.num_regs == num_regs_);
  HSIM_ASSERT(arch.warps.size() == warps_.size());
  const auto stride = static_cast<std::size_t>(num_regs_) * kLanes;
  HSIM_ASSERT(arch.lanes.size() == warps_.size() * stride);
  live_ = 0;
  for (std::size_t i = 0; i < warps_.size(); ++i) {
    auto& w = warps_[i];
    const auto& a = arch.warps[i];
    // A warp may retire inside a detailed segment; adopt the retirement in
    // warp-id order (the detailed core's retire order is not part of the
    // handoff, and no cross-mode consumer depends on it).  A live warp in
    // the handoff that we already retired would be a resurrection — bug.
    HSIM_ASSERT_MSG(!w.done || a.done,
                    "warp %zu resurrected across the mode boundary", i);
    if (a.done && !w.done) {
      w.done = true;
      retire_order_.push_back(static_cast<int>(i));
    }
    w.pc = static_cast<std::size_t>(a.pc);
    w.iteration = a.iteration;
    w.at_barrier = a.at_barrier;
    if (!w.done) ++live_;
    std::copy(arch.lanes.begin() + static_cast<std::ptrdiff_t>(i * stride),
              arch.lanes.begin() + static_cast<std::ptrdiff_t>((i + 1) * stride),
              regs_[i].begin());
  }
  if (!arch.shared.empty()) {
    HSIM_ASSERT(arch.shared.size() == shared_.size());
    shared_ = arch.shared;
    used_shared_ = true;
  }
}

std::vector<WarmLine> FuncExec::touched_lines() const {
  std::vector<WarmLine> lines;
  lines.reserve(ca_lines_.size() + cg_lines_.size());
  for (const auto base : ca_lines_) lines.push_back({base, true});
  for (const auto base : cg_lines_) lines.push_back({base, false});
  return lines;
}

void FuncExec::clear_touched() {
  ca_lines_.clear();
  cg_lines_.clear();
}

RefResult FuncExec::result() const {
  RefResult out;
  out.num_regs = num_regs_;
  out.regs = regs_;
  out.shared = shared_;
  out.used_shared = used_shared_;
  out.issued_per_warp = issued_per_warp_;
  out.retire_order = retire_order_;
  out.instructions = instructions_;
  out.clock_tainted = clock_tainted_;
  return out;
}

}  // namespace hsim::conformance
