// Table IX: sparse wgmma on H800 tensor cores.  The headline asymmetry:
// "SS" mode streams A at its *dense* footprint (pruning happens inside the
// unit), so sparse-SS cannot reach the peak that sparse-RS does.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/tcbench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  using num::DType;
  const auto opt = bench::parse_options(argc, argv);
  const auto& h800 = arch::h800_pcie();

  struct Row {
    DType ab;
    DType cd;
    int k;  // sparse instruction modifier k (twice the dense unit)
  };
  const Row rows[] = {
      {DType::kFp16, DType::kFp16, 32}, {DType::kFp16, DType::kFp32, 32},
      {DType::kTf32, DType::kFp32, 16}, {DType::kFp8E4M3, DType::kFp16, 64},
      {DType::kFp8E4M3, DType::kFp32, 64}, {DType::kInt8, DType::kInt32, 64},
  };

  Table table("Table IX: sparse wgmma sp.m64n256kX on H800 (LAT/TFLOPS)");
  table.set_header({"A/B", "C/D", "Instruction", "SS,Zero", "RS,Zero",
                    "SS,Rand", "RS,Rand"});
  for (const auto& row : rows) {
    isa::TcInstr ss{.path = isa::TcPath::kWgmma, .shape = {64, 256, row.k},
                    .ab = row.ab, .cd = row.cd, .sparse = true,
                    .a_src = isa::OperandSource::kSharedMemory};
    isa::TcInstr rs = ss;
    rs.a_src = isa::OperandSource::kRegister;
    const auto ss_result = core::bench_tc(ss, h800);
    const auto rs_result = core::bench_tc(rs, h800);
    if (!ss_result || !rs_result) continue;
    table.add_row({std::string(num::to_string(row.ab)),
                   std::string(num::to_string(row.cd)),
                   "sp.m64n256k" + std::to_string(row.k),
                   fmt_lat_tput(ss_result.value().latency_cycles,
                                ss_result.value().tflops_zero),
                   fmt_lat_tput(rs_result.value().latency_cycles,
                                rs_result.value().tflops_zero),
                   fmt_fixed(ss_result.value().tflops_rand, 1),
                   fmt_fixed(rs_result.value().tflops_rand, 1)});
  }
  bench::emit(table, opt);
  return 0;
}
