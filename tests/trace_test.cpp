#include "trace/sinks.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "mem/memory_system.hpp"
#include "sim/sweep.hpp"
#include "sm/sm_core.hpp"
#include "trace/kernels.hpp"

namespace hsim::trace {
namespace {

struct TracedRun {
  sm::RunResult result;
  AggregatingSink agg;
};

TracedRun run_traced(const arch::DeviceSpec& device, std::string_view kernel,
                     std::uint32_t iterations, TraceSink* extra = nullptr) {
  auto spec = make_trace_kernel(kernel, iterations);
  EXPECT_TRUE(spec.has_value()) << kernel;
  TracedRun out;
  TeeSink tee;
  tee.add(&out.agg);
  tee.add(extra);
  std::unique_ptr<mem::MemorySystem> memsys;
  if (spec.value().needs_mem) {
    memsys = std::make_unique<mem::MemorySystem>(device, 1);
    memsys->set_trace(&tee);
  }
  sm::SmCore core(device, memsys.get());
  core.set_trace(&tee);
  out.result = core.run(spec.value().program,
                        {.threads_per_block = spec.value().threads_per_block,
                         .blocks = spec.value().blocks});
  return out;
}

TEST(TraceKernels, RegistryBuildsEveryKernel) {
  const auto names = trace_kernel_names();
  ASSERT_FALSE(names.empty());
  for (const auto name : names) {
    const auto spec = make_trace_kernel(name, 4);
    ASSERT_TRUE(spec.has_value()) << name;
    EXPECT_FALSE(spec.value().program.empty()) << name;
    EXPECT_FALSE(trace_kernel_description(name).empty()) << name;
  }
  EXPECT_FALSE(make_trace_kernel("no_such_kernel", 4).has_value());
}

// Acceptance bar from the tracer's design: on a dependent-mma kernel, at
// least 90% of the non-issue scheduler cycles carry a named stall reason.
TEST(TraceAttribution, DependentMmaCoversNonIssueCycles) {
  const auto run = run_traced(arch::h800_pcie(), "mma", 512);
  ASSERT_GT(run.result.stall_cycles, 0u);
  // Every scheduler-slot stall the core counted shows up as a stall event.
  EXPECT_DOUBLE_EQ(run.agg.stall_cycles(),
                   static_cast<double>(run.result.stall_cycles));
  EXPECT_GE(run.agg.attributed_stall_cycles(),
            0.9 * static_cast<double>(run.result.stall_cycles));
  // The dominant bucket is the tensor-core RAW dependency.
  double raw_cycles = 0;
  for (const auto& [key, bucket] : run.agg.stalls()) {
    if (key.first == StallReason::kScoreboardRaw) raw_cycles += bucket.cycles;
  }
  EXPECT_GE(raw_cycles, 0.9 * run.agg.stall_cycles());
}

TEST(TraceAttribution, KernelsLandInTheirIntendedBucket) {
  const struct {
    const char* kernel;
    StallReason reason;
  } cases[] = {
      {"ffma_dep", StallReason::kScoreboardRaw},
      {"mem_l2", StallReason::kMemL2},
      {"mem_global", StallReason::kMemDram},
      {"smem_conflict", StallReason::kSmemBankConflict},
      {"barrier", StallReason::kBarrier},
      {"dsm", StallReason::kDsmHop},
      {"tma", StallReason::kTmaWait},
  };
  for (const auto& c : cases) {
    const auto run = run_traced(arch::h800_pcie(), c.kernel, 64);
    double intended = 0;
    for (const auto& [key, bucket] : run.agg.stalls()) {
      if (key.first == c.reason) intended += bucket.cycles;
    }
    EXPECT_GT(intended, 0.5 * run.agg.stall_cycles())
        << c.kernel << " did not stall mostly on " << to_string(c.reason);
  }
}

TEST(AggregatingSink, MergeSumsBuckets) {
  AggregatingSink a, b;
  a.on_event({EventKind::kStall, StallReason::kBarrier, 0, 3.0, 0, 0, -1, "X"});
  a.on_event({EventKind::kIssue, StallReason::kNone, 0, 4.0, 0, 0, 0, "OP"});
  b.on_event({EventKind::kStall, StallReason::kBarrier, 5, 2.0, 0, 1, -1, "X"});
  b.on_event({EventKind::kStall, StallReason::kIdle, 7, 1.0, 0, -1, -1, "d"});
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.stall_cycles(), 6.0);
  EXPECT_DOUBLE_EQ(a.attributed_stall_cycles(), 5.0);  // idle is unattributed
  EXPECT_EQ(a.issues(), 1u);
  const auto it = a.stalls().find({StallReason::kBarrier, "X"});
  ASSERT_NE(it, a.stalls().end());
  EXPECT_DOUBLE_EQ(it->second.cycles, 5.0);
  EXPECT_EQ(it->second.events, 2u);
}

// The tentpole determinism guarantee: tracing the same kernels through the
// sweep engine yields bit-identical aggregated breakdowns at 1 and 8
// threads, because per-point sinks merge in point-index order.
TEST(TraceSweep, BreakdownBitIdenticalAcrossThreadCounts) {
  const char* kernels[] = {"mma",           "ffma_dep", "mem_l2",
                           "mem_global",    "barrier",  "smem_conflict",
                           "dsm",           "tma"};
  constexpr std::size_t kPoints = 8;

  const auto run_at = [&](std::size_t threads) {
    sim::CycleReport report;
    auto breakdowns = sim::sweep(
        kPoints,
        [&](sim::SweepContext& ctx) -> std::string {
          const auto run = run_traced(arch::h800_pcie(),
                                      kernels[ctx.index() % kPoints], 96);
          ctx.record(run.agg.to_cycle_sample(
              std::string(kernels[ctx.index() % kPoints]) + ".trace",
              run.result.cycles));
          std::ostringstream os;
          run.agg.write_summary(os, /*slot_cycles=*/0, /*top_n=*/32);
          return os.str();
        },
        {.threads = threads}, &report);
    std::ostringstream os;
    report.write_json(os);
    return std::make_pair(std::move(breakdowns), os.str());
  };

  const auto serial = run_at(1);
  const auto parallel = run_at(8);
  EXPECT_EQ(serial.second, parallel.second);  // merged CycleReport JSON
  ASSERT_EQ(serial.first.size(), parallel.first.size());
  for (std::size_t i = 0; i < serial.first.size(); ++i) {
    EXPECT_EQ(serial.first[i], parallel.first[i]) << "point " << i;
  }
}

TEST(ChromeTraceSink, RingDropsOldestAndWritesJson) {
  ChromeTraceSink small(4);
  for (int i = 0; i < 10; ++i) {
    small.on_event({EventKind::kIssue, StallReason::kNone,
                    static_cast<double>(i), 1.0, 0, 0, i, "OP"});
  }
  EXPECT_EQ(small.size(), 4u);
  EXPECT_EQ(small.dropped(), 6u);

  ChromeTraceSink chrome;
  const auto run = run_traced(arch::h800_pcie(), "mma", 32, &chrome);
  EXPECT_GT(chrome.size(), 0u);
  std::ostringstream os;
  chrome.write(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(out.find("HMMA.16816"), std::string::npos);
  EXPECT_NE(out.find("stall:scoreboard_raw"), std::string::npos);
  EXPECT_NE(out.find("thread_name"), std::string::npos);
}

}  // namespace
}  // namespace hsim::trace
