// Cache-hierarchy discovery via working-set sweeps — the classic
// microbenchmark lineage the paper builds on (Saavedra-Barrera; Mei & Chu,
// "Dissecting GPU memory hierarchy through microbenchmarking").
//
// Rather than *assuming* the device's cache sizes, these routines find them
// the way one would on real silicon: sweep a pointer-chase working set and
// watch the average latency step when the set spills out of a level.  On
// the simulator this closes the loop — the tag arrays really evict, so the
// discovered capacity must match the configured one (a test asserts it).
#pragma once

#include <vector>

#include "arch/device.hpp"
#include "common/status.hpp"
#include "mem/memory_system.hpp"

namespace hsim::core {

struct SweepPoint {
  std::uint64_t working_set = 0;  // bytes
  double avg_latency = 0;         // cycles
};

/// Latency vs working-set sweep through one cache level's allocation path
/// (`ca` exercises L1-then-L2, `cg` exercises L2-then-DRAM).
struct SweepConfig {
  std::uint64_t min_bytes = 4 << 10;
  std::uint64_t max_bytes = 1 << 20;
  double step_factor = 1.25;      // geometric sweep
  std::uint32_t stride = 128;     // one line per element: capacity, not
                                  // sector effects
  std::uint64_t chase_iterations = 8192;
  std::uint64_t seed = 99;
};

std::vector<SweepPoint> latency_sweep(const arch::DeviceSpec& device,
                                      mem::MemSpace space, SweepConfig config);

struct DiscoveredLevel {
  std::uint64_t capacity_bytes = 0;   // last set that still fit
  double hit_latency = 0;             // plateau before the step
  double miss_latency = 0;            // plateau after the step
};

/// Locate the capacity step in a sweep: the largest working set whose
/// latency is still within `tolerance` cycles of the base plateau.
Expected<DiscoveredLevel> find_capacity_step(const std::vector<SweepPoint>& sweep,
                                             double tolerance = 8.0);

/// Convenience: discover the L1 capacity of `device` by sweeping ca-chases
/// from well below to well above the configured size.
Expected<DiscoveredLevel> discover_l1(const arch::DeviceSpec& device);

/// Discover the L2 capacity (cg-chase sweep).  Slower: the sweep walks up
/// to 2x the L2 size.
Expected<DiscoveredLevel> discover_l2(const arch::DeviceSpec& device);

}  // namespace hsim::core
