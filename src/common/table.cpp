#include "common/table.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

#include "common/status.hpp"

namespace hsim {

void Table::set_header(std::vector<std::string> header, std::vector<Align> aligns) {
  HSIM_ASSERT(cells_.empty());
  header_ = std::move(header);
  if (aligns.empty()) {
    aligns_.assign(header_.size(), Align::kRight);
    if (!aligns_.empty()) aligns_.front() = Align::kLeft;
  } else {
    HSIM_ASSERT(aligns.size() == header_.size());
    aligns_ = std::move(aligns);
  }
}

void Table::add_row(std::vector<std::string> cells) {
  HSIM_ASSERT(cells.size() == header_.size());
  cells_.push_back(std::move(cells));
}

void Table::add_rule() { rules_.push_back(cells_.size()); }

void Table::render(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row_cells : cells_) {
    for (std::size_t c = 0; c < row_cells.size(); ++c) {
      widths[c] = std::max(widths[c], row_cells[c].size());
    }
  }

  const auto print_rule = [&] {
    os << '+';
    for (std::size_t w : widths) {
      for (std::size_t i = 0; i < w + 2; ++i) os << '-';
      os << '+';
    }
    os << '\n';
  };
  const auto print_row = [&](const std::vector<std::string>& row_cells) {
    os << '|';
    for (std::size_t c = 0; c < row_cells.size(); ++c) {
      const std::size_t pad = widths[c] - row_cells[c].size();
      os << ' ';
      if (aligns_[c] == Align::kRight) {
        for (std::size_t i = 0; i < pad; ++i) os << ' ';
        os << row_cells[c];
      } else {
        os << row_cells[c];
        for (std::size_t i = 0; i < pad; ++i) os << ' ';
      }
      os << " |";
    }
    os << '\n';
  };

  os << "== " << title_ << " ==\n";
  print_rule();
  print_row(header_);
  print_rule();
  for (std::size_t r = 0; r < cells_.size(); ++r) {
    if (std::find(rules_.begin(), rules_.end(), r) != rules_.end()) print_rule();
    print_row(cells_[r]);
  }
  print_rule();
}

void Table::render_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row_cells) {
    for (std::size_t c = 0; c < row_cells.size(); ++c) {
      if (c) os << ',';
      os << row_cells[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row_cells : cells_) emit(row_cells);
}

std::string fmt_fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string fmt_eng(double value) {
  const double mag = std::fabs(value);
  int decimals = 2;
  if (mag >= 1000.0) decimals = 0;
  else if (mag >= 100.0) decimals = 1;
  else if (mag >= 1.0) decimals = 2;
  else decimals = 4;
  return fmt_fixed(value, decimals);
}

std::string fmt_lat_tput(double latency_cycles, double tput, int lat_dec, int tput_dec) {
  return fmt_fixed(latency_cycles, lat_dec) + "/" + fmt_fixed(tput, tput_dec);
}

}  // namespace hsim
