// Shared plumbing for the paper-table bench binaries.
//
// Every binary prints its table(s) to stdout in the paper's layout; pass
// --csv to emit machine-readable CSV instead (for re-plotting figures).
// Sweep-engine binaries also honour:
//   --threads=N     fan sweep points over N threads (default: the process
//                   pool / HSIM_SWEEP_THREADS; output is bit-identical at
//                   any value);
//   --report=PATH   write the per-unit cycle-accounting JSON to PATH
//                   (default: <bench>_cycles.json next to the table);
//   --trace=PATH    also write a Chrome-trace view of the same counters;
//   --no-report     skip the report file.
// Benches with a grid-level component also honour --full-chip: simulate
// every SM against the shared L2 fabric (gpu::GpuEngine) instead of
// extrapolating one representative SM.
// Benches over sampleable kernels also honour --fast-forward: append a
// sampled-vs-exact validation table (ff::FastForwardEngine) for the
// bench's representative kernels — estimated cycles, exact cycles, error,
// and the detailed-simulation fraction.
#pragma once

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "arch/device.hpp"
#include "common/table.hpp"
#include "sim/sweep.hpp"

namespace hsim::bench {

struct Options {
  bool csv = false;
  bool quick = false;        // trim sweeps for CI
  bool report = true;        // cycle-accounting JSON next to the tables
  bool full_chip = false;    // grid points via gpu::GpuEngine (all SMs)
  bool fast_forward = false; // append the sampled-vs-exact validation table
  std::size_t threads = 0;   // 0 = pool default (HSIM_SWEEP_THREADS aware)
  std::string report_path;   // empty = derive from argv[0]
  std::string trace_path;    // empty = no Chrome trace
};

inline Options parse_options(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strcmp(arg, "--csv") == 0) opt.csv = true;
    if (std::strcmp(arg, "--quick") == 0) opt.quick = true;
    if (std::strcmp(arg, "--no-report") == 0) opt.report = false;
    if (std::strcmp(arg, "--full-chip") == 0) opt.full_chip = true;
    if (std::strcmp(arg, "--fast-forward") == 0) opt.fast_forward = true;
    if (std::strncmp(arg, "--threads=", 10) == 0) {
      const long parsed = std::strtol(arg + 10, nullptr, 10);
      if (parsed >= 1) opt.threads = static_cast<std::size_t>(parsed);
    }
    if (std::strncmp(arg, "--report=", 9) == 0) opt.report_path = arg + 9;
    if (std::strncmp(arg, "--trace=", 8) == 0) opt.trace_path = arg + 8;
  }
  return opt;
}

inline void emit(const Table& table, const Options& opt) {
  if (opt.csv) {
    table.render_csv(std::cout);
  } else {
    table.render(std::cout);
  }
  std::cout << '\n';
}

/// Sweep options honouring --threads (0 keeps the engine default).
inline sim::SweepOptions sweep_options(const Options& opt,
                                       std::uint64_t seed = 1) {
  sim::SweepOptions sweep;
  sweep.threads = opt.threads;
  sweep.seed = seed;
  return sweep;
}

/// Default report path: the bench binary's basename + "_cycles.json".
inline std::string default_report_path(const char* argv0) {
  std::string name = argv0 == nullptr ? "bench" : argv0;
  const auto slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name + "_cycles.json";
}

/// Write the cycle-accounting report (and optional Chrome trace) next to
/// the bench's table output; announces the path on stdout so runs are
/// self-describing.
inline void write_report(const sim::CycleReport& report, const Options& opt,
                         const char* argv0) {
  if (!opt.report || report.empty()) return;
  const std::string path =
      opt.report_path.empty() ? default_report_path(argv0) : opt.report_path;
  {
    std::ofstream out(path);
    if (!out) {
      std::cerr << "warning: could not write cycle report to " << path << '\n';
      return;
    }
    report.write_json(out);
  }
  std::cout << "[cycle report: " << path << " — " << report.samples()
            << " samples, " << report.units().size() << " units]\n";
  if (!opt.trace_path.empty()) {
    std::ofstream trace(opt.trace_path);
    if (trace) report.write_chrome_trace(trace);
  }
}

}  // namespace hsim::bench
