#include "te/transformer.hpp"

namespace hsim::te {

Expected<TransformerLayerConfig> paper_layer_config(std::int64_t hidden_size) {
  TransformerLayerConfig cfg;
  cfg.hidden_size = hidden_size;
  switch (hidden_size) {  // Table II
    case 1024: cfg.ffn_hidden_size = 2816; cfg.num_attention_heads = 8; break;
    case 2048: cfg.ffn_hidden_size = 5632; cfg.num_attention_heads = 16; break;
    case 4096: cfg.ffn_hidden_size = 11008; cfg.num_attention_heads = 32; break;
    case 5120: cfg.ffn_hidden_size = 13824; cfg.num_attention_heads = 40; break;
    case 8192: cfg.ffn_hidden_size = 22016; cfg.num_attention_heads = 64; break;
    default:
      return invalid_argument("hidden size not in the paper's Table II");
  }
  return cfg;
}

Expected<LayerProfile> transformer_layer_forward(const CostModel& model,
                                                 const TransformerLayerConfig& cfg,
                                                 num::DType dtype) {
  LayerProfile out;
  const std::int64_t tokens =
      static_cast<std::int64_t>(cfg.batch) * cfg.seq_len;  // GEMM m dimension
  const double h = static_cast<double>(cfg.hidden_size);
  const double tokens_d = static_cast<double>(tokens);
  const bool fp8 = num::is_fp8(dtype);

  // One projection GEMM (tokens x out_features) = (tokens x in) (in x out),
  // plus the FP8 conversion pipeline when applicable.
  const auto projection = [&](std::int64_t in, std::int64_t features)
      -> Expected<double> {
    double seconds = 0;
    if (fp8) {
      const double ind = static_cast<double>(in);
      const double outd = static_cast<double>(features);
      const double cast =
          model.elementwise_seconds(tokens_d * ind * 3.0) +      // input cast
          model.elementwise_seconds(tokens_d * outd * 2.0);      // rescale
      out.cast_seconds += cast;
      seconds += cast;
    }
    auto gemm = model.gemm_seconds(tokens, features, in, dtype);
    if (!gemm) return gemm.error();
    return seconds + gemm.value();
  };

  // --- Attention block ---
  // RMSNorm (read+write activations in the working precision).
  const double act_width = dtype == num::DType::kFp32 ? 4.0 : 2.0;
  const double norm = model.elementwise_seconds(tokens_d * h * 2.0 * act_width);
  out.norm_seconds += norm;
  out.seconds += norm;

  for (const std::int64_t features : {cfg.hidden_size, cfg.hidden_size,
                                      cfg.hidden_size}) {  // Q, K, V
    auto t = projection(cfg.hidden_size, features);
    if (!t) return t.error();
    out.attention_seconds += t.value();
    out.seconds += t.value();
  }

  // Flash attention: 2 GEMM-shaped passes of b*heads*(s x s x head_dim),
  // always executed in FP16 (TE does not quantise DotProductAttention).
  {
    const std::int64_t bh =
        static_cast<std::int64_t>(cfg.batch) * cfg.num_attention_heads;
    const std::int64_t head_dim = cfg.hidden_size / cfg.num_attention_heads;
    auto qk = model.gemm_seconds(static_cast<std::int64_t>(cfg.seq_len) * bh,
                                 cfg.seq_len, head_dim, num::DType::kFp16);
    if (!qk) return qk.error();
    auto pv = model.gemm_seconds(static_cast<std::int64_t>(cfg.seq_len) * bh,
                                 head_dim, cfg.seq_len, num::DType::kFp16);
    if (!pv) return pv.error();
    const double attn = qk.value() + pv.value();
    out.attention_seconds += attn;
    out.seconds += attn;
  }

  {  // output projection
    auto t = projection(cfg.hidden_size, cfg.hidden_size);
    if (!t) return t.error();
    out.attention_seconds += t.value();
    out.seconds += t.value();
  }

  // --- MLP block (SwiGLU: gate, up, down) ---
  const double norm2 = model.elementwise_seconds(tokens_d * h * 2.0 * act_width);
  out.norm_seconds += norm2;
  out.seconds += norm2;

  for (int i = 0; i < 2; ++i) {  // gate and up projections
    auto t = projection(cfg.hidden_size, cfg.ffn_hidden_size);
    if (!t) return t.error();
    out.mlp_seconds += t.value();
    out.seconds += t.value();
  }
  // SwiGLU elementwise multiply (never FP8).
  const double swiglu = model.elementwise_seconds(
      tokens_d * static_cast<double>(cfg.ffn_hidden_size) * 3.0 * act_width);
  out.mlp_seconds += swiglu;
  out.seconds += swiglu;
  {
    auto t = projection(cfg.ffn_hidden_size, cfg.hidden_size);
    if (!t) return t.error();
    out.mlp_seconds += t.value();
    out.seconds += t.value();
  }

  // Residual adds.
  out.seconds += 2.0 * model.elementwise_seconds(tokens_d * h * 3.0 * act_width);
  return out;
}

Expected<LayerProfile> layernorm_mlp_forward(const CostModel& model,
                                             const TransformerLayerConfig& cfg,
                                             num::DType dtype, bool fused) {
  LayerProfile out;
  const std::int64_t tokens =
      static_cast<std::int64_t>(cfg.batch) * cfg.seq_len;
  const double tokens_d = static_cast<double>(tokens);
  const double h = static_cast<double>(cfg.hidden_size);
  const double ffn = static_cast<double>(cfg.ffn_hidden_size);
  const bool fp8 = num::is_fp8(dtype);
  const double act_width = dtype == num::DType::kFp32 ? 4.0 : 2.0;

  // The norm itself: in the fused FP8 module the normalised activations are
  // written directly in FP8 (1 byte) instead of FP16.
  const double norm_out_width = (fp8 && fused) ? 1.0 : act_width;
  const double norm =
      model.elementwise_seconds(tokens_d * h * (act_width + norm_out_width));
  out.norm_seconds += norm;
  out.seconds += norm;

  const auto gemm = [&](std::int64_t in, std::int64_t features,
                        bool input_needs_cast) -> Expected<double> {
    double seconds = 0;
    if (fp8 && input_needs_cast) {
      const double cast = model.elementwise_seconds(
          tokens_d * static_cast<double>(in) * 3.0);
      out.cast_seconds += cast;
      seconds += cast;
    }
    auto t = model.gemm_seconds(tokens, features, in, dtype);
    if (!t) return t.error();
    return seconds + t.value();
  };

  // Gate and up projections consume the norm's output: fused -> already
  // FP8, no cast; unfused -> each projection quantises its input.
  for (int i = 0; i < 2; ++i) {
    auto t = gemm(cfg.hidden_size, cfg.ffn_hidden_size, /*cast=*/!fused);
    if (!t) return t.error();
    out.mlp_seconds += t.value();
    out.seconds += t.value();
  }
  // SwiGLU stays in FP16 either way, so the down projection always casts.
  const double swiglu = model.elementwise_seconds(tokens_d * ffn * 3.0 * act_width);
  out.mlp_seconds += swiglu;
  out.seconds += swiglu;
  auto down = gemm(cfg.ffn_hidden_size, cfg.hidden_size, /*cast=*/true);
  if (!down) return down.error();
  out.mlp_seconds += down.value();
  out.seconds += down.value();
  return out;
}

}  // namespace hsim::te
