#include "trace/kernels.hpp"

#include <array>

namespace hsim::trace {
namespace {

using isa::Opcode;
using isa::Program;

struct KernelEntry {
  std::string_view name;
  std::string_view description;
  TraceKernel (*make)(std::uint32_t iterations);
};

TraceKernel with(std::string_view name, std::string_view description,
                 Program program, std::uint32_t iterations,
                 int threads_per_block = 32, int blocks = 1,
                 bool needs_mem = false) {
  program.set_iterations(iterations);
  return TraceKernel{std::string(name), std::string(description),
                     std::move(program), threads_per_block, blocks, needs_mem};
}

// Dependent tensor-core chain: each HMMA accumulates into its own source, so
// every issue waits out the full mma latency on the scoreboard.
TraceKernel make_mma(std::uint32_t iterations) {
  return with("mma", "dependent HMMA.16816 chain (scoreboard_raw on SM.TC)",
              Program().hmma(1, 2, 3, 1), iterations);
}

TraceKernel make_ffma_dep(std::uint32_t iterations) {
  return with("ffma_dep", "dependent FFMA chain (scoreboard_raw on SM.FMA)",
              Program().add({.op = Opcode::kFFma, .rd = 1, .ra = 2, .rb = 3,
                             .rc = 1}),
              iterations);
}

TraceKernel make_ffma_tput(std::uint32_t iterations) {
  // Independent accumulators saturate the FP32 pipe: stalls are structural.
  Program p;
  for (int r = 1; r <= 8; ++r) {
    p.add({.op = Opcode::kFFma, .rd = r, .ra = 9, .rb = 10, .rc = r});
  }
  return with("ffma_tput", "independent FFMA streams (unit_busy on SM.FMA)",
              std::move(p), iterations);
}

TraceKernel make_mem_l1(std::uint32_t iterations) {
  // r1 = load(r1): the loaded word is 0, so the address folds to 0 and every
  // access after the first hits L1.
  return with("mem_l1", "dependent ld.global.ca chain on a hot line (mem_l1)",
              Program().ldg_ca(1, 1), iterations, 32, 1, /*needs_mem=*/true);
}

TraceKernel make_mem_l2(std::uint32_t iterations) {
  return with("mem_l2", "dependent ld.global.cg chain on a hot line (mem_l2)",
              Program().ldg_cg(1, 1), iterations, 32, 1, /*needs_mem=*/true);
}

TraceKernel make_mem_global(std::uint32_t iterations) {
  // The address strides 4 KiB past everything previously touched, through
  // the loaded value, so every iteration waits on a cold DRAM access (with a
  // TLB walk every 2 MiB page boundary).
  Program p;
  p.mov(3, 4096)
      .ldg_cg(2, 1)
      .iadd3(1, 1, 3, 2);  // r1 = r1 + 4096 + loaded(0)
  return with("mem_global", "striding dependent loads, always cold (mem_dram)",
              std::move(p), iterations, 32, 1, /*needs_mem=*/true);
}

TraceKernel make_smem_conflict(std::uint32_t iterations) {
  // r1 = tid * 128 puts all 32 lanes in bank 0 at distinct words: a 32-way
  // conflict every access; the dependent add then waits out the serialised
  // phases.
  Program p;
  p.add({.op = Opcode::kShf, .rd = 1, .ra = 0, .imm = 7})
      .lds(2, 1)
      .iadd3(3, 2, 2);
  return with("smem_conflict", "32-way bank-conflicted LDS (smem_bank_conflict)",
              std::move(p), iterations);
}

TraceKernel make_barrier(std::uint32_t iterations) {
  // Eight warps ping-pong through a barrier; fast warps park on it.
  Program p;
  p.iadd3(1, 1, 1).bar_sync();
  return with("barrier", "8-warp barrier ping-pong (barrier)", std::move(p),
              iterations, /*threads_per_block=*/256, /*blocks=*/1);
}

TraceKernel make_dsm(std::uint32_t iterations) {
  // Dependent remote shared-memory loads over the SM-to-SM network.
  Program p;
  p.add({.op = Opcode::kLdsRemote, .rd = 2, .ra = 1}).iadd3(1, 1, 2);
  return with("dsm", "dependent remote (cluster) shared loads (dsm_hop)",
              std::move(p), iterations);
}

TraceKernel make_tma(std::uint32_t iterations) {
  // TMA bulk copy + immediate wait: the next iteration stalls on the
  // outstanding async group.
  Program p;
  p.add({.op = Opcode::kTmaLoad, .imm = 16384})
      .add({.op = Opcode::kCpAsyncCommit})
      .add({.op = Opcode::kCpAsyncWait, .imm = 0});
  return with("tma", "TMA box copy + wait_group 0 (tma_async_wait)",
              std::move(p), iterations, 32, 1, /*needs_mem=*/true);
}

constexpr std::array<KernelEntry, 10> kKernels{{
    {"mma", "dependent HMMA.16816 chain (scoreboard_raw on SM.TC)", make_mma},
    {"ffma_dep", "dependent FFMA chain (scoreboard_raw on SM.FMA)",
     make_ffma_dep},
    {"ffma_tput", "independent FFMA streams (unit_busy on SM.FMA)",
     make_ffma_tput},
    {"mem_l1", "dependent ld.global.ca chain on a hot line (mem_l1)",
     make_mem_l1},
    {"mem_l2", "dependent ld.global.cg chain on a hot line (mem_l2)",
     make_mem_l2},
    {"mem_global", "striding dependent loads, always cold (mem_dram)",
     make_mem_global},
    {"smem_conflict", "32-way bank-conflicted LDS (smem_bank_conflict)",
     make_smem_conflict},
    {"barrier", "8-warp barrier ping-pong (barrier)", make_barrier},
    {"dsm", "dependent remote (cluster) shared loads (dsm_hop)", make_dsm},
    {"tma", "TMA box copy + wait_group 0 (tma_async_wait)", make_tma},
}};

}  // namespace

std::vector<std::string_view> trace_kernel_names() {
  std::vector<std::string_view> names;
  names.reserve(kKernels.size());
  for (const auto& k : kKernels) names.push_back(k.name);
  return names;
}

std::string_view trace_kernel_description(std::string_view name) {
  for (const auto& k : kKernels) {
    if (k.name == name) return k.description;
  }
  return {};
}

std::optional<TraceKernel> make_trace_kernel(std::string_view name,
                                             std::uint32_t iterations) {
  for (const auto& k : kKernels) {
    if (k.name == name) return k.make(iterations);
  }
  return std::nullopt;
}

}  // namespace hsim::trace
