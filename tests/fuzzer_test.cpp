// Seed stability and determinism of the conformance fuzzer and the RNG
// streams underneath it.  These values are part of the reproducer
// contract: a (seed, index) pair printed in a failure report must
// regenerate the same program on any build, forever — a drift here
// silently invalidates every filed reproducer.
#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "arch/device.hpp"
#include "common/rng.hpp"
#include "conformance/differ.hpp"
#include "conformance/fuzzer.hpp"
#include "isa/program.hpp"
#include "sim/sweep.hpp"

namespace hsim::conformance {
namespace {

// Pinned output of Xoshiro256ss(42): splitmix64 seeding then xoshiro256**
// steps, both bit-exact published algorithms.  If these move, the
// generator changed and every recorded (seed, index) reproducer is void.
TEST(SeedStability, XoshiroStreamIsPinned) {
  Xoshiro256ss rng(42);
  EXPECT_EQ(rng(), 0x15780b2e0c2ec716ULL);
  EXPECT_EQ(rng(), 0x6104d9866d113a7eULL);
  EXPECT_EQ(rng(), 0xae17533239e499a1ULL);
  EXPECT_EQ(rng(), 0xecb8ad4703b360a1ULL);
}

TEST(SeedStability, PointSeedDerivationIsPinned) {
  EXPECT_EQ(sim::derive_point_seed(1, 0), 0xe99ff867dbf682c9ULL);
  EXPECT_EQ(sim::derive_point_seed(1, 7), 0x491718de357e3da8ULL);
  // Distinct indices must get distinct streams.
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) {
    seeds.insert(sim::derive_point_seed(123, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(ProgramFuzzer, SameSeedSameProgram) {
  const ProgramFuzzer a;
  const ProgramFuzzer b;
  for (std::uint64_t index = 0; index < 50; ++index) {
    const auto x = a.generate(77, index);
    const auto y = b.generate(77, index);
    EXPECT_EQ(x.program.to_string(), y.program.to_string());
    EXPECT_EQ(x.shape.threads_per_block, y.shape.threads_per_block);
    EXPECT_EQ(x.shape.blocks, y.shape.blocks);
  }
}

TEST(ProgramFuzzer, DifferentSeedsAndIndicesDiverge) {
  const ProgramFuzzer fuzzer;
  std::set<std::string> texts;
  for (std::uint64_t index = 0; index < 20; ++index) {
    texts.insert(fuzzer.generate(1, index).program.to_string());
    texts.insert(fuzzer.generate(2, index).program.to_string());
  }
  // Collisions are astronomically unlikely; near-full diversity means the
  // (seed, index) pair really steers generation.
  EXPECT_GT(texts.size(), 35u);
}

TEST(ProgramFuzzer, ProgramsAreWellFormed) {
  const ProgramFuzzer fuzzer;
  for (std::uint64_t index = 0; index < 200; ++index) {
    const auto fuzz_case = fuzzer.generate(13, index);
    ASSERT_FALSE(fuzz_case.program.empty());
    EXPECT_GE(fuzz_case.program.iterations(), 1u);
    EXPECT_GE(fuzz_case.shape.threads_per_block, 32);
    EXPECT_GE(fuzz_case.shape.blocks, 1);
    for (const auto& inst : fuzz_case.program.body()) {
      for (const int r : {inst.rd, inst.ra, inst.rb, inst.rc}) {
        EXPECT_TRUE(r == isa::kRegNone || (r >= 0 && r < isa::kMaxRegs));
      }
      // The fuzzer must never emit CLOCK: it would taint register
      // comparison for the whole program.
      EXPECT_NE(inst.op, isa::Opcode::kClock);
    }
  }
}

TEST(ProgramFuzzer, RespectsOpMixKnobs) {
  FuzzOptions options;
  options.w_fp = 0;
  options.w_dpx = 0;
  options.w_tensor = 0;
  options.w_ldg = 0;
  options.w_smem = 0;
  options.w_ro_smem = 0;
  options.w_barrier = 0;
  options.w_timing_only = 0;
  const ProgramFuzzer fuzzer(options);
  for (std::uint64_t index = 0; index < 20; ++index) {
    const auto fuzz_case = fuzzer.generate(1, index);
    for (const auto& inst : fuzz_case.program.body()) {
      EXPECT_EQ(isa::unit_of(inst.op) == isa::UnitClass::kAlu ||
                    inst.op == isa::Opcode::kExit,
                true)
          << inst.to_string();
    }
  }
}

TEST(GlobalImage, PureFunctionOfSeed) {
  const auto a = make_global_image(9);
  const auto b = make_global_image(9);
  const auto c = make_global_image(10);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), kGlobalWords);
}

// The acceptance bar for campaign determinism: identical aggregate results
// (and identical failure identification) at any worker count.
TEST(Campaign, BitIdenticalAcrossThreadCounts) {
  const Differ differ(*arch::find_device("h800").value());
  CampaignOptions serial;
  serial.seed = 21;
  serial.count = 60;
  serial.threads = 1;
  serial.shrink = false;
  CampaignOptions parallel = serial;
  parallel.threads = 8;
  const auto a = differ.campaign(serial);
  const auto b = differ.campaign(parallel);
  EXPECT_EQ(a.cases, b.cases);
  EXPECT_EQ(a.failed, b.failed);
  EXPECT_EQ(a.instructions, b.instructions);
  EXPECT_EQ(a.pipeline_cycles, b.pipeline_cycles);
  EXPECT_EQ(a.first_failure.has_value(), b.first_failure.has_value());
}

}  // namespace
}  // namespace hsim::conformance
