#include "conformance/ref_interp.hpp"

#include "conformance/func_exec.hpp"

namespace hsim::conformance {

// The interpreter's execution engine lives in FuncExec so the fast-forward
// mode (src/ff) can pause it at instruction boundaries; running it to
// completion in one call is exactly the original RefInterp semantics.
RefResult RefInterp::run(const isa::Program& program,
                         const sm::BlockShape& shape) const {
  FuncExec exec(device_, program, shape, global_);
  exec.run_to_completion();
  return exec.result();
}

}  // namespace hsim::conformance
