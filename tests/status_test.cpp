#include "common/status.hpp"

#include <string>

#include <gtest/gtest.h>

namespace hsim {
namespace {

TEST(Expected, HoldsValue) {
  Expected<int> v(42);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value_or(0), 42);
}

TEST(Expected, HoldsError) {
  Expected<int> e(invalid_argument("bad input"));
  EXPECT_FALSE(e.has_value());
  EXPECT_FALSE(static_cast<bool>(e));
  EXPECT_EQ(e.error().code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(e.error().message, "bad input");
  EXPECT_EQ(e.value_or(-1), -1);
}

TEST(Expected, MoveOnlyValue) {
  Expected<std::unique_ptr<int>> v(std::make_unique<int>(7));
  ASSERT_TRUE(v.has_value());
  auto owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

TEST(Error, ToStringIncludesCodeAndMessage) {
  EXPECT_EQ(unsupported("no FP8").to_string(), "unsupported: no FP8");
  const Error bare{ErrorCode::kOutOfMemory, ""};
  EXPECT_EQ(bare.to_string(), "out_of_memory");
}

TEST(ErrorCode, Names) {
  EXPECT_EQ(to_string(ErrorCode::kOk), "ok");
  EXPECT_EQ(to_string(ErrorCode::kInternal), "internal");
  EXPECT_EQ(to_string(ErrorCode::kOutOfRange), "out_of_range");
}

TEST(ErrorFactories, Codes) {
  EXPECT_EQ(invalid_argument("x").code, ErrorCode::kInvalidArgument);
  EXPECT_EQ(unsupported("x").code, ErrorCode::kUnsupported);
  EXPECT_EQ(out_of_memory("x").code, ErrorCode::kOutOfMemory);
}

}  // namespace
}  // namespace hsim
