// Async-copy workload: program structure and the paper's occupancy story.
#include "async/tiled_gemm.hpp"

#include <gtest/gtest.h>

namespace hsim::async {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;

TEST(TiledGemm, ProgramShapes) {
  const GemmWorkload w{.block_dim = 16};
  const auto sync_prog = build_program(w, CopyVariant::kSyncShare);
  const auto async_prog = build_program(w, CopyVariant::kAsyncPipe);
  EXPECT_GT(sync_prog.size(), 100u);
  EXPECT_GE(async_prog.size(), sync_prog.size());  // prefetch bookkeeping

  // Sync uses blocking loads + stores; async uses cp.async groups.
  int ldg = 0, cpasync = 0, waits = 0, barriers_sync = 0, barriers_async = 0;
  for (const auto& inst : sync_prog.body()) {
    if (inst.op == isa::Opcode::kLdgCa) ++ldg;
    if (inst.op == isa::Opcode::kBarSync) ++barriers_sync;
  }
  for (const auto& inst : async_prog.body()) {
    if (inst.op == isa::Opcode::kCpAsync) ++cpasync;
    if (inst.op == isa::Opcode::kCpAsyncWait) ++waits;
    if (inst.op == isa::Opcode::kBarSync) ++barriers_async;
  }
  const int tiles = w.k / w.block_dim;
  EXPECT_EQ(ldg, 2 * tiles);
  EXPECT_EQ(cpasync, 2 * tiles);  // prologue + per-tile prefetch, minus tail
  EXPECT_EQ(waits, tiles);
  EXPECT_EQ(barriers_sync, 2 * tiles);
  EXPECT_EQ(barriers_async, 2 * tiles);
}

TEST(TiledGemm, SmemDoublingForPipeline) {
  const GemmWorkload w{.block_dim = 32};
  EXPECT_EQ(smem_bytes(w, CopyVariant::kSyncShare), 2u * 32 * 32 * 4);
  EXPECT_EQ(smem_bytes(w, CopyVariant::kAsyncPipe), 4u * 32 * 32 * 4);
}

TEST(TiledGemm, AsyncWinsAtLowOccupancy) {
  const GemmWorkload w{.block_dim = 8};
  const auto a = run_gemm(h800_pcie(), w, CopyVariant::kAsyncPipe, 1);
  const auto s = run_gemm(h800_pcie(), w, CopyVariant::kSyncShare, 1);
  ASSERT_TRUE(a && s);
  EXPECT_GT(a.value().gflops, 1.2 * s.value().gflops);
}

TEST(TiledGemm, AdvantageShrinksWithBlockSize) {
  const auto gain = [&](int bd) {
    const GemmWorkload w{.block_dim = bd};
    const auto a = run_gemm(h800_pcie(), w, CopyVariant::kAsyncPipe, 4);
    const auto s = run_gemm(h800_pcie(), w, CopyVariant::kSyncShare, 4);
    return a.value().gflops / s.value().gflops;
  };
  const double small = gain(8);
  const double large = gain(32);
  EXPECT_GT(small, large);
}

TEST(TiledGemm, ThroughputGrowsWithBlocksPerSm) {
  const GemmWorkload w{.block_dim = 8};
  const auto one = run_gemm(a100_pcie(), w, CopyVariant::kSyncShare, 1);
  const auto eight = run_gemm(a100_pcie(), w, CopyVariant::kSyncShare, 8);
  ASSERT_TRUE(one && eight);
  EXPECT_GT(eight.value().gflops, 3.0 * one.value().gflops);
}

TEST(TiledGemm, FlopAccountingMatchesShape) {
  const GemmWorkload w{.block_dim = 16};
  const auto r = run_gemm(h800_pcie(), w, CopyVariant::kSyncShare, 1);
  ASSERT_TRUE(r.has_value());
  const double flops = r.value().gflops * 1e9 * r.value().seconds;
  const double expected =
      2.0 * 2048.0 * 256.0 * h800_pcie().sm_count;  // 2*K*threads*blocks
  EXPECT_NEAR(flops, expected, expected * 1e-9);
}

TEST(TiledGemm, RejectsBadWorkload) {
  const GemmWorkload w{.block_dim = 24};  // 2048 % 24 != 0
  EXPECT_DEATH({ auto r = build_program(w, CopyVariant::kSyncShare); (void)r; },
               "");
}

}  // namespace
}  // namespace hsim::async
