// Composed memory hierarchy: cache-op semantics (ca vs cg), level
// latencies, port contention.
#include "mem/memory_system.hpp"

#include <gtest/gtest.h>

namespace hsim::mem {
namespace {

using arch::h800_pcie;

TEST(MemorySystem, ColdLoadComesFromDram) {
  MemorySystem mem(h800_pcie(), 1);
  const auto r = mem.load(0, 0, MemSpace::kGlobalCa, 0.0);
  EXPECT_EQ(r.served_by, MemLevel::kDram);
  EXPECT_GE(r.ready_time, h800_pcie().memory.dram_latency);
}

TEST(MemorySystem, CaAllocatesIntoL1) {
  MemorySystem mem(h800_pcie(), 1);
  mem.load(0, 64, MemSpace::kGlobalCa, 0.0);
  const auto r = mem.load(0, 64, MemSpace::kGlobalCa, 0.0);
  EXPECT_EQ(r.served_by, MemLevel::kL1);
  EXPECT_DOUBLE_EQ(r.ready_time, h800_pcie().memory.l1_hit_latency);
}

TEST(MemorySystem, CgBypassesL1) {
  MemorySystem mem(h800_pcie(), 1);
  mem.load(0, 64, MemSpace::kGlobalCg, 0.0);
  const auto again = mem.load(0, 64, MemSpace::kGlobalCg, 0.0);
  EXPECT_EQ(again.served_by, MemLevel::kL2);
  // And a ca load afterwards still misses L1 (cg did not allocate there).
  const auto ca = mem.load(0, 64, MemSpace::kGlobalCa, 0.0);
  EXPECT_EQ(ca.served_by, MemLevel::kL2);
  // ...but that ca load allocated it.
  EXPECT_EQ(mem.load(0, 64, MemSpace::kGlobalCa, 0.0).served_by, MemLevel::kL1);
}

TEST(MemorySystem, SharedLatencyConstant) {
  MemorySystem mem(h800_pcie(), 1);
  const auto r = mem.load(0, 12345, MemSpace::kShared, 100.0);
  EXPECT_EQ(r.served_by, MemLevel::kShared);
  EXPECT_DOUBLE_EQ(r.ready_time, 100.0 + h800_pcie().memory.smem_latency);
}

TEST(MemorySystem, TlbMissPenaltyOnFirstTouch) {
  MemorySystem mem(h800_pcie(), 1);
  const auto first = mem.load(0, 0, MemSpace::kGlobalCg, 0.0);
  EXPECT_TRUE(first.tlb_miss);
  EXPECT_GT(first.ready_time, h800_pcie().memory.dram_latency);
  const auto second = mem.load(0, 1024, MemSpace::kGlobalCg, 0.0);
  EXPECT_FALSE(second.tlb_miss);
}

TEST(MemorySystem, WarmPlacesRangeInLevel) {
  MemorySystem mem(h800_pcie(), 1);
  mem.warm(0, 4096, MemSpace::kGlobalCa);
  for (std::uint64_t a = 0; a < 4096; a += 256) {
    EXPECT_EQ(mem.load(0, a, MemSpace::kGlobalCa, 0.0).served_by, MemLevel::kL1);
  }
}

TEST(MemorySystem, PerSmL1sAreIndependent) {
  MemorySystem mem(h800_pcie(), 2);
  mem.warm(0, 1024, MemSpace::kGlobalCa, /*sm=*/0);
  EXPECT_EQ(mem.load(0, 0, MemSpace::kGlobalCa, 0.0).served_by, MemLevel::kL1);
  EXPECT_EQ(mem.load(1, 0, MemSpace::kGlobalCa, 0.0).served_by, MemLevel::kL2);
}

TEST(MemorySystem, WidthSelectionByAccessSize) {
  MemorySystem mem(h800_pcie(), 1);
  const auto& m = h800_pcie().memory;
  EXPECT_EQ(mem.l1_width(4), m.l1_bytes_per_clk_scalar);
  EXPECT_EQ(mem.l1_width(8), m.l1_bytes_per_clk_wide);
  EXPECT_EQ(mem.l1_width(16), m.l1_bytes_per_clk_vec);
  EXPECT_EQ(mem.l2_width(4), m.l2_bytes_per_clk_scalar);
  EXPECT_EQ(mem.l2_width(16), m.l2_bytes_per_clk_vec);
}

TEST(MemorySystem, WarpTransactionsQueueOnThePort) {
  MemorySystem mem(h800_pcie(), 1);
  mem.warm(0, 8192, MemSpace::kGlobalCa);
  const double t1 = mem.warp_transaction(0, 0, 128, 4, MemSpace::kGlobalCa, 0.0);
  const double t2 =
      mem.warp_transaction(0, 128, 128, 4, MemSpace::kGlobalCa, 0.0);
  EXPECT_GT(t2, t1);
  // Steady state: spacing equals duration = bytes / width.
  const double t3 =
      mem.warp_transaction(0, 256, 128, 4, MemSpace::kGlobalCa, 0.0);
  EXPECT_NEAR(t3 - t2, 128.0 / mem.l1_width(4), 1e-9);
}

TEST(MemorySystem, SharedTransactionsUseSmemWidth) {
  MemorySystem mem(h800_pcie(), 1);
  const double t1 = mem.warp_transaction(0, 0, 128, 4, MemSpace::kShared, 0.0);
  EXPECT_NEAR(t1, 1.0 + h800_pcie().memory.smem_latency, 1e-9);
}

TEST(MemorySystem, ResetTimingClearsPortsNotCaches) {
  MemorySystem mem(h800_pcie(), 1);
  mem.warm(0, 1024, MemSpace::kGlobalCa);
  mem.warp_transaction(0, 0, 128, 4, MemSpace::kGlobalCa, 0.0);
  mem.reset_timing();
  // Port cursor cleared...
  const double t = mem.warp_transaction(0, 0, 128, 4, MemSpace::kGlobalCa, 0.0);
  EXPECT_NEAR(t, 128.0 / mem.l1_width(4) + h800_pcie().memory.l1_hit_latency,
              1e-9);
  // ...but cache contents survive.
  EXPECT_EQ(mem.load(0, 0, MemSpace::kGlobalCa, 0.0).served_by, MemLevel::kL1);
}

TEST(MemorySystem, LevelNames) {
  EXPECT_EQ(to_string(MemLevel::kL1), "L1");
  EXPECT_EQ(to_string(MemLevel::kShared), "Shared");
  EXPECT_EQ(to_string(MemLevel::kDram), "Global");
}


// Regression: an access that straddles a sector boundary must classify and
// allocate its trailing sector too.  addr=120, bytes=16 spans sectors
// [96,128) and [128,160); the classification loop used to start at the
// unaligned address and step by the sector size, never reaching the second
// sector.
TEST(MemorySystem, WarmCoversStraddledTrailingSector) {
  MemorySystem mem(h800_pcie(), 1);
  mem.warm(120, 16, MemSpace::kGlobalCa);
  EXPECT_EQ(mem.load(0, 96, MemSpace::kGlobalCa, 0.0).served_by, MemLevel::kL1);
  EXPECT_EQ(mem.load(0, 128, MemSpace::kGlobalCa, 0.0).served_by,
            MemLevel::kL1);
}

TEST(MemorySystem, WarpTransactionAllocatesStraddledTrailingSector) {
  MemorySystem mem(h800_pcie(), 1);
  mem.warp_transaction(0, 120, 16, 16, MemSpace::kGlobalCa, 0.0);
  // Both sectors the access touched are now resident in L1.
  EXPECT_EQ(mem.load(0, 120, MemSpace::kGlobalCa, 0.0).served_by,
            MemLevel::kL1);
  EXPECT_EQ(mem.load(0, 128, MemSpace::kGlobalCa, 0.0).served_by,
            MemLevel::kL1);
}

TEST(MemorySystem, StraddlingTransactionPaysForColdTrailingSector) {
  // Leading sector warm in L1+L2, trailing sector cold: the straddling
  // access must be slower than the same access with both sectors warm,
  // because the trailing sector is fetched from DRAM.
  MemorySystem cold_tail(h800_pcie(), 1);
  cold_tail.warm(96, 32, MemSpace::kGlobalCa);
  MemorySystem all_warm(h800_pcie(), 1);
  all_warm.warm(96, 64, MemSpace::kGlobalCa);
  const double t_cold =
      cold_tail.warp_transaction(0, 120, 16, 16, MemSpace::kGlobalCa, 0.0);
  const double t_warm =
      all_warm.warp_transaction(0, 120, 16, 16, MemSpace::kGlobalCa, 0.0);
  EXPECT_GT(t_cold, t_warm);
}

}  // namespace
}  // namespace hsim::mem
