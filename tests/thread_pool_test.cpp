#include "common/thread_pool.hpp"

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

namespace hsim {
namespace {

TEST(ThreadPool, RunsSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.submit([&counter] { ++counter; }));
  }
  for (auto& future : futures) future.get();
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, ParallelForCoversRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](std::size_t i) { ++hits[i]; });
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool ran = false;
  pool.parallel_for(5, 5, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, ExceptionsPropagate) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.parallel_for(0, 10,
                        [](std::size_t i) {
                          if (i == 3) throw std::runtime_error("boom");
                        }),
      std::runtime_error);
}

TEST(ThreadPool, SubmitExceptionInFuture) {
  ThreadPool pool(1);
  auto future = pool.submit([] { throw std::logic_error("bad"); });
  EXPECT_THROW(future.get(), std::logic_error);
}

TEST(ThreadPool, SizeDefaultsToHardware) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPool, GlobalPoolSingleton) {
  EXPECT_EQ(&global_pool(), &global_pool());
}

}  // namespace
}  // namespace hsim
