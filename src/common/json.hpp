// Minimal JSON string escaping shared by every writer that emits
// user-influenced strings (unit names, kernel labels, trace event names).
// Escapes the two structurally dangerous characters (quote, backslash) and
// control characters; everything else passes through byte-for-byte.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace hsim {

/// Stream `text` into `os` as the *contents* of a JSON string literal
/// (the caller writes the surrounding quotes).
inline void write_json_escaped(std::ostream& os, std::string_view text) {
  for (const char c : text) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\b': os << "\\b"; break;
      case '\f': os << "\\f"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          os << buffer;
        } else {
          os << c;
        }
    }
  }
}

/// Convenience: the escaped contents as a string.
inline std::string json_escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace hsim
