#include "serve/protocol.hpp"

#include "common/json_writer.hpp"

namespace hsim::serve {

Expected<Request> parse_request(std::string_view line) {
  if (line.size() > kMaxRequestBytes) {
    return resource_exhausted(
        "request of " + std::to_string(line.size()) +
        " bytes exceeds the " + std::to_string(kMaxRequestBytes) +
        "-byte limit");
  }
  auto parsed = json::parse(line);
  if (!parsed) return parsed.error();
  const json::Value& root = parsed.value();
  if (!root.is_object()) {
    return invalid_argument("request must be a JSON object");
  }

  Request request;
  bool saw_id = false;
  for (const auto& [key, value] : root.as_object()) {
    if (key == "id") {
      if (!value.is_unsigned()) {
        return invalid_argument("\"id\" must be an unsigned integer");
      }
      request.id = value.as_u64();
      saw_id = true;
    } else if (key == "verb") {
      if (!value.is_string()) {
        return invalid_argument("\"verb\" must be a string");
      }
      request.verb = value.as_string();
    } else if (key == "params") {
      if (!value.is_object()) {
        return invalid_argument("\"params\" must be an object");
      }
      request.params = value.as_object();
    } else {
      return invalid_argument("unknown request key: \"" + key + "\"");
    }
  }
  if (!saw_id) return invalid_argument("request is missing \"id\"");
  if (request.verb.empty()) {
    return invalid_argument("request is missing \"verb\"");
  }
  return request;
}

std::optional<std::uint64_t> recover_request_id(std::string_view line) {
  if (line.size() > kMaxRequestBytes) return std::nullopt;
  const auto parsed = json::parse(line);
  if (!parsed) return std::nullopt;
  const json::Value* id = parsed.value().find("id");
  if (id == nullptr || !id->is_unsigned()) return std::nullopt;
  return id->as_u64();
}

std::string make_ok_reply(std::uint64_t id, std::string_view result_payload) {
  std::string out = "{\"id\":";
  out += std::to_string(id);
  out += ",\"ok\":true,\"result\":";
  out += result_payload;
  out += '}';
  return out;
}

std::string make_error_reply(std::optional<std::uint64_t> id,
                             const Error& error) {
  std::string out = "{\"id\":";
  out += id.has_value() ? std::to_string(*id) : std::string("null");
  out += ",\"ok\":false,\"error\":{\"code\":\"";
  out += to_string(error.code);
  out += "\",\"message\":\"";
  out += json_escaped(error.message);
  out += "\"}}";
  return out;
}

}  // namespace hsim::serve
