// Fig 9: DSM histogram throughput (elements/s) across cluster size, block
// size and bin count.  Partitioning bins across the cluster relieves the
// shared-memory occupancy cliff at large Nbins.
#include <iostream>

#include "bench/bench_util.hpp"
#include "dsm/histogram.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);
  const auto& h800 = arch::h800_pcie();
  const std::int64_t elements = opt.quick ? (1 << 18) : (1 << 21);

  for (const int block : {128, 512}) {
    Table table("Fig 9: DSM histogram throughput (Gelem/s), block size " +
                std::to_string(block));
    table.set_header({"Nbins", "CS=1", "CS=2", "CS=4", "CS=8",
                      "blocks/SM @CS=1"});
    for (const int nbins : {512, 1024, 2048, 4096}) {
      std::vector<std::string> cells{std::to_string(nbins)};
      int blocks_cs1 = 0;
      for (const int cs : {1, 2, 4, 8}) {
        const dsm::HistogramConfig cfg{.cluster_size = cs,
                                       .block_threads = block,
                                       .nbins = nbins,
                                       .elements = elements};
        const auto r = dsm::run_histogram(h800, cfg);
        if (!r) {
          cells.push_back("err");
          continue;
        }
        if (cs == 1) blocks_cs1 = r.value().active_blocks_per_sm;
        cells.push_back(fmt_fixed(r.value().elements_per_second / 1e9, 1));
      }
      cells.push_back(std::to_string(blocks_cs1));
      table.add_row(std::move(cells));
    }
    bench::emit(table, opt);
  }

  std::cout << "Paper findings: CS=1 collapses from Nbins 1024 -> 2048 as "
               "per-warp sub-histograms exhaust shared memory; clustering "
               "restores block concurrency; past the optimum, fabric "
               "contention degrades throughput.\n";
  return 0;
}
