// SM-level distributed-shared-memory opcodes: remote accesses cost the
// fabric latency on Hopper and fall back to the L2 path elsewhere.
#include <gtest/gtest.h>

#include "isa/assembler.hpp"
#include "sm/sm_core.hpp"

namespace hsim::sm {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;

isa::Program remote_chain(std::uint32_t iterations) {
  isa::Program p;
  p.add({.op = isa::Opcode::kLdsRemote, .rd = 1, .ra = 1});
  p.set_iterations(iterations);
  return p;
}

TEST(SmDsmOps, RemoteLoadChainCostsFabricLatency) {
  SmCore core(h800_pcie(), nullptr);
  const auto run = core.run(remote_chain(256), {.threads_per_block = 32, .blocks = 1});
  const double per_access = run.cycles / 256.0;
  // 180-cycle fabric + the 128-byte port occupancy (8 cycles at 16 B/clk).
  EXPECT_NEAR(per_access, h800_pcie().dsm.latency_cycles + 8.0, 2.0);
}

TEST(SmDsmOps, RemoteFasterThanL2OnHopper) {
  SmCore remote(h800_pcie(), nullptr);
  const double remote_cycles =
      remote.run(remote_chain(128), {.threads_per_block = 32, .blocks = 1}).cycles;
  EXPECT_LT(remote_cycles / 128.0, h800_pcie().memory.l2_hit_latency);
}

TEST(SmDsmOps, FallsBackToL2PathWithoutDsm) {
  SmCore core(a100_pcie(), nullptr);
  const auto run = core.run(remote_chain(128), {.threads_per_block = 32, .blocks = 1});
  EXPECT_NEAR(run.cycles / 128.0, a100_pcie().memory.l2_hit_latency, 3.0);
}

TEST(SmDsmOps, MapaIsCheapAddressArithmetic) {
  const auto program = isa::assemble(R"(
    MAPA R1, R2
    MAPA R1, R1
    MAPA R1, R1
    MAPA R1, R1
  )");
  ASSERT_TRUE(program.has_value());
  SmCore core(h800_pcie(), nullptr);
  const auto run = core.run(program.value(), {.threads_per_block = 32, .blocks = 1});
  // Four dependent ALU-class ops: ~5 cycles each, nothing like 180.
  EXPECT_LT(run.cycles, 30.0);
}

TEST(SmDsmOps, RemoteStoresShareThePort) {
  // Two independent remote stores per iteration: port serialisation makes
  // the pair cost ~2 port occupancies beyond one latency.
  isa::Program p;
  p.add({.op = isa::Opcode::kStsRemote, .ra = 2, .rb = 3});
  p.add({.op = isa::Opcode::kStsRemote, .ra = 4, .rb = 5});
  p.set_iterations(128);
  SmCore core(h800_pcie(), nullptr);
  const auto run = core.run(p, {.threads_per_block = 32, .blocks = 1});
  const double per_pair = run.cycles / 128.0;
  // Not latency-bound (stores don't chain): bounded by 2x port time.
  EXPECT_LT(per_pair, 40.0);
  EXPECT_GE(per_pair, 2.0 * 128.0 / h800_pcie().dsm.port_bytes_per_clk - 2.0);
}

TEST(SmDsmOps, RemoteAtomicTimingMatchesRemoteStore) {
  isa::Program atomics;
  atomics.add({.op = isa::Opcode::kAtomRemoteAdd, .rd = 1, .ra = 2, .rb = 3});
  atomics.set_iterations(64);
  SmCore core(h800_pcie(), nullptr);
  const auto run = core.run(atomics, {.threads_per_block = 32, .blocks = 1});
  EXPECT_GT(run.cycles / 64.0, h800_pcie().dsm.latency_cycles * 0.9);
}

}  // namespace
}  // namespace hsim::sm
