// Shared JSON-writing helpers: one escaping implementation and one number
// formatter for every writer in the tree (sweep reports, trace exports,
// golden snapshots, profile exports).  Escaping covers the two structurally
// dangerous characters (quote, backslash) and control characters; everything
// else passes through byte-for-byte.  Numbers are never localised.
#pragma once

#include <cstdio>
#include <ostream>
#include <string>
#include <string_view>

namespace hsim {

namespace detail {

/// Append the escape sequence for `c` to `sink` (any callable taking a
/// string_view).  Single source of truth for the escape table.
template <typename Sink>
void append_json_escape(Sink&& sink, char c) {
  switch (c) {
    case '"': sink("\\\""); return;
    case '\\': sink("\\\\"); return;
    case '\b': sink("\\b"); return;
    case '\f': sink("\\f"); return;
    case '\n': sink("\\n"); return;
    case '\r': sink("\\r"); return;
    case '\t': sink("\\t"); return;
    default:
      if (static_cast<unsigned char>(c) < 0x20) {
        char buffer[8];
        std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                      static_cast<unsigned>(static_cast<unsigned char>(c)));
        sink(std::string_view(buffer));
      } else {
        sink(std::string_view(&c, 1));
      }
  }
}

}  // namespace detail

/// Stream `text` into `os` as the *contents* of a JSON string literal
/// (the caller writes the surrounding quotes).
inline void write_json_escaped(std::ostream& os, std::string_view text) {
  for (const char c : text) {
    detail::append_json_escape([&os](std::string_view s) { os << s; }, c);
  }
}

/// Convenience: the escaped contents as a string.
inline std::string json_escaped(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    detail::append_json_escape([&out](std::string_view s) { out += s; }, c);
  }
  return out;
}

/// JSON-safe number formatting: never localised, compact for the magnitudes
/// the reports emit (cycles, occupancies, throughputs).
inline void write_json_number(std::ostream& os, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  os << buffer;
}

/// Round-trip-exact variant for values that are compared bit-for-bit across
/// runs (PMU counters): %.17g reproduces the double exactly.
inline void write_json_number_exact(std::ostream& os, double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  os << buffer;
}

/// Write a quoted, escaped JSON string literal including the quotes.
inline void write_json_string(std::ostream& os, std::string_view text) {
  os << '"';
  write_json_escaped(os, text);
  os << '"';
}

}  // namespace hsim
