// Fig 8: SM-to-SM (distributed shared memory) communication throughput via
// the ring-based copy scheme, plus the latency probe the paper quotes in
// the text (180 cycles, ~32% below L2).
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/pchase.hpp"
#include "dsm/rbc.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);
  const auto& h800 = arch::h800_pcie();

  // Latency probe.
  const auto dsm_lat = dsm::measure_dsm_latency(h800);
  const auto l2_lat = core::pchase(h800, mem::MemLevel::kL2);
  if (dsm_lat && l2_lat) {
    Table lat("SM-to-SM latency vs L2 (paper: 180 cycles, ~32% reduction)");
    lat.set_header({"Path", "cycles"});
    lat.add_row({"SM-to-SM network", fmt_fixed(dsm_lat.value(), 1)});
    lat.add_row({"L2 cache", fmt_fixed(l2_lat.value().avg_latency_cycles, 1)});
    lat.add_row({"reduction",
                 fmt_fixed(100.0 * (1.0 - dsm_lat.value() /
                                              l2_lat.value().avg_latency_cycles),
                           1) + "%"});
    bench::emit(lat, opt);
  }

  // Throughput: cluster size x block size x ILP.
  Table table("Fig 8: ring-based copy throughput (TB/s aggregate)");
  table.set_header({"Cluster", "ILP", "b=64", "b=128", "b=256", "b=512",
                    "b=1024"});
  for (const int cs : {2, 4, 8, 16}) {
    for (const int ilp : {1, 2, 4}) {
      std::vector<std::string> cells{std::to_string(cs), std::to_string(ilp)};
      for (const int threads : {64, 128, 256, 512, 1024}) {
        const dsm::RbcConfig cfg{.cluster_size = cs, .block_threads = threads,
                                 .ilp = ilp};
        const auto r = dsm::run_rbc(h800, cfg);
        cells.push_back(r ? fmt_fixed(r.value().total_tbps, 2) : "err");
      }
      table.add_row(std::move(cells));
    }
    table.add_rule();
  }
  bench::emit(table, opt);

  // Cross-device check: DSM requires Hopper.
  const auto on_a100 = dsm::run_rbc(arch::a100_pcie(), {});
  std::cout << "DSM on A100: " << (on_a100 ? "unexpected success"
                                           : on_a100.error().to_string())
            << "\n";
  std::cout << "Paper findings: peak ~3.27 TB/s at CS=2 falling to "
               "~2.65 TB/s at CS=4; larger clusters contend for the fabric.\n";
  return 0;
}
