// Fig 7: DPX throughput per SM and the launched-block sweep whose sawtooth
// (drops just past each multiple of the SM count) locates the DPX unit at
// SM level.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/dpxbench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  const arch::DeviceSpec* devices[] = {&arch::rtx4090(), &arch::a100_pcie(),
                                       &arch::h800_pcie()};

  Table table("Fig 7 (left): DPX throughput (Gcalls/s device-wide)");
  table.set_header({"Function", "RTX4090", "A100", "H800"});
  const dpx::Func funcs[] = {
      dpx::Func::kViAddMaxS32,      dpx::Func::kViAddMaxS32Relu,
      dpx::Func::kViMax3S32,        dpx::Func::kViMax3S32Relu,
      dpx::Func::kViBMaxS32,        dpx::Func::kViAddMaxS16x2,
      dpx::Func::kViAddMaxS16x2Relu, dpx::Func::kViMax3S16x2Relu,
  };
  for (const auto func : funcs) {
    std::vector<std::string> cells{std::string(dpx::name(func))};
    for (const auto* device : devices) {
      const auto r = core::dpx_throughput(*device, func);
      if (!r) {
        cells.push_back("err");
        continue;
      }
      cells.push_back(r.value().measurable ? fmt_fixed(r.value().gcalls_per_sec, 0)
                                           : "n/a");
    }
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);

  // Block sweep on H800: the wave-quantisation sawtooth.
  const auto& h800 = arch::h800_pcie();
  const int sms = h800.sm_count;
  Table sweep("Fig 7 (right): H800 __vimax3_s32 throughput vs launched blocks");
  sweep.set_header({"blocks", "Gcalls/s", "note"});
  const auto points = core::dpx_block_sweep(h800, dpx::Func::kViMax3S32,
                                            opt.quick ? sms + 8 : 2 * sms + 8);
  if (points) {
    for (const auto& point : points.value()) {
      std::string note;
      if (point.blocks == sms) note = "<- full wave (" + std::to_string(sms) + " SMs)";
      if (point.blocks == sms + 1) note = "<- throughput plummets";
      if (point.blocks == 2 * sms) note = "<- second full wave";
      // Print a decimated set plus the interesting neighbourhood.
      if (point.blocks % 16 == 0 || !note.empty() || point.blocks <= 4) {
        sweep.add_row({std::to_string(point.blocks),
                       fmt_fixed(point.gcalls_per_sec, 0), note});
      }
    }
  }
  bench::emit(sweep, opt);
  return 0;
}
