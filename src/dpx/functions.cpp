#include "dpx/functions.hpp"

#include <algorithm>

namespace hsim::dpx {
namespace {

std::int32_t s32(std::uint32_t v) { return static_cast<std::int32_t>(v); }
std::uint32_t u32(std::int32_t v) { return static_cast<std::uint32_t>(v); }

std::int32_t add_wrap(std::int32_t a, std::int32_t b) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                   static_cast<std::uint32_t>(b));
}

std::int16_t s16_add_wrap(std::int16_t a, std::int16_t b) {
  return static_cast<std::int16_t>(static_cast<std::uint16_t>(a) +
                                   static_cast<std::uint16_t>(b));
}

/// Run a per-half operation over the two int16 lanes of a 32-bit word.
template <typename F>
std::uint32_t per_half(std::uint32_t a, std::uint32_t b, std::uint32_t c, F&& f) {
  std::uint32_t out = 0;
  for (int h = 0; h < 2; ++h) {
    const auto ah = static_cast<std::int16_t>(a >> (16 * h));
    const auto bh = static_cast<std::int16_t>(b >> (16 * h));
    const auto ch = static_cast<std::int16_t>(c >> (16 * h));
    const auto r = static_cast<std::uint16_t>(f(ah, bh, ch));
    out |= static_cast<std::uint32_t>(r) << (16 * h);
  }
  return out;
}

std::int16_t relu16(std::int16_t v) { return std::max<std::int16_t>(v, 0); }

}  // namespace

std::string_view name(Func f) noexcept {
  switch (f) {
    case Func::kViAddMaxS32: return "__viaddmax_s32";
    case Func::kViAddMinS32: return "__viaddmin_s32";
    case Func::kViAddMaxS32Relu: return "__viaddmax_s32_relu";
    case Func::kViAddMinS32Relu: return "__viaddmin_s32_relu";
    case Func::kViMax3S32: return "__vimax3_s32";
    case Func::kViMin3S32: return "__vimin3_s32";
    case Func::kViMax3S32Relu: return "__vimax3_s32_relu";
    case Func::kViMin3S32Relu: return "__vimin3_s32_relu";
    case Func::kViMaxS32Relu: return "__vimax_s32_relu";
    case Func::kViMinS32Relu: return "__vimin_s32_relu";
    case Func::kViBMaxS32: return "__vibmax_s32";
    case Func::kViBMinS32: return "__vibmin_s32";
    case Func::kViAddMaxU32: return "__viaddmax_u32";
    case Func::kViAddMinU32: return "__viaddmin_u32";
    case Func::kViAddMaxS16x2: return "__viaddmax_s16x2";
    case Func::kViAddMinS16x2: return "__viaddmin_s16x2";
    case Func::kViAddMaxS16x2Relu: return "__viaddmax_s16x2_relu";
    case Func::kViAddMinS16x2Relu: return "__viaddmin_s16x2_relu";
    case Func::kViMax3S16x2: return "__vimax3_s16x2";
    case Func::kViMin3S16x2: return "__vimin3_s16x2";
    case Func::kViMax3S16x2Relu: return "__vimax3_s16x2_relu";
    case Func::kViMin3S16x2Relu: return "__vimin3_s16x2_relu";
    case Func::kViBMaxS16x2: return "__vibmax_s16x2";
    case Func::kViBMinS16x2: return "__vibmin_s16x2";
  }
  return "?";
}

bool is_16x2(Func f) noexcept {
  switch (f) {
    case Func::kViAddMaxS16x2:
    case Func::kViAddMinS16x2:
    case Func::kViAddMaxS16x2Relu:
    case Func::kViAddMinS16x2Relu:
    case Func::kViMax3S16x2:
    case Func::kViMin3S16x2:
    case Func::kViMax3S16x2Relu:
    case Func::kViMin3S16x2Relu:
    case Func::kViBMaxS16x2:
    case Func::kViBMinS16x2:
      return true;
    default:
      return false;
  }
}

bool has_relu(Func f) noexcept {
  switch (f) {
    case Func::kViAddMaxS32Relu:
    case Func::kViAddMinS32Relu:
    case Func::kViMax3S32Relu:
    case Func::kViMin3S32Relu:
    case Func::kViMaxS32Relu:
    case Func::kViMinS32Relu:
    case Func::kViAddMaxS16x2Relu:
    case Func::kViAddMinS16x2Relu:
    case Func::kViMax3S16x2Relu:
    case Func::kViMin3S16x2Relu:
      return true;
    default:
      return false;
  }
}

bool is_bounds(Func f) noexcept {
  switch (f) {
    case Func::kViBMaxS32:
    case Func::kViBMinS32:
    case Func::kViBMaxS16x2:
    case Func::kViBMinS16x2:
      return true;
    default:
      return false;
  }
}

std::uint32_t apply(Func f, std::uint32_t a, std::uint32_t b, std::uint32_t c,
                    bool* pred) noexcept {
  switch (f) {
    case Func::kViAddMaxS32: return u32(std::max(add_wrap(s32(a), s32(b)), s32(c)));
    case Func::kViAddMinS32: return u32(std::min(add_wrap(s32(a), s32(b)), s32(c)));
    case Func::kViAddMaxS32Relu:
      return u32(std::max({add_wrap(s32(a), s32(b)), s32(c), 0}));
    case Func::kViAddMinS32Relu:
      return u32(std::max(std::min(add_wrap(s32(a), s32(b)), s32(c)), 0));
    case Func::kViMax3S32: return u32(std::max({s32(a), s32(b), s32(c)}));
    case Func::kViMin3S32: return u32(std::min({s32(a), s32(b), s32(c)}));
    case Func::kViMax3S32Relu: return u32(std::max({s32(a), s32(b), s32(c), 0}));
    case Func::kViMin3S32Relu:
      return u32(std::max(std::min({s32(a), s32(b), s32(c)}), 0));
    case Func::kViMaxS32Relu: return u32(std::max({s32(a), s32(b), 0}));
    case Func::kViMinS32Relu: return u32(std::max(std::min(s32(a), s32(b)), 0));
    case Func::kViBMaxS32:
      if (pred) *pred = s32(a) >= s32(b);
      return u32(std::max(s32(a), s32(b)));
    case Func::kViBMinS32:
      if (pred) *pred = s32(a) <= s32(b);
      return u32(std::min(s32(a), s32(b)));
    case Func::kViAddMaxU32: return std::max(a + b, c);
    case Func::kViAddMinU32: return std::min(a + b, c);
    case Func::kViAddMaxS16x2:
      return per_half(a, b, c, [](std::int16_t x, std::int16_t y, std::int16_t z) {
        return std::max(s16_add_wrap(x, y), z);
      });
    case Func::kViAddMinS16x2:
      return per_half(a, b, c, [](std::int16_t x, std::int16_t y, std::int16_t z) {
        return std::min(s16_add_wrap(x, y), z);
      });
    case Func::kViAddMaxS16x2Relu:
      return per_half(a, b, c, [](std::int16_t x, std::int16_t y, std::int16_t z) {
        return relu16(std::max(s16_add_wrap(x, y), z));
      });
    case Func::kViAddMinS16x2Relu:
      return per_half(a, b, c, [](std::int16_t x, std::int16_t y, std::int16_t z) {
        return relu16(std::min(s16_add_wrap(x, y), z));
      });
    case Func::kViMax3S16x2:
      return per_half(a, b, c, [](std::int16_t x, std::int16_t y, std::int16_t z) {
        return std::max({x, y, z});
      });
    case Func::kViMin3S16x2:
      return per_half(a, b, c, [](std::int16_t x, std::int16_t y, std::int16_t z) {
        return std::min({x, y, z});
      });
    case Func::kViMax3S16x2Relu:
      return per_half(a, b, c, [](std::int16_t x, std::int16_t y, std::int16_t z) {
        return relu16(std::max({x, y, z}));
      });
    case Func::kViMin3S16x2Relu:
      return per_half(a, b, c, [](std::int16_t x, std::int16_t y, std::int16_t z) {
        return relu16(std::min({x, y, z}));
      });
    case Func::kViBMaxS16x2:
      if (pred) {
        *pred = static_cast<std::int16_t>(a & 0xFFFF) >=
                static_cast<std::int16_t>(b & 0xFFFF);
      }
      return per_half(a, b, 0, [](std::int16_t x, std::int16_t y, std::int16_t) {
        return std::max(x, y);
      });
    case Func::kViBMinS16x2:
      if (pred) {
        *pred = static_cast<std::int16_t>(a & 0xFFFF) <=
                static_cast<std::int16_t>(b & 0xFFFF);
      }
      return per_half(a, b, 0, [](std::int16_t x, std::int16_t y, std::int16_t) {
        return std::min(x, y);
      });
  }
  return 0;
}

Cost cost(Func f) noexcept {
  // hw_instrs: Hopper lowers each DPX call to at most two fused VIMNMX-class
  // instructions (an add feeding a fused min/max counts as IADD3 + VIMNMX).
  // emu_ops/emu_depth: what nvcc emits on Ampere/Ada (IADD3 + IMNMX chains;
  // the 16x2 forms need unpack / per-half ops / repack).
  if (is_16x2(f)) {
    Cost c{.hw_instrs = 1, .emu_ops = 10, .emu_depth = 10};
    if (has_relu(f)) {
      c.emu_ops = 13;
      c.emu_depth = 13;
    }
    if (is_bounds(f)) {
      c.emu_ops = 9;
      c.emu_depth = 9;
    }
    switch (f) {
      case Func::kViAddMaxS16x2:
      case Func::kViAddMinS16x2:
      case Func::kViAddMaxS16x2Relu:
      case Func::kViAddMinS16x2Relu:
        c.hw_instrs = 2;  // VIADD2 + VIMNMX2
        break;
      default:
        break;
    }
    return c;
  }
  switch (f) {
    case Func::kViAddMaxS32:
    case Func::kViAddMinS32:
    case Func::kViAddMaxU32:
    case Func::kViAddMinU32:
      return {.hw_instrs = 2, .emu_ops = 2, .emu_depth = 2};
    case Func::kViAddMaxS32Relu:
    case Func::kViAddMinS32Relu:
      return {.hw_instrs = 2, .emu_ops = 3, .emu_depth = 3};
    case Func::kViMax3S32:
    case Func::kViMin3S32:
      return {.hw_instrs = 1, .emu_ops = 2, .emu_depth = 2};
    case Func::kViMax3S32Relu:
    case Func::kViMin3S32Relu:
      return {.hw_instrs = 1, .emu_ops = 3, .emu_depth = 3};
    case Func::kViMaxS32Relu:
    case Func::kViMinS32Relu:
      return {.hw_instrs = 1, .emu_ops = 2, .emu_depth = 2};
    case Func::kViBMaxS32:
    case Func::kViBMinS32:
      return {.hw_instrs = 1, .emu_ops = 1, .emu_depth = 1};
    default:
      return {};
  }
}

void append(isa::Program& program, Func f, int rd, int ra, int rb, int rc,
            bool hardware, int scratch_base) {
  const Cost c = cost(f);
  const bool maximum = name(f).find("max") != std::string_view::npos;
  const std::int64_t mode = (maximum ? 1 : 0) | (has_relu(f) ? 2 : 0);
  if (hardware) {
    // Fused Hopper form: either a single VIMNMX (three-way min/max) or an
    // IADD3-free fused add+minmax modelled as one VIMNMX issue per
    // hardware instruction.
    for (int i = 0; i + 1 < c.hw_instrs; ++i) {
      program.add({.op = isa::Opcode::kVIMnMx, .rd = scratch_base,
                   .ra = ra, .rb = rb, .rc = rc, .imm = mode});
      ra = scratch_base;
    }
    program.add({.op = isa::Opcode::kVIMnMx, .rd = rd, .ra = ra, .rb = rb,
                 .rc = rc, .imm = mode});
    return;
  }
  // Emulation: a dependent IADD3/IMNMX chain of the measured depth.  The
  // first op combines a+b; the rest fold in c / relu / half-word fixups.
  int src = ra;
  for (int i = 0; i < c.emu_ops; ++i) {
    const bool last = i == c.emu_ops - 1;
    const int dst = last ? rd : scratch_base + (i % 4);
    if (i == 0 && c.emu_ops > 1) {
      program.add({.op = isa::Opcode::kIAdd3, .rd = dst, .ra = src, .rb = rb});
    } else {
      program.add({.op = isa::Opcode::kIMnMx, .rd = dst, .ra = src,
                   .rb = (i % 2 == 0 ? rb : rc), .imm = mode & 1});
    }
    src = dst;
  }
}

}  // namespace hsim::dpx
