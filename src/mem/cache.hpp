// Set-associative, sectored cache tag model.
//
// Nvidia L1/L2 caches use 128-byte lines split into four 32-byte sectors:
// a miss allocates the line's tag but fetches only the touched sector.  The
// model tracks tags, per-sector valid bits and LRU state; it is functional
// over addresses only (no data array — the simulator's workloads carry
// their own data), which keeps a 50 MiB L2 model at a few MiB of host RAM.
//
// Tag-path representation (the simulator's single hottest function after
// the SmCore issue loop):
//   * A way is one packed 16-byte entry {tag, sector_valid, lru}, so a
//     4-way set is exactly one 64-byte host cache line — a set probe
//     touches one line instead of striding three parallel arrays.
//   * Validity is folded into the tag: an empty way holds `kInvalidTag`,
//     which no reachable address can produce (tag < 2^64 / line_bytes),
//     so the search loop is a single 64-bit compare per way.
//   * Set index and tag use shift/mask when the set count and line size
//     are powers of two (every L1 geometry; sliced L2s fall back to the
//     bit-identical `%` / `/` path — same set, same tag, either way).
//   * A per-set MRU way predictor is probed before the linear way search;
//     it can only find the same entry the search would, so it changes
//     which instructions run, never what the model answers.
//   * LRU stamps are 32-bit (what makes the 16-byte entry possible); the
//     global stamp clock renormalises per-set ranks on the (never in
//     practice: 2^32 accesses) overflow, preserving the relative order
//     that victim selection is defined on.
// None of this changes semantics: victim choice, statistics and the
// save_state/load_state wire format are identical to the unpacked layout
// (tests/cache_test.cpp pins the corner cases).
#pragma once

#include <cstdint>
#include <vector>

#include "common/state_io.hpp"
#include "common/status.hpp"

namespace hsim::mem {

struct CacheConfig {
  std::uint64_t size_bytes = 128 * 1024;
  int line_bytes = 128;
  int sector_bytes = 32;
  int ways = 4;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t sector_misses = 0;  // tag present, sector not yet fetched
  std::uint64_t line_misses = 0;    // tag absent
  std::uint64_t evictions = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return hits + sector_misses + line_misses;
  }
  [[nodiscard]] double hit_rate() const noexcept {
    const auto n = accesses();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

enum class CacheOutcome : std::uint8_t { kHit, kSectorMiss, kLineMiss };

class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  /// Look up `addr`; on a miss, allocate (if `allocate`) the line/sector.
  /// Returns what the lookup found *before* any allocation.
  CacheOutcome access(std::uint64_t addr, bool allocate = true);

  /// Non-mutating probe: would `addr` hit right now?
  [[nodiscard]] CacheOutcome probe(std::uint64_t addr) const;

  /// Invalidate every line AND reset the LRU clock to its initial state,
  /// so two sweep points separated by a flush() observe bit-identical
  /// replacement behaviour (and identical save_state bytes).  Statistics
  /// are deliberately kept — they describe the whole run, not one window;
  /// use reset_stats() to start a fresh counting window.
  void flush();

  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }
  void reset_stats() noexcept { stats_ = {}; }

  [[nodiscard]] const CacheConfig& config() const noexcept { return config_; }
  [[nodiscard]] int num_sets() const noexcept { return num_sets_; }

  /// Snapshot tag/LRU/stat state.  Restore requires an identically
  /// configured cache (geometry is checked, not re-created).  The wire
  /// format predates the packed in-memory layout and is kept verbatim
  /// (per line: u64 tag, u32 sector_valid, u64 lru_stamp, bool valid), so
  /// snapshots interchange freely across the rework; a restored stamp
  /// stream that overflowed the packed 32-bit stamps (impossible to
  /// produce organically before ~4e9 accesses) is renormalised on load,
  /// preserving the per-set recency order victim choice is defined on.
  void save_state(common::StateWriter& w) const {
    w.marker(0x43414348u);  // "CACH"
    w.u64(ways_.size());
    for (const auto& way : ways_) {
      const bool valid = way.tag != kInvalidTag;
      w.u64(valid ? way.tag : 0);
      w.u32(way.sector_valid);
      w.u64(way.lru);
      w.boolean(valid);
    }
    w.u64(next_stamp_);
    w.u64(stats_.hits);
    w.u64(stats_.sector_misses);
    w.u64(stats_.line_misses);
    w.u64(stats_.evictions);
  }
  void load_state(common::StateReader& r) {
    r.expect_marker(0x43414348u);
    if (!r.expect(r.u64() == ways_.size())) return;
    bool overflow = false;
    for (auto& way : ways_) {
      const std::uint64_t tag = r.u64();
      way.sector_valid = r.u32();
      const std::uint64_t stamp = r.u64();
      way.lru = static_cast<std::uint32_t>(stamp);
      if (stamp > kMaxStamp) overflow = true;
      way.tag = r.boolean() ? tag : kInvalidTag;
    }
    next_stamp_ = r.u64();
    stats_.hits = r.u64();
    stats_.sector_misses = r.u64();
    stats_.line_misses = r.u64();
    stats_.evictions = r.u64();
    for (auto& m : mru_) m = 0;  // advisory only; any value is correct
    if (overflow || next_stamp_ > kMaxStamp) renormalise_lru();
  }

 private:
  /// Packed per-way entry: 16 bytes, so one 4-way set == one 64-byte host
  /// cache line.  `tag == kInvalidTag` means the way is empty.
  struct Way {
    std::uint64_t tag = kInvalidTag;
    std::uint32_t sector_valid = 0;  // bitmask, bit i = sector i present
    std::uint32_t lru = 0;
  };
  static_assert(sizeof(Way) == 16);

  static constexpr std::uint64_t kInvalidTag = ~0ull;
  static constexpr std::uint64_t kMaxStamp = 0xFFFFFFFFull;

  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const noexcept {
    return line_pow2_ ? addr >> line_shift_
                      : addr / static_cast<std::uint64_t>(config_.line_bytes);
  }
  [[nodiscard]] std::size_t set_of(std::uint64_t line) const noexcept {
    return static_cast<std::size_t>(
        sets_pow2_ ? line & set_mask_
                   : line % static_cast<std::uint64_t>(num_sets_));
  }
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t line) const noexcept {
    return sets_pow2_ ? line >> set_shift_
                      : line / static_cast<std::uint64_t>(num_sets_);
  }
  [[nodiscard]] std::uint32_t sector_bit_of(std::uint64_t addr) const noexcept {
    const std::uint64_t offset =
        line_pow2_ ? addr & line_mask_
                   : addr % static_cast<std::uint64_t>(config_.line_bytes);
    const std::uint64_t index =
        sector_pow2_ ? offset >> sector_shift_
                     : offset / static_cast<std::uint64_t>(config_.sector_bytes);
    return 1u << index;
  }

  /// Next LRU stamp; renormalises first on the (theoretical) u32 overflow.
  [[nodiscard]] std::uint32_t stamp() {
    if (next_stamp_ >= kMaxStamp) renormalise_lru();
    return static_cast<std::uint32_t>(next_stamp_++);
  }
  void renormalise_lru();

  CacheConfig config_;
  int num_sets_ = 0;
  int sectors_per_line_ = 0;
  bool sets_pow2_ = false;
  bool line_pow2_ = false;
  bool sector_pow2_ = false;
  int set_shift_ = 0;
  int line_shift_ = 0;
  int sector_shift_ = 0;
  std::uint64_t set_mask_ = 0;
  std::uint64_t line_mask_ = 0;
  std::vector<Way> ways_;          // num_sets * ways, row-major by set
  std::vector<std::uint8_t> mru_;  // per-set most-recently-used way (advisory)
  std::uint64_t next_stamp_ = 1;
  CacheStats stats_;
};

}  // namespace hsim::mem
