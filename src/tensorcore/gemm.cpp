#include "tensorcore/gemm.hpp"

#include <algorithm>
#include <cmath>

#include "tensorcore/sparse.hpp"

namespace hsim::tc {
namespace {

template <typename T>
Mat<T> slice(const Mat<T>& m, int r0, int c0, int rows, int cols) {
  Mat<T> out(rows, cols);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) out.at(r, c) = m.at(r0 + r, c0 + c);
  }
  return out;
}

template <typename T>
void paste(Mat<T>& m, const Mat<T>& tile, int r0, int c0) {
  for (int r = 0; r < tile.rows(); ++r) {
    for (int c = 0; c < tile.cols(); ++c) m.at(r0 + r, c0 + c) = tile.at(r, c);
  }
}

}  // namespace

Expected<GemmIntResult> gemm_int8(const MatI8& a, const MatI8& b,
                                  const MatI32& c, const isa::TcInstr& instr,
                                  const arch::DeviceSpec& device) {
  if (instr.ab != num::DType::kInt8 || instr.cd != num::DType::kInt32) {
    return invalid_argument("gemm_int8 requires s8 inputs, s32 accumulate");
  }
  auto checked = isa::validate(instr);
  if (!checked) return checked.error();
  auto timing = tc_timing(instr, device);
  if (!timing) return timing.error();

  const int m = a.rows(), k = a.cols(), n = b.cols();
  if (b.rows() != k || c.rows() != m || c.cols() != n) {
    return invalid_argument("GEMM operand shapes disagree");
  }
  const int tm = instr.shape.m, tn = instr.shape.n, tk = instr.shape.k;
  if (m % tm != 0 || n % tn != 0 || k % tk != 0) {
    return invalid_argument("dimensions must align to the instruction shape");
  }

  GemmIntResult out;
  out.d = c;
  for (int kk = 0; kk < k; kk += tk) {
    for (int i = 0; i < m; i += tm) {
      const MatI8 a_tile = slice(a, i, kk, tm, tk);
      for (int j = 0; j < n; j += tn) {
        const MatI8 b_tile = slice(b, kk, j, tk, tn);
        const MatI32 d_tile = slice(out.d, i, j, tm, tn);
        paste(out.d, mma_int(a_tile, b_tile, d_tile), i, j);
        ++out.instructions;
      }
    }
  }
  const double output_tiles =
      (static_cast<double>(m) / tm) * (static_cast<double>(n) / tn);
  const double waves =
      std::ceil(output_tiles / static_cast<double>(device.sm_count));
  const double per_tile_cycles =
      (static_cast<double>(k) / tk) * timing.value().cadence +
      timing.value().latency;
  const double seconds = waves * per_tile_cycles / device.clock_hz();
  out.projected_tflops = 2.0 * m * n * static_cast<double>(k) / seconds / 1e12;
  return out;
}

Expected<GemmResult> gemm(const MatF& a_in, const MatF& b, const MatF& c,
                          const isa::TcInstr& instr_in,
                          const arch::DeviceSpec& device, GemmOptions options) {
  isa::TcInstr instr = instr_in;
  instr.sparse = options.sparse;
  if (options.sparse && instr.path == isa::TcPath::kMma) {
    instr.shape.k = 2 * instr_in.shape.k;  // sparse modifier doubles k
  }
  auto checked = isa::validate(instr);
  if (!checked) return checked.error();
  auto timing = tc_timing(instr, device);
  if (!timing) return timing.error();

  const int m = a_in.rows(), k = a_in.cols(), n = b.cols();
  if (b.rows() != k || c.rows() != m || c.cols() != n) {
    return invalid_argument("GEMM operand shapes disagree");
  }
  const int tm = instr.shape.m, tn = instr.shape.n, tk = instr.shape.k;
  if (m % tm != 0 || n % tn != 0 || k % tk != 0) {
    return invalid_argument("dimensions must align to the instruction shape");
  }
  if (num::is_integer(instr.ab)) {
    return unsupported("this driver covers the floating-point paths");
  }

  const MatF a = options.sparse ? prune_2_4(a_in) : a_in;

  GemmResult out;
  out.d = c;
  for (int kk = 0; kk < k; kk += tk) {
    for (int i = 0; i < m; i += tm) {
      const MatF a_tile = slice(a, i, kk, tm, tk);
      // Sparse instructions consume the compressed operand + metadata.
      Sparse24 a_sparse;
      if (options.sparse) a_sparse = compress_2_4(a_tile);
      for (int j = 0; j < n; j += tn) {
        const MatF b_tile = slice(b, kk, j, tk, tn);
        const MatF d_tile = slice(out.d, i, j, tm, tn);
        const MatF updated =
            options.sparse
                ? mma_sparse_fp(a_sparse, b_tile, d_tile, instr.ab, instr.cd)
                : mma_fp(a_tile, b_tile, d_tile, instr.ab, instr.cd);
        paste(out.d, updated, i, j);
        ++out.instructions;
      }
    }
  }

  // Performance projection: tiles pipeline back-to-back per SM; output
  // tiles spread across SMs in waves (k-steps of one output tile are a
  // dependent chain through the accumulator, so they serialise at the
  // instruction cadence, which back-to-back issue already models).
  const double output_tiles =
      (static_cast<double>(m) / tm) * (static_cast<double>(n) / tn);
  const double waves =
      std::ceil(output_tiles / static_cast<double>(device.sm_count));
  const double per_tile_cycles =
      (static_cast<double>(k) / tk) * timing.value().cadence +
      timing.value().latency;
  out.projected_cycles = waves * per_tile_cycles;
  out.projected_seconds = out.projected_cycles / device.clock_hz();
  const double flops = 2.0 * static_cast<double>(m) * static_cast<double>(n) *
                       static_cast<double>(k);
  out.projected_tflops = flops / out.projected_seconds / 1e12;

  if (options.compute_error) {
    const auto ref = matmul_f64(a, b, c);
    for (int i = 0; i < m; ++i) {
      for (int j = 0; j < n; ++j) {
        out.max_abs_error = std::max(
            out.max_abs_error,
            std::fabs(static_cast<double>(out.d.at(i, j)) - ref.at(i, j)));
      }
    }
  }
  return out;
}

}  // namespace hsim::tc
