// A small text assembler for the micro-ISA.
//
// Lets tests and examples write kernels the way the paper presents them —
// as instruction listings — instead of builder chains:
//
//     .iterations 1024
//     MOV   R1, 0
//     LDG.CA R2, [R1]
//     IADD3 R1, R1, R2
//
// Syntax: one instruction per line; `;` or `#` starts a comment; registers
// are R0..R127; memory operands are bracketed registers with an optional
// signed byte offset and width suffix (`[R1]`, `[R1+8]`, `[R1-8].16`, or
// the absolute form `[64]`); directives start with a dot (`.iterations N`).
// The syntax round-trips: `Program::to_string()` output re-assembles to an
// identical Program (pinned by tests/assembler_roundtrip_test.cpp).
#pragma once

#include <string_view>

#include "common/status.hpp"
#include "isa/program.hpp"

namespace hsim::isa {

/// Assemble source text into a Program.  Returns the first error with a
/// line number in the message.
Expected<Program> assemble(std::string_view source);

}  // namespace hsim::isa
