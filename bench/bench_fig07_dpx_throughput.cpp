// Fig 7: DPX throughput per SM and the launched-block sweep whose sawtooth
// (drops just past each multiple of the SM count) locates the DPX unit at
// SM level.
//
// The function x device grid and every block count of the H800 sweep are
// independent points on the parallel sweep engine; output is bit-identical
// at any --threads value.
#include <iostream>
#include <optional>

#include "bench/bench_util.hpp"
#include "core/dpxbench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  const arch::DeviceSpec* devices[] = {&arch::rtx4090(), &arch::a100_pcie(),
                                       &arch::h800_pcie()};
  const dpx::Func funcs[] = {
      dpx::Func::kViAddMaxS32,      dpx::Func::kViAddMaxS32Relu,
      dpx::Func::kViMax3S32,        dpx::Func::kViMax3S32Relu,
      dpx::Func::kViBMaxS32,        dpx::Func::kViAddMaxS16x2,
      dpx::Func::kViAddMaxS16x2Relu, dpx::Func::kViMax3S16x2Relu,
  };
  constexpr std::size_t kDevices = 3;
  constexpr std::size_t kFuncs = 8;

  sim::CycleReport report;
  const auto grid = sim::sweep(
      kFuncs * kDevices,
      [&](sim::SweepContext& ctx) -> std::optional<core::DpxThroughputResult> {
        const auto func = funcs[ctx.index() / kDevices];
        const auto* device = devices[ctx.index() % kDevices];
        auto result = core::dpx_throughput(*device, func);
        if (!result) return std::nullopt;
        if (result.value().measurable) ctx.record(result.value().usage);
        return std::move(result).value();
      },
      bench::sweep_options(opt), &report);

  Table table("Fig 7 (left): DPX throughput (Gcalls/s device-wide)");
  table.set_header({"Function", "RTX4090", "A100", "H800"});
  for (std::size_t f = 0; f < kFuncs; ++f) {
    std::vector<std::string> cells{std::string(dpx::name(funcs[f]))};
    for (std::size_t d = 0; d < kDevices; ++d) {
      const auto& r = grid[f * kDevices + d];
      if (!r) {
        cells.push_back("err");
        continue;
      }
      cells.push_back(r->measurable ? fmt_fixed(r->gcalls_per_sec, 0) : "n/a");
    }
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);

  // Block sweep on H800: the wave-quantisation sawtooth.  Each block count
  // is an independent launch, so the sweep fans them out too.  Under
  // --full-chip every point simulates all 114 SMs (gpu::GpuEngine) and the
  // sawtooth must emerge from the dispatcher, not from ceil().
  const auto& h800 = arch::h800_pcie();
  const int sms = h800.sm_count;
  const int max_blocks = opt.quick ? sms + 8 : 2 * sms + 8;
  const auto mode = opt.full_chip ? sm::LaunchMode::kFullChip
                                  : sm::LaunchMode::kRepresentative;
  const auto points = sim::sweep(
      static_cast<std::size_t>(max_blocks),
      [&](sim::SweepContext& ctx) -> std::optional<core::DpxSweepPoint> {
        const int blocks = static_cast<int>(ctx.index()) + 1;
        auto point =
            core::dpx_block_point(h800, dpx::Func::kViMax3S32, blocks, mode);
        if (!point) return std::nullopt;
        return point.value();
      },
      bench::sweep_options(opt));

  Table sweep(std::string("Fig 7 (right): H800 __vimax3_s32 throughput vs "
                          "launched blocks") +
              (opt.full_chip ? " [full chip]" : ""));
  sweep.set_header({"blocks", "Gcalls/s", "note"});
  for (const auto& point : points) {
    if (!point) continue;
    std::string note;
    if (point->blocks == sms) note = "<- full wave (" + std::to_string(sms) + " SMs)";
    if (point->blocks == sms + 1) note = "<- throughput plummets";
    if (point->blocks == 2 * sms) note = "<- second full wave";
    // Print a decimated set plus the interesting neighbourhood.
    if (point->blocks % 16 == 0 || !note.empty() || point->blocks <= 4) {
      sweep.add_row({std::to_string(point->blocks),
                     fmt_fixed(point->gcalls_per_sec, 0), note});
    }
  }
  bench::emit(sweep, opt);
  bench::write_report(report, opt, argv[0]);
  return 0;
}
