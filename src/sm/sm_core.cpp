#include "sm/sm_core.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstring>
#include <deque>
#include <limits>

#include "isa/ptx.hpp"
#include "numerics/types.hpp"
#include "tensorcore/timing.hpp"

namespace hsim::sm {
namespace {

constexpr int kLanes = 32;
constexpr double kEps = 1e-9;
constexpr double kInf = std::numeric_limits<double>::infinity();

float as_f32(std::uint64_t bits) {
  return std::bit_cast<float>(static_cast<std::uint32_t>(bits));
}
std::uint64_t from_f32(float value) {
  return std::bit_cast<std::uint32_t>(value);
}
double as_f64(std::uint64_t bits) { return std::bit_cast<double>(bits); }
std::uint64_t from_f64(double value) { return std::bit_cast<std::uint64_t>(value); }

// NVIDIA GPUs canonicalize every NaN arithmetic result to a single quiet-NaN
// encoding (0x7fffffff for f32).  Mirroring that keeps results independent of
// the host compiler's instruction selection, which otherwise chooses which
// operand's payload survives NaN+NaN.
std::uint64_t canon_f32(float value) {
  return std::isnan(value) ? std::uint64_t{0x7fffffffu} : from_f32(value);
}
std::uint64_t canon_f64(double value) {
  return std::isnan(value) ? std::uint64_t{0x7fffffffffffffffull}
                           : from_f64(value);
}

std::int32_t as_s32(std::uint64_t bits) {
  return static_cast<std::int32_t>(static_cast<std::uint32_t>(bits));
}

using trace::StallReason;

}  // namespace

// Async-copy group bookkeeping.  Slots live in a deque so their addresses
// are stable fixup targets for deferred (full-chip) completions: `known` is
// the max completion folded in so far, `outstanding` counts tickets still
// waiting on an epoch-barrier resolution.  Slots are recycled per launch
// via Warp::async_used rather than destroyed, so the steady state allocates
// nothing.
struct SmCore::AsyncSlot {
  double known = 0;
  int outstanding = 0;
};

struct SmCore::Warp {
  int id = 0;
  int block = 0;
  int scheduler = 0;
  std::size_t pc = 0;
  std::uint32_t iteration = 0;
  bool done = false;
  bool at_barrier = false;
  double blocked_until = 0;       // async-wait / barrier release
  // What a wait until blocked_until means for stall attribution.
  trace::StallReason block_reason = trace::StallReason::kBarrier;
  double last_issue_cycle = -1;
  // Scoreboard slices into the core's flat stores (stable addresses).
  double* reg_ready = nullptr;               // per register
  trace::StallReason* reg_reason = nullptr;  // producer classification
  std::uint64_t* lanes = nullptr;            // regs * kLanes
  std::deque<AsyncSlot> async_slots;
  std::size_t async_used = 0;            // slots handed out this launch
  AsyncSlot* async_open = nullptr;       // accumulating uncommitted copies
  std::vector<AsyncSlot*> async_groups;  // committed groups, FIFO
  std::size_t async_head = 0;            // FIFO consume position

  [[nodiscard]] std::uint64_t& lane(int r, int l) {
    return lanes[static_cast<std::size_t>(r) * kLanes + static_cast<std::size_t>(l)];
  }
  [[nodiscard]] std::uint64_t lane(int r, int l) const {
    return lanes[static_cast<std::size_t>(r) * kLanes + static_cast<std::size_t>(l)];
  }
};

struct SmCore::Units {
  std::array<sim::PipelinedUnit, 4> fma;
  std::array<sim::PipelinedUnit, 4> alu;
  sim::PipelinedUnit fp64;
  std::array<sim::PipelinedUnit, 4> dpx;
  sim::PipelinedUnit tensor;
  sim::PipelinedUnit lsu;
  sim::PipelinedUnit dsm;
  double fma_ii = 1, fma_lat = 4;
  double alu_ii = 2, alu_lat = 4;
  double fp64_ii = 1, fp64_lat = 8;
  double dpx_ii = 2, dpx_lat = 6;
  double tensor_ii = 4, tensor_lat = 16;
  double lsu_ii = 1;
  double dsm_lat = 180;
  double dsm_bytes_per_clk = 16;
};

// Everything issue needs that is a pure function of the static instruction,
// resolved once per program in begin(): operand indices (sources compacted,
// kRegNone dropped), WAW eligibility, the per-scheduler pipe whose issue
// slot gates the instruction (already folded for DPX hardware vs. ALU
// emulation), and the strings/reasons trace attribution would report.
struct SmCore::MicroOp {
  isa::Opcode op = isa::Opcode::kNop;
  int rd = isa::kRegNone;
  int ra = isa::kRegNone;
  int rb = isa::kRegNone;
  int rc = isa::kRegNone;
  std::int64_t imm = 0;
  std::uint32_t access_bytes = 4;
  int num_srcs = 0;
  std::array<int, 3> srcs{};
  bool waw_check = false;
  std::uint8_t unit_class = 0;  // isa::UnitClass, pre-resolved for the PMU
  double flops = 0;             // per-warp FLOPs this instruction performs
  trace::StallReason busy_reason = trace::StallReason::kStructural;
  std::array<sim::PipelinedUnit*, 4> pipe{};  // issue gate; null = none
  std::string_view name;        // mnemonic (static storage, trace-safe)
  std::string_view busy_where;  // unit name when the pipe gates issue
};

// A warp parked on cp.async.wait whose groups still had unresolved tickets;
// resolve_async_waits() turns it into a real blocked_until once the epoch
// barrier has landed every completion.  Groups live in the core's
// wait_groups_ arena ([group_begin, group_begin + group_count)).
struct SmCore::AsyncWait {
  int warp = 0;
  double floor = 0;  // wait time implied by the already-resolved groups
  std::uint32_t group_begin = 0;
  std::uint32_t group_count = 0;
};

SmCore::SmCore(const arch::DeviceSpec& device, mem::MemPath* mem, int sm_id)
    : device_(device), mem_(mem), sm_id_(sm_id), units_(std::make_unique<Units>()) {
  auto& u = *units_;
  // Per-partition FP32 lanes set the FMA initiation interval for a warp.
  const double fma_lanes = static_cast<double>(device.cores_per_sm) / 4.0;
  u.fma_ii = 32.0 / fma_lanes;
  u.alu_ii = 2.0;  // 16 INT32 lanes per partition on all three parts
  u.fma_lat = 4.0;
  u.alu_lat = device.dpx.emu_latency_per_op;  // INT32 dependent-use latency
  // The FP64 pipe is shared SM-wide; its width comes from the same
  // calibration constant that bottlenecks the FP64 memory benchmark.
  u.fp64_ii = 256.0 / device.memory.fp64_add_bytes_per_clk_sm;
  u.fp64_lat = device.generation == arch::Generation::kAmpere ? 8.0 : 16.0;
  u.dpx_ii = 128.0 / device.dpx.hw_ops_per_clk_sm;  // per-scheduler interval
  u.dpx_lat = device.dpx.hw_latency;
  u.dsm_lat = device.dsm.latency_cycles;
  u.dsm_bytes_per_clk = device.dsm.port_bytes_per_clk;
  for (int s = 0; s < 4; ++s) {
    u.fma[static_cast<std::size_t>(s)] = sim::PipelinedUnit(u.fma_ii, u.fma_lat);
    u.alu[static_cast<std::size_t>(s)] = sim::PipelinedUnit(u.alu_ii, u.alu_lat);
    u.dpx[static_cast<std::size_t>(s)] = sim::PipelinedUnit(u.dpx_ii, u.dpx_lat);
  }
  u.fp64 = sim::PipelinedUnit(u.fp64_ii, u.fp64_lat);
  // The SM-wide tensor pipe issues at the calibrated mma cadence; HMMA in
  // the micro-ISA stands for the m16n8k16 FP16->FP32 instruction.
  const auto mma = tc::tc_timing(
      isa::TcInstr{.path = isa::TcPath::kMma,
                   .shape = {16, 8, 16},
                   .ab = num::DType::kFp16,
                   .cd = num::DType::kFp32},
      device);
  if (mma) {
    u.tensor_ii = mma.value().cadence;
    u.tensor_lat = mma.value().latency;
  }
  u.tensor = sim::PipelinedUnit(u.tensor_ii, u.tensor_lat);
  u.lsu = sim::PipelinedUnit(u.lsu_ii, 1.0);
  u.dsm = sim::PipelinedUnit(1.0, u.dsm_lat);
}

SmCore::~SmCore() = default;

mem::SharedMemory& SmCore::shared() {
  if (!shared_) {
    shared_ = std::make_unique<mem::SharedMemory>(device_.memory.smem_max_per_sm,
                                                  device_.memory.smem_banks);
    shared_->set_trace(trace_);
    shared_->set_pmu(pmu_);
  }
  return *shared_;
}

void SmCore::set_trace(trace::TraceSink* sink) {
  trace_ = sink;
  if (shared_) shared_->set_trace(sink);
}

void SmCore::set_pmu(prof::PmuCounters* pmu) {
  pmu_ = pmu;
  if (shared_) shared_->set_pmu(pmu);
}

std::uint64_t SmCore::reg(int warp, int reg_index, int lane) const {
  const auto& w = warps_.at(static_cast<std::size_t>(warp));
  return w.lane(reg_index, lane);
}

std::vector<sim::UnitSample> SmCore::unit_usage() const {
  const auto& u = *units_;
  // Quadrant-partitioned units report busy cycles averaged over the four
  // per-scheduler slices so occupancy = busy / total stays in [0, 1];
  // ops are summed.
  const auto sum4 = [](const std::array<sim::PipelinedUnit, 4>& parts) {
    sim::UnitSample out;
    for (const auto& part : parts) {
      out.busy_cycles += part.busy_cycles();
      out.ops += part.ops();
    }
    out.busy_cycles /= 4.0;
    return out;
  };
  auto fma = sum4(u.fma);
  fma.name = "SM.FMA";
  auto alu = sum4(u.alu);
  alu.name = "SM.ALU";
  auto dpx = sum4(u.dpx);
  dpx.name = "SM.DPX";
  return {std::move(fma), std::move(alu),
          {"SM.FP64", u.fp64.busy_cycles(), u.fp64.ops()},
          std::move(dpx),
          {"SM.TC", u.tensor.busy_cycles(), u.tensor.ops()},
          {"SM.LSU", u.lsu.busy_cycles(), u.lsu.ops()},
          {"SM.DSM", u.dsm.busy_cycles(), u.dsm.ops()}};
}

RunResult SmCore::run(const isa::Program& program, const BlockShape& shape) {
  HSIM_ASSERT(shape.blocks >= 1 && shape.threads_per_block >= 1);
  begin(program, shape.blocks, shape.threads_per_block);
  for (int b = 0; b < shape.blocks; ++b) launch_block(b, b, 0.0);
  advance(kInf);
  return finalize();
}

void SmCore::decode_program(const isa::Program& program) {
  auto& u = *units_;
  decoded_.clear();
  decoded_.reserve(program.size());
  for (const auto& inst : program.body()) {
    MicroOp m;
    m.op = inst.op;
    m.rd = inst.rd;
    m.ra = inst.ra;
    m.rb = inst.rb;
    m.rc = inst.rc;
    m.imm = inst.imm;
    m.access_bytes = inst.access_bytes;
    for (const int src : {inst.ra, inst.rb, inst.rc}) {
      if (src != isa::kRegNone) m.srcs[static_cast<std::size_t>(m.num_srcs++)] = src;
    }
    m.waw_check = inst.rd != isa::kRegNone && inst.op != isa::Opcode::kClock;
    m.name = isa::mnemonic(inst.op);
    m.unit_class = static_cast<std::uint8_t>(isa::unit_of(inst.op));
    // Per-warp FLOP weights for the roofline numerator: 32 lanes, FMA
    // counts two, packed-half two per lane, HMMA the full m16n8k16 tile.
    switch (inst.op) {
      case isa::Opcode::kFAdd:
      case isa::Opcode::kFMul:
      case isa::Opcode::kDAdd:
      case isa::Opcode::kDMul:
        m.flops = 32.0;
        break;
      case isa::Opcode::kFFma:
      case isa::Opcode::kHAdd2:
        m.flops = 64.0;
        break;
      case isa::Opcode::kHMma:
        m.flops = 2.0 * 16.0 * 8.0 * 16.0;
        break;
      default:
        break;
    }
    switch (isa::unit_of(inst.op)) {
      case isa::UnitClass::kFma:
        for (int s = 0; s < 4; ++s) m.pipe[static_cast<std::size_t>(s)] =
            &u.fma[static_cast<std::size_t>(s)];
        m.busy_where = "SM.FMA";
        break;
      case isa::UnitClass::kAlu:
        for (int s = 0; s < 4; ++s) m.pipe[static_cast<std::size_t>(s)] =
            &u.alu[static_cast<std::size_t>(s)];
        m.busy_where = "SM.ALU";
        break;
      case isa::UnitClass::kFp64:
        m.pipe.fill(&u.fp64);
        m.busy_where = "SM.FP64";
        break;
      case isa::UnitClass::kDpx:
        // Hardware DPX dispatches to the per-scheduler DPX pipe; on devices
        // without it the op is ALU-emulated.  Resolving the choice here
        // keeps the issue gate and execute() permanently in agreement.
        if (device_.dpx.hardware) {
          for (int s = 0; s < 4; ++s) m.pipe[static_cast<std::size_t>(s)] =
              &u.dpx[static_cast<std::size_t>(s)];
          m.busy_where = "SM.DPX";
        } else {
          for (int s = 0; s < 4; ++s) m.pipe[static_cast<std::size_t>(s)] =
              &u.alu[static_cast<std::size_t>(s)];
          m.busy_where = "SM.ALU";
        }
        break;
      case isa::UnitClass::kTensor:
        m.pipe.fill(&u.tensor);
        m.busy_where = "SM.TC";
        break;
      case isa::UnitClass::kLsu:
        m.pipe.fill(&u.lsu);
        m.busy_where = "SM.LSU";
        break;
      case isa::UnitClass::kDsm:
        // Remote traffic stalls at the SM's injection port, not the LSU; a
        // busy port means the SM-to-SM fabric is backed up.
        m.pipe.fill(&u.dsm);
        m.busy_where = "SM.DSM";
        m.busy_reason = StallReason::kDsmHop;
        break;
      case isa::UnitClass::kControl:
        break;
    }
    decoded_.push_back(m);
  }
}

void SmCore::begin(const isa::Program& program, int block_slots,
                   int threads_per_block) {
  HSIM_ASSERT(!program.empty());
  HSIM_ASSERT(block_slots >= 1 && threads_per_block >= 1);
  program_ = &program;
  prog_size_ = program.size();
  prog_iterations_ = program.iterations();
  decode_program(program);

  // Size the register file to what the program touches.
  int max_reg = 0;
  for (const auto& inst : program.body()) {
    max_reg = std::max({max_reg, inst.rd, inst.ra, inst.rb, inst.rc});
  }
  num_regs_ = max_reg + 1;

  const int warps_per_block = (threads_per_block + 31) / 32;
  const int total_warps = block_slots * warps_per_block;
  const auto regs = static_cast<std::size_t>(num_regs_);
  reg_ready_store_.assign(static_cast<std::size_t>(total_warps) * regs, 0.0);
  reg_reason_store_.assign(static_cast<std::size_t>(total_warps) * regs,
                           StallReason::kScoreboardRaw);
  lane_store_.assign(static_cast<std::size_t>(total_warps) * regs * kLanes, 0);
  warps_.assign(static_cast<std::size_t>(total_warps), Warp{});
  for (auto& list : sched_warps_) list.clear();
  for (int i = 0; i < total_warps; ++i) {
    auto& w = warps_[static_cast<std::size_t>(i)];
    w.id = i;
    w.block = i / warps_per_block;
    w.scheduler = i % 4;
    w.done = true;  // slots are empty until a block is launched into them
    w.reg_ready = reg_ready_store_.data() + static_cast<std::size_t>(i) * regs;
    w.reg_reason = reg_reason_store_.data() + static_cast<std::size_t>(i) * regs;
    w.lanes = lane_store_.data() + static_cast<std::size_t>(i) * regs * kLanes;
    sched_warps_[static_cast<std::size_t>(w.scheduler)].push_back(i);
  }
  wake_.assign(static_cast<std::size_t>(total_warps), kInf);
  active_scheds_ = 0;
  for (const auto& list : sched_warps_) {
    if (!list.empty()) ++active_scheds_;
  }
  barrier_target_ = warps_per_block;
  result_ = {};
  last_completion_ = 0.0;
  now_ = 0.0;
  live_ = 0;
  rotate_ = {0, 0, 0, 0};
  block_live_.assign(static_cast<std::size_t>(block_slots), 0);
  block_retire_.assign(static_cast<std::size_t>(block_slots), -1.0);
  barrier_dirty_.clear();
  // At most one entry per block slot (barrier_marked_ dedups), so sizing it
  // here keeps the issue loop allocation-free.
  barrier_dirty_.reserve(static_cast<std::size_t>(block_slots));
  barrier_marked_.assign(static_cast<std::size_t>(block_slots), 0);
  async_waits_.clear();
  wait_groups_.clear();
  access_pending_ = false;
  pmu_pending_retire_ = 0;
}

void SmCore::launch_block(int slot, int block_global_id, double at) {
  const int warps_per_block = barrier_target_;
  HSIM_ASSERT_MSG(slot >= 0 && slot < block_slots(), "slot=%d of %d", slot,
                  block_slots());
  HSIM_ASSERT_MSG(block_live_[static_cast<std::size_t>(slot)] == 0,
                  "slot %d still has %d live warps", slot,
                  block_live_[static_cast<std::size_t>(slot)]);
  now_ = std::max(now_, at);
  block_live_[static_cast<std::size_t>(slot)] = warps_per_block;
  block_retire_[static_cast<std::size_t>(slot)] = -1.0;
  const auto regs = static_cast<std::size_t>(num_regs_);
  for (int j = 0; j < warps_per_block; ++j) {
    auto& w = warps_[static_cast<std::size_t>(slot * warps_per_block + j)];
    w.pc = 0;
    w.iteration = 0;
    w.done = false;
    w.at_barrier = false;
    w.blocked_until = 0;
    w.block_reason = StallReason::kBarrier;
    w.last_issue_cycle = -1;
    wake_[static_cast<std::size_t>(w.id)] = 0.0;
    std::fill_n(w.reg_ready, regs, 0.0);
    std::fill_n(w.reg_reason, regs, StallReason::kScoreboardRaw);
    std::fill_n(w.lanes, regs * kLanes, std::uint64_t{0});
    // R0 is preloaded with the *grid* thread id (lane-varying), the way
    // CUDA kernels derive addresses from blockIdx/threadIdx.  For a
    // single-SM run() block_global_id equals the slot, so this reduces to
    // the SM-local warp index.
    for (int l = 0; l < kLanes; ++l) {
      w.lane(0, l) =
          (static_cast<std::uint64_t>(block_global_id) *
               static_cast<std::uint64_t>(warps_per_block) +
           static_cast<std::uint64_t>(j)) *
              kLanes +
          static_cast<std::uint64_t>(l);
    }
    w.async_used = 0;
    w.async_groups.clear();
    w.async_head = 0;
    w.async_open = acquire_async_slot(w);
    ++live_;
  }
  if (pmu_ != nullptr) {
    pmu_->add(prof::Counter::kWarpsLaunched,
              static_cast<double>(warps_per_block));
  }
  if (trace_ != nullptr) {
    for (int j = 0; j < warps_per_block; ++j) {
      const auto& w = warps_[static_cast<std::size_t>(slot * warps_per_block + j)];
      trace_->on_event({trace::EventKind::kFetch, StallReason::kNone, now_, 0.0,
                        sm_id_, w.id, 0, "warp"});
    }
  }
}

SmCore::AsyncSlot* SmCore::acquire_async_slot(Warp& warp) {
  if (warp.async_used < warp.async_slots.size()) {
    auto& slot = warp.async_slots[warp.async_used++];
    slot.known = 0;
    slot.outstanding = 0;
    return &slot;
  }
  ++warp.async_used;
  return &warp.async_slots.emplace_back();
}

void SmCore::mark_barrier_dirty(int block) {
  auto& marked = barrier_marked_[static_cast<std::size_t>(block)];
  if (marked == 0) {
    marked = 1;
    barrier_dirty_.push_back(block);
  }
}

// Barrier release: when every live warp of a block is parked at the
// barrier, release them all on the next cycle.  The condition can only
// become true when a warp parks or retires, so only blocks marked dirty by
// those transitions need re-checking.
void SmCore::release_dirty_barriers() {
  const int warps_per_block = barrier_target_;
  for (const int b : barrier_dirty_) {
    barrier_marked_[static_cast<std::size_t>(b)] = 0;
    int waiting = 0, alive = 0;
    for (int i = 0; i < warps_per_block; ++i) {
      const auto& w = warps_[static_cast<std::size_t>(b * warps_per_block + i)];
      if (!w.done) ++alive;
      if (w.at_barrier) ++waiting;
    }
    if (alive > 0 && waiting == alive) {
      for (int i = 0; i < warps_per_block; ++i) {
        auto& w = warps_[static_cast<std::size_t>(b * warps_per_block + i)];
        if (w.at_barrier) {
          w.at_barrier = false;
          w.blocked_until = now_ + 1;
          w.block_reason = StallReason::kBarrier;
          wake_[static_cast<std::size_t>(w.id)] = w.blocked_until;
        }
      }
    }
  }
  barrier_dirty_.clear();
}

// Earliest number of whole cycles to jump, from a cycle where no scheduler
// issued, such that some warp could clear every issue gate (or `until` is
// reached).  The frozen state makes this exact: with no issues, no gate
// time can change, and barrier releases only follow issues.
double SmCore::idle_step(double until) {
  double wake = kInf;
  const std::size_t n = warps_.size();
  for (std::size_t i = 0; i < n; ++i) {
    // A cached bound still in the future is exact enough for a minimum: the
    // true wake can only be later, and landing early just means one normal
    // (no-issue) cycle followed by a recompute here.
    if (wake_[i] > now_ + kEps) {
      wake = std::min(wake, wake_[i]);
      continue;
    }
    const Warp& w = warps_[i];
    if (w.done || w.at_barrier) {  // normally cached as +inf; self-heal
      wake_[i] = kInf;
      continue;
    }
    double t = w.blocked_until;
    const MicroOp& m = decoded_[w.pc];
    if (const sim::PipelinedUnit* pipe = m.pipe[static_cast<std::size_t>(w.scheduler)];
        pipe != nullptr) {
      t = std::max(t, pipe->next_free());
    }
    for (int k = 0; k < m.num_srcs; ++k) {
      t = std::max(t, w.reg_ready[static_cast<std::size_t>(
                          m.srcs[static_cast<std::size_t>(k)])]);
    }
    if (m.waw_check) {
      t = std::max(t, w.reg_ready[static_cast<std::size_t>(m.rd)]);
    }
    wake_[i] = t;
    wake = std::min(wake, t);
  }
  double steps = std::isfinite(wake)
                     ? std::max(1.0, std::ceil(wake - now_ - kEps))
                     : kInf;
  if (std::isfinite(until)) {
    steps = std::min(steps, std::max(1.0, std::ceil(until - now_ - kEps)));
  }
  HSIM_ASSERT_MSG(std::isfinite(steps),
                  "deadlock: %d live warps, none can ever issue (now=%g)",
                  live_, now_);
  return steps;
}

bool SmCore::advance(double until) {
  HSIM_ASSERT(program_ != nullptr);
  while (live_ > 0 && now_ + kEps < until) {
    HSIM_ASSERT(now_ < 5e9);  // deadlock guard
    // Issue-budget boundary (fast-forward segments): stop with the issue
    // count exactly at the budget instead of idle-stepping forever on
    // warps that are ready but not allowed to issue.
    if (issue_budget_ != 0 && result_.instructions_issued >= issue_budget_) {
      break;
    }

    if (!barrier_dirty_.empty()) release_dirty_barriers();

    bool issued_any = false;
    if (trace_ == nullptr) {
      for (int s = 0; s < 4; ++s) {
        if (sched_warps_[static_cast<std::size_t>(s)].empty()) continue;
        if (step_scheduler_fast(s)) {
          issued_any = true;
        } else {
          ++result_.stall_cycles;
        }
      }
    } else {
      for (int s = 0; s < 4; ++s) {
        if (sched_warps_[static_cast<std::size_t>(s)].empty()) continue;
        if (step_scheduler_traced(s)) issued_any = true;
      }
    }

    if (!issued_any && cycle_skip_ && trace_ == nullptr && live_ > 0) {
      const double steps = idle_step(until);
      if (steps > 1.0) {
        result_.stall_cycles +=
            static_cast<std::uint64_t>(steps - 1.0) *
            static_cast<std::uint64_t>(active_scheds_);
      }
      // The skipped span had no issues, so the live-warp count is constant
      // across it — crediting the whole span here is bit-identical to
      // sampling it cycle by cycle.
      if (pmu_ != nullptr) pmu_->sample_occupancy(live_, steps);
      now_ += steps;
    } else {
      if (pmu_ != nullptr) pmu_->sample_occupancy(live_, 1.0);
      now_ += 1.0;
    }
  }
  return live_ > 0;
}

// Untraced scheduler step: same candidate order and gate semantics as the
// traced path, minus all stall attribution.  The issue decision is a
// conjunction of order-independent gates, so checking them in the cheapest
// order is safe.
bool SmCore::step_scheduler_fast(int s) {
  if (issue_budget_ != 0 && result_.instructions_issued >= issue_budget_) {
    return false;
  }
  const auto& list = sched_warps_[static_cast<std::size_t>(s)];
  const int n = static_cast<int>(list.size());
  int& rot = rotate_[static_cast<std::size_t>(s)];
  const double now = now_;
  for (int step = 0; step < n; ++step) {
    int p = rot + step;
    if (p >= n) p -= n;
    const int wid = list[static_cast<std::size_t>(p)];
    // Cheapest gate first: a cached wake bound in the future proves the
    // warp cannot issue without touching its (cold) Warp struct at all.
    // When a gate below fails, its time is recorded as the new bound — an
    // exact lower bound on the warp's next issue (gate times only move
    // forward), so a blocked warp pays one full probe per state change
    // instead of one per cycle.
    if (wake_[static_cast<std::size_t>(wid)] > now + kEps) continue;
    Warp& w = warps_[static_cast<std::size_t>(wid)];
    if (w.done || w.at_barrier) continue;
    if (w.blocked_until > now + kEps) {
      wake_[static_cast<std::size_t>(wid)] = w.blocked_until;
      continue;
    }
    if (w.last_issue_cycle >= now - kEps) continue;
    const MicroOp& m = decoded_[w.pc];
    if (const sim::PipelinedUnit* pipe = m.pipe[static_cast<std::size_t>(s)];
        pipe != nullptr && pipe->next_free() > now + kEps) {
      wake_[static_cast<std::size_t>(wid)] = pipe->next_free();
      continue;
    }
    bool blocked = false;
    for (int k = 0; k < m.num_srcs; ++k) {
      const double ready = w.reg_ready[static_cast<std::size_t>(
          m.srcs[static_cast<std::size_t>(k)])];
      if (ready > now + kEps) {
        wake_[static_cast<std::size_t>(wid)] = ready;
        blocked = true;
        break;
      }
    }
    if (blocked) continue;
    if (m.waw_check) {
      const double ready = w.reg_ready[static_cast<std::size_t>(m.rd)];
      if (ready > now + kEps) {
        wake_[static_cast<std::size_t>(wid)] = ready;
        continue;
      }
    }
    issue_at(w, m, now);
    rot = p + 1 == n ? 0 : p + 1;
    if (w.done) {
      --live_;
      auto& remaining = block_live_[static_cast<std::size_t>(w.block)];
      if (--remaining == 0) {
        block_retire_[static_cast<std::size_t>(w.block)] = now_;
      }
    }
    return true;
  }
  return false;
}

bool SmCore::step_scheduler_traced(int s) {
  if (issue_budget_ != 0 && result_.instructions_issued >= issue_budget_) {
    return false;
  }
  const auto& list = sched_warps_[static_cast<std::size_t>(s)];
  const int n = static_cast<int>(list.size());
  bool issued = false;
  // Stall attribution for this scheduler slot: the reason the *first*
  // live candidate (the round-robin head) could not issue.  If every
  // warp of the scheduler has retired the slot is drain, not a stall.
  StallReason slot_reason = StallReason::kIdle;
  std::string_view slot_where = "drain";
  int slot_warp = -1;
  for (int step = 0; step < n && !issued; ++step) {
    int p = rotate_[static_cast<std::size_t>(s)] + step;
    if (p >= n) p -= n;
    Warp& w = warps_[static_cast<std::size_t>(list[static_cast<std::size_t>(p)])];
    if (w.done) continue;
    StallReason why = StallReason::kNone;
    std::string_view where;
    if (try_issue_traced(w, now_, why, where)) {
      issued = true;
      rotate_[static_cast<std::size_t>(s)] = p + 1 == n ? 0 : p + 1;
      if (w.done) {
        --live_;
        auto& remaining = block_live_[static_cast<std::size_t>(w.block)];
        if (--remaining == 0) {
          block_retire_[static_cast<std::size_t>(w.block)] = now_;
        }
      }
    } else if (slot_warp < 0 && why != StallReason::kNone) {
      slot_warp = w.id;
      slot_reason = why;
      slot_where = where;
    }
  }
  if (!issued) {
    ++result_.stall_cycles;
    trace_->on_event({trace::EventKind::kStall, slot_reason, now_, 1.0,
                      sm_id_, slot_warp, -1, slot_where});
  }
  return issued;
}

void SmCore::resolve_async_waits() {
  // The epoch barrier that just landed may have patched scoreboard slots
  // from +inf down to finite times (mem::DeferredFixup), the one event that
  // can move an issue gate *backwards* — drop every cached wake bound.
  for (const auto& w : warps_) {
    wake_[static_cast<std::size_t>(w.id)] =
        (w.done || w.at_barrier) ? kInf : 0.0;
  }
  for (const auto& wait : async_waits_) {
    double until = wait.floor;
    for (std::uint32_t g = 0; g < wait.group_count; ++g) {
      const AsyncSlot* group =
          wait_groups_[static_cast<std::size_t>(wait.group_begin + g)];
      HSIM_ASSERT_MSG(group->outstanding == 0,
                      "async group with %d unresolved tickets at barrier",
                      group->outstanding);
      until = std::max(until, group->known);
    }
    auto& w = warps_[static_cast<std::size_t>(wait.warp)];
    w.blocked_until = until;  // block_reason stays kTmaWait
    if (!w.done && !w.at_barrier) {
      wake_[static_cast<std::size_t>(wait.warp)] = until;
    }
  }
  async_waits_.clear();
  wait_groups_.clear();
  // Every deferred access from previous epochs has a resolved ticket once
  // the barrier lands, so the instructions it kept in flight retire here.
  if (pmu_ != nullptr && pmu_pending_retire_ != 0) {
    pmu_->add(prof::Counter::kInstRetired,
              static_cast<double>(pmu_pending_retire_));
    pmu_pending_retire_ = 0;
  }
}

RunResult SmCore::finalize() {
  // Completion: the last value becomes visible when its register is ready,
  // and a warp that retired while parked on an async wait keeps the kernel
  // alive until the wait resolves.
  double finish = now_;
  for (const double t : reg_ready_store_) finish = std::max(finish, t);
  for (const auto& w : warps_) finish = std::max(finish, w.blocked_until);
  // Outstanding store traffic drains before the kernel retires.
  finish = std::max(finish, units_->dsm.next_free());
  finish = std::max(finish, units_->lsu.next_free());
  // An instruction with no destination register (a store, a rd-less
  // atomic) still occupies its unit until completion; the kernel is not
  // over while any issued instruction is in flight.
  finish = std::max(finish, last_completion_);
  HSIM_ASSERT_MSG(std::isfinite(finish),
                  "deferred access unresolved at finalize (finish=%g)", finish);
  result_.cycles = finish;
  return result_;
}

ArchState SmCore::export_arch() const {
  HSIM_ASSERT(program_ != nullptr);
  ArchState arch;
  arch.num_regs = num_regs_;
  arch.warps.reserve(warps_.size());
  for (const auto& w : warps_) {
    arch.warps.push_back({static_cast<std::uint64_t>(w.pc), w.iteration,
                          w.done, w.at_barrier});
  }
  arch.lanes = lane_store_;
  if (shared_ != nullptr) {
    const auto bytes = shared_->bytes();
    arch.shared.assign(bytes.begin(), bytes.end());
  }
  return arch;
}

void SmCore::import_arch(const ArchState& arch) {
  HSIM_ASSERT(program_ != nullptr);
  HSIM_ASSERT_MSG(arch.num_regs == num_regs_, "arch regs %d vs core %d",
                  arch.num_regs, num_regs_);
  HSIM_ASSERT(arch.warps.size() == warps_.size());
  HSIM_ASSERT(arch.lanes.size() == lane_store_.size());
  std::copy(arch.lanes.begin(), arch.lanes.end(), lane_store_.begin());
  const auto regs = static_cast<std::size_t>(num_regs_);
  for (std::size_t i = 0; i < warps_.size(); ++i) {
    auto& w = warps_[i];
    const auto& a = arch.warps[i];
    // Importing a live warp into an empty slot would corrupt the per-block
    // accounting: callers launch_block() every slot first.
    HSIM_ASSERT_MSG(!w.done || a.done, "warp %zu live in arch but not resident", i);
    w.pc = static_cast<std::size_t>(a.pc);
    w.iteration = a.iteration;
    w.at_barrier = a.at_barrier;
    w.blocked_until = now_;
    w.block_reason = StallReason::kBarrier;
    w.last_issue_cycle = now_ - 1.0;
    // The functional model has no timing: every register is ready now, and
    // the warmup replay rebuilds realistic scoreboard pressure.
    std::fill_n(w.reg_ready, regs, now_);
    std::fill_n(w.reg_reason, regs, StallReason::kScoreboardRaw);
    if (a.done && !w.done) {
      w.done = true;
      --live_;
      auto& remaining = block_live_[static_cast<std::size_t>(w.block)];
      if (--remaining == 0) {
        block_retire_[static_cast<std::size_t>(w.block)] = now_;
      }
    }
    wake_[i] = (w.done || w.at_barrier) ? kInf : now_;
    if (w.at_barrier) mark_barrier_dirty(w.block);
  }
  if (!arch.shared.empty()) {
    shared().import_bytes(
        {arch.shared.data(), arch.shared.size()});
  }
}

void SmCore::save_state(common::StateWriter& w) const {
  HSIM_ASSERT(program_ != nullptr);
  // Deferred full-chip tickets hold raw pointers into scoreboards across
  // the fabric; a snapshot between their creation and resolution is not a
  // self-contained state.  The single-SM MemorySystem never defers.
  HSIM_ASSERT(async_waits_.empty() && wait_groups_.empty() && !access_pending_);
  w.marker(0x534d4352u);  // "SMCR"
  w.f64(now_);
  w.i64(live_);
  w.f64(last_completion_);
  w.u64(pmu_pending_retire_);
  w.f64(result_.cycles);
  w.u64(result_.instructions_issued);
  w.u64(result_.stall_cycles);
  w.u64(result_.mem_transactions);
  w.u64(result_.warps_retired);
  for (const int r : rotate_) w.i64(r);
  w.f64_vec(reg_ready_store_);
  {
    std::vector<std::uint8_t> reasons(reg_reason_store_.size());
    for (std::size_t i = 0; i < reasons.size(); ++i) {
      reasons[i] = static_cast<std::uint8_t>(reg_reason_store_[i]);
    }
    w.blob(reasons);
  }
  w.u64_vec(lane_store_);
  w.f64_vec(wake_);
  w.u64(block_live_.size());
  for (const int v : block_live_) w.i64(v);
  w.f64_vec(block_retire_);
  w.u64(barrier_dirty_.size());
  for (const int b : barrier_dirty_) w.i64(b);
  w.blob(barrier_marked_);
  w.u64(warps_.size());
  for (const auto& warp : warps_) {
    w.u64(warp.pc);
    w.u32(warp.iteration);
    w.boolean(warp.done);
    w.boolean(warp.at_barrier);
    w.f64(warp.blocked_until);
    w.u8(static_cast<std::uint8_t>(warp.block_reason));
    w.f64(warp.last_issue_cycle);
    w.u64(warp.async_slots.size());
    for (const auto& slot : warp.async_slots) {
      w.f64(slot.known);
      w.i64(slot.outstanding);
    }
    w.u64(warp.async_used);
    const auto slot_index = [&](const AsyncSlot* s) -> std::uint64_t {
      if (s == nullptr) return ~std::uint64_t{0};
      for (std::size_t k = 0; k < warp.async_slots.size(); ++k) {
        if (&warp.async_slots[k] == s) return k;
      }
      HSIM_ASSERT_MSG(false, "async group outside its warp's arena");
      return ~std::uint64_t{0};
    };
    w.u64(slot_index(warp.async_open));
    w.u64(warp.async_groups.size());
    for (const auto* g : warp.async_groups) w.u64(slot_index(g));
    w.u64(warp.async_head);
  }
  const auto& u = *units_;
  for (const auto& p : u.fma) p.save_state(w);
  for (const auto& p : u.alu) p.save_state(w);
  u.fp64.save_state(w);
  for (const auto& p : u.dpx) p.save_state(w);
  u.tensor.save_state(w);
  u.lsu.save_state(w);
  u.dsm.save_state(w);
  w.boolean(shared_ != nullptr);
  if (shared_ != nullptr) shared_->save_state(w);
}

void SmCore::load_state(common::StateReader& r) {
  HSIM_ASSERT(program_ != nullptr);  // begin() must precede load_state()
  if (!r.expect_marker(0x534d4352u)) return;
  now_ = r.f64();
  live_ = static_cast<int>(r.i64());
  last_completion_ = r.f64();
  pmu_pending_retire_ = r.u64();
  result_.cycles = r.f64();
  result_.instructions_issued = r.u64();
  result_.stall_cycles = r.u64();
  result_.mem_transactions = r.u64();
  result_.warps_retired = r.u64();
  for (int& rot : rotate_) rot = static_cast<int>(r.i64());
  const auto ready = r.f64_vec();
  const auto reasons = r.blob();
  const auto lanes = r.u64_vec();
  const auto wake = r.f64_vec();
  if (!r.expect(ready.size() == reg_ready_store_.size() &&
                reasons.size() == reg_reason_store_.size() &&
                lanes.size() == lane_store_.size() &&
                wake.size() == wake_.size())) {
    return;
  }
  std::copy(ready.begin(), ready.end(), reg_ready_store_.begin());
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    reg_reason_store_[i] = static_cast<StallReason>(reasons[i]);
  }
  std::copy(lanes.begin(), lanes.end(), lane_store_.begin());
  std::copy(wake.begin(), wake.end(), wake_.begin());
  if (!r.expect(r.u64() == block_live_.size())) return;
  for (int& v : block_live_) v = static_cast<int>(r.i64());
  const auto retire = r.f64_vec();
  if (!r.expect(retire.size() == block_retire_.size())) return;
  std::copy(retire.begin(), retire.end(), block_retire_.begin());
  const std::uint64_t dirty = r.u64();
  if (!r.expect(dirty <= block_live_.size())) return;
  barrier_dirty_.clear();
  for (std::uint64_t i = 0; i < dirty; ++i) {
    barrier_dirty_.push_back(static_cast<int>(r.i64()));
  }
  const auto marked = r.blob();
  if (!r.expect(marked.size() == barrier_marked_.size())) return;
  std::copy(marked.begin(), marked.end(), barrier_marked_.begin());
  if (!r.expect(r.u64() == warps_.size())) return;
  for (auto& warp : warps_) {
    warp.pc = static_cast<std::size_t>(r.u64());
    warp.iteration = r.u32();
    warp.done = r.boolean();
    warp.at_barrier = r.boolean();
    warp.blocked_until = r.f64();
    warp.block_reason = static_cast<StallReason>(r.u8());
    warp.last_issue_cycle = r.f64();
    const std::uint64_t slots = r.u64();
    if (!r.expect(slots < (1u << 20))) return;  // sanity vs corrupt counts
    warp.async_slots.resize(static_cast<std::size_t>(slots));
    for (auto& slot : warp.async_slots) {
      slot.known = r.f64();
      slot.outstanding = static_cast<int>(r.i64());
    }
    warp.async_used = static_cast<std::size_t>(r.u64());
    const auto slot_at = [&](std::uint64_t index) -> AsyncSlot* {
      if (index == ~std::uint64_t{0}) return nullptr;
      if (!r.expect(index < warp.async_slots.size())) return nullptr;
      return &warp.async_slots[static_cast<std::size_t>(index)];
    };
    warp.async_open = slot_at(r.u64());
    const std::uint64_t groups = r.u64();
    if (!r.expect(groups <= warp.async_slots.size())) return;
    warp.async_groups.clear();
    for (std::uint64_t g = 0; g < groups; ++g) {
      warp.async_groups.push_back(slot_at(r.u64()));
    }
    warp.async_head = static_cast<std::size_t>(r.u64());
    if (!r.expect(warp.async_head <= warp.async_groups.size())) return;
  }
  auto& u = *units_;
  for (auto& p : u.fma) p.load_state(r);
  for (auto& p : u.alu) p.load_state(r);
  u.fp64.load_state(r);
  for (auto& p : u.dpx) p.load_state(r);
  u.tensor.load_state(r);
  u.lsu.load_state(r);
  u.dsm.load_state(r);
  if (r.boolean()) shared().load_state(r);
  async_waits_.clear();
  wait_groups_.clear();
  access_pending_ = false;
}

bool SmCore::try_issue_traced(Warp& warp, double now, trace::StallReason& why,
                              std::string_view& where) {
  const MicroOp& m = decoded_[warp.pc];
  where = m.name;
  if (warp.at_barrier) {
    why = StallReason::kBarrier;
    return false;
  }
  if (warp.blocked_until > now + kEps) {
    why = warp.block_reason;
    return false;
  }
  if (warp.last_issue_cycle >= now - kEps) {
    why = StallReason::kNone;  // dual issue, not modelled — not a stall
    return false;
  }

  // Source operands must be ready; a wait inherits the classification of
  // the pending producer (scoreboard, memory level, bank conflict, ...).
  for (int k = 0; k < m.num_srcs; ++k) {
    const int src = m.srcs[static_cast<std::size_t>(k)];
    if (warp.reg_ready[static_cast<std::size_t>(src)] > now + kEps) {
      why = warp.reg_reason[static_cast<std::size_t>(src)];
      return false;
    }
  }
  // In-order issue: the destination's previous write must have retired
  // enough to rename; we conservatively require WAW ordering.
  if (m.waw_check &&
      warp.reg_ready[static_cast<std::size_t>(m.rd)] > now + kEps) {
    why = StallReason::kScoreboardWaw;
    return false;
  }

  // Unit availability.
  if (const sim::PipelinedUnit* pipe =
          m.pipe[static_cast<std::size_t>(warp.scheduler)];
      pipe != nullptr && pipe->next_free() > now + kEps) {
    why = m.busy_reason;
    where = m.busy_where;
    return false;
  }
  why = StallReason::kNone;
  issue_at(warp, m, now);
  return true;
}

// Post-gate issue body: functional execute, scoreboard/fixup bookkeeping,
// trace events, control flow.  Shared by the fast and traced paths.
void SmCore::issue_at(Warp& warp, const MicroOp& m, double now) {
  value_reason_ = StallReason::kScoreboardRaw;
  access_pending_ = false;
  access_floor_ = now;
  const double completion = execute(warp, m, now);
  if (m.rd != isa::kRegNone) {
    warp.reg_ready[static_cast<std::size_t>(m.rd)] = completion;
    warp.reg_reason[static_cast<std::size_t>(m.rd)] = value_reason_;
  }
  const bool deferred = access_pending_;
  if (access_pending_) {
    // Deferred full-chip access: the provisional completion is +inf; the
    // epoch-barrier resolution patches the scoreboard slot (and the kernel
    // drain tracker) with the arbitrated time.
    mem::DeferredFixup fixup;
    if (m.rd != isa::kRegNone) {
      fixup.time_slot = &warp.reg_ready[static_cast<std::size_t>(m.rd)];
      fixup.reason_slot = &warp.reg_reason[static_cast<std::size_t>(m.rd)];
    }
    fixup.floor = access_floor_;
    fixup.drain_slot = &last_completion_;
    mem_->attach_fixup(fixup);
    access_pending_ = false;
  }
  warp.last_issue_cycle = now;
  if (std::isfinite(completion)) {
    last_completion_ = std::max(last_completion_, completion);
  } else {
    last_completion_ = std::max(last_completion_, access_floor_);
  }
  ++result_.instructions_issued;
  if (pmu_ != nullptr) {
    pmu_->inc(prof::Counter::kInstIssued);
    pmu_->inc_issued_class(m.unit_class);
    if (m.flops != 0.0) pmu_->add(prof::Counter::kFlops, m.flops);
    if (m.unit_class == static_cast<std::uint8_t>(isa::UnitClass::kTensor)) {
      // The pipe is busy for one initiation interval per back-to-back issue.
      pmu_->add(prof::Counter::kTensorActiveCycles, units_->tensor_ii);
    }
    // Retirement: known-completion instructions retire at issue (the model
    // resolves them functionally); deferred full-chip accesses retire when
    // the epoch barrier lands their tickets (resolve_async_waits).
    if (deferred) {
      ++pmu_pending_retire_;
    } else {
      pmu_->inc(prof::Counter::kInstRetired);
    }
  }
  if (trace_ != nullptr) {
    // A deferred access has no completion yet; report the L2-hit latency as
    // a provisional lower bound on the issue span.
    const double span = std::isfinite(completion)
                            ? completion - now
                            : device_.memory.l2_hit_latency;
    trace_->on_event({trace::EventKind::kIssue, StallReason::kNone, now, span,
                      sm_id_, warp.id, static_cast<std::int32_t>(warp.pc),
                      m.name});
  }

  // Advance control flow.
  if (m.op == isa::Opcode::kExit) {
    warp.done = true;
    ++result_.warps_retired;
    if (pmu_ != nullptr) pmu_->inc(prof::Counter::kWarpsRetired);
    mark_barrier_dirty(warp.block);
    wake_[static_cast<std::size_t>(warp.id)] = kInf;
    if (trace_ != nullptr) {
      trace_->on_event({trace::EventKind::kRetire, StallReason::kNone, now,
                        0.0, sm_id_, warp.id,
                        static_cast<std::int32_t>(warp.pc), "exit"});
    }
    return;
  }
  if (m.op == isa::Opcode::kBarSync) {
    warp.at_barrier = true;
    mark_barrier_dirty(warp.block);
  }
  ++warp.pc;
  if (warp.pc >= prog_size_) {
    warp.pc = 0;
    ++warp.iteration;
    if (warp.iteration >= prog_iterations_) {
      warp.done = true;
      ++result_.warps_retired;
      if (pmu_ != nullptr) pmu_->inc(prof::Counter::kWarpsRetired);
      mark_barrier_dirty(warp.block);
      if (trace_ != nullptr) {
        trace_->on_event({trace::EventKind::kRetire, StallReason::kNone, now,
                          0.0, sm_id_, warp.id,
                          static_cast<std::int32_t>(prog_size_ - 1),
                          "retire"});
      }
    }
  }
  // Refresh the cached wake bound for the *next* instruction: the dual-issue
  // gate forbids a reissue this cycle and blocked_until is already final for
  // this issue, so max(now + 1, blocked_until) is an exact lower bound (the
  // next instruction's operands can only push it later).
  wake_[static_cast<std::size_t>(warp.id)] =
      (warp.done || warp.at_barrier) ? kInf
                                     : std::max(now + 1.0, warp.blocked_until);
}

double SmCore::execute(Warp& warp, const MicroOp& m, double now) {
  using isa::Opcode;
  const auto sched = static_cast<std::size_t>(warp.scheduler);

  // Unreferenced operands read from a shared zero block so the lane loop is
  // three contiguous streams with no per-lane branches or index math.
  static constexpr std::array<std::uint64_t, kLanes> kZeroLanes{};
  const auto lanes_of = [&](int r) -> const std::uint64_t* {
    return r == isa::kRegNone
               ? kZeroLanes.data()
               : warp.lanes + static_cast<std::size_t>(r) * kLanes;
  };
  const auto for_lanes = [&](auto&& fn) {
    if (m.rd == isa::kRegNone) return;
    const std::uint64_t* pa = lanes_of(m.ra);
    const std::uint64_t* pb = lanes_of(m.rb);
    const std::uint64_t* pc = lanes_of(m.rc);
    std::uint64_t* pd = warp.lanes + static_cast<std::size_t>(m.rd) * kLanes;
    for (int l = 0; l < kLanes; ++l) {
      pd[l] = fn(pa[l], pb[l], pc[l]);
    }
  };

  switch (m.op) {
    case Opcode::kNop:
      return now;
    case Opcode::kMov:
      for_lanes([&](std::uint64_t, std::uint64_t, std::uint64_t) {
        return static_cast<std::uint64_t>(m.imm);
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kIAdd3:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return a + b + c;
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kIMad:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return a * b + c;
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kIMnMx:
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        const auto x = as_s32(a), y = as_s32(b);
        return static_cast<std::uint64_t>(
            static_cast<std::uint32_t>((m.imm & 1) ? std::max(x, y) : std::min(x, y)));
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kVIMnMx: {
      // Hopper fused DPX op: rd = minmax(ra + rb, rc), optional relu.  The
      // pre-decoded pipe already folded hardware-DPX vs. ALU emulation.
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        const std::int64_t sum =
            static_cast<std::int64_t>(as_s32(a)) + static_cast<std::int64_t>(as_s32(b));
        const auto clamped = static_cast<std::int32_t>(
            std::clamp<std::int64_t>(sum, std::numeric_limits<std::int32_t>::min(),
                                     std::numeric_limits<std::int32_t>::max()));
        std::int32_t r = (m.imm & 1) ? std::max(clamped, as_s32(c))
                                     : std::min(clamped, as_s32(c));
        if (m.imm & 2) r = std::max(r, 0);
        return static_cast<std::uint64_t>(static_cast<std::uint32_t>(r));
      });
      return m.pipe[sched]->issue(now);
    }
    case Opcode::kLop3:
      for_lanes([&](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        switch (m.imm) {
          case 1: return a | b;
          case 2: return a ^ b;
          default: return a & b;
        }
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kShf:
      for_lanes([&](std::uint64_t a, std::uint64_t, std::uint64_t) {
        return a << (m.imm & 63);
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kPopc:
      for_lanes([](std::uint64_t a, std::uint64_t, std::uint64_t) {
        return static_cast<std::uint64_t>(std::popcount(a));
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kFAdd:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return canon_f32(as_f32(a) + as_f32(b));
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kFMul:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return canon_f32(as_f32(a) * as_f32(b));
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kFFma:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return canon_f32(as_f32(a) * as_f32(b) + as_f32(c));
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kHAdd2:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        using num::fp16;
        std::uint64_t out = 0;
        for (int half = 0; half < 2; ++half) {
          const auto av = fp16::from_bits(static_cast<std::uint16_t>(a >> (16 * half)));
          const auto bv = fp16::from_bits(static_cast<std::uint16_t>(b >> (16 * half)));
          const float sum = av.to_float() + bv.to_float();
          const std::uint16_t bits =
              std::isnan(sum) ? std::uint16_t{0x7fff} : fp16(sum).bits();
          out |= static_cast<std::uint64_t>(bits) << (16 * half);
        }
        return out;
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kDAdd:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return canon_f64(as_f64(a) + as_f64(b));
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kDMul:
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t) {
        return canon_f64(as_f64(a) * as_f64(b));
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kHMma:
      // Fragment math stands in as a per-lane FP32 FMA; the timing is the
      // calibrated tensor-core cadence/latency.
      for_lanes([](std::uint64_t a, std::uint64_t b, std::uint64_t c) {
        return canon_f32(as_f32(a) * as_f32(b) + as_f32(c));
      });
      return m.pipe[sched]->issue(now);
    case Opcode::kClock:
      for_lanes([&](std::uint64_t, std::uint64_t, std::uint64_t) {
        return static_cast<std::uint64_t>(now);
      });
      return now;  // clock() reads the counter combinationally
    case Opcode::kBarSync:
      return now;
    case Opcode::kExit:
      return now;
    case Opcode::kCpAsyncCommit:
      warp.async_groups.push_back(warp.async_open);
      warp.async_open = acquire_async_slot(warp);
      return now;
    case Opcode::kCpAsyncWait: {
      // cp.async.wait_group N: wait until at most N groups are in flight.
      const auto keep = static_cast<std::size_t>(std::max<std::int64_t>(m.imm, 0));
      double wait_until = now;
      const auto group_begin = static_cast<std::uint32_t>(wait_groups_.size());
      while (warp.async_groups.size() - warp.async_head > keep) {
        AsyncSlot* group = warp.async_groups[warp.async_head++];
        if (group->outstanding > 0) {
          wait_groups_.push_back(group);  // value lands at the next barrier
        } else {
          wait_until = std::max(wait_until, group->known);
        }
      }
      const auto group_count =
          static_cast<std::uint32_t>(wait_groups_.size()) - group_begin;
      if (group_count == 0) {
        warp.blocked_until = wait_until;
      } else {
        warp.blocked_until = kInf;
        async_waits_.push_back(
            AsyncWait{warp.id, wait_until, group_begin, group_count});
      }
      warp.block_reason = StallReason::kTmaWait;
      return wait_until;
    }
    default:
      return memory_op(warp, m, now);
  }
}

// Fold an async copy's completion into the warp's open group.  `ready` is
// the finite part (local completion plus the shared-memory write hop); when
// `pending`, the deferred tickets' completions are folded in at the next
// epoch barrier via the registered fixup.
void SmCore::fold_async(Warp& warp, double ready, bool pending) {
  auto* slot = warp.async_open;
  slot->known = std::max(slot->known, ready);
  if (pending) {
    mem::DeferredFixup fixup;
    fixup.time_slot = &slot->known;
    fixup.offset = device_.memory.smem_latency;
    fixup.outstanding = &slot->outstanding;
    // Like deferred stores, in-flight async traffic must drain before the
    // kernel retires even when no wait ever observes the group.
    fixup.drain_slot = &last_completion_;
    slot->outstanding += mem_->attach_fixup(fixup);
  }
}

double SmCore::memory_op(Warp& warp, const MicroOp& m, double now) {
  using isa::Opcode;
  auto& u = *units_;
  ++result_.mem_transactions;

  // Gather per-lane byte addresses from ra (+imm offset).
  std::array<std::uint64_t, kLanes> addrs{};
  for (int l = 0; l < kLanes; ++l) {
    addrs[static_cast<std::size_t>(l)] =
        (m.ra == isa::kRegNone ? 0 : warp.lane(m.ra, l)) +
        static_cast<std::uint64_t>(m.imm);
  }

  const auto load_word = [&](std::uint64_t addr) -> std::uint64_t {
    const std::uint64_t index = addr / 8;
    if (index < global_.size()) return global_[index];
    return 0;
  };

  switch (m.op) {
    case Opcode::kTmaLoad: {
      // Bulk tensor copy: the TMA engine, not the threads, generates the
      // addresses — only the block's elected warp issues it, and it costs a
      // single LSU slot regardless of box size (imm = box bytes).
      const int warps_per_block = std::max(barrier_target_, 1);
      if (warp.id % warps_per_block != 0) return now + 1;  // non-elected: nop
      u.lsu.issue(now);
      const auto bytes = static_cast<std::uint32_t>(std::max<std::int64_t>(m.imm, 32));
      if (pmu_ != nullptr) {
        pmu_->add(prof::Counter::kTmaBytes, static_cast<double>(bytes));
      }
      double completion;
      bool pending = false;
      if (mem_ == nullptr) {
        completion = now + device_.memory.dram_latency;
      } else {
        const std::uint64_t base = m.ra == isa::kRegNone ? 0 : warp.lane(m.ra, 0);
        completion = now;
        // The engine streams the box in 128-byte lines straight to smem.
        for (std::uint32_t off = 0; off < bytes; off += 128) {
          const double t =
              mem_->warp_transaction(sm_id_, base + off,
                                     std::min<std::uint32_t>(128, bytes - off),
                                     16, mem::MemSpace::kGlobalCg, now);
          if (mem_->last_pending()) {
            pending = true;
          } else {
            completion = std::max(completion, t);
          }
        }
      }
      fold_async(warp, completion + device_.memory.smem_latency, pending);
      return now + 1;
    }
    case Opcode::kLdgCa:
    case Opcode::kLdgCg:
    case Opcode::kStg:
    case Opcode::kCpAsync: {
      const auto space = m.op == Opcode::kLdgCa || m.op == Opcode::kCpAsync
                             ? mem::MemSpace::kGlobalCa
                             : mem::MemSpace::kGlobalCg;
      // Functional load.
      if (m.rd != isa::kRegNone &&
          (m.op == Opcode::kLdgCa || m.op == Opcode::kLdgCg)) {
        for (int l = 0; l < kLanes; ++l) {
          warp.lane(m.rd, l) = load_word(addrs[static_cast<std::size_t>(l)]);
        }
      }
      u.lsu.issue(now);  // LSU dispatch slot
      double completion = now;
      value_reason_ = StallReason::kMemL1;
      if (mem_ == nullptr) {
        completion = now + device_.memory.l1_hit_latency;
      } else {
        // Coalesce lanes into 128-byte-line transactions.
        std::array<std::uint64_t, kLanes> lines{};
        int num_lines = 0;
        for (int l = 0; l < kLanes; ++l) {
          const std::uint64_t line = addrs[static_cast<std::size_t>(l)] / 128;
          bool seen = false;
          for (int j = 0; j < num_lines; ++j) {
            if (lines[static_cast<std::size_t>(j)] == line) {
              seen = true;
              break;
            }
          }
          if (!seen) lines[static_cast<std::size_t>(num_lines++)] = line;
        }
        if (num_lines == 1 && m.access_bytes <= 8) {
          // Dependent/narrow access: pure latency path.
          completion = mem_->load(sm_id_, addrs[0], space, now).ready_time;
          value_reason_ = mem::stall_reason_of(mem_->last_access());
          access_pending_ = mem_->last_pending();
        } else {
          // A multi-line warp transaction classifies by the deepest level
          // any of its lines had to reach.
          auto deepest = mem::MemLevel::kL1;
          double finite = completion;
          for (int j = 0; j < num_lines; ++j) {
            const std::uint64_t base = lines[static_cast<std::size_t>(j)] * 128;
            const double t =
                mem_->warp_transaction(sm_id_, base, 128,
                                       static_cast<int>(m.access_bytes), space, now);
            if (mem_->last_pending()) {
              access_pending_ = true;
            } else {
              finite = std::max(finite, t);
            }
            deepest = std::max(deepest, mem_->last_access().deepest);
          }
          access_floor_ = finite;
          completion = access_pending_ ? kInf : finite;
          value_reason_ = mem::stall_reason_of(mem::AccessClass{deepest, false});
        }
      }
      if (m.op == Opcode::kCpAsync) {
        // Asynchronous: the warp is not blocked; completion lands in the
        // open async group (plus the shared-memory write hop).
        if (pmu_ != nullptr) {
          pmu_->add(prof::Counter::kCpAsyncBytes,
                    32.0 * static_cast<double>(m.access_bytes));
        }
        const double finite = access_pending_ ? access_floor_ : completion;
        fold_async(warp, finite + device_.memory.smem_latency, access_pending_);
        access_pending_ = false;
        return now + 1;
      }
      return completion;
    }
    case Opcode::kLds:
    case Opcode::kSts:
    case Opcode::kAtomSharedAdd: {
      auto& smem = shared();
      std::array<std::uint32_t, kLanes> byte_addrs{};
      for (int l = 0; l < kLanes; ++l) {
        byte_addrs[static_cast<std::size_t>(l)] = static_cast<std::uint32_t>(
            addrs[static_cast<std::size_t>(l)] % smem.size());
      }
      const int degree = smem.conflict_degree(byte_addrs, now, sm_id_, warp.id);
      value_reason_ = degree > 1 ? StallReason::kSmemBankConflict
                                 : StallReason::kMemShared;
      const double ii = static_cast<double>(degree);
      const double latency =
          device_.memory.smem_latency + static_cast<double>(degree - 1);
      const double completion = u.lsu.issue(now, ii, latency);
      const auto src_val = [&](int r, int l) -> std::uint64_t {
        return r == isa::kRegNone ? 0 : warp.lane(r, l);
      };
      if (m.op == Opcode::kLds && m.rd != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          warp.lane(m.rd, l) = smem.load_u32(byte_addrs[static_cast<std::size_t>(l)]);
        }
      } else if (m.op == Opcode::kSts && m.ra != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          smem.store_u32(byte_addrs[static_cast<std::size_t>(l)],
                         static_cast<std::uint32_t>(src_val(m.rb, l)));
        }
      } else if (m.op == Opcode::kAtomSharedAdd) {
        for (int l = 0; l < kLanes; ++l) {
          const auto old = smem.atomic_add_u32(
              byte_addrs[static_cast<std::size_t>(l)],
              static_cast<std::uint32_t>(src_val(m.rb, l)));
          if (m.rd != isa::kRegNone) warp.lane(m.rd, l) = old;
        }
      }
      return completion;
    }
    case Opcode::kMapa:
      // Address mapping is a cheap ALU-class operation.
      if (m.rd != isa::kRegNone) {
        for (int l = 0; l < kLanes; ++l) {
          warp.lane(m.rd, l) = addrs[static_cast<std::size_t>(l)];
        }
      }
      return m.pipe[static_cast<std::size_t>(warp.scheduler)]->issue(now);
    case Opcode::kLdsRemote:
    case Opcode::kStsRemote:
    case Opcode::kAtomRemoteAdd: {
      if (!device_.dsm.available) {
        // Without DSM these fall back to going through L2.
        value_reason_ = StallReason::kMemL2;
        return u.lsu.issue(now, 1.0, device_.memory.l2_hit_latency);
      }
      value_reason_ = StallReason::kDsmHop;
      const double bytes = 32.0 * static_cast<double>(m.access_bytes);
      const double ii = bytes / units_->dsm_bytes_per_clk;
      return u.dsm.issue(now, ii, ii + units_->dsm_lat);
    }
    default:
      return now;
  }
}

}  // namespace hsim::sm
