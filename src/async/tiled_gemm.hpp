// The paper's asynchronous-data-movement benchmark (CUDA sample
// `globalToShmemAsyncCopy`): tiled matrix multiplication C = A x B with
// K = 2048, comparing
//   * SyncShare  — classic tiling: ldg -> sts -> barrier -> compute;
//   * AsyncPipe  — a two-stage cp.async pipeline with doubled shared-memory
//     buffers that overlaps the next tile's copy with this tile's compute;
//   * TmaPipe    — the same pipeline but with the Hopper TMA engine moving
//     whole tiles under one elected-warp instruction (an extension beyond
//     the paper's Ampere-era sample).
// Both variants are emitted as micro-ISA programs and executed on the SM
// timing simulator, so the effect the paper measures — async copies winning
// at low warp occupancy and losing their edge (even inverting) at high
// occupancy — emerges from the pipeline model rather than being assumed.
#pragma once

#include "arch/device.hpp"
#include "common/status.hpp"
#include "isa/program.hpp"

namespace hsim::async {

enum class CopyVariant : std::uint8_t { kSyncShare, kAsyncPipe, kTmaPipe };

constexpr std::string_view to_string(CopyVariant v) noexcept {
  switch (v) {
    case CopyVariant::kSyncShare: return "SyncShare";
    case CopyVariant::kAsyncPipe: return "AsyncPipe";
    case CopyVariant::kTmaPipe: return "TmaPipe";
  }
  return "?";
}

struct GemmWorkload {
  int block_dim = 16;   // block is block_dim x block_dim threads
  int k = 2048;         // A width == B height (fixed in the paper)
  int stages = 2;       // async pipeline depth
};

/// Emit the per-thread instruction stream for one thread block of the
/// workload.  Addresses stride so that every tile load touches fresh global
/// lines (as the real kernel's do).
isa::Program build_program(const GemmWorkload& workload, CopyVariant variant);

struct GemmPoint {
  int blocks_per_sm_launched = 0;  // the tables' "Blocks/SM" axis
  double gflops = 0;
  double seconds = 0;
};

/// Run one (block size, launch size) cell: returns computational throughput
/// in GFLOPS as the paper's tables report.
Expected<GemmPoint> run_gemm(const arch::DeviceSpec& device,
                             const GemmWorkload& workload, CopyVariant variant,
                             int blocks_per_sm_launched);

/// Shared-memory bytes per block for the variant (the async pipeline
/// doubles the buffers, which can cost occupancy).
std::uint64_t smem_bytes(const GemmWorkload& workload, CopyVariant variant);

}  // namespace hsim::async
