// Fig 3: proportion of execution time of each operator when te.Linear runs
// an FP8 matrix multiplication — conversion dominates at small N.
#include <iostream>

#include "bench/bench_util.hpp"
#include "te/linear.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);
  const te::CostModel model(arch::h800_pcie());

  Table table("Fig 3: te.Linear FP8 operator time proportions on H800");
  table.set_header({"N", "gemm_fp8", "cast_input", "cast_weight", "amax",
                    "rescale", "total_us"});
  for (const std::int64_t n : {1024, 2048, 4096, 8192, 16384}) {
    const auto profile =
        te::linear_square(model, n, num::DType::kFp8E4M3);
    if (!profile) continue;
    const auto& p = profile.value();
    table.add_row({std::to_string(n),
                   fmt_fixed(100.0 * p.fraction("gemm_fp8"), 1) + "%",
                   fmt_fixed(100.0 * p.fraction("cast_input"), 1) + "%",
                   fmt_fixed(100.0 * p.fraction("cast_weight"), 1) + "%",
                   fmt_fixed(100.0 * p.fraction("amax"), 1) + "%",
                   fmt_fixed(100.0 * p.fraction("rescale"), 1) + "%",
                   fmt_fixed(p.total_seconds * 1e6, 1)});
  }
  bench::emit(table, opt);
  std::cout << "Paper finding: at small N the conversion operators dwarf the "
               "FP8 GEMM itself.\n";
  return 0;
}
