#include "common/log.hpp"

#include <gtest/gtest.h>

namespace hsim {
namespace {

TEST(Log, LevelRoundTrip) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  set_log_level(original);
}

TEST(Log, MacrosRespectThreshold) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kError);
  int evaluations = 0;
  // The stream expression must not be evaluated below the threshold.
  HSIM_DEBUG("side effect " << ++evaluations);
  HSIM_INFO("side effect " << ++evaluations);
  EXPECT_EQ(evaluations, 0);
  HSIM_ERROR("counted " << ++evaluations);
  EXPECT_EQ(evaluations, 1);
  set_log_level(original);
}

TEST(Log, EnvInitParsesKnownLevels) {
  const LogLevel original = log_level();
  ::setenv("HSIM_LOG", "debug", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  ::setenv("HSIM_LOG", "warn", 1);
  init_log_level_from_env();
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  ::unsetenv("HSIM_LOG");
  set_log_level(original);
}

// Single test for the unknown-value path: the one-time warning guard is
// process-wide, so the first bad call must be the captured one.
TEST(Log, EnvInitWarnsOnceOnUnknownValue) {
  const LogLevel original = log_level();
  set_log_level(LogLevel::kWarn);
  ::setenv("HSIM_LOG", "shouting", 1);
  testing::internal::CaptureStderr();
  init_log_level_from_env();
  init_log_level_from_env();  // one-time: the second call stays silent
  const std::string err = testing::internal::GetCapturedStderr();
  // Unknown values leave the level untouched.
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  ::unsetenv("HSIM_LOG");
  set_log_level(original);
  // The warning names the offending value and the accepted set, once.
  EXPECT_NE(err.find("shouting"), std::string::npos) << err;
  EXPECT_NE(err.find("debug, info, warn, error"), std::string::npos) << err;
  EXPECT_EQ(err.find("shouting", err.find("shouting") + 1), std::string::npos)
      << "warning emitted more than once: " << err;
}

}  // namespace
}  // namespace hsim
