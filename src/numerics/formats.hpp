// Software implementations of the reduced-precision floating-point formats
// used by Nvidia tensor cores: FP16 (E5M10), BF16 (E8M7), TF32 (E8M10),
// FP8 E4M3 and FP8 E5M2.
//
// Encoding follows IEEE-754 semantics (round-to-nearest-even, gradual
// underflow) except where the hardware deviates:
//   * E4M3 follows the OCP FP8 spec: no infinities, exponent field 0xF is
//     reused for finite values up to 448, and S.1111.111 is the only NaN.
//   * TF32 is a 19-bit format stored in a 32-bit container; conversion from
//     FP32 rounds the mantissa to 10 bits.
// Overflow policy is explicit because PTX cvt offers both: kSaturate models
// cvt.rn.satfinite (clamp to +-max finite), kPropagate models the default
// (overflow to inf for formats that have one, NaN for E4M3).
#pragma once

#include <bit>
#include <cstdint>
#include <limits>

namespace hsim::num {

/// What to do when a conversion overflows the target range.
enum class Overflow : std::uint8_t {
  kPropagate,  // -> inf (IEEE formats) or NaN (E4M3)
  kSaturate,   // -> +-max finite (PTX .satfinite)
};

/// Compile-time description of a small binary floating-point format.
struct FormatSpec {
  int exp_bits;
  int man_bits;
  int bias;
  bool has_inf;    // false only for E4M3
  const char* name;

  [[nodiscard]] constexpr int total_bits() const { return 1 + exp_bits + man_bits; }
  [[nodiscard]] constexpr int max_exp_field() const { return (1 << exp_bits) - 1; }
  /// Largest unbiased exponent usable for finite values.
  [[nodiscard]] constexpr int max_finite_exp() const {
    // IEEE formats reserve the top exponent field for inf/NaN; E4M3 uses it
    // for finite values (mantissa 0x7 at top exponent is NaN).
    return has_inf ? max_exp_field() - 1 - bias : max_exp_field() - bias;
  }
  [[nodiscard]] constexpr int min_normal_exp() const { return 1 - bias; }
  /// Largest finite magnitude, as a double (exact).
  [[nodiscard]] constexpr double max_finite() const {
    const int top_man = has_inf ? (1 << man_bits) - 1 : (1 << man_bits) - 2;
    double man = 1.0 + static_cast<double>(top_man) / static_cast<double>(1 << man_bits);
    double pow2 = 1.0;
    int e = max_finite_exp();
    for (int i = 0; i < (e >= 0 ? e : -e); ++i) pow2 *= 2.0;
    return e >= 0 ? man * pow2 : man / pow2;
  }
  /// Smallest positive subnormal, as a double (exact).
  [[nodiscard]] constexpr double min_subnormal() const {
    double v = 1.0;
    for (int i = 0; i < bias - 1 + man_bits; ++i) v /= 2.0;
    return v;
  }
};

inline constexpr FormatSpec kFp16Spec{5, 10, 15, true, "fp16"};
inline constexpr FormatSpec kBf16Spec{8, 7, 127, true, "bf16"};
inline constexpr FormatSpec kTf32Spec{8, 10, 127, true, "tf32"};
inline constexpr FormatSpec kE4m3Spec{4, 3, 7, false, "e4m3"};
inline constexpr FormatSpec kE5m2Spec{5, 2, 15, true, "e5m2"};

/// Encode an FP32 value into the bit pattern of `spec` (right-aligned in the
/// returned word).  Rounds to nearest-even, handles subnormals exactly.
std::uint32_t encode(float value, const FormatSpec& spec,
                     Overflow policy = Overflow::kPropagate) noexcept;

/// Decode a bit pattern of `spec` to FP32.  Exact: every value of every
/// supported format is representable in FP32.
float decode(std::uint32_t bits, const FormatSpec& spec) noexcept;

/// True if `bits` encodes NaN under `spec`.
bool is_nan_bits(std::uint32_t bits, const FormatSpec& spec) noexcept;
/// True if `bits` encodes +-inf under `spec` (always false for E4M3).
bool is_inf_bits(std::uint32_t bits, const FormatSpec& spec) noexcept;

/// Round an FP32 value through the format and back: the "storage" semantics
/// of loading/storing a tensor in this precision.
inline float round_through(float value, const FormatSpec& spec,
                           Overflow policy = Overflow::kPropagate) noexcept {
  return decode(encode(value, spec, policy), spec);
}

}  // namespace hsim::num
