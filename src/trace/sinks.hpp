// The two shipped TraceSinks.
//
//   * AggregatingSink — folds the event stream into a stall-cycle breakdown
//     histogram: cycles attributed per (stall reason, location) plus issue /
//     execute totals.  Deterministic: buckets live in std::maps keyed by
//     (reason, name), and `merge` combines sinks in caller-chosen (index)
//     order, so sweep points traced in parallel aggregate bit-identically
//     at any thread count — exactly like sim::CycleSample, into which a
//     breakdown converts via `to_cycle_sample` for CycleReport plumbing.
//
//   * ChromeTraceSink — ring-buffers raw events and renders a Chrome-trace /
//     Perfetto timeline: one track per warp slot with duration events for
//     issues and (coalesced) stalls, memory-side execute events on their
//     own track.  Bounded memory: the ring overwrites the oldest events and
//     reports how many were dropped.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "sim/accounting.hpp"
#include "trace/trace.hpp"

namespace hsim::trace {

class AggregatingSink final : public TraceSink {
 public:
  struct Bucket {
    double cycles = 0;
    std::uint64_t events = 0;
  };
  /// (reason, location) — location is the stalled instruction's mnemonic or
  /// the busy unit's name.
  using StallKey = std::pair<StallReason, std::string>;

  void on_event(const Event& event) override;

  /// Fold another sink's buckets into this one.  Callers must merge in a
  /// deterministic order (the sweep engine merges in point-index order).
  void merge(const AggregatingSink& other);

  [[nodiscard]] const std::map<StallKey, Bucket>& stalls() const noexcept {
    return stalls_;
  }
  [[nodiscard]] const std::map<std::string, Bucket>& executes() const noexcept {
    return executes_;
  }
  /// Total stall cycles across every reason, and the subset carrying a
  /// *named* reason (everything except idle-drain).
  [[nodiscard]] double stall_cycles() const noexcept { return stall_cycles_; }
  [[nodiscard]] double attributed_stall_cycles() const noexcept {
    return attributed_cycles_;
  }
  [[nodiscard]] std::uint64_t issues() const noexcept { return issues_; }
  [[nodiscard]] double issue_cycles() const noexcept { return issue_cycles_; }
  [[nodiscard]] std::uint64_t retires() const noexcept { return retires_; }
  [[nodiscard]] bool empty() const noexcept {
    return stalls_.empty() && executes_.empty() && issues_ == 0;
  }

  /// Render as per-unit cycle accounting: one "Stall.<reason>" unit per
  /// stall reason (cycles summed over locations) plus "Trace.<name>" units
  /// for execute buckets, so CycleReport / the sweep engine aggregate stall
  /// breakdowns across points with the existing deterministic machinery.
  [[nodiscard]] sim::CycleSample to_cycle_sample(std::string label,
                                                 double total_cycles) const;

  /// Human summary: top-N stall buckets by cycles, with shares of the total
  /// stall cycles and of `slot_cycles` (all scheduler issue slots) if > 0.
  void write_summary(std::ostream& os, double slot_cycles, int top_n) const;

 private:
  std::map<StallKey, Bucket> stalls_;
  std::map<std::string, Bucket> executes_;
  double stall_cycles_ = 0;
  double attributed_cycles_ = 0;
  double issue_cycles_ = 0;
  std::uint64_t issues_ = 0;
  std::uint64_t retires_ = 0;
};

/// Fans one event stream out to several sinks (aggregate + timeline in the
/// same run).  Not itself an owner; callers keep the sinks alive.
class TeeSink final : public TraceSink {
 public:
  void add(TraceSink* sink) {
    if (sink != nullptr) sinks_.push_back(sink);
  }
  void on_event(const Event& event) override {
    for (auto* sink : sinks_) sink->on_event(event);
  }

 private:
  std::vector<TraceSink*> sinks_;
};

class ChromeTraceSink final : public TraceSink {
 public:
  /// `capacity` bounds the ring buffer (events, not bytes).  The buffer
  /// grows lazily up to the cap, then wraps, overwriting the oldest events.
  explicit ChromeTraceSink(std::size_t capacity = 1 << 18);

  void on_event(const Event& event) override;

  [[nodiscard]] std::size_t size() const noexcept { return ring_.size(); }
  [[nodiscard]] std::uint64_t dropped() const noexcept { return dropped_; }

  /// Chrome-trace JSON ("traceEvents"): open in Perfetto (ui.perfetto.dev)
  /// or chrome://tracing.  One tid per warp slot, pid per SM; issues render
  /// as duration events named by mnemonic, consecutive same-reason stalls
  /// coalesce into one "stall:<reason>" span.
  void write(std::ostream& os) const;

 private:
  std::size_t capacity_;
  std::vector<Event> ring_;
  std::size_t head_ = 0;  // next overwrite position once saturated
  std::uint64_t dropped_ = 0;
};

}  // namespace hsim::trace
