// Cache discovery closes the loop: working-set sweeps must rediscover the
// configured capacities from the tag arrays' behaviour alone.
#include "core/discovery.hpp"

#include <gtest/gtest.h>

namespace hsim::core {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;

TEST(Discovery, SweepIsMonotoneNonDecreasing) {
  SweepConfig cfg;
  cfg.min_bytes = 16 << 10;
  cfg.max_bytes = 1 << 20;
  const auto sweep = latency_sweep(h800_pcie(), mem::MemSpace::kGlobalCa, cfg);
  ASSERT_GT(sweep.size(), 5u);
  for (std::size_t i = 1; i < sweep.size(); ++i) {
    EXPECT_GE(sweep[i].avg_latency, sweep[i - 1].avg_latency - 0.5) << i;
  }
}

TEST(Discovery, L1CapacityWithinOneSweepStep) {
  for (const auto* device : arch::all_devices()) {
    const auto level = discover_l1(*device);
    ASSERT_TRUE(level.has_value()) << device->name;
    const auto configured = device->memory.l1_bytes_per_sm;
    // Geometric sweep with factor 1.25: the discovered size is the last
    // point that still fit, so it lies within [configured/1.25, configured].
    EXPECT_LE(level.value().capacity_bytes, configured) << device->name;
    EXPECT_GE(level.value().capacity_bytes,
              static_cast<std::uint64_t>(static_cast<double>(configured) / 1.3))
        << device->name;
  }
}

TEST(Discovery, L1PlateausMatchHierarchy) {
  const auto level = discover_l1(h800_pcie()).value();
  EXPECT_NEAR(level.hit_latency, h800_pcie().memory.l1_hit_latency, 0.5);
  // Past capacity the chase is mostly L2 hits.
  EXPECT_GT(level.miss_latency, 0.8 * h800_pcie().memory.l2_hit_latency);
  EXPECT_LT(level.miss_latency, 1.1 * h800_pcie().memory.l2_hit_latency);
}

TEST(Discovery, L2CapacityWithinOneSweepStep) {
  const auto level = discover_l2(h800_pcie());
  ASSERT_TRUE(level.has_value());
  const auto configured = h800_pcie().memory.l2_bytes;
  EXPECT_LE(level.value().capacity_bytes, configured);
  EXPECT_GE(level.value().capacity_bytes,
            static_cast<std::uint64_t>(static_cast<double>(configured) / 1.3));
  EXPECT_NEAR(level.value().hit_latency, h800_pcie().memory.l2_hit_latency, 2.0);
}

TEST(Discovery, StepFinderRejectsFlatSweeps) {
  std::vector<SweepPoint> flat;
  for (int i = 0; i < 10; ++i) {
    flat.push_back({static_cast<std::uint64_t>(1024 << i), 40.0});
  }
  EXPECT_FALSE(find_capacity_step(flat).has_value());
  EXPECT_FALSE(find_capacity_step({}).has_value());
}

TEST(Discovery, StepFinderLocatesKnee) {
  std::vector<SweepPoint> sweep;
  for (int i = 0; i < 6; ++i) sweep.push_back({1000ull * (i + 1), 40.0});
  sweep.push_back({7000, 200.0});
  sweep.push_back({8000, 240.0});
  const auto level = find_capacity_step(sweep).value();
  EXPECT_EQ(level.capacity_bytes, 6000u);
  EXPECT_EQ(level.hit_latency, 40.0);
  EXPECT_EQ(level.miss_latency, 240.0);
}

}  // namespace
}  // namespace hsim::core
