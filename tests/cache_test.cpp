// Sectored set-associative cache: hits, sector fills, LRU eviction,
// capacity behaviour.
#include "mem/cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "common/state_io.hpp"

namespace hsim::mem {
namespace {

CacheConfig small_cache() {
  // 4 KiB, 128B lines, 32B sectors, 4-way => 8 sets.
  return {.size_bytes = 4096, .line_bytes = 128, .sector_bytes = 32, .ways = 4};
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.access(0), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.access(0), CacheOutcome::kHit);
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().line_misses, 1u);
}

TEST(Cache, SectorGranularity) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.access(0), CacheOutcome::kLineMiss);
  // Same line, different sector: tag present but sector not fetched.
  EXPECT_EQ(cache.access(32), CacheOutcome::kSectorMiss);
  EXPECT_EQ(cache.access(32), CacheOutcome::kHit);
  EXPECT_EQ(cache.access(96), CacheOutcome::kSectorMiss);
  // Offsets inside a fetched sector hit.
  EXPECT_EQ(cache.access(4), CacheOutcome::kHit);
  EXPECT_EQ(cache.access(31), CacheOutcome::kHit);
}

TEST(Cache, WorkingSetWithinCapacityAllHitsSecondPass) {
  Cache cache(small_cache());
  for (std::uint64_t a = 0; a < 4096; a += 32) cache.access(a);
  cache.reset_stats();
  for (std::uint64_t a = 0; a < 4096; a += 32) {
    EXPECT_EQ(cache.access(a), CacheOutcome::kHit) << a;
  }
  EXPECT_EQ(cache.stats().hit_rate(), 1.0);
}

TEST(Cache, WorkingSetBeyondCapacityThrashes) {
  Cache cache(small_cache());
  // 2x capacity with a sequential scan + LRU = zero hits on re-scan.
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t a = 0; a < 8192; a += 32) cache.access(a);
  }
  const double hit_rate = cache.stats().hit_rate();
  EXPECT_LT(hit_rate, 0.05);
}

TEST(Cache, LruEvictsOldest) {
  // One set: line addresses spaced by num_sets*line_bytes all map to set 0.
  Cache cache(small_cache());
  const std::uint64_t stride =
      static_cast<std::uint64_t>(cache.num_sets()) * 128;
  for (std::uint64_t i = 0; i < 4; ++i) cache.access(i * stride);
  // Touch line 0 to make line 1 the LRU victim.
  cache.access(0);
  cache.access(4 * stride);  // evicts line 1
  EXPECT_EQ(cache.probe(0), CacheOutcome::kHit);
  EXPECT_EQ(cache.probe(1 * stride), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.probe(2 * stride), CacheOutcome::kHit);
}

TEST(Cache, ProbeDoesNotMutate) {
  Cache cache(small_cache());
  EXPECT_EQ(cache.probe(0), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.probe(0), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.access(0, /*allocate=*/false), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.probe(0), CacheOutcome::kLineMiss);  // still not allocated
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache cache(small_cache());
  cache.access(0);
  cache.access(256);
  cache.flush();
  EXPECT_EQ(cache.probe(0), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.probe(256), CacheOutcome::kLineMiss);
}

TEST(Cache, EvictionCounting) {
  Cache cache(small_cache());
  const std::uint64_t stride =
      static_cast<std::uint64_t>(cache.num_sets()) * 128;
  for (std::uint64_t i = 0; i < 6; ++i) cache.access(i * stride);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(Cache, DeviceSizedConfigsConstruct) {
  // H800-like L2: 50 MiB, 16-way.
  Cache l2({.size_bytes = 50ull << 20, .line_bytes = 128, .sector_bytes = 32,
            .ways = 16});
  EXPECT_EQ(l2.num_sets(), static_cast<int>((50ull << 20) / 128 / 16));
  EXPECT_EQ(l2.access(123456), CacheOutcome::kLineMiss);
  EXPECT_EQ(l2.access(123456), CacheOutcome::kHit);
}

TEST(Cache, FlushResetsLruClock) {
  // flush() must reset the LRU clock too, so two sweep points separated by
  // a flush observe bit-identical replacement behaviour: the same access
  // stream produces the same save_state bytes as a fresh cache.
  const auto run_stream = [](Cache& cache) {
    const std::uint64_t stride =
        static_cast<std::uint64_t>(cache.num_sets()) * 128;
    for (std::uint64_t i = 0; i < 6; ++i) cache.access(i * stride);
    cache.access(0);
  };
  Cache flushed(small_cache());
  run_stream(flushed);
  flushed.flush();
  flushed.reset_stats();
  run_stream(flushed);
  Cache fresh(small_cache());
  run_stream(fresh);

  common::StateWriter wa;
  common::StateWriter wb;
  flushed.save_state(wa);
  fresh.save_state(wb);
  const auto a = wa.bytes();
  const auto b = wb.bytes();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(Cache, FlushKeepsStatsUntilResetStats) {
  // Statistics describe the whole run, not one window: flush() keeps them,
  // reset_stats() starts a fresh counting window.
  Cache cache(small_cache());
  cache.access(0);
  cache.access(0);
  cache.flush();
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().line_misses, 1u);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses(), 0u);
}

TEST(Cache, SectorValidAccumulatesAcrossSectorMisses) {
  // Each sector miss adds exactly its own sector; previously fetched
  // sectors stay valid (no reset on a sector fill).
  Cache cache(small_cache());
  EXPECT_EQ(cache.access(0), CacheOutcome::kLineMiss);    // sector 0
  EXPECT_EQ(cache.access(64), CacheOutcome::kSectorMiss); // sector 2
  EXPECT_EQ(cache.access(96), CacheOutcome::kSectorMiss); // sector 3
  // All three fetched sectors now hit; the untouched one still misses.
  EXPECT_EQ(cache.access(0), CacheOutcome::kHit);
  EXPECT_EQ(cache.access(64), CacheOutcome::kHit);
  EXPECT_EQ(cache.access(96), CacheOutcome::kHit);
  EXPECT_EQ(cache.access(32), CacheOutcome::kSectorMiss);
  EXPECT_EQ(cache.stats().sector_misses, 3u);
  EXPECT_EQ(cache.stats().line_misses, 1u);
}

TEST(Cache, SaveLoadRoundTripPreservesEverything) {
  // Snapshot round-trip of the packed layout: tags, sector-valid masks,
  // recency, statistics — the restored cache is byte-for-byte the source.
  Cache cache(small_cache());
  Xoshiro256ss rng(77);
  for (int i = 0; i < 2000; ++i) {
    cache.access(rng.below(1 << 12) * 32);
  }
  common::StateWriter w;
  cache.save_state(w);

  Cache restored(small_cache());
  common::StateReader r(w.bytes());
  restored.load_state(r);
  ASSERT_TRUE(r.ok());

  EXPECT_EQ(restored.stats().hits, cache.stats().hits);
  EXPECT_EQ(restored.stats().sector_misses, cache.stats().sector_misses);
  EXPECT_EQ(restored.stats().line_misses, cache.stats().line_misses);
  EXPECT_EQ(restored.stats().evictions, cache.stats().evictions);
  // Identical probes everywhere...
  for (std::uint64_t addr = 0; addr < (1 << 12) * 32; addr += 32) {
    ASSERT_EQ(restored.probe(addr), cache.probe(addr)) << addr;
  }
  // ...and identical behaviour going forward (same LRU victims).
  Xoshiro256ss rng2(78);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t addr = rng2.below(1 << 12) * 32;
    ASSERT_EQ(restored.access(addr), cache.access(addr)) << addr;
  }
  common::StateWriter wa;
  common::StateWriter wb;
  cache.save_state(wa);
  restored.save_state(wb);
  const auto a = wa.bytes();
  const auto b = wb.bytes();
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));
}

TEST(Cache, LruVictimTieBreakPrefersLowestWay) {
  // Equal LRU stamps cannot arise organically (the stamp clock is unique
  // per access) but a restored snapshot may carry them; the victim scan
  // must keep the lowest way index, matching the original unpacked layout.
  // Build the wire stream by hand: 4 ways of set 0 valid with EQUAL stamps,
  // everything else empty.
  const CacheConfig cfg = small_cache();
  Cache cache(cfg);
  const std::uint64_t lines_total = cfg.size_bytes / 128;  // ways_.size()
  common::StateWriter w;
  w.marker(0x43414348u);
  w.u64(lines_total);
  for (std::uint64_t i = 0; i < lines_total; ++i) {
    const bool in_set0 = (i < 4);  // row-major by set: first 4 = set 0
    w.u64(in_set0 ? 100 + i : 0);  // distinct tags within the set
    w.u32(in_set0 ? 0x1u : 0u);
    w.u64(in_set0 ? 7u : 0u);  // EQUAL stamps across all four ways
    w.boolean(in_set0);
  }
  w.u64(/*next_stamp=*/8);
  for (int i = 0; i < 4; ++i) w.u64(0);  // stats
  common::StateReader r(w.bytes());
  cache.load_state(r);
  ASSERT_TRUE(r.ok());

  // All four restored lines are present (tag T maps to line T*num_sets,
  // set 0, i.e. address T * num_sets * line_bytes).
  const std::uint64_t stride =
      static_cast<std::uint64_t>(cache.num_sets()) * 128;
  for (std::uint64_t t = 100; t < 104; ++t) {
    ASSERT_EQ(cache.probe(t * stride), CacheOutcome::kHit) << t;
  }
  // A conflicting fill must evict way 0 (tag 100) — the lowest way index —
  // and leave the equally-stamped ways 1..3 resident.
  EXPECT_EQ(cache.access(999 * stride), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.probe(100 * stride), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.probe(101 * stride), CacheOutcome::kHit);
  EXPECT_EQ(cache.probe(102 * stride), CacheOutcome::kHit);
  EXPECT_EQ(cache.probe(103 * stride), CacheOutcome::kHit);
}

TEST(Cache, OverflowedSnapshotStampsRenormalise) {
  // A snapshot whose stamps exceed the packed 32-bit clock (foreign or
  // far-future stream) is renormalised on load: per-set relative recency —
  // what victim selection is defined on — survives.
  const CacheConfig cfg = small_cache();
  Cache cache(cfg);
  const std::uint64_t lines_total = cfg.size_bytes / 128;
  const std::uint64_t kBig = 0x1'0000'0000ull;  // > kMaxStamp
  common::StateWriter w;
  w.marker(0x43414348u);
  w.u64(lines_total);
  for (std::uint64_t i = 0; i < lines_total; ++i) {
    const bool in_set0 = (i < 4);
    w.u64(in_set0 ? 100 + i : 0);
    w.u32(in_set0 ? 0x1u : 0u);
    // Way 2 is the oldest; ways 0,1,3 are newer (huge stamps).
    w.u64(in_set0 ? (i == 2 ? kBig + 1 : kBig + 10 + i) : 0u);
    w.boolean(in_set0);
  }
  w.u64(kBig + 100);
  for (int i = 0; i < 4; ++i) w.u64(0);
  common::StateReader r(w.bytes());
  cache.load_state(r);
  ASSERT_TRUE(r.ok());

  const std::uint64_t stride =
      static_cast<std::uint64_t>(cache.num_sets()) * 128;
  EXPECT_EQ(cache.access(999 * stride), CacheOutcome::kLineMiss);
  EXPECT_EQ(cache.probe(102 * stride), CacheOutcome::kLineMiss);  // evicted
  EXPECT_EQ(cache.probe(100 * stride), CacheOutcome::kHit);
  EXPECT_EQ(cache.probe(101 * stride), CacheOutcome::kHit);
  EXPECT_EQ(cache.probe(103 * stride), CacheOutcome::kHit);
}

TEST(Cache, NonPowerOfTwoSetCountMatchesDivModPath) {
  // Sliced L2 geometries can yield non-power-of-two set counts; the
  // shift/mask fast path must agree with div/mod on set and tag, checked
  // here indirectly: identical outcome streams for a config pair that maps
  // the same addresses through both paths (12 sets vs 16 sets aliasing the
  // same lines differently but each self-consistent).
  Cache cache({.size_bytes = 6144, .line_bytes = 128, .sector_bytes = 32,
               .ways = 4});  // 12 sets: modulo path
  EXPECT_EQ(cache.num_sets(), 12);
  Xoshiro256ss rng(5);
  std::vector<bool> touched(1 << 12, false);
  for (int i = 0; i < 4000; ++i) {
    const std::uint64_t sector_index = rng.below(1 << 12);
    const auto outcome = cache.access(sector_index * 32);
    if (!touched[sector_index]) {
      EXPECT_NE(outcome, CacheOutcome::kHit) << sector_index;
      touched[sector_index] = true;
    }
  }
  // Round-trip the modulo-path geometry too.
  common::StateWriter w;
  cache.save_state(w);
  Cache restored({.size_bytes = 6144, .line_bytes = 128, .sector_bytes = 32,
                  .ways = 4});
  common::StateReader r(w.bytes());
  restored.load_state(r);
  ASSERT_TRUE(r.ok());
  for (std::uint64_t addr = 0; addr < (1 << 12) * 32; addr += 32) {
    ASSERT_EQ(restored.probe(addr), cache.probe(addr)) << addr;
  }
}

TEST(Cache, RandomisedNoFalseHits) {
  // Property: an address is only a hit if its sector was touched before
  // and not evicted; verify "never hit before first touch".
  Cache cache(small_cache());
  Xoshiro256ss rng(12);
  std::vector<bool> touched(1 << 12, false);  // 4 KiB of sectors over 128 KiB
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t sector_index = rng.below(1 << 12);
    const std::uint64_t addr = sector_index * 32;
    const auto outcome = cache.access(addr);
    if (!touched[sector_index]) {
      EXPECT_NE(outcome, CacheOutcome::kHit) << addr;
      touched[sector_index] = true;
    }
  }
}

}  // namespace
}  // namespace hsim::mem
