// Property test pinning the assembler/disassembler round-trip contract:
// any Instruction the disassembler can print re-assembles to an identical
// Instruction, for every opcode in the ISA (the gap this closed: HMMA had
// no mnemonic-table entry, stores mis-slotted their value register into
// rd, and bracket offsets/width suffixes were dropped entirely).
#include <gtest/gtest.h>

#include <vector>

#include "common/rng.hpp"
#include "conformance/fuzzer.hpp"
#include "isa/assembler.hpp"
#include "isa/program.hpp"

namespace hsim::isa {
namespace {

constexpr Opcode kAllOpcodes[] = {
    Opcode::kNop,       Opcode::kMov,        Opcode::kIAdd3,
    Opcode::kIMad,      Opcode::kIMnMx,      Opcode::kVIMnMx,
    Opcode::kLop3,      Opcode::kShf,        Opcode::kPopc,
    Opcode::kFAdd,      Opcode::kFMul,       Opcode::kFFma,
    Opcode::kDAdd,      Opcode::kDMul,       Opcode::kHAdd2,
    Opcode::kHMma,      Opcode::kLdgCa,      Opcode::kLdgCg,
    Opcode::kStg,       Opcode::kLds,        Opcode::kSts,
    Opcode::kLdsRemote, Opcode::kStsRemote,  Opcode::kAtomSharedAdd,
    Opcode::kAtomRemoteAdd,                  Opcode::kMapa,
    Opcode::kCpAsync,   Opcode::kCpAsyncCommit,
    Opcode::kCpAsyncWait,                    Opcode::kTmaLoad,
    Opcode::kBarSync,   Opcode::kClock,      Opcode::kExit,
};

constexpr bool memory_form(Opcode op) {
  switch (op) {
    case Opcode::kLdgCa:
    case Opcode::kLdgCg:
    case Opcode::kStg:
    case Opcode::kLds:
    case Opcode::kSts:
    case Opcode::kLdsRemote:
    case Opcode::kStsRemote:
    case Opcode::kAtomSharedAdd:
    case Opcode::kAtomRemoteAdd:
    case Opcode::kCpAsync:
    case Opcode::kTmaLoad:
      return true;
    default:
      return false;
  }
}

/// A random instruction within the disassembler's printable domain: the
/// text form carries registers positionally, so register operands must
/// form a prefix (rd before ra before rb before rc for ALU ops; rb before
/// rc for memory ops), and only memory operands carry a non-default width.
Instruction random_instruction(Opcode op, Xoshiro256ss& rng) {
  Instruction inst{.op = op};
  const auto reg = [&]() { return static_cast<int>(rng.below(kMaxRegs)); };
  if (memory_form(op)) {
    if (rng.below(2)) inst.rd = reg();
    if (rng.below(4) != 0) inst.ra = reg();  // else absolute [imm] form
    if (rng.below(2)) {
      inst.rb = reg();
      if (rng.below(2)) inst.rc = reg();
    }
    if (op == Opcode::kTmaLoad) {
      // imm is the box size, printed as a trailing operand; the absolute
      // address form would collide with it, so keep a register base.
      if (inst.ra == kRegNone) inst.ra = reg();
      inst.imm = static_cast<std::int64_t>(rng.below(1 << 20));
    } else if (inst.ra != kRegNone) {
      inst.imm = rng.range(-4096, 4096);  // bracket offset, either sign
    } else {
      inst.imm = rng.range(0, 1 << 20);  // absolute byte address
    }
    constexpr std::uint32_t kWidths[] = {4, 8, 16};
    inst.access_bytes = kWidths[rng.below(3)];
  } else {
    const auto regs = rng.below(5);  // how long the rd/ra/rb/rc prefix is
    if (regs > 0) inst.rd = reg();
    if (regs > 1) inst.ra = reg();
    if (regs > 2) inst.rb = reg();
    if (regs > 3) inst.rc = reg();
    inst.imm = rng.range(-1000000, 1000000);
  }
  return inst;
}

TEST(AssemblerRoundTrip, EveryOpcodeEveryForm) {
  Xoshiro256ss rng(2024);
  for (const Opcode op : kAllOpcodes) {
    for (int trial = 0; trial < 200; ++trial) {
      const Instruction inst = random_instruction(op, rng);
      Program program;
      program.add(inst);
      const auto text = program.to_string();
      const auto round = assemble(text);
      ASSERT_TRUE(round.has_value())
          << mnemonic(op) << ": '" << inst.to_string()
          << "' failed to re-assemble: " << round.error().to_string();
      ASSERT_EQ(round.value().size(), 1u) << text;
      const Instruction& back = round.value().body()[0];
      EXPECT_EQ(back.op, inst.op) << inst.to_string();
      EXPECT_EQ(back.rd, inst.rd) << inst.to_string();
      EXPECT_EQ(back.ra, inst.ra) << inst.to_string();
      EXPECT_EQ(back.rb, inst.rb) << inst.to_string();
      EXPECT_EQ(back.rc, inst.rc) << inst.to_string();
      EXPECT_EQ(back.imm, inst.imm) << inst.to_string();
      EXPECT_EQ(back.access_bytes, inst.access_bytes) << inst.to_string();
    }
  }
}

TEST(AssemblerRoundTrip, IterationsDirectiveSurvives) {
  Program program;
  program.mov(1, 7);
  program.set_iterations(1024);
  const auto round = assemble(program.to_string());
  ASSERT_TRUE(round.has_value());
  EXPECT_EQ(round.value().iterations(), 1024u);
}

// Regressions for the specific gaps this test closed.
TEST(AssemblerRoundTrip, ClosedGaps) {
  const auto one = [](std::string_view text) {
    const auto program = assemble(text);
    EXPECT_TRUE(program.has_value()) << text;
    return program.has_value() ? program.value().body()[0] : Instruction{};
  };

  const auto hmma = one("HMMA.16816 R1, R2, R3, R4");
  EXPECT_EQ(hmma.op, Opcode::kHMma);

  const auto store = one("STS [R1], R2");
  EXPECT_EQ(store.op, Opcode::kSts);
  EXPECT_EQ(store.rd, kRegNone);  // stores have no destination
  EXPECT_EQ(store.ra, 1);
  EXPECT_EQ(store.rb, 2);

  const auto offset = one("LDG.CA R2, [R3+8]");
  EXPECT_EQ(offset.ra, 3);
  EXPECT_EQ(offset.imm, 8);

  const auto negative = one("LDS R2, [R3-16].8");
  EXPECT_EQ(negative.imm, -16);
  EXPECT_EQ(negative.access_bytes, 8u);

  const auto absolute = one("STG [64].16, R5");
  EXPECT_EQ(absolute.ra, kRegNone);
  EXPECT_EQ(absolute.imm, 64);
  EXPECT_EQ(absolute.access_bytes, 16u);
  EXPECT_EQ(absolute.rb, 5);
}

// Integration property: every program the conformance fuzzer emits must
// survive a disassemble/re-assemble cycle bit-for-bit (reproducer files
// depend on it).
TEST(AssemblerRoundTrip, FuzzerProgramsRoundTrip) {
  const conformance::ProgramFuzzer fuzzer;
  for (std::uint64_t index = 0; index < 100; ++index) {
    const auto fuzz_case = fuzzer.generate(/*base_seed=*/99, index);
    const auto round = assemble(fuzz_case.program.to_string());
    ASSERT_TRUE(round.has_value()) << round.error().to_string();
    const auto& original = fuzz_case.program;
    ASSERT_EQ(round.value().size(), original.size());
    EXPECT_EQ(round.value().iterations(), original.iterations());
    for (std::size_t i = 0; i < original.size(); ++i) {
      const auto& a = original.body()[i];
      const auto& b = round.value().body()[i];
      EXPECT_TRUE(a.op == b.op && a.rd == b.rd && a.ra == b.ra &&
                  a.rb == b.rb && a.rc == b.rc && a.imm == b.imm &&
                  a.access_bytes == b.access_bytes)
          << "case " << index << " inst " << i << ": '" << a.to_string()
          << "' vs '" << b.to_string() << "'";
    }
  }
}

}  // namespace
}  // namespace hsim::isa
