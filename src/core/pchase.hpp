// Pointer-chase latency microbenchmark (Saavedra-Barrera style, as the
// paper uses for Table IV).
//
// A Sattolo cycle over the working set defeats any prefetching; one thread
// follows the chain with fully dependent loads, so the average time per
// access is the load-to-use latency of whichever level holds the data.
// Placement follows the paper's method: `ld.global.ca` warm-up pins the set
// in L1, `ld.global.cg` in L2, and a set larger than L2 (with the TLB
// warmed by initialisation) measures DRAM.
#pragma once

#include "arch/device.hpp"
#include "common/status.hpp"
#include "mem/memory_system.hpp"
#include "sim/accounting.hpp"
#include "trace/trace.hpp"

namespace hsim::core {

struct PChaseResult {
  double avg_latency_cycles = 0;
  mem::MemLevel intended_level = mem::MemLevel::kL1;
  std::uint64_t accesses = 0;
  std::uint64_t tlb_misses = 0;   // should be 0 after proper warm-up
  double hit_rate = 0;            // in the intended level
  sim::CycleSample usage;         // per-unit cycle accounting for the chase
};

struct PChaseConfig {
  std::uint64_t working_set = 0;  // 0 = a sensible default for the level
  std::uint32_t stride = 32;      // one sector per element
  std::uint64_t iterations = 4096;
  bool warm_tlb = true;           // the paper's init pass; false shows why
  std::uint64_t seed = 1;
  // Optional event sink: every chase access emits a kExecute event named
  // after the level that serviced it (attached to the MemorySystem).
  trace::TraceSink* sink = nullptr;
  // Optional performance-counter block (attached to the MemorySystem for
  // the chase itself; the warm-up pass is deliberately not counted).
  prof::PmuCounters* pmu = nullptr;
};

Expected<PChaseResult> pchase(const arch::DeviceSpec& device,
                              mem::MemLevel level, PChaseConfig config = {});

}  // namespace hsim::core
