#include "prof/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <ostream>

#include "common/json_writer.hpp"

namespace hsim::prof {
namespace {

using C = Counter;

double ratio(double num, double den) { return den > 0.0 ? num / den : 0.0; }
double pct(double num, double den) { return 100.0 * ratio(num, den); }

Metric m(std::string name, double value, std::string unit = "") {
  return Metric{std::move(name), value, std::move(unit)};
}

Section occupancy_section(const ProfileInput& in) {
  const auto& pmu = in.pmu;
  const double sampled = pmu.sampled_cycles();
  const double active_warps = ratio(pmu.warp_cycles(), sampled);
  Section s{"occupancy", "Occupancy", {}};
  s.metrics.push_back(m("theoretical_warps_per_sm", kMaxWarpsPerSm, "warp"));
  s.metrics.push_back(m("achieved_active_warps_per_sm", active_warps, "warp"));
  s.metrics.push_back(m("achieved_occupancy",
                        pct(active_warps, kMaxWarpsPerSm), "%"));
  s.metrics.push_back(m("sampled_cycles", sampled, "cycle"));
  s.metrics.push_back(m("warps_launched", pmu.get(C::kWarpsLaunched), "warp"));
  s.metrics.push_back(m("warps_retired", pmu.get(C::kWarpsRetired), "warp"));
  return s;
}

Section issue_section(const ProfileInput& in) {
  const auto& pmu = in.pmu;
  const double issued = pmu.get(C::kInstIssued);
  // 4 schedulers per SM, one issue slot each per cycle.
  const double slots = 4.0 * in.cycles * static_cast<double>(in.sms);
  Section s{"issue", "Issue & Instruction Mix", {}};
  s.metrics.push_back(m("inst_issued", issued, "inst"));
  s.metrics.push_back(m("inst_retired", pmu.get(C::kInstRetired), "inst"));
  s.metrics.push_back(
      m("ipc_per_sm",
        ratio(issued, in.cycles * static_cast<double>(in.sms)), "inst/cyc"));
  s.metrics.push_back(m("issue_slot_utilization", pct(issued, slots), "%"));
  static constexpr std::array<std::pair<C, const char*>, 8> kClasses{{
      {C::kIssuedAlu, "mix_alu"},
      {C::kIssuedFma, "mix_fma"},
      {C::kIssuedFp64, "mix_fp64"},
      {C::kIssuedDpx, "mix_dpx"},
      {C::kIssuedTensor, "mix_tensor"},
      {C::kIssuedLsu, "mix_lsu"},
      {C::kIssuedDsm, "mix_dsm"},
      {C::kIssuedControl, "mix_control"},
  }};
  for (const auto& [counter, name] : kClasses) {
    s.metrics.push_back(m(name, pct(pmu.get(counter), issued), "%"));
  }
  return s;
}

Section memory_section(const arch::DeviceSpec& device, const ProfileInput& in) {
  const auto& pmu = in.pmu;
  const double sector = static_cast<double>(device.memory.sector_bytes);
  const double seconds = in.cycles / device.clock_hz();
  const double dram_bytes = pmu.get(C::kDramSectors) * sector;
  Section s{"memory", "Memory Chart", {}};
  s.metrics.push_back(m("l1_sector_accesses", pmu.get(C::kL1SectorAccesses)));
  s.metrics.push_back(m("l1_hit_rate",
                        pct(pmu.get(C::kL1SectorHits),
                            pmu.get(C::kL1SectorAccesses)), "%"));
  s.metrics.push_back(m("l2_sector_accesses", pmu.get(C::kL2SectorAccesses)));
  s.metrics.push_back(m("l2_hit_rate",
                        pct(pmu.get(C::kL2SectorHits),
                            pmu.get(C::kL2SectorAccesses)), "%"));
  s.metrics.push_back(m("dram_sectors", pmu.get(C::kDramSectors)));
  s.metrics.push_back(
      m("dram_throughput", seconds > 0.0 ? dram_bytes / seconds / 1e9 : 0.0,
        "GB/s"));
  s.metrics.push_back(m("dram_pct_of_peak",
                        pct(seconds > 0.0 ? dram_bytes / seconds / 1e9 : 0.0,
                            device.memory.dram_peak_gbps), "%"));
  s.metrics.push_back(m("tlb_miss_rate",
                        pct(pmu.get(C::kTlbMisses),
                            pmu.get(C::kTlbAccesses)), "%"));
  s.metrics.push_back(m("smem_accesses", pmu.get(C::kSmemAccesses)));
  s.metrics.push_back(m("smem_conflict_phases_per_access",
                        ratio(pmu.get(C::kSmemConflictPhases),
                              pmu.get(C::kSmemAccesses)), "phase"));
  s.metrics.push_back(m("tma_bytes", pmu.get(C::kTmaBytes), "B"));
  s.metrics.push_back(m("cp_async_bytes", pmu.get(C::kCpAsyncBytes), "B"));
  return s;
}

Section sol_section(const ProfileInput& in) {
  Section s{"sol", "Speed of Light (busy % of run)", {}};
  double sm_max = 0.0;
  double mem_max = 0.0;
  for (const auto& unit : in.units) {
    const double busy_pct = pct(unit.busy_cycles, in.cycles);
    const bool is_mem = unit.name.rfind("SM.", 0) != 0;
    (is_mem ? mem_max : sm_max) = std::max(is_mem ? mem_max : sm_max, busy_pct);
  }
  s.metrics.push_back(m("sm_pct", sm_max, "%"));
  s.metrics.push_back(m("memory_pct", mem_max, "%"));
  for (const auto& unit : in.units) {
    s.metrics.push_back(m("sol_" + unit.name, pct(unit.busy_cycles, in.cycles),
                          "%"));
  }
  return s;
}

Section roofline_section(const arch::DeviceSpec& device,
                         const ProfileInput& in) {
  const auto& pmu = in.pmu;
  const double seconds = in.cycles / device.clock_hz();
  const double flops = pmu.get(C::kFlops);
  const double dram_bytes =
      pmu.get(C::kDramSectors) * static_cast<double>(device.memory.sector_bytes);
  // FP32 FMA roof for the SMs the run actually used; the tensor roof is
  // reported separately so mma kernels can be placed against it.
  const double peak_fp32_gflops = static_cast<double>(device.cores_per_sm) *
                                  2.0 * device.clock_hz() *
                                  static_cast<double>(in.sms) / 1e9;
  const double peak_tc_gflops =
      device.tc.peak_fp16_tflops * 1e3 * static_cast<double>(in.sms) /
      static_cast<double>(device.sm_count);
  const double peak_mem_gbps =
      device.memory.dram_peak_gbps * device.memory.dram_efficiency;
  const double ai = ratio(flops, dram_bytes);
  const double achieved_gflops = seconds > 0.0 ? flops / seconds / 1e9 : 0.0;
  // Roof at this arithmetic intensity: memory-slope until the ridge, flat
  // compute roof after it.
  const double compute_roof =
      pmu.get(C::kIssuedTensor) > 0.0 ? peak_tc_gflops : peak_fp32_gflops;
  const double roof = dram_bytes > 0.0
                          ? std::min(compute_roof, ai * peak_mem_gbps)
                          : compute_roof;
  Section s{"roofline", "Roofline", {}};
  s.metrics.push_back(m("flops", flops, "flop"));
  s.metrics.push_back(m("dram_bytes", dram_bytes, "B"));
  s.metrics.push_back(m("arithmetic_intensity", ai, "flop/B"));
  s.metrics.push_back(m("achieved_gflops", achieved_gflops, "GFLOP/s"));
  s.metrics.push_back(m("peak_fp32_gflops", peak_fp32_gflops, "GFLOP/s"));
  s.metrics.push_back(m("peak_tensor_gflops", peak_tc_gflops, "GFLOP/s"));
  s.metrics.push_back(m("peak_dram_gbps", peak_mem_gbps, "GB/s"));
  s.metrics.push_back(
      m("ridge_intensity", ratio(compute_roof, peak_mem_gbps), "flop/B"));
  s.metrics.push_back(m("pct_of_roof", pct(achieved_gflops, roof), "%"));
  s.metrics.push_back(
      m("compute_bound", dram_bytes <= 0.0 || ai * peak_mem_gbps >= compute_roof
                             ? 1.0
                             : 0.0));
  return s;
}

}  // namespace

const Section* ProfileReport::section(std::string_view id) const {
  for (const auto& s : sections) {
    if (s.id == id) return &s;
  }
  return nullptr;
}

double ProfileReport::metric(std::string_view section_id,
                             std::string_view name) const {
  if (const Section* s = section(section_id); s != nullptr) {
    for (const auto& entry : s->metrics) {
      if (entry.name == name) return entry.value;
    }
  }
  return std::numeric_limits<double>::quiet_NaN();
}

std::string content_key(const ProfileConfig& config) {
  // FNV-1a, 64-bit, over the identity fields with separators so that
  // ("ab","c") and ("a","bc") hash differently.
  std::uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](std::string_view text) {
    for (const char c : text) {
      h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
      h *= 1099511628211ull;
    }
    h ^= 0x1f;
    h *= 1099511628211ull;
  };
  mix(config.device);
  mix(config.kernel);
  mix(config.config);
  mix(config.full_chip ? "full-chip" : "single-sm");
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%016llx",
                static_cast<unsigned long long>(h));
  return buffer;
}

ProfileReport build_profile(const arch::DeviceSpec& device,
                            const ProfileInput& input, ProfileConfig config) {
  ProfileReport report;
  report.config = std::move(config);
  report.key = content_key(report.config);
  report.pmu = input.pmu;
  report.cycles = input.cycles;
  report.sms = input.sms;
  report.sections.push_back(occupancy_section(input));
  report.sections.push_back(issue_section(input));
  report.sections.push_back(memory_section(device, input));
  report.sections.push_back(sol_section(input));
  report.sections.push_back(roofline_section(device, input));
  return report;
}

void render_text(const ProfileReport& report, std::ostream& os) {
  os << "== hsim profile: " << report.config.kernel << " on "
     << report.config.device
     << (report.config.full_chip ? " (full chip)" : " (single SM)") << " ==\n";
  if (!report.config.config.empty()) {
    os << "   config: " << report.config.config << "\n";
  }
  os << "   key: " << report.key << "   cycles: " << report.cycles
     << "   sms: " << report.sms << "\n";
  char line[160];
  for (const auto& section : report.sections) {
    os << "\n-- " << section.title << " --\n";
    for (const auto& metric : section.metrics) {
      std::snprintf(line, sizeof(line), "  %-34s %14.4g %s",
                    metric.name.c_str(), metric.value, metric.unit.c_str());
      os << line << "\n";
    }
  }
}

void write_profile_json(const ProfileReport& report, std::ostream& os) {
  os << "{\"schema\":\"hsim-profile-v1\",\"key\":";
  write_json_string(os, report.key);
  os << ",\"device\":";
  write_json_string(os, report.config.device);
  os << ",\"kernel\":";
  write_json_string(os, report.config.kernel);
  os << ",\"config\":";
  write_json_string(os, report.config.config);
  os << ",\"full_chip\":" << (report.config.full_chip ? "true" : "false");
  os << ",\"cycles\":";
  write_json_number_exact(os, report.cycles);
  os << ",\"sms\":" << report.sms;
  os << ",\"pmu\":";
  report.pmu.write_json(os);
  os << ",\"sections\":[";
  bool first_section = true;
  for (const auto& section : report.sections) {
    if (!first_section) os << ",";
    first_section = false;
    os << "{\"id\":";
    write_json_string(os, section.id);
    os << ",\"title\":";
    write_json_string(os, section.title);
    os << ",\"metrics\":[";
    bool first_metric = true;
    for (const auto& metric : section.metrics) {
      if (!first_metric) os << ",";
      first_metric = false;
      os << "{\"name\":";
      write_json_string(os, metric.name);
      os << ",\"value\":";
      write_json_number(os, metric.value);
      os << ",\"unit\":";
      write_json_string(os, metric.unit);
      os << "}";
    }
    os << "]}";
  }
  os << "]}\n";
}

}  // namespace hsim::prof
