// Table IV: latency clocks of different memory scopes on RTX4090 / A100 /
// H800, measured with the p-chase microbenchmark.
//
// All twelve (level, device) cells are independent sweep points, fanned
// across the parallel sweep engine; the rendered tables are bit-identical
// at any --threads value because each point runs its own MemorySystem with
// a seed derived from the point index.
#include <iostream>
#include <optional>

#include "bench/bench_util.hpp"
#include "core/pchase.hpp"
#include "trace/sinks.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  const arch::DeviceSpec* devices[] = {&arch::rtx4090(), &arch::a100_pcie(),
                                       &arch::h800_pcie()};
  const struct {
    const char* label;
    mem::MemLevel level;
  } rows[] = {
      {"L1 Cache", mem::MemLevel::kL1},
      {"Shared", mem::MemLevel::kShared},
      {"L2 Cache", mem::MemLevel::kL2},
      {"Global", mem::MemLevel::kDram},
  };
  constexpr std::size_t kDevices = 3;
  constexpr std::size_t kRows = 4;

  sim::CycleReport report;
  const auto results = sim::sweep(
      kRows * kDevices,
      [&](sim::SweepContext& ctx) -> std::optional<core::PChaseResult> {
        const auto& row = rows[ctx.index() / kDevices];
        const auto* device = devices[ctx.index() % kDevices];
        core::PChaseConfig config;
        config.seed = ctx.seed();
        // Trace the chase: the aggregated breakdown shows which level
        // serviced the dependent accesses, merged deterministically into the
        // cycle report alongside the port-occupancy sample.
        trace::AggregatingSink agg;
        config.sink = &agg;
        auto result = core::pchase(*device, row.level, config);
        if (!result) return std::nullopt;
        ctx.record(result.value().usage);
        if (!agg.empty()) {
          ctx.record(agg.to_cycle_sample(result.value().usage.label + ".trace",
                                         result.value().usage.total_cycles));
        }
        return std::move(result).value();
      },
      bench::sweep_options(opt), &report);
  const auto cell = [&](std::size_t row, std::size_t dev) {
    return results[row * kDevices + dev];
  };

  Table table("Table IV: Latency clocks of different memory scopes");
  table.set_header({"Type", "RTX4090", "A100", "H800"});
  for (std::size_t r = 0; r < kRows; ++r) {
    std::vector<std::string> cells{rows[r].label};
    for (std::size_t d = 0; d < kDevices; ++d) {
      const auto& result = cell(r, d);
      cells.push_back(result ? fmt_fixed(result->avg_latency_cycles, 1) : "err");
    }
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);

  // Companion finding from the paper: cross-level latency ratios.
  Table ratios("Latency ratios (paper: L2/L1 ~ 6.5x, Global/L2 ~ 1.9x)");
  ratios.set_header({"Device", "L2/L1", "Global/L2"});
  for (std::size_t d = 0; d < kDevices; ++d) {
    const auto& l1 = cell(0, d);
    const auto& l2 = cell(2, d);
    const auto& dram = cell(3, d);
    if (!l1 || !l2 || !dram) continue;
    ratios.add_row({devices[d]->name,
                    fmt_fixed(l2->avg_latency_cycles / l1->avg_latency_cycles, 2),
                    fmt_fixed(dram->avg_latency_cycles / l2->avg_latency_cycles, 2)});
  }
  bench::emit(ratios, opt);
  bench::write_report(report, opt, argv[0]);
  return 0;
}
