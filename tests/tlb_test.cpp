#include "mem/tlb.hpp"

#include <gtest/gtest.h>

namespace hsim::mem {
namespace {

constexpr std::uint64_t kPage = 2ull << 20;

TEST(Tlb, MissThenHit) {
  Tlb tlb(4, kPage);
  EXPECT_FALSE(tlb.access(0));
  EXPECT_TRUE(tlb.access(0));
  EXPECT_TRUE(tlb.access(kPage - 1));  // same page
  EXPECT_FALSE(tlb.access(kPage));     // next page
  EXPECT_EQ(tlb.hits(), 2u);
  EXPECT_EQ(tlb.misses(), 2u);
}

TEST(Tlb, LruEviction) {
  Tlb tlb(2, kPage);
  tlb.access(0 * kPage);
  tlb.access(1 * kPage);
  tlb.access(0 * kPage);      // refresh page 0
  tlb.access(2 * kPage);      // evicts page 1
  EXPECT_TRUE(tlb.access(0 * kPage));
  EXPECT_FALSE(tlb.access(1 * kPage));
}

TEST(Tlb, WorkingSetWithinCapacityStaysResident) {
  Tlb tlb(64, kPage);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::uint64_t p = 0; p < 64; ++p) tlb.access(p * kPage);
  }
  EXPECT_EQ(tlb.hits(), 64u);
  EXPECT_EQ(tlb.misses(), 64u);
}

TEST(Tlb, FlushDropsEverything) {
  Tlb tlb(8, kPage);
  tlb.access(0);
  tlb.flush();
  EXPECT_FALSE(tlb.access(0));
}

}  // namespace
}  // namespace hsim::mem
