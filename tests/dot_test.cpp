// Tensor-core accumulation semantics: FP32 vs FP16 accumulate, exact
// products, integer wraparound, AND+POPC.
#include "numerics/dot.hpp"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hsim::num {
namespace {

TEST(DotFp32, ExactForSmallIntegers) {
  const std::vector<float> a{1, 2, 3, 4};
  const std::vector<float> b{5, 6, 7, 8};
  EXPECT_EQ(dot_accumulate_fp32(a, b, 10.0f), 10 + 5 + 12 + 21 + 32);
}

TEST(DotFp32, LeftToRightOrderMatters) {
  // (1e8 + 1) - 1e8 in FP32: left-to-right keeps the cancellation.
  const std::vector<float> a{1e8f, 1.0f, -1e8f};
  const std::vector<float> b{1.0f, 1.0f, 1.0f};
  // 1e8 + 1 rounds to 1e8 in fp32, then -1e8 leaves 0.
  EXPECT_EQ(dot_accumulate_fp32(a, b, 0.0f), 0.0f);
  // Reordered so the small value is added last, it survives.
  const std::vector<float> a2{1e8f, -1e8f, 1.0f};
  EXPECT_EQ(dot_accumulate_fp32(a2, b, 0.0f), 1.0f);
}

TEST(DotFp16, AccumulatorRoundsEveryStep) {
  // 2048 + 1 is not representable in FP16 (ulp at 2048 is 2): adding 1.0 k
  // times to a 2048 accumulator stays put with FP16 accumulate...
  std::vector<float> a(8, 1.0f);
  std::vector<float> b(8, 1.0f);
  const fp16 acc = dot_accumulate_fp16(a, b, fp16(2048.0f));
  EXPECT_EQ(acc.to_float(), 2048.0f);
  // ...but survives with FP32 accumulate.
  EXPECT_EQ(dot_accumulate_fp32(a, b, 2048.0f), 2056.0f);
}

TEST(DotFp16, MatchesFp32WhenEverythingRepresentable) {
  Xoshiro256ss rng(1);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<float> a(4), b(4);
    for (int i = 0; i < 4; ++i) {
      a[static_cast<std::size_t>(i)] = static_cast<float>(rng.range(-8, 8));
      b[static_cast<std::size_t>(i)] = static_cast<float>(rng.range(-8, 8));
    }
    const float f32 = dot_accumulate_fp32(a, b, 0.0f);
    const fp16 f16 = dot_accumulate_fp16(a, b, fp16(0.0f));
    EXPECT_EQ(f16.to_float(), f32);  // small integers: both exact
  }
}

TEST(DotFp16ProductsAreExact, ElevenBitSignificands) {
  // Products of FP16 values are exact in FP32: check a worst-ish case.
  const float x = 2047.0f / 1024.0f;  // full 11-bit significand
  const std::vector<float> a{x};
  const std::vector<float> b{x};
  const double exact = static_cast<double>(x) * static_cast<double>(x);
  EXPECT_EQ(static_cast<double>(dot_accumulate_fp32(a, b, 0.0f)), exact);
}

TEST(DotS32, Exact) {
  const std::vector<std::int8_t> a{127, -128, 50, 1};
  const std::vector<std::int8_t> b{127, -128, -50, 0};
  EXPECT_EQ(dot_accumulate_s32(a, b, 5),
            5 + 127 * 127 + (-128) * (-128) + 50 * -50);
}

TEST(DotS32, WrapsLikeHardwareAccumulator) {
  // Repeated max products can exceed int32 in theory; confirm 32-bit wrap
  // semantics (the model documents the accumulator as 32-bit).
  std::vector<std::int8_t> a(300, 127);
  std::vector<std::int8_t> b(300, 127);
  std::int64_t expected = 0;
  for (int i = 0; i < 300; ++i) expected += 127 * 127;
  EXPECT_EQ(dot_accumulate_s32(a, b, 0),
            static_cast<std::int32_t>(expected));  // fits: sanity
}

TEST(DotAndPopc, CountsCommonBits) {
  const std::vector<std::uint32_t> a{0xFFFF0000u, 0x0000000Fu};
  const std::vector<std::uint32_t> b{0xFF000000u, 0x0000000Cu};
  EXPECT_EQ(dot_and_popc(a, b, 3), 3 + 8 + 2);
}

TEST(DotAndPopc, ZeroOperands) {
  const std::vector<std::uint32_t> a{0u, 0u};
  const std::vector<std::uint32_t> b{0xFFFFFFFFu, 0xFFFFFFFFu};
  EXPECT_EQ(dot_and_popc(a, b, 0), 0);
}

}  // namespace
}  // namespace hsim::num
