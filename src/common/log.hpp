// Leveled logging to stderr.  Quiet by default (warnings and errors only);
// HSIM_LOG=debug or set_log_level() turns on tracing for debugging model
// behaviour without recompiling.
#pragma once

#include <sstream>
#include <string_view>

namespace hsim {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

void set_log_level(LogLevel level) noexcept;
LogLevel log_level() noexcept;
/// Reads HSIM_LOG (debug|info|warn|error) once at startup.
void init_log_level_from_env() noexcept;

namespace detail {
void log_line(LogLevel level, std::string_view message);
}

}  // namespace hsim

#define HSIM_LOG_AT(level, expr)                                     \
  do {                                                               \
    if (static_cast<int>(level) >= static_cast<int>(::hsim::log_level())) { \
      std::ostringstream hsim_log_os;                                \
      hsim_log_os << expr;                                           \
      ::hsim::detail::log_line(level, hsim_log_os.str());            \
    }                                                                \
  } while (false)

#define HSIM_DEBUG(expr) HSIM_LOG_AT(::hsim::LogLevel::kDebug, expr)
#define HSIM_INFO(expr) HSIM_LOG_AT(::hsim::LogLevel::kInfo, expr)
#define HSIM_WARN(expr) HSIM_LOG_AT(::hsim::LogLevel::kWarn, expr)
#define HSIM_ERROR(expr) HSIM_LOG_AT(::hsim::LogLevel::kError, expr)
