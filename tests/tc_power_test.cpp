// Power / DVFS model: the Zero-vs-Rand mechanism and energy-efficiency
// orderings.
#include "tensorcore/power.hpp"

#include <gtest/gtest.h>

#include "tensorcore/timing.hpp"

namespace hsim::tc {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;
using isa::OperandSource;
using isa::TcInstr;
using isa::TcPath;
using num::DType;

TcInstr wgmma_fp16_fp32() {
  return {.path = TcPath::kWgmma, .shape = {64, 256, 16}, .ab = DType::kFp16,
          .cd = DType::kFp32, .a_src = OperandSource::kSharedMemory};
}
TcInstr mma_fp16(DType cd = DType::kFp16) {
  return {.path = TcPath::kMma, .shape = {16, 8, 16}, .ab = DType::kFp16,
          .cd = cd};
}

TEST(Power, ZeroOperandsDrawLittle) {
  const auto r = apply_power(wgmma_fp16_fp32(), h800_pcie(), 730.0, false);
  EXPECT_FALSE(r.throttled);
  EXPECT_LT(r.power_w, 200.0);
  EXPECT_EQ(r.throughput_tflops, 730.0);
  EXPECT_EQ(r.clock_mhz, h800_pcie().observed_clock_mhz);
}

TEST(Power, RandomOperandsThrottleWgmmaOnH800) {
  const auto r = apply_power(wgmma_fp16_fp32(), h800_pcie(), 730.0, true);
  EXPECT_TRUE(r.throttled);
  EXPECT_DOUBLE_EQ(r.power_w, h800_pcie().power.board_limit_w);
  EXPECT_LT(r.throughput_tflops, 730.0);
  EXPECT_GT(r.throughput_tflops, 600.0);  // ~665 in the paper
  EXPECT_LT(r.clock_mhz, h800_pcie().observed_clock_mhz);
}

TEST(Power, ThrottleScalesClockAndThroughputTogether) {
  const auto r = apply_power(wgmma_fp16_fp32(), h800_pcie(), 730.0, true);
  EXPECT_NEAR(r.throughput_tflops / 730.0,
              r.clock_mhz / h800_pcie().observed_clock_mhz, 1e-9);
}

TEST(Power, MmaStaysUnderTheCap) {
  // mma only reaches ~65% of peak on Hopper, so it never hits 350 W.
  const auto r = apply_power(mma_fp16(), h800_pcie(), 494.0, true);
  EXPECT_FALSE(r.throttled);
  EXPECT_LT(r.power_w, h800_pcie().power.board_limit_w);
  EXPECT_GT(r.power_w, 150.0);
}

TEST(Power, EfficiencyOrderingAcrossDevices) {
  // H800 leads energy efficiency for dense fp16 mma (paper Table XI).
  const auto h = apply_power(mma_fp16(), h800_pcie(), 489.0, true);
  const auto a = apply_power(mma_fp16(), a100_pcie(), 308.0, true);
  const auto g = apply_power(mma_fp16(), rtx4090(), 356.0, true);
  EXPECT_GT(h.efficiency_tflops_per_w(), 1.3 * a.efficiency_tflops_per_w());
  EXPECT_GT(h.efficiency_tflops_per_w(), 1.3 * g.efficiency_tflops_per_w());
}

TEST(Power, SparseUsesLessEnergyPerCountedFlop) {
  TcInstr dense = mma_fp16();
  TcInstr sparse = mma_fp16();
  sparse.sparse = true;
  sparse.shape.k = 32;
  const auto d = apply_power(dense, h800_pcie(), 489.0, true);
  const auto s = apply_power(sparse, h800_pcie(), 727.0, true);
  // Sparse throughput is ~1.5x at only slightly higher power.
  EXPECT_LT(s.power_w, d.power_w * 1.15);
  EXPECT_GT(s.efficiency_tflops_per_w(), 1.3 * d.efficiency_tflops_per_w());
}

TEST(Power, Fp32AccumulateDrawsMoreThanFp16) {
  const auto acc16 = apply_power(mma_fp16(DType::kFp16), h800_pcie(), 489.0, true);
  const auto acc32 = apply_power(mma_fp16(DType::kFp32), h800_pcie(), 489.0, true);
  EXPECT_GT(acc32.power_w, acc16.power_w);
}

TEST(Power, IdleFloorAtZeroThroughput) {
  const auto r = apply_power(mma_fp16(), h800_pcie(), 0.0, true);
  EXPECT_DOUBLE_EQ(r.power_w, h800_pcie().power.idle_w);
}

}  // namespace
}  // namespace hsim::tc
