// Derived-metric engine: turns a raw PmuCounters block plus run timing into
// Nsight-Compute-style report sections — achieved occupancy, IPC /
// issue-slot utilization, per-unit speed-of-light %, a memory chart with
// per-level hit rates and throughputs, and roofline placement against the
// DeviceSpec peaks.  Every metric is a pure function of (counters, cycles,
// device), so reports are as deterministic as the counters themselves.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "arch/device.hpp"
#include "prof/pmu.hpp"
#include "sim/accounting.hpp"

namespace hsim::prof {

/// Identity of a profiled run; the content-addressed export key hashes
/// exactly these fields, so equal configurations share a cache slot.
struct ProfileConfig {
  std::string device;  // short name ("h800")
  std::string kernel;  // kernel registry name ("mem_l2")
  std::string config;  // free-form knob descriptor ("iters=64 blocks=4 ...")
  bool full_chip = false;
};

struct Metric {
  std::string name;
  double value = 0.0;
  std::string unit;  // "%", "inst/cyc", "GB/s", "" for raw counts
};

struct Section {
  std::string id;     // stable machine key: occupancy|issue|memory|sol|roofline
  std::string title;  // human heading
  std::vector<Metric> metrics;
};

/// Raw inputs to the derivation.
struct ProfileInput {
  PmuCounters pmu;
  double cycles = 0.0;  // elapsed SM-clock cycles for the run
  int sms = 1;          // SMs contributing issue slots (1 for single-SM)
  std::vector<sim::UnitSample> units;  // per-unit busy-cycle accounting
};

struct ProfileReport {
  ProfileConfig config;
  std::string key;  // content address (see content_key)
  PmuCounters pmu;  // raw counters, exported alongside the sections
  double cycles = 0.0;
  int sms = 1;
  std::vector<Section> sections;

  [[nodiscard]] const Section* section(std::string_view id) const;
  /// Metric lookup; NaN when the section or metric is absent.
  [[nodiscard]] double metric(std::string_view section_id,
                              std::string_view name) const;
};

/// FNV-1a content address over (device, kernel, config, full_chip) — the
/// cache key a future `hsim serve` can use to dedupe repeated queries.
[[nodiscard]] std::string content_key(const ProfileConfig& config);

[[nodiscard]] ProfileReport build_profile(const arch::DeviceSpec& device,
                                          const ProfileInput& input,
                                          ProfileConfig config);

/// Sectioned human-readable report (the `hsim profile` default output).
void render_text(const ProfileReport& report, std::ostream& os);

/// Machine-readable export: config + content key + raw counters (exact) +
/// every section/metric.  Schema keys are fixed; see docs/MODEL_REFERENCE.md.
void write_profile_json(const ProfileReport& report, std::ostream& os);

}  // namespace hsim::prof
