#include "ff/fast_forward.hpp"

#include <algorithm>
#include <array>
#include <limits>
#include <memory>

#include "common/state_io.hpp"
#include "common/status.hpp"
#include "conformance/func_exec.hpp"
#include "conformance/fuzzer.hpp"
#include "ff/snapshot.hpp"
#include "isa/opcode.hpp"
#include "mem/memory_system.hpp"
#include "sim/sweep.hpp"

namespace hsim::ff {
namespace {

constexpr double kForever = std::numeric_limits<double>::infinity();
constexpr std::uint64_t kLineBytes = 128;

bool has_opcode(const isa::Program& program, isa::Opcode op) {
  for (const auto& inst : program.body()) {
    if (inst.op == op) return true;
  }
  return false;
}

/// Static per-body issue histogram in isa::UnitClass order, plus the FLOP
/// weight of one warp-iteration — the functional credit for fast-forwarded
/// instructions uses the same weights the detailed decoder assigns, so the
/// merged PMU block stays conserved and roofline-coherent.
struct BodyWeights {
  std::array<double, 8> per_class{};
  double flops = 0;
};

BodyWeights weigh_body(const isa::Program& program) {
  BodyWeights w;
  for (const auto& inst : program.body()) {
    w.per_class[static_cast<std::size_t>(isa::unit_of(inst.op))] += 1.0;
    switch (inst.op) {
      case isa::Opcode::kFAdd:
      case isa::Opcode::kFMul:
      case isa::Opcode::kDAdd:
      case isa::Opcode::kDMul:
        w.flops += 32.0;
        break;
      case isa::Opcode::kFFma:
      case isa::Opcode::kHAdd2:
        w.flops += 64.0;
        break;
      case isa::Opcode::kHMma:
        w.flops += 2.0 * 16.0 * 8.0 * 16.0;
        break;
      default:
        break;
    }
  }
  return w;
}

/// One throwaway detailed probe: a fresh SmCore (plus MemorySystem when the
/// kernel touches global memory) with every block slot resident.
struct Probe {
  std::unique_ptr<mem::MemorySystem> memory;
  std::unique_ptr<sm::SmCore> core;

  Probe(const arch::DeviceSpec& device, const isa::Program& program,
        const sm::BlockShape& shape, std::span<std::uint64_t> global,
        bool needs_mem, prof::PmuCounters* pmu) {
    if (needs_mem) memory = std::make_unique<mem::MemorySystem>(device, 1);
    core = std::make_unique<sm::SmCore>(device, memory.get(), 0);
    core->bind_global(global);
    if (pmu != nullptr) {
      core->set_pmu(pmu);
      if (memory) memory->set_pmu(pmu);
    }
    core->begin(program, shape.blocks, shape.threads_per_block);
    for (int b = 0; b < shape.blocks; ++b) core->launch_block(b, b, 0.0);
  }
};

/// Deterministic 64-bit mixer for the mode-switch plan.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool FastForwardEngine::can_sample(const isa::Program& program,
                                   const SampleOptions& options) const {
  if (program.size() == 0) return false;
  if (program.iterations() <= std::max(1u, options.interval)) return false;
  // EXIT retires warps early, breaking the iteration alignment the
  // functional/detailed handoff relies on; CLOCK values differ between the
  // models and could feed back into addressing.  Both fall back to exact.
  if (has_opcode(program, isa::Opcode::kExit)) return false;
  if (has_opcode(program, isa::Opcode::kClock)) return false;
  return true;
}

SampleResult FastForwardEngine::sample(const isa::Program& program,
                                       const sm::BlockShape& shape,
                                       bool needs_mem,
                                       const SampleOptions& options) const {
  SampleResult out;
  if (!can_sample(program, options)) {
    ExactOptions fallback;
    fallback.global_seed = options.global_seed;
    const ExactResult exact_run = exact(program, shape, needs_mem, fallback);
    out.cycles_est = exact_run.result.cycles;
    out.instructions = exact_run.result.instructions_issued;
    out.detailed_cycles = exact_run.result.cycles;
    out.detailed_instructions = exact_run.result.instructions_issued;
    return out;
  }

  const std::uint32_t iters = program.iterations();
  const std::uint32_t interval = std::max(1u, options.interval);
  const std::uint32_t detail = std::clamp(options.detail, 1u, interval);
  const std::uint32_t warmup = std::min(options.warmup, interval);
  const auto per_iter =
      static_cast<std::uint64_t>(shape.total_warps()) * program.size();

  const auto image = conformance::make_global_image(options.global_seed);
  std::vector<std::uint64_t> global_copy = image;  // SmCore wants mutable
  conformance::FuncExec func(device_, program, shape, image);
  prof::PmuCounters* pmu = options.collect_pmu ? &out.pmu : nullptr;

  double est = 0.0;
  for (std::uint32_t start = 0; start < iters; start += interval) {
    // Hand off at the warmup boundary; the interpreter is the authority
    // for everything before it.
    const std::uint32_t warm_from = start > warmup ? start - warmup : 0;
    func.run_to_iteration(warm_from);

    Probe probe(device_, program, shape, global_copy, needs_mem, pmu);
    probe.core->import_arch(func.export_arch());
    if (probe.memory) {
      // Replay the interpreter's global footprint so the window starts
      // with realistically heated tags instead of cold compulsory misses.
      for (const auto& line : func.touched_lines()) {
        probe.memory->warm(line.base, kLineBytes,
                           line.l1 ? mem::MemSpace::kGlobalCa
                                   : mem::MemSpace::kGlobalCg,
                           0);
      }
    }
    // Unmeasured warmup replay: re-heats scoreboards and pipelines.  The
    // first window has nothing before it and measures the true cold start.
    const std::uint64_t warm_budget = per_iter * (start - warm_from);
    if (warm_budget > 0) {
      probe.core->set_issue_budget(warm_budget);
      probe.core->advance(kForever);
    }
    const double c0 = probe.core->now();
    const std::uint64_t i0 = probe.core->instructions_issued();
    const std::uint32_t measure_end = std::min(start + detail, iters);
    probe.core->set_issue_budget(i0 + per_iter * (measure_end - start));
    probe.core->advance(kForever);
    const double c1 = probe.core->now();
    const std::uint64_t i1 = probe.core->instructions_issued();
    HSIM_ASSERT(i1 > i0 && c1 > c0);

    SampleWindow window;
    window.measure_start = start;
    window.measure_iters = measure_end - start;
    window.instructions = i1 - i0;
    window.cycles = c1 - c0;
    const std::uint32_t period_end = std::min(start + interval, iters);
    est += static_cast<double>(per_iter) *
           static_cast<double>(period_end - start) / window.ipc();
    out.detailed_cycles += c1;
    out.detailed_instructions += i1;
    out.windows.push_back(window);
  }

  out.sampled = true;
  out.cycles_est = est;
  out.instructions = per_iter * iters;
  if (pmu != nullptr) {
    // Functional credit for the fast-forwarded instructions, so the merged
    // block conserves (per-class sums to issued, retired <= issued).
    const std::uint64_t credit = out.instructions - out.detailed_instructions;
    HSIM_ASSERT(credit % program.size() == 0);
    const auto warp_iters =
        static_cast<double>(credit / program.size());
    const BodyWeights weights = weigh_body(program);
    out.pmu.add(prof::Counter::kInstIssued, static_cast<double>(credit));
    out.pmu.add(prof::Counter::kInstRetired, static_cast<double>(credit));
    for (std::size_t c = 0; c < weights.per_class.size(); ++c) {
      out.pmu.add(static_cast<prof::Counter>(
                      static_cast<std::size_t>(prof::Counter::kIssuedAlu) + c),
                  weights.per_class[c] * warp_iters);
    }
    out.pmu.add(prof::Counter::kFlops, weights.flops * warp_iters);
  }
  return out;
}

ExactResult FastForwardEngine::exact(const isa::Program& program,
                                     const sm::BlockShape& shape,
                                     bool needs_mem,
                                     const ExactOptions& options) const {
  ExactResult out;
  const auto image = conformance::make_global_image(options.global_seed);
  std::vector<std::uint64_t> global_copy = image;

  std::unique_ptr<mem::MemorySystem> memory;
  std::unique_ptr<sm::SmCore> core;
  const auto build = [&] {
    memory.reset();
    if (needs_mem) memory = std::make_unique<mem::MemorySystem>(device_, 1);
    core = std::make_unique<sm::SmCore>(device_, memory.get(), 0);
    core->bind_global(global_copy);
    core->begin(program, shape.blocks, shape.threads_per_block);
    for (int b = 0; b < shape.blocks; ++b) core->launch_block(b, b, 0.0);
  };
  build();

  const std::uint32_t snap_iter =
      std::min(options.snapshot_iteration, program.iterations());
  const auto boundary =
      static_cast<std::uint64_t>(shape.total_warps()) * program.size() *
      snap_iter;
  SnapshotKey key;
  key.device = device_.name;
  key.program_hash = SnapshotKey::hash_program(program);
  key.blocks = shape.blocks;
  key.threads_per_block = shape.threads_per_block;
  key.boundary = boundary;

  const bool want_snapshot = !options.snapshot_file.empty() && boundary > 0;
  if (want_snapshot) {
    const auto payload = read_snapshot_file(options.snapshot_file, key);
    if (payload.has_value()) {
      common::StateReader r(payload.value());
      core->load_state(r);
      if (memory) memory->load_state(r);
      if (r.ok() && r.remaining() == 0) {
        out.snapshot_restored = true;
      } else {
        // Geometry drift inside a digest-clean payload (e.g. a build with
        // different unit counts): discard the half-applied state entirely.
        out.snapshot_note = "snapshot stream inconsistent; re-simulating";
        build();
      }
    } else {
      out.snapshot_note = payload.error().to_string();
    }
  }

  if (!out.snapshot_restored && boundary > 0) {
    core->set_issue_budget(boundary);
    core->advance(kForever);
    if (want_snapshot) {
      common::StateWriter w;
      core->save_state(w);
      if (memory) memory->save_state(w);
      const auto wrote =
          write_snapshot_file(options.snapshot_file, key, w.bytes());
      if (wrote.has_value()) {
        out.snapshot_saved = true;
      } else {
        out.snapshot_note = wrote.error().to_string();
      }
    }
  }

  core->set_issue_budget(0);
  core->advance(kForever);
  out.result = core->finalize();
  return out;
}

conformance::PipelineFn make_mode_switch_pipeline(
    const arch::DeviceSpec& device, int max_switches) {
  const arch::DeviceSpec* dev = &device;
  const int switches = std::max(1, max_switches);
  return [dev, switches](const conformance::FuzzCase& fuzz_case,
                         std::span<const std::uint64_t> global)
             -> conformance::PipelineObservation {
    // Dry functional run: the exact dynamic instruction count anchors the
    // switch plan (case programs may EXIT early, so it is not static).
    std::uint64_t total = 0;
    {
      conformance::FuncExec dry(*dev, fuzz_case.program, fuzz_case.shape,
                                global);
      dry.run_to_completion();
      total = dry.instructions();
    }

    // Pseudorandom switch plan from the case identity alone, so shrunk and
    // replayed cases reproduce the same mode sequence.
    std::uint64_t rng = mix64(
        sim::derive_point_seed(fuzz_case.base_seed ^ 0xff5eedull,
                               static_cast<std::size_t>(fuzz_case.index)));
    const auto next = [&rng] { return rng = mix64(rng); };
    std::vector<std::uint64_t> cuts;
    if (total > 1) {
      const auto n_cuts =
          1 + static_cast<std::size_t>(next() %
                                       static_cast<std::uint64_t>(2 * switches));
      for (std::size_t i = 0; i < n_cuts; ++i) {
        cuts.push_back(1 + next() % (total - 1));
      }
      std::sort(cuts.begin(), cuts.end());
      cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
    }
    bool detailed = (next() & 1) != 0;

    conformance::FuncExec func(*dev, fuzz_case.program, fuzz_case.shape,
                               global);
    std::vector<std::uint64_t> global_copy(global.begin(), global.end());
    double detailed_cycles = 0.0;
    std::uint64_t executed = 0;
    std::size_t cut = 0;
    while (executed < total) {
      const std::uint64_t target = cut < cuts.size() ? cuts[cut++] : total;
      if (target <= executed) {
        detailed = !detailed;
        continue;
      }
      const std::uint64_t want = target - executed;
      if (detailed) {
        mem::MemorySystem memory(*dev, 1);
        sm::SmCore core(*dev, &memory, 0);
        core.bind_global(global_copy);
        core.begin(fuzz_case.program, fuzz_case.shape.blocks,
                   fuzz_case.shape.threads_per_block);
        for (int b = 0; b < fuzz_case.shape.blocks; ++b) {
          core.launch_block(b, b, 0.0);
        }
        core.import_arch(func.export_arch());
        core.set_issue_budget(want);
        core.advance(kForever);
        func.import_arch(core.export_arch());
        HSIM_ASSERT(core.instructions_issued() > 0);
        executed += core.instructions_issued();
        detailed_cycles += core.now();
      } else {
        const std::uint64_t before = func.instructions();
        // Whole-round stepping may overshoot the cut by a few
        // instructions; account for what actually ran.
        func.run_to_instructions(before + want);
        HSIM_ASSERT(func.instructions() > before);
        executed += func.instructions() - before;
      }
      detailed = !detailed;
    }
    HSIM_ASSERT(executed == total);
    HSIM_ASSERT(func.done());

    // Synthesize the ledger the differ checks: the architectural fields
    // are real (handed out of the final engine); trace-derived fields are
    // consistent zeros (no sink was attached), and the PMU block is left
    // empty, which diff() treats as "counters not collected".
    const conformance::RefResult fin = func.result();
    conformance::PipelineObservation obs;
    obs.result.cycles = detailed_cycles > 0 ? detailed_cycles : 1.0;
    obs.result.instructions_issued = executed;
    obs.result.warps_retired =
        static_cast<std::uint64_t>(fuzz_case.shape.total_warps());
    obs.result.stall_cycles = 0;
    obs.regs = fin.regs;
    obs.shared = fin.shared;
    obs.agg_issues = obs.result.instructions_issued;
    obs.agg_retires = obs.result.warps_retired;
    return obs;
  };
}

}  // namespace hsim::ff
