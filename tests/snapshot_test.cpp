// Snapshot round-trip property tests for the fast-forward subsystem.
//
// The contract under test: save -> restore -> continue is bit-identical to
// an uninterrupted run, at any sweep thread count; and every malformed
// snapshot file (truncated, bit-flipped, wrong version, wrong identity)
// fails with a typed diagnostic, never undefined behaviour.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/state_io.hpp"
#include "ff/fast_forward.hpp"
#include "ff/snapshot.hpp"
#include "mem/memory_system.hpp"
#include "sim/sweep.hpp"
#include "sm/sm_core.hpp"
#include "trace/kernels.hpp"

namespace hsim::ff {
namespace {

const arch::DeviceSpec& h800() {
  return *arch::find_device("h800").value();
}

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

trace::TraceKernel kernel(std::string_view name, std::uint32_t iters) {
  auto k = trace::make_trace_kernel(name, iters);
  EXPECT_TRUE(k.has_value());
  return *k;
}

struct RunTriple {
  double cycles = 0;
  std::uint64_t instructions = 0;
  std::uint64_t stalls = 0;
  bool operator==(const RunTriple&) const = default;
};

RunTriple triple(const sm::RunResult& r) {
  return {r.cycles, r.instructions_issued, r.stall_cycles};
}

TEST(Snapshot, SaveRestoreContinueBitIdentical) {
  const auto& device = h800();
  const auto k = kernel("mem_global", 512);
  const sm::BlockShape shape{k.threads_per_block, k.blocks};
  const FastForwardEngine engine(device);

  ExactOptions plain;
  const auto baseline = engine.exact(k.program, shape, k.needs_mem, plain);

  ExactOptions snap;
  snap.snapshot_file = temp_path("roundtrip.hsnap");
  snap.snapshot_iteration = 128;
  std::remove(snap.snapshot_file.c_str());

  const auto first = engine.exact(k.program, shape, k.needs_mem, snap);
  EXPECT_FALSE(first.snapshot_restored);
  EXPECT_TRUE(first.snapshot_saved) << first.snapshot_note;
  EXPECT_EQ(triple(first.result), triple(baseline.result));

  const auto second = engine.exact(k.program, shape, k.needs_mem, snap);
  EXPECT_TRUE(second.snapshot_restored) << second.snapshot_note;
  EXPECT_EQ(triple(second.result), triple(baseline.result));
  std::remove(snap.snapshot_file.c_str());
}

TEST(Snapshot, RestoreBitIdenticalAtAnyThreadCount) {
  const auto& device = h800();
  const auto k = kernel("smem_conflict", 256);
  const sm::BlockShape shape{k.threads_per_block, k.blocks};
  const FastForwardEngine engine(device);

  ExactOptions snap;
  snap.snapshot_file = temp_path("sweep.hsnap");
  snap.snapshot_iteration = 64;
  std::remove(snap.snapshot_file.c_str());
  // Prime the shared post-warmup snapshot once; every sweep point below
  // restores it instead of re-simulating the warmup.
  const auto primed = engine.exact(k.program, shape, k.needs_mem, snap);
  ASSERT_TRUE(primed.snapshot_saved) << primed.snapshot_note;

  const auto run_points = [&](std::size_t threads) {
    sim::SweepOptions options;
    options.threads = threads;
    return sim::sweep(
        8,
        [&](sim::SweepContext&) {
          const auto point =
              engine.exact(k.program, shape, k.needs_mem, snap);
          EXPECT_TRUE(point.snapshot_restored) << point.snapshot_note;
          return triple(point.result);
        },
        options);
  };

  const auto serial = run_points(1);
  for (const auto& point : serial) {
    EXPECT_EQ(point, triple(primed.result));
  }
  EXPECT_EQ(serial, run_points(4));
  EXPECT_EQ(serial, run_points(8));
  std::remove(snap.snapshot_file.c_str());
}

TEST(Snapshot, CoreStateRoundTripsMidRun) {
  const auto& device = h800();
  const auto k = kernel("mem_global", 256);
  const sm::BlockShape shape{k.threads_per_block, k.blocks};
  const auto per_iter =
      static_cast<std::uint64_t>(shape.total_warps()) * k.program.size();

  const auto build = [&](std::unique_ptr<mem::MemorySystem>& memory) {
    memory = std::make_unique<mem::MemorySystem>(device, 1);
    auto core = std::make_unique<sm::SmCore>(device, memory.get(), 0);
    core->begin(k.program, shape.blocks, shape.threads_per_block);
    for (int b = 0; b < shape.blocks; ++b) core->launch_block(b, b, 0.0);
    return core;
  };
  constexpr double kForever = std::numeric_limits<double>::infinity();

  std::unique_ptr<mem::MemorySystem> mem_a;
  auto core_a = build(mem_a);
  core_a->set_issue_budget(per_iter * 100);
  core_a->advance(kForever);

  common::StateWriter w;
  core_a->save_state(w);
  mem_a->save_state(w);

  std::unique_ptr<mem::MemorySystem> mem_b;
  auto core_b = build(mem_b);
  common::StateReader r(w.bytes());
  core_b->load_state(r);
  mem_b->load_state(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);

  core_a->set_issue_budget(0);
  core_b->set_issue_budget(0);
  core_a->advance(kForever);
  core_b->advance(kForever);
  EXPECT_EQ(triple(core_a->finalize()), triple(core_b->finalize()));
}

TEST(Snapshot, TruncatedFileFailsCleanly) {
  SnapshotKey key;
  key.device = "H800 PCIe";
  key.program_hash = 0x1234;
  key.blocks = 1;
  key.threads_per_block = 32;
  key.boundary = 100;
  const std::vector<std::uint8_t> payload(4096, 0xab);
  const auto sealed = seal_snapshot(key, payload);

  // Every proper prefix must be rejected with a diagnostic, not UB.  Walk
  // a coarse grid plus the exact header boundaries.
  for (std::size_t len = 0; len < sealed.size(); len += 97) {
    const std::span<const std::uint8_t> prefix(sealed.data(), len);
    const auto opened = open_snapshot(prefix, key);
    EXPECT_FALSE(opened.has_value()) << "prefix length " << len;
  }
  const auto whole = open_snapshot(sealed, key);
  ASSERT_TRUE(whole.has_value()) << whole.error().to_string();
  EXPECT_EQ(whole.value(), payload);
}

TEST(Snapshot, CorruptedPayloadFailsDigestCheck) {
  SnapshotKey key;
  key.device = "H800 PCIe";
  key.boundary = 1;
  const std::vector<std::uint8_t> payload(1024, 0x5c);
  auto sealed = seal_snapshot(key, payload);
  sealed[sealed.size() - 17] ^= 0x01;  // flip one payload bit
  const auto opened = open_snapshot(sealed, key);
  ASSERT_FALSE(opened.has_value());
  EXPECT_NE(opened.error().to_string().find("digest"), std::string::npos)
      << opened.error().to_string();
}

TEST(Snapshot, WrongVersionFailsCleanly) {
  SnapshotKey key;
  key.device = "x";
  const auto sealed = seal_snapshot(key, std::vector<std::uint8_t>(16, 1));
  auto bumped = sealed;
  bumped[8] += 1;  // version field sits right after the u64 magic
  const auto opened = open_snapshot(bumped, key);
  ASSERT_FALSE(opened.has_value());
  EXPECT_NE(opened.error().to_string().find("version"), std::string::npos)
      << opened.error().to_string();
}

TEST(Snapshot, IdentityMismatchesAreNamed) {
  SnapshotKey key;
  key.device = "H800 PCIe";
  key.program_hash = 7;
  key.blocks = 2;
  key.threads_per_block = 64;
  key.boundary = 9;
  const auto sealed = seal_snapshot(key, std::vector<std::uint8_t>(8, 2));

  const auto expect_reject = [&](SnapshotKey other, std::string_view what) {
    const auto opened = open_snapshot(sealed, other);
    ASSERT_FALSE(opened.has_value()) << what;
    EXPECT_NE(opened.error().to_string().find(what), std::string::npos)
        << opened.error().to_string();
  };
  auto other = key;
  other.device = "A100";
  expect_reject(other, "device");
  other = key;
  other.program_hash = 8;
  expect_reject(other, "program hash");
  other = key;
  other.threads_per_block = 32;
  expect_reject(other, "shape");
  other = key;
  other.boundary = 10;
  expect_reject(other, "boundary");
}

TEST(Snapshot, MissingFileIsRejectedNotCreated) {
  SnapshotKey key;
  key.device = "x";
  const auto path = temp_path("does_not_exist.hsnap");
  std::remove(path.c_str());
  const auto opened = read_snapshot_file(path, key);
  EXPECT_FALSE(opened.has_value());
  std::ifstream probe(path);
  EXPECT_FALSE(probe.good());
}

}  // namespace
}  // namespace hsim::ff
