#include "mem/cache.hpp"

#include <bit>

namespace hsim::mem {

Cache::Cache(const CacheConfig& config) : config_(config) {
  HSIM_ASSERT(config.line_bytes > 0 && config.sector_bytes > 0);
  HSIM_ASSERT(config.line_bytes % config.sector_bytes == 0);
  HSIM_ASSERT(config.ways > 0);
  const auto lines_total =
      config.size_bytes / static_cast<std::uint64_t>(config.line_bytes);
  HSIM_ASSERT(lines_total >= static_cast<std::uint64_t>(config.ways));
  num_sets_ = static_cast<int>(lines_total / static_cast<std::uint64_t>(config.ways));
  HSIM_ASSERT(num_sets_ > 0);
  sectors_per_line_ = config.line_bytes / config.sector_bytes;
  HSIM_ASSERT(sectors_per_line_ <= 32);
  lines_.resize(static_cast<std::size_t>(num_sets_) *
                static_cast<std::size_t>(config.ways));
}

CacheOutcome Cache::access(std::uint64_t addr, bool allocate) {
  const std::uint64_t line = line_addr(addr);
  const auto set = static_cast<std::size_t>(line % static_cast<std::uint64_t>(num_sets_));
  const std::uint64_t tag = line / static_cast<std::uint64_t>(num_sets_);
  const std::uint32_t sector_bit = 1u << sector_index(addr);
  Line* base = &lines_[set * static_cast<std::size_t>(config_.ways)];

  // Search the set.
  for (int w = 0; w < config_.ways; ++w) {
    Line& entry = base[w];
    if (entry.valid && entry.tag == tag) {
      entry.lru_stamp = next_stamp_++;
      if (entry.sector_valid & sector_bit) {
        ++stats_.hits;
        return CacheOutcome::kHit;
      }
      ++stats_.sector_misses;
      if (allocate) entry.sector_valid |= sector_bit;
      return CacheOutcome::kSectorMiss;
    }
  }

  ++stats_.line_misses;
  if (allocate) {
    // Victim: invalid way first, else LRU.
    Line* victim = &base[0];
    for (int w = 0; w < config_.ways; ++w) {
      if (!base[w].valid) {
        victim = &base[w];
        break;
      }
      if (base[w].lru_stamp < victim->lru_stamp) victim = &base[w];
    }
    if (victim->valid) ++stats_.evictions;
    victim->valid = true;
    victim->tag = tag;
    victim->sector_valid = sector_bit;
    victim->lru_stamp = next_stamp_++;
  }
  return CacheOutcome::kLineMiss;
}

CacheOutcome Cache::probe(std::uint64_t addr) const {
  const std::uint64_t line = line_addr(addr);
  const auto set = static_cast<std::size_t>(line % static_cast<std::uint64_t>(num_sets_));
  const std::uint64_t tag = line / static_cast<std::uint64_t>(num_sets_);
  const std::uint32_t sector_bit = 1u << sector_index(addr);
  const Line* base = &lines_[set * static_cast<std::size_t>(config_.ways)];
  for (int w = 0; w < config_.ways; ++w) {
    const Line& entry = base[w];
    if (entry.valid && entry.tag == tag) {
      return (entry.sector_valid & sector_bit) ? CacheOutcome::kHit
                                               : CacheOutcome::kSectorMiss;
    }
  }
  return CacheOutcome::kLineMiss;
}

void Cache::flush() {
  for (auto& entry : lines_) entry = Line{};
}

}  // namespace hsim::mem
