#include "serve/result_cache.hpp"

#include <vector>

namespace hsim::serve {

std::uint64_t cache_key(const QueryIdentity& identity) {
  std::uint64_t h = 14695981039346656037ull;
  const auto mix_byte = [&h](std::uint8_t b) {
    h ^= b;
    h *= 1099511628211ull;
  };
  const auto mix = [&](std::string_view text) {
    for (const char c : text) mix_byte(static_cast<std::uint8_t>(c));
    // Field separator so ("ab","c") and ("a","bc") hash differently.
    mix_byte(0x1f);
  };
  mix(identity.verb);
  mix(identity.device);
  for (int i = 0; i < 8; ++i) {
    mix_byte(static_cast<std::uint8_t>(identity.program_hash >> (8 * i)));
  }
  mix_byte(0x1f);
  mix(identity.config);
  mix(identity.code_version);
  return h;
}

std::optional<std::string> ResultCache::lookup(std::uint64_t key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  ++lookups_;
  const auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->payload;
}

void ResultCache::insert(std::uint64_t key, std::string payload) {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (capacity_ == 0) return;
  const auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->payload = std::move(payload);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().key);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.push_front(Entry{key, std::move(payload)});
  index_.emplace(key, lru_.begin());
  ++insertions_;
}

ResultCache::Stats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.lookups = lookups_;
  out.hits = hits_;
  out.misses = misses_;
  out.insertions = insertions_;
  out.evictions = evictions_;
  out.entries = lru_.size();
  out.capacity = capacity_;
  return out;
}

std::vector<std::uint64_t> ResultCache::keys_mru_first() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::uint64_t> out;
  out.reserve(lru_.size());
  for (const auto& entry : lru_) out.push_back(entry.key);
  return out;
}

void ResultCache::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

}  // namespace hsim::serve
