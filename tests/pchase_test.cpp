// P-chase latency benchmark against the simulated hierarchy.
#include "core/pchase.hpp"

#include <gtest/gtest.h>

namespace hsim::core {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using arch::rtx4090;
using mem::MemLevel;

TEST(PChase, MeasuresConfiguredLevelExactly) {
  for (const auto* device : arch::all_devices()) {
    const auto l1 = pchase(*device, MemLevel::kL1).value();
    EXPECT_NEAR(l1.avg_latency_cycles, device->memory.l1_hit_latency, 1e-6)
        << device->name;
    EXPECT_EQ(l1.hit_rate, 1.0) << device->name;

    const auto shared = pchase(*device, MemLevel::kShared).value();
    EXPECT_NEAR(shared.avg_latency_cycles, device->memory.smem_latency, 1e-6);

    const auto l2 = pchase(*device, MemLevel::kL2).value();
    EXPECT_NEAR(l2.avg_latency_cycles, device->memory.l2_hit_latency, 1e-6);
    EXPECT_EQ(l2.tlb_misses, 0u);

    const auto dram = pchase(*device, MemLevel::kDram).value();
    EXPECT_NEAR(dram.avg_latency_cycles, device->memory.dram_latency, 1e-6);
    EXPECT_EQ(dram.tlb_misses, 0u) << device->name;
  }
}

TEST(PChase, LevelOrderingHolds) {
  for (const auto* device : arch::all_devices()) {
    const double shared = pchase(*device, MemLevel::kShared).value().avg_latency_cycles;
    const double l1 = pchase(*device, MemLevel::kL1).value().avg_latency_cycles;
    const double l2 = pchase(*device, MemLevel::kL2).value().avg_latency_cycles;
    const double dram = pchase(*device, MemLevel::kDram).value().avg_latency_cycles;
    EXPECT_LT(shared, l1);
    EXPECT_LT(l1, l2);
    EXPECT_LT(l2, dram);
    // The paper's cross-level ratios: L2/L1 ~ 6.5x, Global/L2 ~ 1.9x.
    EXPECT_NEAR(l2 / l1, 6.5, 0.6);
    EXPECT_NEAR(dram / l2, 1.9, 0.35);
  }
}

TEST(PChase, ColdTlbInflatesGlobalLatency) {
  PChaseConfig cfg;
  cfg.warm_tlb = false;
  cfg.iterations = 512;
  const auto cold = pchase(h800_pcie(), MemLevel::kDram, cfg).value();
  const auto warm = pchase(h800_pcie(), MemLevel::kDram).value();
  EXPECT_GT(cold.tlb_misses, 0u);
  EXPECT_GT(cold.avg_latency_cycles, warm.avg_latency_cycles + 1.0);
}

TEST(PChase, RejectsSubSectorStride) {
  PChaseConfig cfg;
  cfg.stride = 8;
  EXPECT_FALSE(pchase(h800_pcie(), MemLevel::kL1, cfg).has_value());
}

TEST(PChase, RejectsTinyWorkingSet) {
  PChaseConfig cfg;
  cfg.working_set = 32;
  EXPECT_FALSE(pchase(h800_pcie(), MemLevel::kL1, cfg).has_value());
}

TEST(PChase, AccessCounting) {
  PChaseConfig cfg;
  cfg.iterations = 777;
  const auto r = pchase(a100_pcie(), MemLevel::kL1, cfg).value();
  EXPECT_EQ(r.accesses, 777u);
  EXPECT_EQ(r.intended_level, MemLevel::kL1);
}

}  // namespace
}  // namespace hsim::core
