// Hierarchical GEMM on the functional tensor-core units.
//
// D = A x B + C executed the way a CUTLASS-style kernel would: the output
// is tiled by the chosen instruction's (m x n), the k dimension walks in
// instruction-k steps, and every tile-step is one functional mma/wgmma
// execution (bit-exact reduced-precision arithmetic, 2:4 sparsity
// included).  Alongside the numeric result the run reports a performance
// projection from the instruction timing model and the launch/wave model —
// so one call answers both "what does the TC hardware compute?" and "how
// fast would this instruction choice be?".
#pragma once

#include <cstdint>

#include "arch/device.hpp"
#include "common/status.hpp"
#include "isa/ptx.hpp"
#include "tensorcore/mma_func.hpp"
#include "tensorcore/timing.hpp"

namespace hsim::tc {

struct GemmResult {
  MatF d;                          // numeric result
  std::uint64_t instructions = 0;  // tensor-core instructions executed
  double projected_cycles = 0;     // instruction-roofline projection
  double projected_seconds = 0;
  double projected_tflops = 0;
  double max_abs_error = 0;        // vs FP64 reference (if requested)
};

struct GemmOptions {
  bool sparse = false;             // 2:4-prune A and use sparse instructions
  bool compute_error = true;       // compare against the FP64 reference
};

/// Integer variant: D(m x n) int32 = A int8 x B int8 + C int32 through
/// IMMA/IGMMA-shaped tiles.  Exact by construction; the result carries the
/// same projection fields.
struct GemmIntResult {
  MatI32 d;
  std::uint64_t instructions = 0;
  double projected_tflops = 0;  // TOPS
};
Expected<GemmIntResult> gemm_int8(const MatI8& a, const MatI8& b,
                                  const MatI32& c, const isa::TcInstr& instr,
                                  const arch::DeviceSpec& device);

/// Execute D(m x n) = A(m x k) x B(k x n) + C with `instr`-shaped tiles on
/// `device`.  Dimensions must be multiples of the instruction shape (a
/// production kernel would pad; we require alignment to keep the numerics
/// story exact).  For sparse runs A is magnitude-pruned to 2:4 first and
/// the error is measured against the *pruned* operand (pruning loss is the
/// algorithm's, not the hardware's).
Expected<GemmResult> gemm(const MatF& a, const MatF& b, const MatF& c,
                          const isa::TcInstr& instr,
                          const arch::DeviceSpec& device,
                          GemmOptions options = {});

}  // namespace hsim::tc
