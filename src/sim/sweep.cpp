#include "sim/sweep.hpp"

#include <cstdlib>

namespace hsim::sim {

std::size_t resolve_sweep_threads(std::size_t requested) {
  if (requested != 0) return requested;
  if (const char* env = std::getenv("HSIM_SWEEP_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) return static_cast<std::size_t>(parsed);
  }
  return global_pool().size();
}

std::uint64_t derive_point_seed(std::uint64_t base_seed, std::size_t index) {
  // SplitMix64 over a mix of the base seed and index: a pure function of
  // the two, so streams are independent of thread assignment, and distinct
  // indices land in distinct well-separated streams.
  std::uint64_t state =
      base_seed ^ (0x9E3779B97F4A7C15ULL * (static_cast<std::uint64_t>(index) + 1));
  return splitmix64(state);
}

}  // namespace hsim::sim
