// Sampled-vs-exact error regression for the fast-forward engine.
//
// For each kernel behind the paper's Table 4/5/7 and Fig. 7 measurements,
// run the sampled estimator and the exact cycle-accurate run, and check
//   (a) the hard bound: cycle/IPC error within kMaxCycleError, and
//   (b) the golden shape: each kernel's error bucket, so an accuracy
//       regression (or improvement) fails until a human re-blesses with
//       HSIM_UPDATE_GOLDEN=1 ./build/tests/sampling_error_test.
//
// The dsm kernel is deliberately absent: its SM-to-SM fabric backlog grows
// over the run (non-stationary), which throwaway probe windows cannot
// inherit — see docs/MODEL_REFERENCE.md, "Fast-forward & sampling".
#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "arch/device.hpp"
#include "conformance/golden.hpp"
#include "dpx/functions.hpp"
#include "ff/fast_forward.hpp"
#include "trace/kernels.hpp"

namespace hsim::ff {
namespace {

/// Documented error bound for stationary kernels (also quoted in
/// docs/EXPERIMENTS.md): 5% on estimated total cycles.
constexpr double kMaxCycleError = 0.05;

const arch::DeviceSpec& h800() {
  return *arch::find_device("h800").value();
}

struct Case {
  std::string name;
  isa::Program program;
  sm::BlockShape shape;
  bool needs_mem = false;
};

Case trace_case(std::string_view name, std::uint32_t iters, int warps,
                int blocks) {
  auto k = trace::make_trace_kernel(name, iters);
  EXPECT_TRUE(k.has_value());
  Case c;
  c.name = std::string(name);
  c.program = k->program;
  c.shape.threads_per_block = warps > 0 ? warps * 32 : k->threads_per_block;
  c.shape.blocks = blocks > 0 ? blocks : k->blocks;
  c.needs_mem = k->needs_mem;
  return c;
}

/// The Fig. 7 DPX throughput kernel: 8 independent VIMNMX chains at the
/// paper's 1024-thread block, iterated long enough to sample.
Case fig07_case(const arch::DeviceSpec& device) {
  Case c;
  c.name = "fig07_dpx";
  for (int chain = 0; chain < 8; ++chain) {
    dpx::append(c.program, dpx::Func::kViMax3S32, 20 + chain, 1, 2, 3,
                device.dpx.hardware, 40 + 8 * chain);
  }
  c.program.set_iterations(2048);
  c.shape.threads_per_block = 1024;
  c.shape.blocks = 1;
  return c;
}

std::string error_bucket(double err) {
  if (err <= 0.01) return "0-1%";
  if (err <= 0.02) return "1-2%";
  if (err <= kMaxCycleError) return "2-5%";
  return ">5%";
}

TEST(SamplingError, WithinDocumentedBoundAndGoldenBuckets) {
  const auto& device = h800();
  const FastForwardEngine engine(device);
  SampleOptions options;
  options.interval = 128;
  options.detail = 2;
  options.warmup = 2;

  const Case cases[] = {
      trace_case("mem_global", 2048, 8, 4),     // Table 4/5: global chase
      trace_case("smem_conflict", 2048, 8, 4),  // Table 5: shared banks
      trace_case("mma", 2048, 0, 0),            // Table 7: tensor pipe
      trace_case("ffma_tput", 2048, 8, 4),      // FP32 throughput ladder
      trace_case("barrier", 2048, 0, 0),        // barrier-bound shape
      fig07_case(device),                       // Fig. 7: DPX throughput
  };

  conformance::ShapeMap shape;
  for (const auto& c : cases) {
    const auto sampled = engine.sample(c.program, c.shape, c.needs_mem,
                                       options);
    ASSERT_TRUE(sampled.sampled) << c.name;
    const auto exact = engine.exact(c.program, c.shape, c.needs_mem);
    ASSERT_GT(exact.result.cycles, 0.0) << c.name;

    // The functional path is the authority for what executes: instruction
    // totals must agree exactly, only timing is estimated.
    EXPECT_EQ(sampled.instructions, exact.result.instructions_issued)
        << c.name;
    std::string why;
    EXPECT_TRUE(sampled.pmu.conserved(&why)) << c.name << ": " << why;
    EXPECT_EQ(sampled.pmu.get(prof::Counter::kInstIssued),
              static_cast<double>(sampled.instructions))
        << c.name;

    const double err =
        std::abs(sampled.cycles_est - exact.result.cycles) /
        exact.result.cycles;
    EXPECT_LE(err, kMaxCycleError)
        << c.name << ": estimated " << sampled.cycles_est << " vs exact "
        << exact.result.cycles;
    shape["sampling." + c.name + ".cycle_error"] = error_bucket(err);
  }

  const std::string path =
      std::string(HSIM_GOLDEN_DIR) + "/sampling_error.json";
  if (conformance::update_golden_requested()) {
    conformance::save_shape(path, shape);
    GTEST_SKIP() << "golden updated: " << path;
  }
  const auto expected = conformance::load_shape(path);
  ASSERT_TRUE(expected.has_value())
      << expected.error().to_string()
      << " (regenerate with HSIM_UPDATE_GOLDEN=1)";
  for (const auto& diff : conformance::diff_shapes(expected.value(), shape)) {
    ADD_FAILURE() << "sampling_error.json: " << diff;
  }
}

TEST(SamplingError, SampledRunIsDeterministic) {
  const auto& device = h800();
  const FastForwardEngine engine(device);
  const Case c = trace_case("smem_conflict", 1024, 8, 2);
  SampleOptions options;
  options.interval = 128;

  const auto a = engine.sample(c.program, c.shape, c.needs_mem, options);
  const auto b = engine.sample(c.program, c.shape, c.needs_mem, options);
  EXPECT_EQ(a.cycles_est, b.cycles_est);
  EXPECT_EQ(a.detailed_cycles, b.detailed_cycles);
  EXPECT_EQ(a.instructions, b.instructions);
  ASSERT_EQ(a.windows.size(), b.windows.size());
  for (std::size_t i = 0; i < a.windows.size(); ++i) {
    EXPECT_EQ(a.windows[i].cycles, b.windows[i].cycles) << "window " << i;
    EXPECT_EQ(a.windows[i].instructions, b.windows[i].instructions);
  }
}

TEST(SamplingError, NonSampleableKernelFallsBackExactly) {
  const auto& device = h800();
  const FastForwardEngine engine(device);
  // One iteration: nothing to fast-forward over.
  const Case c = trace_case("ffma_dep", 1, 0, 0);
  const auto sampled = engine.sample(c.program, c.shape, c.needs_mem);
  EXPECT_FALSE(sampled.sampled);
  const auto exact = engine.exact(c.program, c.shape, c.needs_mem);
  EXPECT_EQ(sampled.cycles_est, exact.result.cycles);
  EXPECT_EQ(sampled.instructions, exact.result.instructions_issued);
}

}  // namespace
}  // namespace hsim::ff
