// te.Linear: the Transformer Engine linear layer.
//
// In FP8 mode TE surrounds the GEMM with data transformation: an amax
// reduction, input/weight casts to FP8, and output rescale.  At small sizes
// those conversion kernels dominate (Fig 3); past N ~ 8192 the FP8 GEMM
// amortises them and throughput approaches 2x FP16 (Fig 4).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "te/ops.hpp"

namespace hsim::te {

/// One named cost component of a linear forward (Fig 3's stack).
struct OpSlice {
  std::string name;
  double seconds = 0;
};

struct LinearProfile {
  std::vector<OpSlice> slices;
  double total_seconds = 0;
  double gflops = 0;

  [[nodiscard]] double fraction(std::string_view op_name) const;
};

/// Profile D(m x n) = A(m x k) W(k x n) in the given compute precision.
/// FP8 adds the conversion pipeline; FP16/FP32 run a bare GEMM (+bias).
Expected<LinearProfile> linear_forward(const CostModel& model, std::int64_t m,
                                       std::int64_t n, std::int64_t k,
                                       num::DType dtype);

/// The paper's Fig 4 point: square N x N = N x N * N x N multiply.
Expected<LinearProfile> linear_square(const CostModel& model, std::int64_t n,
                                      num::DType dtype);

}  // namespace hsim::te
