// Parallel sweep engine: determinism across thread counts, seed
// derivation, cycle-report aggregation.
#include "sim/sweep.hpp"

#include <cstdlib>
#include <optional>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "arch/device.hpp"
#include "core/dpxbench.hpp"

namespace hsim::sim {
namespace {

// A point function with real RNG dependence: results change if any point
// draws from the wrong stream or a stream is shared between points.
std::vector<double> rng_sweep(std::size_t threads) {
  SweepOptions options;
  options.threads = threads;
  options.seed = 1234;
  return sweep(
      64,
      [](SweepContext& ctx) {
        auto rng = ctx.rng();
        double acc = static_cast<double>(ctx.index());
        for (int draw = 0; draw < 100; ++draw) acc += rng.uniform(0.0, 1.0);
        return acc;
      },
      options);
}

TEST(Sweep, BitIdenticalAcrossThreadCounts) {
  const auto serial = rng_sweep(1);
  EXPECT_EQ(serial, rng_sweep(2));
  EXPECT_EQ(serial, rng_sweep(8));
}

TEST(Sweep, ReportBitIdenticalAcrossThreadCounts) {
  const auto run = [](std::size_t threads) {
    SweepOptions options;
    options.threads = threads;
    CycleReport report;
    sweep(
        32,
        [](SweepContext& ctx) {
          auto rng = ctx.rng();
          const double busy = rng.uniform(0.0, 50.0);
          ctx.record({"point", 100.0,
                      {{"unit.a", busy, ctx.index()},
                       {"unit.b", 2.0 * busy, 1}}});
          return 0;
        },
        options, &report);
    std::ostringstream json;
    report.write_json(json);
    return json.str();
  };
  const auto serial = run(1);
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(Sweep, SimulatorPointsBitIdenticalAcrossThreadCounts) {
  // End-to-end shape of a paper-table bench: independent simulator
  // instances per point, usage recorded, table values compared exactly.
  const auto run = [](std::size_t threads) {
    SweepOptions options;
    options.threads = threads;
    CycleReport report;
    const auto results = sweep(
        6,
        [](SweepContext& ctx) -> std::optional<double> {
          const int blocks = static_cast<int>(ctx.index()) + 1;
          auto point = core::dpx_block_point(arch::h800_pcie(),
                                             dpx::Func::kViMax3S32, blocks);
          if (!point) return std::nullopt;
          return point.value().gcalls_per_sec;
        },
        options, &report);
    return results;
  };
  const auto serial = run(1);
  ASSERT_EQ(serial.size(), 6u);
  for (const auto& r : serial) EXPECT_TRUE(r.has_value());
  EXPECT_EQ(serial, run(2));
  EXPECT_EQ(serial, run(8));
}

TEST(Sweep, PointSeedsArePureAndDistinct) {
  EXPECT_EQ(derive_point_seed(7, 3), derive_point_seed(7, 3));
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < 1000; ++i) seeds.insert(derive_point_seed(7, i));
  EXPECT_EQ(seeds.size(), 1000u);
  EXPECT_NE(derive_point_seed(7, 0), derive_point_seed(8, 0));
}

TEST(Sweep, ContextRngRestartsPerCall) {
  SweepContext ctx(5, 99);
  auto a = ctx.rng();
  auto b = ctx.rng();
  EXPECT_EQ(a(), b());
}

TEST(Sweep, ResultsLandInIndexOrder) {
  SweepOptions options;
  options.threads = 4;
  const auto results =
      sweep(100, [](SweepContext& ctx) { return ctx.index() * 3; }, options);
  for (std::size_t i = 0; i < results.size(); ++i) EXPECT_EQ(results[i], i * 3);
}

TEST(Sweep, ReportAggregatesAcrossPoints) {
  SweepOptions options;
  options.threads = 1;
  CycleReport report;
  sweep(
      4,
      [](SweepContext& ctx) {
        ctx.record({"p", 10.0,
                    {{"u", static_cast<double>(ctx.index() + 1),
                      ctx.index() + 1}}});
        return 0;
      },
      options, &report);
  ASSERT_EQ(report.samples(), 4u);
  const auto& entry = report.units().at("u");
  EXPECT_EQ(entry.busy_cycles.count(), 4u);
  EXPECT_DOUBLE_EQ(entry.busy_cycles.mean(), 2.5);       // (1+2+3+4)/4
  EXPECT_DOUBLE_EQ(entry.occupancy.mean(), 0.25);        // busy/total
  EXPECT_EQ(entry.ops, 1u + 2u + 3u + 4u);
}

TEST(Sweep, ExceptionsPropagate) {
  SweepOptions options;
  options.threads = 2;
  EXPECT_THROW(sweep(
                   16,
                   [](SweepContext& ctx) {
                     if (ctx.index() == 7) throw std::runtime_error("boom");
                     return 0;
                   },
                   options),
               std::runtime_error);
}

TEST(Sweep, EnvOverrideResolvesThreadCount) {
  ASSERT_EQ(setenv("HSIM_SWEEP_THREADS", "3", 1), 0);
  EXPECT_EQ(resolve_sweep_threads(0), 3u);
  // Explicit thread counts win over the environment.
  EXPECT_EQ(resolve_sweep_threads(5), 5u);
  ASSERT_EQ(unsetenv("HSIM_SWEEP_THREADS"), 0);
  EXPECT_EQ(resolve_sweep_threads(0), global_pool().size());
}

}  // namespace
}  // namespace hsim::sim
