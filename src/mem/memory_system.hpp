// Composed device memory system: per-SM L1s, device L2, DRAM, TLB.
//
// Two access paths mirror how the paper's benchmarks use memory:
//   * `load` — the latency path: one dependent access at a time, returning
//     the load-to-use completion time for whichever level serviced it;
//   * `warp_transaction` — the throughput path: a coalesced warp-wide
//     request that occupies the L1 port, and the L2/DRAM ports when it
//     misses, so aggregate bandwidth emerges from port contention.
// `ld.ca` allocates in L1 + L2; `ld.cg` bypasses L1 (the paper uses the two
// modifiers to place working sets in specific levels).
#pragma once

#include <memory>
#include <vector>

#include "arch/device.hpp"
#include "mem/cache.hpp"
#include "mem/dram.hpp"
#include "mem/tlb.hpp"
#include "prof/pmu.hpp"
#include "sim/accounting.hpp"
#include "sim/pipeline.hpp"
#include "trace/trace.hpp"

namespace hsim::mem {

enum class MemSpace : std::uint8_t { kGlobalCa, kGlobalCg, kShared };
enum class MemLevel : std::uint8_t { kL1, kL2, kDram, kShared };

constexpr std::string_view to_string(MemLevel level) noexcept {
  switch (level) {
    case MemLevel::kL1: return "L1";
    case MemLevel::kL2: return "L2";
    case MemLevel::kDram: return "Global";
    case MemLevel::kShared: return "Shared";
  }
  return "?";
}

struct LoadResult {
  double ready_time = 0;      // cycles; when the value is usable
  MemLevel served_by = MemLevel::kL1;
  bool tlb_miss = false;
};

/// Classification of the most recent access (either path): the deepest
/// level that had to service it, and whether it paid a TLB walk.  The SM
/// model reads this to attribute a later stall on the loaded value.
struct AccessClass {
  MemLevel deepest = MemLevel::kL1;
  bool tlb_miss = false;
};

/// Stall-reason taxonomy entry for a memory access class.
constexpr trace::StallReason stall_reason_of(const AccessClass& access) noexcept {
  if (access.tlb_miss) return trace::StallReason::kMemTlb;
  switch (access.deepest) {
    case MemLevel::kL1: return trace::StallReason::kMemL1;
    case MemLevel::kL2: return trace::StallReason::kMemL2;
    case MemLevel::kDram: return trace::StallReason::kMemDram;
    case MemLevel::kShared: return trace::StallReason::kMemShared;
  }
  return trace::StallReason::kMemL1;
}

/// Fixup registered by a core for a deferred access (full-chip mode): the
/// shared fabric resolves the request at the next epoch barrier and folds
/// the true completion time `c` into the registered slots:
///   *time_slot   = max(*time_slot (if finite, else floor), c + offset, floor)
///   *reason_slot = max(*reason_slot, resolved memory reason)   [enum order]
///   *drain_slot  = max(*drain_slot, c)
///   *outstanding is decremented once per resolved ticket.
/// Slots must stay valid until the next barrier resolution.
struct DeferredFixup {
  double* time_slot = nullptr;
  trace::StallReason* reason_slot = nullptr;
  double offset = 0.0;  // added to the resolved completion (e.g. smem hop)
  double floor = 0.0;   // finite local part computed at issue time
  double* drain_slot = nullptr;
  int* outstanding = nullptr;
};

/// Seam between the SM core and whatever services its global-memory
/// traffic: the plain MemorySystem (single-SM benchmarks, resolves every
/// access at issue time) or a full-chip per-SM path that defers shared
/// L2/DRAM arbitration to deterministic epoch barriers.  A deferred access
/// returns +infinity and reports last_pending(); the issuing core then
/// registers a DeferredFixup for the scoreboard slots the provisional time
/// flowed into.
class MemPath {
 public:
  virtual ~MemPath() = default;

  /// Latency path: a single (thread-granular) dependent load.
  virtual LoadResult load(int sm, std::uint64_t addr, MemSpace space,
                          double now) = 0;

  /// Throughput path: one coalesced warp transaction of `bytes` total,
  /// made of `access_bytes`-wide per-thread accesses (4 = FP32, 8 = FP64,
  /// 16 = float4).  Returns the completion time.
  virtual double warp_transaction(int sm, std::uint64_t addr,
                                  std::uint32_t bytes, int access_bytes,
                                  MemSpace space, double now) = 0;

  /// Which level serviced the most recent load()/warp_transaction().
  [[nodiscard]] virtual const AccessClass& last_access() const noexcept = 0;

  /// True when the most recent access was deferred to an epoch barrier
  /// (its returned completion time is +infinity and provisional).
  [[nodiscard]] virtual bool last_pending() const noexcept { return false; }

  /// Attach `fixup` to every deferred ticket created since the previous
  /// attach call; returns how many tickets it covered (0 on the immediate
  /// path).
  virtual int attach_fixup(const DeferredFixup& fixup) {
    (void)fixup;
    return 0;
  }
};

class MemorySystem final : public MemPath {
 public:
  /// `active_sms` controls how many per-SM L1 instances are materialised.
  MemorySystem(const arch::DeviceSpec& device, int active_sms);

  /// Latency path: a single (thread-granular) dependent load.
  LoadResult load(int sm, std::uint64_t addr, MemSpace space,
                  double now) override;

  /// Throughput path: one coalesced warp transaction of `bytes` total,
  /// made of `access_bytes`-wide per-thread accesses (4 = FP32, 8 = FP64,
  /// 16 = float4).  Returns the completion time.
  double warp_transaction(int sm, std::uint64_t addr, std::uint32_t bytes,
                          int access_bytes, MemSpace space,
                          double now) override;

  /// Pre-fill a byte range into a level (the benchmark warm-up phase).
  void warm(std::uint64_t base, std::uint64_t size, MemSpace space, int sm = 0);

  [[nodiscard]] Cache& l1(int sm) { return *l1_[static_cast<std::size_t>(sm)]; }
  [[nodiscard]] Cache& l2() { return *l2_; }
  [[nodiscard]] Dram& dram() { return *dram_; }
  [[nodiscard]] Tlb& tlb() { return *tlb_; }
  [[nodiscard]] const arch::DeviceSpec& device() const { return device_; }
  [[nodiscard]] int active_sms() const { return static_cast<int>(l1_.size()); }

  /// Port width (bytes/clk) the L1 presents to accesses of this size.
  [[nodiscard]] double l1_width(int access_bytes) const;
  /// Device-wide L2 width for this access size.
  [[nodiscard]] double l2_width(int access_bytes) const;

  /// Per-unit busy-cycle counters since construction / reset_timing():
  /// "L1.port" (busy averaged over active SMs, ops summed), "L2.port",
  /// "DRAM.channel".
  [[nodiscard]] std::vector<sim::UnitSample> unit_usage() const;

  void reset_timing();

  /// Snapshot the full hierarchy (every L1, L2, DRAM, TLB, ports).  Restore
  /// requires a MemorySystem built for the same device/active_sms; geometry
  /// mismatches fail the reader rather than resizing.
  void save_state(common::StateWriter& w) const {
    w.marker(0x4d454d53u);  // "MEMS"
    w.u64(l1_.size());
    for (std::size_t i = 0; i < l1_.size(); ++i) {
      l1_[i]->save_state(w);
      l1_port_[i].save_state(w);
    }
    l2_->save_state(w);
    l2_port_.save_state(w);
    dram_->save_state(w);
    tlb_->save_state(w);
  }
  void load_state(common::StateReader& r) {
    r.expect_marker(0x4d454d53u);
    if (!r.expect(r.u64() == l1_.size())) return;
    for (std::size_t i = 0; i < l1_.size(); ++i) {
      l1_[i]->load_state(r);
      l1_port_[i].load_state(r);
    }
    l2_->load_state(r);
    l2_port_.load_state(r);
    dram_->load_state(r);
    tlb_->load_state(r);
  }

  /// Attach a lifecycle event sink: every load / warp transaction emits a
  /// kExecute event named after the deepest level that serviced it.
  void set_trace(trace::TraceSink* sink) noexcept { trace_ = sink; }
  /// Attach a performance-counter block: load() and warp_transaction()
  /// count per-level sector accesses/hits/misses and TLB traffic into it
  /// (warm() is setup and deliberately not counted).  Zero overhead beyond
  /// one branch per site when detached.
  void set_pmu(prof::PmuCounters* pmu) noexcept { pmu_ = pmu; }
  /// Which level serviced the most recent load()/warp_transaction().
  [[nodiscard]] const AccessClass& last_access() const noexcept override {
    return last_;
  }

 private:
  const arch::DeviceSpec& device_;
  trace::TraceSink* trace_ = nullptr;
  prof::PmuCounters* pmu_ = nullptr;
  AccessClass last_;
  std::vector<std::unique_ptr<Cache>> l1_;
  std::vector<sim::PipelinedUnit> l1_port_;
  std::unique_ptr<Cache> l2_;
  sim::PipelinedUnit l2_port_;
  std::unique_ptr<Dram> dram_;
  std::unique_ptr<Tlb> tlb_;
};

}  // namespace hsim::mem
