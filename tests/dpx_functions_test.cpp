// DPX intrinsics: exact CUDA semantics, property checks against scalar
// references, cost table sanity, micro-op expansion.
#include "dpx/functions.hpp"

#include <algorithm>
#include <limits>

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace hsim::dpx {
namespace {

std::uint32_t u(std::int32_t v) { return static_cast<std::uint32_t>(v); }
std::int32_t s(std::uint32_t v) { return static_cast<std::int32_t>(v); }

std::uint32_t pack16(std::int16_t lo, std::int16_t hi) {
  return static_cast<std::uint16_t>(lo) |
         (static_cast<std::uint32_t>(static_cast<std::uint16_t>(hi)) << 16);
}

TEST(Dpx, ViAddMaxS32) {
  EXPECT_EQ(s(apply(Func::kViAddMaxS32, u(3), u(4), u(10))), 10);
  EXPECT_EQ(s(apply(Func::kViAddMaxS32, u(30), u(4), u(10))), 34);
  EXPECT_EQ(s(apply(Func::kViAddMaxS32, u(-5), u(-6), u(-20))), -11);
}

TEST(Dpx, ViAddMaxS32ReluClampsAtZero) {
  EXPECT_EQ(s(apply(Func::kViAddMaxS32Relu, u(-9), u(-1), u(-3))), 0);
  EXPECT_EQ(s(apply(Func::kViAddMaxS32Relu, u(5), u(1), u(-3))), 6);
}

TEST(Dpx, ViAddMinVariants) {
  EXPECT_EQ(s(apply(Func::kViAddMinS32, u(3), u(4), u(5))), 5);
  EXPECT_EQ(s(apply(Func::kViAddMinS32Relu, u(-4), u(-4), u(5))), 0);
  EXPECT_EQ(s(apply(Func::kViAddMinS32Relu, u(2), u(1), u(5))), 3);
}

TEST(Dpx, ViMax3AndMin3) {
  EXPECT_EQ(s(apply(Func::kViMax3S32, u(1), u(9), u(5))), 9);
  EXPECT_EQ(s(apply(Func::kViMin3S32, u(1), u(9), u(5))), 1);
  EXPECT_EQ(s(apply(Func::kViMax3S32Relu, u(-1), u(-9), u(-5))), 0);
  EXPECT_EQ(s(apply(Func::kViMin3S32Relu, u(1), u(9), u(5))), 1);
}

TEST(Dpx, ViBMaxProducesPredicate) {
  bool pred = false;
  EXPECT_EQ(s(apply(Func::kViBMaxS32, u(7), u(3), 0, &pred)), 7);
  EXPECT_TRUE(pred);
  EXPECT_EQ(s(apply(Func::kViBMaxS32, u(3), u(7), 0, &pred)), 7);
  EXPECT_FALSE(pred);
  EXPECT_EQ(s(apply(Func::kViBMinS32, u(3), u(7), 0, &pred)), 3);
  EXPECT_TRUE(pred);
}

TEST(Dpx, UnsignedVariants) {
  EXPECT_EQ(apply(Func::kViAddMaxU32, 0xFFFFFFF0u, 0x10u, 5u), 5u);  // wraps
  EXPECT_EQ(apply(Func::kViAddMaxU32, 100u, 50u, 5u), 150u);
  EXPECT_EQ(apply(Func::kViAddMinU32, 100u, 50u, 5u), 5u);
}

TEST(Dpx, AddWrapsTwosComplement) {
  const auto max32 = std::numeric_limits<std::int32_t>::max();
  EXPECT_EQ(s(apply(Func::kViAddMaxS32, u(max32), u(1), u(0))), 0);
  // max32 + 1 wraps to INT_MIN, so max(INT_MIN, 0) = 0.
}

TEST(Dpx, S16x2OperatesPerHalf) {
  const auto a = pack16(10, -10);
  const auto b = pack16(5, -5);
  const auto c = pack16(100, -100);
  const auto r = apply(Func::kViAddMaxS16x2, a, b, c);
  EXPECT_EQ(static_cast<std::int16_t>(r & 0xFFFF), 100);   // max(15, 100)
  EXPECT_EQ(static_cast<std::int16_t>(r >> 16), -15);      // max(-15, -100)
}

TEST(Dpx, S16x2Relu) {
  const auto a = pack16(-10, 10);
  const auto b = pack16(-5, 5);
  const auto c = pack16(-100, -100);
  const auto r = apply(Func::kViAddMaxS16x2Relu, a, b, c);
  EXPECT_EQ(static_cast<std::int16_t>(r & 0xFFFF), 0);
  EXPECT_EQ(static_cast<std::int16_t>(r >> 16), 15);
}

TEST(Dpx, S16x2Max3) {
  const auto r = apply(Func::kViMax3S16x2, pack16(1, -1), pack16(2, -2),
                       pack16(3, -3));
  EXPECT_EQ(static_cast<std::int16_t>(r & 0xFFFF), 3);
  EXPECT_EQ(static_cast<std::int16_t>(r >> 16), -1);
}

TEST(Dpx, PropertyAgainstScalarReference) {
  Xoshiro256ss rng(21);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto a = static_cast<std::int32_t>(rng());
    const auto b = static_cast<std::int32_t>(rng());
    const auto c = static_cast<std::int32_t>(rng());
    const auto wrap_add = static_cast<std::int32_t>(
        static_cast<std::uint32_t>(a) + static_cast<std::uint32_t>(b));
    EXPECT_EQ(s(apply(Func::kViAddMaxS32, u(a), u(b), u(c))),
              std::max(wrap_add, c));
    EXPECT_EQ(s(apply(Func::kViMin3S32, u(a), u(b), u(c))),
              std::min({a, b, c}));
    EXPECT_EQ(s(apply(Func::kViMaxS32Relu, u(a), u(b), 0)),
              std::max({a, b, 0}));
  }
}

TEST(Dpx, ClassifiersConsistent) {
  for (const auto f : kAllFuncs) {
    const auto n = name(f);
    EXPECT_EQ(is_16x2(f), n.find("16x2") != std::string_view::npos) << n;
    EXPECT_EQ(has_relu(f), n.find("relu") != std::string_view::npos) << n;
    EXPECT_EQ(is_bounds(f), n.find("__vib") != std::string_view::npos) << n;
  }
}

TEST(Dpx, CostsReflectStructure) {
  for (const auto f : kAllFuncs) {
    const Cost c = cost(f);
    EXPECT_GE(c.hw_instrs, 1) << name(f);
    EXPECT_LE(c.hw_instrs, 2) << name(f);
    EXPECT_GE(c.emu_ops, 1) << name(f);
    if (is_16x2(f)) {
      EXPECT_GE(c.emu_ops, 9) << name(f);  // unpack/compute/pack
    } else {
      EXPECT_LE(c.emu_ops, 3) << name(f);
    }
    if (has_relu(f) && !is_16x2(f)) {
      // Three-input relu forms need the extra clamp op; two-input
      // (__vimax_s32_relu) forms fold it into the second IMNMX.
      EXPECT_GE(c.emu_ops, 2) << name(f);
      EXPECT_LE(c.emu_ops, 3) << name(f);
    }
  }
}

TEST(Dpx, HeadlineSpeedupIs13x) {
  // The paper: "For 16-bit operations, H800 also has significant
  // acceleration, up to 13 times."  Latency model: emu_depth * 4.5 cycles
  // vs 1 fused op at 4.5 cycles.
  const Cost c = cost(Func::kViMax3S16x2Relu);
  EXPECT_EQ(c.emu_depth / c.hw_instrs, 13);
}

TEST(Dpx, ExpansionEmitsHardwareForm) {
  isa::Program p;
  append(p, Func::kViMax3S32, 1, 2, 3, 4, /*hardware=*/true, 10);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p.body()[0].op, isa::Opcode::kVIMnMx);
  EXPECT_EQ(p.body()[0].imm & 1, 1);  // max mode
}

TEST(Dpx, ExpansionEmitsEmulationChain) {
  isa::Program p;
  append(p, Func::kViAddMaxS32Relu, 1, 2, 3, 4, /*hardware=*/false, 10);
  EXPECT_EQ(p.size(), static_cast<std::size_t>(cost(Func::kViAddMaxS32Relu).emu_ops));
  EXPECT_EQ(p.body()[0].op, isa::Opcode::kIAdd3);
  EXPECT_EQ(p.body().back().rd, 1);  // final op writes the destination
}

TEST(Dpx, ExpansionChainIsDependent) {
  isa::Program p;
  append(p, Func::kViMax3S16x2, 1, 2, 3, 4, /*hardware=*/false, 10);
  // Each op must consume the previous op's destination.
  for (std::size_t i = 1; i < p.size(); ++i) {
    EXPECT_EQ(p.body()[i].ra, p.body()[i - 1].rd) << i;
  }
}

}  // namespace
}  // namespace hsim::dpx
