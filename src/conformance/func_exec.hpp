// Steppable functional executor: the engine behind RefInterp::run and the
// fast-forward mode of src/ff.
//
// Holds the interpreter's architectural state (per-warp pc/iteration/
// barrier flags, register lanes, one shared-memory image) as a live object
// so execution can pause at instruction boundaries, hand state across the
// functional/cycle-accurate mode boundary (sm::ArchState), and resume.
// Semantics are identical to RefInterp — same round-robin sweeps, same
// barrier release rule, same deliberate model gaps (timing-only stores,
// CLOCK taint) — and RefInterp::run is now a thin wrapper over this class,
// so the conformance oracle and the fast-forward engine cannot drift apart.
//
// Beyond execution, the executor keeps a cache-warmth summary: the set of
// 128-byte global lines its loads touched since the last clear, split by
// cache modifier (ld.ca allocates in L1+L2, ld.cg in L2 only).  The
// fast-forward engine replays that footprint through MemorySystem::warm()
// before a detailed sample window, so the window starts with realistically
// heated tags instead of cold misses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "arch/device.hpp"
#include "conformance/ref_interp.hpp"
#include "isa/program.hpp"
#include "sm/sm_core.hpp"

namespace hsim::conformance {

/// One touched global line for cache warming.
struct WarmLine {
  std::uint64_t base = 0;  // 128-byte aligned byte address
  bool l1 = false;         // ld.ca (allocates in L1 too) vs ld.cg (L2 only)
};

class FuncExec {
 public:
  FuncExec(const arch::DeviceSpec& device, const isa::Program& program,
           const sm::BlockShape& shape,
           std::span<const std::uint64_t> global);

  /// One round-robin sweep: release barriers whose blocks are fully
  /// parked, then step every live, unparked warp one instruction.
  /// Returns false once every warp has retired.
  bool step_round();
  void run_to_completion();
  /// Advance until every live warp has reached `iteration` (all warps
  /// land aligned at pc 0 of that iteration — uniform control flow keeps
  /// the round-robin sweeps in lockstep).
  void run_to_iteration(std::uint32_t iteration);
  /// Advance whole rounds until at least `count` total instructions have
  /// executed (may overshoot by up to one instruction per live warp).
  void run_to_instructions(std::uint64_t count);

  [[nodiscard]] bool done() const noexcept { return live_ == 0; }
  [[nodiscard]] std::uint64_t instructions() const noexcept {
    return instructions_;
  }
  [[nodiscard]] int total_warps() const noexcept {
    return static_cast<int>(warps_.size());
  }
  [[nodiscard]] int num_regs() const noexcept { return num_regs_; }
  [[nodiscard]] bool clock_tainted() const noexcept { return clock_tainted_; }
  [[nodiscard]] bool used_shared() const noexcept { return used_shared_; }
  [[nodiscard]] const std::vector<int>& retire_order() const noexcept {
    return retire_order_;
  }
  [[nodiscard]] const std::vector<std::uint64_t>& issued_per_warp()
      const noexcept {
    return issued_per_warp_;
  }

  /// Mode-boundary handoff (see sm::SmCore::import_arch/export_arch).
  [[nodiscard]] sm::ArchState export_arch() const;
  void import_arch(const sm::ArchState& arch);

  /// Global lines loaded since the last clear, in deterministic
  /// (address-sorted, ca-before-cg) order.
  [[nodiscard]] std::vector<WarmLine> touched_lines() const;
  void clear_touched();

  /// Snapshot the architectural state into the RefResult shape the Differ
  /// compares (retirement ledger included).  Valid at any boundary; the
  /// conformance oracle calls it at completion.
  [[nodiscard]] RefResult result() const;

 private:
  struct WarpState {
    std::size_t pc = 0;
    std::uint32_t iteration = 0;
    bool done = false;
    bool at_barrier = false;
  };

  void step(int warp_id);
  void release_barriers();
  void touch_line(std::uint64_t addr, bool l1);

  const arch::DeviceSpec& device_;
  const isa::Program& program_;
  std::span<const std::uint64_t> global_;
  int warps_per_block_ = 1;
  int num_regs_ = 0;
  int live_ = 0;
  std::vector<WarpState> warps_;
  std::vector<std::vector<std::uint64_t>> regs_;
  std::vector<std::uint8_t> shared_;
  std::vector<std::uint64_t> issued_per_warp_;
  std::vector<int> retire_order_;
  std::uint64_t instructions_ = 0;
  bool used_shared_ = false;
  bool clock_tainted_ = false;
  // Touched-line sets, kept sorted-unique (footprints are small: the
  // fuzzer's global window is 32 KiB, the trace kernels' strides loop).
  std::vector<std::uint64_t> ca_lines_;
  std::vector<std::uint64_t> cg_lines_;
};

}  // namespace hsim::conformance
