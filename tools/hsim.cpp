// hsim — command-line probe for the simulator, mirroring how one would
// poke real silicon with the paper's microbenchmarks.
//
//   hsim devices
//   hsim pchase    <device> [l1|l2|shared|global]
//   hsim bandwidth <device>
//   hsim sass      <device> <mma|wgmma|wmma> <dtype> [kN] [sparse]
//   hsim tc        <device> <mma|wgmma|wmma> <dtype> [nN] [sparse] [rs|ss]
//   hsim dpx       <device> <function-name>
//   hsim dsm       [cluster-size] [block-threads] [ilp]
//   hsim trace     <device> <kernel> [--iters=N] [--warps=N] [--blocks=N]
//                  [--top=N] [--trace-out=trace.json]
//   hsim chip      <device> <kernel> [--iters=N] [--warps=N] [--blocks=N]
//                  [--threads=N] [--epoch=E] [--slices=N] [--top=N]
//   hsim profile   <device> <kernel> [--iters=N] [--warps=N] [--blocks=N]
//                  [--full-chip] [--threads=N] [--json=out.json]
//   hsim fuzz      <device> [--seed=N] [--count=K] [--threads=N]
//                  [--no-shrink] [--out=repro.hsim] [--replay=repro.hsim]
//                  [--full-chip] [--grid-blocks=N] [--fast-forward]
//   hsim sample    <device> <kernel> [--iters=N] [--warps=N] [--blocks=N]
//                  [--interval=N] [--detail=N] [--warmup=N]
//                  [--snapshot=FILE] [--no-check]
//
// Every subcommand rejects unrecognised `--flags` with the usage text and a
// nonzero exit, so typos never silently fall back to defaults.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/table.hpp"
#include "conformance/differ.hpp"
#include "core/dpxbench.hpp"
#include "core/membench.hpp"
#include "core/pchase.hpp"
#include "core/tcbench.hpp"
#include "dsm/rbc.hpp"
#include "ff/fast_forward.hpp"
#include "gpu/gpu_engine.hpp"
#include "prof/metrics.hpp"
#include "prof/pmu.hpp"
#include "serve/server.hpp"
#include "sm/launcher.hpp"
#include "sm/sm_core.hpp"
#include "trace/kernels.hpp"
#include "trace/sinks.hpp"

namespace {

using namespace hsim;

int usage() {
  std::cerr <<
      "usage: hsim <command> ...\n"
      "  devices                                   list the device registry\n"
      "  pchase <device> [l1|l2|shared|global]     p-chase latency\n"
      "  bandwidth <device>                        per-level throughput\n"
      "  sass <device> <mma|wgmma|wmma> <dtype> [kN] [sparse]\n"
      "  tc <device> <mma|wgmma|wmma> <dtype> [nN] [sparse] [rs|ss]\n"
      "  dpx <device> <function>                   e.g. __viaddmax_s32_relu\n"
      "  dsm [cs] [threads] [ilp]                  SM-to-SM ring copy (H800)\n"
      "  trace <device> <kernel> [--iters=N] [--warps=N] [--blocks=N]\n"
      "        [--top=N] [--trace-out=trace.json]   stall-reason breakdown;\n"
      "  chip <device> <kernel> [--iters=N] [--warps=N] [--blocks=N]\n"
      "        [--threads=N] [--epoch=E] [--slices=N] [--top=N]\n"
      "        full-chip run: every SM simulated against a shared L2 fabric\n"
      "  profile <device> <kernel> [--iters=N] [--warps=N] [--blocks=N]\n"
      "        [--full-chip] [--threads=N] [--json=out.json]\n"
      "        hardware-counter profile: occupancy, issue, memory chart,\n"
      "        speed-of-light and roofline sections\n"
      "  fuzz <device> [--seed=N] [--count=K] [--threads=N] [--no-shrink]\n"
      "        [--out=repro.hsim] [--replay=repro.hsim] [--full-chip]\n"
      "        [--grid-blocks=N] [--fast-forward]\n"
      "        differential conformance: reference interpreter vs pipeline\n"
      "        (--fast-forward: pipeline switches between functional and\n"
      "        detailed mode at random instruction boundaries)\n"
      "  sample <device> <kernel> [--iters=N] [--warps=N] [--blocks=N]\n"
      "        [--interval=N] [--detail=N] [--warmup=N] [--snapshot=FILE]\n"
      "        [--no-check]\n"
      "        sampled simulation: functional fast-forward with detailed\n"
      "        windows; cross-checked against the exact run unless\n"
      "        --no-check (--snapshot caches the exact run's warmup)\n"
      "  serve [--port=N] [--host=A] [--threads=N] [--cache=N]\n"
      "        [--max-inflight=N] [--timeout-ms=T] [--batch=FILE] [--smoke]\n"
      "        persistent simulation service: newline-delimited JSON\n"
      "        requests over TCP (or from FILE / '-' stdin with --batch),\n"
      "        answered through a content-addressed result cache;\n"
      "        --smoke runs the self-contained TCP round-trip check\n"
      "  (trace kernels:)\n";
  for (const auto name : trace::trace_kernel_names()) {
    std::cerr << "          " << name << " — "
              << trace::trace_kernel_description(name) << "\n";
  }
  return 2;
}

/// Gate for subcommands whose operands are purely positional: any
/// `-`-prefixed argument is unknown by construction.  (Commands with real
/// flags reject unknown ones inside their own parse loops.)
bool has_unknown_flags(const std::vector<std::string>& args) {
  for (const auto& arg : args) {
    if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown option: " << arg << "\n";
      return true;
    }
  }
  return false;
}

Expected<num::DType> parse_dtype(std::string_view text) {
  using num::DType;
  if (text == "fp16") return DType::kFp16;
  if (text == "bf16") return DType::kBf16;
  if (text == "tf32") return DType::kTf32;
  if (text == "fp8" || text == "e4m3") return DType::kFp8E4M3;
  if (text == "e5m2") return DType::kFp8E5M2;
  if (text == "int8" || text == "s8") return DType::kInt8;
  if (text == "int4" || text == "s4") return DType::kInt4;
  if (text == "b1" || text == "binary") return DType::kBinary;
  return invalid_argument("unknown dtype: " + std::string(text));
}

num::DType default_acc(num::DType ab) {
  return num::is_integer(ab) ? num::DType::kInt32 : num::DType::kFp32;
}

Expected<isa::TcInstr> parse_tc(const std::vector<std::string>& args) {
  if (args.size() < 2) return invalid_argument("need <path> <dtype>");
  isa::TcInstr instr;
  if (args[0] == "mma") {
    instr.path = isa::TcPath::kMma;
    instr.shape = {16, 8, 16};
  } else if (args[0] == "wgmma") {
    instr.path = isa::TcPath::kWgmma;
    instr.shape = {64, 256, 16};
    instr.a_src = isa::OperandSource::kSharedMemory;
  } else if (args[0] == "wmma") {
    instr.path = isa::TcPath::kWmma;
    instr.shape = {16, 16, 16};
  } else {
    return invalid_argument("path must be mma, wgmma or wmma");
  }
  auto ab = parse_dtype(args[1]);
  if (!ab) return ab.error();
  instr.ab = ab.value();
  instr.cd = default_acc(instr.ab);

  int k_unit = 16;
  switch (instr.ab) {
    case num::DType::kTf32: k_unit = instr.path == isa::TcPath::kMma ? 8 : 8; break;
    case num::DType::kFp8E4M3:
    case num::DType::kFp8E5M2:
    case num::DType::kInt8: k_unit = instr.path == isa::TcPath::kMma ? 32 : 32; break;
    case num::DType::kInt4: k_unit = 64; break;
    case num::DType::kBinary: k_unit = 256; break;
    default: break;
  }
  if (instr.path != isa::TcPath::kWmma) instr.shape.k = k_unit;
  if (instr.path == isa::TcPath::kWmma && instr.ab == num::DType::kTf32) {
    instr.shape = {16, 16, 8};
  }

  for (std::size_t i = 2; i < args.size(); ++i) {
    const auto& arg = args[i];
    if (arg == "sparse") {
      instr.sparse = true;
      instr.shape.k *= 2;
    } else if (arg == "rs") {
      instr.a_src = isa::OperandSource::kRegister;
    } else if (arg == "ss") {
      instr.a_src = isa::OperandSource::kSharedMemory;
    } else if (arg.size() > 1 && (arg[0] == 'n' || arg[0] == 'k')) {
      const int value = std::atoi(arg.c_str() + 1);
      if (value <= 0) return invalid_argument("bad shape argument: " + arg);
      (arg[0] == 'n' ? instr.shape.n : instr.shape.k) = value;
    } else {
      return invalid_argument("unknown option: " + arg);
    }
  }
  return instr;
}

int cmd_devices() {
  Table table("Device registry");
  table.set_header({"Name", "CC", "SMs", "Boost MHz", "Mem", "TC gen",
                    "DPX", "DSM", "TMA"});
  for (const auto* device : arch::all_devices()) {
    table.add_row({device->name, device->cc_string(),
                   std::to_string(device->sm_count),
                   fmt_fixed(device->boost_clock_mhz, 0),
                   fmt_fixed(static_cast<double>(device->memory.dram_bytes) /
                                 (1024.0 * 1024.0 * 1024.0), 0) +
                       "GB " + device->memory.dram_type,
                   std::to_string(device->tc.generation),
                   device->dpx.hardware ? "hw" : "emu",
                   device->dsm.available ? "yes" : "no",
                   device->has_tma ? "yes" : "no"});
  }
  table.render(std::cout);
  return 0;
}

int cmd_pchase(const arch::DeviceSpec& device, const std::string& level_name) {
  const auto level = [&]() -> Expected<mem::MemLevel> {
    if (level_name == "l1") return mem::MemLevel::kL1;
    if (level_name == "l2") return mem::MemLevel::kL2;
    if (level_name == "shared") return mem::MemLevel::kShared;
    if (level_name == "global") return mem::MemLevel::kDram;
    return invalid_argument("unknown level: " + level_name);
  }();
  if (!level) {
    std::cerr << level.error().to_string() << "\n";
    return 1;
  }
  const auto result = core::pchase(device, level.value());
  if (!result) {
    std::cerr << result.error().to_string() << "\n";
    return 1;
  }
  std::cout << device.name << " " << mem::to_string(level.value())
            << " latency: " << fmt_fixed(result.value().avg_latency_cycles, 1)
            << " cycles over " << result.value().accesses
            << " dependent accesses (hit rate "
            << fmt_fixed(100 * result.value().hit_rate, 1) << "%)\n";
  return 0;
}

int cmd_bandwidth(const arch::DeviceSpec& device) {
  Table table(device.name + ": memory throughput");
  table.set_header({"Level", "FP32", "FP64", "FP32.v4", "unit"});
  const auto fmt = [](const Expected<core::ThroughputResult>& r) {
    return r ? fmt_fixed(r.value().bytes_per_clk, 1) : std::string("err");
  };
  table.add_row({"L1 (per SM)",
                 fmt(core::measure_l1_throughput(device, core::AccessKind::kFp32)),
                 fmt(core::measure_l1_throughput(device, core::AccessKind::kFp64)),
                 fmt(core::measure_l1_throughput(device, core::AccessKind::kFp32V4)),
                 "B/clk"});
  table.add_row({"L2 (device)",
                 fmt(core::measure_l2_throughput(device, core::AccessKind::kFp32)),
                 fmt(core::measure_l2_throughput(device, core::AccessKind::kFp64)),
                 fmt(core::measure_l2_throughput(device, core::AccessKind::kFp32V4)),
                 "B/clk"});
  const auto shared = core::measure_shared_throughput(device);
  const auto global = core::measure_global_throughput(device);
  table.add_row({"Shared (per SM)", fmt(shared), "-", "-", "B/clk"});
  table.add_row({"Global", global ? fmt_fixed(global.value().gbps, 1) : "err",
                 "-", "-", "GB/s"});
  table.render(std::cout);
  return 0;
}

int cmd_tc(const arch::DeviceSpec& device, const std::vector<std::string>& args,
           bool sass_only) {
  const auto instr = parse_tc(args);
  if (!instr) {
    std::cerr << instr.error().to_string() << "\n";
    return 1;
  }
  const auto sass = isa::compile_to_sass(instr.value(), device);
  std::cout << instr.value().ptx_name() << "\n  -> "
            << (sass ? sass.value() : sass.error().to_string()) << "\n";
  if (sass_only || !sass) return sass ? 0 : 1;
  const auto result = core::bench_tc(instr.value(), device);
  if (!result) {
    std::cerr << result.error().to_string() << "\n";
    return 1;
  }
  const auto& r = result.value();
  std::cout << "  latency " << fmt_fixed(r.latency_cycles, 1) << " cycles\n"
            << "  throughput " << fmt_fixed(r.tflops_zero, 1)
            << " TFLOPS (zeros) / " << fmt_fixed(r.tflops_rand, 1)
            << " TFLOPS (random" << (r.throttled ? ", throttled" : "") << ")\n"
            << "  power " << fmt_fixed(r.power_zero_w, 0) << " W -> "
            << fmt_fixed(r.power_rand_w, 0) << " W\n";
  return 0;
}

int cmd_dpx(const arch::DeviceSpec& device, const std::string& name) {
  for (const auto func : dpx::kAllFuncs) {
    if (dpx::name(func) != name) continue;
    const auto latency = core::dpx_latency(device, func);
    const auto throughput = core::dpx_throughput(device, func);
    if (!latency || !throughput) return 1;
    std::cout << name << " on " << device.name << " ("
              << (device.dpx.hardware ? "hardware" : "emulated") << ")\n"
              << "  latency " << fmt_fixed(latency.value().cycles_per_call, 1)
              << " cycles/call\n";
    if (throughput.value().measurable) {
      std::cout << "  throughput "
                << fmt_fixed(throughput.value().gcalls_per_sec, 0)
                << " Gcalls/s device-wide\n";
    } else {
      std::cout << "  throughput not measurable when emulated (compiler "
                   "folds the predicate form)\n";
    }
    return 0;
  }
  std::cerr << "unknown DPX function; known names:\n";
  for (const auto func : dpx::kAllFuncs) std::cerr << "  " << dpx::name(func) << "\n";
  return 1;
}

int cmd_trace(const arch::DeviceSpec& device,
              const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& kernel_name = args[0];
  std::uint32_t iters = 256;
  int warps = 0;   // 0 = kernel default
  int blocks = 0;  // 0 = kernel default
  int top_n = 10;
  std::string trace_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto& arg = args[i];
    const auto value_of = [&](std::string_view prefix) -> const char* {
      return arg.compare(0, prefix.size(), prefix) == 0
                 ? arg.c_str() + prefix.size()
                 : nullptr;
    };
    if (const char* v = value_of("--iters=")) {
      iters = static_cast<std::uint32_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--warps=")) {
      warps = std::atoi(v);
      continue;
    }
    if (const char* v = value_of("--blocks=")) {
      blocks = std::atoi(v);
      continue;
    }
    if (const char* v = value_of("--top=")) {
      top_n = std::max(1, std::atoi(v));
      continue;
    }
    if (const char* v = value_of("--trace-out=")) {
      trace_out = v;
      continue;
    }
    std::cerr << "unknown option: " << arg << "\n";
    return usage();
  }

  auto kernel = serve::resolve_trace_kernel(kernel_name, iters);
  if (!kernel) {
    std::cerr << kernel.error().to_string() << "\n";
    return 1;
  }
  sm::BlockShape shape;
  shape.threads_per_block =
      warps > 0 ? warps * 32 : kernel.value().threads_per_block;
  shape.blocks = blocks > 0 ? blocks : kernel.value().blocks;

  trace::AggregatingSink agg;
  trace::ChromeTraceSink chrome;
  trace::TeeSink tee;
  tee.add(&agg);
  if (!trace_out.empty()) tee.add(&chrome);

  std::unique_ptr<mem::MemorySystem> memsys;
  if (kernel.value().needs_mem) {
    memsys = std::make_unique<mem::MemorySystem>(device, 1);
  }
  sm::SmCore core(device, memsys.get());
  core.set_trace(&tee);
  if (memsys) memsys->set_trace(&tee);
  const auto result = core.run(kernel.value().program, shape);

  std::cout << device.name << " :: " << kernel.value().name << " — "
            << kernel.value().description << "\n"
            << "  " << shape.total_warps() << " warp(s) x " << iters
            << " iteration(s): " << fmt_fixed(result.cycles, 0) << " cycles, "
            << result.instructions_issued << " instructions (IPC "
            << fmt_fixed(result.ipc(), 2) << ")\n";
  // Slots on schedulers with no resident warp never tick, so the scheduler
  // slot total is issued + recorded stalls.
  const double slot_cycles =
      static_cast<double>(result.instructions_issued) + agg.stall_cycles();
  const double coverage =
      agg.stall_cycles() > 0
          ? 100.0 * agg.attributed_stall_cycles() / agg.stall_cycles()
          : 100.0;
  std::cout << "  non-issue slots: " << fmt_fixed(agg.stall_cycles(), 0)
            << " of " << fmt_fixed(slot_cycles, 0) << " ("
            << fmt_fixed(coverage, 1)
            << "% attributed to named stall reasons)\n\n";
  agg.write_summary(std::cout, slot_cycles, top_n);

  if (!trace_out.empty()) {
    std::ofstream os(trace_out);
    if (!os) {
      std::cerr << "cannot open " << trace_out << " for writing\n";
      return 1;
    }
    chrome.write(os);
    std::cout << "\nwrote " << chrome.size() << " events to " << trace_out;
    if (chrome.dropped() > 0) {
      std::cout << " (ring dropped " << chrome.dropped() << " oldest)";
    }
    std::cout << " — open in ui.perfetto.dev\n";
  }
  return 0;
}

int cmd_chip(const arch::DeviceSpec& device,
             const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& kernel_name = args[0];
  std::uint32_t iters = 256;
  int warps = 0;   // 0 = kernel default
  int blocks = 0;  // 0 = one block per SM
  int top_n = 10;
  gpu::ChipOptions chip_options;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto& arg = args[i];
    const auto value_of = [&](std::string_view prefix) -> const char* {
      return arg.compare(0, prefix.size(), prefix) == 0
                 ? arg.c_str() + prefix.size()
                 : nullptr;
    };
    if (const char* v = value_of("--iters=")) {
      iters = static_cast<std::uint32_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--warps=")) {
      warps = std::atoi(v);
      continue;
    }
    if (const char* v = value_of("--blocks=")) {
      blocks = std::atoi(v);
      continue;
    }
    if (const char* v = value_of("--threads=")) {
      chip_options.threads = std::max(1, std::atoi(v));
      continue;
    }
    if (const char* v = value_of("--epoch=")) {
      chip_options.epoch = std::max(1.0, std::atof(v));
      continue;
    }
    if (const char* v = value_of("--slices=")) {
      chip_options.l2_slices = std::max(1, std::atoi(v));
      continue;
    }
    if (const char* v = value_of("--top=")) {
      top_n = std::max(1, std::atoi(v));
      continue;
    }
    std::cerr << "unknown option: " << arg << "\n";
    return usage();
  }

  auto kernel = serve::resolve_trace_kernel(kernel_name, iters);
  if (!kernel) {
    std::cerr << kernel.error().to_string() << "\n";
    return 1;
  }
  sm::LaunchConfig config;
  config.threads_per_block =
      warps > 0 ? warps * 32 : kernel.value().threads_per_block;
  config.total_blocks = blocks > 0 ? blocks : device.sm_count;

  trace::AggregatingSink agg;
  chip_options.trace = &agg;
  const gpu::GpuEngine engine(device, std::move(chip_options));
  const auto result = engine.run(kernel.value().program, config);
  if (!result) {
    std::cerr << result.error().to_string() << "\n";
    return 1;
  }
  const auto& chip = result.value();

  double min_sm = chip.per_sm.empty() ? 0.0 : chip.per_sm.front().cycles;
  double max_sm = 0;
  double sum_sm = 0;
  for (const auto& sm : chip.per_sm) {
    min_sm = std::min(min_sm, sm.cycles);
    max_sm = std::max(max_sm, sm.cycles);
    sum_sm += sm.cycles;
  }
  const double mean_sm =
      chip.per_sm.empty() ? 0.0 : sum_sm / static_cast<double>(chip.per_sm.size());

  std::cout << device.name << " :: " << kernel.value().name << " — "
            << kernel.value().description << "\n"
            << "  full chip: " << chip.sms << " SMs x " << chip.block_slots
            << " block slot(s), " << config.total_blocks << " block(s), "
            << fmt_fixed(chip.waves, 2) << " wave(s), " << chip.epochs
            << " epoch barrier(s)\n"
            << "  " << fmt_fixed(chip.cycles, 0) << " cycles ("
            << fmt_fixed(chip.seconds * 1e6, 1) << " us), "
            << chip.instructions_issued << " instructions (chip IPC "
            << fmt_fixed(chip.ipc(), 2) << ")\n"
            << "  per-SM finish: min " << fmt_fixed(min_sm, 0) << " / mean "
            << fmt_fixed(mean_sm, 0) << " / max " << fmt_fixed(max_sm, 0)
            << " cycles\n"
            << "  " << chip.mem_transactions << " memory transaction(s), "
            << chip.warps_retired << " warp(s) retired\n\n";
  const double slot_cycles =
      static_cast<double>(chip.instructions_issued) + agg.stall_cycles();
  agg.write_summary(std::cout, slot_cycles, top_n);
  return 0;
}

int cmd_profile(const arch::DeviceSpec& device,
                const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& kernel_name = args[0];
  std::uint32_t iters = 256;
  int warps = 0;   // 0 = kernel default
  int blocks = 0;  // 0 = kernel default (single SM) / one per SM (chip)
  int threads = 0;
  bool full_chip = false;
  std::string json_out;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto& arg = args[i];
    const auto value_of = [&](std::string_view prefix) -> const char* {
      return arg.compare(0, prefix.size(), prefix) == 0
                 ? arg.c_str() + prefix.size()
                 : nullptr;
    };
    if (const char* v = value_of("--iters=")) {
      iters = static_cast<std::uint32_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--warps=")) {
      warps = std::atoi(v);
      continue;
    }
    if (const char* v = value_of("--blocks=")) {
      blocks = std::atoi(v);
      continue;
    }
    if (const char* v = value_of("--threads=")) {
      threads = std::max(1, std::atoi(v));
      continue;
    }
    if (arg == "--full-chip") {
      full_chip = true;
      continue;
    }
    if (const char* v = value_of("--json=")) {
      json_out = v;
      continue;
    }
    std::cerr << "unknown option: " << arg << "\n";
    return usage();
  }

  auto kernel = serve::resolve_trace_kernel(kernel_name, iters);
  if (!kernel) {
    std::cerr << kernel.error().to_string() << "\n";
    return 1;
  }

  prof::PmuCounters pmu;
  prof::ProfileInput input;
  if (full_chip) {
    sm::LaunchConfig config;
    config.threads_per_block =
        warps > 0 ? warps * 32 : kernel.value().threads_per_block;
    config.total_blocks = blocks > 0 ? blocks : device.sm_count;
    gpu::ChipOptions chip_options;
    chip_options.threads = threads;
    chip_options.pmu = &pmu;
    const gpu::GpuEngine engine(device, std::move(chip_options));
    const auto result = engine.run(kernel.value().program, config);
    if (!result) {
      std::cerr << result.error().to_string() << "\n";
      return 1;
    }
    input.cycles = result.value().cycles;
    input.sms = result.value().sms;
    input.units = result.value().unit_usage;
  } else {
    sm::BlockShape shape;
    shape.threads_per_block =
        warps > 0 ? warps * 32 : kernel.value().threads_per_block;
    shape.blocks = blocks > 0 ? blocks : kernel.value().blocks;
    std::unique_ptr<mem::MemorySystem> memsys;
    if (kernel.value().needs_mem) {
      memsys = std::make_unique<mem::MemorySystem>(device, 1);
      memsys->set_pmu(&pmu);
    }
    sm::SmCore core(device, memsys.get());
    core.set_pmu(&pmu);
    const auto result = core.run(kernel.value().program, shape);
    input.cycles = result.cycles;
    input.sms = 1;
    input.units = core.unit_usage();
    if (memsys) {
      for (auto& sample : memsys->unit_usage()) {
        input.units.push_back(std::move(sample));
      }
    }
  }
  input.pmu = pmu;

  prof::ProfileConfig profile_config;
  profile_config.device = device.name;
  profile_config.kernel = kernel.value().name;
  profile_config.config = "iters=" + std::to_string(iters) +
                          " warps=" + std::to_string(warps) +
                          " blocks=" + std::to_string(blocks);
  profile_config.full_chip = full_chip;
  const prof::ProfileReport report =
      prof::build_profile(device, input, std::move(profile_config));

  std::string why;
  if (!input.pmu.conserved(&why)) {
    std::cerr << "counter conservation violated: " << why << "\n";
    return 1;
  }
  prof::render_text(report, std::cout);
  if (!json_out.empty()) {
    std::ofstream os(json_out);
    if (!os) {
      std::cerr << "cannot open " << json_out << " for writing\n";
      return 1;
    }
    prof::write_profile_json(report, os);
    std::cout << "\nwrote profile JSON to " << json_out << " (key "
              << report.key << ")\n";
  }
  return 0;
}

int cmd_sample(const arch::DeviceSpec& device,
               const std::vector<std::string>& args) {
  if (args.empty()) return usage();
  const std::string& kernel_name = args[0];
  std::uint32_t iters = 4096;
  int warps = 0;
  int blocks = 0;
  bool check = true;
  ff::SampleOptions sample_options;
  std::string snapshot;
  for (std::size_t i = 1; i < args.size(); ++i) {
    const auto& arg = args[i];
    const auto value_of = [&](std::string_view prefix) -> const char* {
      return arg.compare(0, prefix.size(), prefix) == 0
                 ? arg.c_str() + prefix.size()
                 : nullptr;
    };
    if (const char* v = value_of("--iters=")) {
      iters = static_cast<std::uint32_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--warps=")) {
      warps = std::atoi(v);
      continue;
    }
    if (const char* v = value_of("--blocks=")) {
      blocks = std::atoi(v);
      continue;
    }
    if (const char* v = value_of("--interval=")) {
      sample_options.interval =
          static_cast<std::uint32_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--detail=")) {
      sample_options.detail =
          static_cast<std::uint32_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--warmup=")) {
      sample_options.warmup =
          static_cast<std::uint32_t>(std::max(0, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--snapshot=")) {
      snapshot = v;
      continue;
    }
    if (arg == "--no-check") {
      check = false;
      continue;
    }
    std::cerr << "unknown option: " << arg << "\n";
    return usage();
  }

  auto kernel = serve::resolve_trace_kernel(kernel_name, iters);
  if (!kernel) {
    std::cerr << kernel.error().to_string() << "\n";
    return 1;
  }
  sm::BlockShape shape;
  shape.threads_per_block =
      warps > 0 ? warps * 32 : kernel.value().threads_per_block;
  shape.blocks = blocks > 0 ? blocks : kernel.value().blocks;

  const ff::FastForwardEngine engine(device);
  const auto wall = [] { return std::chrono::steady_clock::now(); };
  const auto seconds = [](auto a, auto b) {
    return std::chrono::duration<double>(b - a).count();
  };

  const auto t0 = wall();
  const auto sampled = engine.sample(kernel.value().program, shape,
                                     kernel.value().needs_mem, sample_options);
  const double sampled_wall = seconds(t0, wall());

  std::cout << device.name << " :: " << kernel.value().name << " — "
            << shape.total_warps() << " warp(s) x " << iters
            << " iteration(s), interval " << sample_options.interval
            << ", detail " << sample_options.detail << ", warmup "
            << sample_options.warmup << "\n";
  if (!sampled.sampled) {
    std::cout << "  (kernel not sampleable; ran the exact path)\n";
  }
  const double detailed_pct =
      sampled.instructions > 0
          ? 100.0 * static_cast<double>(sampled.detailed_instructions) /
                static_cast<double>(sampled.instructions)
          : 0.0;
  std::cout << "  sampled: " << fmt_fixed(sampled.cycles_est, 0)
            << " cycles est (IPC " << fmt_fixed(sampled.ipc_est(), 2) << "), "
            << sampled.windows.size() << " window(s), "
            << fmt_fixed(detailed_pct, 1) << "% of "
            << sampled.instructions << " instructions detailed, "
            << fmt_fixed(sampled_wall, 3) << " s\n";

  if (!check) return 0;

  ff::ExactOptions exact_options;
  exact_options.snapshot_file = snapshot;
  exact_options.snapshot_iteration = snapshot.empty()
                                         ? 0
                                         : sample_options.interval;
  const auto t1 = wall();
  const auto exact = engine.exact(kernel.value().program, shape,
                                  kernel.value().needs_mem, exact_options);
  const double exact_wall = seconds(t1, wall());

  std::cout << "  exact:   " << fmt_fixed(exact.result.cycles, 0)
            << " cycles (IPC " << fmt_fixed(exact.result.ipc(), 2) << "), "
            << fmt_fixed(exact_wall, 3) << " s";
  if (exact.snapshot_restored) std::cout << "  [snapshot restored]";
  if (exact.snapshot_saved) std::cout << "  [snapshot saved]";
  std::cout << "\n";
  if (!exact.snapshot_note.empty()) {
    std::cout << "  snapshot: " << exact.snapshot_note << "\n";
  }

  const double err =
      exact.result.cycles > 0
          ? 100.0 * std::abs(sampled.cycles_est - exact.result.cycles) /
                exact.result.cycles
          : 0.0;
  const double speedup = sampled_wall > 0 ? exact_wall / sampled_wall : 0.0;
  std::cout << "  cycle error " << fmt_fixed(err, 2) << "%, wall-clock speedup "
            << fmt_fixed(speedup, 1) << "x\n";
  return 0;
}

int cmd_fuzz(const arch::DeviceSpec& device,
             const std::vector<std::string>& args) {
  conformance::CampaignOptions options;
  options.count = 100;
  bool shrink_given = false;
  bool full_chip = false;
  bool fast_forward = false;
  int grid_blocks = 0;  // 0 = 2 * sm_count under --full-chip
  std::string out_path;
  std::string replay_path;
  for (const auto& arg : args) {
    const auto value_of = [&](std::string_view prefix) -> const char* {
      return arg.compare(0, prefix.size(), prefix) == 0
                 ? arg.c_str() + prefix.size()
                 : nullptr;
    };
    if (const char* v = value_of("--seed=")) {
      options.seed = static_cast<std::uint64_t>(std::strtoull(v, nullptr, 10));
      continue;
    }
    if (const char* v = value_of("--count=")) {
      options.count = static_cast<std::uint64_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--threads=")) {
      options.threads = static_cast<std::size_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (arg == "--shrink") {
      shrink_given = true;
      continue;
    }
    if (arg == "--no-shrink") {
      options.shrink = false;
      continue;
    }
    if (const char* v = value_of("--out=")) {
      out_path = v;
      continue;
    }
    if (const char* v = value_of("--replay=")) {
      replay_path = v;
      continue;
    }
    if (arg == "--full-chip") {
      full_chip = true;
      continue;
    }
    if (const char* v = value_of("--grid-blocks=")) {
      grid_blocks = std::max(1, std::atoi(v));
      continue;
    }
    if (arg == "--fast-forward") {
      fast_forward = true;
      continue;
    }
    std::cerr << "unknown option: " << arg << "\n";
    return usage();
  }
  if (fast_forward && full_chip) {
    std::cerr << "--fast-forward is a single-SM oracle; drop --full-chip\n";
    return usage();
  }
  (void)shrink_given;  // --shrink is the (default) opposite of --no-shrink
  if (full_chip) {
    // Multi-CTA grids up to twice the chip's one-slot capacity, so the
    // dispatcher's block recycling is part of every case.
    options.fuzz.max_grid_blocks =
        grid_blocks > 0 ? grid_blocks : 2 * device.sm_count;
  }

  conformance::Differ differ(device);
  if (fast_forward) {
    // The pipeline under test becomes the mode-switching run: functional
    // and detailed segments alternating at case-derived boundaries.
    differ.set_pipeline(ff::make_mode_switch_pipeline(device));
  }

  if (!replay_path.empty()) {
    std::ifstream in(replay_path);
    if (!in) {
      std::cerr << "cannot open " << replay_path << "\n";
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const auto repro = conformance::load_repro(buffer.str());
    if (!repro.has_value()) {
      std::cerr << repro.error().to_string() << "\n";
      return 1;
    }
    const auto global =
        conformance::make_global_image(repro.value().fuzz_case.base_seed);
    const auto report =
        full_chip ? differ.diff_full_chip(repro.value().fuzz_case, global)
                  : differ.diff(repro.value().fuzz_case, global);
    std::cout << device.name << " replay of " << replay_path << " (seed "
              << repro.value().fuzz_case.base_seed << ", case "
              << repro.value().fuzz_case.index << "): "
              << (report.ok() ? "PASS" : "FAIL") << "\n";
    if (!report.ok()) {
      for (const auto& failure : report.failures) {
        std::cout << "  " << failure << "\n";
      }
      return 1;
    }
    return 0;
  }

  const auto result =
      full_chip ? differ.campaign_full_chip(options) : differ.campaign(options);
  std::cout << device.name << (full_chip ? " full-chip" : "")
            << " fuzz: " << result.cases << " cases, seed "
            << options.seed << " — " << (result.cases - result.failed)
            << " passed, " << result.failed << " failed ("
            << result.instructions << " instructions, "
            << fmt_fixed(result.pipeline_cycles, 0)
            << " cycles simulated)\n";
  if (!result.first_failure) return 0;

  const auto& failure = *result.first_failure;
  std::cout << "first failure: case " << failure.original.index << " — "
            << failure.message << "\n"
            << "shrunk to " << failure.shrunk.program.size()
            << " instruction(s)\n";
  const auto shrunk_global = conformance::make_global_image(options.seed);
  const auto repro = conformance::to_repro(
      failure.shrunk, device.name,
      (full_chip ? differ.diff_full_chip(failure.shrunk, shrunk_global)
                 : differ.diff(failure.shrunk, shrunk_global))
          .summary());
  if (!out_path.empty()) {
    std::ofstream os(out_path);
    if (!os) {
      std::cerr << "cannot open " << out_path << " for writing\n";
      return 1;
    }
    os << repro;
    std::cout << "reproducer written to " << out_path << "\n";
  } else {
    std::cout << "\n" << repro;
  }
  return 1;
}

int cmd_dsm(int cs, int threads, int ilp) {
  const auto result = dsm::run_rbc(
      arch::h800_pcie(), {.cluster_size = cs, .block_threads = threads, .ilp = ilp});
  if (!result) {
    std::cerr << result.error().to_string() << "\n";
    return 1;
  }
  std::cout << "ring copy, cluster " << cs << ", " << threads << " threads, ILP "
            << ilp << ": " << fmt_fixed(result.value().total_tbps, 2)
            << " TB/s aggregate ("
            << fmt_fixed(result.value().bytes_per_clk_per_sm, 1) << " B/clk/SM)\n";
  return 0;
}

void announce_port(std::uint16_t port) {
  std::cout << "hsim serve: listening on port " << port << "\n" << std::flush;
}

/// `hsim serve --batch`: same Session::handle_line dispatch as the TCP
/// server, reading request lines from a file (or stdin as "-"), writing one
/// reply line per request to stdout.  A bad request gets a structured error
/// reply and the session continues — identical semantics to a connection.
int run_batch(const std::string& path, const serve::ServeOptions& options) {
  std::ifstream file;
  std::istream* in = &std::cin;
  if (path != "-") {
    file.open(path);
    if (!file) {
      std::cerr << "cannot open batch file: " << path << "\n";
      return 1;
    }
    in = &file;
  }
  serve::ServeEngine engine(options);
  serve::Session session(engine);
  std::string line;
  while (!session.closed() && std::getline(*in, line)) {
    if (line.empty()) continue;
    std::cout << session.handle_line(line) << "\n";
  }
  return 0;
}

int cmd_serve(const std::vector<std::string>& args) {
  serve::ServerOptions server_options;
  std::string batch;
  bool smoke = false;
  for (const auto& arg : args) {
    const auto value_of = [&](std::string_view prefix) -> const char* {
      return arg.compare(0, prefix.size(), prefix) == 0
                 ? arg.c_str() + prefix.size()
                 : nullptr;
    };
    if (const char* v = value_of("--port=")) {
      server_options.port = static_cast<std::uint16_t>(std::atoi(v));
      continue;
    }
    if (const char* v = value_of("--host=")) {
      server_options.host = v;
      continue;
    }
    if (const char* v = value_of("--threads=")) {
      server_options.engine.threads = std::max(0, std::atoi(v));
      continue;
    }
    if (const char* v = value_of("--cache=")) {
      server_options.engine.cache_capacity =
          static_cast<std::size_t>(std::max(0, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--max-inflight=")) {
      server_options.engine.max_inflight =
          static_cast<std::size_t>(std::max(1, std::atoi(v)));
      continue;
    }
    if (const char* v = value_of("--timeout-ms=")) {
      server_options.engine.default_timeout_ms = std::max(0.0, std::atof(v));
      continue;
    }
    if (const char* v = value_of("--batch=")) {
      batch = v;
      continue;
    }
    if (arg == "--smoke") {
      smoke = true;
      continue;
    }
    std::cerr << "unknown option: " << arg << "\n";
    return usage();
  }

  if (smoke) {
    const auto result = serve::run_smoke(server_options.engine);
    if (!result) {
      std::cerr << result.error().to_string() << "\n";
      return 1;
    }
    std::cout << "serve smoke: ok\n";
    return 0;
  }
  if (!batch.empty()) return run_batch(batch, server_options.engine);

  const auto result = serve::run_server(server_options, &announce_port);
  if (!result) {
    std::cerr << result.error().to_string() << "\n";
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);

  // Reject unknown verbs before touching any other argument, so a typo'd
  // command names the accepted set instead of complaining about devices.
  static constexpr std::string_view kCommands[] = {
      "devices", "pchase", "bandwidth", "sass",    "tc",     "dpx",  "dsm",
      "trace",   "chip",   "fuzz",      "profile", "sample", "serve"};
  if (std::find(std::begin(kCommands), std::end(kCommands), command) ==
      std::end(kCommands)) {
    std::cerr << "unknown command: " << command << "\naccepted commands:";
    for (const auto name : kCommands) std::cerr << " " << name;
    std::cerr << "\n";
    return usage();
  }

  // Positional-only commands share one unknown-flag gate; the rest reject
  // unknown flags inside their own parse loops.
  static constexpr std::string_view kPositionalOnly[] = {
      "devices", "pchase", "bandwidth", "sass", "tc", "dpx", "dsm"};
  if (std::find(std::begin(kPositionalOnly), std::end(kPositionalOnly),
                command) != std::end(kPositionalOnly) &&
      has_unknown_flags(args)) {
    return usage();
  }

  if (command == "devices") return cmd_devices();
  if (command == "serve") return cmd_serve(args);
  if (command == "dsm") {
    return cmd_dsm(args.size() > 0 ? std::atoi(args[0].c_str()) : 2,
                   args.size() > 1 ? std::atoi(args[1].c_str()) : 1024,
                   args.size() > 2 ? std::atoi(args[2].c_str()) : 4);
  }

  if (args.empty()) return usage();
  const auto device = arch::find_device(args[0]);
  if (!device) {
    std::cerr << device.error().to_string() << "\n";
    return 1;
  }
  const std::vector<std::string> rest(args.begin() + 1, args.end());

  if (command == "pchase") {
    return cmd_pchase(*device.value(), rest.empty() ? "l1" : rest[0]);
  }
  if (command == "bandwidth") return cmd_bandwidth(*device.value());
  if (command == "sass") return cmd_tc(*device.value(), rest, /*sass_only=*/true);
  if (command == "tc") return cmd_tc(*device.value(), rest, /*sass_only=*/false);
  if (command == "dpx") {
    if (rest.empty()) return usage();
    return cmd_dpx(*device.value(), rest[0]);
  }
  if (command == "trace") return cmd_trace(*device.value(), rest);
  if (command == "chip") return cmd_chip(*device.value(), rest);
  if (command == "profile") return cmd_profile(*device.value(), rest);
  if (command == "fuzz") return cmd_fuzz(*device.value(), rest);
  if (command == "sample") return cmd_sample(*device.value(), rest);
  return usage();
}
