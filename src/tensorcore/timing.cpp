#include "tensorcore/timing.hpp"

#include <algorithm>

namespace hsim::tc {
namespace {

using num::DType;

// wgmma cadence floors and overheads (Hopper-wide structural constants, not
// per-table numbers): the RS pipe cannot issue dependent wgmma faster than
// its depth; the SS pipe adds an issue overhead whenever the shared-memory
// stream paces the instruction.
constexpr double kWgmmaRsCadenceFloor = 15.1;
constexpr double kWgmmaSparseRsCadenceFloor = 19.0;
constexpr double kWgmmaSsIssueOverhead = 2.75;

double mma_width_ops_per_clk(const isa::TcInstr& instr,
                             const arch::DeviceSpec& device) {
  double width = device.tc_ops_per_clk_sm(instr.ab);
  if (instr.ab == DType::kFp16 && instr.cd == DType::kFp32) {
    width *= device.tc.mma_acc32_width_factor;
  }
  return width;
}

bool uses_acc16_latency(const isa::TcInstr& instr) {
  // Integer instructions and FP16-accumulate share the short-latency
  // constants; FP32 accumulation (incl. TF32) takes the longer path.
  if (num::is_integer(instr.ab)) return true;
  return instr.cd == DType::kFp16;
}

}  // namespace

int k_base(DType ab) {
  switch (ab) {
    case DType::kFp16:
    case DType::kBf16: return 8;
    case DType::kTf32: return 4;
    case DType::kFp8E4M3:
    case DType::kFp8E5M2: return 16;
    case DType::kInt8: return 16;
    case DType::kInt4: return 32;
    case DType::kBinary: return 256;
    default: return 8;
  }
}

Expected<TcTiming> tc_timing(const isa::TcInstr& instr,
                             const arch::DeviceSpec& device) {
  const auto checked = isa::validate(instr);
  if (!checked) return checked.error();
  const auto sass = isa::compile_to_sass(instr, device);
  if (!sass) return sass.error();

  TcTiming t;
  t.ops = instr.ops();
  t.on_tensor_cores = isa::runs_on_tensor_cores(instr, device);
  const auto& tcs = device.tc;

  if (!t.on_tensor_cores) {
    // Hopper INT4 mma -> IMAD sequences on the CUDA cores.  Width: the
    // INT32 pipe retires ~4 packed int4 MACs per lane-op across 64 lanes.
    const double width = 256.0;
    t.cadence = t.ops / width;
    t.latency = 40.0;
    return t;
  }

  if (instr.path == isa::TcPath::kWmma) {
    // Legacy wmma lowers to a pair of native mma instructions plus fragment
    // bookkeeping; model it as the pair at the mma cadence with a one-cycle
    // shuffle overhead (this is why wmma never beats raw mma).
    isa::TcInstr native = instr;
    native.path = isa::TcPath::kMma;
    native.shape = {16, 8, instr.ab == DType::kTf32 ? 8 : 16};
    auto inner = tc_timing(native, device);
    if (!inner) return inner.error();
    const double pairs = t.ops / inner.value().ops;
    t.cadence = pairs * inner.value().cadence + 1.0;
    t.latency = inner.value().latency + 4.0;
    t.on_tensor_cores = inner.value().on_tensor_cores;
    return t;
  }
  if (instr.path == isa::TcPath::kMma) {
    const double width = mma_width_ops_per_clk(instr, device);
    if (width <= 0) return unsupported("no tensor-core rate for this type");

    if (instr.sparse) {
      const double sparse_width = 2.0 * width;
      t.cadence = std::max(t.ops / sparse_width, tcs.mma_sparse_min_cadence) +
                  tcs.mma_sparse_dispatch_overhead;
    } else {
      t.cadence = t.ops / width + tcs.mma_dispatch_overhead;
    }

    const int stored_k = instr.sparse ? instr.shape.k / 2 : instr.shape.k;
    const double passes =
        static_cast<double>(stored_k) / static_cast<double>(k_base(instr.ab));
    if (uses_acc16_latency(instr)) {
      t.latency = tcs.mma_lat_base_acc16 + passes * tcs.mma_lat_pp_acc16;
    } else {
      t.latency = tcs.mma_lat_base_acc32 + passes * tcs.mma_lat_pp_acc32;
    }
    return t;
  }

  // wgmma path (validated: Hopper only).
  const double width = device.tc_ops_per_clk_sm(instr.ab);
  if (width <= 0) return unsupported("no tensor-core rate for this type");
  const double n = instr.shape.n;
  const bool ss = instr.a_src == isa::OperandSource::kSharedMemory;
  const double smem_width = device.memory.smem_bytes_per_clk;

  const double compute = t.ops / (instr.sparse ? 2.0 * width : width) /
                         tcs.wgmma_efficiency;
  // Shared-memory stream per instruction.  Sparse SS reads A at its dense
  // footprint: the 2:4 selection happens inside the unit (paper §IV-C).
  const double a_stream_bytes =
      instr.sparse ? 2.0 * instr.a_bytes() : instr.a_bytes();
  const double b_stream_bytes = instr.b_bytes();
  double cadence;
  if (ss) {
    const double smem = (a_stream_bytes + b_stream_bytes) / smem_width;
    cadence = std::max(compute, smem + kWgmmaSsIssueOverhead);
    cadence = std::max(cadence, tcs.wgmma_ss_latency_floor);
  } else {
    const double smem = b_stream_bytes / smem_width;
    cadence = std::max({compute, smem,
                        instr.sparse ? kWgmmaSparseRsCadenceFloor
                                     : kWgmmaRsCadenceFloor});
  }
  t.cadence = cadence;

  // Completion latency: N/2 cycles of result streaming, with floors; SS
  // exposes the A-tile fill below the hide threshold, and sparse SS always
  // exposes its doubled stream.
  const double stream = n / 2.0;
  if (instr.sparse) {
    if (ss) {
      t.latency = stream + tcs.wgmma_sparse_ss_extra;
    } else {
      t.latency = std::max(stream, tcs.wgmma_sparse_rs_floor + 1.0);
    }
  } else {
    if (ss && n < tcs.wgmma_hide_threshold_n) {
      t.latency = std::max(stream + tcs.wgmma_ss_fill_latency,
                           tcs.wgmma_ss_latency_floor);
    } else if (ss) {
      t.latency = stream;
    } else {
      t.latency = std::max(stream, tcs.wgmma_rs_latency_floor);
    }
  }
  return t;
}

}  // namespace hsim::tc
