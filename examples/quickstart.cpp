// Quickstart: open a device, measure its memory hierarchy and one tensor
// core instruction, and print the kind of summary the paper builds its
// tables from.
//
//   $ ./examples/quickstart [a100|4090|h800]
#include <iostream>

#include "arch/device.hpp"
#include "common/table.hpp"
#include "core/membench.hpp"
#include "core/pchase.hpp"
#include "core/tcbench.hpp"

int main(int argc, char** argv) {
  using namespace hsim;

  const auto device_result = arch::find_device(argc > 1 ? argv[1] : "h800");
  if (!device_result) {
    std::cerr << device_result.error().to_string() << "\n";
    return 1;
  }
  const auto& device = *device_result.value();

  std::cout << "Device: " << device.name << " (" << to_string(device.generation)
            << ", sm_" << device.cc_string() << ", " << device.sm_count
            << " SMs @ " << device.boost_clock_mhz << " MHz)\n\n";

  // 1. Memory latency via pointer chase.
  Table latency("Memory latency (p-chase, cycles)");
  latency.set_header({"Level", "cycles"});
  for (const auto level : {mem::MemLevel::kShared, mem::MemLevel::kL1,
                           mem::MemLevel::kL2, mem::MemLevel::kDram}) {
    const auto r = core::pchase(device, level);
    if (r) {
      latency.add_row({std::string(mem::to_string(level)),
                       fmt_fixed(r.value().avg_latency_cycles, 1)});
    }
  }
  latency.render(std::cout);
  std::cout << '\n';

  // 2. Bandwidths.
  const auto global = core::measure_global_throughput(device);
  if (global) {
    std::cout << "Global memory: " << fmt_fixed(global.value().gbps, 0)
              << " GB/s (" << fmt_fixed(100.0 * global.value().gbps /
                                            device.memory.dram_peak_gbps, 0)
              << "% of pin bandwidth)\n\n";
  }

  // 3. One tensor-core instruction, the way the paper benches them.
  const isa::TcInstr instr{.path = device.tc.has_wgmma ? isa::TcPath::kWgmma
                                                       : isa::TcPath::kMma,
                           .shape = device.tc.has_wgmma
                               ? isa::TcShape{64, 256, 16}
                               : isa::TcShape{16, 8, 16},
                           .ab = num::DType::kFp16,
                           .cd = num::DType::kFp32,
                           .a_src = isa::OperandSource::kSharedMemory};
  const auto tc_result = core::bench_tc(instr, device);
  if (tc_result) {
    const auto& r = tc_result.value();
    std::cout << instr.ptx_name() << "\n  lowers to " << r.sass
              << "\n  latency " << fmt_fixed(r.latency_cycles, 1)
              << " cycles, " << fmt_fixed(r.tflops_zero, 1)
              << " TFLOPS (zeros), " << fmt_fixed(r.tflops_rand, 1)
              << " TFLOPS (random data"
              << (r.throttled ? ", power-throttled" : "") << ")\n";
  }
  return 0;
}
