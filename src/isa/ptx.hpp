// PTX-level tensor-core instruction descriptors and their lowering to SASS.
//
// The paper's Table VI disassembles mma/wgmma PTX for Hopper and finds the
// SASS families (HMMA/IMMA/BMMA for mma; HGMMA/QGMMA/IGMMA/BGMMA for
// wgmma), including two notable lowerings:
//   * INT4 mma on Hopper falls back to IMAD sequences on CUDA cores;
//   * FP8 has no mma at all — only wgmma reaches the FP8 tensor cores.
// `compile_to_sass` reproduces that mapping for any device.
#pragma once

#include <string>

#include "arch/device.hpp"
#include "common/status.hpp"
#include "numerics/dtype.hpp"

namespace hsim::isa {

/// Which tensor-core programming path the instruction uses.  kWmma is the
/// legacy C-level API (Table I): still supported everywhere, but it cannot
/// express sparsity and, on Hopper, cannot reach wgmma's throughput.
enum class TcPath : std::uint8_t { kMma, kWgmma, kWmma };

/// Where wgmma sources its A operand: "RS" keeps A in registers, "SS" reads
/// both A and B from shared memory.  (B is always in shared memory.)
enum class OperandSource : std::uint8_t { kRegister, kSharedMemory };

struct TcShape {
  int m = 16;
  int n = 8;
  int k = 16;

  friend bool operator==(const TcShape&, const TcShape&) = default;
};

/// A PTX tensor-core instruction.  `shape.k` is the *instruction modifier*
/// k: for sparse instructions this is the dense-equivalent depth (twice the
/// stored operand depth), matching how the paper's tables count FLOPs.
struct TcInstr {
  TcPath path = TcPath::kMma;
  TcShape shape{};
  num::DType ab = num::DType::kFp16;  // input type of A and B
  num::DType cd = num::DType::kFp32;  // accumulator type of C and D
  bool sparse = false;
  OperandSource a_src = OperandSource::kRegister;

  /// Multiply+add operations per instruction (the paper's FLOP counting:
  /// sparse instructions are credited their dense-equivalent work).
  [[nodiscard]] double ops() const {
    return 2.0 * static_cast<double>(shape.m) * static_cast<double>(shape.n) *
           static_cast<double>(shape.k);
  }

  /// PTX mnemonic, e.g. "mma.sp.sync.aligned.m16n8k32.row.col.s32.s8.s8.s32"
  /// or "wgmma.mma_async.sync.aligned.m64n256k16.f32.f16.f16".
  [[nodiscard]] std::string ptx_name() const;

  /// Bytes of A operand as stored (sparse stores half of k).
  [[nodiscard]] double a_bytes() const;
  /// Bytes of B operand as stored.
  [[nodiscard]] double b_bytes() const;
};

/// Validate that `instr` is a legal PTX instruction shape/type combination
/// (independent of device): e.g. wgmma requires m==64, mma FP16 requires
/// k in {8,16}.
Expected<TcInstr> validate(TcInstr instr);

/// Lower a PTX tensor-core instruction to its SASS mnemonic on `device`.
/// Errors when the device cannot execute it at all (FP8 mma anywhere,
/// wgmma before Hopper).  INT4-on-Hopper succeeds but returns the IMAD
/// CUDA-core fallback, exactly as the paper observed.
Expected<std::string> compile_to_sass(const TcInstr& instr,
                                      const arch::DeviceSpec& device);

/// True when the lowering runs on tensor cores (false for the Hopper INT4
/// IMAD fallback).
bool runs_on_tensor_cores(const TcInstr& instr, const arch::DeviceSpec& device);

}  // namespace hsim::isa
