// Table IV: latency clocks of different memory scopes on RTX4090 / A100 /
// H800, measured with the p-chase microbenchmark.
#include <iostream>

#include "bench/bench_util.hpp"
#include "core/pchase.hpp"

int main(int argc, char** argv) {
  using namespace hsim;
  const auto opt = bench::parse_options(argc, argv);

  Table table("Table IV: Latency clocks of different memory scopes");
  table.set_header({"Type", "RTX4090", "A100", "H800"});

  const arch::DeviceSpec* devices[] = {&arch::rtx4090(), &arch::a100_pcie(),
                                       &arch::h800_pcie()};
  const struct {
    const char* label;
    mem::MemLevel level;
  } rows[] = {
      {"L1 Cache", mem::MemLevel::kL1},
      {"Shared", mem::MemLevel::kShared},
      {"L2 Cache", mem::MemLevel::kL2},
      {"Global", mem::MemLevel::kDram},
  };

  for (const auto& row : rows) {
    std::vector<std::string> cells{row.label};
    for (const auto* device : devices) {
      const auto result = core::pchase(*device, row.level);
      if (!result) {
        cells.push_back("err");
        continue;
      }
      cells.push_back(fmt_fixed(result.value().avg_latency_cycles, 1));
    }
    table.add_row(std::move(cells));
  }
  bench::emit(table, opt);

  // Companion finding from the paper: cross-level latency ratios.
  Table ratios("Latency ratios (paper: L2/L1 ~ 6.5x, Global/L2 ~ 1.9x)");
  ratios.set_header({"Device", "L2/L1", "Global/L2"});
  for (const auto* device : devices) {
    const auto l1 = core::pchase(*device, mem::MemLevel::kL1);
    const auto l2 = core::pchase(*device, mem::MemLevel::kL2);
    const auto dram = core::pchase(*device, mem::MemLevel::kDram);
    if (!l1 || !l2 || !dram) continue;
    ratios.add_row({device->name,
                    fmt_fixed(l2.value().avg_latency_cycles /
                                  l1.value().avg_latency_cycles, 2),
                    fmt_fixed(dram.value().avg_latency_cycles /
                                  l2.value().avg_latency_cycles, 2)});
  }
  bench::emit(ratios, opt);
  return 0;
}
