// Full-chip multi-SM engine with shared-L2 contention.
//
// Where sm::launch() simulates ONE representative SM and extrapolates by
// wave quantisation, GpuEngine instantiates every SM on the device and
// advances them concurrently in deterministic epoch-synced steps, sharing a
// sliced L2 + DRAM model so inter-SM bandwidth contention is *simulated*
// rather than assumed away.
//
// Determinism contract: results are bit-identical at any thread count and
// across repeated runs.  During an epoch [t, t+E) each SM touches only
// SM-private state (its core, its L1/TLB, its trace buffer); every access
// that would need the shared L2/DRAM fabric is recorded as a deferred
// ticket instead of being resolved in place.  At the epoch barrier the
// tickets are sorted by (issue_time, sm, seq) and resolved against the
// slice fabric — by default sharded across the thread pool, one task per
// address-interleaved slice, since each slice's state (L2 tags, port, DRAM
// channel, PMU block) is private to that slice and the per-slice ticket
// stream keeps the global order's relative order; completion times are
// folded back into the issuing cores via mem::DeferredFixup in global
// ticket order once every slice has resolved.  The epoch length is capped
// at the L2 hit
// latency, so a deferred access can never legitimately complete before the
// barrier that resolves it — deferral changes *who wins arbitration*, never
// the causal order within an SM.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "arch/device.hpp"
#include "isa/program.hpp"
#include "prof/pmu.hpp"
#include "sim/accounting.hpp"
#include "sm/launcher.hpp"
#include "sm/sm_core.hpp"
#include "trace/trace.hpp"

namespace hsim::gpu {

struct ChipOptions {
  /// Worker threads for the parallel SM advance: 0 = shared global pool,
  /// 1 = serial.  Any value produces bit-identical results.
  int threads = 0;
  /// Epoch length in cycles.  Clamped to the device's L2 hit latency (the
  /// correctness bound — see file header); smaller epochs tighten
  /// arbitration granularity at more barrier overhead.
  double epoch = 64.0;
  /// Number of L2 slices (address-interleaved at line granularity).
  int l2_slices = 8;
  /// Cap on resident blocks per SM (0 = occupancy-derived).
  int max_blocks_per_sm = 0;
  /// Force the reference comparison sort for barrier ticket resolution
  /// instead of the per-cycle counting sort.  Both produce the same
  /// (issue_time, sm, seq) order — this toggle exists so the perf-identity
  /// suite can pin that bit-for-bit.
  bool sorted_tickets = false;
  /// Force the reference serial resolver: every ticket resolved one at a
  /// time on the barrier thread in global (issue_time, sm, seq) order,
  /// exactly as PR 4 shipped it.  The default sharded resolver partitions
  /// the ordered ticket stream by L2 slice and resolves the slices
  /// concurrently (slice state is slice-private; fixups and trace events
  /// are applied afterwards in the same global order), so the two paths
  /// are bit-identical by construction — this toggle keeps the serial twin
  /// alive for the identity suite, mirroring `sorted_tickets`.
  bool serial_fabric = false;
  /// Merged event stream (per-SM buffers, stable-sorted by cycle at the
  /// end of the run).  Null disables tracing entirely.
  trace::TraceSink* trace = nullptr;
  /// Chip-wide performance counters.  When attached, every SM core and its
  /// private L1/TLB path count into an SM-local block during the parallel
  /// phase, the shared fabric counts L2/DRAM sectors during the serial
  /// barrier phase, and the blocks are merged in SM-index order at the end
  /// of the run — so the totals are bit-identical at any thread count.
  /// Null disables counting entirely (one branch per site).
  prof::PmuCounters* pmu = nullptr;
  /// Called as each block fully retires, before its slot is recycled, with
  /// the core still holding the block's architectural state.  Lets a
  /// conformance differ snapshot registers for grids larger than the
  /// device's resident capacity.
  std::function<void(int sm, int slot, int block_global_id,
                     const sm::SmCore& core)>
      block_observer;
};

/// Warm a byte range into the memory hierarchy before the run (the
/// benchmark warm-up pass): L2 slices + every SM's TLB, plus every SM's L1
/// for kGlobalCa.
struct WarmRange {
  std::uint64_t base = 0;
  std::uint64_t size = 0;
  mem::MemSpace space = mem::MemSpace::kGlobalCg;
};

struct ChipResult {
  double cycles = 0;  // wall time: slowest SM's finish
  double seconds = 0;
  int sms = 0;
  int block_slots = 0;  // resident blocks per SM the dispatcher used
  double waves = 0;     // total_blocks / (block_slots * sms)
  int epochs = 0;       // barrier count (diagnostic)
  /// Sums over SMs.
  std::uint64_t instructions_issued = 0;
  std::uint64_t stall_cycles = 0;
  std::uint64_t mem_transactions = 0;
  std::uint64_t warps_retired = 0;
  /// Per-SM timing/attribution, index = SM id.  per_sm[i].cycles is that
  /// SM's own finish time, so load imbalance is visible directly.
  std::vector<sm::RunResult> per_sm;
  /// Aggregated unit occupancy: SM pipes + per-SM L1 ports averaged over
  /// SMs, L2 slice ports and DRAM channels averaged over slices (ops
  /// summed), same convention as sim::CycleReport expects.
  std::vector<sim::UnitSample> unit_usage;

  [[nodiscard]] double ipc() const {
    return cycles > 0 ? static_cast<double>(instructions_issued) / cycles : 0.0;
  }
  [[nodiscard]] sim::CycleSample cycle_sample(std::string label) const {
    return sim::CycleSample{std::move(label), cycles, unit_usage};
  }
};

class GpuEngine {
 public:
  GpuEngine(const arch::DeviceSpec& device, ChipOptions options = {});

  /// Simulate a full grid launch of `program` across every SM.  `global`
  /// optionally backs global loads (shared read-only across SMs — the ISA's
  /// stores are timing-only).  Each call is an independent kernel launch on
  /// a cold chip.
  [[nodiscard]] Expected<ChipResult> run(
      const isa::Program& program, const sm::LaunchConfig& config,
      std::span<std::uint64_t> global = {},
      std::span<const WarmRange> warm = {}) const;

 private:
  const arch::DeviceSpec& device_;
  ChipOptions options_;
};

/// sm::launch()-shaped convenience wrapper: kRepresentative delegates to
/// sm::launch, kFullChip runs the GpuEngine and reports the chip's wall
/// time (representative = busiest SM's RunResult, waves rounded up).
Expected<sm::LaunchResult> launch(const arch::DeviceSpec& device,
                                  const isa::Program& program,
                                  const sm::LaunchConfig& config,
                                  sm::LaunchMode mode,
                                  const ChipOptions& options = {});

}  // namespace hsim::gpu
