// Differential conformance driver.
//
// Runs a program through both the functional reference interpreter
// (ref_interp.hpp) and the cycle-level pipeline (sm::SmCore over
// mem::MemorySystem), then diffs:
//   * final architectural state — every register lane of every warp and
//     the full shared-memory image (skipping registers when the program
//     executed CLOCK, whose value only a timed model can produce);
//   * the retirement ledger — instructions issued and warps retired must
//     match the interpreter's counts exactly;
//   * timing sanity invariants from the trace stream — retire not before
//     the warp's last issue, non-negative durations, monotone event time,
//     no event ending past the kernel's cycle count, scheduler stall
//     cycles bounded by 4 slots x cycles and equal to the trace sinks'
//     aggregate (net of bank-conflict serialisation events);
//   * determinism — the pipeline run twice must reproduce itself, and a
//     campaign swept at any --threads must be bit-identical (the sweep
//     engine's per-index seeds make each case self-contained).
//
// A failing case is shrunk to a minimal reproducer (greedy delta
// debugging: iterations, then shape, then instruction removal to a
// fixpoint) and can be dumped as re-runnable `.hsim` assembly via
// to_repro() / load_repro().
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "arch/device.hpp"
#include "common/status.hpp"
#include "conformance/fuzzer.hpp"
#include "conformance/ref_interp.hpp"
#include "gpu/gpu_engine.hpp"
#include "prof/pmu.hpp"
#include "sm/sm_core.hpp"

namespace hsim::conformance {

/// Everything the differ observes from one pipeline execution.
struct PipelineObservation {
  sm::RunResult result;
  /// Same layout as RefResult::regs: per warp, reg * kLanes + lane.
  std::vector<std::vector<std::uint64_t>> regs;
  std::vector<std::uint8_t> shared;
  // Trace-stream aggregates and invariant flags.
  double agg_stall_cycles = 0;     // all kStall cycles seen by the sink
  double bank_conflict_cycles = 0; // subset from smem serialisation events
  std::uint64_t agg_issues = 0;
  std::uint64_t agg_retires = 0;
  double max_event_end = 0;        // max over events of cycle + duration
  bool monotone = true;            // event cycles never decreased
  bool nonneg = true;              // no negative cycle or duration
  bool retire_after_issue = true;  // per warp: retire >= last issue cycle
  /// Hardware counters collected from the core + memory system; diff()
  /// checks the block's conservation invariants (issued >= retired, level
  /// accesses == hits + misses, occupancy samples sum to sampled cycles)
  /// and cross-checks it against the retirement ledger.
  prof::PmuCounters pmu;
};

/// Pipeline seam: tests substitute an implementation with an injected bug
/// to prove the differ catches and shrinks it.
using PipelineFn = std::function<PipelineObservation(
    const FuzzCase&, std::span<const std::uint64_t> global)>;

struct DiffReport {
  std::vector<std::string> failures;
  std::uint64_t instructions = 0;  // reference instruction count (work)
  double cycles = 0;               // pipeline cycles (first run)
  [[nodiscard]] bool ok() const noexcept { return failures.empty(); }
  [[nodiscard]] std::string summary() const;  // ""; or failures joined by "; "
};

struct CampaignOptions {
  std::uint64_t seed = 1;
  std::uint64_t count = 100;
  std::size_t threads = 0;  // sim::SweepOptions semantics (0 = pool default)
  bool shrink = true;       // shrink the first failure
  FuzzOptions fuzz;
};

/// Everything the differ observes from one full-chip execution
/// (gpu::GpuEngine).  Registers are snapshotted per block as it retires —
/// the engine recycles block slots, so the grid's state only exists
/// transiently — and re-indexed by *grid* warp id, the layout RefResult
/// uses.  There is no grid-wide shared image: each SM holds its own
/// overlay of several CTAs' private slots, so the shared comparison is a
/// representative-mode-only check.
struct FullChipObservation {
  gpu::ChipResult chip;
  std::vector<std::vector<std::uint64_t>> regs;  // per grid warp
  std::uint64_t blocks_observed = 0;
  // Merged-trace aggregates (cross-SM; per-warp invariants are not
  // meaningful here because slot recycling reuses warp ids).
  double agg_stall_cycles = 0;
  double bank_conflict_cycles = 0;
  std::uint64_t agg_issues = 0;
  std::uint64_t agg_retires = 0;
  double max_event_end = 0;
  bool monotone = true;  // merged stream sorted by cycle (merge contract)
  bool nonneg = true;
  /// Chip-wide counters via gpu::ChipOptions::pmu (per-SM blocks merged in
  /// SM-index order); part of the serial-vs-threaded bit-identity check.
  prof::PmuCounters pmu;
};

struct CampaignFailure {
  FuzzCase original;
  FuzzCase shrunk;  // == original when CampaignOptions::shrink is false
  std::string message;
};

struct CampaignResult {
  std::uint64_t cases = 0;
  std::uint64_t failed = 0;
  std::uint64_t instructions = 0;  // reference instructions across cases
  double pipeline_cycles = 0;      // simulated cycles across cases
  std::optional<CampaignFailure> first_failure;
  [[nodiscard]] bool ok() const noexcept { return failed == 0; }
};

class Differ {
 public:
  explicit Differ(const arch::DeviceSpec& device);

  /// Replace the pipeline under test (bug-injection seam for tests).
  void set_pipeline(PipelineFn fn) { pipeline_ = std::move(fn); }

  /// The real pipeline: SmCore + MemorySystem + invariant trace sinks.
  [[nodiscard]] PipelineObservation run_pipeline(
      const FuzzCase& fuzz_case, std::span<const std::uint64_t> global) const;

  /// Reference vs pipeline for one case (runs the pipeline twice for the
  /// determinism check).
  [[nodiscard]] DiffReport diff(const FuzzCase& fuzz_case,
                                std::span<const std::uint64_t> global) const;

  /// Greedy shrink: smallest derived case that still fails, as re-runnable
  /// straight-line asm (iterations -> 1, shape -> one warp, instructions
  /// removed to a fixpoint).  `fuzz_case` must currently fail.
  [[nodiscard]] FuzzCase shrink(const FuzzCase& fuzz_case,
                                std::span<const std::uint64_t> global) const;

  /// Sweep `count` generated cases (deterministic at any thread count);
  /// regenerates and shrinks the first failure serially.
  [[nodiscard]] CampaignResult campaign(const CampaignOptions& options) const;

  // --- Full-chip cross-checking (gpu::GpuEngine) -------------------------
  // The grid runs across every SM with shared-L2 contention and dispatcher
  // slot recycling; the reference stays the same warp-order-independent
  // interpreter, so these catch full-chip-only bugs (lost fixups, slot
  // recycling corrupting state, nondeterministic barrier resolution).

  /// One full-chip execution with `engine_threads` host threads; registers
  /// captured via ChipOptions::block_observer.  Blocks-per-SM is capped at
  /// 1 to maximise dispatcher churn on fuzz-sized grids.
  [[nodiscard]] FullChipObservation run_full_chip(
      const FuzzCase& fuzz_case, std::span<const std::uint64_t> global,
      int engine_threads = 1) const;

  /// Reference vs full-chip for one case: architectural registers, the
  /// retirement ledger, trace aggregates, replay determinism, and
  /// bit-identity between serial and multi-threaded engine runs.
  [[nodiscard]] DiffReport diff_full_chip(
      const FuzzCase& fuzz_case, std::span<const std::uint64_t> global) const;

  /// campaign() with diff_full_chip as the oracle; FuzzOptions should set
  /// max_grid_blocks so grids exceed the chip's capacity.
  [[nodiscard]] CampaignResult campaign_full_chip(
      const CampaignOptions& options) const;

  /// shrink() with the full-chip oracle.
  [[nodiscard]] FuzzCase shrink_full_chip(
      const FuzzCase& fuzz_case, std::span<const std::uint64_t> global) const;

  [[nodiscard]] const arch::DeviceSpec& device() const noexcept {
    return device_;
  }

 private:
  [[nodiscard]] FuzzCase shrink_impl(
      const FuzzCase& fuzz_case,
      const std::function<bool(const FuzzCase&)>& fails) const;
  [[nodiscard]] CampaignResult campaign_impl(
      const CampaignOptions& options,
      const std::function<DiffReport(const FuzzCase&,
                                     std::span<const std::uint64_t>)>& oracle,
      const std::function<FuzzCase(const FuzzCase&,
                                   std::span<const std::uint64_t>)>& shrinker)
      const;

  const arch::DeviceSpec& device_;
  PipelineFn pipeline_;  // empty => run_pipeline
};

/// Render a failing case as a self-contained `.hsim` reproducer: header
/// comments carry device/seed/shape, the body is Program::to_string().
[[nodiscard]] std::string to_repro(const FuzzCase& fuzz_case,
                                   std::string_view device_name,
                                   std::string_view failure);

struct Repro {
  FuzzCase fuzz_case;
  std::string device;  // empty when the header carried no device
};

/// Parse a reproducer produced by to_repro (tolerates hand-edits: any
/// missing header key keeps its default).
[[nodiscard]] Expected<Repro> load_repro(std::string_view text);

}  // namespace hsim::conformance
