// INT8 GEMM driver (IMMA/IGMMA tiles): exactness and projections.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "tensorcore/gemm.hpp"

namespace hsim::tc {
namespace {

using arch::a100_pcie;
using arch::h800_pcie;
using isa::TcInstr;
using isa::TcPath;
using num::DType;

TcInstr imma() {
  return {.path = TcPath::kMma, .shape = {16, 8, 32}, .ab = DType::kInt8,
          .cd = DType::kInt32};
}

TEST(GemmInt8, ExactAgainstScalarReference) {
  Xoshiro256ss rng(1);
  MatI8 a(32, 64), b(64, 16);
  fill_random(a, rng);
  fill_random(b, rng);
  MatI32 c(32, 16);
  for (auto& v : c.data()) v = static_cast<std::int32_t>(rng.range(-1000, 1000));
  const auto result = gemm_int8(a, b, c, imma(), h800_pcie()).value();
  for (int i = 0; i < 32; ++i) {
    for (int j = 0; j < 16; ++j) {
      std::int64_t expected = c.at(i, j);
      for (int k = 0; k < 64; ++k) {
        expected += static_cast<int>(a.at(i, k)) * static_cast<int>(b.at(k, j));
      }
      ASSERT_EQ(result.d.at(i, j), static_cast<std::int32_t>(expected))
          << i << "," << j;
    }
  }
  EXPECT_EQ(result.instructions, 2u * 2 * 2);
  EXPECT_GT(result.projected_tflops, 0.0);
}

TEST(GemmInt8, WgmmaTilesMatchMmaTiles) {
  Xoshiro256ss rng(2);
  MatI8 a(64, 64), b(64, 64);
  fill_random(a, rng);
  fill_random(b, rng);
  const MatI32 c(64, 64);
  const TcInstr igmma{.path = TcPath::kWgmma, .shape = {64, 64, 32},
                      .ab = DType::kInt8, .cd = DType::kInt32,
                      .a_src = isa::OperandSource::kSharedMemory};
  const auto via_wgmma = gemm_int8(a, b, c, igmma, h800_pcie()).value();
  const auto via_mma = gemm_int8(a, b, c, imma(), h800_pcie()).value();
  EXPECT_EQ(via_wgmma.d.data(), via_mma.d.data());  // integer: exactly equal
}

TEST(GemmInt8, Validation) {
  MatI8 a(16, 32), b(32, 8);
  MatI32 c(16, 8);
  TcInstr wrong = imma();
  wrong.ab = DType::kFp16;
  wrong.cd = DType::kFp32;
  EXPECT_FALSE(gemm_int8(a, b, c, wrong, h800_pcie()).has_value());
  MatI8 a2(20, 32);
  MatI32 c2(20, 8);
  EXPECT_FALSE(gemm_int8(a2, b, c2, imma(), h800_pcie()).has_value());
}

TEST(GemmInt8, SaturatedInputsStillExact) {
  MatI8 a(16, 32), b(32, 8);
  for (auto& v : a.data()) v = -128;
  for (auto& v : b.data()) v = 127;
  const MatI32 c(16, 8);
  const auto result = gemm_int8(a, b, c, imma(), a100_pcie()).value();
  for (const auto v : result.d.data()) EXPECT_EQ(v, 32 * -128 * 127);
}

}  // namespace
}  // namespace hsim::tc
